#!/usr/bin/env bash
# Documentation consistency check, run as a tier-1 ctest:
#
#   1. every relative markdown link in README.md and docs/*.md resolves to
#      an existing file (anchors stripped; external schemes skipped), and
#   2. every `./build/bench/<target>` command in README.md or any docs/*.md
#      names a bench target that actually exists in bench/CMakeLists.txt.
#
# Usage: scripts/check_docs.sh    (from anywhere; paths resolve to the repo)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
fail=0

# --- 1. relative links resolve -------------------------------------------------
for doc in "$repo"/README.md "$repo"/docs/*.md; do
  dir="$(dirname "$doc")"
  # Markdown inline links: capture the (...) part, one per line.  Reference
  # definitions and autolinks are not used in this repo's docs.
  while IFS= read -r link; do
    # Skip external schemes and pure in-page anchors.
    case "$link" in
      http://*|https://*|mailto:*|chrome://*|\#*) continue ;;
    esac
    target="${link%%#*}"            # strip the anchor
    [ -n "$target" ] || continue
    if [ ! -e "$dir/$target" ]; then
      echo "BROKEN LINK: $doc -> ($link)"
      fail=1
    fi
  done < <(grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//')
done

# --- 2. documented bench commands exist in the build ---------------------------
# Discover docs by glob (same set as the link check) rather than a hard-coded
# list, so a new doc's bench commands are covered automatically.
cmake_benches="$repo/bench/CMakeLists.txt"
for doc in "$repo"/README.md "$repo"/docs/*.md; do
  while IFS= read -r target; do
    if ! grep -Eq "(g80_bench\($target\)|add_executable\($target )" \
         "$cmake_benches"; then
      echo "MISSING BENCH TARGET: ${doc#"$repo"/} names './build/bench/$target'" \
           "but bench/CMakeLists.txt defines no such target"
      fail=1
    fi
  done < <(grep -o '\./build/bench/[A-Za-z0-9_]*' "$doc" \
           | sed 's|\./build/bench/||' | sort -u)
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED"
  exit 1
fi
echo "check_docs: all documentation links and bench targets resolve"
