#!/usr/bin/env bash
# Build and run the tier-1 test suite under AddressSanitizer + UBSan.
#
# Usage: scripts/check_sanitize.sh [build-dir]
#
# Uses the CMake `Sanitize` configuration defined in the top-level
# CMakeLists.txt.  The ucontext fiber switches in src/exec/fiber.cc carry
# __sanitizer_start/finish_switch_fiber annotations, so ASan's shadow stack
# follows the simulated GPU threads correctly.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-sanitize}"

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Sanitize
cmake --build "$build" -j "$(nproc)"

# detect_leaks: the simulator intentionally abandons fiber stacks when a
# kernel thread throws (fail-fast contract, see docs/error-handling.md);
# those are reachable at exit, so only report definite leaks.
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_stack_use_after_return=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"

ctest --test-dir "$build" --output-on-failure -j "$(nproc)"
echo "sanitize: all tests passed"
