#!/usr/bin/env bash
# End-to-end smoke of the g80serve daemon binaries: start g80served on a
# private socket, exercise it with g80servectl (ping, a cold launch, the
# warm cache hit that must return byte-identical result bytes, stats, the
# g80obs metrics/trace exporters), run the loadtest bench against the same
# daemon — which scrapes the metrics op and reconciles request/response/
# trace counters exactly — then shut it down cleanly and verify the socket
# is gone.
#
# Usage: scripts/check_serve.sh [build-dir]
#
# This is the *process-level* check — the daemon's argument parsing, signal
# handling, and socket lifecycle.  The protocol/cache/scheduler semantics
# are covered in-process by tests/serve_*_test.cc.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

served="$build/src/serve/g80served"
servectl="$build/src/serve/g80servectl"
loadtest="$build/bench/serve_loadtest"
for bin in "$served" "$servectl" "$loadtest"; do
  if [ ! -x "$bin" ]; then
    echo "check_serve: missing binary $bin (build the repo first)" >&2
    exit 1
  fi
done

workdir="$(mktemp -d /tmp/g80serve-check.XXXXXX)"
sock="$workdir/served.sock"
daemon_pid=""

cleanup() {
  if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== start g80served"
"$served" --socket "$sock" --cache-dir "$workdir/cache" \
  > "$workdir/served.log" 2>&1 &
daemon_pid=$!
for _ in $(seq 1 50); do
  [ -S "$sock" ] && break
  sleep 0.1
done
[ -S "$sock" ] || { echo "check_serve: daemon never bound $sock" >&2
                    cat "$workdir/served.log" >&2; exit 1; }

echo "== ping"
"$servectl" "$sock" ping > /dev/null

echo "== cold launch -> warm cache hit, byte-identical"
cold="$("$servectl" "$sock" launch kernel=saxpy n=8192 seed=11)"
warm="$("$servectl" "$sock" launch kernel=saxpy n=8192 seed=11)"
echo "$cold" | grep -q '"source":"sim"' \
  || { echo "check_serve: first launch was not a cold simulation" >&2
       echo "$cold" >&2; exit 1; }
echo "$warm" | grep -q '"source":"cache_' \
  || { echo "check_serve: second launch missed the cache" >&2
       echo "$warm" >&2; exit 1; }
cold_result="${cold#*\"result\":}"
warm_result="${warm#*\"result\":}"
if [ "$cold_result" != "$warm_result" ]; then
  echo "check_serve: warm result bytes differ from cold" >&2
  echo "cold: $cold_result" >&2
  echo "warm: $warm_result" >&2
  exit 1
fi

echo "== typed rejection"
if "$servectl" "$sock" launch kernel=matmul n=100 tile=16 > "$workdir/reject.out" 2>&1; then
  echo "check_serve: indivisible tile was accepted" >&2; exit 1
fi
grep -q invalid_configuration "$workdir/reject.out" \
  || { echo "check_serve: expected invalid_configuration rejection" >&2
       cat "$workdir/reject.out" >&2; exit 1; }

echo "== stats"
"$servectl" "$sock" stats | grep -q '"mem_hits"' \
  || { echo "check_serve: stats response missing cache counters" >&2; exit 1; }
"$servectl" "$sock" stats | grep -q '"queues"' \
  || { echo "check_serve: stats response missing per-class queue depths" >&2
       exit 1; }

echo "== g80obs exporters"
# Capture each payload before grepping: grep -q exits on first match and a
# still-writing servectl would die on EPIPE under pipefail.
"$servectl" "$sock" metrics > "$workdir/metrics.prom"
grep -q '^g80_serve_requests_total ' "$workdir/metrics.prom" \
  || { echo "check_serve: prometheus scrape missing the request counter" >&2
       exit 1; }
grep -q 'g80_serve_latency_total_bucket{le="+Inf"}' "$workdir/metrics.prom" \
  || { echo "check_serve: prometheus scrape missing histogram buckets" >&2
       exit 1; }
"$servectl" "$sock" metrics format=json > "$workdir/metrics.json"
grep -q '"serve.cache.mem_hits_total"' "$workdir/metrics.json" \
  || { echo "check_serve: metrics json missing cache counters" >&2; exit 1; }
"$servectl" "$sock" traces format=chrome > "$workdir/trace.json"
grep -q '"traceEvents"' "$workdir/trace.json" \
  || { echo "check_serve: chrome trace export malformed" >&2
       cat "$workdir/trace.json" >&2; exit 1; }
grep -q '"launch \[ok\]"' "$workdir/trace.json" \
  || { echo "check_serve: chrome trace missing the launch request slice" >&2
       cat "$workdir/trace.json" >&2; exit 1; }

echo "== loadtest against the external daemon"
G80_SERVE_SOCKET="$sock" "$loadtest" --out "$workdir/loadtest.json" \
  > "$workdir/loadtest.log" 2>&1 \
  || { echo "check_serve: loadtest failed" >&2
       cat "$workdir/loadtest.log" >&2; exit 1; }
grep -q '"warm_speedup_ok":1' "$workdir/loadtest.json" \
  || { echo "check_serve: warm-cache speedup gate failed" >&2
       cat "$workdir/loadtest.json" >&2; exit 1; }
grep -q '"bit_identical":1' "$workdir/loadtest.json" \
  || { echo "check_serve: bit-identity gate failed" >&2
       cat "$workdir/loadtest.json" >&2; exit 1; }
grep -q '"metrics_scraped":1' "$workdir/loadtest.json" \
  || { echo "check_serve: loadtest could not scrape the metrics op" >&2
       cat "$workdir/loadtest.json" >&2; exit 1; }
grep -q '"counters_reconcile":1' "$workdir/loadtest.json" \
  || { echo "check_serve: request/response counters did not reconcile" >&2
       cat "$workdir/loadtest.json" >&2; exit 1; }
grep -q '"spans_complete":1' "$workdir/loadtest.json" \
  || { echo "check_serve: incomplete request traces during loadtest" >&2
       cat "$workdir/loadtest.json" >&2; exit 1; }

echo "== clean shutdown via the protocol"
"$servectl" "$sock" shutdown > /dev/null
for _ in $(seq 1 50); do
  kill -0 "$daemon_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$daemon_pid" 2>/dev/null; then
  echo "check_serve: daemon still running after shutdown op" >&2; exit 1
fi
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
if [ -S "$sock" ]; then
  echo "check_serve: socket not unlinked on shutdown" >&2; exit 1
fi

echo "check_serve: daemon lifecycle, cache identity, and loadtest gates passed"
