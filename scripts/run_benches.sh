#!/usr/bin/env bash
# Run every harness-converted bench and collect its g80bench-result JSON as
# BENCH_<name>.json in the output directory.
#
# Usage: scripts/run_benches.sh [build_dir] [out_dir]
#   build_dir  defaults to ./build   (must already be built)
#   out_dir    defaults to ./bench-results
#
# Exits non-zero if any bench fails or produces no result file.  Compare the
# collected results against the checked-in baselines with:
#   python3 scripts/check_bench_regression.py bench/baselines bench-results
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
out="${2:-$repo/bench-results}"
mkdir -p "$out"

# Benches on the common harness CLI (--out/--json/--seed).  Extend this list
# as more benches are converted (bench/harness.h documents the contract).
benches=(
  sec4_matmul_versions
  fig4_matmul_tiles
  micro_access_patterns
  ablation_bankconflict
  rt_throughput
  scope_overhead
)

fail=0
for b in "${benches[@]}"; do
  bin="$build/bench/$b"
  if [ ! -x "$bin" ]; then
    echo "run_benches: missing binary $bin (build the repo first)" >&2
    fail=1
    continue
  fi
  echo "== $b"
  if ! "$bin" --out "$out/BENCH_$b.json" > "$out/$b.log" 2>&1; then
    echo "run_benches: $b FAILED (see $out/$b.log)" >&2
    fail=1
    continue
  fi
  if [ ! -s "$out/BENCH_$b.json" ]; then
    echo "run_benches: $b produced no result file" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "run_benches: FAILED"
  exit 1
fi
echo "run_benches: ${#benches[@]} result files in $out"
