#!/usr/bin/env bash
# Run every harness-converted bench and collect its g80bench-result JSON as
# BENCH_<name>.json in the output directory.
#
# Usage: scripts/run_benches.sh [build_dir] [out_dir]
#   build_dir  defaults to ./build   (must already be built)
#   out_dir    defaults to ./bench-results
#
# Each bench runs under a wall-clock timeout (G80_BENCH_TIMEOUT seconds,
# default 600) so one wedged bench cannot hang the whole sweep.  A bench that
# times out or exits non-zero still leaves a structured result file — a
# g80bench-result document with a top-level "failed" field and no result
# rows — which scripts/check_bench_regression.py reports as a regression, so
# a hung bench can never silently pass a baseline comparison.
#
# Exits non-zero if any bench fails or produces no result file.  Compare the
# collected results against the checked-in baselines with:
#   python3 scripts/check_bench_regression.py bench/baselines bench-results
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
out="${2:-$repo/bench-results}"
timeout_s="${G80_BENCH_TIMEOUT:-600}"
mkdir -p "$out"

# Benches on the common harness CLI (--out/--json/--seed).  Extend this list
# as more benches are converted (bench/harness.h documents the contract).
benches=(
  sec4_matmul_versions
  fig4_matmul_tiles
  micro_access_patterns
  ablation_bankconflict
  rt_throughput
  prof_overhead
  scope_overhead
  resil_campaign
  serve_loadtest
  obs_overhead
)

# Writes the structured failure document for bench $1 with reason $2.
write_failure() {
  printf '{"provenance":{"schema":"g80bench-result","schema_version":1},"bench":"%s","failed":"%s","results":[]}\n' \
    "$1" "$2" > "$out/BENCH_$1.json"
}

fail=0
for b in "${benches[@]}"; do
  bin="$build/bench/$b"
  if [ ! -x "$bin" ]; then
    echo "run_benches: missing binary $bin (build the repo first)" >&2
    fail=1
    continue
  fi
  echo "== $b"
  rc=0
  timeout --signal=TERM --kill-after=10 "$timeout_s" \
    "$bin" --out "$out/BENCH_$b.json" > "$out/$b.log" 2>&1 || rc=$?
  if [ "$rc" -eq 124 ] || [ "$rc" -eq 137 ]; then
    echo "run_benches: $b TIMED OUT after ${timeout_s}s (see $out/$b.log)" >&2
    write_failure "$b" "timeout after ${timeout_s}s"
    fail=1
    continue
  elif [ "$rc" -ne 0 ]; then
    echo "run_benches: $b FAILED with exit $rc (see $out/$b.log)" >&2
    write_failure "$b" "exit status $rc"
    fail=1
    continue
  fi
  if [ ! -s "$out/BENCH_$b.json" ]; then
    echo "run_benches: $b produced no result file" >&2
    write_failure "$b" "no result file"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "run_benches: FAILED"
  exit 1
fi
echo "run_benches: ${#benches[@]} result files in $out"
