#!/usr/bin/env bash
# Build and run the g80resil robustness tier: the `robust`-labelled ctest
# targets (watchdog/retry/reset semantics, the per-application fault-campaign
# smoke sweep, the fixed-seed invariant fuzzer) plus the *full* fault
# campaign (bench/resil_campaign), which must pass 100% of its cases.
#
# Usage: scripts/check_resil.sh [build-dir]
#
# Environment:
#   G80_FUZZ_ITERS / G80_FUZZ_SEED  widen or re-seed the invariant fuzzer
#                                   (see tests/invariant_fuzz_test.cc)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

cmake -B "$build" -S "$repo"
cmake --build "$build" -j "$(nproc)" --target \
  resil_test resil_campaign_test invariant_fuzz_test resil_campaign

echo "== robust-labelled tests"
ctest --test-dir "$build" -L robust --output-on-failure -j "$(nproc)"

echo "== full fault campaign (all applications x fault kinds x sweep points)"
out="$build/check-resil"
mkdir -p "$out"
"$build/bench/resil_campaign" --out "$out/BENCH_resil_campaign.json" \
  | tail -n 3

echo "check_resil: robust tier and full campaign passed"
