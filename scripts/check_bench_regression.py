#!/usr/bin/env python3
"""Diff g80bench-result files against checked-in baselines.

Usage: check_bench_regression.py BASELINE_DIR RESULT_DIR [--rtol R]

For every BENCH_*.json in BASELINE_DIR there must be a same-named file in
RESULT_DIR with:
  * the same result schema ("g80bench-result", same schema_version),
  * the same device_spec_hash (results from a different modeled device are
    not comparable -- regenerate the baselines instead),
  * the same set of result rows and metric keys, and
  * every metric value within --rtol relative tolerance (default 1e-6),
    EXCEPT metrics whose key starts with "wall_", which are host wall-clock
    measurements and are skipped, and metrics whose key starts with
    "floor_", which are one-sided: the new value must be >= the baseline
    (used for policy constants like minimum-speedup gates, so a PR that
    quietly lowers a floor fails the diff while raising it is fine).

Modeled quantities in this suite are deterministic, so the default tolerance
only absorbs cross-platform floating-point formatting, not real drift.
Stdlib-only; exits 0 on match, 1 on any regression, 2 on usage errors.
"""

import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def fail(msg):
    print(f"REGRESSION: {msg}")
    return 1


def compare_file(name, base, got, rtol):
    errors = 0
    # A structured failure document (run_benches.sh writes these when a bench
    # times out or crashes) is always a regression, whatever the baseline
    # says -- a hung bench must not pass by producing no comparable rows.
    if got.get("failed") is not None:
        return fail(f"{name}: bench run failed ({got['failed']})")
    if base.get("failed") is not None:
        return fail(
            f"{name}: baseline is a failure document ({base['failed']}) "
            "-- regenerate it from a clean run"
        )
    bp = base.get("provenance", {})
    gp = got.get("provenance", {})
    if bp.get("schema") != gp.get("schema") or bp.get(
        "schema_version"
    ) != gp.get("schema_version"):
        return fail(
            f"{name}: schema mismatch "
            f"({bp.get('schema')} v{bp.get('schema_version')} vs "
            f"{gp.get('schema')} v{gp.get('schema_version')})"
        )
    if bp.get("device_spec_hash") != gp.get("device_spec_hash"):
        return fail(
            f"{name}: device_spec_hash mismatch "
            f"({bp.get('device_spec_hash')} vs {gp.get('device_spec_hash')}) "
            "-- different modeled device; regenerate baselines"
        )

    base_rows = {r["name"]: r.get("metrics", {}) for r in base.get("results", [])}
    got_rows = {r["name"]: r.get("metrics", {}) for r in got.get("results", [])}
    for row in sorted(set(base_rows) | set(got_rows)):
        if row not in got_rows:
            errors += fail(f"{name}: result row '{row}' missing from new run")
            continue
        if row not in base_rows:
            errors += fail(f"{name}: new result row '{row}' not in baseline")
            continue
        bm, gm = base_rows[row], got_rows[row]
        keys = {k for k in set(bm) | set(gm) if not k.startswith("wall_")}
        for key in sorted(keys):
            if key not in gm:
                errors += fail(f"{name}: {row}.{key} missing from new run")
                continue
            if key not in bm:
                errors += fail(f"{name}: new metric {row}.{key} not in baseline")
                continue
            b, g = bm[key], gm[key]
            if b is None or g is None:
                if b != g:
                    errors += fail(f"{name}: {row}.{key} = {g}, baseline {b}")
                continue
            tol = rtol * max(1.0, abs(b))
            if key.startswith("floor_"):
                if g < b - tol:
                    errors += fail(
                        f"{name}: {row}.{key} = {g:.9g} dropped below "
                        f"baseline floor {b:.9g}"
                    )
                continue
            if abs(g - b) > tol:
                errors += fail(
                    f"{name}: {row}.{key} = {g:.9g}, baseline {b:.9g} "
                    f"(|diff| {abs(g - b):.3g} > tol {tol:.3g})"
                )
    return errors


def main(argv):
    rtol = 1e-6
    args = []
    i = 1
    while i < len(argv):
        if argv[i] == "--rtol":
            if i + 1 >= len(argv):
                print("check_bench_regression: --rtol needs a number")
                return 2
            try:
                rtol = float(argv[i + 1])
            except ValueError:
                print("check_bench_regression: --rtol needs a number")
                return 2
            i += 2
        else:
            args.append(argv[i])
            i += 1
    if len(args) != 2:
        print(__doc__.strip().splitlines()[2])
        return 2
    base_dir, got_dir = args

    baselines = sorted(
        f
        for f in os.listdir(base_dir)
        if f.startswith("BENCH_") and f.endswith(".json")
    )
    if not baselines:
        print(f"check_bench_regression: no BENCH_*.json baselines in {base_dir}")
        return 2

    errors = 0
    for fname in baselines:
        got_path = os.path.join(got_dir, fname)
        if not os.path.exists(got_path):
            errors += fail(f"{fname}: no matching result in {got_dir}")
            continue
        errors += compare_file(fname, load(os.path.join(base_dir, fname)),
                               load(got_path), rtol)

    if errors:
        print(f"check_bench_regression: FAILED ({errors} mismatch(es))")
        return 1
    print(
        f"check_bench_regression: {len(baselines)} bench(es) match baselines "
        f"(rtol {rtol:g}, wall_* metrics skipped)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
