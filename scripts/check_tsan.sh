#!/usr/bin/env bash
# Build the g80rt runtime tests under ThreadSanitizer and run them.
#
# Usage: scripts/check_tsan.sh [build-dir]
#
# Uses the CMake `Tsan` configuration defined in the top-level
# CMakeLists.txt.  The ucontext fiber switches in src/exec/fiber.cc carry
# __tsan_create/switch_to/destroy_fiber annotations, so TSan's shadow stack
# follows the simulated GPU threads across stack switches instead of
# reporting phantom races.
#
# Only the concurrency-heavy tests run here
# (ctest -R '^(rt_|resil_test|serve_|obs_|exec_fastpath|trace_batch)'): they are
# the ones that exercise the WorkerPool (including its work-stealing deques),
# the stream threads, the g80resil watchdog/cancellation machinery, the
# atomic Device counters, the g80serve session/scheduler threads (many
# concurrent unix-socket sessions sharing one device pool), and the per-slot
# trace arenas of the batched recorder (each must stay private to the worker
# owning its launch slot).  The sequential suite is
# covered by check_sanitize.sh.  Note the fast fiber engine is compiled out
# under TSan (no sanitizer annotations); requests for it degrade to the
# annotated ucontext engine, so the backend-parameterized tests still run.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-tsan}"

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Tsan
cmake --build "$build" -j "$(nproc)" --target rt_stream_test rt_parallel_launch_test resil_test \
  serve_server_test serve_isolation_test serve_cache_test exec_fastpath_test trace_batch_test \
  obs_metrics_test obs_trace_test

# second_deadlock_stack: show both lock orders on any lock-inversion report.
export TSAN_OPTIONS="${TSAN_OPTIONS:-second_deadlock_stack=1}"

ctest --test-dir "$build" --output-on-failure -R '^(rt_|resil_test|serve_|obs_|exec_fastpath|trace_batch)' -j "$(nproc)"
echo "tsan: runtime tests passed"
