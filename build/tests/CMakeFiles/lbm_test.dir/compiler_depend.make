# Empty compiler generated dependencies file for lbm_test.
# This may be replaced when dependencies are built.
