file(REMOVE_RECURSE
  "CMakeFiles/lbm_test.dir/lbm_test.cc.o"
  "CMakeFiles/lbm_test.dir/lbm_test.cc.o.d"
  "lbm_test"
  "lbm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
