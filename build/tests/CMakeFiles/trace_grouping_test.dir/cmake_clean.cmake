file(REMOVE_RECURSE
  "CMakeFiles/trace_grouping_test.dir/trace_grouping_test.cc.o"
  "CMakeFiles/trace_grouping_test.dir/trace_grouping_test.cc.o.d"
  "trace_grouping_test"
  "trace_grouping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_grouping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
