# Empty dependencies file for trace_grouping_test.
# This may be replaced when dependencies are built.
