# Empty dependencies file for apps_suite_test.
# This may be replaced when dependencies are built.
