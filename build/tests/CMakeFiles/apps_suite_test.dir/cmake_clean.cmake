file(REMOVE_RECURSE
  "CMakeFiles/apps_suite_test.dir/apps_suite_test.cc.o"
  "CMakeFiles/apps_suite_test.dir/apps_suite_test.cc.o.d"
  "apps_suite_test"
  "apps_suite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
