file(REMOVE_RECURSE
  "CMakeFiles/g80_hw.dir/device_spec.cc.o"
  "CMakeFiles/g80_hw.dir/device_spec.cc.o.d"
  "CMakeFiles/g80_hw.dir/isa.cc.o"
  "CMakeFiles/g80_hw.dir/isa.cc.o.d"
  "libg80_hw.a"
  "libg80_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g80_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
