# Empty dependencies file for g80_hw.
# This may be replaced when dependencies are built.
