file(REMOVE_RECURSE
  "libg80_hw.a"
)
