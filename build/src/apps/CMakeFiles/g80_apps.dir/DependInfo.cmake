
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cp/cp.cc" "src/apps/CMakeFiles/g80_apps.dir/cp/cp.cc.o" "gcc" "src/apps/CMakeFiles/g80_apps.dir/cp/cp.cc.o.d"
  "/root/repo/src/apps/fdtd/fdtd.cc" "src/apps/CMakeFiles/g80_apps.dir/fdtd/fdtd.cc.o" "gcc" "src/apps/CMakeFiles/g80_apps.dir/fdtd/fdtd.cc.o.d"
  "/root/repo/src/apps/fem/fem.cc" "src/apps/CMakeFiles/g80_apps.dir/fem/fem.cc.o" "gcc" "src/apps/CMakeFiles/g80_apps.dir/fem/fem.cc.o.d"
  "/root/repo/src/apps/h264/h264.cc" "src/apps/CMakeFiles/g80_apps.dir/h264/h264.cc.o" "gcc" "src/apps/CMakeFiles/g80_apps.dir/h264/h264.cc.o.d"
  "/root/repo/src/apps/lbm/lbm.cc" "src/apps/CMakeFiles/g80_apps.dir/lbm/lbm.cc.o" "gcc" "src/apps/CMakeFiles/g80_apps.dir/lbm/lbm.cc.o.d"
  "/root/repo/src/apps/matmul/matmul.cc" "src/apps/CMakeFiles/g80_apps.dir/matmul/matmul.cc.o" "gcc" "src/apps/CMakeFiles/g80_apps.dir/matmul/matmul.cc.o.d"
  "/root/repo/src/apps/mri/mri_fhd.cc" "src/apps/CMakeFiles/g80_apps.dir/mri/mri_fhd.cc.o" "gcc" "src/apps/CMakeFiles/g80_apps.dir/mri/mri_fhd.cc.o.d"
  "/root/repo/src/apps/mri/mri_q.cc" "src/apps/CMakeFiles/g80_apps.dir/mri/mri_q.cc.o" "gcc" "src/apps/CMakeFiles/g80_apps.dir/mri/mri_q.cc.o.d"
  "/root/repo/src/apps/pns/pns.cc" "src/apps/CMakeFiles/g80_apps.dir/pns/pns.cc.o" "gcc" "src/apps/CMakeFiles/g80_apps.dir/pns/pns.cc.o.d"
  "/root/repo/src/apps/rc5/rc5.cc" "src/apps/CMakeFiles/g80_apps.dir/rc5/rc5.cc.o" "gcc" "src/apps/CMakeFiles/g80_apps.dir/rc5/rc5.cc.o.d"
  "/root/repo/src/apps/rpes/rpes.cc" "src/apps/CMakeFiles/g80_apps.dir/rpes/rpes.cc.o" "gcc" "src/apps/CMakeFiles/g80_apps.dir/rpes/rpes.cc.o.d"
  "/root/repo/src/apps/saxpy/saxpy.cc" "src/apps/CMakeFiles/g80_apps.dir/saxpy/saxpy.cc.o" "gcc" "src/apps/CMakeFiles/g80_apps.dir/saxpy/saxpy.cc.o.d"
  "/root/repo/src/apps/suite.cc" "src/apps/CMakeFiles/g80_apps.dir/suite.cc.o" "gcc" "src/apps/CMakeFiles/g80_apps.dir/suite.cc.o.d"
  "/root/repo/src/apps/tpacf/tpacf.cc" "src/apps/CMakeFiles/g80_apps.dir/tpacf/tpacf.cc.o" "gcc" "src/apps/CMakeFiles/g80_apps.dir/tpacf/tpacf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/g80_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cudalite/CMakeFiles/g80_cudalite.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/g80_common.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/g80_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/g80_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/g80_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/occupancy/CMakeFiles/g80_occupancy.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/g80_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
