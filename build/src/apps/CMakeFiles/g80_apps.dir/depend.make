# Empty dependencies file for g80_apps.
# This may be replaced when dependencies are built.
