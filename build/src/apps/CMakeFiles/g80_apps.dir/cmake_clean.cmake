file(REMOVE_RECURSE
  "CMakeFiles/g80_apps.dir/cp/cp.cc.o"
  "CMakeFiles/g80_apps.dir/cp/cp.cc.o.d"
  "CMakeFiles/g80_apps.dir/fdtd/fdtd.cc.o"
  "CMakeFiles/g80_apps.dir/fdtd/fdtd.cc.o.d"
  "CMakeFiles/g80_apps.dir/fem/fem.cc.o"
  "CMakeFiles/g80_apps.dir/fem/fem.cc.o.d"
  "CMakeFiles/g80_apps.dir/h264/h264.cc.o"
  "CMakeFiles/g80_apps.dir/h264/h264.cc.o.d"
  "CMakeFiles/g80_apps.dir/lbm/lbm.cc.o"
  "CMakeFiles/g80_apps.dir/lbm/lbm.cc.o.d"
  "CMakeFiles/g80_apps.dir/matmul/matmul.cc.o"
  "CMakeFiles/g80_apps.dir/matmul/matmul.cc.o.d"
  "CMakeFiles/g80_apps.dir/mri/mri_fhd.cc.o"
  "CMakeFiles/g80_apps.dir/mri/mri_fhd.cc.o.d"
  "CMakeFiles/g80_apps.dir/mri/mri_q.cc.o"
  "CMakeFiles/g80_apps.dir/mri/mri_q.cc.o.d"
  "CMakeFiles/g80_apps.dir/pns/pns.cc.o"
  "CMakeFiles/g80_apps.dir/pns/pns.cc.o.d"
  "CMakeFiles/g80_apps.dir/rc5/rc5.cc.o"
  "CMakeFiles/g80_apps.dir/rc5/rc5.cc.o.d"
  "CMakeFiles/g80_apps.dir/rpes/rpes.cc.o"
  "CMakeFiles/g80_apps.dir/rpes/rpes.cc.o.d"
  "CMakeFiles/g80_apps.dir/saxpy/saxpy.cc.o"
  "CMakeFiles/g80_apps.dir/saxpy/saxpy.cc.o.d"
  "CMakeFiles/g80_apps.dir/suite.cc.o"
  "CMakeFiles/g80_apps.dir/suite.cc.o.d"
  "CMakeFiles/g80_apps.dir/tpacf/tpacf.cc.o"
  "CMakeFiles/g80_apps.dir/tpacf/tpacf.cc.o.d"
  "libg80_apps.a"
  "libg80_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g80_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
