file(REMOVE_RECURSE
  "libg80_apps.a"
)
