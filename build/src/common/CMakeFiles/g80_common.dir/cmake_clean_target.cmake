file(REMOVE_RECURSE
  "libg80_common.a"
)
