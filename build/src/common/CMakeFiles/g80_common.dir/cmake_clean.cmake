file(REMOVE_RECURSE
  "CMakeFiles/g80_common.dir/rng.cc.o"
  "CMakeFiles/g80_common.dir/rng.cc.o.d"
  "CMakeFiles/g80_common.dir/stats.cc.o"
  "CMakeFiles/g80_common.dir/stats.cc.o.d"
  "CMakeFiles/g80_common.dir/str.cc.o"
  "CMakeFiles/g80_common.dir/str.cc.o.d"
  "CMakeFiles/g80_common.dir/table.cc.o"
  "CMakeFiles/g80_common.dir/table.cc.o.d"
  "libg80_common.a"
  "libg80_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g80_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
