# Empty compiler generated dependencies file for g80_common.
# This may be replaced when dependencies are built.
