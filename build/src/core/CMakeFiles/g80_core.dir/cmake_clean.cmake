file(REMOVE_RECURSE
  "CMakeFiles/g80_core.dir/advisor.cc.o"
  "CMakeFiles/g80_core.dir/advisor.cc.o.d"
  "CMakeFiles/g80_core.dir/app.cc.o"
  "CMakeFiles/g80_core.dir/app.cc.o.d"
  "CMakeFiles/g80_core.dir/autotuner.cc.o"
  "CMakeFiles/g80_core.dir/autotuner.cc.o.d"
  "CMakeFiles/g80_core.dir/carver.cc.o"
  "CMakeFiles/g80_core.dir/carver.cc.o.d"
  "CMakeFiles/g80_core.dir/cpu_calibration.cc.o"
  "CMakeFiles/g80_core.dir/cpu_calibration.cc.o.d"
  "CMakeFiles/g80_core.dir/report.cc.o"
  "CMakeFiles/g80_core.dir/report.cc.o.d"
  "libg80_core.a"
  "libg80_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g80_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
