
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cc" "src/core/CMakeFiles/g80_core.dir/advisor.cc.o" "gcc" "src/core/CMakeFiles/g80_core.dir/advisor.cc.o.d"
  "/root/repo/src/core/app.cc" "src/core/CMakeFiles/g80_core.dir/app.cc.o" "gcc" "src/core/CMakeFiles/g80_core.dir/app.cc.o.d"
  "/root/repo/src/core/autotuner.cc" "src/core/CMakeFiles/g80_core.dir/autotuner.cc.o" "gcc" "src/core/CMakeFiles/g80_core.dir/autotuner.cc.o.d"
  "/root/repo/src/core/carver.cc" "src/core/CMakeFiles/g80_core.dir/carver.cc.o" "gcc" "src/core/CMakeFiles/g80_core.dir/carver.cc.o.d"
  "/root/repo/src/core/cpu_calibration.cc" "src/core/CMakeFiles/g80_core.dir/cpu_calibration.cc.o" "gcc" "src/core/CMakeFiles/g80_core.dir/cpu_calibration.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/g80_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/g80_core.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cudalite/CMakeFiles/g80_cudalite.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/g80_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/occupancy/CMakeFiles/g80_occupancy.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/g80_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/g80_common.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/g80_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/g80_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
