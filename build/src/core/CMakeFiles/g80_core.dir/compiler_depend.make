# Empty compiler generated dependencies file for g80_core.
# This may be replaced when dependencies are built.
