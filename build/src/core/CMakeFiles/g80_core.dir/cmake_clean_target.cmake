file(REMOVE_RECURSE
  "libg80_core.a"
)
