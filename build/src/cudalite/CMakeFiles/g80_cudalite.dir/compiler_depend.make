# Empty compiler generated dependencies file for g80_cudalite.
# This may be replaced when dependencies are built.
