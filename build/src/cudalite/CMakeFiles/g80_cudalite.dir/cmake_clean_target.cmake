file(REMOVE_RECURSE
  "libg80_cudalite.a"
)
