file(REMOVE_RECURSE
  "CMakeFiles/g80_cudalite.dir/launch.cc.o"
  "CMakeFiles/g80_cudalite.dir/launch.cc.o.d"
  "CMakeFiles/g80_cudalite.dir/trace_collect.cc.o"
  "CMakeFiles/g80_cudalite.dir/trace_collect.cc.o.d"
  "libg80_cudalite.a"
  "libg80_cudalite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g80_cudalite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
