# Empty compiler generated dependencies file for g80_occupancy.
# This may be replaced when dependencies are built.
