file(REMOVE_RECURSE
  "libg80_occupancy.a"
)
