
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/occupancy/occupancy.cc" "src/occupancy/CMakeFiles/g80_occupancy.dir/occupancy.cc.o" "gcc" "src/occupancy/CMakeFiles/g80_occupancy.dir/occupancy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/g80_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/g80_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
