file(REMOVE_RECURSE
  "CMakeFiles/g80_occupancy.dir/occupancy.cc.o"
  "CMakeFiles/g80_occupancy.dir/occupancy.cc.o.d"
  "libg80_occupancy.a"
  "libg80_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g80_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
