file(REMOVE_RECURSE
  "CMakeFiles/g80_exec.dir/block_runner.cc.o"
  "CMakeFiles/g80_exec.dir/block_runner.cc.o.d"
  "CMakeFiles/g80_exec.dir/fiber.cc.o"
  "CMakeFiles/g80_exec.dir/fiber.cc.o.d"
  "libg80_exec.a"
  "libg80_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g80_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
