file(REMOVE_RECURSE
  "libg80_exec.a"
)
