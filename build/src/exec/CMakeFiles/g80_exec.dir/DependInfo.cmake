
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/block_runner.cc" "src/exec/CMakeFiles/g80_exec.dir/block_runner.cc.o" "gcc" "src/exec/CMakeFiles/g80_exec.dir/block_runner.cc.o.d"
  "/root/repo/src/exec/fiber.cc" "src/exec/CMakeFiles/g80_exec.dir/fiber.cc.o" "gcc" "src/exec/CMakeFiles/g80_exec.dir/fiber.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/g80_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/g80_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
