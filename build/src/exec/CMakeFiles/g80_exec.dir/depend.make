# Empty dependencies file for g80_exec.
# This may be replaced when dependencies are built.
