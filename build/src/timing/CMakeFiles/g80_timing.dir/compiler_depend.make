# Empty compiler generated dependencies file for g80_timing.
# This may be replaced when dependencies are built.
