file(REMOVE_RECURSE
  "libg80_timing.a"
)
