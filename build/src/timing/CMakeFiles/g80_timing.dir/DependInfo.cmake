
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/model.cc" "src/timing/CMakeFiles/g80_timing.dir/model.cc.o" "gcc" "src/timing/CMakeFiles/g80_timing.dir/model.cc.o.d"
  "/root/repo/src/timing/trace.cc" "src/timing/CMakeFiles/g80_timing.dir/trace.cc.o" "gcc" "src/timing/CMakeFiles/g80_timing.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/g80_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/g80_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/occupancy/CMakeFiles/g80_occupancy.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/g80_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
