file(REMOVE_RECURSE
  "CMakeFiles/g80_timing.dir/model.cc.o"
  "CMakeFiles/g80_timing.dir/model.cc.o.d"
  "CMakeFiles/g80_timing.dir/trace.cc.o"
  "CMakeFiles/g80_timing.dir/trace.cc.o.d"
  "libg80_timing.a"
  "libg80_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g80_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
