file(REMOVE_RECURSE
  "CMakeFiles/g80_mem.dir/bank_conflict.cc.o"
  "CMakeFiles/g80_mem.dir/bank_conflict.cc.o.d"
  "CMakeFiles/g80_mem.dir/coalescing.cc.o"
  "CMakeFiles/g80_mem.dir/coalescing.cc.o.d"
  "CMakeFiles/g80_mem.dir/const_cache.cc.o"
  "CMakeFiles/g80_mem.dir/const_cache.cc.o.d"
  "CMakeFiles/g80_mem.dir/dram.cc.o"
  "CMakeFiles/g80_mem.dir/dram.cc.o.d"
  "CMakeFiles/g80_mem.dir/texture_cache.cc.o"
  "CMakeFiles/g80_mem.dir/texture_cache.cc.o.d"
  "libg80_mem.a"
  "libg80_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g80_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
