
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/bank_conflict.cc" "src/mem/CMakeFiles/g80_mem.dir/bank_conflict.cc.o" "gcc" "src/mem/CMakeFiles/g80_mem.dir/bank_conflict.cc.o.d"
  "/root/repo/src/mem/coalescing.cc" "src/mem/CMakeFiles/g80_mem.dir/coalescing.cc.o" "gcc" "src/mem/CMakeFiles/g80_mem.dir/coalescing.cc.o.d"
  "/root/repo/src/mem/const_cache.cc" "src/mem/CMakeFiles/g80_mem.dir/const_cache.cc.o" "gcc" "src/mem/CMakeFiles/g80_mem.dir/const_cache.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/mem/CMakeFiles/g80_mem.dir/dram.cc.o" "gcc" "src/mem/CMakeFiles/g80_mem.dir/dram.cc.o.d"
  "/root/repo/src/mem/texture_cache.cc" "src/mem/CMakeFiles/g80_mem.dir/texture_cache.cc.o" "gcc" "src/mem/CMakeFiles/g80_mem.dir/texture_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/g80_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/g80_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
