file(REMOVE_RECURSE
  "libg80_mem.a"
)
