# Empty dependencies file for g80_mem.
# This may be replaced when dependencies are built.
