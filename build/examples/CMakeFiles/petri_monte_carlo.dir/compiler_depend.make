# Empty compiler generated dependencies file for petri_monte_carlo.
# This may be replaced when dependencies are built.
