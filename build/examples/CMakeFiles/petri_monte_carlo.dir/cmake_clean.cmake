file(REMOVE_RECURSE
  "CMakeFiles/petri_monte_carlo.dir/petri_monte_carlo.cpp.o"
  "CMakeFiles/petri_monte_carlo.dir/petri_monte_carlo.cpp.o.d"
  "petri_monte_carlo"
  "petri_monte_carlo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/petri_monte_carlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
