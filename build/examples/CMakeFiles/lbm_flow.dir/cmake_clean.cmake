file(REMOVE_RECURSE
  "CMakeFiles/lbm_flow.dir/lbm_flow.cpp.o"
  "CMakeFiles/lbm_flow.dir/lbm_flow.cpp.o.d"
  "lbm_flow"
  "lbm_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbm_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
