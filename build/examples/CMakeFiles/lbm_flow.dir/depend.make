# Empty dependencies file for lbm_flow.
# This may be replaced when dependencies are built.
