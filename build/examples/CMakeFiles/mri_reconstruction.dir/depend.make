# Empty dependencies file for mri_reconstruction.
# This may be replaced when dependencies are built.
