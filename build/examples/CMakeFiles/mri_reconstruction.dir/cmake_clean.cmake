file(REMOVE_RECURSE
  "CMakeFiles/mri_reconstruction.dir/mri_reconstruction.cpp.o"
  "CMakeFiles/mri_reconstruction.dir/mri_reconstruction.cpp.o.d"
  "mri_reconstruction"
  "mri_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mri_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
