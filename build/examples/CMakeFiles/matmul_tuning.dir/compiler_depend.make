# Empty compiler generated dependencies file for matmul_tuning.
# This may be replaced when dependencies are built.
