file(REMOVE_RECURSE
  "CMakeFiles/sec4_matmul_versions.dir/sec4_matmul_versions.cc.o"
  "CMakeFiles/sec4_matmul_versions.dir/sec4_matmul_versions.cc.o.d"
  "sec4_matmul_versions"
  "sec4_matmul_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4_matmul_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
