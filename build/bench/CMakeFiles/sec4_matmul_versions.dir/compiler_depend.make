# Empty compiler generated dependencies file for sec4_matmul_versions.
# This may be replaced when dependencies are built.
