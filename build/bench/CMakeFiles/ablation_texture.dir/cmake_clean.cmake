file(REMOVE_RECURSE
  "CMakeFiles/ablation_texture.dir/ablation_texture.cc.o"
  "CMakeFiles/ablation_texture.dir/ablation_texture.cc.o.d"
  "ablation_texture"
  "ablation_texture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_texture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
