file(REMOVE_RECURSE
  "CMakeFiles/ablation_constant.dir/ablation_constant.cc.o"
  "CMakeFiles/ablation_constant.dir/ablation_constant.cc.o.d"
  "ablation_constant"
  "ablation_constant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_constant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
