file(REMOVE_RECURSE
  "CMakeFiles/simulator_microbench.dir/simulator_microbench.cc.o"
  "CMakeFiles/simulator_microbench.dir/simulator_microbench.cc.o.d"
  "simulator_microbench"
  "simulator_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
