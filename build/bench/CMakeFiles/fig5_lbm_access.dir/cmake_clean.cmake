file(REMOVE_RECURSE
  "CMakeFiles/fig5_lbm_access.dir/fig5_lbm_access.cc.o"
  "CMakeFiles/fig5_lbm_access.dir/fig5_lbm_access.cc.o.d"
  "fig5_lbm_access"
  "fig5_lbm_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_lbm_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
