# Empty compiler generated dependencies file for fig5_lbm_access.
# This may be replaced when dependencies are built.
