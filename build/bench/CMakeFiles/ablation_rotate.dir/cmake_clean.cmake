file(REMOVE_RECURSE
  "CMakeFiles/ablation_rotate.dir/ablation_rotate.cc.o"
  "CMakeFiles/ablation_rotate.dir/ablation_rotate.cc.o.d"
  "ablation_rotate"
  "ablation_rotate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rotate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
