# Empty dependencies file for ablation_rotate.
# This may be replaced when dependencies are built.
