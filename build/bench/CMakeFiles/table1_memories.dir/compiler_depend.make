# Empty compiler generated dependencies file for table1_memories.
# This may be replaced when dependencies are built.
