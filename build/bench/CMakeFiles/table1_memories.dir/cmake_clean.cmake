file(REMOVE_RECURSE
  "CMakeFiles/table1_memories.dir/table1_memories.cc.o"
  "CMakeFiles/table1_memories.dir/table1_memories.cc.o.d"
  "table1_memories"
  "table1_memories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_memories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
