# Empty compiler generated dependencies file for occupancy_model.
# This may be replaced when dependencies are built.
