file(REMOVE_RECURSE
  "CMakeFiles/occupancy_model.dir/occupancy_model.cc.o"
  "CMakeFiles/occupancy_model.dir/occupancy_model.cc.o.d"
  "occupancy_model"
  "occupancy_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occupancy_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
