file(REMOVE_RECURSE
  "CMakeFiles/ablation_regpressure.dir/ablation_regpressure.cc.o"
  "CMakeFiles/ablation_regpressure.dir/ablation_regpressure.cc.o.d"
  "ablation_regpressure"
  "ablation_regpressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_regpressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
