# Empty compiler generated dependencies file for ablation_regpressure.
# This may be replaced when dependencies are built.
