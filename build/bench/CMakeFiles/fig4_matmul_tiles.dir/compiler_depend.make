# Empty compiler generated dependencies file for fig4_matmul_tiles.
# This may be replaced when dependencies are built.
