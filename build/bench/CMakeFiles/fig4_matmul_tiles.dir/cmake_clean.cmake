file(REMOVE_RECURSE
  "CMakeFiles/fig4_matmul_tiles.dir/fig4_matmul_tiles.cc.o"
  "CMakeFiles/fig4_matmul_tiles.dir/fig4_matmul_tiles.cc.o.d"
  "fig4_matmul_tiles"
  "fig4_matmul_tiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_matmul_tiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
