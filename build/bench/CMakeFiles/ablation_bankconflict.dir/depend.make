# Empty dependencies file for ablation_bankconflict.
# This may be replaced when dependencies are built.
