file(REMOVE_RECURSE
  "CMakeFiles/ablation_bankconflict.dir/ablation_bankconflict.cc.o"
  "CMakeFiles/ablation_bankconflict.dir/ablation_bankconflict.cc.o.d"
  "ablation_bankconflict"
  "ablation_bankconflict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bankconflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
