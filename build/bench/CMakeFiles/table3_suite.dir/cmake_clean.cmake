file(REMOVE_RECURSE
  "CMakeFiles/table3_suite.dir/table3_suite.cc.o"
  "CMakeFiles/table3_suite.dir/table3_suite.cc.o.d"
  "table3_suite"
  "table3_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
