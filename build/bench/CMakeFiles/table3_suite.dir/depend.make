# Empty dependencies file for table3_suite.
# This may be replaced when dependencies are built.
