file(REMOVE_RECURSE
  "CMakeFiles/carve_matmul.dir/carve_matmul.cc.o"
  "CMakeFiles/carve_matmul.dir/carve_matmul.cc.o.d"
  "carve_matmul"
  "carve_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carve_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
