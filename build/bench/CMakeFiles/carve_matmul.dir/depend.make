# Empty dependencies file for carve_matmul.
# This may be replaced when dependencies are built.
