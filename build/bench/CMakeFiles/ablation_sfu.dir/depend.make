# Empty dependencies file for ablation_sfu.
# This may be replaced when dependencies are built.
