file(REMOVE_RECURSE
  "CMakeFiles/ablation_sfu.dir/ablation_sfu.cc.o"
  "CMakeFiles/ablation_sfu.dir/ablation_sfu.cc.o.d"
  "ablation_sfu"
  "ablation_sfu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sfu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
