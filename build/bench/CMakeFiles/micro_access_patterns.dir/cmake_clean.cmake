file(REMOVE_RECURSE
  "CMakeFiles/micro_access_patterns.dir/micro_access_patterns.cc.o"
  "CMakeFiles/micro_access_patterns.dir/micro_access_patterns.cc.o.d"
  "micro_access_patterns"
  "micro_access_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_access_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
