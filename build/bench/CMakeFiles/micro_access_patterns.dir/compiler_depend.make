# Empty compiler generated dependencies file for micro_access_patterns.
# This may be replaced when dependencies are built.
