file(REMOVE_RECURSE
  "CMakeFiles/table2_kernel_fraction.dir/table2_kernel_fraction.cc.o"
  "CMakeFiles/table2_kernel_fraction.dir/table2_kernel_fraction.cc.o.d"
  "table2_kernel_fraction"
  "table2_kernel_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_kernel_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
