
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_kernel_fraction.cc" "bench/CMakeFiles/table2_kernel_fraction.dir/table2_kernel_fraction.cc.o" "gcc" "bench/CMakeFiles/table2_kernel_fraction.dir/table2_kernel_fraction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/g80_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/g80_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cudalite/CMakeFiles/g80_cudalite.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/g80_common.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/g80_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/occupancy/CMakeFiles/g80_occupancy.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/g80_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/g80_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/g80_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
