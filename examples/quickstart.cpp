// Quickstart: write a kernel, launch it on the simulated GeForce 8800 GTX,
// and read the performance report.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>
#include <vector>

#include "common/str.h"
#include "core/report.h"
#include "cudalite/ctx.h"
#include "cudalite/device.h"
#include "cudalite/launch.h"

using namespace g80;

// A kernel is a struct with a templated operator(): the same source runs
// functionally (full grid) and instrumented (sampled blocks, feeds the
// timing model).  Arithmetic goes through ctx so the tracer can count
// PTX-level instruction classes the way the paper does in §4.1.
struct VectorScaleAdd {
  float alpha;
  int n;

  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& x,
                  DeviceBuffer<float>& out) const {
    auto X = ctx.global(x);
    auto Out = ctx.global(out);
    ctx.ialu(2);  // index computation
    const int i = ctx.global_thread_x();
    if (ctx.branch(i < n)) {
      Out.st(i, ctx.mad(alpha, X.ld(i), 1.0f));
    }
  }
};

int main() {
  // 1. Create the device (the paper's GeForce 8800 GTX by default).
  Device dev;
  std::cout << "device: " << dev.spec().name << ", "
            << dev.spec().num_sms << " SMs, peak "
            << fixed(dev.spec().peak_mad_gflops(), 1) << " GFLOPS, "
            << fixed(dev.spec().dram_bandwidth_gbs, 1) << " GB/s\n\n";

  // 2. Allocate device memory and copy inputs (transfers are logged and
  //    costed like PCIe copies).
  const int n = 1 << 20;
  std::vector<float> host_x(n, 2.0f);
  auto x = dev.alloc<float>(n);
  auto out = dev.alloc<float>(n);
  x.copy_from_host(host_x);

  // 3. Launch: grid/block geometry exactly like CUDA.
  LaunchOptions opt;
  opt.regs_per_thread = 5;
  opt.uses_sync = false;  // no __syncthreads -> fast execution path
  const auto stats = launch(dev, Dim3(n / 256), Dim3(256), opt,
                            VectorScaleAdd{3.0f, n}, x, out);

  // 4. Check results.
  const auto result = out.copy_to_host();
  std::cout << "out[0] = " << result[0] << " (expect 7)\n\n";

  // 5. Read the performance report — occupancy, instruction mix, memory
  //    behaviour, the timing model's floors, and the advisor's suggestions.
  std::cout << launch_report(dev.spec(), stats);
  return 0;
}
