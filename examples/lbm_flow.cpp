// Domain example: lattice-Boltzmann shear-wave decay on the simulated GPU,
// with the Figure 5 data-layout comparison and a physics cross-check (the
// wave amplitude must decay viscously but identically under every layout).
#include <cmath>
#include <iostream>

#include "apps/lbm/lbm.h"
#include "common/str.h"
#include "common/table.h"
#include "cudalite/device.h"

using namespace g80;
using namespace g80::apps;

namespace {

double uy_amplitude(const LbmParams& p, const std::vector<float>& f) {
  const std::size_t cells = p.cells();
  double amp = 0;
  for (std::size_t c = 0; c < cells; ++c) {
    double uy = 0, rho = 0;
    for (int q = 0; q < kLbmQ; ++q) {
      const double fq = f[static_cast<std::size_t>(q) * cells + c];
      rho += fq;
      uy += kLbmEy[q] * fq;
    }
    amp = std::max(amp, std::abs(uy / rho));
  }
  return amp;
}

}  // namespace

int main() {
  LbmParams p;
  p.nx = 128;
  p.ny = 8;
  p.nz = 8;
  p.steps = 8;
  const auto w = LbmWorkload::generate(p);
  std::cout << "D3Q19 lattice-Boltzmann, " << p.nx << "x" << p.ny << "x"
            << p.nz << " lattice, " << p.steps << " steps, tau=" << p.tau
            << "\ninitial shear-wave amplitude: "
            << fixed(uy_amplitude(p, w.f0), 5) << "\n\n";

  TextTable t({"layout", "final amplitude", "coalesced %", "ms/step",
               "bottleneck"});
  for (const auto& [name, layout] :
       {std::pair{"AoS f[cell][q]", LbmLayout::kAoS},
        std::pair{"SoA f[q][cell]", LbmLayout::kSoA},
        std::pair{"SoA + staged rows", LbmLayout::kSoAStaged}}) {
    Device dev;
    std::vector<float> f_out;
    const auto stats = lbm_gpu(dev, p, layout, w.f0, f_out, nullptr);
    t.add_row({name, fixed(uy_amplitude(p, f_out), 5),
               fixed(100 * stats.trace.coalesced_fraction(), 1),
               fixed(stats.timing.seconds * 1e3, 3),
               std::string(bottleneck_name(stats.timing.bottleneck))});
  }
  t.print(std::cout);
  std::cout << "\nall layouts compute the same physics; only the DRAM access "
               "pattern — and so the\nsimulated time — differs (the paper's "
               "Figure 5 point)\n";
  return 0;
}
