// Walks the paper's §4 optimization process interactively: start from the
// naive matrix-multiplication kernel, follow the advisor's diagnosis at each
// step, and use the autotuner to sweep the configuration space the way §6
// wishes a tool would.
//
//   ./build/examples/matmul_tuning [n]    (n defaults to 1024, multiple of 48)
#include <cstdlib>
#include <iostream>

#include "apps/matmul/matmul.h"
#include "common/str.h"
#include "core/advisor.h"
#include "core/autotuner.h"
#include "cudalite/device.h"

using namespace g80;
using namespace g80::apps;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 1024;
  if (n <= 0 || n % 48 != 0) {
    std::cerr << "n must be a positive multiple of 48 (tile sizes 4/8/12/16)\n";
    return 1;
  }

  Device dev;
  auto da = dev.alloc<float>(static_cast<std::size_t>(n) * n);
  auto db = dev.alloc<float>(static_cast<std::size_t>(n) * n);
  auto dc = dev.alloc<float>(static_cast<std::size_t>(n) * n);

  std::cout << "== Step 1: naive kernel (one thread per C element) ==\n";
  const auto naive =
      run_matmul(dev, {MatmulVariant::kNaive, 16}, n, da, db, dc, false);
  std::cout << "  " << fixed(naive.timing.gflops, 2) << " GFLOPS, bottleneck: "
            << bottleneck_name(naive.timing.bottleneck) << "\n"
            << format_advice(advise(dev.spec(), naive)) << "\n";

  std::cout << "== Step 2: follow the advice — tile through shared memory ==\n";
  const auto tiled =
      run_matmul(dev, {MatmulVariant::kTiled, 16}, n, da, db, dc, false);
  std::cout << "  " << fixed(tiled.timing.gflops, 2) << " GFLOPS ("
            << fixed(tiled.timing.gflops / naive.timing.gflops, 2)
            << "x), bottleneck: " << bottleneck_name(tiled.timing.bottleneck)
            << "\n" << format_advice(advise(dev.spec(), tiled)) << "\n";

  std::cout << "== Step 3: unroll the inner loop (instruction efficiency) ==\n";
  const auto unrolled =
      run_matmul(dev, {MatmulVariant::kTiledUnrolled, 16}, n, da, db, dc, false);
  std::cout << "  " << fixed(unrolled.timing.gflops, 2) << " GFLOPS ("
            << fixed(unrolled.timing.gflops / naive.timing.gflops, 2)
            << "x over naive), fmad mix "
            << fixed(100 * unrolled.trace.fmad_fraction(), 1) << "%\n\n";

  std::cout << "== Step 4: autotune the full configuration space ==\n";
  Autotuner tuner;
  for (int tile : {4, 8, 12, 16}) {
    if (n % tile != 0) continue;
    for (auto v : {MatmulVariant::kTiled, MatmulVariant::kTiledUnrolled}) {
      const MatmulConfig cfg{v, tile};
      tuner.add(cfg.name(),
                [&, cfg] { return run_matmul(dev, cfg, n, da, db, dc, false); });
    }
  }
  const MatmulConfig pf{MatmulVariant::kPrefetch, 16};
  tuner.add(pf.name(), [&] { return run_matmul(dev, pf, n, da, db, dc, false); });
  std::cout << tuner.sweep().to_table(dev.spec()) << "\n"
            << "(§4.4's lesson appears in the last row: prefetching costs a "
               "register, a block of\noccupancy, and ~3-5% of throughput)\n";
  return 0;
}
