// Domain example: Monte-Carlo analysis of a stochastic Petri net — the
// paper's PNS pattern (one independent simulation per thread, no
// inter-thread communication, read-only structure tables in texture
// memory).  Runs thousands of replicas on the simulated GPU, checks them
// bit-exactly against the CPU (counter-based RNG makes the trajectories a
// pure function of the replica index), and reports throughput statistics.
#include <iostream>

#include "apps/pns/pns.h"
#include "common/stats.h"
#include "common/str.h"
#include "core/report.h"
#include "cudalite/device.h"

using namespace g80;
using namespace g80::apps;

int main() {
  const int num_sims = 8192, steps = 256;
  const auto net = PnsNet::generate(/*seed=*/2026);
  std::cout << "Stochastic Petri net: " << kPnsPlaces << " places, "
            << kPnsTransitions << " transitions; " << num_sims
            << " replicas x " << steps << " steps\n\n";

  // --- GPU run ---
  Device dev;
  auto d_init = dev.alloc<std::int32_t>(net.initial_marking.size());
  d_init.copy_from_host(net.initial_marking);
  auto d_in_g = dev.alloc<std::int32_t>(net.in.size());
  auto d_out_g = dev.alloc<std::int32_t>(net.out.size());
  d_in_g.copy_from_host(net.in);
  d_out_g.copy_from_host(net.out);
  auto d_in_t = dev.alloc_texture<std::int32_t>(net.in.size());
  auto d_out_t = dev.alloc_texture<std::int32_t>(net.out.size());
  d_in_t.copy_from_host(net.in);
  d_out_t.copy_from_host(net.out);
  auto d_marking =
      dev.alloc<std::int32_t>(static_cast<std::size_t>(kPnsPlaces) * num_sims);
  auto d_fired = dev.alloc<std::int32_t>(num_sims);

  PnsKernel kernel;
  kernel.num_sims = num_sims;
  kernel.steps = steps;
  kernel.rng_seed = net.rng_seed;

  LaunchOptions opt;
  opt.regs_per_thread = 24;
  opt.uses_sync = false;
  const auto stats = launch(dev, Dim3(num_sims / 128), Dim3(128), opt, kernel,
                            d_init, d_in_g, d_out_g, d_in_t, d_out_t,
                            d_marking, d_fired);
  const auto fired = d_fired.copy_to_host();

  // --- Spot-check determinism against the CPU reference ---
  int mismatches = 0;
  std::vector<std::int32_t> scratch(kPnsPlaces);
  for (int sim = 0; sim < num_sims; sim += 512) {
    if (pns_simulate_cpu(net, sim, steps, scratch.data()) !=
        fired[static_cast<std::size_t>(sim)])
      ++mismatches;
  }

  // --- Monte-Carlo statistics ---
  RunningStat firing;
  for (int s = 0; s < num_sims; ++s)
    firing.add(static_cast<double>(fired[static_cast<std::size_t>(s)]));

  std::cout << "replica spot-check vs CPU: "
            << (mismatches == 0 ? "bit-exact" : "MISMATCH") << "\n"
            << "fired transitions per replica: mean " << fixed(firing.mean(), 1)
            << ", stddev " << fixed(firing.stddev(), 1) << ", range ["
            << fixed(firing.min(), 0) << ", " << fixed(firing.max(), 0)
            << "] of " << steps << " attempts\n"
            << "simulated GPU: " << launch_summary(dev.spec(), stats) << "\n"
            << "replica throughput: "
            << fixed(num_sims / stats.timing.seconds / 1e6, 2)
            << " M replicas/s\n\n"
            << "(the paper's PNS: per-thread state in global memory bounds "
               "the replica count — Table 3's\ncapacity bottleneck; the "
               "structure tables ride the texture cache, §5.2)\n";
  return mismatches == 0 ? 0 : 1;
}
