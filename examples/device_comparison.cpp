// Portability example (paper principle 4): run the same kernels, untouched,
// across GeForce 8800 family members with different SM counts and clocks,
// and watch compute-bound kernels scale while bandwidth-bound ones track the
// memory system instead.
#include <iostream>

#include "apps/saxpy/saxpy.h"
#include "apps/matmul/matmul.h"
#include "common/str.h"
#include "common/table.h"
#include "cudalite/device.h"

using namespace g80;
using namespace g80::apps;

int main() {
  std::cout << "Same binaries across the GeForce 8800 family\n\n";
  TextTable t({"device", "SMs", "GHz", "GB/s", "matmul GFLOPS (compute)",
               "saxpy GB/s (bandwidth)"});

  for (const auto& spec :
       {DeviceSpec::geforce_8800_gts(), DeviceSpec::geforce_8800_gtx(),
        DeviceSpec::geforce_8800_ultra()}) {
    Device dev(spec);

    // Compute-bound: 1024x1024 unrolled matmul.
    const int n = 1024;
    auto da = dev.alloc<float>(static_cast<std::size_t>(n) * n);
    auto db = dev.alloc<float>(static_cast<std::size_t>(n) * n);
    auto dc = dev.alloc<float>(static_cast<std::size_t>(n) * n);
    const auto mm = run_matmul(dev, {MatmulVariant::kTiledUnrolled, 16}, n, da,
                               db, dc, /*functional=*/false);

    // Bandwidth-bound: 4M-element SAXPY.
    const std::size_t len = 1u << 22;
    auto x = dev.alloc<float>(len);
    auto y = dev.alloc<float>(len);
    auto out = dev.alloc<float>(len);
    LaunchOptions opt;
    opt.regs_per_thread = 5;
    opt.uses_sync = false;
    opt.functional = false;
    const auto sx = launch(dev, Dim3(static_cast<unsigned>(len / 256)),
                           Dim3(256), opt,
                           SaxpyKernel{2.0f, static_cast<int>(len)}, x, y, out);

    t.add_row({spec.name, cat(spec.num_sms), fixed(spec.core_clock_ghz, 2),
               fixed(spec.dram_bandwidth_gbs, 1), fixed(mm.timing.gflops, 1),
               fixed(sx.timing.dram_gbs, 1)});
  }
  t.print(std::cout);
  std::cout << "\nmatmul scales with SMs x clock; saxpy scales with memory "
               "bandwidth — knowing which\nregime a kernel is in is the "
               "paper's central diagnostic skill\n";
  return 0;
}
