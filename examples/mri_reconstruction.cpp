// Domain example: the MRI reconstruction front-end (the paper's highest
// speedup pair).  Generates a synthetic non-Cartesian k-space acquisition,
// computes Q and F^H d on the simulated GPU, validates against the CPU
// reference, and prints the performance story — including the SFU
// contribution the paper quantifies at ~30%.
#include <iostream>

#include "apps/mri/mri_fhd.h"
#include "apps/mri/mri_q.h"
#include "common/stats.h"
#include "common/str.h"
#include "common/timer.h"
#include "cudalite/device.h"

using namespace g80;
using namespace g80::apps;

int main() {
  const int voxels = 4096, samples = 512;
  std::cout << "MRI reconstruction front-end: " << voxels << " voxels, "
            << samples << " k-space samples\n\n";
  const auto w = MriWorkload::generate(voxels, samples, 2026);

  // --- CPU reference ---
  Timer cpu_timer;
  std::vector<float> qr_ref, qi_ref, fr_ref, fi_ref;
  mri_q_cpu(w, qr_ref, qi_ref);
  mri_fhd_cpu(w, fr_ref, fi_ref);
  const double cpu_secs = cpu_timer.seconds();

  // --- GPU port ---
  Device dev;
  auto dx = dev.alloc<float>(voxels);
  auto dy = dev.alloc<float>(voxels);
  auto dz = dev.alloc<float>(voxels);
  dx.copy_from_host(w.x);
  dy.copy_from_host(w.y);
  dz.copy_from_host(w.z);
  auto dk = dev.alloc_constant<Float4>(w.samples.size());
  dk.copy_from_host(w.samples);
  auto drho = dev.alloc_constant<Float2>(w.rho.size());
  drho.copy_from_host(w.rho);
  auto dqr = dev.alloc<float>(voxels), dqi = dev.alloc<float>(voxels);
  auto dfr = dev.alloc<float>(voxels), dfi = dev.alloc<float>(voxels);

  LaunchOptions opt;
  opt.regs_per_thread = 11;
  opt.uses_sync = false;
  const Dim3 block(256), grid(voxels / 256);
  const auto q_stats = launch(dev, grid, block, opt, MriQKernel{voxels, true},
                              dx, dy, dz, dk, dqr, dqi);
  const auto f_stats = launch(dev, grid, block, opt, MriFhdKernel{voxels},
                              dx, dy, dz, dk, drho, dfr, dfi);

  // --- Validate ---
  const auto qr = dqr.copy_to_host();
  const auto fr = dfr.copy_to_host();
  double err = 0;
  for (int v = 0; v < voxels; ++v) {
    err = std::max(err, rel_err(qr[v], qr_ref[v], 1e-2));
    err = std::max(err, rel_err(fr[v], fr_ref[v], 1e-2));
  }

  std::cout << "validation:   max rel err " << err << (err < 1e-4 ? "  (ok)\n" : "  (FAIL)\n")
            << "CPU (host):   " << fixed(cpu_secs * 1e3, 1) << " ms for Q + FHd\n"
            << "GPU Q:        " << fixed(q_stats.timing.seconds * 1e3, 3)
            << " ms at " << fixed(q_stats.timing.gflops, 1) << " GFLOPS ("
            << bottleneck_name(q_stats.timing.bottleneck) << ")\n"
            << "GPU FHd:      " << fixed(f_stats.timing.seconds * 1e3, 3)
            << " ms at " << fixed(f_stats.timing.gflops, 1) << " GFLOPS\n"
            << "transfers:    " << fixed(dev.ledger().seconds(dev.spec()) * 1e3, 3)
            << " ms over PCIe\n\n";

  const double sfu_per_warp =
      static_cast<double>(q_stats.trace.total.ops[OpClass::kSfu]) /
      static_cast<double>(q_stats.trace.num_warps);
  std::cout << "the Q kernel issues " << fixed(sfu_per_warp, 0)
            << " SFU (sin/cos) instructions per warp — the paper credits the "
               "SFUs with ~30%\nof MRI's overall speedup; run "
               "./build/bench/ablation_sfu to reproduce that split\n";
  return 0;
}
