// Table 2 analogue: per application, the percentage of single-thread CPU
// execution time spent in the data-parallel kernel phase, and the total
// application speedup that Amdahl's Law therefore permits.
//
// The paper's example: FDTD's kernel takes only 16.4% of execution time,
// limiting potential application speedup to 1.2X.  Our percentages are
// properties of our reimplementations (synthetic workloads, self-contained
// serial phases) and differ numerically from the authors' original codes;
// the qualitative split — simulators with heavy serial phases vs
// kernel-dominated numerical codes — is what carries over.
#include <iostream>

#include "apps/suite.h"
#include "common/str.h"
#include "common/table.h"
#include "hw/device_spec.h"

using namespace g80;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const auto spec = DeviceSpec::geforce_8800_gtx();
  const auto scale = quick ? RunScale::kQuick : RunScale::kFull;

  std::cout << "Table 2 analogue: CPU execution time in kernels "
            << (quick ? "(quick inputs)" : "(full inputs)") << "\n\n";

  TextTable t({"application", "CPU kernel s", "CPU other s", "% in kernel",
               "Amdahl ceiling"});
  for (const auto& app : apps::make_suite()) {
    const auto r = app->run(spec, scale);
    const double ceiling = r.amdahl_ceiling();
    t.add_row({
        r.info.name,
        fixed(r.cpu_kernel_seconds, 4),
        fixed(r.cpu_other_seconds, 4),
        fixed(r.kernel_pct(), 1),
        // A fully-kernel application has no Amdahl cap worth printing.
        ceiling > 1e4 ? "unbounded" : cat(fixed(ceiling, 1), "x"),
    });
  }
  t.print(std::cout);
  std::cout << "\n(CPU seconds are host-measured, scaled to the paper's "
               "2.2 GHz Opteron 248 baseline; see core/cpu_calibration.h)\n";
  return 0;
}
