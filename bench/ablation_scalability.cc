// Ablation: the same CUDA program across GeForce 8800 family members.
//
// Paper principle 4: the absence of global inter-block synchronization
// "enables the execution of the same CUDA program across processor family
// members with a varying number of cores, and makes the hardware scalable."
// We run the unrolled matmul unchanged on the GTS (12 SMs), GTX (16 SMs)
// and Ultra (16 SMs, higher clocks) models.
#include <iostream>

#include "apps/matmul/matmul.h"
#include "common/str.h"
#include "common/table.h"
#include "cudalite/device.h"

using namespace g80;
using namespace g80::apps;

int main() {
  const int n = 4096;
  std::cout << "Ablation: unchanged matmul binary across the GeForce 8800 "
               "family, " << n << "x" << n << "\n\n";

  TextTable t({"device", "SMs", "clock GHz", "DRAM GB/s", "peak GFLOPS",
               "achieved GFLOPS", "% of peak"});
  for (const auto& spec :
       {DeviceSpec::geforce_8800_gts(), DeviceSpec::geforce_8800_gtx(),
        DeviceSpec::geforce_8800_ultra()}) {
    Device dev(spec);
    auto da = dev.alloc<float>(static_cast<std::size_t>(n) * n);
    auto db = dev.alloc<float>(static_cast<std::size_t>(n) * n);
    auto dc = dev.alloc<float>(static_cast<std::size_t>(n) * n);
    const auto stats = run_matmul(dev, {MatmulVariant::kTiledUnrolled, 16}, n,
                                  da, db, dc, /*functional=*/false);
    t.add_row({spec.name, cat(spec.num_sms), fixed(spec.core_clock_ghz, 2),
               fixed(spec.dram_bandwidth_gbs, 1),
               fixed(spec.peak_mad_gflops(), 1),
               fixed(stats.timing.gflops, 2),
               fixed(100 * stats.timing.gflops / spec.peak_mad_gflops(), 1)});
  }
  t.print(std::cout);
  std::cout << "\nthe issue-bound kernel scales with SMs x clock, untouched "
               "(§1 principle 4)\n";
  return 0;
}
