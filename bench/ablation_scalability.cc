// Ablation: the same CUDA program across GeForce 8800 family members,
// plus the simulator's own interpreter-throughput ablation.
//
// Paper principle 4: the absence of global inter-block synchronization
// "enables the execution of the same CUDA program across processor family
// members with a varying number of cores, and makes the hardware scalable."
// We run the unrolled matmul unchanged on the GTS (12 SMs), GTX (16 SMs)
// and Ultra (16 SMs, higher clocks) models.
//
// The second table ablates the *simulator's* execution engine on one fixed
// workload: fiber engine (legacy ucontext vs the hand-rolled fast switch),
// traced vs functional fast path, and worker count.  It shows where the
// interpreter's wall time actually goes; the gated scalability curve with a
// checked-in baseline lives in bench/rt_throughput (docs/performance.md).
#include <chrono>
#include <iostream>

#include "apps/matmul/matmul.h"
#include "common/str.h"
#include "common/table.h"
#include "cudalite/device.h"
#include "cudalite/launch.h"
#include "exec/fiber.h"
#include "exec/worker_pool.h"

using namespace g80;
using namespace g80::apps;

namespace {

// Wall time of one interpreted matmul launch under the given engine knobs.
double interp_seconds(int n, bool fast_path, int workers,
                      Fiber::Backend backend) {
  Device dev;
  auto a = dev.alloc<float>(static_cast<std::size_t>(n) * n);
  auto b = dev.alloc<float>(static_cast<std::size_t>(n) * n);
  auto c = dev.alloc<float>(static_cast<std::size_t>(n) * n);
  const auto wl = MatmulWorkload::generate(n, 42);
  a.copy_from_host(wl.a);
  b.copy_from_host(wl.b);

  const int tile = 16;
  LaunchOptions opt;
  opt.regs_per_thread = 9;
  opt.fast_path = fast_path;
  opt.fiber_backend = backend;
  WorkerPool pool(workers);
  if (workers > 1) opt.pool = &pool;

  const auto t0 = std::chrono::steady_clock::now();
  launch(dev, Dim3(static_cast<unsigned>(n / tile),
                   static_cast<unsigned>(n / tile)),
         Dim3(static_cast<unsigned>(tile), static_cast<unsigned>(tile)), opt,
         MatmulTiledKernel{n, tile, /*unrolled=*/true}, a, b, c);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  const int n = 4096;
  std::cout << "Ablation: unchanged matmul binary across the GeForce 8800 "
               "family, " << n << "x" << n << "\n\n";

  TextTable t({"device", "SMs", "clock GHz", "DRAM GB/s", "peak GFLOPS",
               "achieved GFLOPS", "% of peak"});
  for (const auto& spec :
       {DeviceSpec::geforce_8800_gts(), DeviceSpec::geforce_8800_gtx(),
        DeviceSpec::geforce_8800_ultra()}) {
    Device dev(spec);
    auto da = dev.alloc<float>(static_cast<std::size_t>(n) * n);
    auto db = dev.alloc<float>(static_cast<std::size_t>(n) * n);
    auto dc = dev.alloc<float>(static_cast<std::size_t>(n) * n);
    const auto stats = run_matmul(dev, {MatmulVariant::kTiledUnrolled, 16}, n,
                                  da, db, dc, /*functional=*/false);
    t.add_row({spec.name, cat(spec.num_sms), fixed(spec.core_clock_ghz, 2),
               fixed(spec.dram_bandwidth_gbs, 1),
               fixed(spec.peak_mad_gflops(), 1),
               fixed(stats.timing.gflops, 2),
               fixed(100 * stats.timing.gflops / spec.peak_mad_gflops(), 1)});
  }
  t.print(std::cout);
  std::cout << "\nthe issue-bound kernel scales with SMs x clock, untouched "
               "(§1 principle 4)\n";

  // ---- Simulator interpreter-throughput ablation ------------------------
  const int in = 256;  // small enough that the ucontext row stays snappy
  std::cout << "\nInterpreter ablation: one " << in << "x" << in
            << " tiled matmul launch, host wall time\n\n";
  struct Config {
    const char* name;
    bool fast_path;
    int workers;
    Fiber::Backend backend;
  };
  const Config configs[] = {
      {"ucontext fibers, traced, 1 worker", false, 1,
       Fiber::Backend::kUcontext},
      {"fast fibers,     traced, 1 worker", false, 1, Fiber::Backend::kFast},
      {"fast fibers,     fast path, 1 worker", true, 1, Fiber::Backend::kFast},
      {"fast fibers,     fast path, 2 workers", true, 2,
       Fiber::Backend::kFast},
      {"fast fibers,     fast path, 4 workers", true, 4,
       Fiber::Backend::kFast},
  };
  TextTable it({"engine configuration", "wall ms", "vs ucontext"});
  const double base = interp_seconds(in, false, 1, Fiber::Backend::kUcontext);
  for (const auto& cfg : configs) {
    const double s =
        cfg.backend == Fiber::Backend::kUcontext && !cfg.fast_path &&
                cfg.workers == 1
            ? base
            : interp_seconds(in, cfg.fast_path, cfg.workers, cfg.backend);
    it.add_row({cfg.name, fixed(1e3 * s, 1), fixed(base / s, 2) + "x"});
  }
  it.print(std::cout);
  std::cout << "\nwall numbers are host-dependent; the regression-gated curve "
               "is BENCH_rt_throughput.json\n";
  return 0;
}
