// Fault-injection campaign over the 13-application suite (resil/campaign.h):
// for every (application, fault kind, thread, store index, block) case,
// assert the g80resil recovery contract — the fault is detected by g80check,
// Device::reset() restores a clean device, and a from-scratch relaunch
// reproduces the pre-fault output digest bit-for-bit.
//
// Emits one result row per application (cases/detected/recovered/identical)
// plus a campaign-wide total row whose `all_passed` metric the regression
// baseline pins at 1.  Set G80_CAMPAIGN_SMOKE=1 to run one case per
// applicable fault kind per application (the tier-1 / check_resil.sh mode).
#include <cstdlib>
#include <map>

#include "bench/harness.h"
#include "resil/campaign.h"

int main(int argc, char** argv) {
  using namespace g80;
  bench::Harness h(argc, argv, "resil_campaign");

  resil::CampaignConfig cfg;
  const char* smoke = std::getenv("G80_CAMPAIGN_SMOKE");
  cfg.smoke = smoke != nullptr && smoke[0] != '\0' && smoke[0] != '0';

  const auto targets = resil::default_targets();
  const auto report = resil::run_campaign(targets, cfg);

  struct Tally {
    int total = 0, detected = 0, recovered = 0, identical = 0;
  };
  std::map<std::string, Tally> per_target;
  for (const auto& c : report.cases) {
    auto& t = per_target[c.target];
    ++t.total;
    t.detected += c.detected ? 1 : 0;
    t.recovered += c.recovered ? 1 : 0;
    t.identical += c.identical ? 1 : 0;
  }
  // Rows in target order (the map is keyed alphabetically; follow the suite).
  for (const auto& t : targets) {
    const auto& tally = per_target[t.name];
    auto& r = h.result(t.name);
    r.set("cases", tally.total);
    r.set("detected", tally.detected);
    r.set("recovered", tally.recovered);
    r.set("identical", tally.identical);
  }
  auto& total = h.result("campaign-total");
  total.set("cases", report.total());
  total.set("detected", report.detected());
  total.set("recovered", report.recovered());
  total.set("identical", report.identical());
  total.set("all_passed", report.all_passed() ? 1 : 0);

  h.human() << report.summary() << "\n";
  const int rc = h.finish(DeviceSpec::geforce_8800_gtx());
  return report.all_passed() ? rc : 1;
}
