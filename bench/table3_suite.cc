// Table 3 analogue: per-application characteristics and speedups of the
// optimized CUDA ports on the simulated GeForce 8800 GTX.
//
// Columns mirror the paper's Table 3:
//   max simultaneously active threads (occupancy x 16 SMs),
//   registers/thread, shared memory/thread,
//   global-memory-to-computation cycle ratio,
//   GPU execution %, CPU-GPU transfer %,
//   architectural bottleneck, kernel speedup, application speedup.
//
// The paper reports kernel speedups of 10.5X-457X and application speedups
// of 1.16X-431X across the suite; the ordering (MRI/CP/RPES/TPACF high,
// time-sliced bandwidth-bound simulators low, FDTD Amdahl-capped) is the
// shape this bench reproduces.
#include <iostream>

#include "apps/suite.h"
#include "common/str.h"
#include "common/table.h"
#include "core/cpu_calibration.h"
#include "hw/device_spec.h"
#include "timing/model.h"

using namespace g80;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const auto spec = DeviceSpec::geforce_8800_gtx();
  const auto scale = quick ? RunScale::kQuick : RunScale::kFull;

  std::cout << "Table 3 analogue: optimized application implementations on "
            << spec.name << (quick ? " (quick inputs)" : "") << "\n"
            << "CPU baseline scaled by "
            << fixed(cpu_calibration().host_to_opteron(), 2)
            << "x (host " << fixed(cpu_calibration().host_gflops, 2)
            << " GFLOPS vs Opteron 248 "
            << fixed(cpu_calibration().opteron_gflops, 2) << " GFLOPS)\n\n";

  TextTable t({"application", "max threads", "regs", "smem B/thr",
               "mem:compute", "GPU exec %", "transfer %", "bottleneck",
               "kernel X", "app X", "paper kernel X", "paper app X"});
  for (const auto& app : apps::make_suite()) {
    const auto r = app->run(spec, scale);
    const auto& rep = r.representative;
    const double smem_per_thread =
        static_cast<double>(rep.smem_per_block) /
        static_cast<double>(rep.block.count());
    t.add_row({
        r.info.name,
        cat(rep.occupancy.max_simultaneous_threads(spec)),
        cat(rep.regs_per_thread),
        fixed(smem_per_thread, 1),
        fixed(rep.timing.mem_to_compute_ratio, 2),
        fixed(r.gpu_exec_pct(), 1),
        fixed(r.transfer_pct(), 1),
        std::string(bottleneck_name(rep.timing.bottleneck)),
        fixed(r.kernel_speedup(), 1),
        fixed(r.app_speedup(), 1),
        r.info.paper_kernel_speedup ? fixed(*r.info.paper_kernel_speedup, 1)
                                    : "-",
        r.info.paper_app_speedup ? fixed(*r.info.paper_app_speedup, 1) : "-",
    });
  }
  t.print(std::cout);
  std::cout << "\npaper suite ranges: kernel 10.5X-457X, application "
               "1.16X-431X (abstract)\n";
  return 0;
}
