// Ablation: special-function-unit trigonometry in the MRI kernels.
//
// §5.1: "a substantial number of executed operations are trigonometry
// functions; the SFUs execute these much faster than even CPU fast math
// libraries.  This accounts for approximately 30% of the speedup."
// We run MRI-Q with sin/cos on the SFUs versus a software polynomial
// expansion issued on the SPs and report the ratio.
#include <iostream>

#include "apps/mri/mri_q.h"
#include "common/str.h"
#include "common/table.h"
#include "cudalite/device.h"

using namespace g80;
using namespace g80::apps;

int main() {
  const int voxels = 8192, samples = 1024;
  const auto w = MriWorkload::generate(voxels, samples, /*seed=*/21);

  Device dev;
  auto dx = dev.alloc<float>(voxels);
  auto dy = dev.alloc<float>(voxels);
  auto dz = dev.alloc<float>(voxels);
  dx.copy_from_host(w.x);
  dy.copy_from_host(w.y);
  dz.copy_from_host(w.z);
  auto dk = dev.alloc_constant<Float4>(w.samples.size());
  dk.copy_from_host(w.samples);
  auto dqr = dev.alloc<float>(voxels);
  auto dqi = dev.alloc<float>(voxels);

  LaunchOptions opt;
  opt.regs_per_thread = 11;
  opt.uses_sync = false;
  opt.functional = false;  // timing-only; functional equivalence is tested
  const Dim3 block(256);
  const Dim3 grid(static_cast<unsigned>((voxels + 255) / 256));

  const auto with_sfu = launch(dev, grid, block, opt, MriQKernel{voxels, true},
                               dx, dy, dz, dk, dqr, dqi);
  const auto without = launch(dev, grid, block, opt, MriQKernel{voxels, false},
                              dx, dy, dz, dk, dqr, dqi);

  std::cout << "Ablation: SFU trigonometry in MRI-Q (" << voxels
            << " voxels x " << samples << " k-space samples)\n\n";
  TextTable t({"configuration", "time (ms)", "GFLOPS", "sfu instrs/warp",
               "bottleneck"});
  for (const auto& [name, s] :
       {std::pair{"sin/cos on SFU", &with_sfu},
        std::pair{"software sin/cos on SPs", &without}}) {
    t.add_row({name, fixed(s->timing.seconds * 1e3, 3),
               fixed(s->timing.gflops, 2),
               fixed(static_cast<double>(s->trace.total.ops[OpClass::kSfu]) /
                         static_cast<double>(s->trace.num_warps),
                     0),
               std::string(bottleneck_name(s->timing.bottleneck))});
  }
  t.print(std::cout);

  const double ratio = without.timing.seconds / with_sfu.timing.seconds;
  std::cout << "\nSFU speedup contribution: " << fixed(ratio, 2)
            << "x (paper: trigonometry on SFUs accounts for ~30% of MRI's "
               "total speedup,\ni.e. a ~1.3-2x kernel-level factor depending "
               "on the trig fraction)\n";
  return 0;
}
