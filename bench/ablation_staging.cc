// Ablation: shared-memory buffering of the H.264 search window.
//
// §5.2: "One use of shared memory is buffering to improve the access pattern
// of global memory."  H.264's SAD loop reads the same 16x16 macroblock and
// a 31x31 reference window from 256 threads; staging both through shared
// memory replaces 512 divergent-offset global reads per candidate with two
// cooperative, mostly-coalesced tile loads.
#include <iostream>

#include "apps/h264/h264.h"
#include "common/str.h"
#include "common/table.h"
#include "core/report.h"
#include "cudalite/device.h"

using namespace g80;
using namespace g80::apps;

int main() {
  const int width = 192, height = 128;
  const auto w = H264Workload::generate(width, height, /*seed=*/91);

  Device dev;
  auto d_cur = dev.alloc<std::int32_t>(w.cur.size());
  auto d_ref = dev.alloc<std::int32_t>(w.ref.size());
  d_cur.copy_from_host(w.cur);
  d_ref.copy_from_host(w.ref);
  auto d_sad = dev.alloc<std::int32_t>(w.num_mbs());
  auto d_cand = dev.alloc<std::int32_t>(w.num_mbs());

  LaunchOptions opt;
  opt.regs_per_thread = 15;
  opt.functional = false;
  opt.sample_blocks = 2;
  const Dim3 block(kCandidates);
  const Dim3 grid(static_cast<unsigned>(w.mbs_x()),
                  static_cast<unsigned>(w.mbs_y()));

  std::cout << "Ablation: H.264 motion-estimation window buffering (" << width
            << "x" << height << " frame, " << w.num_mbs()
            << " macroblocks)\n\n";
  TextTable t({"SAD operands", "time (ms)", "global loads/warp",
               "coalesced %", "DRAM GB/s", "bottleneck"});

  LaunchStats results[2];
  int row = 0;
  for (const auto& [name, staged] :
       {std::pair{"staged in shared memory", true},
        std::pair{"read from global memory", false}}) {
    H264MeKernel k{width, height, staged};
    const auto s =
        launch(dev, grid, block, opt, k, d_cur, d_ref, d_sad, d_cand);
    results[row++] = s;
    t.add_row({name, fixed(s.timing.seconds * 1e3, 3),
               fixed(s.trace.mean_global_instructions(), 0),
               fixed(100 * s.trace.coalesced_fraction(), 1),
               fixed(s.timing.dram_gbs, 1),
               std::string(bottleneck_name(s.timing.bottleneck))});
  }
  t.print(std::cout);
  std::cout << "\nshared-memory buffering speedup: "
            << fixed(results[1].timing.seconds / results[0].timing.seconds, 2)
            << "x (§5.2's buffering optimization)\n\nfull report for the "
               "staged kernel:\n\n"
            << launch_report(dev.spec(), results[0]);
  return 0;
}
