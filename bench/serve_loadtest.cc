// g80serve loadtest: hundreds of concurrent sessions against one daemon.
//
// Phases:
//   cold — one session simulates the 24-job working set (every job a cache
//          miss, every result recorded as the reference bytes);
//   warm — kSessions concurrent client threads re-request jobs from the
//          same working set; every response must be a cache hit and
//          byte-identical to the cold reference.
//
// The deterministic metrics (job/session/error counts, cache counters, the
// bit_identical and warm_speedup_ok gates) are regression-diffed against
// bench/baselines/BENCH_serve_loadtest.json; wall_* metrics (throughput,
// client-observed latency percentiles, the measured speedup) are recorded
// for context only.
//
// g80obs reconciliation: the daemon is scraped through the `metrics`
// protocol op before and after the run.  A scrape's snapshot is taken
// before its own response is counted, so the delta between the two scrapes
// covers exactly the traffic in between plus one scrape (the first one's
// response pairs with the second one's request) — the run asserts
// delta(requests) == delta(responses) == the exact request count it issued,
// and that every one of those requests produced a complete trace
// (delta(traces_total) == delta(traces_complete_total)).  Server-side
// per-phase latency percentiles (parse/admission/queue_wait/simulate/...)
// come from the same scrape and are reported as wall_ context.
//
// By default the bench hosts an in-process Server; set G80_SERVE_SOCKET to
// point it at an externally started g80served instead (scripts/
// check_serve.sh drives the daemon binary through this).
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "serve/client.h"
#include "serve/server.h"

namespace g80::serve {
namespace {

constexpr int kSessions = 120;
constexpr int kJobsPerSession = 4;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double percentile_ms(std::vector<double>& seconds, double p) {
  if (seconds.empty()) return 0;
  std::sort(seconds.begin(), seconds.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(seconds.size() - 1));
  return seconds[idx] * 1e3;
}

// One `metrics` scrape, flattened for delta arithmetic: counter/gauge
// values and histogram (count, p50, p99) keyed by metric name.
struct Scrape {
  bool ok = false;
  std::map<std::string, double> value;  // counters and gauges
  std::map<std::string, double> count;  // histogram observation counts
  std::map<std::string, double> p50;
  std::map<std::string, double> p99;

  double delta_value(const Scrape& earlier, const std::string& name) const {
    const auto it = value.find(name);
    const auto jt = earlier.value.find(name);
    return (it != value.end() ? it->second : 0) -
           (jt != earlier.value.end() ? jt->second : 0);
  }
  double delta_count(const Scrape& earlier, const std::string& name) const {
    const auto it = count.find(name);
    const auto jt = earlier.count.find(name);
    return (it != count.end() ? it->second : 0) -
           (jt != earlier.count.end() ? jt->second : 0);
  }
};

Scrape scrape_metrics(Client& client) {
  Scrape s;
  JobRequest req;
  req.op = Op::kMetrics;
  const Response r = client.call(req);
  if (!r.ok()) return s;  // daemon runs with metrics disabled
  const JsonValue& metrics = r.doc.require("result").require("metrics");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const JsonValue& m = metrics.at(i);
    const std::string name = m.get_string("name", "");
    if (m.get_string("kind", "") == "histogram") {
      s.count[name] = m.get_number("count", 0);
      s.p50[name] = m.get_number("p50", 0);
      s.p99[name] = m.get_number("p99", 0);
    } else {
      s.value[name] = m.get_number("value", 0);
    }
  }
  s.ok = true;
  return s;
}

// The 24-job working set: saxpy and matmul variants spread over the three
// device classes.  Heavy enough that a cold simulation dwarfs a cache
// lookup, small enough that the cold phase stays a few seconds.
std::vector<JobRequest> working_set(std::uint64_t seed) {
  std::vector<JobRequest> jobs;
  const char* classes[] = {"gtx", "ultra", "gts"};
  for (int i = 0; i < 8; ++i) {
    JobRequest req;
    req.op = Op::kLaunch;
    req.kernel = "saxpy";
    req.n = 32768 + 4096 * i;
    req.seed = static_cast<std::int64_t>(seed + i);
    req.device_class = classes[i % 3];
    jobs.push_back(req);
  }
  const char* variants[] = {"tiled", "tiled_unrolled", "prefetch", "regtiled"};
  for (int i = 0; i < 16; ++i) {
    JobRequest req;
    req.op = Op::kLaunch;
    req.kernel = "matmul";
    req.n = 96;
    req.tile = 16;
    req.variant = variants[i % 4];
    req.seed = static_cast<std::int64_t>(seed + 100 + i / 4);
    req.device_class = classes[i % 3];
    jobs.push_back(req);
  }
  return jobs;
}

}  // namespace

int loadtest_main(int argc, char** argv) {
  bench::Harness h(argc, argv, "serve_loadtest");

  // Hosting: in-process server unless G80_SERVE_SOCKET points elsewhere.
  std::optional<Server> server;
  std::string socket_path;
  if (const char* external = std::getenv("G80_SERVE_SOCKET")) {
    socket_path = external;
    h.human() << "driving external daemon at " << socket_path << "\n";
  } else {
    ServerConfig cfg;
    cfg.socket_path =
        "/tmp/g80s_load_" + std::to_string(::getpid()) + ".sock";
    cfg.pool.gtx_slots = 2;
    cfg.pool.ultra_slots = 1;
    cfg.pool.gts_slots = 1;
    cfg.pool.max_queue_depth = 256;
    cfg.obs.log_level = obs::LogLevel::kWarn;  // keep bench stderr quiet
    server.emplace(cfg);
    server->start();
    socket_path = cfg.socket_path;
  }

  const std::vector<JobRequest> jobs = working_set(h.seed());

  // The probe session lives for the whole run: its hello lands before the
  // first scrape, so the scrape-to-scrape deltas below cover exactly the
  // cold + warm + stats traffic plus one scrape.
  Client probe(socket_path, "loadtest-probe");
  const Scrape before = scrape_metrics(probe);

  // --- cold phase -----------------------------------------------------------
  std::vector<std::string> reference(jobs.size());
  std::vector<double> cold_latencies;
  int cold_errors = 0;
  const double cold_start = now_seconds();
  {
    Client warmer(socket_path, "loadtest-warmer");
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const double t0 = now_seconds();
      const Response r = warmer.call(jobs[i]);
      cold_latencies.push_back(now_seconds() - t0);
      if (!r.ok() || r.source != "sim") {
        ++cold_errors;
        h.human() << "cold job " << i << " failed: " << r.error << "\n";
        continue;
      }
      reference[i] = r.result_json;
    }
  }
  const double cold_wall = now_seconds() - cold_start;

  // --- warm phase -----------------------------------------------------------
  std::atomic<int> warm_errors{0};
  std::atomic<int> warm_cache_hits{0};
  std::atomic<int> warm_mismatches{0};
  std::mutex latencies_mu;
  std::vector<double> warm_latencies;
  const double warm_start = now_seconds();
  {
    std::vector<std::thread> threads;
    threads.reserve(kSessions);
    for (int s = 0; s < kSessions; ++s) {
      threads.emplace_back([&, s] {
        std::vector<double> local_latencies;
        try {
          Client client(socket_path, "loadtest-" + std::to_string(s));
          for (int j = 0; j < kJobsPerSession; ++j) {
            const std::size_t idx =
                (static_cast<std::size_t>(s) * 7 + static_cast<std::size_t>(j)) %
                jobs.size();
            const double t0 = now_seconds();
            const Response r = client.call(jobs[idx]);
            local_latencies.push_back(now_seconds() - t0);
            if (!r.ok()) {
              ++warm_errors;
              continue;
            }
            if (r.source == "cache_mem" || r.source == "cache_disk") {
              ++warm_cache_hits;
            }
            if (r.result_json != reference[idx]) ++warm_mismatches;
          }
        } catch (const Error&) {
          warm_errors += kJobsPerSession;
        }
        std::lock_guard<std::mutex> lock(latencies_mu);
        warm_latencies.insert(warm_latencies.end(), local_latencies.begin(),
                              local_latencies.end());
      });
    }
    for (auto& t : threads) t.join();
  }
  const double warm_wall = now_seconds() - warm_start;

  // --- cache counters (via the protocol, so external daemons work too) -----
  double cache_misses = 0, cache_hits = 0, cache_stores = 0,
         cache_evictions = 0;
  {
    JobRequest stats;
    stats.op = Op::kStats;
    const Response r = probe.call(stats);
    if (r.ok()) {
      const JsonValue& cache =
          r.doc.require("result").require("server").require("cache");
      cache_misses = static_cast<double>(cache.get_int("misses", 0));
      cache_hits = static_cast<double>(cache.get_int("mem_hits", 0) +
                                       cache.get_int("disk_hits", 0));
      cache_stores = static_cast<double>(cache.get_int("stores", 0));
      cache_evictions = static_cast<double>(cache.get_int("evictions", 0));
    }
  }

  // --- g80obs scrape: counter reconciliation and span completeness ---------
  const Scrape after = scrape_metrics(probe);
  if (server) server->shutdown();

  // --- report ---------------------------------------------------------------
  const int warm_jobs = kSessions * kJobsPerSession;
  const double cold_throughput =
      cold_wall > 0 ? static_cast<double>(jobs.size()) / cold_wall : 0;
  const double warm_throughput =
      warm_wall > 0 ? static_cast<double>(warm_jobs) / warm_wall : 0;
  const double speedup =
      cold_throughput > 0 ? warm_throughput / cold_throughput : 0;
  const bool bit_identical = warm_mismatches == 0 && cold_errors == 0;

  h.human() << "cold: " << jobs.size() << " jobs in " << cold_wall << " s ("
            << cold_throughput << " jobs/s)\n"
            << "warm: " << kSessions << " sessions x " << kJobsPerSession
            << " jobs in " << warm_wall << " s (" << warm_throughput
            << " jobs/s, " << speedup << "x cold)\n"
            << "errors: " << cold_errors + warm_errors.load()
            << ", mismatches: " << warm_mismatches.load() << "\n";

  auto& cold = h.result("cold");
  cold.set("jobs", static_cast<double>(jobs.size()));
  cold.set("errors", cold_errors);
  cold.set("wall_seconds", cold_wall);
  cold.set("wall_p50_ms", percentile_ms(cold_latencies, 0.50));
  cold.set("wall_jobs_per_s", cold_throughput);

  auto& warm = h.result("warm");
  warm.set("sessions", kSessions);
  warm.set("jobs", warm_jobs);
  warm.set("errors", warm_errors.load());
  warm.set("cache_hits_observed", warm_cache_hits.load());
  warm.set("wall_seconds", warm_wall);
  warm.set("wall_p50_ms", percentile_ms(warm_latencies, 0.50));
  warm.set("wall_p99_ms", percentile_ms(warm_latencies, 0.99));
  warm.set("wall_jobs_per_s", warm_throughput);

  auto& cache = h.result("cache");
  cache.set("misses", cache_misses);
  cache.set("hits", cache_hits);
  cache.set("stores", cache_stores);
  cache.set("evictions", cache_evictions);
  cache.set("hit_rate", (cache_hits + cache_misses) > 0
                            ? cache_hits / (cache_hits + cache_misses)
                            : 0);

  // Every request this run issued between the two scrapes: the cold
  // session (hello + jobs), the warm sessions (hello + jobs each), the
  // stats call, plus the scrape pairing (first scrape's response / second
  // scrape's request).
  const double expected_requests =
      1 + (1 + static_cast<double>(jobs.size())) +
      static_cast<double>(kSessions) * (1 + kJobsPerSession) + 1;
  const double d_req = after.delta_value(before, "serve.requests_total");
  const double d_resp = after.delta_value(before, "serve.responses_total");
  const double d_err = after.delta_value(before, "serve.errors_total");
  const double d_traces = after.delta_value(before, "serve.traces_total");
  const double d_complete =
      after.delta_value(before, "serve.traces_complete_total");
  const bool scraped = before.ok && after.ok;

  if (scraped) {
    h.human() << "obs: " << d_req << " requests / " << d_resp
              << " responses / " << d_traces << " traces (" << d_complete
              << " complete) between scrapes; expected " << expected_requests
              << "\n"
              << "server-side phase latency (cumulative, ms p50/p99):\n";
    const char* phases[] = {"parse",    "cache_lookup", "admission",
                            "queue_wait", "simulate",   "cache_store",
                            "respond",  "total"};
    for (const char* ph : phases) {
      const std::string name = std::string("serve.latency.") + ph;
      const auto it = after.count.find(name);
      if (it == after.count.end()) continue;
      h.human() << "  " << ph << ": n=" << it->second << " p50="
                << after.p50.at(name) * 1e3 << " p99="
                << after.p99.at(name) * 1e3 << "\n";
    }
  } else {
    h.human() << "obs: metrics op unavailable, reconciliation skipped\n";
  }

  auto& obs_row = h.result("obs");
  obs_row.set("metrics_scraped", scraped ? 1 : 0);
  obs_row.set("delta_requests", d_req);
  obs_row.set("delta_responses", d_resp);
  obs_row.set("delta_errors", d_err);
  obs_row.set("delta_traces", d_traces);
  obs_row.set("delta_traces_complete", d_complete);
  obs_row.set("sim_jobs", after.delta_count(before, "serve.latency.simulate"));
  obs_row.set("cache_lookups",
              after.delta_count(before, "serve.latency.cache_lookup"));

  auto& phase = h.result("phase_latency");
  for (const char* ph : {"parse", "cache_lookup", "admission", "queue_wait",
                         "simulate", "cache_store", "respond", "total"}) {
    const std::string name = std::string("serve.latency.") + ph;
    const auto it = after.p50.find(name);
    if (it == after.p50.end()) continue;
    phase.set(std::string("wall_") + ph + "_p50_ms", it->second * 1e3);
    phase.set(std::string("wall_") + ph + "_p99_ms",
              after.p99.at(name) * 1e3);
  }

  auto& gate = h.result("gate");
  gate.set("bit_identical", bit_identical ? 1 : 0);
  gate.set("warm_speedup_ok", speedup >= 10.0 ? 1 : 0);
  // Both obs gates hold vacuously when the daemon was started without
  // metrics; the obs.metrics_scraped metric records which case this was.
  gate.set("counters_reconcile",
           !scraped || (d_req == d_resp && d_req == expected_requests) ? 1
                                                                       : 0);
  gate.set("spans_complete",
           !scraped || (d_traces == d_complete && d_traces == d_req) ? 1 : 0);
  gate.set("wall_warm_speedup", speedup);

  return h.finish(DeviceSpec::geforce_8800_gtx());
}

}  // namespace g80::serve

int main(int argc, char** argv) {
  return g80::serve::loadtest_main(argc, argv);
}
