// google-benchmark microbenchmarks of the simulator's own primitives:
// fiber context switches, barrier rounds, the coalescing/bank analyzers,
// trace collection and full launches.  These guard the engineering budget
// that makes the paper-scale experiments (4096x4096 matmul traces, the
// 13-app suite) tractable.
#include <benchmark/benchmark.h>

#include <source_location>

#include "cudalite/ctx.h"
#include "cudalite/device.h"
#include "cudalite/launch.h"
#include "cudalite/recorder.h"
#include "cudalite/trace_arena.h"
#include "exec/block_runner.h"
#include "mem/bank_conflict.h"
#include "mem/coalescing.h"

namespace g80 {
namespace {

const DeviceSpec kSpec = DeviceSpec::geforce_8800_gtx();

void BM_FiberRoundTrip(benchmark::State& state) {
  Fiber f;
  bool stop = false;
  f.start([&] {
    while (!stop) f.yield();
  });
  for (auto _ : state) {
    f.resume();
  }
  stop = true;
  f.resume();
}
BENCHMARK(BM_FiberRoundTrip);

void BM_BlockBarrierRound(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  BlockRunner runner(threads, 16 * 1024);
  for (auto _ : state) {
    runner.run(threads, [&](int tid) {
      runner.sync(tid);
      runner.sync(tid);
    });
  }
  state.SetItemsProcessed(state.iterations() * threads);
}
BENCHMARK(BM_BlockBarrierRound)->Arg(32)->Arg(128)->Arg(512);

void BM_DirectModeBlock(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  BlockRunner runner(1, 16 * 1024);
  for (auto _ : state) {
    runner.run_direct(threads, [](int) {});
  }
  state.SetItemsProcessed(state.iterations() * threads);
}
BENCHMARK(BM_DirectModeBlock)->Arg(128)->Arg(512);

void BM_CoalescingAnalyzer(benchmark::State& state) {
  WarpAccess w(32);
  for (int k = 0; k < 32; ++k)
    w[k] = {static_cast<std::uint64_t>(4 * k), 4, 0, true};
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_warp(kSpec, w));
  }
}
BENCHMARK(BM_CoalescingAnalyzer);

void BM_CoalescingAnalyzerScattered(benchmark::State& state) {
  WarpAccess w(32);
  for (int k = 0; k < 32; ++k)
    w[k] = {static_cast<std::uint64_t>(997 * k), 4, 0, true};
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_warp(kSpec, w));
  }
}
BENCHMARK(BM_CoalescingAnalyzerScattered);

void BM_BankConflictAnalyzer(benchmark::State& state) {
  WarpAccess w(32);
  for (int k = 0; k < 32; ++k)
    w[k] = {static_cast<std::uint64_t>(64 * k), 4, 0, true};
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_shared_warp(kSpec, w));
  }
}
BENCHMARK(BM_BankConflictAnalyzer);

struct StreamKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& a,
                  DeviceBuffer<float>& b) const {
    auto A = ctx.global(a);
    auto B = ctx.global(b);
    const int i = ctx.global_thread_x();
    B.st(i, ctx.mad(2.0f, A.ld(i), 1.0f));
  }
};

void BM_FunctionalLaunch(benchmark::State& state) {
  const unsigned blocks = static_cast<unsigned>(state.range(0));
  Device dev;
  auto a = dev.alloc<float>(blocks * 256);
  auto b = dev.alloc<float>(blocks * 256);
  LaunchOptions opt;
  opt.uses_sync = false;
  opt.sample_blocks = 0;  // functional pass only
  for (auto _ : state) {
    // sample_blocks=0 would break timing; run with 1 sampled block.
    LaunchOptions o = opt;
    o.sample_blocks = 1;
    benchmark::DoNotOptimize(
        launch(dev, Dim3(blocks), Dim3(256), o, StreamKernel{}, a, b));
  }
  state.SetItemsProcessed(state.iterations() * blocks * 256);
}
BENCHMARK(BM_FunctionalLaunch)->Arg(16)->Arg(256);

// Recorder cost on a many-site kernel, the note_site pathology: cycling
// through S distinct sites defeats the most-recent memo, so the legacy
// recorder pays an O(S) linear scan per access while the arena path pays one
// memo compare plus an O(1) intern probe.  Args are {distinct sites,
// batched? 1 : 0}; compare the 0/1 rows at each site count.
void BM_RecorderManySites(benchmark::State& state) {
  const int sites = static_cast<int>(state.range(0));
  const bool batched = state.range(1) != 0;
  constexpr int kAccesses = 4096;
  LaneTrace lane;
  TraceArena arena;
  const std::source_location loc = std::source_location::current();
  for (auto _ : state) {
    lane.clear();
    TraceArena* ap = nullptr;
    if (batched) {
      arena.begin_block(kSpec, 32);
      ap = &arena;
    }
    LaneRecorder rec(&lane, ap, 0);
    for (int i = 0; i < kAccesses; ++i) {
      const auto site = static_cast<std::uint32_t>(i % sites) + 1;
      rec.mem(OpClass::kLoadGlobal, static_cast<std::uint64_t>(i) * 4, 4,
              site, loc);
    }
    benchmark::DoNotOptimize(lane.site_notes.data());
  }
  state.SetItemsProcessed(state.iterations() * kAccesses);
}
BENCHMARK(BM_RecorderManySites)
    ->Args({4, 0})->Args({4, 1})
    ->Args({64, 0})->Args({64, 1})
    ->Args({512, 0})->Args({512, 1});

void BM_TracedLaunch(benchmark::State& state) {
  Device dev;
  auto a = dev.alloc<float>(64 * 256);
  auto b = dev.alloc<float>(64 * 256);
  LaunchOptions opt;
  opt.uses_sync = false;
  opt.functional = false;
  opt.sample_blocks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        launch(dev, Dim3(64), Dim3(256), opt, StreamKernel{}, a, b));
  }
}
BENCHMARK(BM_TracedLaunch)->Arg(1)->Arg(4)->Arg(16);

}  // namespace
}  // namespace g80

BENCHMARK_MAIN();
