// g80obs overhead gate: what does leaving observability armed cost the
// serving path?
//
// Three configurations of an in-process Server run the same job batch:
//   disabled — metrics off, trace ring 0: the exact pre-obs code path
//              (one null-pointer test per request);
//   enabled  — the ObsConfig defaults (metrics registry + request tracing
//              armed) with nobody scraping;
//   scraped  — enabled, plus a `metrics` protocol call interleaved into the
//              job stream the way a real scraper would.
//
// The batch is no_cache saxpy jobs, so every request crosses the full
// parse → admission → queue → simulate → respond path and the wall is
// simulation-dominated — the regime the ≤2% requirement is stated for.
// After an untimed warmup batch per server, many short paired trials
// alternate disabled/enabled back-to-back; each pair yields an
// enabled/disabled wall ratio measured under (nearly) the same host
// conditions, and the deterministic gate `obs_overhead_ok` requires the
// MEDIAN paired ratio to stay within 1.02x.  The median over many paired
// samples is what makes a 2% gate on sub-second walls tenable: host-load
// drift moves both sides of a pair together, and the median discards the
// trials where a scheduling spike landed inside exactly one side.  The
// per-configuration floors (min walls) are reported as wall_ context.
//
// A second, ungated measurement drives bare pings through both servers to
// expose the per-request cost of tracing itself (µs/request, wall context
// only): pings do no simulation, so this is the worst case for the obs
// layer, reported so regressions in the fixed per-request cost are visible
// even though they are invisible in the simulation-dominated gate.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>

#include "bench/harness.h"
#include "serve/client.h"
#include "serve/server.h"

namespace g80::serve {
namespace {

constexpr int kTrials = 12;      // paired disabled/enabled samples
constexpr int kScrapedTrials = 3;
constexpr int kJobs = 12;        // per trial, per configuration
constexpr int kPings = 400;      // per configuration, ping-path measurement
constexpr int kScrapeEvery = 3;  // scraped config: metrics call cadence

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

JobRequest saxpy_job(std::int64_t seed) {
  JobRequest req;
  req.op = Op::kLaunch;
  req.kernel = "saxpy";
  req.n = 524288;  // ~15ms of simulation: the wall the 2% gate is about
  req.seed = seed;
  req.no_cache = true;  // every job crosses the full scheduler path
  return req;
}

// Runs one batch of kJobs no_cache jobs; returns the wall and counts
// errors.  When scrape is true a `metrics` call is issued every
// kScrapeEvery jobs from the same session, like a scraper sharing the
// daemon with live traffic.
double run_batch(Client& client, std::int64_t seed_base, bool scrape,
                 int& errors) {
  JobRequest metrics;
  metrics.op = Op::kMetrics;
  const double t0 = now_seconds();
  for (int j = 0; j < kJobs; ++j) {
    const Response r = client.call(saxpy_job(seed_base + j));
    if (!r.ok()) ++errors;
    if (scrape && j % kScrapeEvery == 0) {
      const Response m = client.call(metrics);
      if (!m.ok()) ++errors;
    }
  }
  return now_seconds() - t0;
}

double run_pings(Client& client, int count, int& errors) {
  JobRequest ping;
  ping.op = Op::kPing;
  const double t0 = now_seconds();
  for (int j = 0; j < count; ++j) {
    if (!client.call(ping).ok()) ++errors;
  }
  return now_seconds() - t0;
}

ServerConfig base_config(const std::string& tag) {
  ServerConfig cfg;
  cfg.socket_path =
      "/tmp/g80s_obsbench_" + std::to_string(::getpid()) + "_" + tag + ".sock";
  cfg.pool.gtx_slots = 2;
  cfg.obs.log_level = obs::LogLevel::kOff;  // measure obs, not stderr I/O
  cfg.obs.slow_request_s = 0;
  return cfg;
}

}  // namespace

int obs_overhead_main(int argc, char** argv) {
  bench::Harness h(argc, argv, "obs_overhead");

  // disabled == the pre-obs serving path; enabled == ObsConfig defaults.
  ServerConfig disabled_cfg = base_config("off");
  disabled_cfg.obs.metrics = false;
  disabled_cfg.obs.trace_ring = 0;
  ServerConfig enabled_cfg = base_config("on");

  Server disabled_server(disabled_cfg);
  Server enabled_server(enabled_cfg);
  disabled_server.start();
  enabled_server.start();
  Client disabled_client(disabled_cfg.socket_path, "obsbench-off");
  Client enabled_client(enabled_cfg.socket_path, "obsbench-on");

  int errors = 0;
  const auto seed = static_cast<std::int64_t>(h.seed());

  // Untimed warmup: first-touch allocation, page faults, and the enabled
  // server's lazily grown metric/trace structures all land here.
  run_batch(disabled_client, seed + 90000, /*scrape=*/false, errors);
  run_batch(enabled_client, seed + 90000, /*scrape=*/true, errors);

  double disabled_wall = 0, enabled_wall = 0, scraped_wall = 0;
  std::vector<double> paired_ratios;
  for (int t = 0; t < kTrials; ++t) {
    // Paired back-to-back samples so slow host intervals hit both
    // configurations equally; each pair contributes one ratio.
    const std::int64_t base = seed + 1000 * t;
    const double d = run_batch(disabled_client, base, /*scrape=*/false, errors);
    const double e = run_batch(enabled_client, base, /*scrape=*/false, errors);
    if (d > 0) paired_ratios.push_back(e / d);
    disabled_wall = t == 0 ? d : std::min(disabled_wall, d);
    enabled_wall = t == 0 ? e : std::min(enabled_wall, e);
  }
  std::sort(paired_ratios.begin(), paired_ratios.end());
  const double ratio =
      paired_ratios.empty() ? 0 : paired_ratios[paired_ratios.size() / 2];
  for (int t = 0; t < kScrapedTrials; ++t) {
    const double s = run_batch(enabled_client, seed + 9000 + 1000 * t,
                               /*scrape=*/true, errors);
    scraped_wall = t == 0 ? s : std::min(scraped_wall, s);
  }

  // Ping path: no simulation, so the fixed per-request obs cost dominates.
  int ping_errors = 0;
  const double ping_disabled = run_pings(disabled_client, kPings, ping_errors);
  const double ping_enabled = run_pings(enabled_client, kPings, ping_errors);

  // Sanity: the enabled server must actually have been observing.
  const obs::MetricsSnapshot snap = enabled_server.metrics_snapshot();
  const double traced = snap.value("serve.traces_total");
  const bool observing = snap.value("serve.requests_total") > 0 &&
                         traced > 0 &&
                         snap.value("serve.traces_complete_total") == traced;
  disabled_server.shutdown();
  enabled_server.shutdown();

  const double scraped_ratio =
      disabled_wall > 0 ? scraped_wall / disabled_wall : 0;
  h.human() << "jobs/config/trial: " << kJobs << " (x" << kTrials
            << " paired trials)\n"
            << "median paired enabled/disabled ratio: " << ratio << "\n"
            << "floor walls: disabled " << disabled_wall << " s, enabled "
            << enabled_wall << " s, scraped " << scraped_wall << " s ("
            << scraped_ratio << "x)\n"
            << "ping us/req: disabled " << ping_disabled / kPings * 1e6
            << ", enabled " << ping_enabled / kPings * 1e6 << "\n";

  auto& jobs = h.result("jobs");
  jobs.set("per_trial", kJobs);
  jobs.set("trials", kTrials);
  jobs.set("errors", errors);
  jobs.set("wall_disabled_s", disabled_wall);
  jobs.set("wall_enabled_s", enabled_wall);
  jobs.set("wall_scraped_s", scraped_wall);
  jobs.set("wall_enabled_ratio_median", ratio);
  jobs.set("wall_scraped_ratio", scraped_ratio);

  auto& ping = h.result("ping");
  ping.set("requests", kPings);
  ping.set("errors", ping_errors);
  ping.set("wall_disabled_us_per_req", ping_disabled / kPings * 1e6);
  ping.set("wall_enabled_us_per_req", ping_enabled / kPings * 1e6);

  auto& gate = h.result("gate");
  gate.set("obs_overhead_ok",
           errors == 0 && ratio > 0 && ratio <= 1.02 ? 1 : 0);
  gate.set("enabled_observing", observing ? 1 : 0);

  return h.finish(DeviceSpec::geforce_8800_gtx());
}

}  // namespace g80::serve

int main(int argc, char** argv) {
  return g80::serve::obs_overhead_main(argc, argv);
}
