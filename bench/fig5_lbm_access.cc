// Figure 5: LBM global load access patterns.
//
// The paper's figure contrasts the LBM kernel's global loads before and
// after reorganizing for coalescing.  We quantify all three layouts:
//   AoS          f[cell][q]    every distribution load strides 19 words
//   SoA direct   f[q][cell]    unit stride, but x-shifted pulls misalign
//                              the half-warp base address (10 of 19 loads)
//   SoA staged   f[q][cell] with x-rows staged through shared memory so
//                              every global load is a full aligned 16-word
//                              line (the paper's final configuration)
//
// Columns: fraction of warp loads fully coalesced, DRAM transactions per
// warp-level memory instruction, overfetch (DRAM bytes / useful bytes),
// modeled time per step and bottleneck.  All three layouts are validated
// against the CPU reference before timing.
#include <iostream>

#include "apps/lbm/lbm.h"
#include "common/error.h"
#include "common/stats.h"
#include "common/str.h"
#include "common/table.h"
#include "cudalite/device.h"

using namespace g80;
using namespace g80::apps;

int main() {
  LbmParams p;
  p.nx = 128;
  p.ny = 8;
  p.nz = 8;
  p.steps = 2;
  const auto w = LbmWorkload::generate(p);

  // CPU reference for functional validation.
  std::vector<float> f_ref = w.f0, f_tmp;
  lbm_cpu(p, f_ref, f_tmp);

  std::cout << "Figure 5: LBM global load access patterns (" << p.nx << "x"
            << p.ny << "x" << p.nz << " lattice, D3Q19)\n\n";

  TextTable t({"layout", "coalesced %", "txn/mem-inst", "overfetch",
               "DRAM GB/s", "ms/step", "bottleneck", "validated"});

  struct Row {
    const char* name;
    LbmLayout layout;
  };
  for (const Row& row : {Row{"AoS f[cell][q]", LbmLayout::kAoS},
                         Row{"SoA f[q][cell], direct", LbmLayout::kSoA},
                         Row{"SoA + shared-staged x rows", LbmLayout::kSoAStaged}}) {
    Device dev;
    std::vector<float> f_gpu;
    int launches = 0;
    const auto stats = lbm_gpu(dev, p, row.layout, w.f0, f_gpu, &launches);

    double err = 0;
    for (std::size_t i = 0; i < f_ref.size(); ++i)
      err = std::max(err, rel_err(f_gpu[i], f_ref[i], 1e-3));

    const auto& tr = stats.trace;
    const double overfetch =
        tr.total.useful_global_bytes > 0
            ? static_cast<double>(tr.total.global.bytes) /
                  static_cast<double>(tr.total.useful_global_bytes)
            : 1.0;
    t.add_row({
        row.name,
        fixed(100 * tr.coalesced_fraction(), 1),
        fixed(tr.transactions_per_mem_inst(), 2),
        fixed(overfetch, 2),
        fixed(stats.timing.dram_gbs, 1),
        fixed(stats.timing.seconds * 1e3, 3),
        std::string(bottleneck_name(stats.timing.bottleneck)),
        err < 1e-4 ? "yes" : "NO",
    });
  }
  t.print(std::cout);
  std::cout << "\npaper shape: the uncoalesced layouts fragment their DRAM "
               "requests (one transaction\nper address); staging through "
               "shared memory restores full 16-word lines (§5.2,\nFigure 5). "
               "At LBM's one-block-per-SM occupancy both SoA variants remain\n"
               "latency-bound, which is why the paper's LBM sits in the "
               "modest-speedup group.\n";
  return 0;
}
