// Figure 4: performance of matrix multiplication kernels across tile sizes,
// with and without complete unrolling of the inner dot-product loop.
//
// Paper shape to reproduce (4096x4096):
//   - 4x4 tiles perform WORSE than the untiled kernel (16-thread blocks,
//     half of each warp's issue slots wasted, 8-block limit => 128
//     threads/SM);
//   - performance rises with tile size; 16x16 is best (max threads, natural
//     coalescing);
//   - unrolling helps the 16x16 configuration dramatically (46.49 -> 91.14
//     GFLOPS) and other tile sizes only marginally;
//   - 12x12 tiles need padded arrays (4104 here) and waste warp slots.
#include <iostream>

#include "apps/matmul/matmul.h"
#include "bench/harness.h"
#include "common/str.h"
#include "common/table.h"
#include "core/autotuner.h"
#include "cudalite/device.h"

using namespace g80;
using namespace g80::apps;

int main(int argc, char** argv) {
  bench::Harness h(argc, argv, "fig4_matmul_tiles");
  Device dev;
  const int base_n = 4096;

  // One shared allocation big enough for the padded 12x12 case.
  const int max_n = 4104;
  auto da = dev.alloc<float>(static_cast<std::size_t>(max_n) * max_n);
  auto db = dev.alloc<float>(static_cast<std::size_t>(max_n) * max_n);
  auto dc = dev.alloc<float>(static_cast<std::size_t>(max_n) * max_n);

  const auto padded = [&](int tile) {
    return (base_n + tile - 1) / tile * tile;  // 4096 or 4104
  };

  h.human() << "Figure 4: matrix multiplication GFLOPS by tile size, "
            << base_n << "x" << base_n << " (12x12 padded to 4104)\n\n";

  TextTable t({"configuration", "tiled only", "tiled & unrolled", "threads/blk",
               "blocks/SM", "threads/SM"});

  // Untiled row: the "tiled only" column is the naive kernel, the unrolled
  // column its unrolled sibling.
  {
    const auto plain = run_matmul(dev, {MatmulVariant::kNaive, 16}, base_n, da,
                                  db, dc, false);
    const auto unrolled = run_matmul(dev, {MatmulVariant::kNaiveUnrolled, 16},
                                     base_n, da, db, dc, false);
    t.add_row({"not tiled", fixed(plain.timing.gflops, 2),
               fixed(unrolled.timing.gflops, 2), cat(plain.block.count()),
               cat(plain.occupancy.blocks_per_sm),
               cat(plain.occupancy.active_threads_per_sm)});
    auto& r = h.result("not_tiled");
    r.set("gflops_tiled_only", plain.timing.gflops);
    r.set("gflops_unrolled", unrolled.timing.gflops);
    r.set("threads_per_block", plain.block.count());
    r.set("threads_per_sm", plain.occupancy.active_threads_per_sm);
  }

  for (int tile : {4, 8, 12, 16}) {
    const int n = padded(tile);
    const auto tiled =
        run_matmul(dev, {MatmulVariant::kTiled, tile}, n, da, db, dc, false);
    const auto unrolled = run_matmul(dev, {MatmulVariant::kTiledUnrolled, tile},
                                     n, da, db, dc, false);
    t.add_row({cat(tile, "x", tile, " tiles"), fixed(tiled.timing.gflops, 2),
               fixed(unrolled.timing.gflops, 2), cat(tiled.block.count()),
               cat(tiled.occupancy.blocks_per_sm),
               cat(tiled.occupancy.active_threads_per_sm)});
    auto& r = h.result(cat("tile_", tile, "x", tile));
    r.set("gflops_tiled_only", tiled.timing.gflops);
    r.set("gflops_unrolled", unrolled.timing.gflops);
    r.set("threads_per_block", tiled.block.count());
    r.set("threads_per_sm", tiled.occupancy.active_threads_per_sm);
  }
  t.print(h.human());

  h.human() << "\npaper reference points: not tiled 10.58; 16x16 tiled 46.49; "
               "16x16 tiled & unrolled 91.14 GFLOPS;\n4x4 tiles slightly "
               "below the untiled kernel (our model lands both near 10 "
               "GFLOPS\nwith the ordering inverted by ~13% — see "
               "EXPERIMENTS.md); unrolling other tile\nsizes only marginally "
               "better (§4.2-4.3)\n";
  return h.finish(dev.spec());
}
