// Ablation: native vs emulated modulus-shift (rotate) in RC5-72.
//
// §5.1: "the GeForce 8800 lacks a modulus-shift operation.  Performance of
// the code if a native modulus-shift were available is estimated to be
// several times higher."  We run the key-search kernel with rotates costing
// one instruction (hypothetical native) versus the shl/shr/or emulation.
#include <iostream>

#include "apps/rc5/rc5.h"
#include "common/str.h"
#include "common/table.h"
#include "cudalite/device.h"

using namespace g80;
using namespace g80::apps;

int main() {
  const auto w = Rc5Workload::generate(1u << 18, /*seed=*/51);

  Device dev;
  auto dfound = dev.alloc<std::uint32_t>(1);
  auto dpartial = dev.alloc<std::uint8_t>(w.num_keys);

  Rc5Kernel kernel;
  kernel.w = w;
  kernel.keys_per_thread = 4;

  LaunchOptions opt;
  opt.regs_per_thread = 42;
  opt.uses_sync = false;
  opt.functional = false;
  const std::uint32_t threads_total = w.num_keys / kernel.keys_per_thread;
  const Dim3 block(192);
  const Dim3 grid((threads_total + block.x - 1) / block.x);

  kernel.native_rotate = false;
  const auto emulated =
      launch(dev, grid, block, opt, kernel, dfound, dpartial);
  kernel.native_rotate = true;
  const auto native = launch(dev, grid, block, opt, kernel, dfound, dpartial);

  std::cout << "Ablation: RC5-72 rotate emulation (" << w.num_keys
            << " keys)\n\n";
  TextTable t({"ISA", "time (ms)", "ialu instrs/warp", "keys/s (millions)"});
  for (const auto& [name, s] :
       {std::pair{"emulated rotate (shl/sub/shr/or)", &emulated},
        std::pair{"hypothetical native rotate", &native}}) {
    t.add_row({name, fixed(s->timing.seconds * 1e3, 3),
               fixed(static_cast<double>(s->trace.total.ops[OpClass::kIAlu]) /
                         static_cast<double>(s->trace.num_warps),
                     0),
               fixed(w.num_keys / s->timing.seconds / 1e6, 1)});
  }
  t.print(std::cout);
  std::cout << "\nnative-rotate speedup: "
            << fixed(emulated.timing.seconds / native.timing.seconds, 2)
            << "x (paper: \"several times higher\", §5.1)\n";
  return 0;
}
