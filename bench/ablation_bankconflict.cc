// Ablation: shared-memory bank conflicts in TPACF's per-thread histograms.
//
// §5.2: "Care must be taken so that threads in the same warp access
// different banks of the shared memory."  TPACF's per-thread histograms can
// be laid out two ways: bin-major (hist[bin][thread], each lane in its own
// bank) or thread-major (hist[thread][bin]; with 16 bins, a half-warp's 16
// histograms all start in bank 0, so every increment is a 16-way conflict).
// Same algorithm, same results, very different shared-memory behaviour.
#include <iostream>
#include <tuple>

#include "apps/tpacf/tpacf.h"
#include "bench/harness.h"
#include "common/str.h"
#include "common/table.h"
#include "cudalite/device.h"

using namespace g80;
using namespace g80::apps;

int main(int argc, char** argv) {
  bench::Harness h(argc, argv, "ablation_bankconflict");
  const int points = 2048;
  const auto w = TpacfWorkload::generate(points, /*seed=*/31);

  Device dev;
  auto dx = dev.alloc<float>(points);
  auto dy = dev.alloc<float>(points);
  auto dz = dev.alloc<float>(points);
  dx.copy_from_host(w.x);
  dy.copy_from_host(w.y);
  dz.copy_from_host(w.z);
  auto de = dev.alloc_constant<float>(w.bin_edges.size());
  de.copy_from_host(w.bin_edges);
  const unsigned blocks = (points + kTpacfBlockThreads - 1) / kTpacfBlockThreads;
  auto dh = dev.alloc<unsigned>(static_cast<std::size_t>(blocks) * kTpacfBins);

  LaunchOptions opt;
  opt.regs_per_thread = 14;
  opt.functional = false;
  opt.sample_blocks = 2;

  h.human() << "Ablation: TPACF shared-memory histogram layout (" << points
            << " points, " << kTpacfBins << " bins)\n\n";
  TextTable t({"layout", "time (ms)", "bank replays/warp", "bottleneck"});

  LaunchStats results[2];
  int row = 0;
  for (const auto& [name, key, layout] :
       {std::tuple{"hist[bin][thread] (conflict-free)", "bin_major",
                   TpacfHistLayout::kBinMajor},
        std::tuple{"hist[thread][bin] (16-way conflicts)", "thread_major",
                   TpacfHistLayout::kThreadMajor}}) {
    TpacfKernel k;
    k.num_points = points;
    k.hist_layout = layout;
    const auto s = launch(dev, Dim3(blocks), Dim3(kTpacfBlockThreads), opt, k,
                          dx, dy, dz, de, dh);
    results[row++] = s;
    const double replays_per_warp =
        static_cast<double>(s.trace.total.shared_extra_passes) /
        static_cast<double>(s.trace.num_warps);
    t.add_row({name, fixed(s.timing.seconds * 1e3, 3),
               fixed(replays_per_warp, 0),
               std::string(bottleneck_name(s.timing.bottleneck))});
    auto& r = h.result(key);
    r.set("modeled_ms", s.timing.seconds * 1e3);
    r.set("bank_replays_per_warp", replays_per_warp);
  }
  t.print(h.human());
  const double speedup = results[1].timing.seconds / results[0].timing.seconds;
  h.human() << "\nconflict-free layout speedup: " << fixed(speedup, 2)
            << "x (the §5.2 bank-padding discipline, 'most notably in the "
               "MRI applications')\n";
  h.result("summary").set("conflict_free_speedup", speedup);
  return h.finish(dev.spec());
}
