// Ablation: texture cache for PNS's read-only net-structure tables.
//
// §5.2: irregularly-indexed read-only data moved into texture memory —
// "kernel performance improves by 2.8X over global-only access by the use
// of texture memory" (even though the smaller thread count exposed texture
// latency).  We run the PNS kernel with the transition tables in texture
// space versus plain global memory.
#include <iostream>

#include "apps/pns/pns.h"
#include "common/str.h"
#include "common/table.h"
#include "cudalite/device.h"

using namespace g80;
using namespace g80::apps;

int main() {
  const int num_sims = 16384, steps = 256;
  const auto net = PnsNet::generate(/*seed=*/71);

  Device dev;
  auto d_init = dev.alloc<std::int32_t>(net.initial_marking.size());
  d_init.copy_from_host(net.initial_marking);
  auto d_in_g = dev.alloc<std::int32_t>(net.in.size());
  auto d_out_g = dev.alloc<std::int32_t>(net.out.size());
  d_in_g.copy_from_host(net.in);
  d_out_g.copy_from_host(net.out);
  auto d_in_t = dev.alloc_texture<std::int32_t>(net.in.size());
  auto d_out_t = dev.alloc_texture<std::int32_t>(net.out.size());
  d_in_t.copy_from_host(net.in);
  d_out_t.copy_from_host(net.out);
  auto d_marking =
      dev.alloc<std::int32_t>(static_cast<std::size_t>(kPnsPlaces) * num_sims);
  auto d_fired = dev.alloc<std::int32_t>(num_sims);

  LaunchOptions opt;
  opt.regs_per_thread = 24;
  opt.uses_sync = false;
  opt.functional = false;
  const Dim3 block(128);
  const Dim3 grid(static_cast<unsigned>((num_sims + 127) / 128));

  PnsKernel kernel;
  kernel.num_sims = num_sims;
  kernel.steps = steps;
  kernel.rng_seed = net.rng_seed;

  kernel.table_space = PnsTableSpace::kTexture;
  const auto tex = launch(dev, grid, block, opt, kernel, d_init, d_in_g,
                          d_out_g, d_in_t, d_out_t, d_marking, d_fired);
  kernel.table_space = PnsTableSpace::kGlobal;
  const auto glob = launch(dev, grid, block, opt, kernel, d_init, d_in_g,
                           d_out_g, d_in_t, d_out_t, d_marking, d_fired);

  std::cout << "Ablation: PNS net-structure tables in texture vs global "
               "memory (" << num_sims << " sims x " << steps << " steps)\n\n";
  TextTable t({"table space", "time (ms)", "tex hit %", "DRAM GB/s",
               "txn/mem-inst", "bottleneck"});
  const auto hitrate = [](const LaunchStats& s) {
    const auto h = s.trace.total.texture_hits;
    const auto m = s.trace.total.texture_misses;
    return h + m == 0 ? 0.0
                      : 100.0 * static_cast<double>(h) /
                            static_cast<double>(h + m);
  };
  t.add_row({"texture (cached)", fixed(tex.timing.seconds * 1e3, 3),
             fixed(hitrate(tex), 1), fixed(tex.timing.dram_gbs, 1),
             fixed(tex.trace.transactions_per_mem_inst(), 2),
             std::string(bottleneck_name(tex.timing.bottleneck))});
  t.add_row({"global (uncached)", fixed(glob.timing.seconds * 1e3, 3),
             fixed(hitrate(glob), 1), fixed(glob.timing.dram_gbs, 1),
             fixed(glob.trace.transactions_per_mem_inst(), 2),
             std::string(bottleneck_name(glob.timing.bottleneck))});
  t.print(std::cout);

  std::cout << "\nspeedup from texture cache: "
            << fixed(glob.timing.seconds / tex.timing.seconds, 2)
            << "x (paper: 2.8x for PNS, §5.2)\n";
  return 0;
}
