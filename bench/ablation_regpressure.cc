// Ablation: the register-pressure occupancy cliff (§4.2/§4.4/§5.2).
//
// The paper's recurring lesson: "optimizations having negative effects ...
// increase the number of registers per thread as a side effect, forcing the
// GeForce 8800 to schedule fewer thread blocks per SM."  We sweep the
// register count of the unrolled 16x16 matmul kernel: at 10 registers three
// 256-thread blocks fit; at 11 (3 x 256 x 11 = 8448 > 8192) only two do.
#include <iostream>

#include "apps/matmul/matmul.h"
#include "common/str.h"
#include "common/table.h"
#include "cudalite/device.h"
#include "cudalite/launch.h"

using namespace g80;
using namespace g80::apps;

int main() {
  Device dev;
  const int n = 4096;
  auto da = dev.alloc<float>(static_cast<std::size_t>(n) * n);
  auto db = dev.alloc<float>(static_cast<std::size_t>(n) * n);
  auto dc = dev.alloc<float>(static_cast<std::size_t>(n) * n);

  std::cout << "Ablation: register pressure vs occupancy, 16x16 tiled & "
               "unrolled matmul, " << n << "x" << n << "\n\n";

  TextTable t({"regs/thread", "blocks/SM", "threads/SM", "limiter", "GFLOPS",
               "vs 10 regs"});
  double base = 0;
  for (int regs = 8; regs <= 14; ++regs) {
    LaunchOptions opt;
    opt.regs_per_thread = regs;
    opt.functional = false;
    const MatmulTiledKernel k{n, 16, /*unrolled=*/true, /*prefetch=*/false};
    const auto stats =
        launch(dev, Dim3(n / 16, n / 16), Dim3(16, 16), opt, k, da, db, dc);
    if (regs == 10) base = stats.timing.gflops;
    t.add_row({cat(regs), cat(stats.occupancy.blocks_per_sm),
               cat(stats.occupancy.active_threads_per_sm),
               std::string(occupancy_limit_name(stats.occupancy.limiter)),
               fixed(stats.timing.gflops, 2),
               base > 0 ? fixed(100 * stats.timing.gflops / base, 1) + "%"
                        : "-"});
  }
  t.print(std::cout);

  // The §4.4 experiment itself: prefetching spends two extra registers AND
  // extra instructions; the instruction cost is what the issue-bound kernel
  // actually pays (the occupancy loss would only bite a latency-sensitive
  // kernel — see the fig5/LBM discussion).
  LaunchOptions base_opt;
  base_opt.functional = false;
  base_opt.regs_per_thread = 9;
  const auto plain =
      launch(dev, Dim3(n / 16, n / 16), Dim3(16, 16), base_opt,
             MatmulTiledKernel{n, 16, true, false}, da, db, dc);
  LaunchOptions pf_opt = base_opt;
  pf_opt.regs_per_thread = 11;
  const auto prefetch =
      launch(dev, Dim3(n / 16, n / 16), Dim3(16, 16), pf_opt,
             MatmulTiledKernel{n, 16, true, true}, da, db, dc);
  std::cout << "\n§4.4 prefetch experiment: "
            << fixed(plain.timing.gflops, 2) << " GFLOPS (9 regs, "
            << plain.occupancy.blocks_per_sm << " blocks/SM) -> "
            << fixed(prefetch.timing.gflops, 2) << " GFLOPS (11 regs, "
            << prefetch.occupancy.blocks_per_sm << " blocks/SM), "
            << fixed(100 * (1 - prefetch.timing.gflops / plain.timing.gflops), 1)
            << "% loss (paper: 91.14 -> 87.10, ~4.4%)\n"
            << "\npaper: 11 registers x 256 threads x 3 blocks = 8448 > 8192 "
               "=> 2 blocks/SM (§4.2);\nfor this issue-bound kernel the "
               "throughput cost comes from the prefetch instructions,\nwhile "
               "the occupancy column shows the resource cliff every "
               "latency-sensitive kernel\nwould pay\n";
  return 0;
}
