#include "bench/harness.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <streambuf>

#include "common/json.h"
#include "common/provenance.h"

namespace g80::bench {

namespace {

struct NullBuf final : std::streambuf {
  int overflow(int c) override { return c; }
};

std::ostream& null_stream() {
  static NullBuf buf;
  static std::ostream os(&buf);
  return os;
}

}  // namespace

void Result::set(const std::string& key, double value) {
  for (auto& [k, v] : metrics) {
    if (k == key) {
      v = value;
      return;
    }
  }
  metrics.emplace_back(key, value);
}

Harness::Harness(int argc, char** argv, std::string bench_name)
    : bench_name_(std::move(bench_name)) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") {
      json_ = true;
    } else if (a == "--out" && i + 1 < argc) {
      out_path_ = argv[++i];
    } else if (a == "--seed" && i + 1 < argc) {
      seed_ = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::cerr << bench_name_ << ": unknown argument '" << a << "'\n"
                << "usage: " << bench_name_
                << " [--out FILE] [--json] [--seed N]\n";
      std::exit(2);
    }
  }
}

std::ostream& Harness::human() { return json_ ? null_stream() : std::cout; }

Result& Harness::result(const std::string& name) {
  for (auto& r : results_) {
    if (r.name == name) return r;
  }
  results_.push_back({name, {}});
  return results_.back();
}

int Harness::finish(const DeviceSpec& spec) {
  JsonWriter w;
  w.begin_object();
  {
    Provenance p = build_provenance("g80bench-result");
    p.device = spec.name;
    p.device_spec_hash = device_spec_hash(spec);
    write_provenance(w, p);
  }
  w.kv("bench", bench_name_);
  w.kv("seed", seed_);
  w.key("results");
  w.begin_array();
  for (const Result& r : results_) {
    w.begin_object();
    w.kv("name", r.name);
    w.key("metrics");
    w.begin_object();
    for (const auto& [k, v] : r.metrics) w.kv(k.c_str(), v);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  const std::string doc = w.str();

  if (!out_path_.empty()) {
    std::ofstream f(out_path_);
    if (!f) {
      std::cerr << bench_name_ << ": cannot write " << out_path_ << "\n";
      return 1;
    }
    f << doc << "\n";
  }
  if (json_) std::cout << doc << "\n";
  return 0;
}

}  // namespace g80::bench
