// Table 1: properties of the GeForce 8800's memory spaces, printed from the
// model's constants so any drift between the paper's numbers and the
// simulator is immediately visible.
#include <iostream>

#include "common/str.h"
#include "common/table.h"
#include "hw/device_spec.h"

using namespace g80;

int main() {
  const auto spec = DeviceSpec::geforce_8800_gtx();

  std::cout << "Table 1: memory spaces of the " << spec.name << " (model "
            << "constants)\n\n";

  TextTable t({"memory", "location", "size", "latency (cycles)", "read-only",
               "scope"});
  t.add_row({"global", "off-chip", human_bytes(static_cast<double>(spec.global_mem_bytes)),
             fixed(spec.global_latency_cycles, 0), "no", "grid"});
  t.add_row({"shared", "on-chip", cat(human_bytes(static_cast<double>(spec.shared_mem_per_sm)), "/SM"),
             fixed(spec.shared_latency_cycles, 0), "no", "thread block"});
  t.add_row({"constant", "off-chip, cached",
             cat(human_bytes(64.0 * 1024), " total, ",
                 human_bytes(static_cast<double>(spec.constant_cache_bytes)), "/SM cache"),
             "~reg speed on broadcast hit", "yes", "grid"});
  t.add_row({"texture", "off-chip, cached",
             cat(human_bytes(static_cast<double>(spec.texture_cache_bytes)), "/SM cache"),
             fixed(spec.texture_hit_latency_cycles, 0), "yes", "grid"});
  t.add_row({"local (register spill)", "off-chip", "per thread",
             fixed(spec.global_latency_cycles, 0), "no", "thread"});
  t.add_row({"registers", "on-chip", cat(spec.registers_per_sm, " x 32-bit/SM"),
             "0", "no", "thread"});
  t.print(std::cout);

  std::cout << "\nexecution resources: " << spec.num_sms << " SMs x "
            << spec.sps_per_sm << " SPs @ " << spec.core_clock_ghz
            << " GHz; peak " << fixed(spec.peak_mad_gflops(), 1)
            << " GFLOPS (MAD), " << fixed(spec.peak_gflops_with_sfu(), 1)
            << " GFLOPS (with SFU); DRAM "
            << fixed(spec.dram_bandwidth_gbs, 1) << " GB/s; "
            << spec.max_threads_per_sm << " threads / "
            << spec.max_blocks_per_sm << " blocks per SM\n";
  return 0;
}
