// Ablation: CP's atom list in constant memory vs plain global memory.
//
// CP reads the same atom record in every thread of a half-warp — the ideal
// constant-cache broadcast (Table 1 / §5.2 "its use is straightforward when
// ... values are reused").  Serving the same loop from global memory turns
// each iteration into a long-latency global access that the warp must hide.
#include <iostream>

#include "apps/cp/cp.h"
#include "common/str.h"
#include "common/table.h"
#include "cudalite/device.h"

using namespace g80;
using namespace g80::apps;

int main() {
  const int grid_dim = 256, num_atoms = 1024;
  const auto w = CpWorkload::generate(grid_dim, num_atoms, /*seed=*/11);

  Device dev;
  auto atoms_c = dev.alloc_constant<Float4>(w.atoms.size());
  atoms_c.copy_from_host(w.atoms);
  auto atoms_g = dev.alloc<Float4>(w.atoms.size());
  atoms_g.copy_from_host(w.atoms);
  auto out = dev.alloc<float>(static_cast<std::size_t>(grid_dim) * grid_dim);

  LaunchOptions opt;
  opt.regs_per_thread = 10;
  opt.uses_sync = false;
  opt.functional = false;
  const Dim3 block(16, 16);
  const Dim3 grid(grid_dim / 16, grid_dim / 16);
  const CpKernel k{grid_dim, w.spacing, w.slice_z};

  const auto with_const = launch(dev, grid, block, opt, k, atoms_c, out);
  const auto with_global = launch(dev, grid, block, opt, k, atoms_g, out);

  std::cout << "Ablation: CP atom table placement (" << grid_dim << "x"
            << grid_dim << " grid, " << num_atoms << " atoms)\n\n";
  TextTable t({"atom table", "time (ms)", "GFLOPS", "global insts/warp",
               "mem:compute", "bottleneck"});
  for (const auto& [name, s] :
       {std::pair{"constant memory (broadcast)", &with_const},
        std::pair{"global memory", &with_global}}) {
    t.add_row({name, fixed(s->timing.seconds * 1e3, 3),
               fixed(s->timing.gflops, 2),
               fixed(s->trace.mean_global_instructions(), 0),
               fixed(s->timing.mem_to_compute_ratio, 2),
               std::string(bottleneck_name(s->timing.bottleneck))});
  }
  t.print(std::cout);
  std::cout << "\nconstant-cache speedup: "
            << fixed(with_global.timing.seconds / with_const.timing.seconds, 2)
            << "x — the suite's compute-bound kernels (CP, MRI, RPES) all "
               "depend on this placement\n";
  return 0;
}
