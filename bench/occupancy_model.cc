// Occupancy-calculator sweep: the resource-balance design space the paper's
// principle 2 describes in prose ("an incremental increase in the usage of
// registers or shared memory per thread can result in a substantial
// decrease in the number of threads that can be simultaneously executed").
#include <iostream>

#include "common/str.h"
#include "common/table.h"
#include "occupancy/occupancy.h"

using namespace g80;

int main() {
  const auto spec = DeviceSpec::geforce_8800_gtx();

  std::cout << "Occupancy (active threads/SM out of "
            << spec.max_threads_per_sm
            << ") as registers/thread and block size vary, no shared "
               "memory:\n\n";
  {
    TextTable t({"block size", "8 regs", "10 regs", "11 regs", "12 regs",
                 "16 regs", "20 regs", "32 regs"});
    for (int threads : {64, 128, 192, 256, 384, 512}) {
      std::vector<std::string> row{cat(threads)};
      for (int regs : {8, 10, 11, 12, 16, 20, 32}) {
        if (static_cast<long long>(regs) * threads > spec.registers_per_sm) {
          row.push_back("-");
          continue;
        }
        const auto occ = compute_occupancy(spec, {regs, 0, threads});
        row.push_back(cat(occ.active_threads_per_sm));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }

  std::cout << "\nOccupancy as shared memory/block grows (256-thread blocks, "
               "10 regs):\n\n";
  {
    TextTable t({"smem/block", "blocks/SM", "threads/SM", "limiter"});
    for (std::size_t kb : {1, 2, 3, 4, 5, 6, 8, 9, 12, 16}) {
      const auto occ =
          compute_occupancy(spec, {10, kb * 1024, 256});
      t.add_row({cat(kb, " KB"), cat(occ.blocks_per_sm),
                 cat(occ.active_threads_per_sm),
                 std::string(occupancy_limit_name(occ.limiter))});
    }
    t.print(std::cout);
  }
  std::cout << "\nnote the cliffs at 10->11 registers (3->2 blocks of 256) "
               "and 5->6 KB shared memory —\nthe §4 matmul story in table "
               "form\n";
  return 0;
}
