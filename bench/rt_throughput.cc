// g80rt throughput benchmark: what the runtime's two levers actually buy.
//
// 1. Block-parallel functional pass — the §4 matmul (tiled+unrolled, full
//    grid) launched sequentially and across WorkerPools of 2 and 4 workers.
//    Reports wall-clock speedup and verifies outputs and modeled stats stay
//    bit-identical (speedups depend on host cores; determinism must not).
// 2. Streams — the same four h2d→kernel→d2h pipelines pushed through one
//    stream vs four, with measured wall-clock and the modeled
//    serialized-vs-overlapped totals from the timeline.
//
// Emits the standard g80bench-result document (bench/harness.h); wall-clock
// metrics carry the `wall_` prefix so the regression checker skips them.
#include <chrono>
#include <cstring>
#include <iostream>
#include <numeric>
#include <vector>

#include "apps/matmul/matmul.h"
#include "bench/harness.h"
#include "common/str.h"
#include "cudalite/device.h"
#include "cudalite/launch.h"
#include "exec/worker_pool.h"
#include "rt/runtime.h"

using namespace g80;
using namespace g80::apps;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ScaleKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& in,
                  DeviceBuffer<float>& out) const {
    auto I = ctx.global(in);
    auto O = ctx.global(out);
    const int i = ctx.global_thread_x();
    O.st(i, ctx.mad(I.ld(i), 2.0f, 1.0f));
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h(argc, argv, "rt_throughput");
  // ---- Part 1: block-parallel functional pass over the §4 matmul ----
  const int n = 512, tile = 16;
  const auto wl = MatmulWorkload::generate(n, h.seed());
  const MatmulTiledKernel kernel{n, tile, /*unrolled=*/true};

  struct Run {
    int workers;
    double seconds;
    bool bit_identical;
    double timing_seconds;
  };
  std::vector<Run> runs;
  std::vector<float> baseline;
  double baseline_timing = 0;

  for (int workers : {1, 2, 4}) {
    Device dev;
    auto a = dev.alloc<float>(wl.a.size());
    auto b = dev.alloc<float>(wl.b.size());
    auto c = dev.alloc<float>(static_cast<std::size_t>(n) * n);
    a.copy_from_host(wl.a);
    b.copy_from_host(wl.b);

    WorkerPool pool(workers);
    LaunchOptions opt;
    opt.regs_per_thread = 9;
    opt.pool = workers > 1 ? &pool : nullptr;

    const double t0 = now_seconds();
    const LaunchStats stats = launch(dev, Dim3(n / tile, n / tile),
                                     Dim3(tile, tile), opt, kernel, a, b, c);
    const double wall = now_seconds() - t0;

    const std::vector<float> out = c.copy_to_host();
    bool identical = true;
    if (workers == 1) {
      baseline = out;
      baseline_timing = stats.timing.seconds;
    } else {
      identical = out.size() == baseline.size() &&
                  std::memcmp(out.data(), baseline.data(),
                              baseline.size() * sizeof(float)) == 0 &&
                  stats.timing.seconds == baseline_timing;
    }
    runs.push_back({workers, wall, identical, stats.timing.seconds});
  }

  // ---- Part 2: one stream vs four ----
  const int sn = 1 << 18;  // 1 MB buffers per pipeline
  std::vector<float> host(sn, 1.0f);
  LaunchOptions sopt;
  sopt.uses_sync = false;

  auto run_pipelines = [&](int nstreams, double* modeled_total,
                           double* modeled_serialized) {
    Device dev;
    rt::Runtime r(dev, {.workers = 1});
    std::vector<rt::Stream> streams;
    for (int i = 0; i < nstreams; ++i) streams.push_back(r.stream_create());
    std::vector<DeviceBuffer<float>> ins, outs;
    std::vector<std::vector<float>> backs(4);
    for (int i = 0; i < 4; ++i) {
      ins.push_back(dev.alloc<float>(sn));
      outs.push_back(dev.alloc<float>(sn));
    }
    // Breadth-first issue: engines serve ops in issue order, so batching a
    // whole pipeline per stream would leave the copy engine with nothing to
    // overlap a kernel with (the classic depth-first-issue pitfall on
    // single-queue hardware).
    const double t0 = now_seconds();
    for (int i = 0; i < 4; ++i)
      r.memcpy_h2d_async(streams[i % nstreams], ins[i], host);
    for (int i = 0; i < 4; ++i)
      r.launch_async(streams[i % nstreams], Dim3(sn / 256), Dim3(256), sopt,
                     nullptr, ScaleKernel{}, ins[i], outs[i]);
    for (int i = 0; i < 4; ++i)
      r.memcpy_d2h_async(streams[i % nstreams], backs[i], outs[i]);
    r.device_synchronize();
    const double wall = now_seconds() - t0;
    *modeled_total = r.modeled_total_seconds();
    *modeled_serialized = r.modeled_serialized_seconds();
    return wall;
  };

  double one_total = 0, one_serial = 0, four_total = 0, four_serial = 0;
  const double one_wall = run_pipelines(1, &one_total, &one_serial);
  const double four_wall = run_pipelines(4, &four_total, &four_serial);

  // ---- Results ----
  h.human() << "block-parallel " << n << "x" << n << " matmul ("
            << (n / tile) * (n / tile) << " blocks):\n";
  for (const Run& r : runs) {
    h.human() << "  workers=" << r.workers << ": " << fixed(r.seconds, 4)
              << " s wall (speedup " << fixed(runs[0].seconds / r.seconds, 2)
              << "x), bit identical: " << (r.bit_identical ? "yes" : "NO")
              << "\n";
    auto& row = h.result(cat("block_parallel_w", r.workers));
    row.set("wall_seconds", r.seconds);
    row.set("wall_speedup", runs[0].seconds / r.seconds);
    row.set("bit_identical", r.bit_identical ? 1 : 0);
    row.set("modeled_kernel_seconds", r.timing_seconds);
  }

  const double saving_pct = 100.0 * (four_serial - four_total) /
                            (four_serial > 0 ? four_serial : 1.0);
  h.human() << "streams (4 pipelines, "
            << static_cast<std::uint64_t>(sn) * sizeof(float)
            << " B/copy): 1 stream " << fixed(one_total, 6)
            << " s modeled, 4 streams " << fixed(four_total, 6)
            << " s modeled (serialized " << fixed(four_serial, 6)
            << " s, overlap saves " << fixed(saving_pct, 1) << "%)\n";
  {
    auto& row = h.result("streams_one");
    row.set("wall_seconds", one_wall);
    row.set("modeled_seconds", one_total);
    row.set("modeled_serialized_seconds", one_serial);
  }
  {
    auto& row = h.result("streams_four");
    row.set("wall_seconds", four_wall);
    row.set("modeled_seconds", four_total);
    row.set("modeled_serialized_seconds", four_serial);
    row.set("modeled_overlap_saving_pct", saving_pct);
  }

  Device spec_dev;
  return h.finish(spec_dev.spec());
}
