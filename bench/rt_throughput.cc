// g80rt throughput benchmark: what the runtime's two levers actually buy.
//
// 1. Interpreter scalability — the §4 matmul (tiled+unrolled, full grid):
//    first a legacy reference (ucontext fiber engine, traced path, one
//    worker — the interpreter exactly as it stood before the fast engine),
//    then the traced path on the fast engine at 1/2/4 workers, then the
//    functional fast path (LaunchOptions::fast_path) at 1/2/4/8 workers.
//    Every run's outputs must be bit-identical to the reference; the traced
//    runs' modeled stats must match it exactly.  The bench FAILS (non-zero
//    exit, which run_benches.sh turns into a flagged failure document) if
//    the 4-worker fast path is less than kFloorSpeedupW4 times faster than
//    the legacy reference — this is the CI floor for ROADMAP item 1.
//    NOTE on reading the curve: worker scaling buys wall time only up to the
//    host's core count; on a single-core host the whole curve is flat and
//    the speedup comes from the fast engine + fast path alone.
// 2. Streams — the same four h2d→kernel→d2h pipelines pushed through one
//    stream vs four, with measured wall-clock and the modeled
//    serialized-vs-overlapped totals from the timeline.
//
// Emits the standard g80bench-result document (bench/harness.h); wall-clock
// metrics carry the `wall_` prefix so the regression checker skips them,
// and the gate row's `floor_` metric is one-sided (current >= baseline).
#include <chrono>
#include <cstring>
#include <iostream>
#include <numeric>
#include <vector>

#include "apps/matmul/matmul.h"
#include "bench/harness.h"
#include "common/str.h"
#include "cudalite/device.h"
#include "cudalite/launch.h"
#include "cudalite/trace_arena.h"
#include "exec/worker_pool.h"
#include "prof/counters.h"
#include "prof/profiler.h"
#include "rt/runtime.h"

using namespace g80;
using namespace g80::apps;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ScaleKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& in,
                  DeviceBuffer<float>& out) const {
    auto I = ctx.global(in);
    auto O = ctx.global(out);
    const int i = ctx.global_thread_x();
    O.st(i, ctx.mad(I.ld(i), 2.0f, 1.0f));
  }
};

}  // namespace

// Minimum acceptable (4-worker fast path) vs (legacy reference) speedup.
constexpr double kFloorSpeedupW4 = 2.5;

// Minimum acceptable (batched recorder) vs (legacy per-lane recorder) speedup
// on the traced, profiler-attached path (ISSUE 9 / ROADMAP item 1).
constexpr double kFloorSpeedupTraced = 2.0;

int main(int argc, char** argv) {
  bench::Harness h(argc, argv, "rt_throughput");
  // ---- Part 1: interpreter scalability over the §4 matmul ----
  const int n = 512, tile = 16;
  const auto wl = MatmulWorkload::generate(n, h.seed());
  const MatmulTiledKernel kernel{n, tile, /*unrolled=*/true};

  struct Run {
    double seconds = 0;
    bool bit_identical = true;
    double timing_seconds = 0;
  };
  std::vector<float> reference;
  double reference_timing = 0;

  // One timed launch.  The first call defines the reference outputs (and,
  // for traced runs, the reference modeled time); every later call is
  // compared against it byte-for-byte.
  auto run_matmul = [&](int workers, bool fast_path,
                        Fiber::Backend backend) -> Run {
    Device dev;
    auto a = dev.alloc<float>(wl.a.size());
    auto b = dev.alloc<float>(wl.b.size());
    auto c = dev.alloc<float>(static_cast<std::size_t>(n) * n);
    a.copy_from_host(wl.a);
    b.copy_from_host(wl.b);

    WorkerPool pool(workers);
    LaunchOptions opt;
    opt.regs_per_thread = 9;
    opt.pool = workers > 1 ? &pool : nullptr;
    opt.fast_path = fast_path;
    opt.fiber_backend = backend;

    const double t0 = now_seconds();
    const LaunchStats stats = launch(dev, Dim3(n / tile, n / tile),
                                     Dim3(tile, tile), opt, kernel, a, b, c);
    const double wall = now_seconds() - t0;

    const std::vector<float> out = c.copy_to_host();
    Run r{wall, true, stats.timing.seconds};
    if (reference.empty()) {
      reference = out;
      reference_timing = stats.timing.seconds;
    } else {
      r.bit_identical =
          out.size() == reference.size() &&
          std::memcmp(out.data(), reference.data(),
                      reference.size() * sizeof(float)) == 0 &&
          // The fast path skips the timing model by contract; traced runs
          // must reproduce the reference model output exactly.
          (fast_path || stats.timing.seconds == reference_timing);
    }
    return r;
  };

  // Legacy reference: the interpreter as it stood before this fast engine —
  // ucontext switches, traced path, sequential blocks.
  const Run legacy = run_matmul(1, false, Fiber::Backend::kUcontext);
  std::vector<std::pair<int, Run>> traced, fast;
  for (int workers : {1, 2, 4})
    traced.emplace_back(workers,
                        run_matmul(workers, false, Fiber::default_backend()));
  for (int workers : {1, 2, 4, 8})
    fast.emplace_back(workers,
                      run_matmul(workers, true, Fiber::default_backend()));

  // ---- Part 1b: traced-path recorder dispatch (batched vs legacy) ----
  // A profiler-attached launch with a deep trace sample and no functional
  // pass, so the wall time is dominated by exactly what ISSUE 9 optimizes:
  // recorder dispatch, trace storage, and the memory analyzers.  Both runs
  // execute in this process via the ScopedTraceBatch override; modeled
  // timing, trace summary, and every derived profiler counter must match
  // bit-for-bit.
  struct TracedRun {
    double seconds = 0;
    KernelTiming timing;
    TraceSummary trace;
    prof::KernelCounters counters;
  };
  auto run_traced = [&](bool batched) -> TracedRun {
    ScopedTraceBatch use_batch(batched);
    Device dev;
    auto a = dev.alloc<float>(wl.a.size());
    auto b = dev.alloc<float>(wl.b.size());
    auto c = dev.alloc<float>(static_cast<std::size_t>(n) * n);
    a.copy_from_host(wl.a);
    b.copy_from_host(wl.b);
    prof::Profiler p;
    LaunchOptions opt;
    opt.regs_per_thread = 9;
    opt.functional = false;  // isolate the traced pipeline
    opt.sample_blocks = 64;
    opt.prof.sink = &p;
    opt.prof.kernel_name = "matmul_traced";
    const double t0 = now_seconds();
    const LaunchStats stats = launch(dev, Dim3(n / tile, n / tile),
                                     Dim3(tile, tile), opt, kernel, a, b, c);
    const double wall = now_seconds() - t0;
    return {wall, stats.timing, stats.trace,
            prof::derive_counters(dev.spec(), stats)};
  };
  const TracedRun traced_legacy = run_traced(false);
  const TracedRun traced_batched = run_traced(true);
  const bool traced_identical =
      traced_batched.timing.seconds == traced_legacy.timing.seconds &&
      traced_batched.timing.kernel_cycles == traced_legacy.timing.kernel_cycles &&
      traced_batched.trace == traced_legacy.trace &&
      traced_batched.counters == traced_legacy.counters;
  const double traced_speedup =
      traced_batched.seconds > 0 ? traced_legacy.seconds / traced_batched.seconds
                                 : 0.0;

  // ---- Part 2: one stream vs four ----
  const int sn = 1 << 18;  // 1 MB buffers per pipeline
  std::vector<float> host(sn, 1.0f);
  LaunchOptions sopt;
  sopt.uses_sync = false;

  auto run_pipelines = [&](int nstreams, double* modeled_total,
                           double* modeled_serialized) {
    Device dev;
    rt::Runtime r(dev, {.workers = 1});
    std::vector<rt::Stream> streams;
    for (int i = 0; i < nstreams; ++i) streams.push_back(r.stream_create());
    std::vector<DeviceBuffer<float>> ins, outs;
    std::vector<std::vector<float>> backs(4);
    for (int i = 0; i < 4; ++i) {
      ins.push_back(dev.alloc<float>(sn));
      outs.push_back(dev.alloc<float>(sn));
    }
    // Breadth-first issue: engines serve ops in issue order, so batching a
    // whole pipeline per stream would leave the copy engine with nothing to
    // overlap a kernel with (the classic depth-first-issue pitfall on
    // single-queue hardware).
    const double t0 = now_seconds();
    for (int i = 0; i < 4; ++i)
      r.memcpy_h2d_async(streams[i % nstreams], ins[i], host);
    for (int i = 0; i < 4; ++i)
      r.launch_async(streams[i % nstreams], Dim3(sn / 256), Dim3(256), sopt,
                     nullptr, ScaleKernel{}, ins[i], outs[i]);
    for (int i = 0; i < 4; ++i)
      r.memcpy_d2h_async(streams[i % nstreams], backs[i], outs[i]);
    r.device_synchronize();
    const double wall = now_seconds() - t0;
    *modeled_total = r.modeled_total_seconds();
    *modeled_serialized = r.modeled_serialized_seconds();
    return wall;
  };

  double one_total = 0, one_serial = 0, four_total = 0, four_serial = 0;
  const double one_wall = run_pipelines(1, &one_total, &one_serial);
  const double four_wall = run_pipelines(4, &four_total, &four_serial);

  // ---- Results ----
  bool all_identical = true;
  h.human() << "interpreter scalability, " << n << "x" << n << " matmul ("
            << (n / tile) * (n / tile) << " blocks):\n";
  h.human() << "  legacy (ucontext, traced, w1): " << fixed(legacy.seconds, 4)
            << " s wall\n";
  {
    auto& row = h.result("legacy_ucontext_w1");
    row.set("wall_seconds", legacy.seconds);
    row.set("bit_identical", 1);
    row.set("modeled_kernel_seconds", legacy.timing_seconds);
  }
  for (const auto& [workers, r] : traced) {
    all_identical = all_identical && r.bit_identical;
    h.human() << "  traced   w" << workers << ": " << fixed(r.seconds, 4)
              << " s wall (vs legacy " << fixed(legacy.seconds / r.seconds, 2)
              << "x), bit identical: " << (r.bit_identical ? "yes" : "NO")
              << "\n";
    auto& row = h.result(cat("block_parallel_w", workers));
    row.set("wall_seconds", r.seconds);
    row.set("wall_speedup", traced.front().second.seconds / r.seconds);
    row.set("wall_speedup_vs_legacy", legacy.seconds / r.seconds);
    row.set("bit_identical", r.bit_identical ? 1 : 0);
    row.set("modeled_kernel_seconds", r.timing_seconds);
  }
  double fast_w4_speedup = 0;
  for (const auto& [workers, r] : fast) {
    all_identical = all_identical && r.bit_identical;
    const double speedup = legacy.seconds / r.seconds;
    if (workers == 4) fast_w4_speedup = speedup;
    h.human() << "  fastpath w" << workers << ": " << fixed(r.seconds, 4)
              << " s wall (vs legacy " << fixed(speedup, 2)
              << "x), bit identical: " << (r.bit_identical ? "yes" : "NO")
              << "\n";
    auto& row = h.result(cat("fastpath_w", workers));
    row.set("wall_seconds", r.seconds);
    row.set("wall_speedup_vs_legacy", speedup);
    row.set("bit_identical", r.bit_identical ? 1 : 0);
  }
  {
    // Gate row: floor_ metrics are one-sided in the regression checker
    // (current >= baseline), so lowering the floor constant in this file
    // below the checked-in baseline fails CI; the measured speedup itself
    // is enforced by the non-zero exit below, not by the baseline diff.
    auto& row = h.result("fastpath_gate");
    row.set("floor_speedup_w4", kFloorSpeedupW4);
    row.set("wall_speedup_w4", fast_w4_speedup);
  }
  h.human() << "traced-path recorder (prof attached, sample_blocks=64, no "
               "functional pass):\n";
  h.human() << "  legacy per-lane: " << fixed(traced_legacy.seconds, 4)
            << " s wall\n";
  h.human() << "  batched (arena): " << fixed(traced_batched.seconds, 4)
            << " s wall (" << fixed(traced_speedup, 2)
            << "x), stats bit identical: " << (traced_identical ? "yes" : "NO")
            << "\n";
  {
    // Gate row for the batched recorder path: same one-sided floor_ contract
    // as fastpath_gate.  bit_identical compares modeled timing, the full
    // TraceSummary (every warp counter and per-site row), and all derived
    // profiler counters between the two recorder paths.
    auto& row = h.result("traced_gate");
    row.set("floor_speedup_traced", kFloorSpeedupTraced);
    row.set("wall_speedup_traced", traced_speedup);
    row.set("wall_seconds_legacy", traced_legacy.seconds);
    row.set("wall_seconds_batched", traced_batched.seconds);
    row.set("bit_identical", traced_identical ? 1 : 0);
  }

  const double saving_pct = 100.0 * (four_serial - four_total) /
                            (four_serial > 0 ? four_serial : 1.0);
  h.human() << "streams (4 pipelines, "
            << static_cast<std::uint64_t>(sn) * sizeof(float)
            << " B/copy): 1 stream " << fixed(one_total, 6)
            << " s modeled, 4 streams " << fixed(four_total, 6)
            << " s modeled (serialized " << fixed(four_serial, 6)
            << " s, overlap saves " << fixed(saving_pct, 1) << "%)\n";
  {
    auto& row = h.result("streams_one");
    row.set("wall_seconds", one_wall);
    row.set("modeled_seconds", one_total);
    row.set("modeled_serialized_seconds", one_serial);
  }
  {
    auto& row = h.result("streams_four");
    row.set("wall_seconds", four_wall);
    row.set("modeled_seconds", four_total);
    row.set("modeled_serialized_seconds", four_serial);
    row.set("modeled_overlap_saving_pct", saving_pct);
  }

  Device spec_dev;
  const int rc = h.finish(spec_dev.spec());
  if (!all_identical) {
    std::cerr << "FAIL: outputs/stats diverged from the sequential reference\n";
    return 1;
  }
  if (fast_w4_speedup < kFloorSpeedupW4) {
    std::cerr << "FAIL: 4-worker fast path speedup " << fixed(fast_w4_speedup, 2)
              << "x vs legacy is below the " << fixed(kFloorSpeedupW4, 1)
              << "x floor (ROADMAP item 1 regression)\n";
    return 1;
  }
  if (!traced_identical) {
    std::cerr << "FAIL: batched recorder stats diverged from the legacy "
                 "per-lane recorder\n";
    return 1;
  }
  if (traced_speedup < kFloorSpeedupTraced) {
    std::cerr << "FAIL: batched traced-path speedup " << fixed(traced_speedup, 2)
              << "x vs the legacy recorder is below the "
              << fixed(kFloorSpeedupTraced, 1) << "x floor\n";
    return 1;
  }
  return rc;
}
