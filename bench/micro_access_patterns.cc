// Microbenchmark: achieved DRAM bandwidth versus global access pattern —
// the quantified version of §3.2's "this bandwidth can be obtained only
// when accesses are contiguous 16-word lines; in other cases the achievable
// bandwidth is a fraction of the maximum".
//
// A copy kernel reads with a configurable (stride, offset) pattern and
// writes contiguously; the table reports the read-side coalescing outcome
// and the resulting effective bandwidth.
#include <algorithm>
#include <iostream>

#include "bench/harness.h"
#include "common/str.h"
#include "common/table.h"
#include "cudalite/ctx.h"
#include "cudalite/device.h"
#include "cudalite/launch.h"

using namespace g80;

namespace {

struct PatternCopyKernel {
  int stride = 1;   // element stride between consecutive threads
  int offset = 0;   // elements of misalignment added to every address
  int n = 0;        // output elements

  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& src,
                  DeviceBuffer<float>& dst) const {
    auto S = ctx.global(src);
    auto D = ctx.global(dst);
    ctx.ialu(3);
    const int i = ctx.global_thread_x();
    if (!ctx.branch(i < n)) return;
    const std::size_t addr =
        (static_cast<std::size_t>(i) * stride + offset) % src.size();
    D.st(i, S.ld(addr));
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h(argc, argv, "micro_access_patterns");
  Device dev;
  const int n = 1 << 20;
  auto src = dev.alloc<float>(static_cast<std::size_t>(n) * 4);
  auto dst = dev.alloc<float>(n);

  LaunchOptions opt;
  opt.regs_per_thread = 6;
  opt.uses_sync = false;
  opt.functional = false;
  const Dim3 block(256);
  const Dim3 grid(static_cast<unsigned>(n / 256));

  h.human() << "Access-pattern microbenchmark: " << n
            << " loads + contiguous stores on " << dev.spec().name << "\n"
            << "(peak " << fixed(dev.spec().dram_bandwidth_gbs, 1)
            << " GB/s; coalesced efficiency "
            << fixed(dev.spec().dram_efficiency, 2) << ", scattered "
            << fixed(dev.spec().dram_scattered_efficiency, 2) << ")\n\n";

  TextTable t({"pattern", "read coalesced %", "txn/read", "useful GB/s",
               "time (ms)", "bottleneck"});

  struct Case {
    const char* name;
    const char* key;
    int stride, offset;
  };
  const Case cases[] = {
      {"unit stride, aligned", "stride1_aligned", 1, 0},
      {"unit stride, +1 word misaligned", "stride1_off1", 1, 1},
      {"unit stride, +4 words misaligned", "stride1_off4", 1, 4},
      {"stride 2", "stride2", 2, 0},
      {"stride 4", "stride4", 4, 0},
      {"stride 16 (one txn per lane)", "stride16", 16, 0},
      {"stride 97 (fully scattered)", "stride97", 97, 0},
  };
  for (const auto& c : cases) {
    const auto s = launch(dev, grid, block, opt,
                          PatternCopyKernel{c.stride, c.offset, n}, src, dst);
    // Read-side coalescing: subtract the always-coalesced store per thread.
    const double total_insts =
        static_cast<double>(s.trace.total.global_instructions);
    const double reads = total_insts / 2.0;
    const double read_coalesced =
        static_cast<double>(s.trace.total.coalesced_instructions) - reads;
    const double useful_gbs =
        static_cast<double>(s.trace.total.useful_global_bytes) /
        static_cast<double>(s.trace.num_blocks) *
        static_cast<double>(s.grid.count()) / s.timing.seconds / 1e9;
    t.add_row({
        c.name,
        fixed(100.0 * std::max(0.0, read_coalesced) / reads, 1),
        fixed(s.trace.transactions_per_mem_inst(), 2),
        fixed(useful_gbs, 1),
        fixed(s.timing.seconds * 1e3, 3),
        std::string(bottleneck_name(s.timing.bottleneck)),
    });
    auto& r = h.result(c.key);
    r.set("read_coalesced_fraction", std::max(0.0, read_coalesced) / reads);
    r.set("txn_per_read", s.trace.transactions_per_mem_inst());
    r.set("useful_gbs", useful_gbs);
    r.set("modeled_ms", s.timing.seconds * 1e3);
  }
  t.print(h.human());
  h.human() << "\nthe cliff from row 1 to row 2 is the §3.2 rule: a single "
               "word of misalignment\nforfeits the 16-word line and "
               "serializes the half-warp\n";
  return h.finish(dev.spec());
}
