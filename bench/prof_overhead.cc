// g80prof zero-perturbation check plus artifact demo.
//
// Part 1 asserts the profiler's core contract: running the same matmul with
// and without a Profiler attached produces BIT-IDENTICAL output matrices
// (the counters are derived from the trace pass the launch performs anyway,
// so the functional pass cannot observe the profiler).  The program aborts
// if a single bit differs.
//
// Part 2 runs a profiled two-stream g80rt session and writes both g80prof
// artifacts: the per-kernel JSON counter report to stdout and the Chrome
// trace-event file `prof_overhead_trace.json` (load it at chrome://tracing
// — docs/profiling.md walks through the workflow).
#include <cstring>
#include <fstream>
#include <iostream>

#include "apps/matmul/matmul.h"
#include "common/error.h"
#include "common/str.h"
#include "core/report.h"
#include "cudalite/device.h"
#include "prof/chrome_trace.h"
#include "prof/profiler.h"
#include "rt/runtime.h"

using namespace g80;
using namespace g80::apps;

namespace {

struct ScaleKernel {
  // Out-of-place: sampled blocks execute in both the trace and functional
  // passes, so kernels must be idempotent at block granularity.
  float factor = 1.0f;
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& in,
                  DeviceBuffer<float>& out) const {
    auto In = ctx.global(in);
    auto Out = ctx.global(out);
    const int i = ctx.global_thread_x();
    Out.st(i, ctx.mul(In.ld(i), factor));
  }
};

std::vector<float> run_once(Device& dev, const MatmulWorkload& w,
                            prof::Profiler* profiler) {
  auto da = dev.alloc<float>(w.a.size());
  auto db = dev.alloc<float>(w.b.size());
  auto dc = dev.alloc<float>(w.a.size());
  da.copy_from_host(w.a);
  db.copy_from_host(w.b);
  const MatmulConfig cfg{MatmulVariant::kTiledUnrolled, 16};
  run_matmul(dev, cfg, w.n, da, db, dc, /*functional=*/true, profiler);
  return dc.copy_to_host();
}

}  // namespace

int main() {
  Device dev;

  // --- Part 1: bit-identical outputs with profiling on vs off ---
  const int n = 256;
  const auto w = MatmulWorkload::generate(n, /*seed=*/42);
  prof::Profiler profiler;
  const auto plain = run_once(dev, w, nullptr);
  const auto profiled = run_once(dev, w, &profiler);
  G80_CHECK_MSG(plain.size() == profiled.size(), "output size mismatch");
  // memcmp, not an epsilon: the contract is bit-identity, not closeness.
  G80_CHECK_MSG(std::memcmp(plain.data(), profiled.data(),
                            plain.size() * sizeof(float)) == 0,
                "profiled run diverged from unprofiled run");
  std::cout << "profiling on/off outputs bit-identical over " << n << "x" << n
            << " matmul (" << plain.size() << " floats)\n\n";

  // --- Part 2: a profiled runtime session and its two artifacts ---
  prof::Profiler session;
  rt::RuntimeOptions ropt;
  ropt.profiler = &session;
  rt::Runtime r(dev, ropt);

  const int m = 1 << 14;
  std::vector<float> h(m, 1.0f);
  auto d0 = dev.alloc<float>(m);
  auto d1 = dev.alloc<float>(m);
  auto o0 = dev.alloc<float>(m);
  auto o1 = dev.alloc<float>(m);
  rt::Stream s0 = r.stream_create();
  rt::Stream s1 = r.stream_create();

  LaunchOptions opt;
  opt.uses_sync = false;
  opt.prof.kernel_name = "scale2";
  r.memcpy_h2d_async(s0, d0, h);
  r.launch_async(s0, Dim3(m / 256), Dim3(256), opt, nullptr,
                 ScaleKernel{2.0f}, d0, o0);
  opt.prof.kernel_name = "scale3";
  r.memcpy_h2d_async(s1, d1, h);
  r.launch_async(s1, Dim3(m / 256), Dim3(256), opt, nullptr,
                 ScaleKernel{3.0f}, d1, o1);
  std::vector<float> out0, out1;
  r.memcpy_d2h_async(s0, out0, o0);
  r.memcpy_d2h_async(s1, out1, o1);
  r.device_synchronize();

  std::cout << profile_report(dev.spec(), session) << "\n"
            << "g80prof JSON report:\n"
            << profile_json(dev.spec(), session) << "\n\n";

  const std::string trace = prof::chrome_trace_json(r.timeline_snapshot());
  std::ofstream("prof_overhead_trace.json") << trace;
  std::cout << "wrote prof_overhead_trace.json (" << trace.size()
            << " bytes) — load at chrome://tracing\n";

  r.stream_destroy(s0);
  r.stream_destroy(s1);
  return 0;
}
