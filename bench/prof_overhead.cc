// g80prof zero-perturbation check plus artifact demo, on the standard
// harness (emits the g80bench-result document run_benches.sh archives and
// check_bench_regression.py diffs against bench/baselines/).
//
// Part 1 asserts the profiler's core contract: running the same matmul with
// and without a Profiler attached produces BIT-IDENTICAL output matrices
// (the counters are derived from the trace pass the launch performs anyway,
// so the functional pass cannot observe the profiler).  The bench exits
// non-zero if a single bit differs.  Both runs are timed, so the result row
// also records what attaching the profiler costs in wall clock (wall_
// metrics: context only, excluded from regression), alongside a sample of
// the deterministic counters the baseline does pin.
//
// Part 2 runs a profiled two-stream g80rt session and writes both g80prof
// artifacts: the per-kernel counter report through human() and the Chrome
// trace-event file `prof_overhead_trace.json` (load it at chrome://tracing
// — docs/profiling.md walks through the workflow).
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>

#include "apps/matmul/matmul.h"
#include "bench/harness.h"
#include "common/error.h"
#include "common/str.h"
#include "core/report.h"
#include "cudalite/device.h"
#include "prof/chrome_trace.h"
#include "prof/counters.h"
#include "prof/profiler.h"
#include "rt/runtime.h"

using namespace g80;
using namespace g80::apps;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ScaleKernel {
  // Out-of-place: sampled blocks execute in both the trace and functional
  // passes, so kernels must be idempotent at block granularity.
  float factor = 1.0f;
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& in,
                  DeviceBuffer<float>& out) const {
    auto In = ctx.global(in);
    auto Out = ctx.global(out);
    const int i = ctx.global_thread_x();
    Out.st(i, ctx.mul(In.ld(i), factor));
  }
};

std::vector<float> run_once(Device& dev, const MatmulWorkload& w,
                            prof::Profiler* profiler, double* wall) {
  auto da = dev.alloc<float>(w.a.size());
  auto db = dev.alloc<float>(w.b.size());
  auto dc = dev.alloc<float>(w.a.size());
  da.copy_from_host(w.a);
  db.copy_from_host(w.b);
  const MatmulConfig cfg{MatmulVariant::kTiledUnrolled, 16};
  const double t0 = now_seconds();
  run_matmul(dev, cfg, w.n, da, db, dc, /*functional=*/true, profiler);
  *wall = now_seconds() - t0;
  return dc.copy_to_host();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h(argc, argv, "prof_overhead");
  Device dev;

  // --- Part 1: bit-identical outputs with profiling on vs off ---
  const int n = 256;
  const auto w = MatmulWorkload::generate(n, h.seed());
  prof::Profiler profiler;
  double wall_plain = 0, wall_profiled = 0;
  const auto plain = run_once(dev, w, nullptr, &wall_plain);
  const auto profiled = run_once(dev, w, &profiler, &wall_profiled);
  const bool identical =
      plain.size() == profiled.size() &&
      // memcmp, not an epsilon: the contract is bit-identity, not closeness.
      std::memcmp(plain.data(), profiled.data(),
                  plain.size() * sizeof(float)) == 0;
  h.human() << "profiling on/off outputs bit-identical over " << n << "x" << n
            << " matmul (" << plain.size() << " floats): "
            << (identical ? "yes" : "NO") << "\n";
  h.human() << "  plain " << fixed(wall_plain, 4) << " s, profiled "
            << fixed(wall_profiled, 4) << " s ("
            << fixed(wall_plain > 0 ? wall_profiled / wall_plain : 0.0, 3)
            << "x)\n\n";
  {
    auto& r = h.result("matmul_tiled_unrolled_256");
    r.set("bit_identical", identical ? 1 : 0);
    r.set("wall_seconds_plain", wall_plain);
    r.set("wall_seconds_profiled", wall_profiled);
    r.set("wall_overhead_ratio",
          wall_plain > 0 ? wall_profiled / wall_plain : 0.0);
    // A sample of the deterministic counters, so the baseline pins the
    // profiler's arithmetic as well as its invisibility.
    const auto ks = profiler.kernels();
    if (!ks.empty()) {
      const prof::KernelCounters& c = ks.front().counters;
      r.set("gld_coalesced", static_cast<double>(c.gld_coalesced));
      r.set("gst_coalesced", static_cast<double>(c.gst_coalesced));
      r.set("warp_serialize", static_cast<double>(c.warp_serialize));
      r.set("instructions", static_cast<double>(c.instructions));
      r.set("blocks_total", static_cast<double>(c.blocks_total));
    }
  }

  // --- Part 2: a profiled runtime session and its two artifacts ---
  prof::Profiler session;
  rt::RuntimeOptions ropt;
  ropt.profiler = &session;
  rt::Runtime r(dev, ropt);

  const int m = 1 << 14;
  std::vector<float> host(m, 1.0f);
  auto d0 = dev.alloc<float>(m);
  auto d1 = dev.alloc<float>(m);
  auto o0 = dev.alloc<float>(m);
  auto o1 = dev.alloc<float>(m);
  rt::Stream s0 = r.stream_create();
  rt::Stream s1 = r.stream_create();

  LaunchOptions opt;
  opt.uses_sync = false;
  opt.prof.kernel_name = "scale2";
  r.memcpy_h2d_async(s0, d0, host);
  r.launch_async(s0, Dim3(m / 256), Dim3(256), opt, nullptr,
                 ScaleKernel{2.0f}, d0, o0);
  opt.prof.kernel_name = "scale3";
  r.memcpy_h2d_async(s1, d1, host);
  r.launch_async(s1, Dim3(m / 256), Dim3(256), opt, nullptr,
                 ScaleKernel{3.0f}, d1, o1);
  std::vector<float> out0, out1;
  r.memcpy_d2h_async(s0, out0, o0);
  r.memcpy_d2h_async(s1, out1, o1);
  r.device_synchronize();

  h.human() << profile_report(dev.spec(), session) << "\n"
            << "g80prof JSON report:\n"
            << profile_json(dev.spec(), session) << "\n\n";
  {
    auto& row = h.result("rt_session");
    row.set("kernels_profiled", static_cast<double>(session.kernels().size()));
    row.set("launches", static_cast<double>(session.total_launches()));
  }

  const std::string trace = prof::chrome_trace_json(r.timeline_snapshot());
  std::ofstream("prof_overhead_trace.json") << trace;
  h.human() << "wrote prof_overhead_trace.json (" << trace.size()
            << " bytes) — load at chrome://tracing\n";

  r.stream_destroy(s0);
  r.stream_destroy(s1);
  const int rc = h.finish(dev.spec());
  if (!identical) {
    std::cerr << "FAIL: profiled run diverged from unprofiled run\n";
    return 1;
  }
  return rc;
}
