// Reproduces the §4 matrix-multiplication optimization walk at the paper's
// 4096x4096 size (timing from sampled blocks; functional equivalence is
// covered by tests/matmul_test.cc at smaller sizes).
//
// Paper reference points (GeForce 8800 GTX, CUDA 0.8):
//   §4.1 naive                     10.58 GFLOPS  (global-bandwidth bound)
//   §4.2 16x16 tiled               46.49 GFLOPS  (~4.5x the naive version)
//   §4.3 16x16 tiled + unrolled    91.14 GFLOPS  (potential 93.72)
//   §4.4 + prefetch (11 regs)      87.10 GFLOPS  (one fewer block/SM, -5%)
#include <iostream>

#include "apps/matmul/matmul.h"
#include "bench/harness.h"
#include "common/str.h"
#include "common/table.h"
#include "core/advisor.h"
#include "core/report.h"
#include "cudalite/device.h"
#include "prof/profiler.h"
#include "scope/session.h"

using namespace g80;
using namespace g80::apps;

int main(int argc, char** argv) {
  bench::Harness h(argc, argv, "sec4_matmul_versions");
  Device dev;
  const int n = 4096;

  auto da = dev.alloc<float>(static_cast<std::size_t>(n) * n);
  auto db = dev.alloc<float>(static_cast<std::size_t>(n) * n);
  auto dc = dev.alloc<float>(static_cast<std::size_t>(n) * n);

  struct Row {
    MatmulConfig cfg;
    double paper_gflops;  // value stated in the paper text, 0 if not stated
  };
  const Row rows[] = {
      {{MatmulVariant::kNaive, 16}, 10.58},
      {{MatmulVariant::kTiled, 16}, 46.49},
      {{MatmulVariant::kTiledUnrolled, 16}, 91.14},
      {{MatmulVariant::kPrefetch, 16}, 87.10},
  };

  h.human() << "Section 4: matrix multiplication versions, " << n << "x" << n
            << " on simulated " << dev.spec().name << "\n"
            << "peak MAD throughput: " << fixed(dev.spec().peak_mad_gflops(), 1)
            << " GFLOPS, DRAM: " << fixed(dev.spec().dram_bandwidth_gbs, 1)
            << " GB/s\n\n";

  prof::Profiler profiler;
  scope::Session scope_session;
  TextTable t({"version", "GFLOPS (model)", "GFLOPS (paper)", "potential",
               "blocks/SM", "regs", "fmad mix %", "DRAM GB/s", "bottleneck"});
  for (const auto& row : rows) {
    const auto stats =
        run_matmul(dev, row.cfg, n, da, db, dc, /*functional=*/false,
                   &profiler, &scope_session);
    t.add_row({
        row.cfg.name(),
        fixed(stats.timing.gflops, 2),
        row.paper_gflops > 0 ? fixed(row.paper_gflops, 2) : "-",
        fixed(potential_gflops(dev.spec(), stats.trace), 2),
        cat(stats.occupancy.blocks_per_sm),
        cat(stats.regs_per_thread),
        fixed(100 * stats.trace.fmad_fraction(), 1),
        fixed(stats.timing.dram_gbs, 1),
        std::string(bottleneck_name(stats.timing.bottleneck)),
    });
    auto& r = h.result(row.cfg.name());
    r.set("gflops", stats.timing.gflops);
    r.set("paper_gflops", row.paper_gflops);
    r.set("potential_gflops", potential_gflops(dev.spec(), stats.trace));
    r.set("blocks_per_sm", stats.occupancy.blocks_per_sm);
    r.set("regs_per_thread", stats.regs_per_thread);
    r.set("fmad_fraction", stats.trace.fmad_fraction());
    r.set("dram_gbs", stats.timing.dram_gbs);
    r.set("modeled_ms", stats.timing.seconds * 1e3);
  }
  t.print(h.human());

  // The advisor's view of the naive kernel (the §4.1 diagnosis): once citing
  // the measured g80prof counters, once citing the g80scope source line the
  // relevant stall cycles attribute to.
  scope::Session naive_scope;
  const auto naive = run_matmul(dev, {MatmulVariant::kNaive, 16}, n, da, db,
                                dc, /*functional=*/false, nullptr,
                                &naive_scope);
  h.human() << "\nAdvisor on the naive kernel (g80prof evidence):\n"
            << format_advice(advise(dev.spec(), naive,
                                    prof::derive_counters(dev.spec(), naive)));
  if (!naive_scope.launches().empty()) {
    h.human() << "\nAdvisor on the naive kernel (g80scope hot lines):\n"
              << format_advice(advise(dev.spec(), naive,
                                      naive_scope.launches().front().scope));
  }

  // Where the modeled cycles went, per version, and which source lines cost
  // the most stall cycles across the whole §4 walk.
  h.human() << "\n" << scope_report(dev.spec(), scope_session);

  // Machine-readable session report: per-version counters plus the paper's
  // Table 2 (instruction mix / FMAD fraction) and Table 3 (configuration,
  // occupancy, GFLOPS) columns.
  h.human() << "\ng80prof JSON report:\n"
            << profile_json(dev.spec(), profiler) << "\n";
  return h.finish(dev.spec());
}
