// Optimization-space carving over the matrix-multiplication configuration
// space (§6's future-work tooling, after the authors' follow-up work on
// optimization-space pruning).
//
// Cheap single-block probes rank every configuration by instruction
// efficiency and machine utilization; only the Pareto frontier receives a
// full evaluation.  The carver should (a) never prune the true optimum and
// (b) evaluate well under half of the space.
#include <iostream>

#include "apps/matmul/matmul.h"
#include "common/str.h"
#include "core/carver.h"
#include "cudalite/device.h"

using namespace g80;
using namespace g80::apps;

int main() {
  Device dev;
  const int n = 4096;
  auto da = dev.alloc<float>(static_cast<std::size_t>(n) * n);
  auto db = dev.alloc<float>(static_cast<std::size_t>(n) * n);
  auto dc = dev.alloc<float>(static_cast<std::size_t>(n) * n);

  OptimizationCarver carver(dev.spec());

  std::vector<MatmulConfig> space;
  space.push_back({MatmulVariant::kNaive, 16});
  space.push_back({MatmulVariant::kNaiveUnrolled, 16});
  for (int tile : {4, 8, 16}) {
    space.push_back({MatmulVariant::kTiled, tile});
    space.push_back({MatmulVariant::kTiledUnrolled, tile});
  }
  space.push_back({MatmulVariant::kPrefetch, 16});
  space.push_back({MatmulVariant::kRegisterTiled, 16});

  for (const auto& cfg : space) {
    // Probe runs reuse run_matmul but the timing model only needs the trace;
    // both probe and evaluate are trace-only here (functional correctness is
    // covered by tests), differing in how much of the grid they sample
    // through LaunchOptions defaults inside run_matmul.
    carver.add({cfg.name(),
                [&, cfg] { return run_matmul(dev, cfg, n, da, db, dc, false); },
                [&, cfg] { return run_matmul(dev, cfg, n, da, db, dc, false); }});
  }

  const auto report = carver.carve();
  std::cout << "Optimization-space carving: " << n << "x" << n
            << " matrix multiplication, " << space.size()
            << " configurations\n\n"
            << report.to_table(dev.spec())
            << "\nbest configuration: " << report.best().name << " at "
            << fixed(report.best().full.timing.gflops, 2)
            << " GFLOPS\n(§6: \"better tools ... that automatically "
               "experiment with their performance effects\";\nthe "
               "register-tiled extension shows the headroom beyond the "
               "paper's 91.14 GFLOPS)\n";
  return 0;
}
