// g80scope overhead and conservation check.
//
// The scope's contract (scope/scope.h) has two halves, and this bench pins
// both outside the unit-test tier at a realistic kernel size:
//
//   1. Zero perturbation: attaching a scope::Session to a launch changes
//      nothing observable — kernel outputs and every modeled statistic are
//      bit-identical with the scope on and off, because the series is
//      derived after the passes complete.
//   2. Conservation: summing any extensive series over all SM buckets
//      reproduces the launch total the aggregate model implies, the site
//      attribution table reconciles with the same totals, and the scope's
//      instruction/DRAM totals agree with g80prof's extrapolated counters
//      and the timing model's total_dram_bytes.
//
// Exits non-zero if either half fails, so scripts/run_benches.sh doubles as
// a correctness gate for the telemetry layer.
#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <vector>

#include "apps/matmul/matmul.h"
#include "bench/harness.h"
#include "common/str.h"
#include "cudalite/device.h"
#include "cudalite/launch.h"
#include "prof/counters.h"
#include "scope/session.h"

using namespace g80;
using namespace g80::apps;

namespace {

double rel_err(double got, double want) {
  return std::abs(got - want) / std::max(1.0, std::abs(want));
}

double series_sum(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x;
  return s;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h(argc, argv, "scope_overhead");

  const int n = 256, tile = 16;
  const auto wl = MatmulWorkload::generate(n, h.seed());

  Device dev;
  auto da = dev.alloc<float>(wl.a.size());
  auto db = dev.alloc<float>(wl.b.size());
  auto dc = dev.alloc<float>(static_cast<std::size_t>(n) * n);
  da.copy_from_host(wl.a);
  db.copy_from_host(wl.b);

  const MatmulTiledKernel kernel{n, tile, /*unrolled=*/true};
  double wall_off = 0, wall_on = 0;
  const auto run = [&](scope::Session* sink, std::vector<float>* out,
                       double* wall) {
    LaunchOptions opt;
    opt.regs_per_thread = 9;
    opt.scope.sink = sink;
    const double t0 = now_seconds();
    const LaunchStats s = launch(dev, Dim3(n / tile, n / tile),
                                 Dim3(tile, tile), opt, kernel, da, db, dc);
    *wall = now_seconds() - t0;
    *out = dc.copy_to_host();
    return s;
  };

  std::vector<float> out_off, out_on;
  const LaunchStats off = run(nullptr, &out_off, &wall_off);
  scope::Session session;
  const LaunchStats on = run(&session, &out_on, &wall_on);

  // ---- Half 1: bit-identical with the scope attached ----
  const bool outputs_identical =
      out_off.size() == out_on.size() &&
      std::memcmp(out_off.data(), out_on.data(),
                  out_off.size() * sizeof(float)) == 0;
  const bool timing_identical =
      off.timing.seconds == on.timing.seconds &&
      off.timing.kernel_cycles == on.timing.kernel_cycles &&
      off.timing.gflops == on.timing.gflops;

  // ---- Half 2: conservation ----
  const auto launches = session.launches();
  double max_residual = launches.empty() ? 1.0 : 0.0;
  const auto check = [&](const char* what, double got, double want) {
    const double r = rel_err(got, want);
    max_residual = std::max(max_residual, r);
    h.human() << "  " << what << ": got " << fixed(got, 3) << ", want "
              << fixed(want, 3) << " (rel err " << r << ")\n";
  };

  if (!launches.empty()) {
    const scope::KernelScope& sc = launches.front().scope;
    const scope::ScopeTotals& tot = sc.totals;
    double issue = 0, ser = 0, unc = 0, mem = 0, bar = 0, ins = 0, dram = 0;
    for (const auto& sm : sc.sms) {
      issue += series_sum(sm.issue_cycles);
      ser += series_sum(sm.serialization_cycles);
      unc += series_sum(sm.uncoalesced_cycles);
      mem += series_sum(sm.mem_stall_cycles);
      bar += series_sum(sm.barrier_cycles);
      ins += series_sum(sm.instructions);
      dram += series_sum(sm.dram_bytes);
    }
    h.human() << "conservation (bucket sums vs aggregate totals):\n";
    check("issue_cycles", issue, tot.issue_cycles);
    check("serialization_cycles", ser, tot.serialization_cycles);
    check("uncoalesced_cycles", unc, tot.uncoalesced_cycles);
    check("mem_stall_cycles", mem, tot.mem_stall_cycles);
    check("barrier_cycles", bar, tot.barrier_cycles);
    check("instructions", ins, tot.instructions);
    check("dram_bytes", dram, tot.dram_bytes);
    check("device_dram_bytes", series_sum(sc.device_dram_bytes),
          tot.dram_bytes);

    // Site attribution reconciles with the same totals.
    double s_unc = 0, s_ser = 0, s_bar = 0, s_mem = 0;
    for (const auto& s : sc.sites) {
      s_unc += s.uncoalesced_cycles;
      s_ser += s.serialization_cycles;
      s_bar += s.barrier_cycles;
      s_mem += s.mem_stall_cycles;
    }
    h.human() << "site table vs totals:\n";
    check("sites.uncoalesced_cycles", s_unc, tot.uncoalesced_cycles);
    check("sites.serialization_cycles", s_ser, tot.serialization_cycles);
    check("sites.barrier_cycles", s_bar, tot.barrier_cycles);
    check("sites.mem_stall_cycles", s_mem, tot.mem_stall_cycles);

    // Cross-model agreement: g80prof's extrapolated counters and the timing
    // model's DRAM total describe the same launch.
    const prof::KernelCounters c = prof::derive_counters(dev.spec(), on);
    h.human() << "cross-model (g80prof counters, timing model):\n";
    check("prof.instructions x grid_scale",
          static_cast<double>(c.instructions) * c.grid_scale(),
          tot.instructions);
    check("prof.dram_bytes x grid_scale",
          static_cast<double>(c.dram_bytes) * c.grid_scale(), tot.dram_bytes);
    check("timing.total_dram_bytes", on.timing.total_dram_bytes,
          tot.dram_bytes);

    auto& r = h.result("matmul_tiled_unrolled_256");
    r.set("bit_identical_outputs", outputs_identical ? 1 : 0);
    r.set("bit_identical_timing", timing_identical ? 1 : 0);
    r.set("max_conservation_residual", max_residual);
    r.set("modeled_gflops", on.timing.gflops);
    r.set("num_buckets", sc.num_buckets);
    r.set("num_sites", static_cast<double>(sc.sites.size()));
    r.set("horizon_cycles", sc.horizon_cycles);
    // Wall-clock overhead of attaching the scope (wall_ metrics are context
    // only — excluded from baseline regression).
    r.set("wall_seconds_off", wall_off);
    r.set("wall_seconds_on", wall_on);
    r.set("wall_overhead_ratio", wall_off > 0 ? wall_on / wall_off : 0.0);
  }

  const bool ok =
      outputs_identical && timing_identical && max_residual < 1e-9;
  h.human() << "\noutputs bit-identical: " << (outputs_identical ? "yes" : "NO")
            << "; timing bit-identical: " << (timing_identical ? "yes" : "NO")
            << "; max conservation residual: " << max_residual << " => "
            << (ok ? "PASS" : "FAIL") << "\n";

  const int rc = h.finish(dev.spec());
  return ok ? rc : 1;
}
