// Unified bench harness: one CLI, one result schema, for every binary under
// bench/.  A bench constructs a Harness from (argc, argv), prints its
// human-readable tables through `human()`, records scalar metrics into named
// `result()` rows, and returns `finish(spec)` from main.
//
// CLI contract (shared by scripts/run_benches.sh):
//   --out FILE   write the JSON result document to FILE
//   --json       print the JSON document on stdout (and silence human())
//   --seed N     workload seed, for benches that generate random inputs
//
// Result schema (g80bench-result, version 1):
//   {
//     "provenance": { "schema": "g80bench-result", "schema_version": 1,
//                     "git_describe", "build_config",
//                     "device", "device_spec_hash" },
//     "bench": "<name>", "seed": N,
//     "results": [ { "name": "<row>", "metrics": { "<key>": <number> } } ]
//   }
//
// Metric keys prefixed `wall_` are wall-clock measurements: recorded for
// context but excluded from regression comparison
// (scripts/check_bench_regression.py), since they depend on host load.
// Every other metric must be deterministic — a modeled quantity or an exact
// count — so baselines diff bit-for-bit across runs.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "hw/device_spec.h"

namespace g80::bench {

// One named result row: an ordered bag of scalar metrics.
struct Result {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;

  // Sets (or overwrites) one metric; insertion order is preserved.
  void set(const std::string& key, double value);
};

class Harness {
 public:
  // Parses the common flags; unknown arguments print usage and exit(2).
  Harness(int argc, char** argv, std::string bench_name);

  std::uint64_t seed() const { return seed_; }
  bool json() const { return json_; }

  // Human-readable report stream: std::cout normally, a swallow-everything
  // stream under --json so stdout stays machine-parseable.
  std::ostream& human();

  // Result row keyed by name; created on first use, order preserved.
  Result& result(const std::string& name);

  // Serializes the result document to --out and/or stdout per the flags.
  // Returns the process exit code for main.
  int finish(const DeviceSpec& spec);

 private:
  std::string bench_name_;
  std::string out_path_;
  bool json_ = false;
  std::uint64_t seed_ = 7;
  std::vector<Result> results_;
};

}  // namespace g80::bench
