// ContentHasher golden values.  These digests are load-bearing: they key the
// g80serve on-disk result cache and appear as device_spec_hash in every
// checked-in bench baseline.  If canonicalization changes — a format string,
// the separator, the field order of launch_config_hash or device_spec_hash —
// these tests fail, which is the intended loud alarm: bump
// serve::kModelVersion and regenerate baselines rather than silently
// orphaning every cached artifact.
#include <gtest/gtest.h>

#include "common/content_hash.h"
#include "hw/device_spec.h"

namespace g80 {
namespace {

TEST(ContentHasher, EmptyDigestIsOffsetBasis) {
  ContentHasher h;
  EXPECT_EQ(h.digest(), ContentHasher::kOffsetBasis);
  EXPECT_EQ(h.digest(), 0xcbf29ce484222325ull);
}

TEST(ContentHasher, GoldenFieldSequence) {
  ContentHasher h;
  h.str("abc");
  h.i64(-7);
  h.u64(42);
  h.f64(1.5);
  h.boolean(true);
  EXPECT_EQ(h.digest(), 0x66f25e327f06f193ull);
}

TEST(ContentHasher, SeparatorPreventsFieldAliasing) {
  ContentHasher a, b;
  a.str("ab");
  a.str("c");
  b.str("a");
  b.str("bc");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(ContentHasher, DoublesUseShortestRoundTrip) {
  // %.17g renders distinct doubles distinctly.
  ContentHasher a, b;
  a.f64(1.0);
  b.f64(1.0 + 1e-15);
  EXPECT_NE(a.digest(), b.digest());
  // Equal values hash equally however they were computed.
  ContentHasher c, d;
  c.f64(0.1 + 0.2);
  d.f64(0.30000000000000004);
  EXPECT_EQ(c.digest(), d.digest());
}

TEST(ContentHasher, RawBytes) {
  const unsigned char data[] = {0x00, 0xff, 0x10};
  ContentHasher a, b;
  a.raw(data, sizeof data);
  b.raw(data, 2);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(DeviceSpecHash, GoldenValues) {
  // The GTX value is embedded in bench/baselines/*.json provenance; all
  // three differ pairwise (classes never share cache keys).
  EXPECT_EQ(device_spec_hash(DeviceSpec::geforce_8800_gtx()),
            0x49713251bef418e2ull);
  EXPECT_EQ(device_spec_hash(DeviceSpec::geforce_8800_ultra()),
            0xaae4aab2ccc169baull);
  EXPECT_EQ(device_spec_hash(DeviceSpec::geforce_8800_gts()),
            0xb17026141504ba23ull);
}

TEST(LaunchConfigHash, GoldenValues) {
  EXPECT_EQ(launch_config_hash(LaunchConfig{}), 0xd4643a86c375f174ull);
  LaunchConfig matmul;
  matmul.grid_x = matmul.grid_y = 8;
  matmul.block_x = matmul.block_y = 16;
  matmul.regs_per_thread = 9;
  EXPECT_EQ(launch_config_hash(matmul), 0xf2a600b3f29dea3cull);
}

TEST(LaunchConfigHash, EveryFieldContributes) {
  const LaunchConfig base;
  const std::uint64_t h0 = launch_config_hash(base);
  LaunchConfig c = base;
  c.grid_y = 2;
  EXPECT_NE(launch_config_hash(c), h0);
  c = base;
  c.block_z = 2;
  EXPECT_NE(launch_config_hash(c), h0);
  c = base;
  c.sample_blocks = 8;
  EXPECT_NE(launch_config_hash(c), h0);
  c = base;
  c.functional = false;
  EXPECT_NE(launch_config_hash(c), h0);
  c = base;
  c.uses_sync = false;
  EXPECT_NE(launch_config_hash(c), h0);
}

TEST(LaunchConfigHash, Helpers) {
  LaunchConfig c;
  c.grid_x = 4;
  c.grid_y = 3;
  c.block_x = 16;
  c.block_y = 8;
  c.block_z = 2;
  EXPECT_EQ(c.total_blocks(), 12u);
  EXPECT_EQ(c.threads_per_block(), 256u);
}

}  // namespace
}  // namespace g80
