// Tests for the shared-memory bank-conflict analyzer, the constant-cache
// broadcast model, the texture cache and the DRAM model.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "hw/device_spec.h"
#include "mem/bank_conflict.h"
#include "mem/const_cache.h"
#include "mem/dram.h"
#include "mem/texture_cache.h"

namespace g80 {
namespace {

const DeviceSpec kSpec = DeviceSpec::geforce_8800_gtx();

WarpAccess lanes_with_words(std::initializer_list<std::uint64_t> words) {
  WarpAccess w;
  for (std::uint64_t word : words) w.push_back({word * 4, 4, 0, true});
  while (w.size() < 16) w.push_back({0, 4, 0, false});
  return w;
}

// ---- Shared-memory banks ------------------------------------------------------

TEST(BankConflict, SequentialWordsConflictFree) {
  WarpAccess w(16);
  for (int k = 0; k < 16; ++k) w[k] = {static_cast<std::uint64_t>(4 * k), 4, 0, true};
  const auto r = analyze_shared_half_warp(kSpec, w.data(), 16);
  EXPECT_EQ(r.serialization, 1);
  EXPECT_FALSE(r.broadcast);
}

TEST(BankConflict, SameWordBroadcasts) {
  WarpAccess w(16);
  for (int k = 0; k < 16; ++k) w[k] = {128, 4, 0, true};
  const auto r = analyze_shared_half_warp(kSpec, w.data(), 16);
  EXPECT_EQ(r.serialization, 1);
  EXPECT_TRUE(r.broadcast);
}

TEST(BankConflict, StrideTwoGivesTwoWay) {
  // Words 0,2,4,...,30: banks 0,2,...,14 each hit twice with distinct words.
  WarpAccess w(16);
  for (int k = 0; k < 16; ++k) w[k] = {static_cast<std::uint64_t>(8 * k), 4, 0, true};
  EXPECT_EQ(analyze_shared_half_warp(kSpec, w.data(), 16).serialization, 2);
}

TEST(BankConflict, StrideSixteenIsWorstCase) {
  // All 16 lanes in bank 0 with distinct words: 16-way serialization.
  WarpAccess w(16);
  for (int k = 0; k < 16; ++k) w[k] = {static_cast<std::uint64_t>(64 * k), 4, 0, true};
  EXPECT_EQ(analyze_shared_half_warp(kSpec, w.data(), 16).serialization, 16);
}

TEST(BankConflict, OddStrideConflictFree) {
  // Classic fix: any odd word stride is conflict-free across 16 banks.
  for (int stride : {1, 3, 5, 7, 9, 11, 13, 15, 17}) {
    WarpAccess w(16);
    for (int k = 0; k < 16; ++k)
      w[k] = {static_cast<std::uint64_t>(4 * stride * k), 4, 0, true};
    EXPECT_EQ(analyze_shared_half_warp(kSpec, w.data(), 16).serialization, 1)
        << "stride " << stride;
  }
}

TEST(BankConflict, EvenStridesConflict) {
  for (int stride : {2, 4, 8, 16}) {
    WarpAccess w(16);
    for (int k = 0; k < 16; ++k)
      w[k] = {static_cast<std::uint64_t>(4 * stride * k), 4, 0, true};
    EXPECT_GT(analyze_shared_half_warp(kSpec, w.data(), 16).serialization, 1)
        << "stride " << stride;
  }
}

TEST(BankConflict, PartialBroadcastStillConflicts) {
  // 15 lanes on word 0, one lane on word 16 (same bank, different word):
  // two passes.
  auto w = lanes_with_words({0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 16});
  const auto r = analyze_shared_half_warp(kSpec, w.data(), 16);
  EXPECT_EQ(r.serialization, 2);
  EXPECT_FALSE(r.broadcast);
}

TEST(BankConflict, WarpCostSumsHalfWarps) {
  WarpAccess w(32);
  for (int k = 0; k < 16; ++k)
    w[k] = {static_cast<std::uint64_t>(4 * k), 4, 0, true};  // clean
  for (int k = 16; k < 32; ++k)
    w[k] = {static_cast<std::uint64_t>(64 * (k - 16)), 4, 0, true};  // 16-way
  const auto cost = analyze_shared_warp(kSpec, w);
  EXPECT_EQ(cost.passes, 1 + 16);
  EXPECT_EQ(cost.extra_passes, (1 - 1) + (16 - 1));
}

TEST(BankConflict, Float2SpansTwoBanks) {
  // 8-byte accesses at stride 8 touch banks (2k, 2k+1): conflict-free for a
  // half-warp only up to 8 lanes; 16 lanes wrap and collide with distinct
  // words -> 2-way.
  WarpAccess w(16);
  for (int k = 0; k < 16; ++k)
    w[k] = {static_cast<std::uint64_t>(8 * k), 8, 0, true};
  EXPECT_EQ(analyze_shared_half_warp(kSpec, w.data(), 16).serialization, 2);
}

// ---- Constant cache -----------------------------------------------------------

TEST(ConstCache, UniformAddressBroadcasts) {
  WarpAccess w(16);
  for (int k = 0; k < 16; ++k) w[k] = {1024, 4, 0, true};
  const auto r = analyze_const_half_warp(kSpec, w.data(), 16);
  EXPECT_TRUE(r.broadcast);
  EXPECT_EQ(r.serialization, 1);
}

TEST(ConstCache, DistinctAddressesSerialize) {
  WarpAccess w(16);
  for (int k = 0; k < 16; ++k) w[k] = {static_cast<std::uint64_t>(4 * k), 4, 0, true};
  const auto r = analyze_const_half_warp(kSpec, w.data(), 16);
  EXPECT_FALSE(r.broadcast);
  EXPECT_EQ(r.serialization, 16);
}

TEST(ConstCache, PartialDivergenceCostsDistinctCount) {
  auto w = lanes_with_words({0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3});
  EXPECT_EQ(analyze_const_half_warp(kSpec, w.data(), 16).serialization, 4);
}

TEST(ConstCache, WarpExtraPasses) {
  WarpAccess w(32);
  for (int k = 0; k < 32; ++k) w[k] = {static_cast<std::uint64_t>(k < 16 ? 0 : 4 * k), 4, 0, true};
  const auto cost = analyze_const_warp(kSpec, w);
  EXPECT_EQ(cost.passes, 1 + 16);
  EXPECT_EQ(cost.extra_passes, (1 - 1) + (16 - 1));
}

// ---- Texture cache ------------------------------------------------------------

TEST(TextureCache, SpatialLocalityHits) {
  TextureCache cache(kSpec);
  // 32-byte lines: 8 consecutive floats share a line.
  EXPECT_FALSE(cache.access(0));   // cold miss
  for (int i = 1; i < 8; ++i) EXPECT_TRUE(cache.access(4 * i));
  EXPECT_FALSE(cache.access(32));  // next line
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 7.0 / 9.0);
}

TEST(TextureCache, RepeatedSmallTableStaysResident) {
  TextureCache cache(kSpec);
  // A 1 KB table fits in the 8 KB cache: after one pass everything hits.
  for (int i = 0; i < 256; ++i) cache.access(4 * i);
  cache.reset_stats();
  for (int rep = 0; rep < 4; ++rep)
    for (int i = 0; i < 256; ++i) cache.access(4 * i);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 1.0);
}

TEST(TextureCache, StreamLargerThanCacheThrashes) {
  TextureCache cache(kSpec);
  // 64 KB stream through an 8 KB cache, revisited: all misses.
  for (int rep = 0; rep < 2; ++rep)
    for (std::uint64_t a = 0; a < 64 * 1024; a += 32) cache.access(a);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(TextureCache, LruEvictsOldest) {
  TextureCache cache(kSpec, /*ways=*/2);
  const std::uint64_t set_stride = 8 * 1024 / 2;  // maps to the same set
  cache.access(0);
  cache.access(set_stride);
  EXPECT_TRUE(cache.access(0));            // refresh line 0
  cache.access(2 * set_stride);            // evicts set_stride (LRU)
  EXPECT_TRUE(cache.access(0));
  EXPECT_FALSE(cache.access(set_stride));  // was evicted
}

// ---- DRAM model ----------------------------------------------------------------

TEST(Dram, CoalescedBandwidthCycles) {
  const DramModel dram(kSpec);
  DramTraffic t;
  t.bytes = static_cast<std::uint64_t>(kSpec.dram_bandwidth_gbs *
                                       kSpec.dram_efficiency * 1e9);
  // Exactly one second worth of coalesced traffic = one second of cycles.
  EXPECT_NEAR(dram.bandwidth_cycles(t) / (kSpec.core_clock_ghz * 1e9), 1.0,
              1e-9);
}

TEST(Dram, ScatteredTrafficCostsMore) {
  const DramModel dram(kSpec);
  DramTraffic seq{0, 1 << 20, 0};
  DramTraffic rnd{0, 1 << 20, 1 << 20};
  EXPECT_GT(dram.bandwidth_cycles(rnd), 2.0 * dram.bandwidth_cycles(seq));
}

TEST(Dram, DepartureDelayMatchesTransactionSize) {
  const DramModel dram(kSpec);
  const double bpc = dram.effective_bandwidth_gbs() / kSpec.core_clock_ghz;
  EXPECT_NEAR(dram.departure_delay_cycles(), 32.0 / bpc, 1e-12);
}

}  // namespace
}  // namespace g80
