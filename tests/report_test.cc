// Tests for the launch-report renderer.
#include <gtest/gtest.h>

#include "apps/matmul/matmul.h"
#include "core/report.h"
#include "cudalite/device.h"

namespace g80 {
namespace {

using apps::MatmulVariant;
using apps::run_matmul;

struct ReportFixture : public ::testing::Test {
  ReportFixture()
      : da(dev.alloc<float>(n * n)), db(dev.alloc<float>(n * n)),
        dc(dev.alloc<float>(n * n)),
        stats(run_matmul(dev, {MatmulVariant::kTiledUnrolled, 16},
                         static_cast<int>(n), da, db, dc, false)) {}

  Device dev;
  static constexpr std::size_t n = 1024;
  DeviceBuffer<float> da, db, dc;
  LaunchStats stats;
};

TEST_F(ReportFixture, FullReportContainsEverySection) {
  const std::string r = launch_report(dev.spec(), stats);
  for (const char* needle :
       {"launch report", "occupancy:", "instruction mix", "fmad",
        "potential throughput", "global memory:", "coalesced",
        "timing model:", "bottleneck:", "advisor:"}) {
    EXPECT_NE(r.find(needle), std::string::npos) << "missing: " << needle;
  }
  // The matmul numbers should appear: 3 blocks/SM, 768 threads.
  EXPECT_NE(r.find("3 block(s)/SM"), std::string::npos);
  EXPECT_NE(r.find("768/768"), std::string::npos);
}

TEST_F(ReportFixture, SummaryIsOneLine) {
  const std::string s = launch_summary(dev.spec(), stats);
  EXPECT_EQ(s.find('\n'), std::string::npos);
  EXPECT_NE(s.find("GFLOPS"), std::string::npos);
  EXPECT_NE(s.find("thr/SM"), std::string::npos);
}

TEST_F(ReportFixture, ReportReflectsBottleneck) {
  // The naive kernel's report must carry the bandwidth diagnosis.
  const auto naive = run_matmul(dev, {MatmulVariant::kNaive, 16},
                                static_cast<int>(n), da, db, dc, false);
  const std::string r = launch_report(dev.spec(), naive);
  EXPECT_NE(r.find("global memory bandwidth"), std::string::npos);
}

TEST(ReportEdge, ZeroLaunchProfilerSessionIsCleanAndStamped) {
  // A session with no launches must render without NaN/inf artifacts, and
  // the JSON form still carries the provenance header.
  Device dev;
  prof::Profiler profiler;
  const std::string rep = profile_report(dev.spec(), profiler);
  EXPECT_NE(rep.find("0 launch(es)"), std::string::npos);
  EXPECT_EQ(rep.find("nan"), std::string::npos);
  EXPECT_EQ(rep.find("inf"), std::string::npos);

  const std::string js = profile_json(dev.spec(), profiler);
  EXPECT_NE(js.find("\"provenance\""), std::string::npos);
  EXPECT_NE(js.find("\"schema\":\"g80prof-profile\""), std::string::npos);
  EXPECT_NE(js.find("\"device_spec_hash\":\"0x"), std::string::npos);
  EXPECT_NE(js.find("\"kernels\":[]"), std::string::npos);
  // Value-position token, not bare "nan" ("provenance" contains it).
  EXPECT_EQ(js.find(":nan"), std::string::npos);
}

TEST(ReportEdge, EmptyTraceLaunchReportDoesNotDivideByZero) {
  // A default LaunchStats has zero traced warps; the report must degrade
  // gracefully instead of tripping the per-warp-mean divide guards.
  Device dev;
  const LaunchStats empty{};
  const std::string r = launch_report(dev.spec(), empty);
  EXPECT_NE(r.find("no warps traced"), std::string::npos);
  EXPECT_EQ(r.find("nan"), std::string::npos);
}

TEST(ReportEdge, ScopeReportAppearsInHeaderDocs) {
  // scope_report over an empty session stays total-free but well formed.
  Device dev;
  scope::Session session;
  const std::string r = scope_report(dev.spec(), session);
  EXPECT_NE(r.find("g80scope session: 0 launch(es)"), std::string::npos);
}

}  // namespace
}  // namespace g80
