// Suite-level integration test: every application of the Table 2/3 study
// runs at quick scale, validates its GPU port against the CPU reference
// (run() throws on divergence), and reports sane metrics.
#include <gtest/gtest.h>

#include "apps/suite.h"
#include "hw/device_spec.h"

namespace g80 {
namespace {

const DeviceSpec kSpec = DeviceSpec::geforce_8800_gtx();

class SuiteApp : public ::testing::TestWithParam<int> {};

TEST_P(SuiteApp, RunsAndValidates) {
  const auto suite = apps::make_suite();
  ASSERT_LT(static_cast<std::size_t>(GetParam()), suite.size());
  const auto& app = suite[static_cast<std::size_t>(GetParam())];
  const auto r = app->run(kSpec, RunScale::kQuick);

  EXPECT_TRUE(r.validated) << r.info.name;
  EXPECT_GT(r.cpu_kernel_seconds, 0.0) << r.info.name;
  EXPECT_GT(r.gpu_kernel_seconds, 0.0) << r.info.name;
  EXPECT_GE(r.transfer_seconds, 0.0) << r.info.name;
  EXPECT_GE(r.launches, 1) << r.info.name;
  EXPECT_GT(r.kernel_pct(), 0.0) << r.info.name;
  EXPECT_LE(r.kernel_pct(), 100.0 + 1e-9) << r.info.name;
  EXPECT_GE(r.amdahl_ceiling(), 1.0) << r.info.name;
  // GPU exec % + transfer % <= 100 (remainder is serial CPU work).
  EXPECT_LE(r.gpu_exec_pct() + r.transfer_pct(), 100.0 + 1e-9) << r.info.name;

  // Representative launch carries real occupancy data.
  const auto& rep = r.representative;
  EXPECT_GE(rep.occupancy.blocks_per_sm, 1) << r.info.name;
  EXPECT_LE(rep.occupancy.active_threads_per_sm, kSpec.max_threads_per_sm)
      << r.info.name;
  EXPECT_GT(rep.trace.num_warps, 0u) << r.info.name;
}

INSTANTIATE_TEST_SUITE_P(AllThirteen, SuiteApp,
                         ::testing::Range(0, 13));

TEST(Suite, HasThirteenApplications) {
  EXPECT_EQ(apps::make_suite().size(), 13u);
}

TEST(Suite, NamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (const auto& app : apps::make_suite()) {
    const auto info = app->info();
    EXPECT_FALSE(info.name.empty());
    EXPECT_TRUE(names.insert(info.name).second) << info.name << " duplicated";
  }
}

TEST(Suite, DeterministicAcrossRuns) {
  // Workloads are seeded: two runs of the same app must produce identical
  // simulated-GPU timing (host-measured CPU seconds will differ).
  const auto suite = apps::make_suite();
  const auto a = suite[0]->run(kSpec, RunScale::kQuick);
  const auto b = suite[0]->run(kSpec, RunScale::kQuick);
  EXPECT_DOUBLE_EQ(a.representative.timing.seconds,
                   b.representative.timing.seconds);
  EXPECT_EQ(a.representative.trace.total.ops.total(),
            b.representative.trace.total.ops.total());
}

}  // namespace
}  // namespace g80
