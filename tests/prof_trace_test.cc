// g80prof Chrome-trace exporter and g80rt runtime-profiling integration:
// the emitted JSON must carry the track metadata and slices chrome://tracing
// needs, and a profiled runtime session must record every launch and
// transfer on every stream without changing functional results.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cudalite/ctx.h"
#include "cudalite/device.h"
#include "prof/chrome_trace.h"
#include "prof/profiler.h"
#include "rt/runtime.h"

namespace g80 {
namespace {

int count_occurrences(const std::string& hay, const std::string& needle) {
  int n = 0;
  for (std::size_t at = hay.find(needle); at != std::string::npos;
       at = hay.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

struct ScaleKernel {
  // Out-of-place: sampled blocks execute in both the trace and functional
  // passes, so kernels must be idempotent at block granularity.
  float factor = 1.0f;
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& in,
                  DeviceBuffer<float>& out) const {
    auto In = ctx.global(in);
    auto Out = ctx.global(out);
    const int i = ctx.global_thread_x();
    Out.st(i, ctx.mul(In.ld(i), factor));
  }
};

// ---- Exporter over a hand-built timeline ------------------------------------------

TEST(ChromeTrace, EmptyTimelineIsStillAValidDocument) {
  const Timeline tl;
  const std::string json = prof::chrome_trace_json(tl);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // Track metadata is emitted even with no spans, so an empty session still
  // loads with named tracks.
  EXPECT_NE(json.find("process_name"), std::string::npos);
}

TEST(ChromeTrace, SpansBecomeCompleteEventsOnEngineTracks) {
  Timeline tl;
  tl.schedule(1, TimelineEngine::kCopy, 2e-3, "h2d 1024 B");
  tl.schedule(1, TimelineEngine::kCompute, 5e-3, "kernel 64 blocks");
  tl.schedule(2, TimelineEngine::kCopy, 1e-3, "d2h 512 B");
  const std::string json = prof::chrome_trace_json(tl);

  // One complete ("ph":"X") event per span.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 3);
  EXPECT_NE(json.find("\"compute engine\""), std::string::npos);
  EXPECT_NE(json.find("\"copy engine (DMA)\""), std::string::npos);
  EXPECT_NE(json.find("kernel 64 blocks"), std::string::npos);
  // Durations are microseconds in trace-event format: 5 ms -> 5000 us.
  EXPECT_NE(json.find("\"dur\":5000"), std::string::npos);
  // The issuing stream is preserved on each slice.
  EXPECT_NE(json.find("\"stream\":1"), std::string::npos);
  EXPECT_NE(json.find("\"stream\":2"), std::string::npos);
}

TEST(ChromeTrace, BlockSpansNestInsideTheKernelSlice) {
  Timeline tl;
  std::vector<TimelineBlockSpan> waves;
  waves.push_back({0, 48, 0.0, 1e-3});
  waves.push_back({48, 96, 1e-3, 2e-3});
  tl.schedule(1, TimelineEngine::kCompute, 2e-3, "kernel 96 blocks",
              std::move(waves));
  const std::string json = prof::chrome_trace_json(tl);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 3);  // kernel + 2 waves
  EXPECT_NE(json.find("blocks [0,48)"), std::string::npos);
  EXPECT_NE(json.find("blocks [48,96)"), std::string::npos);

  // And they can be suppressed.
  prof::ChromeTraceOptions opt;
  opt.block_spans = false;
  const std::string flat = prof::chrome_trace_json(tl, opt);
  EXPECT_EQ(count_occurrences(flat, "\"ph\":\"X\""), 1);
  EXPECT_EQ(flat.find("blocks [0,48)"), std::string::npos);
}

TEST(ChromeTrace, LabelsAreJsonEscaped) {
  Timeline tl;
  tl.schedule(1, TimelineEngine::kCompute, 1e-3, "kernel \"quoted\"\n");
  const std::string json = prof::chrome_trace_json(tl);
  EXPECT_NE(json.find("kernel \\\"quoted\\\"\\n"), std::string::npos);
}

// ---- Runtime integration ----------------------------------------------------------

TEST(RuntimeProfiling, RecordsLaunchesAndTransfersAcrossStreams) {
  Device dev;
  prof::Profiler p;
  rt::RuntimeOptions ropt;
  ropt.profiler = &p;
  rt::Runtime r(dev, ropt);
  ASSERT_EQ(r.profiler(), &p);

  const int n = 1 << 12;
  std::vector<float> h0(n, 1.0f), h1(n, 2.0f);
  auto d0 = dev.alloc<float>(n);
  auto d1 = dev.alloc<float>(n);
  auto o0 = dev.alloc<float>(n);
  auto o1 = dev.alloc<float>(n);

  rt::Stream s0 = r.stream_create();
  rt::Stream s1 = r.stream_create();
  LaunchOptions opt;
  opt.uses_sync = false;
  opt.prof.kernel_name = "scale2";
  r.memcpy_h2d_async(s0, d0, h0);
  r.launch_async(s0, Dim3(n / 256), Dim3(256), opt, nullptr,
                 ScaleKernel{2.0f}, d0, o0);
  opt.prof.kernel_name = "scale3";
  r.memcpy_h2d_async(s1, d1, h1);
  r.launch_async(s1, Dim3(n / 256), Dim3(256), opt, nullptr,
                 ScaleKernel{3.0f}, d1, o1);
  std::vector<float> out0, out1;
  r.memcpy_d2h_async(s0, out0, o0);
  r.memcpy_d2h_async(s1, out1, o1);
  r.device_synchronize();

  // Functional results are unchanged by profiling.
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(out0[static_cast<std::size_t>(i)], 2.0f);
    ASSERT_EQ(out1[static_cast<std::size_t>(i)], 6.0f);
  }

  // Both launches were recorded under their own names.  The two streams run
  // concurrently, so the profiler may see them in either completion order.
  EXPECT_EQ(p.total_launches(), 2u);
  auto ks = p.kernels();
  ASSERT_EQ(ks.size(), 2u);
  std::sort(ks.begin(), ks.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  EXPECT_EQ(ks[0].name, "scale2");
  EXPECT_EQ(ks[1].name, "scale3");
  EXPECT_EQ(ks[0].counters.blocks_total, static_cast<std::uint64_t>(n / 256));

  // All four copies landed in the transfer totals.
  const auto tx = p.transfers();
  EXPECT_EQ(tx.h2d_count, 2u);
  EXPECT_EQ(tx.d2h_count, 2u);
  EXPECT_EQ(tx.h2d_bytes, 2u * n * sizeof(float));
  EXPECT_EQ(tx.d2h_bytes, 2u * n * sizeof(float));
  EXPECT_GT(tx.modeled_seconds, 0.0);

  r.stream_destroy(s0);
  r.stream_destroy(s1);
}

TEST(RuntimeProfiling, ProfiledTimelineExportsWithDistinctTracks) {
  Device dev;
  prof::Profiler p;
  rt::RuntimeOptions ropt;
  ropt.profiler = &p;
  rt::Runtime r(dev, ropt);

  // 64 blocks at 3 blocks/SM x 16 SMs = 48 concurrent -> 2 waves, so the
  // kernel slice carries nested block spans.
  const int n = 64 * 256;
  std::vector<float> h(n, 1.0f);
  auto d = dev.alloc<float>(n);
  auto o = dev.alloc<float>(n);
  rt::Stream s = r.stream_create();
  LaunchOptions opt;
  opt.uses_sync = false;
  opt.prof.kernel_name = "scale2";
  r.memcpy_h2d_async(s, d, h);
  r.launch_async(s, Dim3(64), Dim3(256), opt, nullptr, ScaleKernel{2.0f}, d,
                 o);
  r.device_synchronize();

  const std::string json = prof::chrome_trace_json(r.timeline_snapshot());
  EXPECT_NE(json.find("\"compute engine\""), std::string::npos);
  EXPECT_NE(json.find("\"copy engine (DMA)\""), std::string::npos);
  EXPECT_NE(json.find("scale2"), std::string::npos);
  EXPECT_NE(json.find("blocks [0,"), std::string::npos);
  r.stream_destroy(s);
}

TEST(RuntimeProfiling, NoProfilerMeansNoBlockSpans) {
  Device dev;
  rt::Runtime r(dev);
  ASSERT_EQ(r.profiler(), nullptr);
  const int n = 64 * 256;
  auto d = dev.alloc<float>(n);
  auto o = dev.alloc<float>(n);
  rt::Stream s = r.stream_create();
  LaunchOptions opt;
  opt.uses_sync = false;
  r.launch_async(s, Dim3(64), Dim3(256), opt, nullptr, ScaleKernel{2.0f}, d,
                 o);
  r.device_synchronize();
  const std::string json = prof::chrome_trace_json(r.timeline_snapshot());
  EXPECT_EQ(json.find("blocks [0,"), std::string::npos);
  r.stream_destroy(s);
}

}  // namespace
}  // namespace g80
