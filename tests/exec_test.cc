// Tests for the fiber engine and block runner: CUDA barrier semantics,
// shared-memory arena layout, divergent-barrier detection, exception
// propagation, and the fiber-less direct mode.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/error.h"
#include "exec/block_runner.h"
#include "exec/fiber.h"

namespace g80 {
namespace {

// ---- Fiber ------------------------------------------------------------------

TEST(Fiber, RunsToCompletion) {
  Fiber f;
  int x = 0;
  f.start([&] { x = 42; });
  EXPECT_EQ(f.resume(), Fiber::State::kDone);
  EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldSuspendsAndResumes) {
  Fiber f;
  std::vector<int> log;
  f.start([&] {
    log.push_back(1);
    f.yield();
    log.push_back(2);
    f.yield();
    log.push_back(3);
  });
  EXPECT_EQ(f.resume(), Fiber::State::kSuspended);
  log.push_back(10);
  EXPECT_EQ(f.resume(), Fiber::State::kSuspended);
  log.push_back(20);
  EXPECT_EQ(f.resume(), Fiber::State::kDone);
  EXPECT_EQ(log, (std::vector<int>{1, 10, 2, 20, 3}));
}

TEST(Fiber, ExceptionPropagatesToScheduler) {
  Fiber f;
  f.start([] { throw Error("boom"); });
  EXPECT_THROW(f.resume(), Error);
  EXPECT_EQ(f.state(), Fiber::State::kDone);
}

TEST(Fiber, ReusableAfterCompletion) {
  Fiber f;
  int sum = 0;
  for (int i = 0; i < 5; ++i) {
    f.start([&, i] { sum += i; });
    f.resume();
  }
  EXPECT_EQ(sum, 10);
}

TEST(Fiber, DeepStackSurvives) {
  Fiber f(256 * 1024);
  double result = 0;
  f.start([&] {
    // ~2000 frames of recursion on the fiber stack.
    struct Rec {
      static double go(int n) { return n == 0 ? 1.0 : 1.0 + go(n - 1); }
    };
    result = Rec::go(2000);
  });
  f.resume();
  EXPECT_EQ(result, 2001.0);
}

// ---- SharedArena ------------------------------------------------------------

TEST(SharedArena, SameLayoutForAllThreads) {
  SharedArena arena(1024);
  arena.begin_block();
  arena.begin_thread(0);
  arena.begin_thread(1);
  std::byte* a0 = arena.allocate(0, 64);
  std::byte* b0 = arena.allocate(0, 32);
  std::byte* a1 = arena.allocate(1, 64);
  std::byte* b1 = arena.allocate(1, 32);
  EXPECT_EQ(a0, a1);
  EXPECT_EQ(b0, b1);
  EXPECT_NE(a0, b0);
  EXPECT_GE(arena.bytes_used(), 96u);
}

TEST(SharedArena, MismatchedLayoutThrows) {
  SharedArena arena(1024);
  arena.begin_block();
  arena.begin_thread(0);
  arena.begin_thread(1);
  arena.allocate(0, 64);
  EXPECT_THROW(arena.allocate(1, 128), Error);
}

TEST(SharedArena, OverflowThrows) {
  SharedArena arena(128);
  arena.begin_block();
  arena.begin_thread(0);
  arena.allocate(0, 64);
  EXPECT_THROW(arena.allocate(0, 128), Error);
}

TEST(SharedArena, ResetsBetweenBlocks) {
  SharedArena arena(256);
  for (int block = 0; block < 3; ++block) {
    arena.begin_block();
    arena.begin_thread(0);
    EXPECT_NO_THROW(arena.allocate(0, 200));
  }
}

TEST(SharedArena, SixteenByteAlignment) {
  SharedArena arena(1024);
  arena.begin_block();
  arena.begin_thread(0);
  arena.allocate(0, 3);  // odd size
  std::byte* second = arena.allocate(0, 16);
  EXPECT_EQ((second - arena.data()) % 16, 0);
}

// ---- BlockRunner barriers ----------------------------------------------------

TEST(BlockRunner, AllThreadsRun) {
  BlockRunner runner(64, 16 * 1024);
  std::vector<int> hits(64, 0);
  runner.run(64, [&](int tid) { ++hits[tid]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(BlockRunner, BarrierOrdersPhases) {
  // Classic producer/consumer: every thread writes its slot, syncs, then
  // reads its neighbour's slot.  Without a real barrier, thread 0 would read
  // thread 63's not-yet-written slot.
  BlockRunner runner(64, 16 * 1024);
  std::vector<int> slot(64, -1), seen(64, -1);
  runner.run(64, [&](int tid) {
    slot[tid] = tid * 10;
    runner.sync(tid);
    seen[tid] = slot[(tid + 1) % 64];
  });
  for (int t = 0; t < 64; ++t) EXPECT_EQ(seen[t], ((t + 1) % 64) * 10);
}

TEST(BlockRunner, ManyBarriersInLoop) {
  BlockRunner runner(32, 16 * 1024);
  std::vector<int> counter(1, 0);
  runner.run(32, [&](int tid) {
    for (int i = 0; i < 10; ++i) {
      if (tid == 0) ++counter[0];
      runner.sync(tid);
      // Every thread observes the same phase count after the barrier.
      EXPECT_EQ(counter[0], i + 1);
      runner.sync(tid);
    }
  });
  EXPECT_EQ(runner.barriers_executed(), 20);
}

TEST(BlockRunner, BarrierReleasesForLiveThreadsOnly) {
  // Half the threads exit before the barrier: the survivors' barrier still
  // releases (hardware counts only active threads) and they complete.
  BlockRunner runner(8, 16 * 1024);
  std::vector<int> after(8, 0);
  EXPECT_NO_THROW(runner.run(8, [&](int tid) {
    if (tid >= 4) return;  // early exit
    runner.sync(tid);
    after[tid] = 1;
  }));
  for (int t = 0; t < 4; ++t) EXPECT_EQ(after[t], 1);
  for (int t = 4; t < 8; ++t) EXPECT_EQ(after[t], 0);
}

TEST(BlockRunner, AllExitWithoutBarrierIsFine) {
  BlockRunner runner(8, 16 * 1024);
  EXPECT_NO_THROW(runner.run(8, [](int) {}));
}

TEST(BlockRunner, KernelExceptionPropagates) {
  BlockRunner runner(8, 16 * 1024);
  EXPECT_THROW(
      runner.run(8, [&](int tid) { if (tid == 3) throw Error("thread 3"); }),
      Error);
  // The runner must be reusable after an aborted launch.
  std::vector<int> hits(8, 0);
  EXPECT_NO_THROW(runner.run(8, [&](int tid) { ++hits[tid]; }));
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 8);
}

TEST(BlockRunner, ThreadsRunInOrderBetweenBarriers) {
  // With barrier-only yields, threads run to the barrier in tid order —
  // the determinism the functional model documents.
  BlockRunner runner(16, 16 * 1024);
  std::vector<int> order;
  runner.run(16, [&](int tid) {
    order.push_back(tid);
    runner.sync(tid);
    order.push_back(100 + tid);
  });
  for (int t = 0; t < 16; ++t) {
    EXPECT_EQ(order[t], t);
    EXPECT_EQ(order[16 + t], 100 + t);
  }
}

// ---- Direct mode --------------------------------------------------------------

TEST(BlockRunner, DirectModeRunsAllThreads) {
  BlockRunner runner(1, 16 * 1024);
  std::vector<int> hits(256, 0);
  runner.run_direct(256, [&](int tid) { ++hits[tid]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 256);
}

TEST(BlockRunner, DirectModeSyncThrows) {
  BlockRunner runner(1, 16 * 1024);
  EXPECT_THROW(runner.run_direct(4, [&](int tid) { runner.sync(tid); }), Error);
}

TEST(BlockRunner, DirectModeSharedMemoryWorks) {
  BlockRunner runner(1, 16 * 1024);
  runner.run_direct(8, [&](int tid) {
    auto* p = reinterpret_cast<int*>(runner.shared().allocate(tid, 8 * 4));
    p[tid] = tid;
  });
  EXPECT_GE(runner.shared().bytes_used(), 32u);
}

}  // namespace
}  // namespace g80
