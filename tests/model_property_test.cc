// Property tests for the timing model: directional invariants that must
// hold for ANY kernel trace under device-parameter perturbations — the
// sanity constraints a performance model has to satisfy before its absolute
// numbers mean anything.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "occupancy/occupancy.h"
#include "timing/model.h"
#include "timing/trace.h"

namespace g80 {
namespace {

const DeviceSpec kGtx = DeviceSpec::geforce_8800_gtx();

// Random-but-plausible warp trace.
WarpTrace random_warp(SplitMix64& rng) {
  WarpTrace w;
  w.ops[OpClass::kFMad] = 10 + rng.next_below(2000);
  w.ops[OpClass::kIAlu] = rng.next_below(1000);
  w.ops[OpClass::kSfu] = rng.next_below(200);
  w.ops[OpClass::kBranch] = rng.next_below(300);
  const std::uint64_t loads = rng.next_below(300);
  w.ops[OpClass::kLoadGlobal] = loads;
  w.global_instructions = loads;
  const bool coalesced = rng.next_below(2) == 0;
  w.global.transactions = loads * (coalesced ? 2 : 32);
  w.global.bytes = loads * (coalesced ? 128 : 512);
  w.global.scattered_bytes = coalesced ? 0 : w.global.bytes;
  w.useful_global_bytes = loads * 128;
  w.coalesced_instructions = coalesced ? loads : 0;
  w.lane_flops =
      static_cast<double>(w.ops[OpClass::kFMad]) * 64.0 +
      static_cast<double>(w.ops[OpClass::kSfu]) * 32.0;
  return w;
}

TraceSummary summary_of(const WarpTrace& w, int warps_per_block, int blocks) {
  std::vector<BlockTrace> bt(blocks);
  for (auto& b : bt) b.warps.assign(warps_per_block, w);
  return TraceSummary::summarize(bt);
}

class ModelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelProperty, TimePositiveAndFiniteForRandomTraces) {
  SplitMix64 rng(GetParam());
  const auto occ = compute_occupancy(kGtx, {10, 1024, 256});
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = summary_of(random_warp(rng), 8, 3);
    const auto t = simulate_kernel(kGtx, occ, 480, s);
    ASSERT_TRUE(std::isfinite(t.seconds));
    ASSERT_GT(t.seconds, 0.0);
    ASSERT_GE(t.gflops, 0.0);
    ASSERT_GE(t.mwp, 1.0);
    ASSERT_LE(t.mwp, occ.active_warps_per_sm + 1e-9);
    ASSERT_GE(t.sync_stall_cycles, 0.0);
  }
}

TEST_P(ModelProperty, MoreWorkNeverRunsFaster) {
  SplitMix64 rng(GetParam());
  const auto occ = compute_occupancy(kGtx, {10, 1024, 256});
  for (int trial = 0; trial < 30; ++trial) {
    WarpTrace base = random_warp(rng);
    WarpTrace more = base;
    more.ops[OpClass::kFMad] += 500;  // strictly more compute
    const auto tb = simulate_kernel(kGtx, occ, 480, summary_of(base, 8, 3));
    const auto tm = simulate_kernel(kGtx, occ, 480, summary_of(more, 8, 3));
    ASSERT_GE(tm.seconds, tb.seconds - 1e-15);
  }
}

TEST_P(ModelProperty, HigherClockNeverSlower) {
  SplitMix64 rng(GetParam());
  DeviceSpec fast = kGtx;
  fast.core_clock_ghz = 1.8;
  // Scale bandwidth so memory-per-cycle stays comparable (pure clock test
  // would otherwise starve memory-bound traces — also a valid outcome, but
  // then the inequality direction is trace-dependent).
  fast.dram_bandwidth_gbs = kGtx.dram_bandwidth_gbs * 1.8 / 1.35;
  const auto occ = compute_occupancy(kGtx, {10, 1024, 256});
  for (int trial = 0; trial < 30; ++trial) {
    const auto s = summary_of(random_warp(rng), 8, 3);
    const auto slow_t = simulate_kernel(kGtx, occ, 480, s);
    const auto fast_t = simulate_kernel(fast, occ, 480, s);
    ASSERT_LE(fast_t.seconds, slow_t.seconds * 1.001);
  }
}

TEST_P(ModelProperty, MoreBandwidthNeverSlower) {
  SplitMix64 rng(GetParam());
  DeviceSpec wide = kGtx;
  wide.dram_bandwidth_gbs *= 2.0;
  wide.dram_transactions_per_cycle *= 2.0;
  const auto occ = compute_occupancy(kGtx, {10, 1024, 256});
  for (int trial = 0; trial < 30; ++trial) {
    const auto s = summary_of(random_warp(rng), 8, 3);
    ASSERT_LE(simulate_kernel(wide, occ, 480, s).seconds,
              simulate_kernel(kGtx, occ, 480, s).seconds * 1.001);
  }
}

TEST_P(ModelProperty, LowerLatencyNeverSlower) {
  SplitMix64 rng(GetParam());
  DeviceSpec snappy = kGtx;
  snappy.global_latency_cycles = 100.0;
  const auto occ = compute_occupancy(kGtx, {10, 1024, 256});
  for (int trial = 0; trial < 30; ++trial) {
    const auto s = summary_of(random_warp(rng), 8, 3);
    ASSERT_LE(simulate_kernel(snappy, occ, 480, s).seconds,
              simulate_kernel(kGtx, occ, 480, s).seconds * 1.001);
  }
}

TEST_P(ModelProperty, GridScalingIsMonotone) {
  SplitMix64 rng(GetParam());
  const auto occ = compute_occupancy(kGtx, {10, 1024, 256});
  for (int trial = 0; trial < 20; ++trial) {
    const auto s = summary_of(random_warp(rng), 8, 3);
    double prev = 0.0;
    for (std::uint64_t blocks : {48ull, 96ull, 480ull, 4800ull}) {
      const double secs = simulate_kernel(kGtx, occ, blocks, s).seconds;
      ASSERT_GE(secs, prev - 1e-15);
      prev = secs;
    }
  }
}

TEST_P(ModelProperty, AchievedNeverExceedsHardwareCeilings) {
  SplitMix64 rng(GetParam());
  const auto occ = compute_occupancy(kGtx, {10, 1024, 256});
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = summary_of(random_warp(rng), 8, 3);
    const auto t = simulate_kernel(kGtx, occ, 480, s);
    // SFU flops can add to the MAD peak, never beyond the combined peak.
    ASSERT_LE(t.gflops, kGtx.peak_gflops_with_sfu() + 1e-6);
    ASSERT_LE(t.dram_gbs, kGtx.dram_bandwidth_gbs + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelProperty,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace g80
