// ResultCache semantics: LRU bounds, hit/miss/eviction counters, the
// on-disk tier (atomic writes, cross-instance reload, promotion into
// memory), and payload fidelity — the cache must return the exact bytes it
// was given, because g80serve splices them verbatim into responses.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "serve/cache.h"

namespace g80::serve {
namespace {

std::string temp_dir() {
  char tmpl[] = "/tmp/g80cacheXXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

TEST(ResultCache, MissThenHit) {
  ResultCache cache(4);
  std::string payload;
  EXPECT_EQ(cache.lookup(1, payload), ResultCache::Tier::kMiss);
  cache.store(1, "{\"x\":1}");
  EXPECT_EQ(cache.lookup(1, payload), ResultCache::Tier::kMemory);
  EXPECT_EQ(payload, "{\"x\":1}");
  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.mem_hits, 1u);
  EXPECT_EQ(c.stores, 1u);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.lookups(), 2u);
}

TEST(ResultCache, LruEvictionOrder) {
  ResultCache cache(2);
  cache.store(1, "one");
  cache.store(2, "two");
  std::string payload;
  // Touch 1 so 2 becomes the LRU entry.
  EXPECT_EQ(cache.lookup(1, payload), ResultCache::Tier::kMemory);
  cache.store(3, "three");
  EXPECT_EQ(cache.mem_entries(), 2u);
  EXPECT_EQ(cache.lookup(2, payload), ResultCache::Tier::kMiss);
  EXPECT_EQ(cache.lookup(1, payload), ResultCache::Tier::kMemory);
  EXPECT_EQ(cache.lookup(3, payload), ResultCache::Tier::kMemory);
  EXPECT_EQ(cache.counters().evictions, 1u);
}

TEST(ResultCache, StoreIsIdempotent) {
  ResultCache cache(4);
  cache.store(7, "payload");
  cache.store(7, "payload");
  EXPECT_EQ(cache.mem_entries(), 1u);
  EXPECT_EQ(cache.counters().stores, 2u);
  EXPECT_EQ(cache.counters().evictions, 0u);
}

TEST(ResultCache, DiskTierSurvivesInstanceAndEviction) {
  const std::string dir = temp_dir();
  std::string payload;
  {
    ResultCache cache(1, dir);
    cache.store(10, "ten");
    cache.store(11, "eleven");  // evicts 10 from memory, not from disk
    EXPECT_EQ(cache.lookup(10, payload), ResultCache::Tier::kDisk);
    EXPECT_EQ(payload, "ten");
    // The disk hit promoted 10; 11 was evicted in turn.
    EXPECT_EQ(cache.lookup(10, payload), ResultCache::Tier::kMemory);
  }
  // A fresh instance — a daemon restart — reloads from disk.
  ResultCache warm(4, dir);
  EXPECT_EQ(warm.lookup(11, payload), ResultCache::Tier::kDisk);
  EXPECT_EQ(payload, "eleven");
  EXPECT_EQ(warm.counters().disk_hits, 1u);

  // Unknown keys miss both tiers.
  EXPECT_EQ(warm.lookup(999, payload), ResultCache::Tier::kMiss);
}

TEST(ResultCache, DiskFailureDegradesToMemoryAndRetriesOnRestore) {
  const std::string parent = temp_dir();
  // mkdir of the cache dir fails (ENOENT) until its parent exists.
  const std::string dir = parent + "/sub/cache";
  ResultCache cache(4, dir);
  cache.store(5, "five");  // must not throw: store runs on worker callbacks
  std::string payload;
  EXPECT_EQ(cache.lookup(5, payload), ResultCache::Tier::kMemory);
  EXPECT_EQ(payload, "five");
  EXPECT_EQ(cache.counters().disk_errors, 1u);

  // Once the disk tier becomes writable, re-storing an already-cached key
  // completes the missed disk write instead of short-circuiting on the
  // memory hit — the survives-restarts property heals itself.
  ASSERT_EQ(::mkdir((parent + "/sub").c_str(), 0755), 0);
  cache.store(5, "five");
  EXPECT_EQ(cache.counters().disk_errors, 1u);
  ResultCache warm(4, dir);
  EXPECT_EQ(warm.lookup(5, payload), ResultCache::Tier::kDisk);
  EXPECT_EQ(payload, "five");
}

TEST(ResultCache, PayloadBytesPreservedExactly) {
  const std::string dir = temp_dir();
  // Payloads with every byte class the JSON writer can emit.
  const std::string payload =
      "{\"s\":\"\\u0001\\\"quoted\\\"\",\"n\":0.0131194973402,\"b\":true}";
  {
    ResultCache cache(1, dir);
    cache.store(42, payload);
  }
  ResultCache warm(1, dir);
  std::string got;
  ASSERT_EQ(warm.lookup(42, got), ResultCache::Tier::kDisk);
  EXPECT_EQ(got, payload);
}

}  // namespace
}  // namespace g80::serve
