// Regression tests for warp-level instruction reconstruction: per-lane
// traces are regrouped by static call site + occurrence, which must stay
// correct when divergent lanes execute different numbers of accesses (the
// LBM halo-load pattern that motivated the design).
#include <gtest/gtest.h>

#include "cudalite/ctx.h"
#include "cudalite/device.h"
#include "cudalite/launch.h"
#include "cudalite/trace_collect.h"

namespace g80 {
namespace {

// Lane 0 performs two extra loads before the common stream.  With naive
// sequence-index grouping, every subsequent common load of lane 0 would be
// misaligned against lanes 1..31 and read as scattered; site-keyed grouping
// keeps the common loads fully coalesced.
struct HaloThenStreamKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& data,
                  DeviceBuffer<float>& out) const {
    auto D = ctx.global(data);
    auto O = ctx.global(out);
    const int i = ctx.global_thread_x();
    float halo = 0.0f;
    if (ctx.branch(ctx.thread_idx().x == 0)) {
      halo = D.ld(0);          // extra site A
      halo += D.ld(1);         // extra site B
    }
    float acc = halo;
    for (int r = 0; r < 4; ++r) {
      acc = ctx.add(acc, D.ld(static_cast<std::size_t>(i) +
                              static_cast<std::size_t>(r) * 32));  // common site
    }
    O.st(i, acc);
  }
};

TEST(TraceGrouping, DivergentExtraAccessesDoNotMisalignStream) {
  Device dev;
  auto d = dev.alloc<float>(1024);
  auto o = dev.alloc<float>(32);
  LaunchOptions opt;
  opt.uses_sync = false;
  opt.sample_blocks = 1;
  const auto s = launch(dev, Dim3(1), Dim3(32), opt, HaloThenStreamKernel{}, d, o);

  // Warp instructions: 2 single-lane halo loads + 4 common loads (fully
  // coalesced) + 1 store.  The halo at element 0 sits on a 16-word boundary
  // and therefore still satisfies the strict rule (inactive lanes leave
  // holes); the halo at element 1 is misaligned and serializes.
  EXPECT_EQ(s.trace.total.global_instructions, 7u);
  EXPECT_EQ(s.trace.total.coalesced_instructions, 6u);
  // Common loads 4 x 128 B; aligned halo one 64 B line; misaligned halo one
  // scattered 32 B transaction; store 128 B.
  EXPECT_EQ(s.trace.total.global.bytes, 4u * 128 + 64 + 32 + 128);
  EXPECT_EQ(s.trace.total.global.scattered_bytes, 32u);
}

// The same site executed in a loop must produce one warp instruction per
// iteration (occurrence-keyed), not one giant merged access.
struct LoopedLoadKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& data,
                  DeviceBuffer<float>& out) const {
    auto D = ctx.global(data);
    auto O = ctx.global(out);
    const int i = ctx.global_thread_x();
    float acc = 0.0f;
    for (int r = 0; r < 5; ++r)
      acc = ctx.add(acc, D.ld(static_cast<std::size_t>(r) * 32 + i));
    O.st(i, acc);
  }
};

TEST(TraceGrouping, LoopIterationsAreSeparateInstructions) {
  Device dev;
  auto d = dev.alloc<float>(1024);
  auto o = dev.alloc<float>(32);
  LaunchOptions opt;
  opt.uses_sync = false;
  opt.sample_blocks = 1;
  const auto s = launch(dev, Dim3(1), Dim3(32), opt, LoopedLoadKernel{}, d, o);
  EXPECT_EQ(s.trace.total.global_instructions, 6u);  // 5 loads + 1 store
  EXPECT_DOUBLE_EQ(s.trace.coalesced_fraction(), 1.0);
}

// Different lanes taking different branch arms access different sites; each
// arm's store is its own (partially populated) warp instruction.
struct TwoArmKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& out) const {
    auto O = ctx.global(out);
    const int i = ctx.global_thread_x();
    if (ctx.branch(i % 2 == 0)) {
      O.st(i, 1.0f);  // site A: even lanes
    } else {
      O.st(i, 2.0f);  // site B: odd lanes
    }
  }
};

TEST(TraceGrouping, BranchArmsAreSeparateInstructions) {
  Device dev;
  auto o = dev.alloc<float>(32);
  LaunchOptions opt;
  opt.uses_sync = false;
  opt.sample_blocks = 1;
  const auto s = launch(dev, Dim3(1), Dim3(32), opt, TwoArmKernel{}, o);
  // Two warp-level stores, each with every other lane active.  Each active
  // lane still hits its own word of an aligned line, so the G80 rule holds
  // (inactive lanes merely leave holes) — divergence costs issue slots, not
  // coalescing, in this pattern.
  EXPECT_EQ(s.trace.total.global_instructions, 2u);
  EXPECT_EQ(s.trace.total.coalesced_instructions, 2u);
  EXPECT_EQ(s.trace.total.divergent_branches, 1u);
}

// Direct collector-level check with hand-built lanes.
TEST(TraceGrouping, CollectorHandlesRaggedLanes) {
  const auto spec = DeviceSpec::geforce_8800_gtx();
  std::vector<LaneTrace> lanes(32);
  // All lanes: one access at site 7, perfectly coalesced.
  for (int k = 0; k < 32; ++k) {
    lanes[k].ops[OpClass::kLoadGlobal] = 1;
    lanes[k].global.push_back({static_cast<std::uint64_t>(4 * k), 4, 7, true});
  }
  // Lane 3 only: an extra access at site 9.
  lanes[3].ops[OpClass::kLoadGlobal] = 2;
  lanes[3].global.insert(lanes[3].global.begin(), {4096, 4, 9, true});

  const auto block = collect_block_trace(spec, lanes);
  ASSERT_EQ(block.warps.size(), 1u);
  const auto& w = block.warps[0];
  EXPECT_EQ(w.global_instructions, 2u);
  EXPECT_EQ(w.coalesced_instructions, 1u);       // the common site
  EXPECT_EQ(w.ops[OpClass::kLoadGlobal], 2u);    // max over lanes
}

}  // namespace
}  // namespace g80
