// g80obs metrics registry: concurrent counter exactness (the TSan suite runs
// this), LogBuckets quantile goldens, cumulative-scrape semantics, callback
// gauges, the Prometheus exporter, the structured logger, and the rt ledger
// gauges.  Everything here is deterministic — quantiles are pinned to exact
// values, not ranges, because LogBuckets::quantile is documented as such.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "common/stats.h"
#include "cudalite/device.h"
#include "obs/export.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "rt/runtime.h"

namespace g80::obs {
namespace {

// ---- counters and gauges --------------------------------------------------

TEST(ObsCounter, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, IncByNSumsAcrossShards) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c, t] { c.inc(static_cast<std::uint64_t>(t) + 1); });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 1u + 2u + 3u + 4u);
}

TEST(ObsGauge, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-50);
  EXPECT_EQ(g.value(), -8);
}

// ---- LogBuckets layout and quantile goldens -------------------------------

TEST(ObsLogBuckets, IndexAndBounds) {
  // Buckets: (0,1], (1,2], (2,4], (4,+inf).
  const LogBuckets b(1.0, 2.0, 4);
  EXPECT_EQ(b.buckets(), 4u);
  EXPECT_EQ(b.index_for(-1.0), 0u);
  EXPECT_EQ(b.index_for(0.5), 0u);
  EXPECT_EQ(b.index_for(1.0), 0u);  // bound belongs to the lower bucket
  EXPECT_EQ(b.index_for(1.5), 1u);
  EXPECT_EQ(b.index_for(2.0), 1u);
  EXPECT_EQ(b.index_for(3.0), 2u);
  EXPECT_EQ(b.index_for(4.0), 2u);
  EXPECT_EQ(b.index_for(5.0), 3u);
  EXPECT_EQ(b.index_for(1e12), 3u);  // clamps to the open-ended last bucket
  EXPECT_DOUBLE_EQ(b.upper_bound(0), 1.0);
  EXPECT_DOUBLE_EQ(b.upper_bound(1), 2.0);
  EXPECT_DOUBLE_EQ(b.upper_bound(2), 4.0);
  EXPECT_TRUE(std::isinf(b.upper_bound(3)));
  EXPECT_DOUBLE_EQ(b.lower_bound(0), 0.0);
  EXPECT_DOUBLE_EQ(b.lower_bound(3), 4.0);
}

TEST(ObsLogBuckets, IndexForIsStableAtEveryBound) {
  const LogBuckets b(1e-6, 2.0, 28);
  for (std::size_t i = 0; i + 1 < b.buckets(); ++i) {
    EXPECT_EQ(b.index_for(b.upper_bound(i)), i) << "bucket " << i;
  }
}

TEST(ObsLogBuckets, QuantileGoldens) {
  const LogBuckets b(1.0, 2.0, 4);
  const std::uint64_t counts[4] = {10, 10, 0, 0};
  // rank = ceil(q * 20), linear interpolation inside the selected bucket.
  EXPECT_DOUBLE_EQ(b.quantile(counts, 4, 0.0), 0.1);   // rank 1 of bucket 0
  EXPECT_DOUBLE_EQ(b.quantile(counts, 4, 0.5), 1.0);   // rank 10: top of b0
  EXPECT_DOUBLE_EQ(b.quantile(counts, 4, 0.75), 1.5);  // rank 15: mid of b1
  EXPECT_DOUBLE_EQ(b.quantile(counts, 4, 1.0), 2.0);   // rank 20: top of b1

  const std::uint64_t empty[4] = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(b.quantile(empty, 4, 0.5), 0.0);

  // The open-ended last bucket has no finite upper bound: the quantile
  // reports its lower bound rather than inventing one.
  const std::uint64_t tail[4] = {0, 0, 0, 5};
  EXPECT_DOUBLE_EQ(b.quantile(tail, 4, 0.99), 4.0);
}

TEST(ObsLatencyHistogram, CountSumAndQuantiles) {
  LatencyHistogram h(LogBuckets(1.0, 2.0, 4));
  for (int i = 0; i < 10; ++i) h.observe(0.5);
  for (int i = 0; i < 10; ++i) h.observe(1.5);
  EXPECT_EQ(h.count(), 20u);
  // Nanounit integer accumulation keeps the sum exact.
  EXPECT_DOUBLE_EQ(h.sum(), 20.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.9), 1.8);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 10u);
  EXPECT_EQ(counts[1], 10u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(ObsLatencyHistogram, ConcurrentObservationsAreExact) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(1e-3);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto counts = h.bucket_counts();
  const std::uint64_t total =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  EXPECT_EQ(total, h.count());
  EXPECT_DOUBLE_EQ(h.sum(), kThreads * kPerThread * 1e-3);
}

// ---- registry -------------------------------------------------------------

TEST(ObsRegistry, HandlesAreIdempotentByName) {
  MetricsRegistry reg;
  Counter* a = reg.counter("reqs");
  Counter* b = reg.counter("reqs");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.gauge("depth"), reg.gauge("depth"));
  EXPECT_EQ(reg.histogram("lat"), reg.histogram("lat"));
}

TEST(ObsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), Error);
  EXPECT_THROW(reg.histogram("x"), Error);
  reg.gauge_callback("cb", [] { return 7; });
  EXPECT_THROW(reg.counter("cb"), Error);
}

TEST(ObsRegistry, SnapshotIsCumulativeAcrossScrapes) {
  MetricsRegistry reg;
  Counter* c = reg.counter("reqs");
  c->inc(3);
  EXPECT_DOUBLE_EQ(reg.snapshot().value("reqs"), 3.0);
  // A scrape must not reset: the next one sees the running total.
  c->inc(2);
  EXPECT_DOUBLE_EQ(reg.snapshot().value("reqs"), 5.0);
  reg.reset();
  EXPECT_DOUBLE_EQ(reg.snapshot().value("reqs"), 0.0);
}

TEST(ObsRegistry, CallbackGaugesSampleAtScrapeTime) {
  MetricsRegistry reg;
  std::int64_t depth = 0;
  reg.gauge_callback("queue.depth", [&depth] { return depth; });
  EXPECT_DOUBLE_EQ(reg.snapshot().value("queue.depth"), 0.0);
  depth = 17;
  EXPECT_DOUBLE_EQ(reg.snapshot().value("queue.depth"), 17.0);
  // Set gauges keep their last value across reset (instantaneous, not
  // cumulative); callback gauges just re-sample.
  reg.gauge("manual")->set(5);
  reg.reset();
  EXPECT_DOUBLE_EQ(reg.snapshot().value("manual"), 5.0);
}

TEST(ObsRegistry, HistogramSampleCarriesQuantilesAndBuckets) {
  MetricsRegistry reg;
  LatencyHistogram* h = reg.histogram("lat", LogBuckets(1.0, 2.0, 4));
  for (int i = 0; i < 10; ++i) h->observe(0.5);
  for (int i = 0; i < 10; ++i) h->observe(1.5);
  const MetricsSnapshot snap = reg.snapshot();
  const MetricSample* s = snap.find("lat");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, MetricKind::kHistogram);
  EXPECT_EQ(s->count, 20u);
  EXPECT_DOUBLE_EQ(s->sum, 20.0);
  EXPECT_DOUBLE_EQ(s->p50, 1.0);
  EXPECT_DOUBLE_EQ(s->p90, 1.8);
  ASSERT_EQ(s->buckets.size(), 4u);
  // Cumulative Prometheus-style bucket counts.
  EXPECT_EQ(s->buckets[0].second, 10u);
  EXPECT_EQ(s->buckets[1].second, 20u);
  EXPECT_EQ(s->buckets[3].second, 20u);
  EXPECT_TRUE(std::isinf(s->buckets[3].first));
  EXPECT_EQ(snap.find("absent"), nullptr);
  EXPECT_DOUBLE_EQ(snap.value("absent"), 0.0);
}

// ---- exporters ------------------------------------------------------------

TEST(ObsExport, MetricsJsonRoundTripsThroughPrometheusText) {
  MetricsRegistry reg;
  reg.counter("serve.requests_total")->inc(3);
  reg.gauge("serve.queue.depth")->set(4);
  LatencyHistogram* h =
      reg.histogram("serve.latency.total", LogBuckets(1.0, 2.0, 4));
  h->observe(0.5);
  h->observe(1.5);

  // The exporter consumes the *payload*, not the live registry — exactly
  // what g80servectl does with the `metrics` op's result.
  const JsonValue payload = JsonValue::parse(metrics_json(reg.snapshot()));
  const std::string text = prometheus_text(payload);

  EXPECT_NE(text.find("# TYPE g80_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("g80_serve_requests_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE g80_serve_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("g80_serve_queue_depth 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE g80_serve_latency_total histogram"),
            std::string::npos);
  // JsonWriter renders the infinite last bound as null; the exporter must
  // map it back to Prometheus's "+Inf".
  EXPECT_NE(text.find("g80_serve_latency_total_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("g80_serve_latency_total_count 2"), std::string::npos);
  EXPECT_NE(text.find("g80_serve_latency_total_sum 2"), std::string::npos);
}

// ---- structured logger ----------------------------------------------------

TEST(ObsLogger, JsonLinesParseWithOrderedFields) {
  std::vector<std::string> lines;
  Logger log(LogLevel::kDebug, /*json=*/true);
  log.set_sink([&lines](std::string_view l) { lines.emplace_back(l); });

  log.info("job_done")
      .field("session", std::uint64_t{3})
      .field("status", "ok")
      .field("total_s", 0.25)
      .field("recovered", true);

  ASSERT_EQ(lines.size(), 1u);
  const JsonValue doc = JsonValue::parse(lines[0]);
  EXPECT_GT(doc.require("ts").as_number(), 0.0);
  EXPECT_EQ(doc.require("level").as_string(), "info");
  EXPECT_EQ(doc.require("event").as_string(), "job_done");
  EXPECT_EQ(doc.require("session").as_int(), 3);
  EXPECT_EQ(doc.require("status").as_string(), "ok");
  EXPECT_DOUBLE_EQ(doc.require("total_s").as_number(), 0.25);
  EXPECT_TRUE(doc.require("recovered").as_bool());
}

TEST(ObsLogger, TextModeAndLevelFiltering) {
  std::vector<std::string> lines;
  Logger log(LogLevel::kWarn, /*json=*/false);
  log.set_sink([&lines](std::string_view l) { lines.emplace_back(l); });

  EXPECT_FALSE(log.enabled(LogLevel::kDebug));
  EXPECT_TRUE(log.enabled(LogLevel::kError));
  log.debug("dropped").field("k", 1);  // below min level: no sink call
  log.info("dropped_too");
  log.warn("slow_request").field("total_s", 1.5).field("op", "launch");

  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("warn"), std::string::npos);
  EXPECT_NE(lines[0].find("slow_request"), std::string::npos);
  EXPECT_NE(lines[0].find("op=launch"), std::string::npos);

  log.set_level(LogLevel::kOff);
  log.error("silenced");
  EXPECT_EQ(lines.size(), 1u);
}

TEST(ObsLogger, LevelNamesRoundTrip) {
  EXPECT_EQ(log_level_from_name("debug"), LogLevel::kDebug);
  EXPECT_EQ(log_level_from_name("warn"), LogLevel::kWarn);
  EXPECT_EQ(log_level_from_name("off"), LogLevel::kOff);
  EXPECT_EQ(log_level_name(LogLevel::kError), "error");
  EXPECT_THROW(log_level_from_name("verbose"), Error);
}

// ---- rt ledger gauges -----------------------------------------------------

TEST(ObsRtBindMetrics, LedgerGaugesTrackTransfers) {
  Device dev;
  rt::Runtime r(dev);
  MetricsRegistry reg;
  r.bind_metrics(reg);

  const int n = 256;
  auto in = dev.alloc<float>(n);
  std::vector<float> host(n, 1.0f);
  auto s = r.stream_create();
  r.memcpy_h2d_async(s, in, host);
  std::vector<float> back;
  r.memcpy_d2h_async(s, back, in);
  r.stream_synchronize(s);

  const MetricsSnapshot snap = reg.snapshot();
  const double bytes = n * sizeof(float);
  EXPECT_DOUBLE_EQ(snap.value("rt.ledger.h2d_bytes"), bytes);
  EXPECT_DOUBLE_EQ(snap.value("rt.ledger.d2h_bytes"), bytes);
  EXPECT_DOUBLE_EQ(snap.value("rt.ledger.total_bytes"), 2 * bytes);
  EXPECT_DOUBLE_EQ(snap.value("rt.ledger.transfer_count"), 2.0);
}

TEST(ObsRtBindMetrics, PrefixNamespacesMultipleRuntimes) {
  Device dev;
  rt::Runtime r(dev);
  MetricsRegistry reg;
  r.bind_metrics(reg, "dev0");
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_NE(snap.find("dev0.ledger.h2d_bytes"), nullptr);
  EXPECT_EQ(snap.find("rt.ledger.h2d_bytes"), nullptr);
}

}  // namespace
}  // namespace g80::obs
