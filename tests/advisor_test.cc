// Tests for the optimization advisor and the autotuner.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/matmul/matmul.h"
#include "core/advisor.h"
#include "core/autotuner.h"
#include "cudalite/device.h"

namespace g80 {
namespace {

using apps::MatmulConfig;
using apps::MatmulVariant;
using apps::run_matmul;

struct MatmulFixture : public ::testing::Test {
  MatmulFixture()
      : da(dev.alloc<float>(n * n)), db(dev.alloc<float>(n * n)),
        dc(dev.alloc<float>(n * n)) {}

  LaunchStats run(MatmulVariant v, int tile = 16) {
    return run_matmul(dev, {v, tile}, static_cast<int>(n), da, db, dc,
                      /*functional=*/false);
  }

  static bool has(const std::vector<Advice>& advice, AdviceKind k) {
    return std::any_of(advice.begin(), advice.end(),
                       [k](const Advice& a) { return a.kind == k; });
  }

  Device dev;
  static constexpr std::size_t n = 1024;
  DeviceBuffer<float> da, db, dc;
};

TEST_F(MatmulFixture, NaiveKernelGetsTilingAdvice) {
  const auto advice = advise(dev.spec(), run(MatmulVariant::kNaive));
  ASSERT_FALSE(advice.empty());
  EXPECT_TRUE(has(advice, AdviceKind::kUseSharedMemoryTiling));
  // Advice is sorted by severity.
  for (std::size_t i = 1; i < advice.size(); ++i)
    EXPECT_GE(advice[i - 1].severity, advice[i].severity);
}

TEST_F(MatmulFixture, TiledKernelGetsUnrollAdvice) {
  // Issue-bound with a poor fmad fraction: the §4.3 move.
  const auto advice = advise(dev.spec(), run(MatmulVariant::kTiled));
  EXPECT_TRUE(has(advice, AdviceKind::kReduceInstructionOverhead));
  EXPECT_FALSE(has(advice, AdviceKind::kUseSharedMemoryTiling));
}

TEST_F(MatmulFixture, PrefetchKernelFlagsRegisterPressure) {
  const auto stats = run(MatmulVariant::kPrefetch);
  ASSERT_EQ(stats.occupancy.limiter, OccupancyLimit::kRegisters);
  // Register advice appears when occupancy suffers; with 2/3 occupancy and
  // an issue-bound kernel it may be silent — run at least without errors and
  // check potential is near achieved.
  const auto advice = advise(dev.spec(), stats);
  EXPECT_NEAR(potential_gflops(dev.spec(), stats.trace), stats.timing.gflops,
              0.05 * stats.timing.gflops);
  (void)advice;
}

TEST_F(MatmulFixture, PotentialGflopsMatchesPaperArithmetic) {
  // §4.1: 1 fused multiply-add in 8 ops => 43.2 GFLOPS potential.
  const auto naive = run(MatmulVariant::kNaive);
  EXPECT_NEAR(potential_gflops(dev.spec(), naive.trace), 43.2, 0.5);
  // §4.3: 16 MADs in 59 ops => 93.72 GFLOPS potential.
  const auto unrolled = run(MatmulVariant::kTiledUnrolled);
  EXPECT_NEAR(potential_gflops(dev.spec(), unrolled.trace), 93.7, 1.0);
}

TEST_F(MatmulFixture, FormatAdviceIsReadable) {
  const auto advice = advise(dev.spec(), run(MatmulVariant::kNaive));
  const std::string text = format_advice(advice);
  EXPECT_NE(text.find("["), std::string::npos);
  EXPECT_FALSE(format_advice({}).empty());
}

TEST_F(MatmulFixture, AutotunerPicksUnrolledSixteen) {
  Autotuner tuner;
  for (const auto& cfg :
       {MatmulConfig{MatmulVariant::kNaive, 16},
        MatmulConfig{MatmulVariant::kTiled, 8},
        MatmulConfig{MatmulVariant::kTiled, 16},
        MatmulConfig{MatmulVariant::kTiledUnrolled, 16},
        MatmulConfig{MatmulVariant::kPrefetch, 16}}) {
    tuner.add(cfg.name(), [this, cfg] {
      return run_matmul(dev, cfg, static_cast<int>(n), da, db, dc, false);
    });
  }
  const auto report = tuner.sweep();
  ASSERT_EQ(report.entries.size(), 5u);
  EXPECT_EQ(report.best().name, "16x16 tiled & unrolled");
  // The report renders with one row per candidate.
  const auto table = report.to_table(dev.spec());
  EXPECT_NE(table.find("16x16 tiled & unrolled"), std::string::npos);
  EXPECT_NE(table.find("blocks/SM"), std::string::npos);
}

TEST(Autotuner, EmptySweepThrows) {
  Autotuner tuner;
  EXPECT_THROW(tuner.sweep(), Error);
}

}  // namespace
}  // namespace g80
