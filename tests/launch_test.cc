// Integration tests for the cudalite layer: launch mechanics, functional
// execution, trace collection (instruction mixes, coalescing, divergence,
// bank conflicts, constant broadcast, texture cache) and resource checks —
// kernels small enough to have hand-computable expectations.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "common/error.h"
#include "cudalite/ctx.h"
#include "cudalite/device.h"
#include "cudalite/launch.h"

namespace g80 {
namespace {

// ---- Minimal kernels ----------------------------------------------------------

struct FillIndexKernel {
  int n = 0;
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<int>& out) const {
    auto Out = ctx.global(out);
    const int i = ctx.global_thread_x();
    if (ctx.branch(i < n)) Out.st(i, i * 3);
  }
};

struct Mad4Kernel {  // 4 mads, 1 coalesced load, 1 coalesced store per thread
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& data) const {
    auto D = ctx.global(data);
    const int i = ctx.global_thread_x();
    float v = D.ld(i);
    for (int k = 0; k < 4; ++k) v = ctx.mad(v, 1.0f, 1.0f);
    D.st(i, v);
  }
};

struct StridedKernel {  // scattered loads: thread i reads element 17*i
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& data,
                  DeviceBuffer<float>& out) const {
    auto D = ctx.global(data);
    auto O = ctx.global(out);
    const int i = ctx.global_thread_x();
    O.st(i, D.ld(static_cast<std::size_t>(i) * 17 % D.size()));
  }
};

struct SharedReverseKernel {  // block-wide reverse through shared memory
  // Out-of-place: sampled blocks execute in both the trace and functional
  // passes, so kernels must be idempotent at block granularity.
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<int>& in, DeviceBuffer<int>& out) const {
    auto In = ctx.global(in);
    auto Out = ctx.global(out);
    auto S = ctx.template shared<int>(ctx.block_dim().x);
    const int t = static_cast<int>(ctx.thread_idx().x);
    const int base = static_cast<int>(ctx.block_idx().x * ctx.block_dim().x);
    S.st(t, In.ld(base + t));
    ctx.sync();
    Out.st(base + t, S.ld(ctx.block_dim().x - 1 - t));
  }
};

struct DivergentKernel {  // odd lanes take one path, even lanes another
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& out) const {
    auto O = ctx.global(out);
    const int i = ctx.global_thread_x();
    if (ctx.branch(i % 2 == 0)) {
      O.st(i, ctx.mul(2.0f, 3.0f));
    } else {
      O.st(i, ctx.add(1.0f, 1.0f));
    }
  }
};

struct ConstBroadcastKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, const ConstantBuffer<float>& c,
                  DeviceBuffer<float>& out) const {
    auto C = ctx.constant(c);
    auto O = ctx.global(out);
    const int i = ctx.global_thread_x();
    O.st(i, C.ld(3));  // uniform address: broadcast
  }
};

struct ConstDivergentKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, const ConstantBuffer<float>& c,
                  DeviceBuffer<float>& out) const {
    auto C = ctx.constant(c);
    auto O = ctx.global(out);
    const int i = ctx.global_thread_x();
    O.st(i, C.ld(static_cast<std::size_t>(i) % c.size()));  // distinct addrs
  }
};

struct BankConflictKernel {  // stride-16 shared words: 16-way conflicts
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& out) const {
    auto S = ctx.template shared<float>(16 * 256 / 4);
    auto O = ctx.global(out);
    const int t = static_cast<int>(ctx.thread_idx().x);
    S.st(static_cast<std::size_t>(t) * 16 % S.size(), 1.0f);
    O.st(ctx.global_thread_x(), 1.0f);
  }
};

struct TextureStreamKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, const Texture1D<float>& t,
                  DeviceBuffer<float>& out) const {
    auto T = ctx.texture(t);
    auto O = ctx.global(out);
    const int i = ctx.global_thread_x();
    O.st(i, T.fetch(static_cast<std::size_t>(i) % t.size()));
  }
};

struct Coord2DKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<int>& out) const {
    auto O = ctx.global(out);
    const auto t = ctx.thread_idx();
    const int x = static_cast<int>(ctx.block_idx().x * ctx.block_dim().x + t.x);
    const int y = static_cast<int>(ctx.block_idx().y * ctx.block_dim().y + t.y);
    O.st(static_cast<std::size_t>(y) * 32 + x, y * 1000 + x);
  }
};

struct OobKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& d) const {
    auto D = ctx.global(d);
    D.ld(d.size() + 5);
  }
};

struct HugeSharedKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& d) const {
    ctx.template shared<float>(5000);  // 20 KB > 16 KB
  }
};

// ---- Functional behaviour -------------------------------------------------------

TEST(Launch, FunctionalPassCoversFullGrid) {
  Device dev;
  const int n = 1024;
  auto out = dev.alloc<int>(n);
  LaunchOptions opt;
  opt.uses_sync = false;
  launch(dev, Dim3(n / 64), Dim3(64), opt, FillIndexKernel{n}, out);
  const auto host = out.copy_to_host();
  for (int i = 0; i < n; ++i) ASSERT_EQ(host[i], i * 3);
}

TEST(Launch, TwoDimensionalGridCoordinates) {
  Device dev;
  auto out = dev.alloc<int>(32 * 16);
  LaunchOptions opt;
  opt.uses_sync = false;
  launch(dev, Dim3(4, 4), Dim3(8, 4), opt, Coord2DKernel{}, out);
  const auto host = out.copy_to_host();
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 32; ++x)
      ASSERT_EQ(host[static_cast<std::size_t>(y) * 32 + x], y * 1000 + x);
}

TEST(Launch, SharedMemoryReverseWithBarrier) {
  Device dev;
  const int n = 512;
  auto data = dev.alloc<int>(n);
  auto out = dev.alloc<int>(n);
  std::vector<int> host(n);
  for (int i = 0; i < n; ++i) host[i] = i;
  data.copy_from_host(host);
  launch(dev, Dim3(n / 128), Dim3(128), LaunchOptions{}, SharedReverseKernel{},
         data, out);
  const auto result = out.copy_to_host();
  for (int b = 0; b < n / 128; ++b)
    for (int t = 0; t < 128; ++t)
      ASSERT_EQ(result[b * 128 + t], b * 128 + (127 - t));
}

TEST(Launch, OutOfBoundsAccessThrows) {
  Device dev;
  auto d = dev.alloc<float>(16);
  LaunchOptions opt;
  opt.uses_sync = false;
  EXPECT_THROW(launch(dev, Dim3(1), Dim3(1), opt, OobKernel{}, d), Error);
}

TEST(Launch, OversizedBlockRejected) {
  Device dev;
  auto d = dev.alloc<float>(16);
  LaunchOptions opt;
  EXPECT_THROW(launch(dev, Dim3(1), Dim3(1024), opt, Mad4Kernel{}, d), Error);
}

TEST(Launch, SharedMemoryOverflowRejected) {
  Device dev;
  auto d = dev.alloc<float>(16);
  EXPECT_THROW(launch(dev, Dim3(1), Dim3(32), LaunchOptions{},
                      HugeSharedKernel{}, d),
               Error);
}

// ---- Trace collection -----------------------------------------------------------

TEST(Launch, InstructionMixCountedExactly) {
  Device dev;
  const int n = 256;
  auto d = dev.alloc<float>(n);
  LaunchOptions opt;
  opt.uses_sync = false;
  opt.sample_blocks = 1;
  const auto s = launch(dev, Dim3(1), Dim3(256), opt, Mad4Kernel{}, d);
  ASSERT_EQ(s.trace.num_warps, 8u);
  // Per warp: 4 mads, 1 load, 1 store.
  EXPECT_EQ(s.trace.total.ops[OpClass::kFMad], 8u * 4);
  EXPECT_EQ(s.trace.total.ops[OpClass::kLoadGlobal], 8u * 1);
  EXPECT_EQ(s.trace.total.ops[OpClass::kStoreGlobal], 8u * 1);
  // Lane flops: 256 threads x 4 mads x 2 flops.
  EXPECT_DOUBLE_EQ(s.trace.total.lane_flops, 256.0 * 4 * 2);
}

TEST(Launch, CoalescedKernelFullyCoalesced) {
  Device dev;
  auto d = dev.alloc<float>(256);
  LaunchOptions opt;
  opt.uses_sync = false;
  opt.sample_blocks = 1;
  const auto s = launch(dev, Dim3(1), Dim3(256), opt, Mad4Kernel{}, d);
  EXPECT_DOUBLE_EQ(s.trace.coalesced_fraction(), 1.0);
  // 2 transactions per warp-level access (two half-warps), 64 B each.
  EXPECT_DOUBLE_EQ(s.trace.transactions_per_mem_inst(), 2.0);
  EXPECT_EQ(s.trace.total.global.scattered_bytes, 0u);
}

TEST(Launch, StridedKernelScatters) {
  Device dev;
  auto d = dev.alloc<float>(4096);
  auto o = dev.alloc<float>(256);
  LaunchOptions opt;
  opt.uses_sync = false;
  opt.sample_blocks = 1;
  const auto s = launch(dev, Dim3(1), Dim3(256), opt, StridedKernel{}, d, o);
  EXPECT_LT(s.trace.coalesced_fraction(), 0.6);  // loads scatter, stores don't
  EXPECT_GT(s.trace.total.global.scattered_bytes, 0u);
}

TEST(Launch, DivergenceDetected) {
  Device dev;
  auto o = dev.alloc<float>(256);
  LaunchOptions opt;
  opt.uses_sync = false;
  opt.sample_blocks = 1;
  const auto s = launch(dev, Dim3(1), Dim3(256), opt, DivergentKernel{}, o);
  EXPECT_GT(s.trace.divergent_branch_fraction(), 0.9);
  // Functional result is still correct for both paths.
  const auto host = o.copy_to_host();
  for (int i = 0; i < 256; ++i) EXPECT_FLOAT_EQ(host[i], i % 2 == 0 ? 6.f : 2.f);
}

TEST(Launch, UniformBranchNotDivergent) {
  Device dev;
  auto o = dev.alloc<int>(1024);
  LaunchOptions opt;
  opt.uses_sync = false;
  const auto s = launch(dev, Dim3(4), Dim3(256), opt, FillIndexKernel{1024}, o);
  EXPECT_DOUBLE_EQ(s.trace.divergent_branch_fraction(), 0.0);
}

TEST(Launch, ConstantBroadcastIsFree) {
  Device dev;
  auto c = dev.alloc_constant<float>(16);
  auto o = dev.alloc<float>(256);
  LaunchOptions opt;
  opt.uses_sync = false;
  opt.sample_blocks = 1;
  const auto s = launch(dev, Dim3(1), Dim3(256), opt, ConstBroadcastKernel{}, c, o);
  EXPECT_EQ(s.trace.total.const_extra_passes, 0u);
}

TEST(Launch, ConstantDivergentSerializes) {
  Device dev;
  auto c = dev.alloc_constant<float>(16);
  auto o = dev.alloc<float>(256);
  LaunchOptions opt;
  opt.uses_sync = false;
  opt.sample_blocks = 1;
  const auto s =
      launch(dev, Dim3(1), Dim3(256), opt, ConstDivergentKernel{}, c, o);
  // Each half-warp touches 16 distinct constant addresses: 15 extra passes,
  // 16 half-warps per block of 256 threads.
  EXPECT_EQ(s.trace.total.const_extra_passes, 16u * 15);
}

TEST(Launch, BankConflictsMeasured) {
  Device dev;
  auto o = dev.alloc<float>(256);
  LaunchOptions opt;
  opt.uses_sync = false;
  opt.sample_blocks = 1;
  const auto s = launch(dev, Dim3(1), Dim3(256), opt, BankConflictKernel{}, o);
  // Every shared store is a 16-way conflict: 15 extra passes per half-warp.
  EXPECT_EQ(s.trace.total.shared_extra_passes, 16u * 15);
}

TEST(Launch, TextureCacheObservedInTrace) {
  Device dev;
  auto t = dev.alloc_texture<float>(64);  // tiny table: high hit rate
  auto o = dev.alloc<float>(512);
  LaunchOptions opt;
  opt.uses_sync = false;
  opt.sample_blocks = 1;
  const auto s =
      launch(dev, Dim3(2), Dim3(256), opt, TextureStreamKernel{}, t, o);
  EXPECT_GT(s.trace.total.texture_hits, s.trace.total.texture_misses);
}

TEST(Launch, SmemPerBlockMeasured) {
  Device dev;
  auto d = dev.alloc<int>(256);
  auto o = dev.alloc<int>(256);
  const auto s = launch(dev, Dim3(2), Dim3(128), LaunchOptions{},
                        SharedReverseKernel{}, d, o);
  EXPECT_EQ(s.smem_per_block, 128u * sizeof(int));
  EXPECT_EQ(s.trace.total.ops[OpClass::kSync], 8u);  // 2 blocks x 4 warps x 1
}

TEST(Launch, SampleBlocksIncludeEndpoints) {
  const auto s = detail::pick_sample_blocks(100, 4);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.front(), 0u);
  EXPECT_EQ(s.back(), 99u);
  const auto all = detail::pick_sample_blocks(3, 10);
  EXPECT_EQ(all.size(), 3u);
}

TEST(Launch, TimingExtrapolatesAcrossGrid) {
  Device dev;
  auto d = dev.alloc<float>(1 << 16);
  LaunchOptions opt;
  opt.uses_sync = false;
  opt.functional = false;
  const auto small = launch(dev, Dim3(64), Dim3(256), opt, Mad4Kernel{}, d);
  const auto big = launch(dev, Dim3(256), Dim3(256), opt, Mad4Kernel{}, d);
  EXPECT_NEAR(big.timing.seconds / small.timing.seconds, 4.0, 0.3);
}

TEST(Launch, TransferLedgerTracksCopies) {
  Device dev;
  auto d = dev.alloc<float>(1024);
  std::vector<float> host(1024, 1.0f);
  d.copy_from_host(host);
  (void)d.copy_to_host();
  EXPECT_EQ(dev.ledger().h2d_bytes(), 4096u);
  EXPECT_EQ(dev.ledger().d2h_bytes(), 4096u);
  EXPECT_EQ(dev.ledger().transfer_count(), 2u);
  dev.ledger().reset();
  EXPECT_EQ(dev.ledger().total_bytes(), 0u);
}

TEST(Launch, ConstantSpaceExhaustionThrows) {
  Device dev;
  (void)dev.alloc_constant<float>(12 * 1024);      // 48 KB
  EXPECT_THROW(dev.alloc_constant<float>(8 * 1024), Error);  // +32 KB > 64 KB
}

// ---- Structured launch errors (g80::Status, cudaError_t-style) ----------------

// Catch a StatusError from `fn`, returning its code and message.
template <class Fn>
std::pair<Status, std::string> catch_status(Fn&& fn) {
  try {
    fn();
  } catch (const StatusError& e) {
    return {e.status(), e.what()};
  }
  return {Status::kSuccess, "no error raised"};
}

TEST(LaunchStatus, OversizedBlockIsInvalidConfiguration) {
  Device dev;
  auto d = dev.alloc<float>(16);
  const auto [code, msg] = catch_status([&] {
    launch(dev, Dim3(1), Dim3(1024), LaunchOptions{}, Mad4Kernel{}, d);
  });
  EXPECT_EQ(code, Status::kInvalidConfiguration);
  EXPECT_NE(msg.find("1024"), std::string::npos) << msg;
  EXPECT_NE(msg.find("512"), std::string::npos) << msg;  // the hardware limit
  // Sticky until read, then cleared — the cudaGetLastError contract.
  EXPECT_EQ(dev.get_last_error(), Status::kInvalidConfiguration);
  EXPECT_EQ(dev.get_last_error(), Status::kSuccess);
}

TEST(LaunchStatus, GridDimensionOverflowIsInvalidConfiguration) {
  Device dev;
  auto d = dev.alloc<float>(16);
  const auto [code, msg] = catch_status([&] {
    launch(dev, Dim3(70000), Dim3(64), LaunchOptions{}, Mad4Kernel{}, d);
  });
  EXPECT_EQ(code, Status::kInvalidConfiguration);
  EXPECT_NE(msg.find("70000"), std::string::npos) << msg;
  EXPECT_NE(msg.find("65535"), std::string::npos) << msg;
  EXPECT_EQ(dev.get_last_error(), Status::kInvalidConfiguration);
}

TEST(LaunchStatus, ThreeDimensionalGridIsInvalidConfiguration) {
  Device dev;
  auto d = dev.alloc<float>(16);
  const auto [code, msg] = catch_status([&] {
    launch(dev, Dim3(4, 4, 2), Dim3(64), LaunchOptions{}, Mad4Kernel{}, d);
  });
  EXPECT_EQ(code, Status::kInvalidConfiguration);
  EXPECT_NE(msg.find("grid.z"), std::string::npos) << msg;
  EXPECT_EQ(dev.get_last_error(), Status::kInvalidConfiguration);
}

TEST(LaunchStatus, RegisterFileExhaustionIsLaunchOutOfResources) {
  Device dev;
  auto d = dev.alloc<float>(16);
  LaunchOptions opt;
  opt.regs_per_thread = 40;  // 40 x 512 = 20480 regs > 8192/SM
  const auto [code, msg] = catch_status([&] {
    launch(dev, Dim3(1), Dim3(512), opt, Mad4Kernel{}, d);
  });
  EXPECT_EQ(code, Status::kLaunchOutOfResources);
  EXPECT_NE(msg.find("register"), std::string::npos) << msg;
  EXPECT_EQ(dev.get_last_error(), Status::kLaunchOutOfResources);
}

TEST(LaunchStatus, SharedMemoryOverflowIsLaunchOutOfResources) {
  Device dev;
  auto d = dev.alloc<float>(16);
  const auto [code, msg] = catch_status([&] {
    launch(dev, Dim3(1), Dim3(32), LaunchOptions{}, HugeSharedKernel{}, d);
  });
  EXPECT_EQ(code, Status::kLaunchOutOfResources);
  EXPECT_NE(msg.find("shared memory overflow"), std::string::npos) << msg;
  EXPECT_EQ(dev.get_last_error(), Status::kLaunchOutOfResources);
}

TEST(LaunchStatus, ConstantSpaceExhaustionIsStructured) {
  Device dev;
  (void)dev.alloc_constant<float>(12 * 1024);  // 48 KB of the 64 KB space
  const auto [code, msg] =
      catch_status([&] { (void)dev.alloc_constant<float>(8 * 1024); });
  EXPECT_EQ(code, Status::kConstantSpaceExceeded);
  EXPECT_NE(msg.find("constant"), std::string::npos) << msg;
  EXPECT_EQ(dev.get_last_error(), Status::kConstantSpaceExceeded);
}

TEST(LaunchStatus, OutOfBoundsAccessIsInvalidAddress) {
  Device dev;
  auto d = dev.alloc<float>(16);
  LaunchOptions opt;
  opt.uses_sync = false;
  const auto [code, msg] = catch_status([&] {
    launch(dev, Dim3(1), Dim3(1), opt, OobKernel{}, d);
  });
  EXPECT_EQ(code, Status::kInvalidAddress);
  EXPECT_NE(msg.find("out of bounds"), std::string::npos) << msg;
  EXPECT_EQ(dev.get_last_error(), Status::kInvalidAddress);
}

TEST(LaunchStatus, SuccessfulLaunchLeavesStatusClean) {
  Device dev;
  auto out = dev.alloc<int>(256);
  LaunchOptions opt;
  opt.uses_sync = false;
  launch(dev, Dim3(4), Dim3(64), opt, FillIndexKernel{256}, out);
  EXPECT_EQ(dev.get_last_error(), Status::kSuccess);
}

}  // namespace
}  // namespace g80
