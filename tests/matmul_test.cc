// Matrix multiplication: functional equivalence of every kernel variant
// against the CPU reference across sizes, plus regression checks that the
// model reproduces the paper's §4 performance relationships.
#include <gtest/gtest.h>

#include "apps/matmul/matmul.h"
#include "common/stats.h"
#include "cudalite/device.h"

namespace g80 {
namespace {

using namespace apps;

double max_err(const std::vector<float>& got, const std::vector<float>& want) {
  double err = 0;
  for (std::size_t i = 0; i < want.size(); ++i)
    err = std::max(err, rel_err(got[i], want[i], 1e-3));
  return err;
}

struct VariantCase {
  MatmulVariant variant;
  int tile;
};

class MatmulFunctional : public ::testing::TestWithParam<VariantCase> {};

TEST_P(MatmulFunctional, MatchesCpuReference) {
  const auto [variant, tile] = GetParam();
  // 48 is divisible by every tile size {4, 8, 12, 16}.
  for (int n : {48, 96}) {
    const auto w = MatmulWorkload::generate(n, 17);
    std::vector<float> ref;
    matmul_cpu(n, w.a, w.b, ref);

    Device dev;
    auto da = dev.alloc<float>(w.a.size());
    auto db = dev.alloc<float>(w.b.size());
    auto dc = dev.alloc<float>(w.a.size());
    da.copy_from_host(w.a);
    db.copy_from_host(w.b);
    run_matmul(dev, {variant, tile}, n, da, db, dc, /*functional=*/true);
    EXPECT_LT(max_err(dc.copy_to_host(), ref), 2e-4) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, MatmulFunctional,
    ::testing::Values(VariantCase{MatmulVariant::kNaive, 16},
                      VariantCase{MatmulVariant::kNaiveUnrolled, 16},
                      VariantCase{MatmulVariant::kTiled, 4},
                      VariantCase{MatmulVariant::kTiled, 8},
                      VariantCase{MatmulVariant::kTiled, 12},
                      VariantCase{MatmulVariant::kTiled, 16},
                      VariantCase{MatmulVariant::kTiledUnrolled, 4},
                      VariantCase{MatmulVariant::kTiledUnrolled, 8},
                      VariantCase{MatmulVariant::kTiledUnrolled, 12},
                      VariantCase{MatmulVariant::kTiledUnrolled, 16},
                      VariantCase{MatmulVariant::kPrefetch, 16},
                      VariantCase{MatmulVariant::kRegisterTiled, 8},
                      VariantCase{MatmulVariant::kRegisterTiled, 16}));

// ---- §4 performance-relationship regression ----------------------------------

struct Sec4Fixture : public ::testing::Test {
  Sec4Fixture()
      : da(dev.alloc<float>(n * n)), db(dev.alloc<float>(n * n)),
        dc(dev.alloc<float>(n * n)) {}

  double gflops(MatmulVariant v, int tile = 16) {
    return run_matmul(dev, {v, tile}, static_cast<int>(n), da, db, dc, false)
        .timing.gflops;
  }

  Device dev;
  static constexpr std::size_t n = 4096;
  DeviceBuffer<float> da, db, dc;
};

TEST_F(Sec4Fixture, PaperShapeHolds) {
  const double naive = gflops(MatmulVariant::kNaive);
  const double tiled = gflops(MatmulVariant::kTiled);
  const double unrolled = gflops(MatmulVariant::kTiledUnrolled);
  const double prefetch = gflops(MatmulVariant::kPrefetch);

  // Paper: 10.58 / 46.49 / 91.14 / 87.10 GFLOPS.  Bands are generous enough
  // to survive model recalibration but tight enough to catch regressions.
  EXPECT_GT(naive, 5.0);
  EXPECT_LT(naive, 25.0);
  EXPECT_NEAR(tiled, 46.49, 8.0);
  EXPECT_NEAR(unrolled, 91.14, 8.0);
  // Orderings (who wins) are the headline result.
  EXPECT_GT(tiled, 2.5 * naive);          // paper: ~4.4x
  EXPECT_GT(unrolled, 1.7 * tiled);       // paper: ~2x
  EXPECT_LT(prefetch, unrolled);          // §4.4: prefetching LOSES
  EXPECT_GT(prefetch, 0.9 * unrolled);    // ...but only by ~5%
}

TEST_F(Sec4Fixture, SmallTilesGainNothingOverUntiled) {
  // §4.2 / Fig. 4: 4x4 tiles perform no better than the untiled kernel —
  // the figure shows them slightly BELOW it (~9 vs 10.58 GFLOPS).  Our
  // model lands both near 10 GFLOPS with the ordering inverted by ~13%
  // (documented in EXPERIMENTS.md): the claim preserved here is that tiny
  // tiles squander the tiling advantage entirely (16-thread blocks, half of
  // every warp's issue slots idle, the 8-block limit) while 16x16 gains
  // 4-5x.
  const double naive = gflops(MatmulVariant::kNaive);
  const double t4 = gflops(MatmulVariant::kTiled, 4);
  EXPECT_LT(t4, 1.3 * naive);
  EXPECT_LT(t4, 0.3 * gflops(MatmulVariant::kTiled, 16));
}

TEST_F(Sec4Fixture, SixteenIsBestTile) {
  const double t16 = gflops(MatmulVariant::kTiledUnrolled, 16);
  for (int tile : {4, 8}) {
    EXPECT_GT(t16, gflops(MatmulVariant::kTiledUnrolled, tile));
  }
}

TEST_F(Sec4Fixture, NaiveIsBandwidthBound) {
  const auto s = run_matmul(dev, {MatmulVariant::kNaive, 16},
                            static_cast<int>(n), da, db, dc, false);
  EXPECT_EQ(s.timing.bottleneck, Bottleneck::kGlobalBandwidth);
}

TEST_F(Sec4Fixture, UnrolledIsIssueBound) {
  const auto s = run_matmul(dev, {MatmulVariant::kTiledUnrolled, 16},
                            static_cast<int>(n), da, db, dc, false);
  EXPECT_EQ(s.timing.bottleneck, Bottleneck::kInstructionIssue);
  // Tiling cut DRAM demand by ~16x (§4.2).
  const auto naive = run_matmul(dev, {MatmulVariant::kNaive, 16},
                                static_cast<int>(n), da, db, dc, false);
  EXPECT_LT(s.trace.total.global.bytes * 8, naive.trace.total.global.bytes);
}

TEST_F(Sec4Fixture, TiledKernelsCoalescePerfectlyAtSixteen) {
  const auto s = run_matmul(dev, {MatmulVariant::kTiledUnrolled, 16},
                            static_cast<int>(n), da, db, dc, false);
  EXPECT_DOUBLE_EQ(s.trace.coalesced_fraction(), 1.0);
  const auto s4 = run_matmul(dev, {MatmulVariant::kTiledUnrolled, 4},
                             static_cast<int>(n), da, db, dc, false);
  EXPECT_LT(s4.trace.coalesced_fraction(), 0.5);
}

TEST_F(Sec4Fixture, RegisterTilingBeatsUnrolled) {
  // The beyond-the-paper extension: two outputs per thread reuse the Bs
  // operand, lifting the useful-instruction fraction past 16/59.
  EXPECT_GT(gflops(MatmulVariant::kRegisterTiled, 16),
            1.1 * gflops(MatmulVariant::kTiledUnrolled, 16));
}

TEST_F(Sec4Fixture, SharedMemoryUsageMatchesTileFootprint) {
  const auto s = run_matmul(dev, {MatmulVariant::kTiled, 16},
                            static_cast<int>(n), da, db, dc, false);
  EXPECT_EQ(s.smem_per_block, 2u * 16 * 16 * sizeof(float));
  EXPECT_EQ(s.occupancy.blocks_per_sm, 3);
}

}  // namespace
}  // namespace g80
