// g80rt stream/event semantics: FIFO ordering within a stream, independence
// across streams, modeled event timestamps, copy/compute overlap in the
// timeline, and the runtime-misuse paths of the structured-error model.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "core/report.h"
#include "cudalite/ctx.h"
#include "cudalite/device.h"
#include "cudalite/launch.h"
#include "rt/runtime.h"
#include "timing/timeline.h"

namespace g80 {
namespace {

// Out-of-place scale: sampled blocks run in both the trace and functional
// passes, so in-place updates would double-apply.
struct ScaleKernel {
  float scale = 2.0f;
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& in,
                  DeviceBuffer<float>& out) const {
    auto I = ctx.global(in);
    auto O = ctx.global(out);
    const int i = ctx.global_thread_x();
    O.st(i, ctx.mad(I.ld(i), scale, 0.0f));
  }
};

struct OobStoreKernel {  // every thread stores past the end
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& out) const {
    auto O = ctx.global(out);
    O.st(O.size() + ctx.global_thread_x(), 0.0f);
  }
};

LaunchOptions fast_opts() {
  LaunchOptions opt;
  opt.uses_sync = false;  // kernels here never __syncthreads
  return opt;
}

// Catch a StatusError from `fn`, returning its code and message.
template <class Fn>
std::pair<Status, std::string> catch_status(Fn&& fn) {
  try {
    fn();
  } catch (const StatusError& e) {
    return {e.status(), e.what()};
  }
  return {Status::kSuccess, "no error raised"};
}

// ---- FIFO within a stream -----------------------------------------------------

TEST(RtStream, HostFuncsRunInFifoOrder) {
  Device dev;
  rt::Runtime r(dev);
  auto s = r.stream_create();
  // `order` is written only by the stream thread and read after the sync.
  std::vector<int> order;
  for (int k = 0; k < 16; ++k) {
    r.host_func(s, [&order, k] { order.push_back(k); });
  }
  r.stream_synchronize(s);
  std::vector<int> want(16);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(order, want);
}

TEST(RtStream, H2dKernelD2hPipelineProducesResults) {
  Device dev;
  rt::Runtime r(dev, {.workers = 4});
  auto s = r.stream_create();
  const int n = 256;
  auto in = dev.alloc<float>(n);
  auto out = dev.alloc<float>(n);
  std::vector<float> host(n);
  std::iota(host.begin(), host.end(), 0.0f);

  LaunchStats stats;
  r.memcpy_h2d_async(s, in, host);
  r.launch_async(s, Dim3(4), Dim3(64), fast_opts(), &stats,
                 ScaleKernel{3.0f}, in, out);
  std::vector<float> back;
  r.memcpy_d2h_async(s, back, out);
  r.stream_synchronize(s);

  ASSERT_EQ(back.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(back[i], 3.0f * i) << i;
  EXPECT_EQ(stats.grid.x, 4u);  // stats_out filled after completion
  EXPECT_EQ(dev.ledger().transfer_count(), 2u);
}

// ---- Independence across streams ----------------------------------------------

TEST(RtStream, BlockedStreamDoesNotStallOthers) {
  Device dev;
  rt::Runtime r(dev);
  auto a = r.stream_create();
  auto b = r.stream_create();

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<bool> a_done{false};
  r.host_func(a, [opened] { opened.wait(); });
  r.host_func(a, [&a_done] { a_done = true; });

  std::atomic<int> b_count{0};
  for (int k = 0; k < 4; ++k) r.host_func(b, [&b_count] { ++b_count; });
  r.stream_synchronize(b);  // must complete while `a` is still blocked

  EXPECT_EQ(b_count.load(), 4);
  EXPECT_FALSE(a_done.load());
  EXPECT_FALSE(r.stream_query(a));
  EXPECT_TRUE(r.stream_query(b));

  gate.set_value();
  r.stream_synchronize(a);
  EXPECT_TRUE(a_done.load());
}

// ---- Events -------------------------------------------------------------------

TEST(RtEvent, ElapsedTimesArePositiveAndAdditive) {
  Device dev;
  rt::Runtime r(dev);
  auto s = r.stream_create();
  const int n = 128;
  auto in = dev.alloc<float>(n);
  auto out = dev.alloc<float>(n);
  in.fill(1.0f);

  auto e0 = r.event_create();
  auto e1 = r.event_create();
  auto e2 = r.event_create();
  r.event_record(s, e0);
  r.launch_async(s, Dim3(2), Dim3(64), fast_opts(), nullptr, ScaleKernel{},
                 in, out);
  r.event_record(s, e1);
  r.launch_async(s, Dim3(2), Dim3(64), fast_opts(), nullptr, ScaleKernel{},
                 in, out);
  r.event_record(s, e2);
  r.stream_synchronize(s);

  const double d01 = r.event_elapsed_seconds(e0, e1);
  const double d12 = r.event_elapsed_seconds(e1, e2);
  const double d02 = r.event_elapsed_seconds(e0, e2);
  // Each interval spans one kernel, so at least the 15 us launch overhead.
  EXPECT_GT(d01, 0.0);
  EXPECT_GT(d12, 0.0);
  EXPECT_GE(d02, d01);  // monotone along the stream
  EXPECT_DOUBLE_EQ(d02, d01 + d12);
}

TEST(RtEvent, QueryTracksCompletion) {
  Device dev;
  rt::Runtime r(dev);
  auto s = r.stream_create();
  auto e = r.event_create();
  EXPECT_TRUE(r.event_query(e));  // never recorded: trivially complete

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  r.host_func(s, [opened] { opened.wait(); });
  r.event_record(s, e);
  EXPECT_FALSE(r.event_query(e));

  gate.set_value();
  r.stream_synchronize(s);
  EXPECT_TRUE(r.event_query(e));
}

// ---- Copy/compute overlap in the modeled timeline -----------------------------

TEST(RtTimeline, TwoStreamsOverlapCopyAndCompute) {
  Device dev;
  rt::Runtime r(dev);
  auto s0 = r.stream_create();
  auto s1 = r.stream_create();
  const int n = 1 << 18;  // 1 MB per buffer: copies take modeled time
  auto in0 = dev.alloc<float>(n);
  auto out0 = dev.alloc<float>(n);
  auto in1 = dev.alloc<float>(n);
  auto out1 = dev.alloc<float>(n);
  std::vector<float> host(n, 1.0f);

  r.memcpy_h2d_async(s0, in0, host);
  r.launch_async(s0, Dim3(n / 256), Dim3(256), fast_opts(), nullptr,
                 ScaleKernel{}, in0, out0);
  r.memcpy_h2d_async(s1, in1, host);
  r.launch_async(s1, Dim3(n / 256), Dim3(256), fast_opts(), nullptr,
                 ScaleKernel{}, in1, out1);

  const double total = r.modeled_total_seconds();
  const double serial = r.modeled_serialized_seconds();
  // Stream 1's copy runs under stream 0's kernel (one copy engine, one
  // compute engine), so the makespan must be strictly shorter than the
  // fully-serialized sum — the paper's motivation for streams.
  EXPECT_GT(total, 0.0);
  EXPECT_LT(total, serial);

  const Timeline tl = r.timeline_snapshot();
  ASSERT_EQ(tl.spans().size(), 4u);
  EXPECT_DOUBLE_EQ(tl.engine_busy_seconds(TimelineEngine::kCompute) +
                       tl.engine_busy_seconds(TimelineEngine::kCopy),
                   serial);
  const std::string rep = timeline_report(tl);
  EXPECT_NE(rep.find("compute engine"), std::string::npos);
  EXPECT_NE(rep.find("overlap"), std::string::npos);
}

TEST(RtTimeline, ModeledScheduleIsDeterministic) {
  // Same op sequence in two runtimes → bit-identical modeled makespan, no
  // matter how the OS interleaved the stream threads.
  auto run_once = [] {
    Device dev;
    rt::Runtime r(dev);
    auto s0 = r.stream_create();
    auto s1 = r.stream_create();
    const int n = 4096;
    auto in0 = dev.alloc<float>(n);
    auto out0 = dev.alloc<float>(n);
    auto in1 = dev.alloc<float>(n);
    auto out1 = dev.alloc<float>(n);
    std::vector<float> host(n, 2.0f);
    r.memcpy_h2d_async(s0, in0, host);
    r.memcpy_h2d_async(s1, in1, host);
    r.launch_async(s0, Dim3(n / 128), Dim3(128), fast_opts(), nullptr,
                   ScaleKernel{}, in0, out0);
    r.launch_async(s1, Dim3(n / 128), Dim3(128), fast_opts(), nullptr,
                   ScaleKernel{}, in1, out1);
    r.memcpy_d2h_async(s0, host, out0);
    return r.modeled_total_seconds();
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---- Runtime misuse through the structured-error model ------------------------

TEST(RtStatus, OpOnDestroyedStreamIsInvalidResourceHandle) {
  Device dev;
  rt::Runtime r(dev);
  auto s = r.stream_create();
  r.stream_destroy(s);
  const auto [code, msg] =
      catch_status([&] { r.host_func(s, [] {}); });
  EXPECT_EQ(code, Status::kInvalidResourceHandle);
  EXPECT_NE(msg.find("destroyed"), std::string::npos);
  EXPECT_EQ(dev.get_last_error(), Status::kInvalidResourceHandle);
  EXPECT_EQ(dev.peek_last_error(), Status::kSuccess);  // get cleared it
}

TEST(RtStatus, EventAcrossRuntimesIsInvalidDevice) {
  Device dev_a, dev_b;
  rt::Runtime ra(dev_a), rb(dev_b);
  auto sb = rb.stream_create();
  auto ea = ra.event_create();
  const auto [code, msg] = catch_status([&] { rb.event_record(sb, ea); });
  EXPECT_EQ(code, Status::kInvalidDevice);
  EXPECT_EQ(dev_b.get_last_error(), Status::kInvalidDevice);
  EXPECT_EQ(dev_a.peek_last_error(), Status::kSuccess);
}

TEST(RtStatus, PrematureElapsedIsNotReady) {
  Device dev;
  rt::Runtime r(dev);
  auto s = r.stream_create();
  auto e0 = r.event_create();
  auto e1 = r.event_create();

  {  // never recorded
    const auto [code, msg] =
        catch_status([&] { r.event_elapsed_seconds(e0, e1); });
    EXPECT_EQ(code, Status::kNotReady);
  }

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  r.event_record(s, e0);
  r.host_func(s, [opened] { opened.wait(); });
  r.event_record(s, e1);
  {  // recorded but not complete
    const auto [code, msg] =
        catch_status([&] { r.event_elapsed_seconds(e0, e1); });
    EXPECT_EQ(code, Status::kNotReady);
    EXPECT_EQ(dev.get_last_error(), Status::kNotReady);
  }

  gate.set_value();
  r.stream_synchronize(s);
  EXPECT_DOUBLE_EQ(r.event_elapsed_seconds(e0, e1), 0.0);  // host ops: no time
}

TEST(RtStatus, SynchronizeInsideCallbackIsNotPermitted) {
  Device dev;
  rt::Runtime r(dev);
  auto s = r.stream_create();
  r.host_func(s, [&] { r.stream_synchronize(s); });  // would self-deadlock
  const auto [code, msg] = catch_status([&] { r.stream_synchronize(s); });
  EXPECT_EQ(code, Status::kNotPermitted);
  EXPECT_NE(msg.find("callback"), std::string::npos);
  EXPECT_EQ(dev.get_last_error(), Status::kNotPermitted);
}

TEST(RtStatus, AsyncFailureIsStickyAndSkipsLaterOps) {
  Device dev;
  rt::Runtime r(dev);
  auto s = r.stream_create();
  auto out = dev.alloc<float>(8);
  std::atomic<bool> later_ran{false};
  r.launch_async(s, Dim3(1), Dim3(32), fast_opts(), nullptr, OobStoreKernel{},
                 out);
  r.host_func(s, [&later_ran] { later_ran = true; });

  const auto [code, msg] = catch_status([&] { r.stream_synchronize(s); });
  EXPECT_EQ(code, Status::kInvalidAddress);
  EXPECT_FALSE(later_ran.load());  // drained without executing, CUDA-style

  // Sticky: the same failure resurfaces on the next synchronize, and the
  // device still remembers the Status.
  const auto [again, msg2] = catch_status([&] { r.stream_synchronize(s); });
  EXPECT_EQ(again, Status::kInvalidAddress);
  EXPECT_EQ(dev.get_last_error(), Status::kInvalidAddress);

  // An independent stream on the same runtime is unaffected.
  auto s2 = r.stream_create();
  std::atomic<bool> ok{false};
  r.host_func(s2, [&ok] { ok = true; });
  r.stream_synchronize(s2);
  EXPECT_TRUE(ok.load());
}

}  // namespace
}  // namespace g80
