// PR 8 execution-engine rework: the fast fiber switch engine, warp-batched
// block scheduling, the functional fast path, and work-stealing dispatch.
//
// The contract under test everywhere: none of these throughput levers may
// change observable results.  Outputs are bit-identical to the traced
// sequential path, traced stats are bit-identical across schedulers, and
// the fast path is refused whenever an observer needs the instrumented
// passes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "apps/matmul/matmul.h"
#include "apps/suite.h"
#include "common/error.h"
#include "core/app.h"
#include "cudalite/ctx.h"
#include "cudalite/device.h"
#include "cudalite/launch.h"
#include "exec/block_runner.h"
#include "exec/fiber.h"
#include "exec/worker_pool.h"
#include "prof/profiler.h"
#include "scope/session.h"

namespace g80 {
namespace {

// ---- Fiber engines behave identically -----------------------------------------

std::vector<Fiber::Backend> backends_under_test() {
  std::vector<Fiber::Backend> b{Fiber::Backend::kUcontext};
  if (Fiber::fast_backend_supported()) b.push_back(Fiber::Backend::kFast);
  return b;
}

TEST(FiberBackend, YieldOrderAndReuseMatchAcrossEngines) {
  for (Fiber::Backend backend : backends_under_test()) {
    Fiber f(64 * 1024, backend);
    std::vector<int> order;
    f.start([&] {
      order.push_back(1);
      f.yield();
      order.push_back(3);
    });
    order.push_back(0);
    EXPECT_EQ(f.resume(), Fiber::State::kSuspended);
    order.push_back(2);
    EXPECT_EQ(f.resume(), Fiber::State::kDone);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));

    // Re-arm the same fiber (stack reuse) with the raw entry overload.
    struct Box {
      Fiber* fiber;
      int hits = 0;
    } box{&f};
    f.start(
        +[](void* arg) {
          auto* b = static_cast<Box*>(arg);
          ++b->hits;
          b->fiber->yield();
          ++b->hits;
        },
        &box);
    EXPECT_EQ(f.resume(), Fiber::State::kSuspended);
    EXPECT_EQ(box.hits, 1);
    EXPECT_EQ(f.resume(), Fiber::State::kDone);
    EXPECT_EQ(box.hits, 2);
  }
}

TEST(FiberBackend, ExceptionsRethrowOnSchedulerStack) {
  for (Fiber::Backend backend : backends_under_test()) {
    Fiber f(64 * 1024, backend);
    f.start([&] {
      f.yield();
      throw std::runtime_error("late failure");
    });
    EXPECT_EQ(f.resume(), Fiber::State::kSuspended);
    EXPECT_THROW(f.resume(), std::runtime_error);
    EXPECT_EQ(f.state(), Fiber::State::kDone);
  }
}

TEST(FiberBackend, UnsupportedFastRequestDegradesToUcontext) {
  if (Fiber::fast_backend_supported()) {
    Fiber f(64 * 1024, Fiber::Backend::kFast);
    EXPECT_EQ(f.backend(), Fiber::Backend::kFast);
  } else {
    Fiber f(64 * 1024, Fiber::Backend::kFast);
    EXPECT_EQ(f.backend(), Fiber::Backend::kUcontext);
  }
}

// ---- Warp-batched scheduling vs per-lane fallback ------------------------------

// Observer that forces the per-lane scheduling path without changing any
// semantics — the control for batched-vs-fallback comparisons.
class NoopObserver : public BarrierObserver {
 public:
  void on_barrier_release(const BarrierSnapshot& snap) override {
    releases_ += 1;
    waiters_ += static_cast<int>(snap.waiting.size());
  }
  int releases_ = 0;
  int waiters_ = 0;
};

// Each thread loops `trips(tid)` times, accumulating a value and hitting the
// barrier once per trip; threads therefore exit at different generations,
// exercising divergent-termination fallback inside warps.
void run_divergent_block(BlockRunner& r, int threads,
                         std::vector<int>& out, BarrierObserver* obs) {
  out.assign(threads, 0);
  r.set_barrier_observer(obs);
  r.run(threads, [&](int tid) {
    const int trips = 1 + (tid % 5);
    for (int k = 0; k < trips; ++k) {
      out[tid] += tid + k;
      r.sync(tid);
    }
  });
  r.set_barrier_observer(nullptr);
}

TEST(WarpBatching, DivergentExitMatchesObservedPerLanePath) {
  for (Fiber::Backend backend : backends_under_test()) {
    for (int threads : {1, 31, 32, 33, 96, 256}) {
      BlockRunner batched(threads, 16 * 1024, 64 * 1024, backend);
      std::vector<int> fast_out;
      run_divergent_block(batched, threads, fast_out, nullptr);
      const int fast_barriers = batched.barriers_executed();

      BlockRunner observed(threads, 16 * 1024, 64 * 1024, backend);
      std::vector<int> slow_out;
      NoopObserver obs;
      run_divergent_block(observed, threads, slow_out, &obs);

      EXPECT_EQ(fast_out, slow_out) << threads << " threads";
      EXPECT_EQ(fast_barriers, observed.barriers_executed())
          << threads << " threads";
      EXPECT_EQ(obs.releases_, observed.barriers_executed());
    }
  }
}

TEST(WarpBatching, FullyConvergedWarpsKeepBarrierSemantics) {
  const int threads = 64;
  BlockRunner r(threads, 16 * 1024);
  // Classic two-phase shared pattern: phase 2 must see every phase-1 write.
  std::vector<int> seen(threads, 0);
  std::vector<int> phase1(threads, 0);
  r.run(threads, [&](int tid) {
    phase1[tid] = tid + 1;
    r.sync(tid);
    seen[tid] = phase1[(tid + 1) % threads];
  });
  EXPECT_EQ(r.barriers_executed(), 1);
  for (int t = 0; t < threads; ++t)
    EXPECT_EQ(seen[t], (t + 1) % threads + 1) << t;
}

// ---- Launch-level fast path ----------------------------------------------------

struct MatmulSetup {
  Device dev;
  DeviceBuffer<float> a, b, c;
  int n, tile;
  apps::MatmulTiledKernel kernel;

  explicit MatmulSetup(const apps::MatmulWorkload& wl, int n_, int tile_)
      : a(dev.alloc<float>(wl.a.size())),
        b(dev.alloc<float>(wl.b.size())),
        c(dev.alloc<float>(static_cast<std::size_t>(n_) * n_)),
        n(n_),
        tile(tile_),
        kernel{n_, tile_, /*unrolled=*/true} {
    a.copy_from_host(wl.a);
    b.copy_from_host(wl.b);
  }

  LaunchStats go(const LaunchOptions& opt) {
    return launch(dev, Dim3(n / tile, n / tile), Dim3(tile, tile), opt,
                  kernel, a, b, c);
  }
};

TEST(LaunchFastPath, BitIdenticalOutputsAndEmptyStats) {
  const int n = 64, tile = 16;
  const auto wl = apps::MatmulWorkload::generate(n, 7);

  MatmulSetup traced(wl, n, tile);
  LaunchOptions topt;
  topt.regs_per_thread = 9;
  const LaunchStats ts = traced.go(topt);
  const auto ref = traced.c.copy_to_host();
  EXPECT_GT(ts.timing.seconds, 0.0);
  EXPECT_GT(ts.trace.num_blocks, 0);

  for (int workers : {1, 2, 4}) {
    MatmulSetup fast(wl, n, tile);
    WorkerPool pool(workers);
    LaunchOptions fopt;
    fopt.regs_per_thread = 9;
    fopt.fast_path = true;
    fopt.pool = workers > 1 ? &pool : nullptr;
    const LaunchStats fs = fast.go(fopt);
    const auto out = fast.c.copy_to_host();
    ASSERT_EQ(out.size(), ref.size()) << workers << " workers";
    EXPECT_EQ(
        std::memcmp(out.data(), ref.data(), ref.size() * sizeof(float)), 0)
        << workers << " workers";
    // The fast path skips trace/timing entirely...
    EXPECT_EQ(fs.trace.num_blocks, 0) << workers;
    EXPECT_EQ(fs.timing.seconds, 0.0) << workers;
    // ...but occupancy and the shared-memory footprint still come out
    // identical to the traced path (derived without a trace).
    EXPECT_EQ(fs.smem_per_block, ts.smem_per_block) << workers;
    EXPECT_EQ(fs.occupancy.blocks_per_sm, ts.occupancy.blocks_per_sm);
    EXPECT_EQ(fs.occupancy.limiter, ts.occupancy.limiter);
  }
}

TEST(LaunchFastPath, AmbientFastPathEquivalentToOption) {
  const int n = 32, tile = 16;
  const auto wl = apps::MatmulWorkload::generate(n, 11);
  MatmulSetup direct(wl, n, tile);
  LaunchOptions dopt;
  dopt.fast_path = true;
  const LaunchStats ds = direct.go(dopt);
  const auto ref = direct.c.copy_to_host();

  MatmulSetup ambient(wl, n, tile);
  LaunchStats as;
  {
    ScopedFastPath scoped;
    as = ambient.go(LaunchOptions{});
  }
  const auto out = ambient.c.copy_to_host();
  EXPECT_EQ(std::memcmp(out.data(), ref.data(), ref.size() * sizeof(float)),
            0);
  EXPECT_EQ(as.trace.num_blocks, ds.trace.num_blocks);
  EXPECT_EQ(as.timing.seconds, 0.0);
  EXPECT_FALSE(ambient_fast_path()) << "scope must restore the previous value";
}

TEST(LaunchFastPath, RejectedWhileObserversAttached) {
  const int n = 32, tile = 16;
  const auto wl = apps::MatmulWorkload::generate(n, 3);

  // Profiler attached: the traced passes must run (counters derive from
  // them), so timing comes out non-zero despite fast_path.
  {
    MatmulSetup m(wl, n, tile);
    prof::Profiler profiler;
    LaunchOptions opt;
    opt.fast_path = true;
    opt.prof.sink = &profiler;
    opt.prof.kernel_name = "mm";
    const LaunchStats s = m.go(opt);
    EXPECT_GT(s.timing.seconds, 0.0);
    EXPECT_GT(s.trace.num_blocks, 0);
    ASSERT_EQ(profiler.kernels().size(), 1u);
    EXPECT_GT(profiler.kernels().front().launches, 0);
  }
  // Scope session attached: same rejection.
  {
    MatmulSetup m(wl, n, tile);
    scope::Session session;
    LaunchOptions opt;
    opt.fast_path = true;
    opt.scope.sink = &session;
    const LaunchStats s = m.go(opt);
    EXPECT_GT(s.timing.seconds, 0.0);
  }
  // Sanitizer enabled: the sanitize pass (and the trace pass) must run.
  {
    MatmulSetup m(wl, n, tile);
    LaunchOptions opt;
    opt.fast_path = true;
    opt.sanitize.enabled = true;
    const LaunchStats s = m.go(opt);
    EXPECT_GT(s.timing.seconds, 0.0);
    EXPECT_TRUE(s.sanitizer.clean());
  }
}

TEST(LaunchFastPath, ModeledWatchdogStillArmsOneSample) {
  const int n = 64, tile = 16;
  const auto wl = apps::MatmulWorkload::generate(n, 5);
  MatmulSetup m(wl, n, tile);
  LaunchOptions opt;
  opt.fast_path = true;
  opt.resilience.enabled = true;
  opt.resilience.modeled_timeout_s = 1e-12;  // below any real kernel
  opt.resilience.max_retries = 0;
  opt.resilience.allow_fallback = false;
  try {
    m.go(opt);
    FAIL() << "modeled watchdog did not fire under the fast path";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status(), Status::kTimeout);
  }
}

TEST(LaunchFastPath, SuiteOutputsUnchangedUnderFastPathAndPool) {
  const DeviceSpec spec = DeviceSpec::geforce_8800_gtx();
  WorkerPool pool(4);
  for (const auto& app : apps::make_suite()) {
    const std::string name = app->info().name;
    const AppResult seq = app->run(spec, RunScale::kQuick);
    AppResult fast;
    {
      ScopedLaunchPool scoped_pool(&pool);
      ScopedFastPath scoped_fast;
      fast = app->run(spec, RunScale::kQuick);
    }
    // max_rel_err is computed from the GPU outputs against the CPU
    // reference; exact equality means the fast path reproduced every output
    // bit of every launch the app made.
    EXPECT_EQ(seq.validated, fast.validated) << name;
    EXPECT_EQ(seq.max_rel_err, fast.max_rel_err) << name;
    EXPECT_EQ(seq.launches, fast.launches) << name;
  }
}

// ---- Work stealing -------------------------------------------------------------

TEST(WorkStealing, SkewedCostsStillRunEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  const std::uint64_t total = 10000;
  std::vector<std::atomic<int>> hits(total);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(total, [&](int slot, std::uint64_t i) {
    // Heavy head: the first shard costs far more than the rest, so the
    // other slots drain and must steal from it to finish.
    if (i < total / 8) {
      volatile std::uint64_t sink = 0;
      for (int k = 0; k < 2000; ++k) sink += k;
    }
    hits[i].fetch_add(1);
  });
  for (std::uint64_t i = 0; i < total; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(WorkStealing, LowestIndexExceptionWinsAcrossShards) {
  WorkerPool pool(4);
  for (int trial = 0; trial < 3; ++trial) {
    try {
      pool.parallel_for(512, [&](int, std::uint64_t i) {
        if (i % 100 == 7) {
          throw std::runtime_error("boom at " + std::to_string(i));
        }
      });
      FAIL() << "no exception propagated";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 7");
    }
  }
}

TEST(WorkStealing, TracedStatsDeterministicAcrossRuns) {
  const int n = 64, tile = 16;
  const auto wl = apps::MatmulWorkload::generate(n, 9);
  auto run = [&](WorkerPool* pool) {
    MatmulSetup m(wl, n, tile);
    LaunchOptions opt;
    opt.regs_per_thread = 9;
    opt.sample_blocks = 16;  // trace every block: full merge coverage
    opt.pool = pool;
    return m.go(opt);
  };
  const LaunchStats seq = run(nullptr);
  for (int trial = 0; trial < 3; ++trial) {
    WorkerPool pool(4);
    const LaunchStats par = run(&pool);
    EXPECT_EQ(par.trace.total.ops.counts, seq.trace.total.ops.counts);
    EXPECT_EQ(par.trace.total.lane_flops, seq.trace.total.lane_flops);
    EXPECT_EQ(par.trace.total.global.bytes, seq.trace.total.global.bytes);
    EXPECT_EQ(par.timing.kernel_cycles, seq.timing.kernel_cycles);
    EXPECT_EQ(par.timing.seconds, seq.timing.seconds);
  }
}

}  // namespace
}  // namespace g80
