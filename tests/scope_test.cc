// g80scope conservation and integration tests.
//
// The scope's defining property is that it invents nothing: every bucket
// series is a re-expansion of the aggregate timing model, so summing buckets
// over SMs must reproduce the launch totals, the totals must agree with
// g80prof's extrapolated counters and the timing model's DRAM byte count,
// and the per-line attribution table must reconcile with the same totals.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "apps/matmul/matmul.h"
#include "core/advisor.h"
#include "core/report.h"
#include "cudalite/device.h"
#include "prof/counters.h"
#include "scope/chrome_counters.h"
#include "scope/scope_json.h"
#include "scope/session.h"
#include "timing/timeline.h"

namespace g80 {
namespace {

using apps::MatmulVariant;
using apps::run_matmul;

double sum(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x;
  return s;
}

// Relative error with an absolute floor of 1 (cycle counts are large).
double rel(double got, double want) {
  return std::abs(got - want) / std::max(1.0, std::abs(want));
}

struct ScopeFixture : public ::testing::Test {
  ScopeFixture()
      : da(dev.alloc<float>(n * n)), db(dev.alloc<float>(n * n)),
        dc(dev.alloc<float>(n * n)),
        stats(run_matmul(dev, {MatmulVariant::kTiledUnrolled, 16},
                         static_cast<int>(n), da, db, dc, false, nullptr,
                         &session)) {}

  Device dev;
  scope::Session session;
  static constexpr std::size_t n = 1024;
  DeviceBuffer<float> da, db, dc;
  LaunchStats stats;
};

TEST_F(ScopeFixture, BucketSeriesConserveLaunchTotals) {
  ASSERT_EQ(session.size(), 1u);
  const auto launches = session.launches();  // launches() returns a copy
  const scope::KernelScope& sc = launches.front().scope;
  const scope::ScopeTotals& tot = sc.totals;
  ASSERT_GT(sc.num_buckets, 0);
  ASSERT_EQ(sc.sms.size(), static_cast<std::size_t>(dev.spec().num_sms));

  double issue = 0, ser = 0, unc = 0, mem = 0, bar = 0, ins = 0, dram = 0;
  for (const auto& sm : sc.sms) {
    issue += sum(sm.issue_cycles);
    ser += sum(sm.serialization_cycles);
    unc += sum(sm.uncoalesced_cycles);
    mem += sum(sm.mem_stall_cycles);
    bar += sum(sm.barrier_cycles);
    ins += sum(sm.instructions);
    dram += sum(sm.dram_bytes);
  }
  EXPECT_LT(rel(issue, tot.issue_cycles), 1e-9);
  EXPECT_LT(rel(ser, tot.serialization_cycles), 1e-9);
  EXPECT_LT(rel(unc, tot.uncoalesced_cycles), 1e-9);
  EXPECT_LT(rel(mem, tot.mem_stall_cycles), 1e-9);
  EXPECT_LT(rel(bar, tot.barrier_cycles), 1e-9);
  EXPECT_LT(rel(ins, tot.instructions), 1e-9);
  EXPECT_LT(rel(dram, tot.dram_bytes), 1e-9);
  EXPECT_LT(rel(sum(sc.device_dram_bytes), tot.dram_bytes), 1e-9);
}

TEST_F(ScopeFixture, TotalsAgreeWithProfCountersAndTimingModel) {
  const auto launches = session.launches();
  const scope::ScopeTotals& tot = launches.front().scope.totals;
  const prof::KernelCounters c = prof::derive_counters(dev.spec(), stats);
  EXPECT_LT(rel(tot.instructions,
                static_cast<double>(c.instructions) * c.grid_scale()),
            1e-9);
  EXPECT_LT(rel(tot.dram_bytes,
                static_cast<double>(c.dram_bytes) * c.grid_scale()),
            1e-9);
  EXPECT_LT(rel(tot.dram_bytes, stats.timing.total_dram_bytes), 1e-9);
}

TEST_F(ScopeFixture, SiteTableReconcilesWithTotals) {
  const auto launches = session.launches();
  const scope::KernelScope& sc = launches.front().scope;
  ASSERT_FALSE(sc.sites.empty());
  double unc = 0, ser = 0, bar = 0, mem = 0;
  for (const auto& s : sc.sites) {
    unc += s.uncoalesced_cycles;
    ser += s.serialization_cycles;
    bar += s.barrier_cycles;
    mem += s.mem_stall_cycles;
  }
  EXPECT_LT(rel(unc, sc.totals.uncoalesced_cycles), 1e-9);
  EXPECT_LT(rel(ser, sc.totals.serialization_cycles), 1e-9);
  EXPECT_LT(rel(bar, sc.totals.barrier_cycles), 1e-9);
  EXPECT_LT(rel(mem, sc.totals.mem_stall_cycles), 1e-9);
  // Every site carries a real source position from the recorder.
  for (const auto& s : sc.sites) {
    EXPECT_FALSE(s.file.empty());
    EXPECT_GT(s.line, 0u);
  }
}

TEST_F(ScopeFixture, OccupancyMatchesModelDuringFullWaves) {
  const auto launches = session.launches();
  const scope::KernelScope& sc = launches.front().scope;
  const double expected =
      static_cast<double>(stats.occupancy.active_warps_per_sm) /
      (dev.spec().max_threads_per_sm / dev.spec().warp_size);
  // The first bucket lies inside the first full wave on every SM.
  for (const auto& sm : sc.sms) {
    ASSERT_FALSE(sm.occupancy.empty());
    EXPECT_NEAR(sm.occupancy.front(), expected, 1e-9);
  }
}

TEST_F(ScopeFixture, DerivationIsDeterministic) {
  const scope::KernelScope a =
      scope::derive_scope(dev.spec(), stats.occupancy, stats.grid.count(),
                          stats.trace, stats.timing);
  const scope::KernelScope b =
      scope::derive_scope(dev.spec(), stats.occupancy, stats.grid.count(),
                          stats.trace, stats.timing);
  ASSERT_EQ(a.num_buckets, b.num_buckets);
  ASSERT_EQ(a.sms.size(), b.sms.size());
  for (std::size_t i = 0; i < a.sms.size(); ++i) {
    EXPECT_EQ(a.sms[i].issue_cycles, b.sms[i].issue_cycles);
    EXPECT_EQ(a.sms[i].mem_stall_cycles, b.sms[i].mem_stall_cycles);
    EXPECT_EQ(a.sms[i].dram_bytes, b.sms[i].dram_bytes);
  }
}

TEST_F(ScopeFixture, DramUtilizationIsBoundedByCeiling) {
  const auto launches = session.launches();
  const scope::KernelScope& sc = launches.front().scope;
  ASSERT_FALSE(sc.dram_utilization.empty());
  double peak = 0;
  for (double u : sc.dram_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
    peak = std::max(peak, u);
  }
  EXPECT_GT(peak, 0.0);  // the kernel does move DRAM traffic
}

TEST_F(ScopeFixture, ScopeReportListsCostliestLines) {
  const std::string r = scope_report(dev.spec(), session);
  EXPECT_NE(r.find("g80scope session"), std::string::npos);
  EXPECT_NE(r.find("costliest lines"), std::string::npos);
  // The table cites the matmul kernel's source file.
  EXPECT_NE(r.find("matmul"), std::string::npos);
}

TEST_F(ScopeFixture, AdvisorCitesHotLines) {
  // The naive kernel triggers coalescing/bandwidth advice; with a scope it
  // must point at a concrete source line.
  scope::Session naive_scope;
  const auto naive =
      run_matmul(dev, {MatmulVariant::kNaive, 16}, static_cast<int>(n), da,
                 db, dc, false, nullptr, &naive_scope);
  ASSERT_EQ(naive_scope.size(), 1u);
  const auto advice =
      advise(dev.spec(), naive, naive_scope.launches().front().scope);
  ASSERT_FALSE(advice.empty());
  bool cited = false;
  for (const auto& a : advice) {
    if (a.message.find("[hot line: ") != std::string::npos) cited = true;
  }
  EXPECT_TRUE(cited);
}

TEST_F(ScopeFixture, JsonAndCsvExportsAreWellFormed) {
  const std::string js = scope_json(session, dev.spec());
  EXPECT_NE(js.find("\"schema\":\"g80scope-series\""), std::string::npos);
  EXPECT_NE(js.find("\"device_spec_hash\""), std::string::npos);
  EXPECT_NE(js.find("\"sites\""), std::string::npos);

  const std::string csv = scope_csv(session);
  EXPECT_NE(csv.find("launch_id,kernel,stream,sm,bucket"), std::string::npos);
  // Header plus at least one row per SM.
  const auto rows = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_GT(rows, dev.spec().num_sms);
}

TEST_F(ScopeFixture, ChromeTraceCarriesCounterTracks) {
  // Stamp a compute span with the launch's scope id, as g80rt does, and the
  // exporter must emit per-SM counter tracks aligned under it.
  Timeline tl;
  const auto rec = session.launches().front();
  tl.schedule(/*stream=*/0, TimelineEngine::kCompute,
              rec.scope.horizon_seconds(dev.spec()), "matmul", {}, rec.id);
  const std::string trace =
      scope::chrome_trace_with_counters(tl, session, dev.spec());
  EXPECT_NE(trace.find("SM00 stalls"), std::string::npos);
  EXPECT_NE(trace.find("SM00 occupancy"), std::string::npos);
  EXPECT_NE(trace.find("DRAM utilization"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(trace.find("\"provenance\""), std::string::npos);
}

TEST(ScopeEdge, ZeroLaunchSessionReportsCleanly) {
  Device dev;
  scope::Session empty;
  const std::string r = scope_report(dev.spec(), empty);
  EXPECT_NE(r.find("0 launch(es)"), std::string::npos);
  EXPECT_NE(r.find("no attributed stalls"), std::string::npos);
  const std::string js = scope_json(empty, dev.spec());
  EXPECT_NE(js.find("\"launches\":[]"), std::string::npos);
  // No raw non-finite tokens in value position ("provenance" contains "nan").
  EXPECT_EQ(js.find(":nan"), std::string::npos);
  EXPECT_EQ(js.find(":inf"), std::string::npos);
}

}  // namespace
}  // namespace g80
