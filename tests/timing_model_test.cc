// Tests for the ISA cost tables and the analytical timing model, using
// hand-constructed warp traces with known expectations.
#include <gtest/gtest.h>

#include "common/error.h"
#include "hw/isa.h"
#include "occupancy/occupancy.h"
#include "timing/model.h"
#include "timing/trace.h"

namespace g80 {
namespace {

const DeviceSpec kSpec = DeviceSpec::geforce_8800_gtx();

// ---- ISA cost tables ----------------------------------------------------------

TEST(Isa, IssueCosts) {
  EXPECT_DOUBLE_EQ(issue_cycles(OpClass::kFMad, kSpec), 4.0);   // 32 lanes / 8 SPs
  EXPECT_DOUBLE_EQ(issue_cycles(OpClass::kSfu, kSpec), 16.0);   // 32 / 2 SFUs
  EXPECT_DOUBLE_EQ(issue_cycles(OpClass::kIMul, kSpec), 16.0);  // microcoded
  EXPECT_DOUBLE_EQ(issue_cycles(OpClass::kLoadGlobal, kSpec), 4.0);
}

TEST(Isa, FlopsPerLane) {
  EXPECT_DOUBLE_EQ(flops_per_lane(OpClass::kFMad), 2.0);
  EXPECT_DOUBLE_EQ(flops_per_lane(OpClass::kFAdd), 1.0);
  EXPECT_DOUBLE_EQ(flops_per_lane(OpClass::kIAlu), 0.0);
  EXPECT_DOUBLE_EQ(flops_per_lane(OpClass::kLoadGlobal), 0.0);
}

TEST(Isa, PeakNumbersMatchPaper) {
  EXPECT_NEAR(kSpec.peak_mad_gflops(), 345.6, 0.01);       // §1
  EXPECT_NEAR(kSpec.peak_gflops_with_sfu(), 388.8, 0.01);  // §3.2
  EXPECT_EQ(kSpec.total_sps(), 128);
  EXPECT_EQ(kSpec.max_active_threads(), 12288);
  EXPECT_EQ(kSpec.max_warps_per_sm(), 24);
}

TEST(Isa, OpCountsAggregation) {
  OpCounts a, b;
  a[OpClass::kFMad] = 10;
  a[OpClass::kIAlu] = 5;
  b[OpClass::kFMad] = 3;
  a += b;
  EXPECT_EQ(a[OpClass::kFMad], 13u);
  EXPECT_EQ(a.total(), 18u);
  EXPECT_DOUBLE_EQ(a.flops(), 26.0);
  EXPECT_DOUBLE_EQ(a.warp_issue_cycles(kSpec), 18 * 4.0);
}

// ---- Trace helpers --------------------------------------------------------------

// A warp executing `mads` fused multiply-adds and `loads` fully coalesced
// global loads (64 B per half-warp).
WarpTrace make_warp(std::uint64_t mads, std::uint64_t loads,
                    std::uint64_t syncs = 0) {
  WarpTrace w;
  w.ops[OpClass::kFMad] = mads;
  w.ops[OpClass::kLoadGlobal] = loads;
  w.ops[OpClass::kSync] = syncs;
  w.lane_flops = static_cast<double>(mads) * 32 * 2;
  w.global_instructions = loads;
  w.global.transactions = loads * 2;
  w.global.bytes = loads * 128;
  w.useful_global_bytes = loads * 128;
  w.coalesced_instructions = loads;
  return w;
}

TraceSummary summary_of(const WarpTrace& w, int warps_per_block, int blocks) {
  std::vector<BlockTrace> bt(blocks);
  for (auto& b : bt) b.warps.assign(warps_per_block, w);
  return TraceSummary::summarize(bt);
}

// ---- Timing model ---------------------------------------------------------------

TEST(TimingModel, PureComputeKernelHitsIssueFloor) {
  // 10000 MADs, no memory: wave time == issue cycles x resident warps;
  // achieved GFLOPS == peak MAD throughput.
  const auto occ = compute_occupancy(kSpec, {10, 0, 256});
  const auto s = summary_of(make_warp(10000, 0), 8, 2);
  const auto t = simulate_kernel(kSpec, occ, /*blocks=*/4800, s);
  EXPECT_EQ(t.bottleneck, Bottleneck::kInstructionIssue);
  EXPECT_NEAR(t.gflops, kSpec.peak_mad_gflops(), 1.0);
  EXPECT_NEAR(t.wave_cycles, 10000 * 4.0 * 24, 1e-6);
}

TEST(TimingModel, StreamingKernelHitsBandwidthFloor) {
  // 1 MAD per 3 coalesced loads: SAXPY-like, must be DRAM-bound and achieve
  // close to effective bandwidth.
  const auto occ = compute_occupancy(kSpec, {5, 0, 256});
  const auto s = summary_of(make_warp(1000, 3000), 8, 3);
  const auto t = simulate_kernel(kSpec, occ, 4800, s);
  EXPECT_EQ(t.bottleneck, Bottleneck::kGlobalBandwidth);
  EXPECT_NEAR(t.dram_gbs, kSpec.dram_bandwidth_gbs * kSpec.dram_efficiency,
              5.0);
}

TEST(TimingModel, FewWarpsExposeLatency) {
  // One 32-thread block per SM (1 warp resident): long-latency loads cannot
  // be hidden, so the latency-bound term dominates the issue floor.
  const auto occ = compute_occupancy(kSpec, {200, 0, 32});
  ASSERT_EQ(occ.active_warps_per_sm, 1);
  const auto s = summary_of(make_warp(100, 100), 1, 4);
  const auto t = simulate_kernel(kSpec, occ, 1600, s);
  EXPECT_EQ(t.bottleneck, Bottleneck::kGlobalLatency);
  EXPECT_GT(t.latency_bound_cycles, t.issue_floor_cycles);
}

TEST(TimingModel, MoreWarpsHideLatencyBetter) {
  // Same per-warp work; occupancy 1 warp vs 24 warps.  Normalized per-warp
  // time must improve with more warps.
  const auto w = make_warp(200, 50);
  const auto occ_low = compute_occupancy(kSpec, {200, 0, 32});
  const auto occ_high = compute_occupancy(kSpec, {10, 0, 256});
  const auto t_low =
      simulate_kernel(kSpec, occ_low, 16 * 1 * 4, summary_of(w, 1, 4));
  const auto t_high =
      simulate_kernel(kSpec, occ_high, 16 * 3 * 8 * 4, summary_of(w, 8, 4));
  // Both process warps proportional to resident count; compare per-warp cost.
  const double per_warp_low = t_low.wave_cycles / 1.0;
  const double per_warp_high = t_high.wave_cycles / 24.0;
  EXPECT_LT(per_warp_high, per_warp_low);
}

TEST(TimingModel, UnderfilledGridFlagged) {
  const auto occ = compute_occupancy(kSpec, {10, 0, 256});
  const auto s = summary_of(make_warp(1000, 10), 8, 2);
  const auto t = simulate_kernel(kSpec, occ, /*blocks=*/2, s);
  EXPECT_EQ(t.bottleneck, Bottleneck::kIdle);
}

TEST(TimingModel, WavesScaleLinearly) {
  const auto occ = compute_occupancy(kSpec, {10, 0, 256});
  const auto s = summary_of(make_warp(1000, 10), 8, 2);
  const auto t1 = simulate_kernel(kSpec, occ, 48, s);    // one wave (3x16)
  const auto t4 = simulate_kernel(kSpec, occ, 192, s);   // four waves
  EXPECT_NEAR(t4.seconds / t1.seconds, 4.0, 1e-9);
}

TEST(TimingModel, ScatteredTrafficSlowerThanCoalesced) {
  const auto occ = compute_occupancy(kSpec, {10, 0, 256});
  WarpTrace coalesced = make_warp(100, 500);
  WarpTrace scattered = make_warp(100, 500);
  // Same useful bytes, but serialized into 16 transactions per half-warp.
  scattered.global.transactions = 500 * 32;
  scattered.global.bytes = 500 * 32 * 32;
  scattered.global.scattered_bytes = scattered.global.bytes;
  scattered.coalesced_instructions = 0;
  const auto tc = simulate_kernel(kSpec, occ, 480, summary_of(coalesced, 8, 2));
  const auto ts = simulate_kernel(kSpec, occ, 480, summary_of(scattered, 8, 2));
  EXPECT_GT(ts.seconds, 5.0 * tc.seconds);
}

TEST(TimingModel, BankConflictsAddIssueCycles) {
  const auto occ = compute_occupancy(kSpec, {10, 0, 256});
  WarpTrace clean = make_warp(1000, 0);
  clean.ops[OpClass::kLoadShared] = 1000;
  WarpTrace conflicted = clean;
  conflicted.shared_extra_passes = 15000;  // 16-way conflicts throughout
  const auto tc = simulate_kernel(kSpec, occ, 480, summary_of(clean, 8, 2));
  const auto tf =
      simulate_kernel(kSpec, occ, 480, summary_of(conflicted, 8, 2));
  EXPECT_NEAR(tf.wave_cycles / tc.wave_cycles, (2000 + 15000.0) / 2000.0, 0.01);
}

TEST(TimingModel, SfuHeavyKernelSlowerPerInstruction) {
  const auto occ = compute_occupancy(kSpec, {10, 0, 256});
  WarpTrace sp = make_warp(1000, 0);
  WarpTrace sfu;
  sfu.ops[OpClass::kSfu] = 1000;
  sfu.lane_flops = 1000.0 * 32;
  const auto t_sp = simulate_kernel(kSpec, occ, 480, summary_of(sp, 8, 2));
  const auto t_sfu = simulate_kernel(kSpec, occ, 480, summary_of(sfu, 8, 2));
  EXPECT_NEAR(t_sfu.wave_cycles / t_sp.wave_cycles, 4.0, 1e-6);  // 16 vs 4 cyc
}

TEST(TimingModel, MemToComputeRatioReported) {
  const auto occ = compute_occupancy(kSpec, {10, 0, 256});
  const auto t_light =
      simulate_kernel(kSpec, occ, 480, summary_of(make_warp(10000, 10), 8, 2));
  const auto t_heavy =
      simulate_kernel(kSpec, occ, 480, summary_of(make_warp(10, 100), 8, 2));
  EXPECT_LT(t_light.mem_to_compute_ratio, 0.2);
  EXPECT_GT(t_heavy.mem_to_compute_ratio, 10.0);
}

TEST(TimingModel, TransferModel) {
  // 16 MB at 3.2 GB/s + fixed latency.
  const double secs = transfer_seconds(kSpec, 16ull << 20, 1);
  EXPECT_NEAR(secs, 15e-6 + (16.0 * 1024 * 1024) / 3.2e9, 1e-9);
  // Many small transfers pay the per-call latency many times over.
  EXPECT_GT(transfer_seconds(kSpec, 1 << 20, 1000),
            10 * transfer_seconds(kSpec, 1 << 20, 1));
}

TEST(TimingModel, RejectsEmptyTrace) {
  const auto occ = compute_occupancy(kSpec, {10, 0, 256});
  TraceSummary empty;
  EXPECT_THROW(simulate_kernel(kSpec, occ, 1, empty), Error);
}

// ---- TraceSummary arithmetic -----------------------------------------------------

TEST(TraceSummary, MeansAndFractions) {
  const auto s = summary_of(make_warp(100, 25), 4, 3);
  EXPECT_EQ(s.num_warps, 12u);
  EXPECT_EQ(s.num_blocks, 3u);
  EXPECT_DOUBLE_EQ(s.warps_per_block(), 4.0);
  EXPECT_DOUBLE_EQ(s.mean_global_instructions(), 25.0);
  EXPECT_DOUBLE_EQ(s.transactions_per_mem_inst(), 2.0);
  EXPECT_DOUBLE_EQ(s.coalesced_fraction(), 1.0);
  EXPECT_NEAR(s.fmad_fraction(), 100.0 / 125.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.divergent_branch_fraction(), 0.0);
}

}  // namespace
}  // namespace g80
