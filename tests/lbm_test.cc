// LBM property tests: layout equivalence, physical conservation laws, and
// the Figure 5 coalescing relationships.
#include <gtest/gtest.h>

#include <numeric>

#include "apps/lbm/lbm.h"
#include "common/stats.h"
#include "cudalite/device.h"

namespace g80 {
namespace {

using namespace apps;

LbmParams small_params() {
  LbmParams p;
  p.nx = 128;
  p.ny = 4;
  p.nz = 2;
  p.steps = 3;
  return p;
}

double total_mass(const std::vector<float>& f) {
  return std::accumulate(f.begin(), f.end(), 0.0);
}

TEST(Lbm, VelocitySetIsConsistent) {
  // Weights sum to 1; velocity moments vanish (isotropy conditions).
  double wsum = 0, ex = 0, ey = 0, ez = 0;
  for (int q = 0; q < kLbmQ; ++q) {
    wsum += kLbmW[q];
    ex += kLbmW[q] * kLbmEx[q];
    ey += kLbmW[q] * kLbmEy[q];
    ez += kLbmW[q] * kLbmEz[q];
  }
  EXPECT_NEAR(wsum, 1.0, 1e-6);
  EXPECT_NEAR(ex, 0.0, 1e-7);
  EXPECT_NEAR(ey, 0.0, 1e-7);
  EXPECT_NEAR(ez, 0.0, 1e-7);
  // Every velocity has an opposite in the set.
  for (int q = 0; q < kLbmQ; ++q) {
    bool found = false;
    for (int p = 0; p < kLbmQ; ++p)
      found |= kLbmEx[p] == -kLbmEx[q] && kLbmEy[p] == -kLbmEy[q] &&
               kLbmEz[p] == -kLbmEz[q];
    EXPECT_TRUE(found) << "q=" << q;
  }
  // x-slot table covers exactly the x-moving distributions.
  int slots = 0;
  for (int q = 0; q < kLbmQ; ++q) {
    EXPECT_EQ(kLbmXSlot[q] >= 0, kLbmEx[q] != 0) << "q=" << q;
    slots += kLbmXSlot[q] >= 0 ? 1 : 0;
  }
  EXPECT_EQ(slots, kLbmXRows);
}

TEST(Lbm, CpuConservesMassAndMomentum) {
  const auto p = small_params();
  auto w = LbmWorkload::generate(p);
  const double mass0 = total_mass(w.f0);
  std::vector<float> f = w.f0, tmp;
  lbm_cpu(p, f, tmp);
  // BGK collision conserves density and (with periodic walls) momentum.
  EXPECT_NEAR(total_mass(f) / mass0, 1.0, 1e-5);
}

TEST(Lbm, ShearWaveDecays) {
  // The sinusoidal u_y(x) profile must decay monotonically (viscous damping)
  // without changing sign pattern — a physical sanity check on the solver.
  const auto p = small_params();
  auto w = LbmWorkload::generate(p);
  const std::size_t cells = p.cells();

  auto uy_amplitude = [&](const std::vector<float>& f) {
    double amp = 0;
    for (std::size_t c = 0; c < cells; ++c) {
      double uy = 0, rho = 0;
      for (int q = 0; q < kLbmQ; ++q) {
        const double fq = f[static_cast<std::size_t>(q) * cells + c];
        rho += fq;
        uy += kLbmEy[q] * fq;
      }
      amp = std::max(amp, std::abs(uy / rho));
    }
    return amp;
  };

  const double amp0 = uy_amplitude(w.f0);
  std::vector<float> f = w.f0, tmp;
  LbmParams p10 = p;
  p10.steps = 10;
  lbm_cpu(p10, f, tmp);
  const double amp1 = uy_amplitude(f);
  EXPECT_LT(amp1, amp0);
  EXPECT_GT(amp1, 0.2 * amp0);  // but not collapsed to zero in 10 steps
}

class LbmLayouts : public ::testing::TestWithParam<LbmLayout> {};

TEST_P(LbmLayouts, MatchesCpuReference) {
  const auto p = small_params();
  const auto w = LbmWorkload::generate(p);
  std::vector<float> f_ref = w.f0, tmp;
  lbm_cpu(p, f_ref, tmp);

  Device dev;
  std::vector<float> f_gpu;
  lbm_gpu(dev, p, GetParam(), w.f0, f_gpu, nullptr);
  double err = 0;
  for (std::size_t i = 0; i < f_ref.size(); ++i)
    err = std::max(err, rel_err(f_gpu[i], f_ref[i], 1e-3));
  EXPECT_LT(err, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, LbmLayouts,
                         ::testing::Values(LbmLayout::kAoS, LbmLayout::kSoA,
                                           LbmLayout::kSoAStaged));

TEST(Lbm, Figure5CoalescingOrder) {
  const auto p = small_params();
  const auto w = LbmWorkload::generate(p);

  auto stats_for = [&](LbmLayout layout) {
    Device dev;
    std::vector<float> out;
    return lbm_gpu(dev, p, layout, w.f0, out, nullptr);
  };
  const auto aos = stats_for(LbmLayout::kAoS);
  const auto soa = stats_for(LbmLayout::kSoA);
  const auto staged = stats_for(LbmLayout::kSoAStaged);

  // Coalesced fraction: AoS 0 < SoA < staged.
  EXPECT_DOUBLE_EQ(aos.trace.coalesced_fraction(), 0.0);
  EXPECT_GT(soa.trace.coalesced_fraction(), 0.5);
  EXPECT_GT(staged.trace.coalesced_fraction(), soa.trace.coalesced_fraction());
  // Overfetch: AoS pays ~8x; staged close to 1.
  EXPECT_GT(static_cast<double>(aos.trace.total.global.bytes) /
                static_cast<double>(aos.trace.total.useful_global_bytes),
            4.0);
  EXPECT_LT(static_cast<double>(staged.trace.total.global.bytes) /
                static_cast<double>(staged.trace.total.useful_global_bytes),
            1.5);
  // Modeled time: AoS is far slowest; staged ties-or-beats the misaligned
  // SoA layout.  (At LBM's one-block-per-SM occupancy both SoA variants are
  // memory-latency bound, so the staging win shows up in the access-pattern
  // metrics more than in time — consistent with LBM's modest speedup in the
  // paper's Table 3.)
  EXPECT_LT(staged.timing.seconds, 0.25 * aos.timing.seconds);
  EXPECT_LT(staged.timing.seconds, 1.10 * soa.timing.seconds);
  EXPECT_LT(soa.timing.seconds, aos.timing.seconds);
}

TEST(Lbm, SharedMemoryCapsOccupancy) {
  // The paper's Table 3 lists LBM as shared-memory-capacity limited.
  const auto p = small_params();
  const auto w = LbmWorkload::generate(p);
  Device dev;
  std::vector<float> out;
  const auto stats = lbm_gpu(dev, p, LbmLayout::kSoAStaged, w.f0, out, nullptr);
  EXPECT_EQ(stats.occupancy.limiter, OccupancyLimit::kSharedMem);
  EXPECT_EQ(stats.occupancy.blocks_per_sm, 1);
}

}  // namespace
}  // namespace g80
