// JsonWriter edge cases: escaping, non-finite doubles, empty containers,
// nesting discipline.  Every machine-readable artifact in the repo (g80prof
// JSON, Chrome traces, g80scope series, bench results) rides on this writer,
// so its corner behaviour is contract, not implementation detail.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/error.h"
#include "common/json.h"

namespace g80 {
namespace {

TEST(JsonEscape, ControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape("cr\rlf"), "cr\\rlf");
}

TEST(JsonEscape, EmbeddedControlBytesAreUnicodeEscaped) {
  // Control bytes below 0x20 without a shorthand must become \u00XX, not
  // leak through raw (raw control bytes make the document unparseable).
  // (Split literal: "\x01b" would parse as the single hex escape 0x1b.)
  const std::string s = json_escape(std::string("a\x01" "b"));
  EXPECT_EQ(s, "a\\u0001b");
}

TEST(JsonWriter, EmptyObjectAndArray) {
  {
    JsonWriter w;
    w.begin_object().end_object();
    EXPECT_EQ(w.str(), "{}");
  }
  {
    JsonWriter w;
    w.begin_array().end_array();
    EXPECT_EQ(w.str(), "[]");
  }
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("rows");
  w.begin_array();
  w.begin_object().kv("n", 1).end_object();
  w.begin_object().kv("n", 2).end_object();
  w.end_array();
  w.key("empty");
  w.begin_array().end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"rows":[{"n":1},{"n":2}],"empty":[]})");
}

TEST(JsonWriter, NonFiniteDoublesRenderNull) {
  JsonWriter w;
  w.begin_object();
  w.kv("nan", std::numeric_limits<double>::quiet_NaN());
  w.kv("inf", std::numeric_limits<double>::infinity());
  w.kv("ninf", -std::numeric_limits<double>::infinity());
  w.kv("finite", 1.5);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"nan":null,"inf":null,"ninf":null,"finite":1.5})");
}

TEST(JsonWriter, StringValuesAreEscaped) {
  JsonWriter w;
  w.begin_object();
  w.kv("k\"1", std::string_view("v\n2"));
  w.end_object();
  EXPECT_EQ(w.str(), "{\"k\\\"1\":\"v\\n2\"}");
}

TEST(JsonWriter, MisnestingThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), Error);
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), Error);  // key outside an object
  }
  {
    JsonWriter w;
    w.begin_object();
    w.key("a");
    EXPECT_THROW(w.key("b"), Error);  // two keys in a row
  }
}

TEST(JsonWriter, TopLevelScalarAndCompletionCheck) {
  JsonWriter w;
  w.begin_object();
  // Unbalanced document: str() must refuse rather than emit garbage.
  EXPECT_THROW(w.str(), Error);
}


// --- JsonValue (parser) -----------------------------------------------------

TEST(JsonValue, ScalarKindsAndAccessors) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_EQ(JsonValue::parse("true").as_bool(), true);
  EXPECT_EQ(JsonValue::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-2.5e2").as_number(), -250.0);
  EXPECT_EQ(JsonValue::parse("42").as_int(), 42);
  EXPECT_EQ(JsonValue::parse("\"hi\\n\"").as_string(), "hi\n");
  // Wrong-kind access fails fast.
  EXPECT_THROW(JsonValue::parse("7").as_string(), Error);
  EXPECT_THROW(JsonValue::parse("\"x\"").as_number(), Error);
  // Non-integral numbers refuse as_int: grid sizes cannot truncate.
  EXPECT_THROW(JsonValue::parse("1.5").as_int(), Error);
}

TEST(JsonValue, AsIntRejectsOutOfRangeNumbers) {
  // Out-of-range doubles must throw, not hit undefined float->int casts.
  EXPECT_THROW(JsonValue::parse("1e19").as_int(), Error);
  EXPECT_THROW(JsonValue::parse("-1e19").as_int(), Error);
  EXPECT_THROW(JsonValue::parse("9223372036854775808").as_int(), Error);
  // The largest doubles inside the window still convert exactly.
  EXPECT_EQ(JsonValue::parse("9223372036854774784").as_int(),
            9223372036854774784LL);
  EXPECT_EQ(JsonValue::parse("-9223372036854775808").as_int(),
            std::numeric_limits<std::int64_t>::min());
}

TEST(JsonValue, ObjectMembersStayInInputOrder) {
  const JsonValue v = JsonValue::parse("{\"b\":1,\"a\":2,\"c\":3}");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.members()[0].first, "b");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "c");
  EXPECT_EQ(v.require("a").as_int(), 2);
  EXPECT_EQ(v.get("missing"), nullptr);
  EXPECT_THROW(v.require("missing"), Error);
  EXPECT_EQ(v.get_int("a", -1), 2);
  EXPECT_EQ(v.get_int("missing", -1), -1);
}

TEST(JsonValue, DuplicateKeysRejected) {
  EXPECT_THROW(JsonValue::parse("{\"a\":1,\"a\":2}"), Error);
}

TEST(JsonValue, TrailingDataAndDepthLimitRejected) {
  EXPECT_THROW(JsonValue::parse("1 2"), Error);
  EXPECT_THROW(JsonValue::parse("{} x"), Error);
  std::string deep;
  for (int i = 0; i < 80; ++i) deep += '[';
  deep += "1";
  for (int i = 0; i < 80; ++i) deep += ']';
  EXPECT_THROW(JsonValue::parse(deep), Error);
}

TEST(JsonValue, UnicodeEscapes) {
  EXPECT_EQ(JsonValue::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(JsonValue::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");  // é in UTF-8
  // Surrogates are rejected rather than decoded incorrectly.
  EXPECT_THROW(JsonValue::parse("\"\\ud83d\\ude00\""), Error);
}

TEST(JsonValue, DumpRoundTripsWriterOutputByteIdentically) {
  // The property the g80serve result cache's bit-exactness rests on: a
  // document produced by JsonWriter, parsed and dumped, is the same bytes —
  // including the exact number lexemes the writer chose.
  JsonWriter w;
  w.begin_object();
  w.kv("name", "mat\"mul");
  w.kv("gflops", 91.1400000001);
  w.kv("count", std::uint64_t{18446744073709551615ull});
  w.kv("neg", -3);
  w.kv("flag", true);
  w.key("arr");
  w.begin_array();
  w.value(0.0131194973402);
  w.value("x");
  w.begin_object();
  w.end_object();
  w.end_array();
  w.key("nothing");
  w.begin_object();
  w.end_object();
  w.end_object();
  const std::string doc = w.str();
  EXPECT_EQ(JsonValue::parse(doc).dump(), doc);
}

TEST(JsonValue, NumberLexemePreserved) {
  // "1.50" and "1.5" are the same double but different bytes; dump() must
  // keep the input spelling.
  EXPECT_EQ(JsonValue::parse("[1.50,2e1,-0.0]").dump(), "[1.50,2e1,-0.0]");
}

TEST(JsonValue, MalformedDocumentsThrowWithOffset) {
  EXPECT_THROW(JsonValue::parse(""), Error);
  EXPECT_THROW(JsonValue::parse("{"), Error);
  EXPECT_THROW(JsonValue::parse("[1,]"), Error);
  EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), Error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), Error);
  EXPECT_THROW(JsonValue::parse("tru"), Error);
  EXPECT_THROW(JsonValue::parse("01"), Error);
  try {
    JsonValue::parse("[1, oops]");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    // Error messages carry the byte offset for debuggability.
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

}  // namespace
}  // namespace g80
