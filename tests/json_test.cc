// JsonWriter edge cases: escaping, non-finite doubles, empty containers,
// nesting discipline.  Every machine-readable artifact in the repo (g80prof
// JSON, Chrome traces, g80scope series, bench results) rides on this writer,
// so its corner behaviour is contract, not implementation detail.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/error.h"
#include "common/json.h"

namespace g80 {
namespace {

TEST(JsonEscape, ControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape("cr\rlf"), "cr\\rlf");
}

TEST(JsonEscape, EmbeddedControlBytesAreUnicodeEscaped) {
  // Control bytes below 0x20 without a shorthand must become \u00XX, not
  // leak through raw (raw control bytes make the document unparseable).
  // (Split literal: "\x01b" would parse as the single hex escape 0x1b.)
  const std::string s = json_escape(std::string("a\x01" "b"));
  EXPECT_EQ(s, "a\\u0001b");
}

TEST(JsonWriter, EmptyObjectAndArray) {
  {
    JsonWriter w;
    w.begin_object().end_object();
    EXPECT_EQ(w.str(), "{}");
  }
  {
    JsonWriter w;
    w.begin_array().end_array();
    EXPECT_EQ(w.str(), "[]");
  }
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("rows");
  w.begin_array();
  w.begin_object().kv("n", 1).end_object();
  w.begin_object().kv("n", 2).end_object();
  w.end_array();
  w.key("empty");
  w.begin_array().end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"rows":[{"n":1},{"n":2}],"empty":[]})");
}

TEST(JsonWriter, NonFiniteDoublesRenderNull) {
  JsonWriter w;
  w.begin_object();
  w.kv("nan", std::numeric_limits<double>::quiet_NaN());
  w.kv("inf", std::numeric_limits<double>::infinity());
  w.kv("ninf", -std::numeric_limits<double>::infinity());
  w.kv("finite", 1.5);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"nan":null,"inf":null,"ninf":null,"finite":1.5})");
}

TEST(JsonWriter, StringValuesAreEscaped) {
  JsonWriter w;
  w.begin_object();
  w.kv("k\"1", std::string_view("v\n2"));
  w.end_object();
  EXPECT_EQ(w.str(), "{\"k\\\"1\":\"v\\n2\"}");
}

TEST(JsonWriter, MisnestingThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), Error);
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), Error);  // key outside an object
  }
  {
    JsonWriter w;
    w.begin_object();
    w.key("a");
    EXPECT_THROW(w.key("b"), Error);  // two keys in a row
  }
}

TEST(JsonWriter, TopLevelScalarAndCompletionCheck) {
  JsonWriter w;
  w.begin_object();
  // Unbalanced document: str() must refuse rather than emit garbage.
  EXPECT_THROW(w.str(), Error);
}

}  // namespace
}  // namespace g80
