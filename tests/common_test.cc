#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/str.h"
#include "common/table.h"

namespace g80 {
namespace {

// ---- SplitMix64 -------------------------------------------------------------

TEST(SplitMix, DeterministicAcrossInstances) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SplitMix, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(SplitMix, DoublesInUnitInterval) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix, UniformMeanIsCentered) {
  SplitMix64 rng(9);
  RunningStat s;
  for (int i = 0; i < 20000; ++i) s.add(rng.uniform(-1.0, 1.0));
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_GT(s.min(), -1.0 - 1e-12);
  EXPECT_LT(s.max(), 1.0);
}

TEST(SplitMix, NormalMomentsAreSane) {
  SplitMix64 rng(11);
  RunningStat s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(SplitMix, NextBelowRespectsBound) {
  SplitMix64 rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
  EXPECT_EQ(rng.next_below(0), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

// ---- CounterRng -------------------------------------------------------------

TEST(CounterRng, PureFunctionOfSeedAndCounter) {
  const CounterRng a(42), b(42);
  for (std::uint64_t c : {0ull, 1ull, 17ull, 1ull << 40}) {
    EXPECT_EQ(a.at(c), b.at(c));
    EXPECT_EQ(a.at(c), a.at(c));  // stateless: re-query gives same value
  }
}

TEST(CounterRng, AdjacentCountersDecorrelated) {
  const CounterRng rng(5);
  // Count bit differences between adjacent counters: should be ~32.
  RunningStat s;
  for (std::uint64_t c = 0; c < 2000; ++c) {
    s.add(std::popcount(rng.at(c) ^ rng.at(c + 1)));
  }
  EXPECT_NEAR(s.mean(), 32.0, 1.5);
}

TEST(CounterRng, FloatRangesValid) {
  const CounterRng rng(77);
  for (std::uint64_t c = 0; c < 5000; ++c) {
    EXPECT_GE(rng.float_at(c), 0.0f);
    EXPECT_LT(rng.float_at(c), 1.0f);
    EXPECT_GE(rng.double_at(c), 0.0);
    EXPECT_LT(rng.double_at(c), 1.0);
  }
}

// ---- RunningStat ------------------------------------------------------------

TEST(RunningStat, KnownSequence) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleElementHasZeroVariance) {
  RunningStat s;
  s.add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.5);
}

// ---- Histogram --------------------------------------------------------------

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(15.0);   // clamps to bin 9
  h.add(5.0);    // bin 5
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
}

// ---- rel_err ----------------------------------------------------------------

TEST(RelErr, Basics) {
  EXPECT_DOUBLE_EQ(rel_err(1.0, 1.0), 0.0);
  EXPECT_NEAR(rel_err(1.01, 1.0), 0.01, 1e-12);
  EXPECT_DOUBLE_EQ(rel_err(0.0, 0.0), 0.0);
  // eps floor keeps tiny denominators from exploding.
  EXPECT_LE(rel_err(1e-9, 0.0, 1e-6), 1e-3 + 1e-12);
}

// ---- string helpers ---------------------------------------------------------

TEST(Str, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(Str, HumanBytes) {
  EXPECT_EQ(human_bytes(64), "64 B");
  EXPECT_EQ(human_bytes(16 * 1024), "16.0 KB");
  EXPECT_EQ(human_bytes(1.5 * 1024 * 1024 * 1024), "1.5 GB");
}

TEST(Str, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcde", 3), "abcde");  // no truncation
}

TEST(Str, Cat) {
  EXPECT_EQ(cat("x=", 3, ", y=", 1.5), "x=3, y=1.5");
}

// ---- TextTable --------------------------------------------------------------

TEST(TextTable, AlignsAndUnderlines) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"b", "20"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  // Numeric cells right-align: "  1.5" under "value".
  EXPECT_NE(s.find("  1.5"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

}  // namespace
}  // namespace g80
