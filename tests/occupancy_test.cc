#include "occupancy/occupancy.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "hw/device_spec.h"

namespace g80 {
namespace {

const DeviceSpec kGtx = DeviceSpec::geforce_8800_gtx();

TEST(Occupancy, PaperMatmul10RegsGivesThreeBlocks) {
  // §4.1: 10 registers/thread, 256-thread blocks -> three blocks = the
  // maximum 768 threads per SM.
  const auto occ = compute_occupancy(kGtx, {10, 2048, 256});
  EXPECT_EQ(occ.blocks_per_sm, 3);
  EXPECT_EQ(occ.active_threads_per_sm, 768);
  EXPECT_EQ(occ.active_warps_per_sm, 24);
  EXPECT_EQ(occ.limiter, OccupancyLimit::kThreads);
  EXPECT_DOUBLE_EQ(occ.fraction(kGtx), 1.0);
}

TEST(Occupancy, PaperMatmul11RegsDropsToTwoBlocks) {
  // §4.2/§4.4: 11 registers x 256 threads x 3 blocks = 8448 > 8192, so only
  // two blocks can be resident.
  const auto occ = compute_occupancy(kGtx, {11, 2048, 256});
  EXPECT_EQ(occ.blocks_per_sm, 2);
  EXPECT_EQ(occ.active_threads_per_sm, 512);
  EXPECT_EQ(occ.limiter, OccupancyLimit::kRegisters);
}

TEST(Occupancy, SmallBlocksHitEightBlockLimit) {
  // §4.2: 4x4 tiles = 16-thread blocks; the 8-block limit leaves the SM
  // mostly empty (128 threads).
  const auto occ = compute_occupancy(kGtx, {10, 128, 16});
  EXPECT_EQ(occ.blocks_per_sm, 8);
  EXPECT_EQ(occ.active_threads_per_sm, 128);
  EXPECT_EQ(occ.limiter, OccupancyLimit::kBlocks);
}

TEST(Occupancy, TwelveByTwelveTilesWasteWarpSlots) {
  // §4.2: 144 threads = 4.5 warps, rounded up to 5 warp slots; 24/5 = 4
  // blocks, 576 active threads.
  const auto occ = compute_occupancy(kGtx, {10, 1152, 144});
  EXPECT_EQ(occ.blocks_per_sm, 4);
  EXPECT_EQ(occ.active_threads_per_sm, 576);
  EXPECT_EQ(occ.active_warps_per_sm, 20);
}

TEST(Occupancy, SharedMemoryLimits) {
  // 9 KB/block of shared memory -> only one block fits in 16 KB.
  const auto occ = compute_occupancy(kGtx, {10, 9 * 1024, 128});
  EXPECT_EQ(occ.blocks_per_sm, 1);
  EXPECT_EQ(occ.limiter, OccupancyLimit::kSharedMem);
}

TEST(Occupancy, ImpossibleConfigurationsThrow) {
  EXPECT_THROW(compute_occupancy(kGtx, {10, 0, 1024}), Error);   // > 512 thr
  EXPECT_THROW(compute_occupancy(kGtx, {10, 32 * 1024, 64}), Error);  // smem
  EXPECT_THROW(compute_occupancy(kGtx, {64, 0, 256}), Error);    // registers
}

TEST(Occupancy, ZeroRegisterKernelStillBlockLimited) {
  const auto occ = compute_occupancy(kGtx, {0, 0, 32});
  EXPECT_EQ(occ.blocks_per_sm, 8);
}

class OccupancyMonotoneRegs : public ::testing::TestWithParam<int> {};

TEST_P(OccupancyMonotoneRegs, MoreRegistersNeverIncreaseOccupancy) {
  const int threads = GetParam();
  int prev = kGtx.max_blocks_per_sm + 1;
  bool became_impossible = false;
  for (int regs = 1; regs <= 32; ++regs) {
    if (static_cast<long long>(regs) * threads > kGtx.registers_per_sm) {
      // A single block no longer fits; must throw, and must stay impossible.
      EXPECT_THROW(compute_occupancy(kGtx, {regs, 0, threads}), Error);
      became_impossible = true;
      continue;
    }
    ASSERT_FALSE(became_impossible);
    const auto occ = compute_occupancy(kGtx, {regs, 0, threads});
    EXPECT_LE(occ.blocks_per_sm, prev)
        << "regs=" << regs << " threads=" << threads;
    prev = occ.blocks_per_sm;
  }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, OccupancyMonotoneRegs,
                         ::testing::Values(32, 64, 128, 192, 256, 384, 512));

class OccupancyMonotoneSmem : public ::testing::TestWithParam<int> {};

TEST_P(OccupancyMonotoneSmem, MoreSharedMemoryNeverIncreasesOccupancy) {
  const int threads = GetParam();
  int prev = kGtx.max_blocks_per_sm + 1;
  for (std::size_t smem = 256; smem <= 16 * 1024; smem += 256) {
    const auto occ = compute_occupancy(kGtx, {8, smem, threads});
    EXPECT_LE(occ.blocks_per_sm, prev) << "smem=" << smem;
    prev = occ.blocks_per_sm;
  }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, OccupancyMonotoneSmem,
                         ::testing::Values(32, 128, 256));

TEST(Occupancy, NeverExceedsHardwareLimits) {
  for (int regs : {1, 5, 10, 16, 32}) {
    for (int threads : {16, 32, 100, 144, 256, 512}) {
      for (std::size_t smem : {std::size_t{0}, std::size_t{1024}, std::size_t{8192}}) {
        if (static_cast<long long>(regs) * threads > kGtx.registers_per_sm)
          continue;  // unlaunchable; covered by ImpossibleConfigurationsThrow
        const auto occ = compute_occupancy(kGtx, {regs, smem, threads});
        EXPECT_LE(occ.blocks_per_sm, kGtx.max_blocks_per_sm);
        EXPECT_LE(occ.active_warps_per_sm, kGtx.max_warps_per_sm());
        EXPECT_LE(occ.blocks_per_sm * static_cast<long long>(regs) * threads,
                  kGtx.registers_per_sm + kGtx.register_alloc_unit *
                                              occ.blocks_per_sm);
        EXPECT_LE(occ.blocks_per_sm * smem, kGtx.shared_mem_per_sm);
      }
    }
  }
}

}  // namespace
}  // namespace g80
