// End-to-end g80serve protocol tests against an in-process Server on a real
// unix socket: session lifecycle (ping/hello/stats), job execution for
// every op, the result cache's observable behaviour (sim -> cache_mem ->
// cache_disk across a restart, byte-identical results), typed rejections
// (invalid kernels/configs, kNotReady admission control), and clean
// shutdown.  serve_isolation_test.cc covers the concurrent/adversarial
// side; this file is the functional contract.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/error.h"
#include "serve/client.h"
#include "serve/server.h"

namespace g80::serve {
namespace {

// Unique, short socket paths (sockaddr_un caps them near 108 bytes).
std::string test_socket(const char* tag) {
  static int counter = 0;
  return "/tmp/g80s_" + std::to_string(::getpid()) + "_" + tag + "_" +
         std::to_string(counter++) + ".sock";
}

JobRequest saxpy_job(std::int64_t n = 4096, std::int64_t seed = 3) {
  JobRequest req;
  req.op = Op::kLaunch;
  req.kernel = "saxpy";
  req.n = n;
  req.seed = seed;
  return req;
}

JobRequest matmul_job(std::int64_t n = 64, const char* variant = "tiled") {
  JobRequest req;
  req.op = Op::kLaunch;
  req.kernel = "matmul";
  req.n = n;
  req.seed = 5;
  req.tile = 16;
  req.variant = variant;
  return req;
}

TEST(ServeServer, PingHelloStats) {
  ServerConfig cfg;
  cfg.socket_path = test_socket("ping");
  Server server(cfg);
  server.start();

  Client client(cfg.socket_path, "unit-test");
  EXPECT_GT(client.session_id(), 0u);

  JobRequest ping;
  ping.op = Op::kPing;
  const Response pr = client.call(ping);
  ASSERT_TRUE(pr.ok()) << pr.error;
  EXPECT_TRUE(pr.doc.require("result").require("pong").as_bool());

  JobRequest stats;
  stats.op = Op::kStats;
  const Response sr = client.call(stats);
  ASSERT_TRUE(sr.ok()) << sr.error;
  const JsonValue& result = sr.doc.require("result");
  EXPECT_EQ(result.require("server").get_int("slots", -1),
            cfg.pool.total_slots());
  EXPECT_EQ(result.require("session").get_string("client", ""), "unit-test");

  server.shutdown();
}

TEST(ServeServer, LaunchColdThenWarmIsByteIdentical) {
  ServerConfig cfg;
  cfg.socket_path = test_socket("warm");
  Server server(cfg);
  server.start();
  Client client(cfg.socket_path);

  const Response cold = client.call(saxpy_job());
  ASSERT_TRUE(cold.ok()) << cold.error;
  EXPECT_EQ(cold.source, "sim");
  ASSERT_FALSE(cold.result_json.empty());

  const Response warm = client.call(saxpy_job());
  ASSERT_TRUE(warm.ok()) << warm.error;
  EXPECT_EQ(warm.source, "cache_mem");
  // The contract of the exact cache: warm result bytes == cold result bytes.
  EXPECT_EQ(warm.result_json, cold.result_json);

  // A different seed is a different cache key.
  const Response other = client.call(saxpy_job(4096, 4));
  ASSERT_TRUE(other.ok()) << other.error;
  EXPECT_EQ(other.source, "sim");
  EXPECT_NE(other.result_json, cold.result_json);

  // no_cache bypasses the cache but must reproduce the same bytes — the
  // simulation is deterministic.
  JobRequest bypass = saxpy_job();
  bypass.no_cache = true;
  const Response re = client.call(bypass);
  ASSERT_TRUE(re.ok()) << re.error;
  EXPECT_EQ(re.source, "sim");
  EXPECT_EQ(re.result_json, cold.result_json);

  const CacheCounters cc = server.cache_counters();
  EXPECT_EQ(cc.mem_hits, 1u);
  EXPECT_EQ(cc.misses, 2u);
  server.shutdown();
}

TEST(ServeServer, DiskCacheSurvivesRestart) {
  char tmpl[] = "/tmp/g80servedXXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string cache_dir = tmpl;

  std::string cold_json;
  {
    ServerConfig cfg;
    cfg.socket_path = test_socket("disk1");
    cfg.cache_dir = cache_dir;
    Server server(cfg);
    server.start();
    Client client(cfg.socket_path);
    const Response cold = client.call(matmul_job());
    ASSERT_TRUE(cold.ok()) << cold.error;
    EXPECT_EQ(cold.source, "sim");
    cold_json = cold.result_json;
    server.shutdown();
  }
  {
    ServerConfig cfg;
    cfg.socket_path = test_socket("disk2");
    cfg.cache_dir = cache_dir;
    Server server(cfg);
    server.start();
    Client client(cfg.socket_path);
    const Response warm = client.call(matmul_job());
    ASSERT_TRUE(warm.ok()) << warm.error;
    EXPECT_EQ(warm.source, "cache_disk");
    EXPECT_EQ(warm.result_json, cold_json);
    server.shutdown();
  }
}

TEST(ServeServer, AutotuneAndProfileOps) {
  ServerConfig cfg;
  cfg.socket_path = test_socket("tune");
  Server server(cfg);
  server.start();
  Client client(cfg.socket_path);

  JobRequest tune = matmul_job(64);
  tune.op = Op::kAutotune;
  const Response tr = client.call(tune);
  ASSERT_TRUE(tr.ok()) << tr.error;
  const JsonValue& result = tr.doc.require("result");
  EXPECT_GE(result.require("candidates").size(), 4u);
  EXPECT_FALSE(result.require("best").get_string("variant", "").empty());
  // Autotune results cache like any job.
  const Response tr2 = client.call(tune);
  ASSERT_TRUE(tr2.ok());
  EXPECT_EQ(tr2.source, "cache_mem");
  EXPECT_EQ(tr2.result_json, tr.result_json);

  JobRequest prof = saxpy_job(2048);
  prof.op = Op::kProfile;
  const Response pr = client.call(prof);
  ASSERT_TRUE(pr.ok()) << pr.error;
  const JsonValue& profile = pr.doc.require("result").require("profile");
  EXPECT_GE(profile.get_int("launches", 0), 1);
  server.shutdown();
}

TEST(ServeServer, AutotuneKeepsRequestConfigWhenSweepTilesDoNotDivide) {
  // n=12 is divisible by the request's tile=2 but by neither standard
  // sweep tile (8, 16); the request's own config must survive as a
  // candidate rather than the sweep coming back empty, which used to
  // index an empty vector and crash the daemon.
  ServerConfig cfg;
  cfg.socket_path = test_socket("tune12");
  Server server(cfg);
  server.start();
  Client client(cfg.socket_path);

  JobRequest tune = matmul_job(12);
  tune.tile = 2;
  tune.op = Op::kAutotune;
  const Response r = client.call(tune);
  ASSERT_TRUE(r.ok()) << r.error;
  const JsonValue& result = r.doc.require("result");
  ASSERT_EQ(result.require("candidates").size(), 1u);
  EXPECT_EQ(result.require("best").get_string("variant", ""), "tiled");
  EXPECT_EQ(result.require("best").get_int("tile", 0), 2);
  server.shutdown();
}

TEST(ServeServer, FinishedSessionsAreReaped) {
  ServerConfig cfg;
  cfg.socket_path = test_socket("reap");
  Server server(cfg);
  server.start();

  for (int i = 0; i < 8; ++i) {
    Client client(cfg.socket_path);
    const Response r = client.call(saxpy_job(1024, i));
    ASSERT_TRUE(r.ok()) << r.error;
  }
  // Each disconnect releases its session record as the reader loop exits;
  // poll briefly because that teardown races this check.
  for (int i = 0; i < 500 && server.active_sessions() > 0; ++i) {
    ::usleep(10 * 1000);
  }
  EXPECT_EQ(server.active_sessions(), 0u);
  EXPECT_EQ(server.sessions_accepted(), 8u);
  server.shutdown();
}

TEST(ServeServer, TypedRejections) {
  ServerConfig cfg;
  cfg.socket_path = test_socket("reject");
  Server server(cfg);
  server.start();
  Client client(cfg.socket_path);

  // Unknown kernel -> kInvalidValue at parse time.
  JobRequest bad = saxpy_job();
  bad.kernel = "fft";
  Response r = client.call_raw(
      "{\"op\":\"launch\",\"id\":91,\"kernel\":\"fft\",\"n\":64}");
  EXPECT_EQ(r.status, Status::kInvalidValue);
  EXPECT_EQ(r.id, 91);

  // Shape-violating override -> kInvalidConfiguration before any device.
  JobRequest shape = matmul_job(64);
  shape.config.block_x = 8;  // tiled kernels need block == tile
  r = client.call(shape);
  EXPECT_EQ(r.status, Status::kInvalidConfiguration);

  // Indivisible tile -> kInvalidConfiguration.
  JobRequest odd = matmul_job(100);
  r = client.call(odd);
  EXPECT_EQ(r.status, Status::kInvalidConfiguration);

  // Malformed JSON -> kInvalidValue, and the session survives.
  r = client.call_raw("{\"op\":");
  EXPECT_EQ(r.status, Status::kInvalidValue);

  // The session still works after every rejection.
  r = client.call(saxpy_job());
  EXPECT_TRUE(r.ok()) << r.error;
  server.shutdown();
}

TEST(ServeServer, FaultJobsReturnTypedErrorsAndAreNotCached) {
  ServerConfig cfg;
  cfg.socket_path = test_socket("fault");
  Server server(cfg);
  server.start();
  Client client(cfg.socket_path);

  JobRequest oob = saxpy_job();
  oob.fault.kind = "oob_store";
  Response r = client.call(oob);
  EXPECT_EQ(r.status, Status::kInvalidAddress);

  // In a tiled matmul a skipped barrier manifests first as unsynchronized
  // shared-memory communication, so that is the typed error the sanitizer
  // (and therefore the service) reports.
  JobRequest barrier = matmul_job();
  barrier.fault.kind = "skip_barrier";
  r = client.call(barrier);
  EXPECT_EQ(r.status, Status::kSharedMemoryRace);

  JobRequest timeout = saxpy_job();
  timeout.fault.kind = "modeled_timeout";
  r = client.call(timeout);
  EXPECT_EQ(r.status, Status::kTimeout);

  // Nothing above may pollute the cache: the same jobs without faults
  // simulate cold.
  r = client.call(saxpy_job());
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.source, "sim");
  EXPECT_EQ(server.cache_counters().stores, 1u);

  // Failed jobs reset their slot device.
  EXPECT_EQ(server.scheduler_stats().device_resets, 3u);
  server.shutdown();
}

TEST(ServeServer, PerSessionAdmissionControl) {
  ServerConfig cfg;
  cfg.socket_path = test_socket("admit");
  cfg.max_inflight_per_session = 1;
  cfg.pool.gtx_slots = 1;
  Server server(cfg);
  server.start();
  Client client(cfg.socket_path);

  // Pipeline several distinct jobs; with one slot and an in-flight cap of
  // one, at least one must be rejected kNotReady while another must
  // complete.  (Exact counts depend on scheduling timing.)
  const std::int64_t a = client.send(saxpy_job(1 << 16, 100));
  const std::int64_t b = client.send(saxpy_job(1 << 16, 101));
  const std::int64_t c = client.send(saxpy_job(1 << 16, 102));
  const Response ra = client.recv(a);
  const Response rb = client.recv(b);
  const Response rc = client.recv(c);
  int ok = 0, not_ready = 0;
  for (const Response* r : {&ra, &rb, &rc}) {
    if (r->ok()) {
      ++ok;
    } else {
      EXPECT_EQ(r->status, Status::kNotReady) << r->error;
      ++not_ready;
    }
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(not_ready, 1);
  server.shutdown();
}

TEST(ServeServer, ShutdownOpStopsTheServer) {
  ServerConfig cfg;
  cfg.socket_path = test_socket("stop");
  Server server(cfg);
  server.start();
  {
    Client client(cfg.socket_path);
    JobRequest req;
    req.op = Op::kShutdown;
    const Response r = client.call(req);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.doc.require("result").require("stopping").as_bool());
  }
  server.wait();  // returns because the op requested shutdown
  server.shutdown();
  // The socket is gone: connecting now fails.
  EXPECT_THROW(Client{cfg.socket_path}, Error);
}

}  // namespace
}  // namespace g80::serve
