// Block-parallel launch determinism: results and LaunchStats must be
// bit-identical whether the trace/functional passes run sequentially or
// across a WorkerPool — the contract that makes g80rt's parallelism safe to
// enable everywhere.  Also covers the per-block merge of the memory-system
// analyzers and deterministic error selection under parallel execution.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "apps/matmul/matmul.h"
#include "apps/suite.h"
#include "common/error.h"
#include "core/app.h"
#include "cudalite/ctx.h"
#include "cudalite/device.h"
#include "cudalite/launch.h"
#include "exec/worker_pool.h"

namespace g80 {
namespace {

// Full-depth LaunchStats comparison — every counter the trace pass merges
// and every value the models derive from them.  Exact equality, no
// tolerances: the parallel path must reproduce the sequential path bit for
// bit.
void expect_stats_identical(const LaunchStats& a, const LaunchStats& b) {
  EXPECT_EQ(a.smem_per_block, b.smem_per_block);
  EXPECT_EQ(a.regs_per_thread, b.regs_per_thread);

  EXPECT_EQ(a.occupancy.blocks_per_sm, b.occupancy.blocks_per_sm);
  EXPECT_EQ(a.occupancy.active_threads_per_sm, b.occupancy.active_threads_per_sm);
  EXPECT_EQ(a.occupancy.active_warps_per_sm, b.occupancy.active_warps_per_sm);
  EXPECT_EQ(a.occupancy.limiter, b.occupancy.limiter);

  EXPECT_EQ(a.trace.num_warps, b.trace.num_warps);
  EXPECT_EQ(a.trace.num_blocks, b.trace.num_blocks);
  const WarpTrace& ta = a.trace.total;
  const WarpTrace& tb = b.trace.total;
  EXPECT_EQ(ta.ops.counts, tb.ops.counts);
  EXPECT_EQ(ta.lane_flops, tb.lane_flops);
  EXPECT_EQ(ta.global_instructions, tb.global_instructions);
  EXPECT_EQ(ta.global.transactions, tb.global.transactions);
  EXPECT_EQ(ta.global.bytes, tb.global.bytes);
  EXPECT_EQ(ta.global.scattered_bytes, tb.global.scattered_bytes);
  EXPECT_EQ(ta.useful_global_bytes, tb.useful_global_bytes);
  EXPECT_EQ(ta.coalesced_instructions, tb.coalesced_instructions);
  EXPECT_EQ(ta.shared_extra_passes, tb.shared_extra_passes);
  EXPECT_EQ(ta.const_extra_passes, tb.const_extra_passes);
  EXPECT_EQ(ta.texture_hits, tb.texture_hits);
  EXPECT_EQ(ta.texture_misses, tb.texture_misses);
  EXPECT_EQ(ta.branches, tb.branches);
  EXPECT_EQ(ta.divergent_branches, tb.divergent_branches);

  EXPECT_EQ(a.timing.kernel_cycles, b.timing.kernel_cycles);
  EXPECT_EQ(a.timing.seconds, b.timing.seconds);
  EXPECT_EQ(a.timing.gflops, b.timing.gflops);
  EXPECT_EQ(a.timing.dram_gbs, b.timing.dram_gbs);
  EXPECT_EQ(a.timing.bottleneck, b.timing.bottleneck);
}

// ---- §4 matmul, sequential vs pool --------------------------------------------

TEST(ParallelLaunch, MatmulBitExactAcrossWorkerCounts) {
  const int n = 64, tile = 16;
  const auto wl = apps::MatmulWorkload::generate(n, 42);
  const apps::MatmulTiledKernel kernel{n, tile, /*unrolled=*/true};

  auto run = [&](WorkerPool* pool, LaunchStats* stats) {
    Device dev;
    auto a = dev.alloc<float>(wl.a.size());
    auto b = dev.alloc<float>(wl.b.size());
    auto c = dev.alloc<float>(static_cast<std::size_t>(n) * n);
    a.copy_from_host(wl.a);
    b.copy_from_host(wl.b);
    LaunchOptions opt;
    opt.regs_per_thread = 9;  // the paper's value for tiled+unrolled
    opt.pool = pool;
    *stats = launch(dev, Dim3(n / tile, n / tile), Dim3(tile, tile), opt,
                    kernel, a, b, c);
    return c.copy_to_host();
  };

  LaunchStats seq_stats;
  const std::vector<float> seq = run(nullptr, &seq_stats);
  for (int workers : {2, 4}) {
    WorkerPool pool(workers);
    LaunchStats par_stats;
    const std::vector<float> par = run(&pool, &par_stats);
    ASSERT_EQ(par.size(), seq.size());
    EXPECT_EQ(std::memcmp(par.data(), seq.data(),
                          seq.size() * sizeof(float)),
              0)
        << workers << " workers";
    expect_stats_identical(seq_stats, par_stats);
  }
}

// ---- Per-block memory-system merge --------------------------------------------

// Even blocks load coalesced, odd blocks load with a scattering stride: the
// per-block analyzers must keep the patterns separate and merge them in
// sample order, so the mixed counters match the sequential pass exactly.
struct PerBlockPatternKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& in,
                  DeviceBuffer<float>& out) const {
    auto I = ctx.global(in);
    auto O = ctx.global(out);
    const int i = ctx.global_thread_x();
    float v;
    if (ctx.branch(ctx.block_idx().x % 2 == 1)) {
      v = I.ld((static_cast<std::size_t>(i) * 33) % I.size());
    } else {
      v = I.ld(i);
    }
    O.st(i, v);
  }
};

TEST(ParallelLaunch, MemSystemCountersMergePerBlock) {
  auto run = [&](WorkerPool* pool) {
    Device dev;
    auto in = dev.alloc<float>(1024);
    auto out = dev.alloc<float>(1024);
    in.fill(1.0f);
    LaunchOptions opt;
    opt.uses_sync = false;
    opt.sample_blocks = 16;  // trace all 16 blocks, both patterns
    opt.pool = pool;
    return launch(dev, Dim3(16), Dim3(64), opt, PerBlockPatternKernel{}, in,
                  out);
  };
  const LaunchStats seq = run(nullptr);
  WorkerPool pool(4);
  const LaunchStats par = run(&pool);
  expect_stats_identical(seq, par);
  // Sanity: the mixed pattern really contributed both kinds of blocks.
  EXPECT_GT(seq.trace.coalesced_fraction(), 0.0);
  EXPECT_LT(seq.trace.coalesced_fraction(), 1.0);
  EXPECT_GT(seq.trace.total.global.scattered_bytes, 0u);
}

// ---- Deterministic failure under parallel execution ---------------------------

struct FailLateBlocksKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& out) const {
    auto O = ctx.global(out);
    const int i = ctx.global_thread_x();
    if (ctx.branch(ctx.block_idx().x >= 3)) {
      // Out of bounds, at an offset unique to this block: which block's
      // failure surfaces is observable through the message.
      O.st(O.size() + ctx.block_idx().x, 0.0f);
    } else {
      O.st(i, 1.0f);
    }
  }
};

TEST(ParallelLaunch, LowestBlockErrorWinsDeterministically) {
  auto run = [&](WorkerPool* pool) -> std::pair<Status, std::string> {
    Device dev;
    auto out = dev.alloc<float>(256);
    LaunchOptions opt;
    opt.uses_sync = false;
    opt.pool = pool;
    try {
      launch(dev, Dim3(8), Dim3(32), opt, FailLateBlocksKernel{}, out);
    } catch (const StatusError& e) {
      return {e.status(), e.what()};
    }
    return {Status::kSuccess, "no error raised"};
  };
  const auto seq = run(nullptr);
  EXPECT_EQ(seq.first, Status::kInvalidAddress);
  for (int trial = 0; trial < 3; ++trial) {
    WorkerPool pool(4);
    const auto par = run(&pool);
    EXPECT_EQ(par.first, seq.first);
    EXPECT_EQ(par.second, seq.second);  // same block's failure every time
  }
}

// ---- Whole-suite bit-exactness under the ambient pool -------------------------

TEST(ParallelLaunch, SuiteBitExactUnderAmbientPool) {
  const DeviceSpec spec = DeviceSpec::geforce_8800_gtx();
  WorkerPool pool(4);
  for (const auto& app : apps::make_suite()) {
    const std::string name = app->info().name;
    const AppResult seq = app->run(spec, RunScale::kQuick);
    AppResult par;
    {
      ScopedLaunchPool scoped(&pool);
      par = app->run(spec, RunScale::kQuick);
    }
    // Wall-clock fields (cpu_*_seconds) vary run to run; everything derived
    // from simulated execution must not.
    EXPECT_EQ(seq.validated, par.validated) << name;
    EXPECT_EQ(seq.max_rel_err, par.max_rel_err) << name;
    EXPECT_EQ(seq.launches, par.launches) << name;
    EXPECT_EQ(seq.gpu_kernel_seconds, par.gpu_kernel_seconds) << name;
    EXPECT_EQ(seq.transfer_seconds, par.transfer_seconds) << name;
    expect_stats_identical(seq.representative, par.representative);
  }
}

}  // namespace
}  // namespace g80
