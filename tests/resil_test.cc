// g80resil tests: watchdog timeouts (wall-clock and modeled), retry with
// exponential backoff, graceful degradation, Device::reset recovery
// semantics, and the per-stream error-isolation contract on g80rt — a
// kernel (or worker) that throws surfaces as a g80::Status on the launching
// stream instead of tearing the process down.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.h"
#include "cudalite/ctx.h"
#include "cudalite/device.h"
#include "cudalite/launch.h"
#include "exec/worker_pool.h"
#include "resil/resilience.h"
#include "rt/runtime.h"

namespace g80 {
namespace {

// ---- Kernels ------------------------------------------------------------------

struct FillKernel {
  int n = 0;
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<int>& out) const {
    auto Out = ctx.global(out);
    const int i = ctx.global_thread_x();
    if (ctx.branch(i < n)) Out.st(i, i * 7 + 1);
  }
};

// Block-wide reverse through shared memory: exercises barriers, shared
// allocation, and the sanitize pass — all the machinery the fallback ladder
// degrades — while staying bit-deterministic at every fallback level.
struct ReverseKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<int>& in,
                  DeviceBuffer<int>& out) const {
    auto In = ctx.global(in);
    auto Out = ctx.global(out);
    auto S = ctx.template shared<int>(ctx.block_dim().x);
    const int t = static_cast<int>(ctx.thread_idx().x);
    const int base = static_cast<int>(ctx.block_idx().x * ctx.block_dim().x);
    S.st(t, In.ld(base + t));
    ctx.sync();
    Out.st(base + t, S.ld(ctx.block_dim().x - 1 - t));
  }
};

// A cooperative kernel wedged in a __syncthreads() loop: never terminates on
// its own, but every barrier release is a cancellation point, so the
// g80resil watchdog can preempt it.
struct WedgeKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<int>& out) const {
    auto Out = ctx.global(out);
    Out.st(ctx.global_thread_x(), 0);
    for (;;) ctx.sync();
  }
};

// A kernel functor whose host code throws a plain std::exception from one
// thread — the failure mode that used to std::terminate a g80rt stream
// thread via an unhandled-exception path.
struct ThrowingKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<int>& out) const {
    auto Out = ctx.global(out);
    const int i = ctx.global_thread_x();
    if (i == 7) throw std::runtime_error("kernel bug: host exception");
    Out.st(i, i);
  }
};

template <class Fn>
std::pair<Status, std::string> catch_status(Fn&& fn) {
  try {
    fn();
  } catch (const StatusError& e) {
    return {e.status(), e.what()};
  }
  return {Status::kSuccess, "no error raised"};
}

// ---- Wall-clock watchdog ------------------------------------------------------

TEST(ResilWatchdog, WallClockTimeoutCancelsWedgedLaunch) {
  Device dev;
  auto out = dev.alloc<int>(64);
  LaunchOptions opt;
  opt.resilience.enabled = true;
  opt.resilience.wall_timeout_s = 0.2;
  opt.resilience.max_retries = 0;  // a wedged kernel wedges identically again
  opt.resilience.backoff_initial_s = 0;
  const auto [code, msg] = catch_status([&] {
    launch(dev, Dim3(1), Dim3(64), opt, WedgeKernel{}, out);
  });
  EXPECT_EQ(code, Status::kTimeout);
  EXPECT_NE(msg.find("wall-clock"), std::string::npos) << msg;
  EXPECT_EQ(dev.peek_last_error(), Status::kTimeout);
  // The launch returned (did not wedge the process) and the device is
  // recoverable without tearing anything else down.
  dev.reset();
  EXPECT_EQ(dev.peek_last_error(), Status::kSuccess);
}

TEST(ResilWatchdog, RunResilientRecordsTimeoutProvenance) {
  ResiliencePolicy policy;
  policy.enabled = true;
  policy.wall_timeout_s = 0.05;
  policy.max_retries = 0;
  policy.backoff_initial_s = 0;
  ResilienceStats stats;
  const auto [code, msg] = catch_status([&] {
    run_resilient(policy, stats, [](const AttemptConfig& att) {
      ASSERT_NE(att.cancel, nullptr);
      for (;;) {
        att.cancel->check("test body");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  });
  EXPECT_EQ(code, Status::kTimeout);
  EXPECT_TRUE(stats.timed_out);
  EXPECT_EQ(stats.attempts, 1);
  ASSERT_EQ(stats.history.size(), 1u);
  EXPECT_EQ(stats.history[0].status, Status::kTimeout);
}

TEST(ResilWatchdog, ModeledTimeoutRejectsOverBudgetKernel) {
  Device dev;
  auto out = dev.alloc<int>(256);
  LaunchOptions opt;
  opt.uses_sync = false;
  opt.resilience.enabled = true;
  opt.resilience.modeled_timeout_s = 1e-12;  // any kernel exceeds this
  opt.resilience.max_retries = 0;
  opt.resilience.backoff_initial_s = 0;
  const auto [code, msg] = catch_status([&] {
    launch(dev, Dim3(4), Dim3(64), opt, FillKernel{256}, out);
  });
  EXPECT_EQ(code, Status::kTimeout);
  EXPECT_NE(msg.find("modeled"), std::string::npos) << msg;
  EXPECT_EQ(dev.peek_last_error(), Status::kTimeout);
}

// ---- Retry / backoff / fallback ----------------------------------------------

TEST(ResilRetry, TransientFailuresRecoveredWithBackoffHistory) {
  Device dev;
  const int n = 256;
  auto out = dev.alloc<int>(n);
  LaunchOptions opt;
  opt.uses_sync = false;
  opt.resilience.enabled = true;
  opt.resilience.max_retries = 2;
  opt.resilience.inject_transient_failures = 2;
  opt.resilience.backoff_initial_s = 1e-4;
  opt.resilience.backoff_multiplier = 2.0;
  const auto stats = launch(dev, Dim3(4), Dim3(64), opt, FillKernel{n}, out);

  const auto& r = stats.resilience;
  EXPECT_EQ(r.attempts, 3);
  EXPECT_EQ(r.retries(), 2);
  EXPECT_TRUE(r.recovered);
  EXPECT_FALSE(r.timed_out);
  ASSERT_EQ(r.history.size(), 3u);
  EXPECT_EQ(r.history[0].status, Status::kLaunchFailure);
  EXPECT_EQ(r.history[1].status, Status::kLaunchFailure);
  EXPECT_EQ(r.history[2].status, Status::kSuccess);
  // Exponential backoff: 1e-4 after the first failure, 2e-4 after the second.
  EXPECT_DOUBLE_EQ(r.history[0].backoff_s, 1e-4);
  EXPECT_DOUBLE_EQ(r.history[1].backoff_s, 2e-4);
  EXPECT_DOUBLE_EQ(r.total_backoff_s, 3e-4);
  // allow_fallback escalated one level per retry; the surviving attempt ran
  // at the functional fast path.
  EXPECT_EQ(r.fallback_level, 2);
  EXPECT_EQ(r.history[2].fallback_level, 2);
  // Recovery is visible host-side as the informational sticky status.
  EXPECT_EQ(dev.get_last_error(), Status::kRecovered);
  // And the launch's outputs are those of a normal run.
  const auto host = out.copy_to_host();
  for (int i = 0; i < n; ++i) ASSERT_EQ(host[i], i * 7 + 1);
}

TEST(ResilRetry, ExhaustedBudgetRethrowsWithFullHistory) {
  ResiliencePolicy policy;
  policy.enabled = true;
  policy.max_retries = 1;
  policy.inject_transient_failures = 3;  // more than the budget
  policy.backoff_initial_s = 0;
  ResilienceStats stats;
  const auto [code, msg] = catch_status([&] {
    run_resilient(policy, stats, [](const AttemptConfig&) {});
  });
  EXPECT_EQ(code, Status::kLaunchFailure);
  EXPECT_EQ(stats.attempts, 2);
  EXPECT_FALSE(stats.recovered);
  ASSERT_EQ(stats.history.size(), 2u);
  EXPECT_EQ(stats.history[0].status, Status::kLaunchFailure);
  EXPECT_EQ(stats.history[1].status, Status::kLaunchFailure);
}

TEST(ResilRetry, FallbackDisabledRetriesIdenticalConfiguration) {
  ResiliencePolicy policy;
  policy.enabled = true;
  policy.max_retries = 2;
  policy.inject_transient_failures = 2;
  policy.allow_fallback = false;
  policy.backoff_initial_s = 0;
  ResilienceStats stats;
  run_resilient(policy, stats, [](const AttemptConfig& att) {
    EXPECT_EQ(att.fallback_level, 0);
  });
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_TRUE(stats.recovered);
  EXPECT_EQ(stats.fallback_level, 0);
  for (const auto& h : stats.history) EXPECT_EQ(h.fallback_level, 0);
}

TEST(ResilRetry, OutputsBitIdenticalAcrossFallbackLevels) {
  const int n = 512;
  std::vector<int> input(n);
  for (int i = 0; i < n; ++i) input[i] = i * 13 - 5;

  // Baseline: resilience off, block-parallel pool, sanitize pass on.
  WorkerPool pool(4);
  Device base_dev;
  auto base_in = base_dev.alloc<int>(n);
  auto base_out = base_dev.alloc<int>(n);
  base_in.copy_from_host(input);
  LaunchOptions base_opt;
  base_opt.pool = &pool;
  base_opt.sanitize.enabled = true;
  launch(base_dev, Dim3(n / 128), Dim3(128), base_opt, ReverseKernel{},
         base_in, base_out);
  const auto expected = base_out.copy_to_host();

  // Degraded: two injected transient failures walk the launch down the full
  // fallback ladder (pool -> sequential -> functional fast path).
  Device dev;
  auto in = dev.alloc<int>(n);
  auto out = dev.alloc<int>(n);
  in.copy_from_host(input);
  LaunchOptions opt = base_opt;
  opt.resilience.enabled = true;
  opt.resilience.max_retries = 2;
  opt.resilience.inject_transient_failures = 2;
  opt.resilience.backoff_initial_s = 0;
  const auto stats =
      launch(dev, Dim3(n / 128), Dim3(128), opt, ReverseKernel{}, in, out);
  EXPECT_EQ(stats.resilience.fallback_level, 2);
  EXPECT_EQ(out.copy_to_host(), expected);
}

// ---- Device::reset recovery semantics ----------------------------------------

TEST(ResilReset, ClearsErrorAllocationsLedgerAndBumpsGeneration) {
  Device dev;
  const std::uint64_t gen0 = dev.generation();
  auto d = dev.alloc<float>(1024);
  std::vector<float> host(1024, 1.0f);
  d.copy_from_host(host);
  (void)dev.alloc_constant<float>(12 * 1024);  // 48 KB of constant space
  dev.record_status(Status::kInvalidAddress);

  dev.reset();
  EXPECT_EQ(dev.peek_last_error(), Status::kSuccess);
  EXPECT_EQ(dev.bytes_allocated(), 0u);
  EXPECT_EQ(dev.ledger().total_bytes(), 0u);
  EXPECT_EQ(dev.generation(), gen0 + 1);
  // The whole constant space is available again.
  (void)dev.alloc_constant<float>(15 * 1024);  // 60 KB fits post-reset
  EXPECT_EQ(dev.peek_last_error(), Status::kSuccess);
}

TEST(ResilReset, HooksRunOncePerResetAndAreRemovable) {
  Device dev;
  int calls = 0;
  const auto id = dev.add_reset_hook([&] { ++calls; });
  dev.reset();
  EXPECT_EQ(calls, 1);
  dev.remove_reset_hook(id);
  dev.reset();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(dev.generation(), 2u);
}

// ---- Per-stream error isolation (satellite: no std::terminate) ---------------

TEST(ResilStream, ThrowingKernelSurfacesAsStatusSynchronously) {
  Device dev;
  auto out = dev.alloc<int>(64);
  LaunchOptions opt;
  opt.uses_sync = false;
  const auto [code, msg] = catch_status([&] {
    launch(dev, Dim3(1), Dim3(64), opt, ThrowingKernel{}, out);
  });
  EXPECT_EQ(code, Status::kLaunchFailure);
  EXPECT_NE(msg.find("kernel threw"), std::string::npos) << msg;
  EXPECT_EQ(dev.peek_last_error(), Status::kLaunchFailure);
}

TEST(ResilStream, WorkerThreadExceptionSurfacesOnCaller) {
  // Block-parallel path: the throw happens on a pool worker; parallel_for
  // must ferry it back to the launching thread as the same StatusError.
  Device dev;
  WorkerPool pool(4);
  auto out = dev.alloc<int>(1024);
  LaunchOptions opt;
  opt.uses_sync = false;
  opt.pool = &pool;
  const auto [code, msg] = catch_status([&] {
    launch(dev, Dim3(16), Dim3(64), opt, ThrowingKernel{}, out);
  });
  EXPECT_EQ(code, Status::kLaunchFailure);
  EXPECT_EQ(dev.peek_last_error(), Status::kLaunchFailure);
}

TEST(ResilStream, AsyncKernelFailureIsolatedToItsStream) {
  Device dev;
  rt::Runtime rt(dev);
  auto bad = rt.stream_create();
  auto good = rt.stream_create();

  auto bad_out = dev.alloc<int>(64);
  auto good_out = dev.alloc<int>(256);
  LaunchOptions opt;
  opt.uses_sync = false;
  rt.launch_async(bad, Dim3(1), Dim3(64), opt, nullptr, ThrowingKernel{},
                  bad_out);
  rt.launch_async(good, Dim3(4), Dim3(64), opt, nullptr, FillKernel{256},
                  good_out);

  // The healthy stream is unaffected by its sibling's failure.
  rt.stream_synchronize(good);
  EXPECT_EQ(rt.stream_get_last_error(good), Status::kSuccess);
  const auto host = good_out.copy_to_host();
  for (int i = 0; i < 256; ++i) ASSERT_EQ(host[i], i * 7 + 1);

  // The failed stream reports the Status (peek does not clear), and
  // synchronize rethrows it instead of std::terminate-ing the stream thread.
  EXPECT_THROW(rt.stream_synchronize(bad), StatusError);
  EXPECT_EQ(rt.stream_get_last_error(bad), Status::kLaunchFailure);
  EXPECT_EQ(rt.stream_get_last_error(bad), Status::kLaunchFailure);

  // Clearing the stream's sticky failure makes it usable again.
  rt.stream_clear_error(bad);
  EXPECT_EQ(rt.stream_get_last_error(bad), Status::kSuccess);
  rt.launch_async(bad, Dim3(1), Dim3(64), opt, nullptr, FillKernel{64},
                  bad_out);
  rt.stream_synchronize(bad);
  const auto recovered = bad_out.copy_to_host();
  for (int i = 0; i < 64; ++i) ASSERT_EQ(recovered[i], i * 7 + 1);
}

TEST(ResilStream, WatchdogTimeoutDoesNotWedgeSiblingStreams) {
  Device dev;
  rt::Runtime rt(dev);
  auto slow = rt.stream_create();
  auto fast = rt.stream_create();

  auto slow_out = dev.alloc<int>(32);
  auto fast_out = dev.alloc<int>(256);
  LaunchOptions wedge_opt;
  wedge_opt.resilience.enabled = true;
  wedge_opt.resilience.wall_timeout_s = 0.2;
  wedge_opt.resilience.max_retries = 0;
  wedge_opt.resilience.backoff_initial_s = 0;
  rt.launch_async(slow, Dim3(1), Dim3(32), wedge_opt, nullptr, WedgeKernel{},
                  slow_out);
  LaunchOptions opt;
  opt.uses_sync = false;
  rt.launch_async(fast, Dim3(4), Dim3(64), opt, nullptr, FillKernel{256},
                  fast_out);

  // The sibling stream completes while the wedged one is being timed out.
  rt.stream_synchronize(fast);
  const auto host = fast_out.copy_to_host();
  for (int i = 0; i < 256; ++i) ASSERT_EQ(host[i], i * 7 + 1);

  const auto [code, msg] =
      catch_status([&] { rt.stream_synchronize(slow); });
  EXPECT_EQ(code, Status::kTimeout) << msg;
  EXPECT_EQ(rt.stream_get_last_error(slow), Status::kTimeout);
  EXPECT_EQ(rt.stream_get_last_error(fast), Status::kSuccess);
}

TEST(ResilStream, DeviceResetDrainsStreamsAndClearsTheirErrors) {
  Device dev;
  rt::Runtime rt(dev);
  auto s = rt.stream_create();
  auto out = dev.alloc<int>(64);
  LaunchOptions opt;
  opt.uses_sync = false;
  rt.launch_async(s, Dim3(1), Dim3(64), opt, nullptr, ThrowingKernel{}, out);
  EXPECT_THROW(rt.stream_synchronize(s), StatusError);
  EXPECT_EQ(rt.stream_get_last_error(s), Status::kLaunchFailure);

  // cudaDeviceReset-style recovery: the runtime's reset hook drains every
  // stream and clears its sticky async error alongside the device state.
  dev.reset();
  EXPECT_EQ(dev.peek_last_error(), Status::kSuccess);
  EXPECT_EQ(rt.stream_get_last_error(s), Status::kSuccess);

  // Post-reset the device address space was released; re-allocate and run.
  auto fresh = dev.alloc<int>(64);
  rt.launch_async(s, Dim3(1), Dim3(64), opt, nullptr, FillKernel{64}, fresh);
  rt.stream_synchronize(s);
  const auto host = fresh.copy_to_host();
  for (int i = 0; i < 64; ++i) ASSERT_EQ(host[i], i * 7 + 1);
}

// ---- ScopedLaunchPool exception safety (satellite) ---------------------------

TEST(ResilStream, ScopedLaunchPoolRestoredWhenLaunchThrows) {
  WorkerPool* const prev = ambient_launch_pool();
  WorkerPool pool(2);
  {
    ScopedLaunchPool scoped(&pool);
    EXPECT_EQ(ambient_launch_pool(), &pool);
    Device dev;
    auto out = dev.alloc<int>(64);
    LaunchOptions opt;
    opt.uses_sync = false;
    EXPECT_THROW(launch(dev, Dim3(1), Dim3(64), opt, ThrowingKernel{}, out),
                 StatusError);
    // The throw unwound launch() but not the scope: still our pool.
    EXPECT_EQ(ambient_launch_pool(), &pool);
    {
      ScopedLaunchPool inner(nullptr);
      EXPECT_EQ(ambient_launch_pool(), nullptr);
    }
    EXPECT_EQ(ambient_launch_pool(), &pool);
  }
  EXPECT_EQ(ambient_launch_pool(), prev);
}

}  // namespace
}  // namespace g80
