// Coalescing-analyzer tests: the strict G80 compute-1.0 half-warp rule plus
// a property sweep against a brute-force oracle.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "hw/device_spec.h"
#include "mem/coalescing.h"

namespace g80 {
namespace {

const DeviceSpec kSpec = DeviceSpec::geforce_8800_gtx();

WarpAccess half_warp(std::uint64_t base, std::int64_t stride_bytes,
                     std::uint32_t size = 4, int lanes = 16) {
  WarpAccess w(lanes);
  for (int k = 0; k < lanes; ++k) {
    w[k] = {base + static_cast<std::uint64_t>(k * stride_bytes), size, 0, true};
  }
  return w;
}

TEST(Coalescing, PerfectSequentialAlignedCoalesces) {
  const auto r = analyze_half_warp(kSpec, half_warp(0, 4).data(), 16);
  EXPECT_TRUE(r.coalesced);
  EXPECT_EQ(r.transactions, 1);
  EXPECT_EQ(r.dram_bytes, 64u);
  EXPECT_EQ(r.useful_bytes, 64u);
  EXPECT_DOUBLE_EQ(r.overfetch(), 1.0);
}

TEST(Coalescing, MisalignedByOneWordSerializes) {
  // The strict rule: base must sit on a 16-word boundary (§3.2).  The
  // command cost is one transaction per distinct address; the pins only pay
  // for the unique 32 B segments (row-buffer hits absorb the rest).
  const auto r = analyze_half_warp(kSpec, half_warp(4, 4).data(), 16);
  EXPECT_FALSE(r.coalesced);
  EXPECT_EQ(r.transactions, 16);        // one per active lane
  EXPECT_EQ(r.dram_bytes, 3u * 32u);    // bytes 4..67 span three segments
  EXPECT_EQ(r.scattered_bytes, r.dram_bytes);
}

TEST(Coalescing, PermutedLanesSerialize) {
  // Lane k must access word k; even a swap of two lanes breaks it on G80.
  auto w = half_warp(0, 4);
  std::swap(w[3].addr, w[4].addr);
  const auto r = analyze_half_warp(kSpec, w.data(), 16);
  EXPECT_FALSE(r.coalesced);
  EXPECT_EQ(r.transactions, 16);
  EXPECT_EQ(r.dram_bytes, 2u * 32u);  // same two segments as the clean pattern
}

TEST(Coalescing, StridedAccessSerializes) {
  // Stride-2 floats: 16 distinct addresses -> 16 transactions over four
  // 32 B segments.
  const auto r = analyze_half_warp(kSpec, half_warp(0, 8).data(), 16);
  EXPECT_FALSE(r.coalesced);
  EXPECT_EQ(r.transactions, 16);
  EXPECT_EQ(r.dram_bytes, 4u * 32u);
}

TEST(Coalescing, BroadcastDoesNotCombine) {
  // All 16 lanes read the same word.  Compute-1.0 hardware issues one
  // request per lane (footnote 4's combining did not materialize — the
  // reason broadcast data belongs in constant memory), but the pins only
  // move the one 32 B segment (row-buffer hits).
  const auto r = analyze_half_warp(kSpec, half_warp(128, 0).data(), 16);
  EXPECT_FALSE(r.coalesced);  // not the sequential pattern
  EXPECT_EQ(r.transactions, 16);
  EXPECT_EQ(r.dram_bytes, 32u);
  EXPECT_EQ(r.useful_bytes, 64u);
}

TEST(Coalescing, InactiveLanesLeaveHoles) {
  auto w = half_warp(0, 4);
  w[2].active = false;
  w[9].active = false;
  const auto r = analyze_half_warp(kSpec, w.data(), 16);
  EXPECT_TRUE(r.coalesced);  // holes do not break coalescing
  EXPECT_EQ(r.transactions, 1);
  EXPECT_EQ(r.useful_bytes, 14u * 4u);
}

TEST(Coalescing, FullyPredicatedOffIsFree) {
  auto w = half_warp(0, 4);
  for (auto& a : w) a.active = false;
  const auto r = analyze_half_warp(kSpec, w.data(), 16);
  EXPECT_EQ(r.transactions, 0);
  EXPECT_EQ(r.dram_bytes, 0u);
}

TEST(Coalescing, EightByteAccessesCoalesceAtDoubleSegment) {
  // float2 accesses: lane k at base + 8k, base aligned to 128 B.
  const auto r = analyze_half_warp(kSpec, half_warp(256, 8, 8).data(), 16);
  EXPECT_TRUE(r.coalesced);
  EXPECT_EQ(r.transactions, 1);
  EXPECT_EQ(r.dram_bytes, 128u);
}

TEST(Coalescing, SixteenByteAccessesCoalesce) {
  const auto r = analyze_half_warp(kSpec, half_warp(512, 16, 16).data(), 16);
  EXPECT_TRUE(r.coalesced);
  EXPECT_EQ(r.dram_bytes, 256u);
}

TEST(Coalescing, MixedSizesSerialize) {
  auto w = half_warp(0, 4);
  w[5].size = 8;
  const auto r = analyze_half_warp(kSpec, w.data(), 16);
  EXPECT_FALSE(r.coalesced);
}

TEST(Coalescing, UnsupportedWidthSerializes) {
  // 1-byte accesses can never use the 16-word-line path on compute 1.0.
  const auto r = analyze_half_warp(kSpec, half_warp(0, 1, 1).data(), 16);
  EXPECT_FALSE(r.coalesced);
  EXPECT_EQ(r.transactions, 16);
  EXPECT_EQ(r.dram_bytes, 32u);  // 16 consecutive bytes: one segment
}

TEST(Coalescing, WarpIsTwoIndependentHalfWarps) {
  // First half coalesces, second half is scattered.
  WarpAccess w(32);
  for (int k = 0; k < 16; ++k) w[k] = {static_cast<std::uint64_t>(4 * k), 4, 0, true};
  for (int k = 16; k < 32; ++k)
    w[k] = {static_cast<std::uint64_t>(1000 + 64 * k), 4, 0, true};
  const auto r = analyze_warp(kSpec, w);
  EXPECT_FALSE(r.coalesced);
  EXPECT_EQ(r.transactions, 1 + 16);
}

TEST(Coalescing, BothHalvesCoalescedWarp) {
  WarpAccess w(32);
  for (int k = 0; k < 32; ++k) w[k] = {static_cast<std::uint64_t>(4 * k), 4, 0, true};
  const auto r = analyze_warp(kSpec, w);
  EXPECT_TRUE(r.coalesced);
  EXPECT_EQ(r.transactions, 2);
  EXPECT_EQ(r.dram_bytes, 128u);
}

// ---- Property sweep vs a brute-force oracle ---------------------------------

// Oracle: coalesced iff every active lane k reads exactly [base+4k, base+4k+4)
// for a 64-byte-aligned base; otherwise one transaction per active lane and
// bytes == unique 32 B segments.
CoalesceResult oracle(const WarpAccess& w) {
  CoalesceResult r;
  std::set<std::uint64_t> segs;
  std::uint64_t base = ~0ull;
  bool pattern = true;
  int active = 0;
  for (int k = 0; k < 16; ++k) {
    if (!w[k].active) continue;
    ++active;
    segs.insert(w[k].addr / 32);
    r.useful_bytes += w[k].size;
    if (w[k].size != 4) pattern = false;
    const std::uint64_t b = w[k].addr - 4ull * k;
    if (base == ~0ull) base = b;
    if (b != base || base % 64 != 0) pattern = false;
  }
  if (active == 0) return r;
  if (pattern) {
    r.coalesced = true;
    r.transactions = 1;
    r.dram_bytes = 64;
  } else {
    r.transactions = active;
    r.dram_bytes = 32ull * segs.size();
  }
  return r;
}

class CoalescingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoalescingProperty, MatchesOracleOnRandomPatterns) {
  SplitMix64 rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    WarpAccess w(16);
    const std::uint64_t base = 64 * rng.next_below(100);
    const int mode = static_cast<int>(rng.next_below(4));
    for (int k = 0; k < 16; ++k) {
      w[k].size = 4;
      w[k].active = rng.next_below(8) != 0;
      switch (mode) {
        case 0: w[k].addr = base + 4ull * k; break;                    // perfect
        case 1: w[k].addr = base + 4ull * k + 4; break;                // shifted
        case 2: w[k].addr = base + 4ull * rng.next_below(64); break;   // random
        case 3: w[k].addr = base; break;                               // broadcast
      }
    }
    const auto got = analyze_half_warp(kSpec, w.data(), 16);
    const auto want = oracle(w);
    EXPECT_EQ(got.coalesced, want.coalesced) << "mode " << mode;
    EXPECT_EQ(got.transactions, want.transactions) << "mode " << mode;
    EXPECT_EQ(got.dram_bytes, want.dram_bytes) << "mode " << mode;
    EXPECT_EQ(got.useful_bytes, want.useful_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalescingProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace g80
