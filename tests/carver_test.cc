// Tests for the optimization-space carver (the §6 tooling extension).
#include <gtest/gtest.h>

#include "apps/matmul/matmul.h"
#include "core/carver.h"
#include "cudalite/device.h"

namespace g80 {
namespace {

using apps::MatmulConfig;
using apps::MatmulVariant;
using apps::run_matmul;

struct CarverFixture : public ::testing::Test {
  CarverFixture()
      : da(dev.alloc<float>(n * n)), db(dev.alloc<float>(n * n)),
        dc(dev.alloc<float>(n * n)) {}

  CarveCandidate candidate(const MatmulConfig& cfg) {
    auto run = [this, cfg] {
      return run_matmul(dev, cfg, static_cast<int>(n), da, db, dc, false);
    };
    return {cfg.name(), run, run};
  }

  Device dev;
  static constexpr std::size_t n = 1024;
  DeviceBuffer<float> da, db, dc;
};

TEST_F(CarverFixture, ParetoFrontierContainsTrueOptimum) {
  OptimizationCarver carver(dev.spec());
  std::vector<MatmulConfig> space = {
      {MatmulVariant::kNaive, 16},          {MatmulVariant::kTiled, 8},
      {MatmulVariant::kTiled, 16},          {MatmulVariant::kTiledUnrolled, 8},
      {MatmulVariant::kTiledUnrolled, 16},  {MatmulVariant::kPrefetch, 16},
      {MatmulVariant::kRegisterTiled, 16},
  };
  for (const auto& cfg : space) carver.add(candidate(cfg));
  const auto report = carver.carve();

  // Exhaustively evaluate to find the true best.
  double best_seconds = 1e300;
  std::string best_name;
  for (const auto& cfg : space) {
    const auto s =
        run_matmul(dev, cfg, static_cast<int>(n), da, db, dc, false);
    if (s.timing.seconds < best_seconds) {
      best_seconds = s.timing.seconds;
      best_name = cfg.name();
    }
  }
  EXPECT_EQ(report.best().name, best_name);
  // Pruning must be real: fewer evaluations than probes.
  EXPECT_LT(report.evaluations, report.probes);
  EXPECT_GE(report.evaluations, 1u);
}

TEST_F(CarverFixture, MetricsOrderSensibly) {
  // Unrolling raises efficiency at equal utilization; tiny tiles crush
  // utilization.
  const auto tiled =
      run_matmul(dev, {MatmulVariant::kTiled, 16}, 1024, da, db, dc, false);
  const auto unrolled = run_matmul(dev, {MatmulVariant::kTiledUnrolled, 16},
                                   1024, da, db, dc, false);
  const auto tiny =
      run_matmul(dev, {MatmulVariant::kTiled, 4}, 1024, da, db, dc, false);
  EXPECT_GT(OptimizationCarver::efficiency_of(dev.spec(), unrolled),
            OptimizationCarver::efficiency_of(dev.spec(), tiled));
  EXPECT_EQ(OptimizationCarver::utilization_of(dev.spec(), unrolled),
            OptimizationCarver::utilization_of(dev.spec(), tiled));
  EXPECT_LT(OptimizationCarver::utilization_of(dev.spec(), tiny), 0.25);
}

TEST_F(CarverFixture, SingleCandidateSurvives) {
  OptimizationCarver carver(dev.spec());
  carver.add(candidate({MatmulVariant::kTiled, 16}));
  const auto report = carver.carve();
  EXPECT_EQ(report.evaluations, 1u);
  EXPECT_TRUE(report.entries[0].pareto);
}

TEST(Carver, EmptyThrows) {
  const auto spec = DeviceSpec::geforce_8800_gtx();
  OptimizationCarver carver(spec);
  EXPECT_THROW(carver.carve(), Error);
}

TEST_F(CarverFixture, ReportRendersEverything) {
  OptimizationCarver carver(dev.spec());
  carver.add(candidate({MatmulVariant::kTiled, 16}));
  carver.add(candidate({MatmulVariant::kTiledUnrolled, 16}));
  const auto report = carver.carve();
  const auto table = report.to_table(dev.spec());
  EXPECT_NE(table.find("pareto"), std::string::npos);
  EXPECT_NE(table.find("probes: 2"), std::string::npos);
}

}  // namespace
}  // namespace g80
