// Bit-identity contract of the batched recorder path (cudalite/trace_arena.h).
//
// The trace arena turns per-lane AoS recording into warp-batched SoA rows,
// falling back to exact per-lane reconstruction whenever a warp's lanes stop
// matching positionally.  Its contract is that NOTHING downstream can tell:
// kernel outputs, the full TraceSummary (every warp counter and per-site
// attribution row), the modeled timing, every derived g80prof counter, and
// every g80scope bucket series must be bit-identical to the legacy per-lane
// path.  Each test here runs the same launch twice — ScopedTraceBatch(false)
// then ScopedTraceBatch(true) — and diffs all of it, across convergent,
// divergent, partially-converged, multi-space, sanitizer-observed, and
// block-parallel launches.  The G80_TRACE_BATCH env escape hatch is covered
// last (the ambient flag re-reads the environment on every launch, so tests
// can flip it in-process).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "apps/matmul/matmul.h"
#include "cudalite/device.h"
#include "cudalite/launch.h"
#include "cudalite/trace_arena.h"
#include "exec/worker_pool.h"
#include "prof/counters.h"
#include "prof/profiler.h"
#include "scope/session.h"

namespace g80 {
namespace {

// ---- Kernels spanning the recorder's convergence regimes --------------------

// Fully converged multi-space kernel: coalesced global loads, a stride-2
// shared store (bank conflicts), a divergence-free constant broadcast, a
// texture stream, and a barrier.  Every warp stays clean in the arena.
struct ConvergedMultiSpaceKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& in,
                  const ConstantBuffer<float>& c, const Texture1D<float>& t,
                  DeviceBuffer<float>& out) const {
    auto In = ctx.global(in);
    auto Out = ctx.global(out);
    auto C = ctx.constant(c);
    auto T = ctx.texture(t);
    auto S = ctx.template shared<float>(2 * 64);
    const int tid = static_cast<int>(ctx.thread_idx().x);
    const int i = ctx.global_thread_x();
    S.st(static_cast<std::size_t>(tid) * 2, In.ld(i));
    ctx.sync();
    const float v = S.ld(static_cast<std::size_t>(tid) * 2);
    Out.st(i, ctx.mad(v, C.ld(3), T.fetch(static_cast<std::size_t>(i) % t.size())));
  }
};

// Lane-dependent trip count: lane i performs (i % 32) + 1 global stores at
// the same site, so positional matching breaks mid-warp and every stream
// goes through the dirty-reconstruction path.
struct DivergentTripCountKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& out) const {
    auto O = ctx.global(out);
    const int i = ctx.global_thread_x();
    float v = 0;
    for (int k = 0; k <= i % 32; ++k) {
      v = ctx.add(v, 1.0f);
      O.st(i, v);
    }
  }
};

// Partially converged: half-warps branch to arms with DIFFERENT recorder
// sites (distinct source lines), then rejoin for a common coalesced store.
// The arm accesses diverge positionally; the rejoin store still matches on
// lanes that took the first arm.
struct HalfWarpArmsKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& a, DeviceBuffer<float>& b,
                  DeviceBuffer<float>& out) const {
    auto A = ctx.global(a);
    auto B = ctx.global(b);
    auto O = ctx.global(out);
    const int i = ctx.global_thread_x();
    float v;
    if (ctx.branch(i % 32 < 16)) {
      v = A.ld(i);
    } else {
      v = ctx.mul(B.ld(static_cast<std::size_t>(i) * 2 % b.size()), 2.0f);
    }
    O.st(i, v);
  }
};

// Uniform-looking kernel with mixed access sizes at distinct sites plus a
// scattered (uncoalesced) store — exercises the coalescing analyzer's
// serialized path through the SoA rows.
struct ScatteredStoreKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& in, DeviceBuffer<float>& out) const {
    auto In = ctx.global(in);
    auto Out = ctx.global(out);
    const int i = ctx.global_thread_x();
    Out.st(static_cast<std::size_t>(i) * 2 % out.size(), In.ld(i));
  }
};

// Barrier-heavy kernel for the sanitizer-observed regime: the sanitize pass
// attaches a BarrierObserver, and with g80check enabled the trace pass's
// recording must still be invisible.
struct StagedReduceKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& in, DeviceBuffer<float>& out) const {
    auto In = ctx.global(in);
    auto Out = ctx.global(out);
    auto S = ctx.template shared<float>(64);
    const int t = static_cast<int>(ctx.thread_idx().x);
    const int base = static_cast<int>(ctx.block_idx().x * ctx.block_dim().x);
    S.st(t, In.ld(base + t));
    ctx.sync();
    for (int stride = 32; stride > 0; stride /= 2) {
      if (ctx.branch(t < stride)) S.st(t, ctx.add(S.ld(t), S.ld(t + stride)));
      ctx.sync();
    }
    if (ctx.branch(t == 0)) Out.st(ctx.block_idx().x, S.ld(0));
  }
};

// ---- A/B harness ------------------------------------------------------------

// Everything observable downstream of one launch.
struct Observed {
  std::vector<float> out;
  LaunchStats stats;
  prof::KernelCounters counters;
  std::vector<scope::SmSeries> sms;  // empty unless a scope session attached
};

void expect_identical(const Observed& legacy, const Observed& batched) {
  // Functional outputs byte-for-byte.
  ASSERT_EQ(legacy.out.size(), batched.out.size());
  EXPECT_EQ(std::memcmp(legacy.out.data(), batched.out.data(),
                        legacy.out.size() * sizeof(float)),
            0);
  // The full trace summary: warp counters, instruction mix, DRAM traffic,
  // cache behaviour, and the per-site attribution table.
  EXPECT_TRUE(legacy.stats.trace == batched.stats.trace);
  // Modeled timing.
  EXPECT_EQ(legacy.stats.timing.seconds, batched.stats.timing.seconds);
  EXPECT_EQ(legacy.stats.timing.kernel_cycles, batched.stats.timing.kernel_cycles);
  EXPECT_EQ(legacy.stats.timing.bottleneck, batched.stats.timing.bottleneck);
  // Every derived profiler counter.
  EXPECT_TRUE(legacy.counters == batched.counters);
  // Sanitizer accounting (observed launches).
  EXPECT_EQ(legacy.stats.sanitizer.findings.size(),
            batched.stats.sanitizer.findings.size());
  EXPECT_EQ(legacy.stats.sanitizer.blocks_checked,
            batched.stats.sanitizer.blocks_checked);
  // Scope bucket series, per SM, element-exact.
  ASSERT_EQ(legacy.sms.size(), batched.sms.size());
  for (std::size_t s = 0; s < legacy.sms.size(); ++s) {
    EXPECT_EQ(legacy.sms[s].issue_cycles, batched.sms[s].issue_cycles);
    EXPECT_EQ(legacy.sms[s].serialization_cycles,
              batched.sms[s].serialization_cycles);
    EXPECT_EQ(legacy.sms[s].uncoalesced_cycles, batched.sms[s].uncoalesced_cycles);
    EXPECT_EQ(legacy.sms[s].mem_stall_cycles, batched.sms[s].mem_stall_cycles);
    EXPECT_EQ(legacy.sms[s].barrier_cycles, batched.sms[s].barrier_cycles);
    EXPECT_EQ(legacy.sms[s].instructions, batched.sms[s].instructions);
    EXPECT_EQ(legacy.sms[s].dram_bytes, batched.sms[s].dram_bytes);
  }
}

// Runs `one_launch` twice — legacy then batched recorder — and diffs.
template <class Fn>
void run_ab(Fn&& one_launch) {
  Observed legacy, batched;
  {
    ScopedTraceBatch off(false);
    legacy = one_launch();
  }
  {
    ScopedTraceBatch on(true);
    batched = one_launch();
  }
  expect_identical(legacy, batched);
}

// ---- Tests ------------------------------------------------------------------

TEST(TraceBatch, ConvergedMultiSpaceKernelIsInvisible) {
  run_ab([] {
    Device dev;
    const int n = 256;
    auto in = dev.alloc<float>(n);
    auto out = dev.alloc<float>(n);
    auto c = dev.alloc_constant<float>(16);
    auto t = dev.alloc_texture<float>(64);
    std::vector<float> host(n);
    for (int i = 0; i < n; ++i) host[i] = 0.5f * static_cast<float>(i);
    in.copy_from_host(host);
    std::vector<float> chost(16, 3.0f), thost(64, 0.25f);
    c.copy_from_host(chost);
    t.copy_from_host(thost);

    prof::Profiler p;
    LaunchOptions opt;
    opt.prof.sink = &p;
    opt.prof.kernel_name = "multi_space";
    Observed o;
    o.stats = launch(dev, Dim3(n / 64), Dim3(64), opt,
                     ConvergedMultiSpaceKernel{}, in, c, t, out);
    o.out = out.copy_to_host();
    o.counters = prof::derive_counters(dev.spec(), o.stats);
    return o;
  });
}

TEST(TraceBatch, DivergentTripCountsFallBackExactly) {
  run_ab([] {
    Device dev;
    const int n = 128;
    auto out = dev.alloc<float>(n);
    LaunchOptions opt;
    opt.uses_sync = false;
    Observed o;
    o.stats = launch(dev, Dim3(2), Dim3(64), opt, DivergentTripCountKernel{}, out);
    o.out = out.copy_to_host();
    o.counters = prof::derive_counters(dev.spec(), o.stats);
    return o;
  });
}

TEST(TraceBatch, PartiallyConvergedArmsAreInvisible) {
  run_ab([] {
    Device dev;
    const int n = 256;
    auto a = dev.alloc<float>(n);
    auto b = dev.alloc<float>(2 * n);
    auto out = dev.alloc<float>(n);
    std::vector<float> ha(n, 1.5f), hb(2 * n, 2.5f);
    a.copy_from_host(ha);
    b.copy_from_host(hb);
    LaunchOptions opt;
    opt.uses_sync = false;
    Observed o;
    o.stats = launch(dev, Dim3(2), Dim3(128), opt, HalfWarpArmsKernel{}, a, b, out);
    o.out = out.copy_to_host();
    o.counters = prof::derive_counters(dev.spec(), o.stats);
    return o;
  });
}

TEST(TraceBatch, ScatteredStoresKeepUncoalescedAccounting) {
  run_ab([] {
    Device dev;
    const int n = 512;
    auto in = dev.alloc<float>(n);
    auto out = dev.alloc<float>(n);
    std::vector<float> host(n, 1.0f);
    in.copy_from_host(host);
    LaunchOptions opt;
    opt.uses_sync = false;
    Observed o;
    o.stats = launch(dev, Dim3(n / 64), Dim3(64), opt, ScatteredStoreKernel{},
                     in, out);
    o.out = out.copy_to_host();
    o.counters = prof::derive_counters(dev.spec(), o.stats);
    return o;
  });
}

TEST(TraceBatch, SanitizerObservedLaunchIsInvisible) {
  run_ab([] {
    Device dev;
    const int blocks = 4;
    auto in = dev.alloc<float>(blocks * 64);
    auto out = dev.alloc<float>(blocks);
    std::vector<float> host(blocks * 64, 1.0f);
    in.copy_from_host(host);
    LaunchOptions opt;
    opt.sanitize.enabled = true;
    opt.sanitize.abort_on_error = false;
    Observed o;
    o.stats = launch(dev, Dim3(blocks), Dim3(64), opt, StagedReduceKernel{},
                     in, out);
    o.out = out.copy_to_host();
    o.counters = prof::derive_counters(dev.spec(), o.stats);
    return o;
  });
}

TEST(TraceBatch, ScopeSeriesMatchOnTheSectionFourMatmul) {
  // The §4 matmul with a scope session attached: bucket series are derived
  // from the trace pass, so they are the most sensitive downstream consumer.
  run_ab([] {
    Device dev;
    const int n = 128, tile = 16;
    const auto wl = apps::MatmulWorkload::generate(n, 7);
    auto a = dev.alloc<float>(wl.a.size());
    auto b = dev.alloc<float>(wl.b.size());
    auto c = dev.alloc<float>(static_cast<std::size_t>(n) * n);
    a.copy_from_host(wl.a);
    b.copy_from_host(wl.b);
    scope::Session session;
    prof::Profiler p;
    LaunchOptions opt;
    opt.regs_per_thread = 9;
    opt.scope.sink = &session;
    opt.prof.sink = &p;
    opt.prof.kernel_name = "matmul";
    Observed o;
    o.stats = launch(dev, Dim3(n / tile, n / tile), Dim3(tile, tile), opt,
                     apps::MatmulTiledKernel{n, tile, /*unrolled=*/true}, a, b, c);
    o.out = c.copy_to_host();
    o.counters = prof::derive_counters(dev.spec(), o.stats);
    const auto launches = session.launches();
    o.sms = launches.front().scope.sms;
    return o;
  });
}

TEST(TraceBatch, BlockParallelPoolsAgreeWithSequential) {
  // Worker pools give each slot its own arena; per-block traces must merge
  // to the same summary regardless of pool size and recorder path.
  for (int workers : {1, 3}) {
    run_ab([workers] {
      Device dev;
      const int n = 128, tile = 16;
      const auto wl = apps::MatmulWorkload::generate(n, 11);
      auto a = dev.alloc<float>(wl.a.size());
      auto b = dev.alloc<float>(wl.b.size());
      auto c = dev.alloc<float>(static_cast<std::size_t>(n) * n);
      a.copy_from_host(wl.a);
      b.copy_from_host(wl.b);
      WorkerPool pool(workers);
      LaunchOptions opt;
      opt.regs_per_thread = 9;
      opt.pool = workers > 1 ? &pool : nullptr;
      opt.sample_blocks = 16;
      Observed o;
      o.stats = launch(dev, Dim3(n / tile, n / tile), Dim3(tile, tile), opt,
                       apps::MatmulTiledKernel{n, tile, /*unrolled=*/true},
                       a, b, c);
      o.out = c.copy_to_host();
      o.counters = prof::derive_counters(dev.spec(), o.stats);
      return o;
    });
  }
}

TEST(TraceBatch, EnvEscapeHatchControlsTheAmbientDefault) {
  // G80_TRACE_BATCH is re-read on every launch (never cached), so flipping
  // it in-process works; the scoped override beats the environment.
  ASSERT_EQ(ambient_trace_batch(), -1) << "test must start with no override";
  setenv("G80_TRACE_BATCH", "off", 1);
  EXPECT_FALSE(trace_batch_enabled());
  setenv("G80_TRACE_BATCH", "on", 1);
  EXPECT_TRUE(trace_batch_enabled());
  setenv("G80_TRACE_BATCH", "0", 1);
  EXPECT_FALSE(trace_batch_enabled());
  {
    ScopedTraceBatch on(true);
    EXPECT_TRUE(trace_batch_enabled());  // override wins over env
    {
      ScopedTraceBatch off(false);
      EXPECT_FALSE(trace_batch_enabled());
    }
    EXPECT_TRUE(trace_batch_enabled());  // nesting restores the outer override
  }
  unsetenv("G80_TRACE_BATCH");
  EXPECT_TRUE(trace_batch_enabled()) << "batching defaults on";

  // A launch under the env kill switch matches a batched launch exactly.
  auto one = [] {
    Device dev;
    const int n = 128;
    auto in = dev.alloc<float>(n);
    auto out = dev.alloc<float>(n);
    std::vector<float> host(n, 2.0f);
    in.copy_from_host(host);
    LaunchOptions opt;
    opt.uses_sync = false;
    Observed o;
    o.stats = launch(dev, Dim3(2), Dim3(64), opt, ScatteredStoreKernel{}, in, out);
    o.out = out.copy_to_host();
    o.counters = prof::derive_counters(dev.spec(), o.stats);
    return o;
  };
  setenv("G80_TRACE_BATCH", "off", 1);
  const Observed via_env = one();
  unsetenv("G80_TRACE_BATCH");
  const Observed batched = one();
  expect_identical(via_env, batched);
}

}  // namespace
}  // namespace g80
