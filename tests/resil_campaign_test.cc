// Table-driven recovery test over the whole §5 application suite
// (satellite of the g80resil tentpole): for every application, an injected
// g80check fault must be detected (StatusError + sticky Status), the device
// must recover via Device::reset(), and a from-scratch relaunch must
// reproduce the pre-fault output digest bit-for-bit.
//
// This runs the campaign engine in smoke mode — one case per applicable
// fault kind per application — keeping tier-1 fast; the full sweep runs in
// bench/resil_campaign (scripts/check_resil.sh and the bench baseline pin
// its 100% pass rate).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "resil/campaign.h"

namespace g80::resil {
namespace {

class CampaignSmoke : public ::testing::Test {
 protected:
  static const CampaignReport& report() {
    static const CampaignReport r = [] {
      CampaignConfig cfg;
      cfg.smoke = true;
      return run_campaign(default_targets(), cfg);
    }();
    return r;
  }
};

TEST_F(CampaignSmoke, CoversAllThirteenApplications) {
  const auto targets = default_targets();
  EXPECT_EQ(targets.size(), 13u);
  std::set<std::string> seen;
  for (const auto& c : report().cases) seen.insert(c.target);
  for (const auto& t : targets) {
    EXPECT_TRUE(seen.count(t.name)) << "no campaign case ran for " << t.name;
  }
}

TEST_F(CampaignSmoke, EveryCaseDetectsRecoversAndRelaunchesIdentically) {
  ASSERT_GT(report().total(), 0);
  for (const auto& c : report().cases) {
    EXPECT_TRUE(c.detected)
        << c.target << "/" << fault_kind_name(c.kind) << ": fault not detected";
    EXPECT_TRUE(c.recovered)
        << c.target << "/" << fault_kind_name(c.kind)
        << ": Device::reset() did not restore a clean device";
    EXPECT_TRUE(c.identical)
        << c.target << "/" << fault_kind_name(c.kind)
        << ": post-reset relaunch diverged from the clean digest";
  }
  EXPECT_TRUE(report().all_passed()) << report().summary();
}

TEST_F(CampaignSmoke, DetectedStatusesMatchTheInjectedFaultKind) {
  for (const auto& c : report().cases) {
    switch (c.kind) {
      case FaultKind::kCorruptGlobalStore:
        EXPECT_EQ(c.status, Status::kInvalidAddress) << c.target;
        break;
      case FaultKind::kSkipBarrier:
        // A skipped barrier surfaces as whichever violation the sanitizer
        // observes first: the divergent barrier itself, or the shared-memory
        // race the missing barrier exposes.
        EXPECT_TRUE(c.status == Status::kBarrierDivergence ||
                    c.status == Status::kSharedMemoryRace)
            << c.target << ": " << status_name(c.status);
        break;
      case FaultKind::kCorruptSharedStore:
        EXPECT_EQ(c.status, Status::kSharedMemoryRace) << c.target;
        break;
    }
  }
}

TEST_F(CampaignSmoke, BarrierFaultsOnlyRunOnBarrierTargets) {
  const auto targets = default_targets();
  std::set<std::string> barrier_targets, shared_targets;
  for (const auto& t : targets) {
    if (t.has_barrier) barrier_targets.insert(t.name);
    if (t.has_shared_store) shared_targets.insert(t.name);
  }
  for (const auto& c : report().cases) {
    if (c.kind == FaultKind::kSkipBarrier)
      EXPECT_TRUE(barrier_targets.count(c.target)) << c.target;
    if (c.kind == FaultKind::kCorruptSharedStore)
      EXPECT_TRUE(shared_targets.count(c.target)) << c.target;
  }
}

}  // namespace
}  // namespace g80::resil
