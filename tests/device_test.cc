// Device/spec/geometry tests: family variants, Dim3 arithmetic, allocation
// bookkeeping, and CPU-baseline calibration.
#include <gtest/gtest.h>

#include <limits>

#include "common/error.h"
#include "core/cpu_calibration.h"
#include "cudalite/device.h"
#include "cudalite/dim3.h"

namespace g80 {
namespace {

TEST(Dim3, LinearizationRoundTrips) {
  const Dim3 dim(7, 5, 3);
  for (unsigned z = 0; z < dim.z; ++z) {
    for (unsigned y = 0; y < dim.y; ++y) {
      for (unsigned x = 0; x < dim.x; ++x) {
        const Dim3 idx(x, y, z);
        const unsigned lin = linear_index(idx, dim);
        EXPECT_EQ(delinearize(lin, dim), idx);
      }
    }
  }
  EXPECT_EQ(dim.count(), 105u);
}

TEST(Dim3, XIsFastestLikeCuda) {
  const Dim3 dim(16, 16);
  // Thread (1, 0) is linear 1; thread (0, 1) is linear 16 — warps therefore
  // span consecutive x first, which is what makes row-major accesses
  // coalesce.  (Dim3's defaults are 1, sized for extents; index literals
  // must zero the unused coordinates explicitly.)
  EXPECT_EQ(linear_index(Dim3(1, 0, 0), dim), 1u);
  EXPECT_EQ(linear_index(Dim3(0, 1, 0), dim), 16u);
}

TEST(VecTypes, AlignmentMatchesAccessSizes) {
  static_assert(sizeof(Float2) == 8 && alignof(Float2) == 8);
  static_assert(sizeof(Float4) == 16 && alignof(Float4) == 16);
  SUCCEED();
}

TEST(DeviceSpec, FamilyVariantsDiffer) {
  const auto gtx = DeviceSpec::geforce_8800_gtx();
  const auto ultra = DeviceSpec::geforce_8800_ultra();
  const auto gts = DeviceSpec::geforce_8800_gts();
  EXPECT_EQ(gtx.num_sms, 16);
  EXPECT_EQ(gts.num_sms, 12);
  EXPECT_GT(ultra.peak_mad_gflops(), gtx.peak_mad_gflops());
  EXPECT_LT(gts.peak_mad_gflops(), gtx.peak_mad_gflops());
  EXPECT_GT(ultra.dram_bandwidth_gbs, gtx.dram_bandwidth_gbs);
  // Resource structure is shared across the family (same architecture).
  EXPECT_EQ(ultra.registers_per_sm, gtx.registers_per_sm);
  EXPECT_EQ(gts.max_threads_per_sm, gtx.max_threads_per_sm);
}

TEST(Device, AllocationsAreAlignedAndDisjoint) {
  Device dev;
  auto a = dev.alloc<float>(100);
  auto b = dev.alloc<float>(100);
  EXPECT_EQ(a.device_addr() % 256, 0u);
  EXPECT_EQ(b.device_addr() % 256, 0u);
  EXPECT_GE(b.device_addr(), a.device_addr() + 400);
  EXPECT_GE(dev.bytes_allocated(), 800u);
}

TEST(Device, GlobalMemoryExhaustionThrows) {
  DeviceSpec tiny = DeviceSpec::geforce_8800_gtx();
  tiny.global_mem_bytes = 1 << 20;
  Device dev(tiny);
  (void)dev.alloc<float>(200'000);  // 800 KB fits
  EXPECT_THROW(dev.alloc<float>(200'000), Error);  // next 800 KB does not
  EXPECT_EQ(dev.get_last_error(), Status::kMemoryAllocation);
  // A failed allocation consumes no address space: a fitting one succeeds.
  EXPECT_NO_THROW(dev.alloc<float>(10'000));
}

TEST(Device, ZeroElementAllocationRejected) {
  Device dev;
  EXPECT_THROW(dev.alloc<float>(0), StatusError);
  EXPECT_EQ(dev.get_last_error(), Status::kInvalidValue);
  EXPECT_THROW(dev.alloc_constant<float>(0), StatusError);
  EXPECT_THROW(dev.alloc_texture<float>(0), StatusError);
  EXPECT_EQ(dev.bytes_allocated(), 0u);
}

TEST(Device, AllocationSizeOverflowRejected) {
  Device dev;
  // n * sizeof(T) wraps 64 bits — must be rejected before any address
  // arithmetic, not after it silently wraps past the capacity check.
  const auto huge = std::numeric_limits<std::size_t>::max() / 2;
  EXPECT_THROW(dev.alloc<double>(huge), StatusError);
  EXPECT_EQ(dev.get_last_error(), Status::kInvalidValue);
  EXPECT_EQ(dev.bytes_allocated(), 0u);
}

TEST(Device, BufferFillAndCopy) {
  Device dev;
  auto b = dev.alloc<int>(64);
  b.fill(7);
  const auto host = b.copy_to_host();
  for (int v : host) EXPECT_EQ(v, 7);
}

TEST(CpuCalibration, PositiveAndCached) {
  const auto& cal = cpu_calibration();
  EXPECT_GT(cal.host_gflops, 0.1);
  EXPECT_GT(cal.host_to_opteron(), 0.0);
  // Cached: a second call returns the identical measurement.
  EXPECT_DOUBLE_EQ(cpu_calibration().host_gflops, cal.host_gflops);
  // Scaling is linear.
  EXPECT_DOUBLE_EQ(to_opteron_seconds(2.0), 2.0 * to_opteron_seconds(1.0));
}


TEST(TransferLedger, LifetimeTotalsSurviveReset) {
  TransferLedger ledger;
  ledger.record_h2d(1000);
  ledger.record_d2h(500);
  EXPECT_EQ(ledger.h2d_bytes(), 1000u);
  EXPECT_EQ(ledger.lifetime_total_bytes(), 1500u);
  // Epoch reset (phase scoping) zeroes the epoch view only.
  ledger.reset();
  EXPECT_EQ(ledger.h2d_bytes(), 0u);
  EXPECT_EQ(ledger.d2h_bytes(), 0u);
  EXPECT_EQ(ledger.transfer_count(), 0u);
  EXPECT_EQ(ledger.lifetime_h2d_bytes(), 1000u);
  EXPECT_EQ(ledger.lifetime_d2h_bytes(), 500u);
  EXPECT_EQ(ledger.lifetime_transfer_count(), 2u);
  // Post-reset traffic accumulates into both views again.
  ledger.record_h2d(100);
  EXPECT_EQ(ledger.h2d_bytes(), 100u);
  EXPECT_EQ(ledger.lifetime_h2d_bytes(), 1100u);
}

TEST(TransferLedger, DeviceResetPreservesLifetimeAccounting) {
  // Regression: Device::reset() used to wipe the ledger entirely, so a
  // g80serve session whose slot device was reset after a faulty job lost
  // the bytes its *successful* jobs had already moved.  Cumulative totals
  // must survive the reset; only the epoch view starts over.
  Device dev;
  {
    auto b = dev.alloc<float>(256);
    std::vector<float> host(256, 1.0f);
    b.copy_from_host(host);
    (void)b.copy_to_host();
  }
  const std::uint64_t bytes = 256 * sizeof(float);
  EXPECT_EQ(dev.ledger().h2d_bytes(), bytes);
  EXPECT_EQ(dev.ledger().lifetime_total_bytes(), 2 * bytes);

  dev.reset();
  EXPECT_EQ(dev.ledger().h2d_bytes(), 0u);
  EXPECT_EQ(dev.ledger().total_bytes(), 0u);
  EXPECT_EQ(dev.ledger().lifetime_h2d_bytes(), bytes);
  EXPECT_EQ(dev.ledger().lifetime_d2h_bytes(), bytes);
  EXPECT_EQ(dev.ledger().lifetime_transfer_count(), 2u);

  // And the lifetime view keeps integrating across generations.
  auto b2 = dev.alloc<float>(64);
  std::vector<float> host2(64, 2.0f);
  b2.copy_from_host(host2);
  EXPECT_EQ(dev.ledger().lifetime_h2d_bytes(), bytes + 64 * sizeof(float));
  EXPECT_GT(dev.ledger().lifetime_seconds(dev.spec()), 0.0);
}

}  // namespace
}  // namespace g80
