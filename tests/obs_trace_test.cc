// g80obs request tracing: RequestTrace span lifecycle and completeness
// rules, TraceRing wraparound, and the end-to-end span tree an in-process
// g80serve daemon produces — cold simulation, cache hit, the g80resil retry
// path (attempt events via the scheduler's ScopedAttemptObserver), metrics
// reconciliation against traces, the slow-request log, and the metrics /
// traces protocol ops with their not_permitted gates.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/server.h"

namespace g80::serve {
namespace {

using obs::RequestTrace;
using obs::TraceRecord;
using obs::TraceRing;

// Unique, short socket paths (sockaddr_un caps them near 108 bytes).
std::string test_socket(const char* tag) {
  static int counter = 0;
  return "/tmp/g80o_" + std::to_string(::getpid()) + "_" + tag + "_" +
         std::to_string(counter++) + ".sock";
}

JobRequest saxpy_job(std::int64_t n = 4096, std::int64_t seed = 3) {
  JobRequest req;
  req.op = Op::kLaunch;
  req.kernel = "saxpy";
  req.n = n;
  req.seed = seed;
  return req;
}

std::vector<std::string> span_names(const TraceRecord& rec) {
  std::vector<std::string> names;
  for (const auto& s : rec.spans) names.push_back(s.name);
  return names;
}

int count_events(const TraceRecord& rec, const std::string& name) {
  int n = 0;
  for (const auto& e : rec.events) n += e.name == name;
  return n;
}

// ---- RequestTrace unit ----------------------------------------------------

TEST(ObsRequestTrace, SpanLifecycleProducesCompleteRecord) {
  RequestTrace tr(7, obs::steady_seconds());
  tr.set_identity("launch", 42);
  const int parse = tr.open("parse");
  tr.close(parse);
  const int sim = tr.open("simulate");
  tr.event("attempt_start", "attempt 0 fallback 0");
  tr.close(sim, "ok");

  const TraceRecord rec = tr.finish("ok");
  EXPECT_EQ(rec.session, 7u);
  EXPECT_EQ(rec.request_id, 42);
  EXPECT_EQ(rec.op, "launch");
  EXPECT_EQ(rec.status, "ok");
  EXPECT_TRUE(rec.complete);
  EXPECT_GE(rec.total_s, 0.0);
  ASSERT_EQ(rec.spans.size(), 2u);
  EXPECT_EQ(span_names(rec), (std::vector<std::string>{"parse", "simulate"}));
  EXPECT_TRUE(rec.spans[0].closed());
  EXPECT_EQ(rec.spans[1].note, "ok");
  EXPECT_LE(rec.spans[0].start_s, rec.spans[1].start_s);
  ASSERT_EQ(rec.events.size(), 1u);
  EXPECT_EQ(rec.events[0].name, "attempt_start");
  EXPECT_EQ(rec.events[0].note, "attempt 0 fallback 0");
}

TEST(ObsRequestTrace, OpenSpanOrEmptyTraceIsIncomplete) {
  RequestTrace open_span(1, obs::steady_seconds());
  open_span.open("parse");
  EXPECT_FALSE(open_span.finish("ok").complete);

  RequestTrace empty(2, obs::steady_seconds());
  EXPECT_FALSE(empty.finish("ok").complete);
}

TEST(ObsRequestTrace, CloseAllClosesOnlyOpenSpans) {
  RequestTrace tr(3, obs::steady_seconds());
  const int a = tr.open("parse");
  tr.close(a, "done");
  tr.open("simulate");
  tr.open("respond");
  tr.close_all("cancelled");
  // First close wins: a later close (or close_all) must not overwrite.
  tr.close(a, "overwrite");

  const TraceRecord rec = tr.finish("not_ready");
  EXPECT_TRUE(rec.complete);
  EXPECT_EQ(rec.spans[0].note, "done");
  EXPECT_EQ(rec.spans[1].note, "cancelled");
  EXPECT_EQ(rec.spans[2].note, "cancelled");
}

TEST(ObsRequestTrace, CloseWithBogusIndexIsIgnored) {
  RequestTrace tr(4, obs::steady_seconds());
  const int a = tr.open("parse");
  tr.close(-1);
  tr.close(99);
  tr.close(a);
  EXPECT_TRUE(tr.finish("ok").complete);
}

// ---- TraceRing ------------------------------------------------------------

TEST(ObsTraceRing, KeepsMostRecentCapacityRecords) {
  TraceRing ring(3);
  for (int i = 1; i <= 5; ++i) {
    TraceRecord rec;
    rec.request_id = i;
    ring.add(rec);
  }
  EXPECT_EQ(ring.size(), 3u);
  const auto recs = ring.snapshot();
  ASSERT_EQ(recs.size(), 3u);
  // Oldest at the front; 1 and 2 were evicted.
  EXPECT_EQ(recs[0].request_id, 3);
  EXPECT_EQ(recs[2].request_id, 5);
}

TEST(ObsTraceRing, CapacityZeroDisablesStorage) {
  TraceRing ring(0);
  ring.add(TraceRecord{});
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(ObsTraceRing, TracesJsonRoundTrips) {
  RequestTrace tr(9, obs::steady_seconds());
  tr.set_identity("launch", 11);
  tr.close(tr.open("parse"));
  tr.event("attempt_start");
  const std::string json = obs::traces_json({tr.finish("ok")});

  const JsonValue doc = JsonValue::parse(json);
  const JsonValue& arr = doc.require("traces");
  ASSERT_EQ(arr.size(), 1u);
  const JsonValue& t = arr.at(0);
  EXPECT_EQ(t.require("session").as_int(), 9);
  EXPECT_EQ(t.require("id").as_int(), 11);
  EXPECT_EQ(t.require("op").as_string(), "launch");
  EXPECT_TRUE(t.require("complete").as_bool());
  EXPECT_EQ(t.require("spans").at(0).require("name").as_string(), "parse");
  EXPECT_EQ(t.require("events").at(0).require("name").as_string(),
            "attempt_start");
}

// ---- end-to-end span trees ------------------------------------------------

const TraceRecord* find_trace(const std::vector<TraceRecord>& recs, Op op,
                              const std::string& status) {
  for (const auto& r : recs) {
    if (r.op == op_name(op) && r.status == status) return &r;
  }
  return nullptr;
}

TEST(ObsServeTrace, ColdJobTraceCoversEveryPhase) {
  ServerConfig cfg;
  cfg.socket_path = test_socket("cold");
  cfg.obs.log_level = obs::LogLevel::kOff;
  Server server(cfg);
  server.start();
  Client client(cfg.socket_path, "trace-test");

  const Response r = client.call(saxpy_job());
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.source, "sim");

  // The response is written inside the respond span, so the trace finishes
  // (and reaches the ring) only after the client already has its bytes:
  // join every server thread before asserting.
  server.shutdown();

  const auto recs = server.traces();
  const TraceRecord* rec = find_trace(recs, Op::kLaunch, "ok");
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->complete);
  EXPECT_EQ(span_names(*rec),
            (std::vector<std::string>{"parse", "cache_lookup", "admission",
                                      "queue_wait", "simulate", "cache_store",
                                      "respond"}));
  // Span notes carry phase outcomes: the lookup missed, the sim succeeded.
  EXPECT_EQ(rec->spans[1].note, "miss");
  EXPECT_EQ(rec->spans[4].note, "ok");
  // The pool policy is enabled by default, so the single successful attempt
  // shows up as attempt_start + attempt_ok.
  EXPECT_EQ(count_events(*rec, "attempt_start"), 1);
  EXPECT_EQ(count_events(*rec, "attempt_ok"), 1);
  // Ring records are daemon-relative and self-consistent.
  EXPECT_GE(rec->start_s, 0.0);
  for (const auto& s : rec->spans) {
    EXPECT_GE(s.start_s, 0.0);
    EXPECT_LE(s.end_s, rec->total_s + 1e-9);
  }
}

TEST(ObsServeTrace, CacheHitTraceHasNoSimulatePhase) {
  ServerConfig cfg;
  cfg.socket_path = test_socket("hit");
  cfg.obs.log_level = obs::LogLevel::kOff;
  Server server(cfg);
  server.start();
  Client client(cfg.socket_path, "trace-test");

  ASSERT_TRUE(client.call(saxpy_job()).ok());
  const Response warm = client.call(saxpy_job());
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.source, "cache_mem");
  server.shutdown();  // traces land after the response: join first

  const auto recs = server.traces();
  ASSERT_GE(recs.size(), 3u);  // hello + cold + warm
  // The cold job's trace lands from the worker thread after its response,
  // so ring order vs the warm trace is not deterministic — select the hit
  // by its cache_lookup note instead of by position.
  const TraceRecord* rec = nullptr;
  for (const auto& r : recs) {
    if (r.spans.size() > 1 && r.spans[1].note == "mem") rec = &r;
  }
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->complete);
  EXPECT_EQ(span_names(*rec),
            (std::vector<std::string>{"parse", "cache_lookup", "respond"}));
  EXPECT_TRUE(rec->events.empty());  // no scheduler, no attempts

  const auto snap = server.metrics_snapshot();
  EXPECT_DOUBLE_EQ(snap.value("serve.cache.mem_hits_total"), 1.0);
  EXPECT_DOUBLE_EQ(snap.value("serve.cache.misses_total"), 1.0);
}

TEST(ObsServeTrace, RetryPathEmitsAttemptEvents) {
  ServerConfig cfg;
  cfg.socket_path = test_socket("retry");
  cfg.obs.log_level = obs::LogLevel::kOff;
  // Every job's first attempt fails with a synthetic transient fault; the
  // pool default allows one retry, so jobs recover on attempt 1.
  cfg.pool.policy.inject_transient_failures = 1;
  Server server(cfg);
  server.start();
  Client client(cfg.socket_path, "trace-test");

  const Response r = client.call(saxpy_job());
  ASSERT_TRUE(r.ok()) << r.error;
  server.shutdown();  // traces land after the response: join first

  const auto recs = server.traces();
  const TraceRecord* rec = find_trace(recs, Op::kLaunch, "ok");
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->complete);
  EXPECT_EQ(count_events(*rec, "attempt_start"), 2);
  EXPECT_EQ(count_events(*rec, "attempt_retry"), 1);
  EXPECT_EQ(count_events(*rec, "attempt_recovered"), 1);
  EXPECT_EQ(count_events(*rec, "attempt_ok"), 0);

  const auto snap = server.metrics_snapshot();
  EXPECT_DOUBLE_EQ(snap.value("serve.job_retries_total"), 1.0);
  EXPECT_DOUBLE_EQ(snap.value("serve.jobs_ok_total"), 1.0);
}

TEST(ObsServeTrace, MetricsReconcileWithTraces) {
  ServerConfig cfg;
  cfg.socket_path = test_socket("recon");
  cfg.obs.log_level = obs::LogLevel::kOff;
  Server server(cfg);
  server.start();
  Client client(cfg.socket_path, "trace-test");

  JobRequest ping;
  ping.op = Op::kPing;
  ASSERT_TRUE(client.call(ping).ok());
  ASSERT_TRUE(client.call(saxpy_job(4096, 1)).ok());
  ASSERT_TRUE(client.call(saxpy_job(4096, 2)).ok());
  ASSERT_TRUE(client.call(saxpy_job(4096, 1)).ok());  // cache hit
  server.shutdown();  // traces land after the response: join first

  // hello + ping + 3 launches = 5 requests, every one answered and traced.
  const auto snap = server.metrics_snapshot();
  EXPECT_DOUBLE_EQ(snap.value("serve.requests_total"), 5.0);
  EXPECT_DOUBLE_EQ(snap.value("serve.responses_total"), 5.0);
  EXPECT_DOUBLE_EQ(snap.value("serve.errors_total"), 0.0);
  EXPECT_DOUBLE_EQ(snap.value("serve.traces_total"), 5.0);
  EXPECT_DOUBLE_EQ(snap.value("serve.traces_complete_total"), 5.0);

  const auto* total = snap.find("serve.latency.total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->count, 5u);
  // Per-phase histograms: 3 launches parsed + ping + hello; 2 simulated.
  EXPECT_EQ(snap.find("serve.latency.parse")->count, 5u);
  EXPECT_EQ(snap.find("serve.latency.simulate")->count, 2u);
  EXPECT_EQ(snap.find("serve.latency.cache_lookup")->count, 3u);

  const auto recs = server.traces();
  EXPECT_EQ(recs.size(), 5u);
  EXPECT_TRUE(std::all_of(recs.begin(), recs.end(),
                          [](const TraceRecord& r) { return r.complete; }));
}

TEST(ObsServeTrace, RejectedRequestTraceIsCompleteAndCountsAsError) {
  ServerConfig cfg;
  cfg.socket_path = test_socket("rej");
  cfg.obs.log_level = obs::LogLevel::kOff;
  Server server(cfg);
  server.start();
  Client client(cfg.socket_path, "trace-test");

  JobRequest bad = saxpy_job();
  bad.kernel = "no-such-kernel";
  const Response r = client.call(bad);
  EXPECT_FALSE(r.ok());
  server.shutdown();  // traces land after the response: join first

  const auto recs = server.traces();
  const TraceRecord& rec = recs.back();
  EXPECT_NE(rec.status, "ok");
  EXPECT_TRUE(rec.complete);  // error unwinding must still close every span
  EXPECT_EQ(rec.spans.back().name, "respond");

  const auto snap = server.metrics_snapshot();
  EXPECT_DOUBLE_EQ(snap.value("serve.errors_total"), 1.0);
  EXPECT_DOUBLE_EQ(snap.value("serve.traces_complete_total"),
                   snap.value("serve.traces_total"));
}

TEST(ObsServeTrace, TraceRingHonorsConfiguredCapacity) {
  ServerConfig cfg;
  cfg.socket_path = test_socket("cap");
  cfg.obs.log_level = obs::LogLevel::kOff;
  cfg.obs.trace_ring = 2;
  Server server(cfg);
  server.start();
  Client client(cfg.socket_path, "trace-test");

  JobRequest ping;
  ping.op = Op::kPing;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(client.call(ping).ok());
  server.shutdown();  // traces land after the response: join first

  const auto recs = server.traces();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].op, "ping");
  EXPECT_EQ(recs[1].op, "ping");
}

// ---- slow-request logging -------------------------------------------------

TEST(ObsServeTrace, SlowRequestEmitsWarnWithPhaseTimings) {
  std::mutex mu;
  std::vector<std::string> lines;
  ServerConfig cfg;
  cfg.socket_path = test_socket("slow");
  cfg.obs.slow_request_s = 1e-9;  // every request is "slow"
  cfg.obs.log_json = true;
  cfg.obs.log_sink = [&](std::string_view l) {
    std::lock_guard<std::mutex> lock(mu);
    lines.emplace_back(l);
  };
  Server server(cfg);
  server.start();
  Client client(cfg.socket_path, "trace-test");
  ASSERT_TRUE(client.call(saxpy_job()).ok());
  server.shutdown();

  std::lock_guard<std::mutex> lock(mu);
  const JsonValue* slow = nullptr;
  std::vector<JsonValue> docs;
  for (const auto& l : lines) docs.push_back(JsonValue::parse(l));
  for (const auto& d : docs) {
    if (d.require("event").as_string() == "slow_request" &&
        d.get_string("op", "") == "launch") {
      slow = &d;
    }
  }
  ASSERT_NE(slow, nullptr);
  EXPECT_EQ(slow->require("level").as_string(), "warn");
  EXPECT_EQ(slow->require("status").as_string(), "ok");
  EXPECT_GT(slow->require("total_s").as_number(), 0.0);
  // Per-phase timings ride on the event.
  EXPECT_NE(slow->get("simulate_s"), nullptr);
  EXPECT_NE(slow->get("queue_wait_s"), nullptr);
}

// ---- protocol ops and exporters -------------------------------------------

TEST(ObsServeTrace, MetricsAndTracesOpsExport) {
  ServerConfig cfg;
  cfg.socket_path = test_socket("ops");
  cfg.obs.log_level = obs::LogLevel::kOff;
  Server server(cfg);
  server.start();
  Client client(cfg.socket_path, "trace-test");
  ASSERT_TRUE(client.call(saxpy_job()).ok());

  JobRequest mreq;
  mreq.op = Op::kMetrics;
  const Response mr = client.call(mreq);
  ASSERT_TRUE(mr.ok()) << mr.error;
  const JsonValue metrics = JsonValue::parse(mr.result_json);
  EXPECT_GT(metrics.require("metrics").size(), 0u);
  const std::string prom = obs::prometheus_text(metrics);
  EXPECT_NE(prom.find("g80_serve_requests_total"), std::string::npos);
  EXPECT_NE(prom.find("g80_serve_latency_total_bucket{le=\"+Inf\"}"),
            std::string::npos);

  // The launch trace reaches the ring just after its response is written;
  // poll the op briefly instead of racing it.
  JobRequest treq;
  treq.op = Op::kTraces;
  std::string traces_payload;
  for (int tries = 0; tries < 100; ++tries) {
    const Response tr = client.call(treq);
    ASSERT_TRUE(tr.ok()) << tr.error;
    traces_payload = tr.result_json;
    if (traces_payload.find("\"launch\"") != std::string::npos) break;
    ::usleep(10000);
  }
  const JsonValue traces = JsonValue::parse(traces_payload);
  EXPECT_GT(traces.require("traces").size(), 0u);
  const std::string chrome = obs::chrome_trace_from_traces(traces);
  const JsonValue doc = JsonValue::parse(chrome);
  EXPECT_GT(doc.require("traceEvents").size(), 0u);
  EXPECT_NE(chrome.find("launch [ok]"), std::string::npos);
  EXPECT_NE(chrome.find("queue_wait"), std::string::npos);

  server.shutdown();
}

TEST(ObsServeTrace, DisabledObsAnswersNotPermitted) {
  ServerConfig cfg;
  cfg.socket_path = test_socket("off");
  cfg.obs.metrics = false;
  cfg.obs.trace_ring = 0;
  cfg.obs.log_level = obs::LogLevel::kOff;
  Server server(cfg);
  server.start();
  Client client(cfg.socket_path, "trace-test");

  // The service itself still works on the pre-obs fast path.
  ASSERT_TRUE(client.call(saxpy_job()).ok());
  EXPECT_TRUE(server.metrics_snapshot().samples.empty());
  EXPECT_TRUE(server.traces().empty());

  JobRequest mreq;
  mreq.op = Op::kMetrics;
  EXPECT_EQ(client.call(mreq).status, Status::kNotPermitted);
  JobRequest treq;
  treq.op = Op::kTraces;
  EXPECT_EQ(client.call(treq).status, Status::kNotPermitted);

  server.shutdown();
}

}  // namespace
}  // namespace g80::serve
