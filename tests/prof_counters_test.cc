// g80prof counter correctness on hand-computable kernels: every expectation
// below is a number a reader can derive from the G80 rules — one coalesced
// 16-thread load is exactly 1 gld_coalesced, a stride-2 shared access by a
// half-warp is exactly 1 warp_serialize replay, and so on — plus the
// aggregation and zero-perturbation contracts of the Profiler itself.
#include <gtest/gtest.h>

#include "cudalite/ctx.h"
#include "cudalite/device.h"
#include "cudalite/launch.h"
#include "prof/counters.h"
#include "prof/profiler.h"

namespace g80 {
namespace {

// ---- Hand-computable kernels ----------------------------------------------------

struct CoalescedLoadKernel {  // lane i loads word i: textbook coalescing
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& in,
                  DeviceBuffer<float>& out) const {
    auto In = ctx.global(in);
    auto Out = ctx.global(out);
    const int i = ctx.global_thread_x();
    Out.st(i, In.ld(i));
  }
};

struct Stride2LoadKernel {  // lane i loads word 2i: breaks the strict rule
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& in,
                  DeviceBuffer<float>& out) const {
    auto In = ctx.global(in);
    auto Out = ctx.global(out);
    const int i = ctx.global_thread_x();
    Out.st(i, In.ld(static_cast<std::size_t>(i) * 2));
  }
};

struct SharedStride2Kernel {  // stride-2 shared words: 2-way bank conflicts
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& out) const {
    auto S = ctx.template shared<float>(2 * 256);
    auto O = ctx.global(out);
    const int t = static_cast<int>(ctx.thread_idx().x);
    S.st(static_cast<std::size_t>(t) * 2, 1.0f);
    O.st(ctx.global_thread_x(), 1.0f);
  }
};

struct HalfWarpDivergentKernel {  // lanes 0-15 vs 16-31 disagree per warp
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& out) const {
    auto O = ctx.global(out);
    const int i = ctx.global_thread_x();
    if (ctx.branch(i % 32 < 16)) {
      O.st(i, ctx.add(1.0f, 1.0f));
    } else {
      O.st(i, ctx.add(2.0f, 2.0f));
    }
  }
};

struct Mad4Kernel {  // 4 mads + 1 coalesced load + 1 coalesced store
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& data) const {
    auto D = ctx.global(data);
    const int i = ctx.global_thread_x();
    float v = D.ld(i);
    for (int k = 0; k < 4; ++k) v = ctx.mad(v, 1.0f, 1.0f);
    D.st(i, v);
  }
};

LaunchOptions exact_options() {
  LaunchOptions opt;
  opt.uses_sync = false;
  opt.sample_blocks = 1;  // single-block grids below: the trace is exact
  return opt;
}

// ---- Counter derivation -----------------------------------------------------------

TEST(ProfCounters, SixteenThreadCoalescedLoadIsOneGldCoalesced) {
  Device dev;
  auto in = dev.alloc<float>(16);
  auto out = dev.alloc<float>(16);
  const auto s = launch(dev, Dim3(1), Dim3(16), exact_options(),
                        CoalescedLoadKernel{}, in, out);
  const auto c = prof::derive_counters(dev.spec(), s);
  EXPECT_EQ(c.gld_coalesced, 1u);
  EXPECT_EQ(c.gld_uncoalesced, 0u);
  EXPECT_EQ(c.gst_coalesced, 1u);
  EXPECT_EQ(c.gst_uncoalesced, 0u);
  EXPECT_DOUBLE_EQ(c.coalesced_fraction(), 1.0);
  // 16 threads of a 32-wide warp: one warp sampled, whole grid sampled.
  EXPECT_EQ(c.warps_sampled, 1u);
  EXPECT_EQ(c.blocks_sampled, 1u);
  EXPECT_EQ(c.blocks_total, 1u);
  EXPECT_DOUBLE_EQ(c.grid_scale(), 1.0);
}

TEST(ProfCounters, Stride2LoadIsOneGldUncoalesced) {
  Device dev;
  auto in = dev.alloc<float>(32);
  auto out = dev.alloc<float>(16);
  const auto s = launch(dev, Dim3(1), Dim3(16), exact_options(),
                        Stride2LoadKernel{}, in, out);
  const auto c = prof::derive_counters(dev.spec(), s);
  EXPECT_EQ(c.gld_coalesced, 0u);
  EXPECT_EQ(c.gld_uncoalesced, 1u);
  EXPECT_EQ(c.gst_coalesced, 1u);  // the output store still coalesces
  EXPECT_EQ(c.gst_uncoalesced, 0u);
  EXPECT_DOUBLE_EQ(c.coalesced_fraction(), 0.5);
  // An uncoalesced half-warp issues one transaction per active lane.
  EXPECT_GE(c.global_transactions, 16u);
}

TEST(ProfCounters, SharedStride2SerializationCountsExactly) {
  Device dev;
  // 16 threads: one half-warp hits 8 banks twice -> one extra pass.
  {
    auto out = dev.alloc<float>(16);
    const auto s = launch(dev, Dim3(1), Dim3(16), exact_options(),
                          SharedStride2Kernel{}, out);
    const auto c = prof::derive_counters(dev.spec(), s);
    EXPECT_EQ(c.warp_serialize, 1u);
    EXPECT_EQ(c.shared_bank_replays, 1u);
    EXPECT_EQ(c.const_serialize, 0u);
  }
  // 32 threads: two half-warps, one replay each.
  {
    auto out = dev.alloc<float>(32);
    const auto s = launch(dev, Dim3(1), Dim3(32), exact_options(),
                          SharedStride2Kernel{}, out);
    const auto c = prof::derive_counters(dev.spec(), s);
    EXPECT_EQ(c.warp_serialize, 2u);
  }
}

TEST(ProfCounters, HalfWarpDivergenceIsOneDivergentBranch) {
  Device dev;
  auto out = dev.alloc<float>(32);
  const auto s = launch(dev, Dim3(1), Dim3(32), exact_options(),
                        HalfWarpDivergentKernel{}, out);
  const auto c = prof::derive_counters(dev.spec(), s);
  EXPECT_EQ(c.branch, 1u);
  EXPECT_EQ(c.divergent_branch, 1u);
  EXPECT_DOUBLE_EQ(c.divergent_branch_fraction(), 1.0);
}

TEST(ProfCounters, InstructionMixAndFmadFraction) {
  Device dev;
  auto d = dev.alloc<float>(32);
  const auto s =
      launch(dev, Dim3(1), Dim3(32), exact_options(), Mad4Kernel{}, d);
  const auto c = prof::derive_counters(dev.spec(), s);
  // One warp: 4 fmads + 1 load + 1 store = 6 warp-level instructions.
  EXPECT_EQ(c.instructions, 6u);
  EXPECT_EQ(c.mix[OpClass::kFMad], 4u);
  EXPECT_DOUBLE_EQ(c.fmad_fraction(), 4.0 / 6.0);
  // Lane flops: 32 threads x 4 mads x 2 flops each.
  EXPECT_DOUBLE_EQ(c.flops, 32.0 * 4 * 2);
  EXPECT_EQ(c.sync, 0u);
}

TEST(ProfCounters, OccupancyFieldsMatchLaunchStats) {
  Device dev;
  auto in = dev.alloc<float>(4096);
  auto out = dev.alloc<float>(4096);
  LaunchOptions opt;
  opt.uses_sync = false;
  const auto s = launch(dev, Dim3(16), Dim3(256), opt, CoalescedLoadKernel{},
                        in, out);
  const auto c = prof::derive_counters(dev.spec(), s);
  EXPECT_DOUBLE_EQ(c.achieved_occupancy, s.occupancy.fraction(dev.spec()));
  EXPECT_EQ(c.blocks_per_sm, s.occupancy.blocks_per_sm);
  EXPECT_EQ(c.active_warps_per_sm, s.occupancy.active_warps_per_sm);
  EXPECT_EQ(c.blocks_total, 16u);
}

// ---- Profiler session semantics ---------------------------------------------------

TEST(Profiler, AggregatesLaunchesByKernelName) {
  Device dev;
  prof::Profiler p;
  auto in = dev.alloc<float>(16);
  auto out = dev.alloc<float>(16);
  LaunchOptions opt = exact_options();
  opt.prof.sink = &p;
  opt.prof.kernel_name = "copy16";
  launch(dev, Dim3(1), Dim3(16), opt, CoalescedLoadKernel{}, in, out);
  launch(dev, Dim3(1), Dim3(16), opt, CoalescedLoadKernel{}, in, out);

  EXPECT_EQ(p.total_launches(), 2u);
  const auto ks = p.kernels();
  ASSERT_EQ(ks.size(), 1u);
  EXPECT_EQ(ks[0].name, "copy16");
  EXPECT_EQ(ks[0].launches, 2u);
  // Counters sum across launches; occupancy stays per-launch.
  EXPECT_EQ(ks[0].counters.gld_coalesced, 2u);
  EXPECT_EQ(ks[0].counters.gst_coalesced, 2u);
  EXPECT_EQ(ks[0].counters.blocks_total, 2u);
  EXPECT_GT(ks[0].modeled_seconds, 0.0);
}

TEST(Profiler, DistinctKernelNamesGetDistinctProfiles) {
  Device dev;
  prof::Profiler p;
  auto in = dev.alloc<float>(32);
  auto out = dev.alloc<float>(16);
  LaunchOptions opt = exact_options();
  opt.prof.sink = &p;
  opt.prof.kernel_name = "coalesced";
  launch(dev, Dim3(1), Dim3(16), opt, CoalescedLoadKernel{}, in, out);
  opt.prof.kernel_name = "strided";
  launch(dev, Dim3(1), Dim3(16), opt, Stride2LoadKernel{}, in, out);

  const auto ks = p.kernels();
  ASSERT_EQ(ks.size(), 2u);  // first-launch order
  EXPECT_EQ(ks[0].name, "coalesced");
  EXPECT_EQ(ks[1].name, "strided");
  EXPECT_EQ(ks[0].counters.gld_uncoalesced, 0u);
  EXPECT_EQ(ks[1].counters.gld_uncoalesced, 1u);
}

TEST(Profiler, AttachingASinkDoesNotPerturbResults) {
  Device dev;
  const int n = 512;
  std::vector<float> host(n);
  for (int i = 0; i < n; ++i) host[i] = 0.25f * static_cast<float>(i);

  auto run = [&](prof::Profiler* sink) {
    auto d = dev.alloc<float>(n);
    d.copy_from_host(host);
    LaunchOptions opt;
    opt.uses_sync = false;
    opt.prof.sink = sink;
    opt.prof.kernel_name = "mad4";
    launch(dev, Dim3(n / 64), Dim3(64), opt, Mad4Kernel{}, d);
    return d.copy_to_host();
  };

  prof::Profiler p;
  const auto plain = run(nullptr);
  const auto profiled = run(&p);
  ASSERT_EQ(plain.size(), profiled.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    // Bit-identical, not approximately equal: the functional pass must not
    // observe the profiler at all.
    ASSERT_EQ(plain[i], profiled[i]) << "at " << i;
  }
  EXPECT_EQ(p.total_launches(), 1u);
}

TEST(Profiler, ClearEmptiesTheSession) {
  Device dev;
  prof::Profiler p;
  auto in = dev.alloc<float>(16);
  auto out = dev.alloc<float>(16);
  LaunchOptions opt = exact_options();
  opt.prof.sink = &p;
  launch(dev, Dim3(1), Dim3(16), opt, CoalescedLoadKernel{}, in, out);
  p.record_transfer(/*h2d=*/true, 1024, 1e-6);
  ASSERT_EQ(p.total_launches(), 1u);
  ASSERT_EQ(p.transfers().h2d_count, 1u);
  p.clear();
  EXPECT_EQ(p.total_launches(), 0u);
  EXPECT_TRUE(p.kernels().empty());
  EXPECT_EQ(p.transfers().h2d_count, 0u);
}

TEST(Profiler, UnnamedLaunchFallsBackToDefaultKey) {
  Device dev;
  prof::Profiler p;
  auto in = dev.alloc<float>(16);
  auto out = dev.alloc<float>(16);
  LaunchOptions opt = exact_options();
  opt.prof.sink = &p;  // no kernel_name set
  launch(dev, Dim3(1), Dim3(16), opt, CoalescedLoadKernel{}, in, out);
  const auto ks = p.kernels();
  ASSERT_EQ(ks.size(), 1u);
  EXPECT_EQ(ks[0].name, "kernel");
}

}  // namespace
}  // namespace g80
