// Invariant fuzzing (ROADMAP item 5): randomized launch configurations
// checked against universal properties of the simulator, rather than
// hand-computed expectations.  Tier-1 runs a small fixed-seed sweep so
// results are reproducible; the long configuration (G80_LONG_FUZZ /
// `ctest -L long`) re-runs the same binary with a larger iteration budget:
//
//   G80_FUZZ_ITERS   iterations per property sweep (default 8)
//   G80_FUZZ_SEED    RNG seed (default 12345)
//
// Properties checked on every random configuration:
//   1. block scheduling never changes results: sequential, pooled, and
//      ambient-pool launches produce bit-identical outputs and identical
//      modeled timing;
//   2. the g80check sanitize pass is sound on clean kernels (no findings)
//      and side-effect-free (outputs identical with it on or off);
//   3. an enabled-but-untriggered resilience policy is a no-op: same
//      outputs, exactly one attempt, clean history;
//   4. model sanity: occupancy fraction in (0, 1], modeled time positive,
//      achieved DRAM bandwidth never exceeds the 86.4 GB/s hardware peak;
//   5. the functional fast path is invisible in results: for every random
//      configuration, {fast path on/off} x {sequential, pooled 2, pooled 4}
//      x {fast/ucontext fiber engine} all produce bit-identical outputs, and
//      the fast-path LaunchStats themselves are identical whichever
//      scheduler ran them (empty trace/timing, same occupancy footprint);
//   6. batched trace recording (cudalite/trace_arena.h) is invisible: for
//      every random configuration, {batched/legacy recorder} x {sequential,
//      pooled 2, pooled 4} x {fast/ucontext fiber engine} agree on outputs,
//      the full trace summary, and modeled timing, bit for bit.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "common/error.h"
#include "cudalite/ctx.h"
#include "cudalite/device.h"
#include "cudalite/launch.h"
#include "cudalite/trace_arena.h"
#include "exec/fiber.h"
#include "exec/worker_pool.h"

namespace g80 {
namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  return std::atoi(v);
}

int fuzz_iters() { return std::max(1, env_int("G80_FUZZ_ITERS", 8)); }
unsigned fuzz_seed() {
  return static_cast<unsigned>(env_int("G80_FUZZ_SEED", 12345));
}

// Streaming kernel, no synchronization: every thread transforms one element.
struct MadStreamKernel {
  int n = 0;
  float scale = 1.0f;
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& in,
                  DeviceBuffer<float>& out) const {
    auto In = ctx.global(in);
    auto Out = ctx.global(out);
    const int i = ctx.global_thread_x();
    if (ctx.branch(i < n)) {
      float v = In.ld(i);
      v = ctx.mad(v, scale, 1.0f);
      Out.st(i, v);
    }
  }
};

// Cooperative kernel: block-wide reverse through shared memory (barrier +
// shared stores, so the sanitize pass has real work to validate).
struct ReverseKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<float>& in,
                  DeviceBuffer<float>& out) const {
    auto In = ctx.global(in);
    auto Out = ctx.global(out);
    auto S = ctx.template shared<float>(ctx.block_dim().x);
    const int t = static_cast<int>(ctx.thread_idx().x);
    const int base = static_cast<int>(ctx.block_idx().x * ctx.block_dim().x);
    S.st(t, In.ld(base + t));
    ctx.sync();
    Out.st(base + t, S.ld(ctx.block_dim().x - 1 - t));
  }
};

// One random launch configuration.
struct FuzzConfig {
  int blocks = 1;
  int threads = 32;
  int sample_blocks = 1;
  int regs = 10;
  bool cooperative = false;  // ReverseKernel instead of MadStreamKernel
  float scale = 1.0f;

  int n() const { return blocks * threads; }
  std::string str() const {
    return "blocks=" + std::to_string(blocks) +
           " threads=" + std::to_string(threads) +
           " sample_blocks=" + std::to_string(sample_blocks) +
           " regs=" + std::to_string(regs) +
           (cooperative ? " kernel=reverse" : " kernel=mad");
  }
};

FuzzConfig random_config(std::mt19937& rng) {
  static const int kThreads[] = {32, 64, 128, 256};
  FuzzConfig c;
  c.blocks = std::uniform_int_distribution<int>(1, 8)(rng);
  c.threads = kThreads[std::uniform_int_distribution<int>(0, 3)(rng)];
  c.sample_blocks = std::uniform_int_distribution<int>(1, 4)(rng);
  c.regs = std::uniform_int_distribution<int>(8, 16)(rng);
  c.cooperative = std::uniform_int_distribution<int>(0, 1)(rng) == 1;
  c.scale =
      0.25f * static_cast<float>(std::uniform_int_distribution<int>(1, 8)(rng));
  return c;
}

std::vector<float> random_input(std::mt19937& rng, int n) {
  std::uniform_real_distribution<float> dist(-4.0f, 4.0f);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = dist(rng);
  return v;
}

LaunchOptions base_options(const FuzzConfig& c) {
  LaunchOptions opt;
  opt.regs_per_thread = c.regs;
  opt.sample_blocks = c.sample_blocks;
  opt.uses_sync = c.cooperative;
  return opt;
}

// Runs `c` with the given options on a fresh device; returns (output, stats).
std::pair<std::vector<float>, LaunchStats> run_config(
    const FuzzConfig& c, const std::vector<float>& input,
    const LaunchOptions& opt) {
  Device dev;
  auto in = dev.alloc<float>(static_cast<std::size_t>(c.n()));
  auto out = dev.alloc<float>(static_cast<std::size_t>(c.n()));
  in.copy_from_host(input);
  LaunchStats stats;
  if (c.cooperative) {
    stats = launch(dev, Dim3(static_cast<unsigned>(c.blocks)),
                   Dim3(static_cast<unsigned>(c.threads)), opt, ReverseKernel{},
                   in, out);
  } else {
    stats = launch(dev, Dim3(static_cast<unsigned>(c.blocks)),
                   Dim3(static_cast<unsigned>(c.threads)), opt,
                   MadStreamKernel{c.n(), c.scale}, in, out);
  }
  return {out.copy_to_host(), stats};
}

TEST(InvariantFuzz, BlockSchedulingNeverChangesResults) {
  std::mt19937 rng(fuzz_seed());
  WorkerPool pool(4);
  for (int it = 0; it < fuzz_iters(); ++it) {
    const auto c = random_config(rng);
    const auto input = random_input(rng, c.n());

    const auto [seq_out, seq_stats] = run_config(c, input, base_options(c));

    LaunchOptions pooled = base_options(c);
    pooled.pool = &pool;
    const auto [pool_out, pool_stats] = run_config(c, input, pooled);

    ScopedLaunchPool ambient(&pool);
    const auto [amb_out, amb_stats] = run_config(c, input, base_options(c));

    EXPECT_EQ(seq_out, pool_out) << c.str();
    EXPECT_EQ(seq_out, amb_out) << c.str();
    EXPECT_DOUBLE_EQ(seq_stats.timing.seconds, pool_stats.timing.seconds)
        << c.str();
    EXPECT_DOUBLE_EQ(seq_stats.trace.total.lane_flops,
                     pool_stats.trace.total.lane_flops)
        << c.str();
    EXPECT_EQ(seq_stats.smem_per_block, pool_stats.smem_per_block) << c.str();
  }
}

TEST(InvariantFuzz, SanitizerSoundAndSideEffectFreeOnCleanKernels) {
  std::mt19937 rng(fuzz_seed() + 1);
  for (int it = 0; it < fuzz_iters(); ++it) {
    const auto c = random_config(rng);
    const auto input = random_input(rng, c.n());

    const auto [plain_out, plain_stats] = run_config(c, input, base_options(c));

    LaunchOptions sanitized = base_options(c);
    sanitized.sanitize.enabled = true;
    const auto [san_out, san_stats] = run_config(c, input, sanitized);

    EXPECT_TRUE(san_stats.sanitizer.clean())
        << c.str() << ": " << san_stats.sanitizer.summary();
    EXPECT_EQ(plain_out, san_out) << c.str();
  }
}

TEST(InvariantFuzz, UntriggeredResiliencePolicyIsNoOp) {
  std::mt19937 rng(fuzz_seed() + 2);
  for (int it = 0; it < fuzz_iters(); ++it) {
    const auto c = random_config(rng);
    const auto input = random_input(rng, c.n());

    const auto [plain_out, plain_stats] = run_config(c, input, base_options(c));

    LaunchOptions resilient = base_options(c);
    resilient.resilience.enabled = true;
    resilient.resilience.wall_timeout_s = 60.0;  // never fires
    const auto [res_out, res_stats] = run_config(c, input, resilient);

    EXPECT_EQ(plain_out, res_out) << c.str();
    EXPECT_EQ(res_stats.resilience.attempts, 1) << c.str();
    EXPECT_FALSE(res_stats.resilience.recovered) << c.str();
    EXPECT_FALSE(res_stats.resilience.timed_out) << c.str();
    ASSERT_EQ(res_stats.resilience.history.size(), 1u) << c.str();
    EXPECT_EQ(res_stats.resilience.history[0].status, Status::kSuccess)
        << c.str();
    EXPECT_DOUBLE_EQ(plain_stats.timing.seconds, res_stats.timing.seconds)
        << c.str();
  }
}

TEST(InvariantFuzz, FastPathInvisibleAcrossSchedulersAndFiberEngines) {
  std::mt19937 rng(fuzz_seed() + 4);
  WorkerPool pool2(2);
  WorkerPool pool4(4);
  std::vector<Fiber::Backend> backends{Fiber::Backend::kUcontext};
  if (Fiber::fast_backend_supported())
    backends.push_back(Fiber::Backend::kFast);
  for (int it = 0; it < fuzz_iters(); ++it) {
    const auto c = random_config(rng);
    const auto input = random_input(rng, c.n());

    // Traced sequential run on the default engine is the reference.
    const auto [ref_out, ref_stats] = run_config(c, input, base_options(c));

    std::vector<LaunchStats> fast_stats;
    for (Fiber::Backend backend : backends) {
      for (WorkerPool* pool : {static_cast<WorkerPool*>(nullptr), &pool2,
                               &pool4}) {
        LaunchOptions fast = base_options(c);
        fast.fast_path = true;
        fast.fiber_backend = backend;
        fast.pool = pool;
        const auto [out, stats] = run_config(c, input, fast);
        EXPECT_EQ(ref_out, out)
            << c.str() << " pool=" << (pool ? pool->width() : 1)
            << " backend=" << (backend == Fiber::Backend::kFast ? "fast"
                                                                : "ucontext");
        fast_stats.push_back(stats);
      }
    }
    // Every fast-path run reports the same stats, whichever scheduler and
    // fiber engine produced it: no trace, no modeled timing, but the same
    // occupancy/footprint numbers the traced run derived.
    for (const auto& s : fast_stats) {
      EXPECT_EQ(s.trace.num_blocks, 0) << c.str();
      EXPECT_EQ(s.timing.seconds, 0.0) << c.str();
      EXPECT_EQ(s.smem_per_block, ref_stats.smem_per_block) << c.str();
      EXPECT_EQ(s.occupancy.blocks_per_sm, ref_stats.occupancy.blocks_per_sm)
          << c.str();
      EXPECT_EQ(s.occupancy.limiter, ref_stats.occupancy.limiter) << c.str();
    }
  }
}

TEST(InvariantFuzz, BatchedRecorderInvisibleAcrossSchedulersAndFiberEngines) {
  std::mt19937 rng(fuzz_seed() + 5);
  WorkerPool pool2(2);
  WorkerPool pool4(4);
  std::vector<Fiber::Backend> backends{Fiber::Backend::kUcontext};
  if (Fiber::fast_backend_supported())
    backends.push_back(Fiber::Backend::kFast);
  for (int it = 0; it < fuzz_iters(); ++it) {
    const auto c = random_config(rng);
    const auto input = random_input(rng, c.n());

    // Legacy-recorder sequential run is the reference.
    std::vector<float> ref_out;
    LaunchStats ref_stats;
    {
      ScopedTraceBatch off(false);
      std::tie(ref_out, ref_stats) = run_config(c, input, base_options(c));
    }

    ScopedTraceBatch on(true);
    for (Fiber::Backend backend : backends) {
      for (WorkerPool* pool : {static_cast<WorkerPool*>(nullptr), &pool2,
                               &pool4}) {
        LaunchOptions opt = base_options(c);
        opt.fiber_backend = backend;
        opt.pool = pool;
        const auto [out, stats] = run_config(c, input, opt);
        const std::string label =
            c.str() + " pool=" + std::to_string(pool ? pool->width() : 1) +
            " backend=" +
            (backend == Fiber::Backend::kFast ? "fast" : "ucontext");
        EXPECT_EQ(ref_out, out) << label;
        // The entire trace summary — every warp counter, DRAM byte, and
        // per-site attribution row — must match the legacy recorder.
        EXPECT_TRUE(ref_stats.trace == stats.trace) << label;
        EXPECT_EQ(ref_stats.timing.seconds, stats.timing.seconds) << label;
        EXPECT_EQ(ref_stats.timing.kernel_cycles, stats.timing.kernel_cycles)
            << label;
      }
    }
  }
}

TEST(InvariantFuzz, ModelStaysWithinHardwareEnvelope) {
  std::mt19937 rng(fuzz_seed() + 3);
  const DeviceSpec spec = DeviceSpec::geforce_8800_gtx();
  for (int it = 0; it < fuzz_iters(); ++it) {
    const auto c = random_config(rng);
    const auto input = random_input(rng, c.n());
    const auto [out, stats] = run_config(c, input, base_options(c));

    const double occ = stats.occupancy.fraction(spec);
    EXPECT_GT(occ, 0.0) << c.str();
    EXPECT_LE(occ, 1.0) << c.str();
    EXPECT_GT(stats.timing.seconds, 0.0) << c.str();
    EXPECT_LE(stats.timing.dram_gbs, spec.dram_bandwidth_gbs * (1 + 1e-9))
        << c.str();
    EXPECT_LE(stats.occupancy.active_warps_per_sm, spec.max_warps_per_sm())
        << c.str();
  }
}

}  // namespace
}  // namespace g80
