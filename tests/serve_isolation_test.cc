// Multi-tenant isolation soak (label: robust).  Many concurrent client
// threads share one small device pool; half the sessions are hostile —
// deterministic fault jobs (OOB stores, skipped barriers, modeled
// timeouts) and malformed configurations — interleaved with well-behaved
// sessions' jobs on the same slots.  The assertions are the service's core
// promises:
//
//   1. no cross-session status leakage: every good session's every job
//      succeeds, even though faulty jobs constantly poison and reset the
//      devices its jobs run on;
//   2. every faulty job gets its *own* typed error, not a neighbour's;
//   3. results are bit-identical to a sequential replay of the same jobs
//      on a fresh single-session server — concurrency and caching change
//      timing, never bytes.
#include <gtest/gtest.h>

#include <unistd.h>

#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/server.h"

namespace g80::serve {
namespace {

std::string test_socket(const char* tag) {
  return "/tmp/g80si_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

JobRequest good_job(int which) {
  JobRequest req;
  req.op = Op::kLaunch;
  switch (which % 3) {
    case 0:
      req.kernel = "saxpy";
      req.n = 4096 + 512 * (which % 5);
      req.seed = 11 + which % 7;
      break;
    case 1:
      req.kernel = "matmul";
      req.n = 48;
      req.tile = 16;
      req.variant = "tiled";
      req.seed = 2 + which % 5;
      break;
    default:
      req.kernel = "matmul";
      req.n = 32;
      req.tile = 16;
      req.variant = "naive";
      req.seed = 3 + which % 4;
      break;
  }
  req.device_class = (which % 2 == 0) ? "gtx" : "gts";
  return req;
}

JobRequest faulty_job(int which) {
  JobRequest req;
  req.op = Op::kLaunch;
  switch (which % 4) {
    case 0:
      req.kernel = "saxpy";
      req.n = 2048;
      req.fault.kind = "oob_store";
      break;
    case 1:
      req.kernel = "matmul";
      req.n = 32;
      req.tile = 16;
      req.variant = "tiled";
      req.fault.kind = "skip_barrier";
      break;
    case 2:
      req.kernel = "saxpy";
      req.n = 2048;
      req.fault.kind = "modeled_timeout";
      break;
    default:
      // Invalid configuration: tile does not divide n.
      req.kernel = "matmul";
      req.n = 50;
      req.tile = 16;
      req.variant = "tiled";
      break;
  }
  req.device_class = (which % 2 == 0) ? "gtx" : "gts";
  return req;
}

Status expected_fault_status(int which) {
  switch (which % 4) {
    case 0: return Status::kInvalidAddress;
    // A skipped barrier in a tiled matmul surfaces as the shared-memory
    // race it causes (the sanitizer's first finding), not as divergence.
    case 1: return Status::kSharedMemoryRace;
    case 2: return Status::kTimeout;
    default: return Status::kInvalidConfiguration;
  }
}

TEST(ServeIsolation, ConcurrentGoodAndFaultySessions) {
  ServerConfig cfg;
  cfg.socket_path = test_socket("soak");
  cfg.pool.gtx_slots = 2;
  cfg.pool.ultra_slots = 0;
  cfg.pool.gts_slots = 1;
  cfg.max_inflight_per_session = 4;
  cfg.pool.max_queue_depth = 1024;  // soak wants throughput, not rejection
  Server server(cfg);
  server.start();

  constexpr int kGoodSessions = 6;
  constexpr int kFaultySessions = 6;
  constexpr int kJobsPerSession = 8;

  // job index -> result bytes, collected across all good sessions.  Two
  // sessions issuing the same job must observe identical bytes.
  std::mutex results_mu;
  std::map<int, std::vector<std::string>> results_by_job;
  std::vector<std::string> failures;

  auto good_session = [&](int session_idx) {
    try {
      Client client(cfg.socket_path, "good-" + std::to_string(session_idx));
      for (int j = 0; j < kJobsPerSession; ++j) {
        const Response r = client.call(good_job(j));
        std::lock_guard<std::mutex> lock(results_mu);
        if (!r.ok()) {
          failures.push_back("good session " + std::to_string(session_idx) +
                             " job " + std::to_string(j) + ": " + r.error);
          continue;
        }
        results_by_job[j].push_back(r.result_json);
      }
    } catch (const Error& e) {
      std::lock_guard<std::mutex> lock(results_mu);
      failures.push_back(std::string("good session threw: ") + e.what());
    }
  };

  auto faulty_session = [&](int session_idx) {
    try {
      Client client(cfg.socket_path, "faulty-" + std::to_string(session_idx));
      for (int j = 0; j < kJobsPerSession; ++j) {
        const Response r = client.call(faulty_job(j));
        if (r.status != expected_fault_status(j)) {
          std::lock_guard<std::mutex> lock(results_mu);
          failures.push_back(
              "faulty session " + std::to_string(session_idx) + " job " +
              std::to_string(j) + ": expected " +
              std::string(status_token(expected_fault_status(j))) + ", got " +
              std::string(status_token(r.status)) + " (" + r.error + ")");
        }
      }
    } catch (const Error& e) {
      std::lock_guard<std::mutex> lock(results_mu);
      failures.push_back(std::string("faulty session threw: ") + e.what());
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < kGoodSessions; ++i) {
    threads.emplace_back(good_session, i);
    threads.emplace_back(faulty_session, i);
  }
  for (auto& t : threads) t.join();

  EXPECT_TRUE(failures.empty()) << failures.size() << " failures, first: "
                                << failures.front();
  // Every good job ran in every good session.
  ASSERT_EQ(results_by_job.size(), static_cast<std::size_t>(kJobsPerSession));
  for (const auto& [job, payloads] : results_by_job) {
    ASSERT_EQ(payloads.size(), static_cast<std::size_t>(kGoodSessions))
        << "job " << job;
    for (const std::string& p : payloads) {
      EXPECT_EQ(p, payloads.front()) << "job " << job
                                     << ": divergent result bytes";
    }
  }
  // The hostile sessions forced device resets without poisoning anyone.
  EXPECT_GE(server.scheduler_stats().device_resets,
            static_cast<std::uint64_t>(kFaultySessions * kJobsPerSession / 2));
  server.shutdown();

  // 3. Sequential replay on a fresh server (fresh cache, one session, no
  // concurrency): byte-identical to what the contended run returned.
  ServerConfig replay_cfg;
  replay_cfg.socket_path = test_socket("replay");
  replay_cfg.pool.gtx_slots = 1;
  replay_cfg.pool.ultra_slots = 0;
  replay_cfg.pool.gts_slots = 1;
  Server replay(replay_cfg);
  replay.start();
  Client client(replay_cfg.socket_path, "replay");
  for (int j = 0; j < kJobsPerSession; ++j) {
    const Response r = client.call(good_job(j));
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.result_json, results_by_job[j].front())
        << "sequential replay diverged on job " << j;
  }
  replay.shutdown();
}

}  // namespace
}  // namespace g80::serve
