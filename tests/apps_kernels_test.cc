// Per-application property tests beyond the suite-level validation:
// algorithmic invariants of TPACF, RC5, PNS, FEM, FDTD, RPES, H.264, MRI.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <numeric>

#include "apps/fdtd/fdtd.h"
#include "apps/fem/fem.h"
#include "apps/h264/h264.h"
#include "apps/mri/mri_fhd.h"
#include "apps/mri/mri_q.h"
#include "apps/pns/pns.h"
#include "apps/rc5/rc5.h"
#include "apps/rpes/rpes.h"
#include "apps/tpacf/tpacf.h"
#include "common/stats.h"
#include "cudalite/device.h"

namespace g80 {
namespace {

using namespace apps;

// ---- TPACF -------------------------------------------------------------------

TEST(Tpacf, BinningIsMonotonicAndTotalPreserved) {
  const auto w = TpacfWorkload::generate(256, 3);
  // Bin edges descend; the bin function maps dot=1 (angle 0) to bin 0 and
  // dot=-1 (angle pi) to the last bin.
  for (std::size_t i = 1; i < w.bin_edges.size(); ++i)
    EXPECT_LT(w.bin_edges[i], w.bin_edges[i - 1]);
  EXPECT_EQ(tpacf_bin(w.bin_edges, 1.0f), 0);
  EXPECT_EQ(tpacf_bin(w.bin_edges, -1.0f), kTpacfBins - 1);
  // Monotone: smaller dot (larger angle) never lands in a smaller bin.
  int prev = 0;
  for (float dot = 1.0f; dot >= -1.0f; dot -= 0.01f) {
    const int b = tpacf_bin(w.bin_edges, dot);
    EXPECT_GE(b, prev);
    prev = b;
  }

  std::array<std::uint64_t, kTpacfBins> hist{};
  tpacf_cpu(w, hist);
  const auto total = std::accumulate(hist.begin(), hist.end(), 0ull);
  EXPECT_EQ(total, 256ull * 255 / 2);  // every unordered pair exactly once
}

TEST(Tpacf, PointsLieOnUnitSphere) {
  const auto w = TpacfWorkload::generate(512, 5);
  for (std::size_t i = 0; i < w.x.size(); ++i) {
    const double n2 = static_cast<double>(w.x[i]) * w.x[i] +
                      static_cast<double>(w.y[i]) * w.y[i] +
                      static_cast<double>(w.z[i]) * w.z[i];
    ASSERT_NEAR(n2, 1.0, 1e-5);
  }
}

// ---- RC5 ---------------------------------------------------------------------

TEST(Rc5, EncryptIsDeterministicAndKeySensitive) {
  const std::uint32_t pt[2] = {0x12345678u, 0x9ABCDEF0u};
  std::uint32_t c1[2], c2[2], c3[2];
  rc5_encrypt_host(0x1111222233334444ull, 0x55, pt, c1);
  rc5_encrypt_host(0x1111222233334444ull, 0x55, pt, c2);
  rc5_encrypt_host(0x1111222233334445ull, 0x55, pt, c3);  // 1-bit key change
  EXPECT_EQ(c1[0], c2[0]);
  EXPECT_EQ(c1[1], c2[1]);
  EXPECT_TRUE(c1[0] != c3[0] || c1[1] != c3[1]);
}

TEST(Rc5, AvalancheOnKeyBit) {
  // Flipping one key bit should flip ~half the ciphertext bits.
  const std::uint32_t pt[2] = {0xDEADBEEFu, 0xCAFEF00Du};
  RunningStat flips;
  for (int bit = 0; bit < 32; ++bit) {
    std::uint32_t a[2], b[2];
    rc5_encrypt_host(0xABCDEF0123456789ull, 0x42, pt, a);
    rc5_encrypt_host(0xABCDEF0123456789ull ^ (1ull << bit), 0x42, pt, b);
    flips.add(std::popcount(a[0] ^ b[0]) + std::popcount(a[1] ^ b[1]));
  }
  EXPECT_NEAR(flips.mean(), 32.0, 6.0);
}

TEST(Rc5, CpuSearchFindsPlantedKey) {
  const auto w = Rc5Workload::generate(4096, 9);
  std::vector<std::uint8_t> partial;
  EXPECT_EQ(rc5_cpu(w, partial), w.planted);
  // Partial-match flags: the planted key must be flagged; roughly 1/256 of
  // others flag by chance.
  EXPECT_EQ(partial[w.planted], 1);
  const auto count = std::accumulate(partial.begin(), partial.end(), 0);
  EXPECT_LT(count, 100);  // 4096/256 ~ 16 expected
}

// ---- PNS ---------------------------------------------------------------------

TEST(Pns, TokenCountIsInvariant) {
  // Every transition consumes kPnsArity tokens and produces kPnsArity: the
  // total token count is conserved along any trajectory.
  const auto net = PnsNet::generate(4);
  const auto initial = std::accumulate(net.initial_marking.begin(),
                                       net.initial_marking.end(), 0);
  std::vector<std::int32_t> marking(kPnsPlaces);
  for (int sim = 0; sim < 32; ++sim) {
    pns_simulate_cpu(net, sim, 512, marking.data());
    EXPECT_EQ(std::accumulate(marking.begin(), marking.end(), 0), initial);
    for (auto m : marking) EXPECT_GE(m, 0);
  }
}

TEST(Pns, ReplicasDifferButAreReproducible) {
  const auto net = PnsNet::generate(4);
  std::vector<std::int32_t> m1(kPnsPlaces), m2(kPnsPlaces);
  const auto f1 = pns_simulate_cpu(net, 1, 256, m1.data());
  const auto f1b = pns_simulate_cpu(net, 1, 256, m2.data());
  EXPECT_EQ(f1, f1b);
  EXPECT_EQ(m1, m2);
  const auto f2 = pns_simulate_cpu(net, 2, 256, m2.data());
  EXPECT_TRUE(f1 != f2 || m1 != m2);  // different replica, different path
}

// ---- FEM ---------------------------------------------------------------------

TEST(Fem, MeshIsWellFormed) {
  const auto m = FemMesh::generate(1024, 8, 7);
  EXPECT_EQ(m.row_ptr.size(), 1025u);
  EXPECT_EQ(m.row_ptr.front(), 0);
  EXPECT_EQ(static_cast<std::size_t>(m.row_ptr.back()), m.col_idx.size());
  for (int i = 0; i < m.nodes; ++i) {
    EXPECT_LE(m.row_ptr[i], m.row_ptr[i + 1]);
    double row_sum = 0;
    for (int e = m.row_ptr[i]; e < m.row_ptr[i + 1]; ++e) {
      EXPECT_GE(m.col_idx[static_cast<std::size_t>(e)], 0);
      EXPECT_LT(m.col_idx[static_cast<std::size_t>(e)], m.nodes);
      EXPECT_NE(m.col_idx[static_cast<std::size_t>(e)], i);  // no diagonal
      row_sum += std::abs(m.values[static_cast<std::size_t>(e)]);
    }
    EXPECT_GT(m.diag[static_cast<std::size_t>(i)], row_sum);  // dominance
  }
}

TEST(Fem, JacobiResidualDecreases) {
  const auto m = FemMesh::generate(2048, 8, 11);
  auto residual = [&](const std::vector<float>& x) {
    double r2 = 0;
    for (int i = 0; i < m.nodes; ++i) {
      double acc = m.diag[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i)] -
                   m.rhs[static_cast<std::size_t>(i)];
      for (int e = m.row_ptr[i]; e < m.row_ptr[i + 1]; ++e)
        acc += m.values[static_cast<std::size_t>(e)] *
               x[static_cast<std::size_t>(m.col_idx[static_cast<std::size_t>(e)])];
      r2 += acc * acc;
    }
    return std::sqrt(r2);
  };
  std::vector<float> x2, x8;
  fem_cpu(m, 2, x2);
  fem_cpu(m, 8, x8);
  EXPECT_LT(residual(x8), 0.5 * residual(x2));
}

// ---- FDTD --------------------------------------------------------------------

TEST(Fdtd, SourceInjectsEnergyAndFieldsStayFinite) {
  FdtdParams p;
  p.nx = 16;
  p.ny = 16;
  p.nz = 16;
  p.steps = 8;
  FdtdFields f;
  f.resize(p.cells());
  const auto energies = fdtd_cpu(p, f);
  ASSERT_EQ(energies.size(), 8u);
  EXPECT_GT(energies.back(), 0.0f);
  for (float e : energies) EXPECT_TRUE(std::isfinite(e));
  for (float v : f.ez) EXPECT_TRUE(std::isfinite(v));
}

TEST(Fdtd, PecBoundariesHoldAtFaces) {
  FdtdParams p;
  p.nx = 12;
  p.ny = 12;
  p.nz = 12;
  p.steps = 6;
  FdtdFields f;
  f.resize(p.cells());
  fdtd_cpu(p, f);
  // Boundary cells are copied, never updated: E stays zero on the x=0 face.
  for (int z = 0; z < p.nz; ++z)
    for (int y = 0; y < p.ny; ++y)
      EXPECT_EQ(f.ex[p.idx(0, y, z)], 0.0f);
}

// ---- RPES --------------------------------------------------------------------

TEST(Rpes, IntegralsAreSymmetricPositive) {
  const auto w = RpesWorkload::generate(64, 13);
  std::vector<float> out;
  rpes_cpu(w, out);
  for (int i = 0; i < 64; ++i) {
    for (int j = 0; j < 64; ++j) {
      const float ij = out[static_cast<std::size_t>(i) * 64 + j];
      const float ji = out[static_cast<std::size_t>(j) * 64 + i];
      ASSERT_NEAR(ij, ji, 1e-5f * std::abs(ij) + 1e-7f);  // symmetry
      ASSERT_GT(ij, 0.0f);  // positive-definite class of integrals
    }
  }
}

TEST(Rpes, DecaysWithDistance) {
  // F0(T) decreases with separation: far pairs yield smaller integrals.
  RpesWorkload w = RpesWorkload::generate(2, 1);
  w.px = {0.0f, 0.1f};
  w.py = {0.0f, 0.0f};
  w.pz = {0.0f, 0.0f};
  w.eta = {1.0f, 1.0f};
  w.coef = {1.0f, 1.0f};
  std::vector<float> near_out;
  rpes_cpu(w, near_out);
  w.px[1] = 5.0f;
  std::vector<float> far_out;
  rpes_cpu(w, far_out);
  EXPECT_GT(near_out[1], 2.0f * far_out[1]);
}

// ---- H.264 -------------------------------------------------------------------

TEST(H264, FullSearchRecoversPlantedMotion) {
  // With low noise, the best SAD must be at (or adjacent to) the planted
  // vector for the vast majority of macroblocks.
  const auto w = H264Workload::generate(96, 64, 17);
  std::vector<H264Motion> motion;
  h264_me_cpu(w, motion);
  int exact = 0;
  for (int mb = 0; mb < w.num_mbs(); ++mb) {
    const auto [mvx, mvy] = H264Motion::decode_mv(motion[static_cast<std::size_t>(mb)].best_cand);
    if (mvx == w.true_mvx[static_cast<std::size_t>(mb)] &&
        mvy == w.true_mvy[static_cast<std::size_t>(mb)])
      ++exact;
  }
  EXPECT_GT(exact, w.num_mbs() * 3 / 4);
}

TEST(H264, ResidualChecksumIsStable) {
  const auto w = H264Workload::generate(64, 48, 23);
  std::vector<H264Motion> motion;
  h264_me_cpu(w, motion);
  EXPECT_EQ(h264_encode_residual_cpu(w, motion),
            h264_encode_residual_cpu(w, motion));
}

// ---- MRI ---------------------------------------------------------------------

TEST(Mri, QAndFhdAgreeOnPhaseStructure) {
  // With rho == (1, 0), FHd reduces to (sum cos, -sum sin) while Q with
  // phi == 1 gives (sum cos, sum sin): imaginary parts are negatives.
  auto w = MriWorkload::generate(64, 32, 29);
  for (auto& s : w.samples) s.w = 1.0f;
  for (auto& r : w.rho) r = {1.0f, 0.0f};
  std::vector<float> qr, qi, fr, fi;
  mri_q_cpu(w, qr, qi);
  mri_fhd_cpu(w, fr, fi);
  for (int v = 0; v < 64; ++v) {
    EXPECT_NEAR(qr[static_cast<std::size_t>(v)], fr[static_cast<std::size_t>(v)], 1e-4);
    EXPECT_NEAR(qi[static_cast<std::size_t>(v)], -fi[static_cast<std::size_t>(v)], 1e-4);
  }
}

TEST(Mri, SfuAndSoftwareTrigAgreeNumerically) {
  // The ablation's two paths must compute the same answer.
  const auto w = MriWorkload::generate(256, 64, 31);
  Device dev;
  auto dx = dev.alloc<float>(w.x.size());
  auto dy = dev.alloc<float>(w.y.size());
  auto dz = dev.alloc<float>(w.z.size());
  dx.copy_from_host(w.x);
  dy.copy_from_host(w.y);
  dz.copy_from_host(w.z);
  auto dk = dev.alloc_constant<Float4>(w.samples.size());
  dk.copy_from_host(w.samples);
  auto qr1 = dev.alloc<float>(w.x.size());
  auto qi1 = dev.alloc<float>(w.x.size());
  auto qr2 = dev.alloc<float>(w.x.size());
  auto qi2 = dev.alloc<float>(w.x.size());

  LaunchOptions opt;
  opt.uses_sync = false;
  const Dim3 block(256);
  const Dim3 grid(1);
  const int nv = static_cast<int>(w.x.size());
  launch(dev, grid, block, opt, MriQKernel{nv, true}, dx, dy, dz, dk, qr1, qi1);
  launch(dev, grid, block, opt, MriQKernel{nv, false}, dx, dy, dz, dk, qr2, qi2);
  const auto a = qr1.copy_to_host(), b = qr2.copy_to_host();
  for (int v = 0; v < nv; ++v)
    EXPECT_NEAR(a[static_cast<std::size_t>(v)], b[static_cast<std::size_t>(v)],
                1e-4);
}

}  // namespace
}  // namespace g80
