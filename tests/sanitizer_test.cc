// g80check tests: barrier-divergence and shared-memory-race detection,
// deterministic fault injection, the structured Status/get_last_error model,
// and the guarantee that a sanitized launch still produces correct
// functional results.
#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "cudalite/ctx.h"
#include "cudalite/device.h"
#include "cudalite/launch.h"
#include "sanitizer/sanitizer.h"
#include "sanitizer/shadow.h"

namespace g80 {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// ---- Kernels under test ---------------------------------------------------

// Correct: every thread writes its slot, syncs, reads its neighbour's.
struct NeighborReadKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<int>& out) const {
    auto Out = ctx.global(out);
    auto S = ctx.template shared<int>(ctx.block_dim().x);
    const int t = static_cast<int>(ctx.thread_idx().x);
    const int n = static_cast<int>(ctx.block_dim().x);
    S.st(t, t * 2);
    ctx.sync();
    Out.st(ctx.global_thread_x(), S.ld((t + 1) % n));
  }
};

// Correct: no cross-thread shared reads, so a skipped barrier produces a
// pure divergence diagnostic with no accompanying race.
struct PrivateSlotsKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<int>& out) const {
    auto Out = ctx.global(out);
    auto S = ctx.template shared<int>(ctx.block_dim().x);
    const int t = static_cast<int>(ctx.thread_idx().x);
    S.st(t, t);
    ctx.sync();
    Out.st(ctx.global_thread_x(), S.ld(t));
  }
};

// Buggy by construction: communicates through shared memory with the
// __syncthreads() missing — the paper's §2 "undefined" case.
struct MissingSyncKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<int>& out) const {
    auto Out = ctx.global(out);
    auto S = ctx.template shared<int>(ctx.block_dim().x);
    const int t = static_cast<int>(ctx.thread_idx().x);
    const int n = static_cast<int>(ctx.block_dim().x);
    S.st(t, t * 2);
    // BUG: no ctx.sync() before reading another thread's slot.
    Out.st(ctx.global_thread_x(), S.ld((t + 1) % n));
  }
};

// Buggy by construction: both sides of a divergent branch hit a different
// static __syncthreads().
struct TwoBarrierPathsKernel {
  template <class Ctx>
  void operator()(Ctx& ctx, DeviceBuffer<int>& out) const {
    auto Out = ctx.global(out);
    const int t = static_cast<int>(ctx.thread_idx().x);
    if (ctx.branch(t % 2 == 0)) {
      ctx.sync();  // even threads wait here...
    } else {
      ctx.sync();  // ...odd threads here: divergent barriers
    }
    Out.st(ctx.global_thread_x(), t);
  }
};

LaunchOptions sanitized(bool abort_on_error = false) {
  LaunchOptions opt;
  opt.sanitize.enabled = true;
  opt.sanitize.abort_on_error = abort_on_error;
  return opt;
}

// ---- Clean kernels stay clean ---------------------------------------------

TEST(G80Check, CleanBarrierKernelReportsNothing) {
  Device dev;
  auto out = dev.alloc<int>(256);
  const auto s =
      launch(dev, Dim3(4), Dim3(64), sanitized(), NeighborReadKernel{}, out);
  EXPECT_TRUE(s.sanitizer.clean());
  EXPECT_EQ(s.sanitizer.blocks_checked, 4u);
  EXPECT_EQ(s.sanitizer.barriers_checked, 4u);  // one barrier per block
  EXPECT_EQ(s.sanitizer.shared_writes, 256u);
  EXPECT_EQ(s.sanitizer.shared_reads, 256u);
  EXPECT_EQ(dev.peek_last_error(), Status::kSuccess);
  // The barrier separates epochs: results are the neighbour's doubled tid.
  const auto host = out.copy_to_host();
  for (int b = 0; b < 4; ++b)
    for (int t = 0; t < 64; ++t)
      ASSERT_EQ(host[b * 64 + t], ((t + 1) % 64) * 2);
}

TEST(G80Check, DisabledSanitizerLeavesReportEmpty) {
  Device dev;
  auto out = dev.alloc<int>(256);
  const auto s = launch(dev, Dim3(4), Dim3(64), LaunchOptions{},
                        MissingSyncKernel{}, out);  // buggy, but unchecked
  EXPECT_TRUE(s.sanitizer.clean());
  EXPECT_EQ(s.sanitizer.blocks_checked, 0u);
  EXPECT_EQ(dev.peek_last_error(), Status::kSuccess);
}

// ---- Barrier divergence via fault injection -------------------------------

TEST(G80Check, InjectedSkippedBarrierReportsDivergence) {
  Device dev;
  auto out = dev.alloc<int>(128);
  auto opt = sanitized();
  opt.sanitize.fault.skip_barrier_tid = 0;  // thread 0 never reaches the sync
  const auto s =
      launch(dev, Dim3(2), Dim3(64), opt, PrivateSlotsKernel{}, out);
  ASSERT_FALSE(s.sanitizer.clean());
  EXPECT_TRUE(s.sanitizer.has(Status::kBarrierDivergence));
  EXPECT_FALSE(s.sanitizer.has(Status::kSharedMemoryRace));
  const auto& f = s.sanitizer.findings.front();
  EXPECT_EQ(f.status, Status::kBarrierDivergence);
  // The diagnostic names the exiting thread, a waiting thread, and the
  // kernel-source barrier call site.
  EXPECT_TRUE(contains(f.message, "thread 0")) << f.message;
  EXPECT_TRUE(contains(f.message, "exited the kernel")) << f.message;
  EXPECT_TRUE(contains(f.message, "__syncthreads()")) << f.message;
  EXPECT_TRUE(contains(f.message, "sanitizer_test.cc")) << f.message;
  EXPECT_EQ(dev.peek_last_error(), Status::kBarrierDivergence);
}

TEST(G80Check, DivergentBarrierSitesReported) {
  Device dev;
  auto out = dev.alloc<int>(64);
  const auto s =
      launch(dev, Dim3(1), Dim3(64), sanitized(), TwoBarrierPathsKernel{}, out);
  ASSERT_FALSE(s.sanitizer.clean());
  EXPECT_TRUE(s.sanitizer.has(Status::kBarrierDivergence));
  const auto& f = s.sanitizer.findings.front();
  EXPECT_TRUE(contains(f.message, "different barriers")) << f.message;
  // Both static call sites appear (same file, two lines).
  EXPECT_TRUE(contains(f.message, "sanitizer_test.cc")) << f.message;
}

// ---- Shared-memory races --------------------------------------------------

TEST(G80Check, InjectedCorruptStoreReportsWriteWriteRace) {
  Device dev;
  auto out = dev.alloc<int>(128);
  auto opt = sanitized();
  // Redirect thread 3's first shared store one word over, onto thread 4's
  // slot: two same-epoch writers of one word.
  opt.sanitize.fault.corrupt_store_tid = 3;
  opt.sanitize.fault.corrupt_store_index = 0;
  opt.sanitize.fault.corrupt_offset_words = 1;
  const auto s =
      launch(dev, Dim3(2), Dim3(64), opt, NeighborReadKernel{}, out);
  ASSERT_FALSE(s.sanitizer.clean());
  EXPECT_TRUE(s.sanitizer.has(Status::kSharedMemoryRace));
  std::string race;
  for (const auto& f : s.sanitizer.findings)
    if (f.status == Status::kSharedMemoryRace) { race = f.message; break; }
  EXPECT_TRUE(contains(race, "write-write")) << race;
  EXPECT_TRUE(contains(race, "thread 4")) << race;
  EXPECT_TRUE(contains(race, "thread 3")) << race;
  // Both conflicting call sites are named in kernel source.
  EXPECT_TRUE(contains(race, "sanitizer_test.cc")) << race;
  EXPECT_EQ(dev.peek_last_error(), Status::kSharedMemoryRace);
}

TEST(G80Check, MissingSyncKernelReportsRace) {
  Device dev;
  auto out = dev.alloc<int>(128);
  const auto s =
      launch(dev, Dim3(2), Dim3(64), sanitized(), MissingSyncKernel{}, out);
  ASSERT_FALSE(s.sanitizer.clean());
  EXPECT_TRUE(s.sanitizer.has(Status::kSharedMemoryRace));
  const auto& f = s.sanitizer.findings.front();
  // Store and neighbour-load call sites both appear with the epoch.
  EXPECT_TRUE(contains(f.message, "sanitizer_test.cc")) << f.message;
  EXPECT_TRUE(contains(f.message, "barrier epoch 0")) << f.message;
  EXPECT_TRUE(contains(f.message, "no __syncthreads between them")) << f.message;
}

TEST(G80Check, FaultInjectionHonoursBlockFilter) {
  Device dev;
  auto out = dev.alloc<int>(128);
  auto opt = sanitized();
  opt.sanitize.fault.corrupt_store_tid = 3;
  opt.sanitize.fault.block = 1;  // only the second block is perturbed
  const auto s =
      launch(dev, Dim3(2), Dim3(64), opt, NeighborReadKernel{}, out);
  ASSERT_FALSE(s.sanitizer.clean());
  EXPECT_EQ(s.sanitizer.findings.front().block, 1u);
}

// ---- Error-model contract -------------------------------------------------

TEST(G80Check, AbortOnErrorThrowsStatusErrorWithSummary) {
  Device dev;
  auto out = dev.alloc<int>(64);
  auto opt = sanitized(/*abort_on_error=*/true);
  opt.sanitize.fault.skip_barrier_tid = 0;
  try {
    launch(dev, Dim3(1), Dim3(64), opt, PrivateSlotsKernel{}, out);
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status(), Status::kBarrierDivergence);
    EXPECT_TRUE(contains(e.what(), "g80check")) << e.what();
    EXPECT_TRUE(contains(e.what(), "sanitizer_test.cc")) << e.what();
  }
  // Sticky like cudaGetLastError: first read returns the error and clears.
  EXPECT_EQ(dev.get_last_error(), Status::kBarrierDivergence);
  EXPECT_EQ(dev.get_last_error(), Status::kSuccess);
}

TEST(G80Check, SanitizedLaunchStillProducesCorrectResults) {
  // An injected corruption perturbs the sanitize pass only; the functional
  // pass rewrites every output, so the host still reads correct results.
  Device dev;
  auto out = dev.alloc<int>(128);
  auto opt = sanitized();
  opt.sanitize.fault.corrupt_store_tid = 3;
  launch(dev, Dim3(2), Dim3(64), opt, NeighborReadKernel{}, out);
  const auto host = out.copy_to_host();
  for (int b = 0; b < 2; ++b)
    for (int t = 0; t < 64; ++t)
      ASSERT_EQ(host[b * 64 + t], ((t + 1) % 64) * 2);
}

TEST(G80Check, FindingsDedupAcrossBlocksAndCapAtMax) {
  Device dev;
  auto out = dev.alloc<int>(64 * 64);
  auto opt = sanitized();
  opt.sanitize.max_findings = 4;
  const auto s =
      launch(dev, Dim3(64), Dim3(64), opt, MissingSyncKernel{}, out);
  ASSERT_FALSE(s.sanitizer.clean());
  EXPECT_LE(s.sanitizer.findings.size(), 4u);
  EXPECT_EQ(s.sanitizer.blocks_checked, 64u);  // capped findings, full sweep
}

TEST(G80Check, SummaryListsEveryFinding) {
  Device dev;
  auto out = dev.alloc<int>(64);
  const auto s =
      launch(dev, Dim3(1), Dim3(64), sanitized(), MissingSyncKernel{}, out);
  const std::string text = s.sanitizer.summary();
  EXPECT_TRUE(contains(text, "g80check")) << text;
  EXPECT_TRUE(contains(text, "shared memory race")) << text;
}

// ---- Shadow memory unit behaviour ----------------------------------------

TEST(SharedShadow, SameThreadAccessesNeverRace) {
  SharedShadow shadow(256);
  const AccessSite site{1, "k.cc", 10};
  EXPECT_FALSE(shadow.on_write(0, 0, 0, 4, site));
  EXPECT_FALSE(shadow.on_read(0, 0, 0, 4, site));
  EXPECT_FALSE(shadow.on_write(0, 0, 0, 4, site));
}

TEST(SharedShadow, CrossEpochAccessesNeverRace) {
  SharedShadow shadow(256);
  const AccessSite site{1, "k.cc", 10};
  EXPECT_FALSE(shadow.on_write(0, /*epoch=*/0, 0, 4, site));
  EXPECT_FALSE(shadow.on_read(1, /*epoch=*/1, 0, 4, site));
  EXPECT_FALSE(shadow.on_write(2, /*epoch=*/2, 0, 4, site));
}

TEST(SharedShadow, WideAccessRacesOnAnyOverlappingWord) {
  SharedShadow shadow(256);
  const AccessSite a{1, "k.cc", 10}, b{2, "k.cc", 20};
  // Thread 0 writes word 3; thread 1's 16-byte write covers words 0..3.
  EXPECT_FALSE(shadow.on_write(0, 0, 12, 4, a));
  const auto race = shadow.on_write(1, 0, 0, 16, b);
  ASSERT_TRUE(race.has_value());
  EXPECT_NE(race->find("write-write"), std::string::npos) << *race;
}

TEST(SharedShadow, SecondReaderSlotCatchesWriteAfterTwoReaders) {
  SharedShadow shadow(256);
  const AccessSite r1{1, "k.cc", 10}, r2{2, "k.cc", 11}, w{3, "k.cc", 12};
  EXPECT_FALSE(shadow.on_read(3, 0, 0, 4, r1));
  EXPECT_FALSE(shadow.on_read(5, 0, 0, 4, r2));
  // Thread 5 writing would match the last reader (itself) — the extra
  // reader slot still exposes the conflict with thread 3's read.
  const auto race = shadow.on_write(5, 0, 0, 4, w);
  ASSERT_TRUE(race.has_value());
  EXPECT_NE(race->find("read-write"), std::string::npos) << *race;
  EXPECT_NE(race->find("thread 3"), std::string::npos) << *race;
}

}  // namespace
}  // namespace g80
