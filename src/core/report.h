// Human-readable launch report: everything the paper's methodology would
// want to know about one kernel launch, in one place — occupancy and its
// binding resource, the PTX-class instruction mix (with the §4.1
// potential-throughput arithmetic), the memory-system analysis (coalescing,
// bank conflicts, constant broadcast, texture hit rate), the timing model's
// floors, and the advisor's prioritized suggestions.
#pragma once

#include <string>

#include "cudalite/launch.h"
#include "prof/profiler.h"
#include "scope/session.h"
#include "timing/timeline.h"

namespace g80 {

// Full multi-section report (occupancy / instruction mix / memory / timing /
// advice).
std::string launch_report(const DeviceSpec& spec, const LaunchStats& stats);

// One-line summary, e.g. for per-iteration logging:
//   "0.152 ms | 13.8 GFLOPS | 55.0 GB/s | 768 thr/SM | global memory bandwidth"
std::string launch_summary(const DeviceSpec& spec, const LaunchStats& stats);

// Modeled-timeline report for a g80rt run: per-op span table in commit
// order, per-engine busy time/utilization, and the copy/compute-overlap
// saving versus fully serialized execution.
std::string timeline_report(const Timeline& tl);

// g80prof session report: one row per profiled kernel with its aggregated
// hardware-style counters, plus transfer totals.
std::string profile_report(const DeviceSpec& spec,
                           const prof::Profiler& profiler);

// g80scope session report: per-launch stall-cycle budget (where the modeled
// cycles went: pure issue, warp serialization, uncoalesced replay, exposed
// memory latency, barrier wait) followed by the session's top-N costliest
// source lines — the stall-attribution table the advisor cites.
std::string scope_report(const DeviceSpec& spec, const scope::Session& session,
                         std::size_t top_n = 8);

// Machine-readable form of the same session: a JSON document with, per
// kernel, the raw counters plus the derived paper columns — the Table 2
// instruction-mix fractions (FMAD/SFU/global-access shares, §4.1 potential
// GFLOPS) and the Table 3 configuration columns (max simultaneous threads,
// registers/thread, shared memory/block, GFLOPS, bottleneck).
std::string profile_json(const DeviceSpec& spec,
                         const prof::Profiler& profiler);

// Machine-readable form of one launch's LaunchStats: configuration,
// occupancy, modeled timing, sanitizer finding count and resilience
// provenance.  Every field is a modeled (deterministic) quantity — no wall
// clocks — so for a fixed job and device the document is byte-stable, which
// is what lets the g80serve result cache serve it verbatim on a hit.
std::string launch_stats_json(const DeviceSpec& spec, const LaunchStats& stats);

}  // namespace g80
