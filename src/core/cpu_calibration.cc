#include "core/cpu_calibration.h"

#include <algorithm>

#include "common/timer.h"

namespace g80 {

namespace {

// Sustained scalar multiply-add rate of an Opteron 248 (2.2 GHz K8, one
// SSE2 scalar MAD pipe, measured ~2 flops / 2 cycles on this loop shape).
constexpr double kOpteronGflops = 2.2;

double measure_host_gflops() {
  // Four independent accumulator chains so the loop is throughput-bound,
  // matching how compilers schedule the reference kernels.
  volatile float sink;
  float a0 = 1.0f, a1 = 1.1f, a2 = 1.2f, a3 = 1.3f;
  const float x = 1.0000001f, y = 1e-7f;
  constexpr long long kIters = 50'000'000;
  Timer t;
  for (long long i = 0; i < kIters; ++i) {
    a0 = a0 * x + y;
    a1 = a1 * x + y;
    a2 = a2 * x + y;
    a3 = a3 * x + y;
  }
  const double secs = t.seconds();
  sink = a0 + a1 + a2 + a3;
  (void)sink;
  const double flops = 2.0 * 4.0 * static_cast<double>(kIters);
  return flops / secs / 1e9;
}

}  // namespace

const CpuCalibration& cpu_calibration() {
  static const CpuCalibration cal = [] {
    CpuCalibration c;
    c.host_gflops = std::max(0.1, measure_host_gflops());
    c.opteron_gflops = kOpteronGflops;
    return c;
  }();
  return cal;
}

double to_opteron_seconds(double host_seconds) {
  return host_seconds * cpu_calibration().host_to_opteron();
}

}  // namespace g80
