// Application-suite framework: the common harness behind the paper's
// Tables 2 and 3.
//
// Every ported application provides a CPU reference implementation (the
// baseline), a cudalite kernel (the port), and enough structure for the
// harness to compute the paper's per-application metrics: kernel fraction of
// CPU time (Table 2), resource usage / memory ratio / bottleneck (Table 3),
// and kernel & application speedups.
#pragma once

#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cudalite/launch.h"

namespace g80 {

enum class RunScale {
  kQuick,  // small inputs, used by tests (functional validation included)
  kFull,   // bench-scale inputs
};

// Static description plus the values the paper's text states for this
// application (only values actually present in the paper are filled in;
// everything else stays nullopt rather than being invented).
struct AppInfo {
  std::string name;
  std::string description;
  std::optional<double> paper_kernel_pct;      // Table 2: % CPU time in kernel
  std::optional<std::string> paper_bottleneck; // Table 3 narrative
  std::optional<double> paper_kernel_speedup;
  std::optional<double> paper_app_speedup;
};

struct AppResult {
  AppInfo info;

  // --- CPU baseline (measured on this host, single thread) ---
  double cpu_kernel_seconds = 0;  // time in the data-parallel phase
  double cpu_other_seconds = 0;   // non-parallel remainder (I/O, setup, ...)

  // --- GPU port (simulated GeForce 8800) ---
  double gpu_kernel_seconds = 0;  // sum over all launches, incl. overhead
  double transfer_seconds = 0;    // host<->device copies
  int launches = 0;
  LaunchStats representative;     // stats of the dominant kernel launch

  // --- Validation ---
  bool validated = false;
  double max_rel_err = 0;

  // Derived metrics -----------------------------------------------------
  double cpu_total_seconds() const { return cpu_kernel_seconds + cpu_other_seconds; }
  // Table 2: percentage of single-thread CPU execution time spent in kernels.
  double kernel_pct() const {
    const double t = cpu_total_seconds();
    return t > 0 ? 100.0 * cpu_kernel_seconds / t : 0.0;
  }
  // Amdahl ceiling implied by kernel_pct.
  double amdahl_ceiling() const {
    const double f = cpu_kernel_seconds / std::max(cpu_total_seconds(), 1e-30);
    return 1.0 / (1.0 - f + 1e-12);
  }
  double gpu_total_seconds() const {
    return gpu_kernel_seconds + transfer_seconds + cpu_other_seconds;
  }
  double kernel_speedup() const {
    return cpu_kernel_seconds / std::max(gpu_kernel_seconds, 1e-30);
  }
  double app_speedup() const {
    return cpu_total_seconds() / std::max(gpu_total_seconds(), 1e-30);
  }
  // Table 3: GPU execution time as % of GPU-port total.
  double gpu_exec_pct() const {
    return 100.0 * gpu_kernel_seconds / std::max(gpu_total_seconds(), 1e-30);
  }
  double transfer_pct() const {
    return 100.0 * transfer_seconds / std::max(gpu_total_seconds(), 1e-30);
  }
};

class App {
 public:
  virtual ~App() = default;
  virtual AppInfo info() const = 0;
  // Runs CPU baseline + GPU port, validates outputs against each other, and
  // fills in the metrics.  Throws g80::Error on simulator misuse.
  // Each run constructs its own Device from `spec` (fresh address space,
  // constant-memory budget, and transfer ledger).
  virtual AppResult run(const DeviceSpec& spec, RunScale scale) const = 0;
};

// Helper used by every app: fold one launch into the result totals.
void accumulate_launch(AppResult& r, const DeviceSpec& spec,
                       const LaunchStats& stats, bool representative = false);

// Record validation outcome given the worst relative error and a tolerance.
void finish_validation(AppResult& r, double max_rel_err, double tol);

}  // namespace g80
