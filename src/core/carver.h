// Optimization-space carving — the §6 future-work item made concrete.
//
// §6: "It is also possible to get stuck in local maximums of performance
// when attempting to follow a particular optimization strategy ... Better
// tools and compilers that allow programmers to specify the types of
// reorganizations desired and automatically experiment with their
// performance effects would greatly reduce the optimization effort."
// The authors' follow-up work ("program optimization space pruning")
// formalized this: characterize every configuration by two cheap static
// metrics — *efficiency* (useful work per issued instruction) and
// *utilization* (how fully the machine's latency-hiding resources are
// engaged) — and fully evaluate only the Pareto-optimal subset, because the
// true optimum empirically lies on that frontier.
//
// Here: a cheap PROBE (single traced block + the occupancy calculator)
// yields (efficiency, utilization) per candidate; dominated candidates are
// pruned; survivors get the full multi-block timing evaluation.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cudalite/launch.h"

namespace g80 {

struct CarveCandidate {
  std::string name;
  // Cheap probe: a launch with sample_blocks == 1, functional off.
  std::function<LaunchStats()> probe;
  // Full evaluation (normal sampling); only called for Pareto survivors.
  std::function<LaunchStats()> evaluate;
};

struct CarveEntry {
  std::string name;
  double efficiency = 0;   // lane flops per warp-issue cycle (probe)
  double utilization = 0;  // fraction of SM thread contexts resident (probe)
  bool pareto = false;     // survived pruning
  bool evaluated = false;
  LaunchStats full;        // valid iff evaluated
};

struct CarveReport {
  std::vector<CarveEntry> entries;   // registration order
  std::size_t best_index = 0;        // among evaluated entries
  std::size_t probes = 0;            // cheap probes performed (== candidates)
  std::size_t evaluations = 0;       // full evaluations performed

  const CarveEntry& best() const { return entries.at(best_index); }
  bool evaluated_best(std::size_t i) const;
  std::string to_table(const DeviceSpec& spec) const;
};

class OptimizationCarver {
 public:
  explicit OptimizationCarver(const DeviceSpec& spec) : spec_(spec) {}

  void add(CarveCandidate candidate);

  // Probe everything, prune to the (efficiency, utilization) Pareto
  // frontier, fully evaluate the survivors.
  CarveReport carve() const;

  // Metrics, exposed for tests.
  static double efficiency_of(const DeviceSpec& spec, const LaunchStats& s);
  static double utilization_of(const DeviceSpec& spec, const LaunchStats& s);

 private:
  const DeviceSpec& spec_;
  std::vector<CarveCandidate> candidates_;
};

}  // namespace g80
