#include "core/carver.h"

#include "common/error.h"
#include "common/str.h"
#include "common/table.h"

namespace g80 {

void OptimizationCarver::add(CarveCandidate candidate) {
  candidates_.push_back(std::move(candidate));
}

double OptimizationCarver::efficiency_of(const DeviceSpec& spec,
                                         const LaunchStats& s) {
  // Useful floating-point work per cycle the warp occupies the issue logic
  // (including memory-port serialization): the follow-up paper's
  // instruction-efficiency metric, normalized so 1.0 == pure dual-flop MADs.
  const double issue = s.trace.total.issue_cycles(spec);
  if (issue <= 0) return 0.0;
  return s.trace.total.lane_flops /
         (issue * (2.0 * spec.sps_per_sm));
}

double OptimizationCarver::utilization_of(const DeviceSpec& spec,
                                          const LaunchStats& s) {
  // How much latency-hiding capacity is resident: the occupancy fraction,
  // discounted when the grid cannot even fill one wave.
  const double occupancy = s.occupancy.fraction(spec);
  const double blocks = static_cast<double>(s.grid.count());
  const double wave =
      static_cast<double>(s.occupancy.blocks_per_sm) * spec.num_sms;
  return occupancy * std::min(1.0, blocks / wave);
}

CarveReport OptimizationCarver::carve() const {
  G80_CHECK_MSG(!candidates_.empty(), "carver has no candidates");
  CarveReport report;
  report.entries.reserve(candidates_.size());

  // --- Probe phase ---
  for (const auto& c : candidates_) {
    CarveEntry e;
    e.name = c.name;
    const LaunchStats probe = c.probe();
    e.efficiency = efficiency_of(spec_, probe);
    e.utilization = utilization_of(spec_, probe);
    report.entries.push_back(std::move(e));
    ++report.probes;
  }

  // --- Pareto pruning on (efficiency, utilization): keep a point unless
  // some other point is >= in both metrics and > in at least one. ---
  for (std::size_t i = 0; i < report.entries.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < report.entries.size() && !dominated; ++j) {
      if (i == j) continue;
      const auto& a = report.entries[i];
      const auto& b = report.entries[j];
      dominated = b.efficiency >= a.efficiency &&
                  b.utilization >= a.utilization &&
                  (b.efficiency > a.efficiency || b.utilization > a.utilization);
    }
    report.entries[i].pareto = !dominated;
  }

  // --- Full evaluation of the frontier ---
  bool have_best = false;
  for (std::size_t i = 0; i < report.entries.size(); ++i) {
    if (!report.entries[i].pareto) continue;
    report.entries[i].full = candidates_[i].evaluate();
    report.entries[i].evaluated = true;
    ++report.evaluations;
    if (!have_best || report.entries[i].full.timing.seconds <
                          report.entries[report.best_index].full.timing.seconds) {
      report.best_index = i;
      have_best = true;
    }
  }
  G80_CHECK(have_best);  // the frontier is never empty
  return report;
}

std::string CarveReport::to_table(const DeviceSpec& spec) const {
  TextTable t({"configuration", "efficiency", "utilization", "pareto",
               "GFLOPS (full eval)"});
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    t.add_row({
        (evaluated_best(i) ? "* " : "  ") + e.name,
        fixed(e.efficiency, 3),
        fixed(e.utilization, 2),
        e.pareto ? "yes" : "pruned",
        e.evaluated ? fixed(e.full.timing.gflops, 2) : "-",
    });
  }
  std::string s = t.to_string();
  s += cat("\nprobes: ", probes, ", full evaluations: ", evaluations, " (",
           fixed(100.0 * static_cast<double>(evaluations) /
                     static_cast<double>(probes),
                 0),
           "% of the space)\n");
  return s;
}

bool CarveReport::evaluated_best(std::size_t i) const {
  return entries[i].evaluated && i == best_index;
}

}  // namespace g80
