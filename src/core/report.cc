#include "core/report.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/json.h"
#include "common/provenance.h"
#include "common/str.h"
#include "common/table.h"
#include "core/advisor.h"
#include "occupancy/occupancy.h"

namespace g80 {

std::string launch_summary(const DeviceSpec& spec, const LaunchStats& s) {
  return cat(fixed(s.timing.seconds * 1e3, 3), " ms | ",
             fixed(s.timing.gflops, 1), " GFLOPS | ",
             fixed(s.timing.dram_gbs, 1), " GB/s | ",
             s.occupancy.active_threads_per_sm, " thr/SM | ",
             bottleneck_name(s.timing.bottleneck));
}

std::string launch_report(const DeviceSpec& spec, const LaunchStats& s) {
  std::ostringstream os;
  const auto& tr = s.trace;
  const auto& t = s.timing;

  os << "=== launch report: grid " << s.grid.x << "x" << s.grid.y
     << ", block " << s.block.x << "x" << s.block.y << "x" << s.block.z
     << " (" << s.grid.count() << " blocks x " << s.block.count()
     << " threads) ===\n\n";

  // --- Occupancy ---
  os << "occupancy: " << s.occupancy.blocks_per_sm << " block(s)/SM, "
     << s.occupancy.active_warps_per_sm << " warps, "
     << s.occupancy.active_threads_per_sm << "/" << spec.max_threads_per_sm
     << " threads (" << fixed(100 * s.occupancy.fraction(spec), 0)
     << "%), limited by " << occupancy_limit_name(s.occupancy.limiter)
     << "\nresources: " << s.regs_per_thread << " regs/thread, "
     << human_bytes(static_cast<double>(s.smem_per_block))
     << " shared memory/block\n\n";

  // --- Instruction mix ---
  if (tr.num_warps == 0) {
    // Degenerate launch (no warps traced): the per-warp means below would
    // divide by zero, and there is nothing to report anyway.
    os << "instruction mix: (no warps traced)\n\n"
       << "timing model: " << fixed(t.seconds * 1e3, 3) << " ms\n\n"
       << "advisor:\n"
       << format_advice(advise(spec, s));
    return os.str();
  }
  os << "instruction mix (per traced warp, " << tr.num_warps << " warps from "
     << tr.num_blocks << " block(s)):\n";
  {
    TextTable mix({"class", "count/warp", "share %"});
    const double total = static_cast<double>(tr.total.ops.total());
    for (std::size_t c = 0; c < kNumOpClasses; ++c) {
      const auto n = tr.total.ops.counts[c];
      if (n == 0) continue;
      mix.add_row({std::string(op_class_name(static_cast<OpClass>(c))),
                   fixed(static_cast<double>(n) / static_cast<double>(tr.num_warps), 1),
                   fixed(100.0 * static_cast<double>(n) / total, 1)});
    }
    os << mix.to_string();
  }
  os << "potential throughput (mix-limited, §4.1): "
     << fixed(potential_gflops(spec, tr), 2) << " GFLOPS\n\n";

  // --- Memory system ---
  os << "global memory: " << tr.mean_global_instructions()
     << " accesses/warp, " << fixed(100 * tr.coalesced_fraction(), 1)
     << "% coalesced, " << fixed(tr.transactions_per_mem_inst(), 2)
     << " txn/access";
  if (tr.total.useful_global_bytes > 0) {
    os << ", overfetch "
       << fixed(static_cast<double>(tr.total.global.bytes) /
                    static_cast<double>(tr.total.useful_global_bytes),
                2)
       << "x";
  }
  os << "\nshared memory: " << tr.total.shared_extra_passes
     << " bank-conflict replays; constant: " << tr.total.const_extra_passes
     << " serialization replays";
  if (tr.total.texture_hits + tr.total.texture_misses > 0) {
    os << "; texture hit rate "
       << fixed(100.0 * static_cast<double>(tr.total.texture_hits) /
                    static_cast<double>(tr.total.texture_hits +
                                        tr.total.texture_misses),
                1)
       << "%";
  }
  os << "\nbranches: " << fixed(100 * tr.divergent_branch_fraction(), 1)
     << "% divergent\n\n";

  // --- Timing ---
  os << "timing model: " << fixed(t.seconds * 1e3, 3) << " ms ("
     << fixed(t.gflops, 2) << " GFLOPS, " << fixed(t.dram_gbs, 1)
     << " GB/s DRAM)\n"
     << "  waves " << fixed(t.waves, 2) << " x " << fixed(t.wave_cycles, 0)
     << " cycles; floors: issue " << fixed(t.issue_floor_cycles, 0)
     << ", latency " << fixed(t.latency_bound_cycles, 0) << ", bandwidth "
     << fixed(t.bandwidth_floor_cycles, 0) << ", sync stalls "
     << fixed(t.sync_stall_cycles, 0) << "\n"
     << "  MWP " << fixed(t.mwp, 1) << ", CWP " << fixed(t.cwp, 1)
     << "; bottleneck: " << bottleneck_name(t.bottleneck) << "\n\n";

  // --- Advice ---
  os << "advisor:\n" << format_advice(advise(spec, s));
  return os.str();
}

std::string timeline_report(const Timeline& tl) {
  std::ostringstream os;
  const auto& spans = tl.spans();
  os << "=== timeline report: " << spans.size() << " op(s), "
     << fixed(tl.total_seconds() * 1e3, 3) << " ms total ===\n\n";

  TextTable ops({"#", "stream", "engine", "start ms", "end ms", "dur ms",
                 "op"});
  for (const auto& sp : spans) {
    ops.add_row({std::to_string(sp.seq), std::to_string(sp.stream),
                 std::string(engine_name(sp.engine)),
                 fixed(sp.start_s * 1e3, 3), fixed(sp.end_s * 1e3, 3),
                 fixed(sp.duration_s() * 1e3, 3), sp.label});
  }
  os << ops.to_string() << "\n";

  const double total = tl.total_seconds();
  for (auto e : {TimelineEngine::kCompute, TimelineEngine::kCopy}) {
    const double busy = tl.engine_busy_seconds(e);
    os << engine_name(e) << " engine: " << fixed(busy * 1e3, 3) << " ms busy";
    if (total > 0) os << " (" << fixed(100.0 * busy / total, 1) << "%)";
    os << "\n";
  }

  const double serial = tl.serialized_seconds();
  os << "overlap: " << fixed(total * 1e3, 3) << " ms vs "
     << fixed(serial * 1e3, 3) << " ms serialized";
  if (serial > 0) {
    os << " (saved " << fixed(100.0 * (serial - total) / serial, 1) << "%)";
  }
  os << "\n";
  return os.str();
}

namespace {

// Issue-limited potential throughput from a profile's instruction mix —
// the same §4.1 arithmetic `potential_gflops` applies to a TraceSummary,
// restated over aggregated counters.
double profile_potential_gflops(const DeviceSpec& spec,
                                const prof::KernelCounters& c) {
  const double issue = c.mix.warp_issue_cycles(spec);
  if (issue <= 0) return 0.0;
  return c.flops / issue * spec.num_sms * spec.core_clock_ghz;
}

}  // namespace

std::string profile_report(const DeviceSpec& spec,
                           const prof::Profiler& profiler) {
  std::ostringstream os;
  const auto kernels = profiler.kernels();
  os << "=== g80prof session: " << profiler.total_launches()
     << " launch(es), " << kernels.size() << " kernel(s) ===\n\n";

  TextTable t({"kernel", "launches", "ms", "GFLOPS", "gld_coal", "gld_unc",
               "gst_coal", "gst_unc", "warp_ser", "div_br", "fmad %",
               "occ %"});
  for (const auto& k : kernels) {
    const auto& c = k.counters;
    t.add_row({k.name, std::to_string(k.launches),
               fixed(k.modeled_seconds * 1e3, 3), fixed(k.gflops, 1),
               std::to_string(c.gld_coalesced),
               std::to_string(c.gld_uncoalesced),
               std::to_string(c.gst_coalesced),
               std::to_string(c.gst_uncoalesced),
               std::to_string(c.warp_serialize),
               std::to_string(c.divergent_branch),
               fixed(100 * c.fmad_fraction(), 1),
               fixed(100 * c.achieved_occupancy, 1)});
  }
  os << t.to_string();

  // g80resil recovery provenance: only shown when some launch needed it.
  std::uint64_t retries = 0, timeouts = 0, recovered = 0, fallbacks = 0;
  for (const auto& k : kernels) {
    retries += k.retries;
    timeouts += k.timeouts;
    recovered += k.recovered;
    fallbacks += k.fallback_launches;
  }
  if (retries + timeouts + recovered + fallbacks > 0) {
    os << "\nresilience: " << retries << " retr(ies), " << timeouts
       << " timeout(s), " << recovered << " recovered launch(es), "
       << fallbacks << " at a degraded fallback level\n";
  }

  const auto tx = profiler.transfers();
  if (tx.h2d_count + tx.d2h_count > 0) {
    os << "\ntransfers: " << tx.h2d_count << " h2d ("
       << human_bytes(static_cast<double>(tx.h2d_bytes)) << "), "
       << tx.d2h_count << " d2h ("
       << human_bytes(static_cast<double>(tx.d2h_bytes)) << "), "
       << fixed(tx.modeled_seconds * 1e3, 3) << " ms modeled\n";
  }
  return os.str();
}

std::string scope_report(const DeviceSpec& spec, const scope::Session& session,
                         std::size_t top_n) {
  std::ostringstream os;
  const auto launches = session.launches();
  os << "=== g80scope session: " << launches.size() << " launch(es) ===\n\n";

  // Per-launch stall-cycle budget: where the modeled cycles went.
  TextTable budget({"#", "kernel", "horizon cyc", "buckets", "issue",
                    "serial", "uncoal", "mem stall", "barrier"});
  for (const auto& rec : launches) {
    const auto& tot = rec.scope.totals;
    budget.add_row({std::to_string(rec.id), rec.kernel_name,
                    fixed(rec.scope.horizon_cycles, 0),
                    std::to_string(rec.scope.num_buckets),
                    fixed(tot.issue_cycles, 0),
                    fixed(tot.serialization_cycles, 0),
                    fixed(tot.uncoalesced_cycles, 0),
                    fixed(tot.mem_stall_cycles, 0),
                    fixed(tot.barrier_cycles, 0)});
  }
  os << budget.to_string();

  // Session-wide site attribution: merge every launch's table by source
  // position, then rank by total attributed stall cycles.
  std::map<std::pair<std::string, std::uint32_t>, scope::SiteAttribution> merged;
  for (const auto& rec : launches) {
    for (const auto& site : rec.scope.sites) {
      auto& m = merged[{site.file, site.line}];
      m.file = site.file;
      m.line = site.line;
      m.uncoalesced_cycles += site.uncoalesced_cycles;
      m.serialization_cycles += site.serialization_cycles;
      m.barrier_cycles += site.barrier_cycles;
      m.mem_stall_cycles += site.mem_stall_cycles;
      m.global_instructions += site.global_instructions;
      m.syncs += site.syncs;
    }
  }
  std::vector<scope::SiteAttribution> ranked;
  ranked.reserve(merged.size());
  for (auto& [key, site] : merged) ranked.push_back(std::move(site));
  std::sort(ranked.begin(), ranked.end(),
            [](const scope::SiteAttribution& a,
               const scope::SiteAttribution& b) {
              return a.total_cycles() > b.total_cycles();
            });
  double session_stall = 0;
  for (const auto& s : ranked) session_stall += s.total_cycles();

  os << "\ncostliest lines (attributed stall cycles, top "
     << std::min(top_n, ranked.size()) << " of " << ranked.size() << "):\n";
  if (ranked.empty() || session_stall <= 0) {
    os << "  (no attributed stalls)\n";
    return os.str();
  }
  TextTable sites({"line", "stall cyc", "share %", "uncoal", "serial",
                   "barrier", "mem stall", "gmem ops", "syncs"});
  for (std::size_t i = 0; i < ranked.size() && i < top_n; ++i) {
    const auto& s = ranked[i];
    sites.add_row({cat(s.file, ":", s.line), fixed(s.total_cycles(), 0),
                   fixed(100.0 * s.total_cycles() / session_stall, 1),
                   fixed(s.uncoalesced_cycles, 0),
                   fixed(s.serialization_cycles, 0),
                   fixed(s.barrier_cycles, 0), fixed(s.mem_stall_cycles, 0),
                   std::to_string(s.global_instructions),
                   std::to_string(s.syncs)});
  }
  os << sites.to_string();
  return os.str();
}

std::string profile_json(const DeviceSpec& spec,
                         const prof::Profiler& profiler) {
  JsonWriter w;
  w.begin_object();
  {
    Provenance p = build_provenance("g80prof-profile");
    p.device = spec.name;
    p.device_spec_hash = device_spec_hash(spec);
    write_provenance(w, p);
  }
  w.key("profiler");
  w.value("g80prof");
  w.key("device");
  w.begin_object();
  w.kv("name", spec.name);
  w.kv("num_sms", static_cast<std::uint64_t>(spec.num_sms));
  w.kv("core_clock_ghz", spec.core_clock_ghz);
  w.kv("dram_bandwidth_gbs", spec.dram_bandwidth_gbs);
  w.end_object();
  w.kv("total_launches", profiler.total_launches());

  w.key("kernels");
  w.begin_array();
  for (const auto& k : profiler.kernels()) {
    const auto& c = k.counters;
    w.begin_object();
    w.kv("name", k.name);
    w.kv("launches", k.launches);
    w.kv("modeled_ms", k.modeled_seconds * 1e3);
    w.key("grid");
    w.begin_array();
    w.value(static_cast<std::uint64_t>(k.grid.x));
    w.value(static_cast<std::uint64_t>(k.grid.y));
    w.end_array();
    w.key("block");
    w.begin_array();
    w.value(static_cast<std::uint64_t>(k.block.x));
    w.value(static_cast<std::uint64_t>(k.block.y));
    w.value(static_cast<std::uint64_t>(k.block.z));
    w.end_array();

    // Raw hardware-style counters over the sampled blocks.
    w.key("counters");
    w.begin_object();
    w.kv("gld_coalesced", c.gld_coalesced);
    w.kv("gld_uncoalesced", c.gld_uncoalesced);
    w.kv("gst_coalesced", c.gst_coalesced);
    w.kv("gst_uncoalesced", c.gst_uncoalesced);
    w.kv("global_transactions", c.global_transactions);
    w.kv("dram_bytes", c.dram_bytes);
    w.kv("useful_bytes", c.useful_bytes);
    w.kv("warp_serialize", c.warp_serialize);
    w.kv("shared_bank_replays", c.shared_bank_replays);
    w.kv("const_serialize", c.const_serialize);
    w.kv("const_requests", c.const_requests);
    w.kv("tex_cache_hits", c.tex_cache_hits);
    w.kv("tex_cache_misses", c.tex_cache_misses);
    w.kv("branch", c.branch);
    w.kv("divergent_branch", c.divergent_branch);
    w.kv("sync", c.sync);
    w.kv("instructions", c.instructions);
    w.kv("cta_launched", c.blocks_total);
    w.kv("blocks_sampled", c.blocks_sampled);
    w.kv("warps_sampled", c.warps_sampled);
    w.kv("grid_scale", c.grid_scale());
    w.end_object();

    // g80resil recovery provenance, aggregated across this kernel's launches.
    w.key("resilience");
    w.begin_object();
    w.kv("retries", k.retries);
    w.kv("timeouts", k.timeouts);
    w.kv("recovered", k.recovered);
    w.kv("fallback_launches", k.fallback_launches);
    w.end_object();

    w.key("instruction_mix");
    w.begin_object();
    for (std::size_t i = 0; i < kNumOpClasses; ++i) {
      const auto n = c.mix.counts[i];
      if (n == 0) continue;
      w.kv(op_class_name(static_cast<OpClass>(i)), n);
    }
    w.end_object();

    // Paper Table 2 columns: instruction-mix shares and what they imply.
    w.key("table2");
    w.begin_object();
    w.kv("fmad_fraction", c.fmad_fraction());
    w.kv("coalesced_fraction", c.coalesced_fraction());
    w.kv("divergent_branch_fraction", c.divergent_branch_fraction());
    w.kv("potential_gflops", profile_potential_gflops(spec, c));
    w.kv("flops", c.flops);
    w.end_object();

    // Paper Table 3 columns: configuration + achieved performance.
    w.key("table3");
    w.begin_object();
    w.kv("max_simultaneous_threads", k.max_simultaneous_threads);
    w.kv("registers_per_thread", k.regs_per_thread);
    w.kv("shared_mem_per_block",
         static_cast<std::uint64_t>(k.smem_per_block));
    w.kv("achieved_occupancy", c.achieved_occupancy);
    w.kv("blocks_per_sm", c.blocks_per_sm);
    w.kv("active_warps_per_sm", c.active_warps_per_sm);
    w.kv("gflops", k.gflops);
    w.kv("dram_gbs", k.dram_gbs);
    w.kv("bottleneck", bottleneck_name(k.bottleneck));
    w.end_object();
    w.end_object();
  }
  w.end_array();

  const auto tx = profiler.transfers();
  w.key("transfers");
  w.begin_object();
  w.kv("h2d_count", tx.h2d_count);
  w.kv("h2d_bytes", tx.h2d_bytes);
  w.kv("d2h_count", tx.d2h_count);
  w.kv("d2h_bytes", tx.d2h_bytes);
  w.kv("modeled_seconds", tx.modeled_seconds);
  w.end_object();
  w.end_object();
  return w.str();
}

std::string launch_stats_json(const DeviceSpec& spec,
                              const LaunchStats& s) {
  JsonWriter w;
  w.begin_object();
  w.key("grid");
  w.begin_array();
  w.value(static_cast<std::uint64_t>(s.grid.x));
  w.value(static_cast<std::uint64_t>(s.grid.y));
  w.end_array();
  w.key("block");
  w.begin_array();
  w.value(static_cast<std::uint64_t>(s.block.x));
  w.value(static_cast<std::uint64_t>(s.block.y));
  w.value(static_cast<std::uint64_t>(s.block.z));
  w.end_array();
  w.kv("regs_per_thread", s.regs_per_thread);
  w.kv("smem_per_block", static_cast<std::uint64_t>(s.smem_per_block));

  w.key("occupancy");
  w.begin_object();
  w.kv("blocks_per_sm", s.occupancy.blocks_per_sm);
  w.kv("active_threads_per_sm", s.occupancy.active_threads_per_sm);
  w.kv("active_warps_per_sm", s.occupancy.active_warps_per_sm);
  w.kv("fraction", s.occupancy.fraction(spec));
  w.kv("limiter", occupancy_limit_name(s.occupancy.limiter));
  w.end_object();

  w.key("timing");
  w.begin_object();
  w.kv("modeled_ms", s.timing.seconds * 1e3);
  w.kv("total_ms", s.total_seconds(spec) * 1e3);
  w.kv("gflops", s.timing.gflops);
  w.kv("dram_gbs", s.timing.dram_gbs);
  w.kv("waves", s.timing.waves);
  w.kv("mwp", s.timing.mwp);
  w.kv("cwp", s.timing.cwp);
  w.kv("mem_to_compute_ratio", s.timing.mem_to_compute_ratio);
  w.kv("bottleneck", bottleneck_name(s.timing.bottleneck));
  w.end_object();

  w.key("sanitizer");
  w.begin_object();
  w.kv("findings", static_cast<std::uint64_t>(s.sanitizer.findings.size()));
  w.kv("blocks_checked", s.sanitizer.blocks_checked);
  w.end_object();

  w.key("resilience");
  w.begin_object();
  w.kv("attempts", s.resilience.attempts);
  w.kv("fallback_level", s.resilience.fallback_level);
  w.kv("recovered", s.resilience.recovered);
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace g80
