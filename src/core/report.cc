#include "core/report.h"

#include <sstream>

#include "common/str.h"
#include "common/table.h"
#include "core/advisor.h"
#include "occupancy/occupancy.h"

namespace g80 {

std::string launch_summary(const DeviceSpec& spec, const LaunchStats& s) {
  return cat(fixed(s.timing.seconds * 1e3, 3), " ms | ",
             fixed(s.timing.gflops, 1), " GFLOPS | ",
             fixed(s.timing.dram_gbs, 1), " GB/s | ",
             s.occupancy.active_threads_per_sm, " thr/SM | ",
             bottleneck_name(s.timing.bottleneck));
}

std::string launch_report(const DeviceSpec& spec, const LaunchStats& s) {
  std::ostringstream os;
  const auto& tr = s.trace;
  const auto& t = s.timing;

  os << "=== launch report: grid " << s.grid.x << "x" << s.grid.y
     << ", block " << s.block.x << "x" << s.block.y << "x" << s.block.z
     << " (" << s.grid.count() << " blocks x " << s.block.count()
     << " threads) ===\n\n";

  // --- Occupancy ---
  os << "occupancy: " << s.occupancy.blocks_per_sm << " block(s)/SM, "
     << s.occupancy.active_warps_per_sm << " warps, "
     << s.occupancy.active_threads_per_sm << "/" << spec.max_threads_per_sm
     << " threads (" << fixed(100 * s.occupancy.fraction(spec), 0)
     << "%), limited by " << occupancy_limit_name(s.occupancy.limiter)
     << "\nresources: " << s.regs_per_thread << " regs/thread, "
     << human_bytes(static_cast<double>(s.smem_per_block))
     << " shared memory/block\n\n";

  // --- Instruction mix ---
  os << "instruction mix (per traced warp, " << tr.num_warps << " warps from "
     << tr.num_blocks << " block(s)):\n";
  {
    TextTable mix({"class", "count/warp", "share %"});
    const double total = static_cast<double>(tr.total.ops.total());
    for (std::size_t c = 0; c < kNumOpClasses; ++c) {
      const auto n = tr.total.ops.counts[c];
      if (n == 0) continue;
      mix.add_row({std::string(op_class_name(static_cast<OpClass>(c))),
                   fixed(static_cast<double>(n) / static_cast<double>(tr.num_warps), 1),
                   fixed(100.0 * static_cast<double>(n) / total, 1)});
    }
    os << mix.to_string();
  }
  os << "potential throughput (mix-limited, §4.1): "
     << fixed(potential_gflops(spec, tr), 2) << " GFLOPS\n\n";

  // --- Memory system ---
  os << "global memory: " << tr.mean_global_instructions()
     << " accesses/warp, " << fixed(100 * tr.coalesced_fraction(), 1)
     << "% coalesced, " << fixed(tr.transactions_per_mem_inst(), 2)
     << " txn/access";
  if (tr.total.useful_global_bytes > 0) {
    os << ", overfetch "
       << fixed(static_cast<double>(tr.total.global.bytes) /
                    static_cast<double>(tr.total.useful_global_bytes),
                2)
       << "x";
  }
  os << "\nshared memory: " << tr.total.shared_extra_passes
     << " bank-conflict replays; constant: " << tr.total.const_extra_passes
     << " serialization replays";
  if (tr.total.texture_hits + tr.total.texture_misses > 0) {
    os << "; texture hit rate "
       << fixed(100.0 * static_cast<double>(tr.total.texture_hits) /
                    static_cast<double>(tr.total.texture_hits +
                                        tr.total.texture_misses),
                1)
       << "%";
  }
  os << "\nbranches: " << fixed(100 * tr.divergent_branch_fraction(), 1)
     << "% divergent\n\n";

  // --- Timing ---
  os << "timing model: " << fixed(t.seconds * 1e3, 3) << " ms ("
     << fixed(t.gflops, 2) << " GFLOPS, " << fixed(t.dram_gbs, 1)
     << " GB/s DRAM)\n"
     << "  waves " << fixed(t.waves, 2) << " x " << fixed(t.wave_cycles, 0)
     << " cycles; floors: issue " << fixed(t.issue_floor_cycles, 0)
     << ", latency " << fixed(t.latency_bound_cycles, 0) << ", bandwidth "
     << fixed(t.bandwidth_floor_cycles, 0) << ", sync stalls "
     << fixed(t.sync_stall_cycles, 0) << "\n"
     << "  MWP " << fixed(t.mwp, 1) << ", CWP " << fixed(t.cwp, 1)
     << "; bottleneck: " << bottleneck_name(t.bottleneck) << "\n\n";

  // --- Advice ---
  os << "advisor:\n" << format_advice(advise(spec, s));
  return os.str();
}

std::string timeline_report(const Timeline& tl) {
  std::ostringstream os;
  const auto& spans = tl.spans();
  os << "=== timeline report: " << spans.size() << " op(s), "
     << fixed(tl.total_seconds() * 1e3, 3) << " ms total ===\n\n";

  TextTable ops({"#", "stream", "engine", "start ms", "end ms", "dur ms",
                 "op"});
  for (const auto& sp : spans) {
    ops.add_row({std::to_string(sp.seq), std::to_string(sp.stream),
                 std::string(engine_name(sp.engine)),
                 fixed(sp.start_s * 1e3, 3), fixed(sp.end_s * 1e3, 3),
                 fixed(sp.duration_s() * 1e3, 3), sp.label});
  }
  os << ops.to_string() << "\n";

  const double total = tl.total_seconds();
  for (auto e : {TimelineEngine::kCompute, TimelineEngine::kCopy}) {
    const double busy = tl.engine_busy_seconds(e);
    os << engine_name(e) << " engine: " << fixed(busy * 1e3, 3) << " ms busy";
    if (total > 0) os << " (" << fixed(100.0 * busy / total, 1) << "%)";
    os << "\n";
  }

  const double serial = tl.serialized_seconds();
  os << "overlap: " << fixed(total * 1e3, 3) << " ms vs "
     << fixed(serial * 1e3, 3) << " ms serialized";
  if (serial > 0) {
    os << " (saved " << fixed(100.0 * (serial - total) / serial, 1) << "%)";
  }
  os << "\n";
  return os.str();
}

}  // namespace g80
