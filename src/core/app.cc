#include "core/app.h"

#include "common/error.h"

namespace g80 {

void accumulate_launch(AppResult& r, const DeviceSpec& spec,
                       const LaunchStats& stats, bool representative) {
  r.gpu_kernel_seconds += stats.total_seconds(spec);
  ++r.launches;
  if (representative || r.launches == 1) r.representative = stats;
}

void finish_validation(AppResult& r, double max_rel_err, double tol) {
  r.max_rel_err = max_rel_err;
  r.validated = max_rel_err <= tol;
  G80_CHECK_MSG(r.validated, r.info.name << ": GPU port diverged from CPU "
                                            "reference (max rel err "
                                         << max_rel_err << " > " << tol << ")");
}

}  // namespace g80
