#include "core/advisor.h"

#include <algorithm>

#include "common/str.h"

namespace g80 {

double potential_gflops(const DeviceSpec& spec, const TraceSummary& trace) {
  // Issue-limited throughput from the INSTRUCTION MIX alone (the §4.1
  // PTX-counting arithmetic: "1/8 fused multiply-adds => 43.2 GFLOPS
  // potential").  Memory-system serialization — bank replays, constant
  // replays, uncoalesced transaction streams — is deliberately excluded:
  // potential is what the kernel could reach if memory behaved perfectly.
  const double issue = trace.total.ops.warp_issue_cycles(spec);
  if (issue <= 0) return 0.0;
  const double flops = trace.total.lane_flops;
  // flops per SM-cycle when issue-saturated, times SMs and clock.
  return flops / issue * spec.num_sms * spec.core_clock_ghz;
}

std::vector<Advice> advise(const DeviceSpec& spec, const LaunchStats& s) {
  std::vector<Advice> out;
  const auto add = [&out](AdviceKind k, double sev, std::string msg) {
    out.push_back({k, std::move(msg), sev});
  };
  const TraceSummary& tr = s.trace;
  const KernelTiming& t = s.timing;

  // --- Principle 2 / §4.2: bandwidth pressure ---
  if (t.bottleneck == Bottleneck::kGlobalBandwidth) {
    const double overfetch =
        tr.total.useful_global_bytes > 0
            ? static_cast<double>(tr.total.global.bytes) /
                  static_cast<double>(tr.total.useful_global_bytes)
            : 1.0;
    if (tr.coalesced_fraction() < 0.9) {
      add(AdviceKind::kImproveCoalescing, 1.0,
          cat("only ", fixed(100 * tr.coalesced_fraction(), 1),
              "% of global accesses coalesce into 16-word lines; DRAM moves ",
              fixed(overfetch, 2),
              "x the useful bytes — reorder threads or stage through shared "
              "memory so each half-warp reads a contiguous aligned segment"));
    }
    add(AdviceKind::kUseSharedMemoryTiling, 0.9,
        cat("kernel is DRAM-bandwidth bound (",
            fixed(t.dram_gbs, 1), " GB/s of ",
            fixed(spec.dram_bandwidth_gbs, 1),
            " GB/s peak); increase reuse: tile inputs into shared memory and "
            "amortize each global load across the block"));
  }

  // --- Principle 1: latency hiding needs enough warps ---
  if (t.bottleneck == Bottleneck::kGlobalLatency ||
      (s.occupancy.fraction(spec) < 0.5 &&
       t.bottleneck != Bottleneck::kInstructionIssue)) {
    const auto lim = s.occupancy.limiter;
    if (lim == OccupancyLimit::kRegisters) {
      add(AdviceKind::kReduceRegisterPressure, 0.8,
          cat(s.regs_per_thread, " registers/thread limits the SM to ",
              s.occupancy.blocks_per_sm,
              " block(s); shaving registers (e.g. rematerialize or restrict "
              "unrolling) would admit another block — the §4.4 prefetching "
              "lesson in reverse"));
    } else if (lim == OccupancyLimit::kSharedMem) {
      add(AdviceKind::kReduceSharedMemoryUsage, 0.8,
          cat(s.smem_per_block, " B of shared memory per block limits the SM to ",
              s.occupancy.blocks_per_sm, " block(s)"));
    } else {
      add(AdviceKind::kIncreaseOccupancy, 0.7,
          cat("only ", s.occupancy.active_warps_per_sm,
              " warps/SM are resident (MWP ", fixed(t.mwp, 1), " < CWP ",
              fixed(t.cwp, 1),
              "); use more, finer-grained threads to hide the ~",
              fixed(spec.global_latency_cycles, 0), "-cycle global latency"));
    }
  }

  // --- Principle 3: SIMD divergence and bank conflicts ---
  if (tr.divergent_branch_fraction() > 0.05) {
    add(AdviceKind::kAvoidDivergence, 0.6,
        cat(fixed(100 * tr.divergent_branch_fraction(), 1),
            "% of warp branches diverge; reorganize threads so warps take "
            "uniform paths"));
  }
  if (tr.num_warps > 0) {
    const double conflicts_per_warp =
        static_cast<double>(tr.total.shared_extra_passes) /
        static_cast<double>(tr.num_warps);
    const double shared_insts_per_warp =
        static_cast<double>(tr.total.ops[OpClass::kLoadShared] +
                            tr.total.ops[OpClass::kStoreShared]) /
        static_cast<double>(tr.num_warps);
    if (shared_insts_per_warp > 0 &&
        conflicts_per_warp > 0.1 * shared_insts_per_warp) {
      add(AdviceKind::kFixBankConflicts, 0.6,
          cat("shared-memory accesses replay ",
              fixed(conflicts_per_warp, 1),
              " extra passes per warp from bank conflicts; pad arrays or "
              "permute indices across the 16 banks"));
    }
  }

  // --- §4.3: instruction-efficiency headroom when issue-bound ---
  if (t.bottleneck == Bottleneck::kInstructionIssue) {
    const double mix = tr.fmad_fraction();
    if (mix < 0.25 && tr.total.lane_flops > 0) {
      add(AdviceKind::kReduceInstructionOverhead, 0.5,
          cat("issue-bound with only ", fixed(100 * mix, 1),
              "% fused multiply-adds in the mix (potential ",
              fixed(potential_gflops(spec, tr), 1),
              " GFLOPS); unroll inner loops and fold address arithmetic into "
              "constants to raise the useful-instruction fraction"));
    }
  }

  // --- Read-only data placement ---
  if (tr.num_warps > 0) {
    const double scattered_frac =
        tr.total.global.bytes > 0
            ? static_cast<double>(tr.total.global.scattered_bytes) /
                  static_cast<double>(tr.total.global.bytes)
            : 0.0;
    if (scattered_frac > 0.5 && tr.total.global.bytes > 0 &&
        t.bottleneck != Bottleneck::kInstructionIssue) {
      add(AdviceKind::kUseConstantOrTextureCache, 0.5,
          cat(fixed(100 * scattered_frac, 1),
              "% of DRAM traffic is scattered; if the data is read-only, "
              "serve it from the constant cache (uniform index) or texture "
              "cache (spatially local index) — the paper's PNS port gained "
              "2.8x this way"));
    }
  }

  // --- Machine fill ---
  if (t.bottleneck == Bottleneck::kIdle) {
    add(AdviceKind::kIncreaseParallelism, 0.9,
        cat("grid of ", s.grid.count(), " block(s) cannot fill ",
            spec.num_sms, " SMs x ", s.occupancy.blocks_per_sm,
            " blocks; expose more thread-level parallelism"));
  }
  if (t.bottleneck == Bottleneck::kSynchronization) {
    add(AdviceKind::kSplitKernelForGlobalSync, 0.8,
        "barrier stalls dominate; restructure phases so fewer warps wait "
        "idle, or split the kernel at global synchronization points");
  }

  std::sort(out.begin(), out.end(),
            [](const Advice& a, const Advice& b) { return a.severity > b.severity; });
  return out;
}

std::vector<Advice> advise(const DeviceSpec& spec, const LaunchStats& s,
                           const prof::KernelCounters& m) {
  std::vector<Advice> out = advise(spec, s);
  // Suffix each triggered advice with the g80prof counters that measure the
  // same phenomenon, so the recommendation carries evidence the reader can
  // cross-check against the profiler's JSON report (docs/profiling.md).
  for (Advice& a : out) {
    std::string cite;
    switch (a.kind) {
      case AdviceKind::kImproveCoalescing:
      case AdviceKind::kUseSharedMemoryTiling:
        cite = cat("gld_uncoalesced=", m.gld_uncoalesced, " gst_uncoalesced=",
                   m.gst_uncoalesced, " of ",
                   m.gld_coalesced + m.gld_uncoalesced + m.gst_coalesced +
                       m.gst_uncoalesced,
                   " accesses, dram_bytes=", m.dram_bytes, " (useful ",
                   m.useful_bytes, ")");
        break;
      case AdviceKind::kFixBankConflicts:
        cite = cat("warp_serialize=", m.warp_serialize, " (bank replays ",
                   m.shared_bank_replays, ")");
        break;
      case AdviceKind::kAvoidDivergence:
        cite = cat("divergent_branch=", m.divergent_branch, " of branch=",
                   m.branch);
        break;
      case AdviceKind::kReduceInstructionOverhead:
        cite = cat("instructions=", m.instructions, ", fmad=",
                   m.mix[OpClass::kFMad], " (",
                   fixed(100 * m.fmad_fraction(), 1), "%)");
        break;
      case AdviceKind::kUseConstantOrTextureCache:
        cite = cat("tex_cache_hits=", m.tex_cache_hits, " misses=",
                   m.tex_cache_misses, ", const_serialize=",
                   m.const_serialize);
        break;
      case AdviceKind::kIncreaseOccupancy:
      case AdviceKind::kReduceRegisterPressure:
      case AdviceKind::kReduceSharedMemoryUsage:
        cite = cat("achieved_occupancy=",
                   fixed(100 * m.achieved_occupancy, 1), "%, ",
                   m.active_warps_per_sm, " warps/SM");
        break;
      default: break;
    }
    if (!cite.empty()) a.message += cat(" [measured: ", cite, "]");
  }
  return out;
}

namespace {

// Which scope stall category substantiates which advice kind.
double site_category_cycles(AdviceKind kind, const scope::SiteAttribution& s) {
  switch (kind) {
    case AdviceKind::kImproveCoalescing:
      return s.uncoalesced_cycles;
    case AdviceKind::kFixBankConflicts:
      return s.serialization_cycles;
    case AdviceKind::kSplitKernelForGlobalSync:
      return s.barrier_cycles;
    case AdviceKind::kUseSharedMemoryTiling:
    case AdviceKind::kIncreaseOccupancy:
    case AdviceKind::kReduceRegisterPressure:
    case AdviceKind::kReduceSharedMemoryUsage:
    case AdviceKind::kUseConstantOrTextureCache:
      return s.mem_stall_cycles;
    default:
      return 0.0;
  }
}

const char* site_category_name(AdviceKind kind) {
  switch (kind) {
    case AdviceKind::kImproveCoalescing:
      return "uncoalesced-replay";
    case AdviceKind::kFixBankConflicts:
      return "serialization";
    case AdviceKind::kSplitKernelForGlobalSync:
      return "barrier-wait";
    default:
      return "memory-stall";
  }
}

}  // namespace

std::vector<Advice> advise(const DeviceSpec& spec, const LaunchStats& s,
                           const scope::KernelScope& scope) {
  std::vector<Advice> out = advise(spec, s);
  // Suffix each triggered advice with the source line that g80scope's
  // stall-attribution table charges the most cycles of the matching stall
  // category — the "which line do I change" pointer the plain diagnosis
  // cannot give.
  for (Advice& a : out) {
    const scope::SiteAttribution* hot = nullptr;
    double hot_cycles = 0;
    for (const scope::SiteAttribution& site : scope.sites) {
      const double c = site_category_cycles(a.kind, site);
      if (c > hot_cycles) {
        hot_cycles = c;
        hot = &site;
      }
    }
    if (hot != nullptr && hot_cycles > 0) {
      a.message += cat(" [hot line: ", hot->file, ":", hot->line, " — ",
                       fixed(hot_cycles, 0), " ", site_category_name(a.kind),
                       " cycles]");
    }
  }
  return out;
}

std::string format_advice(const std::vector<Advice>& advice) {
  if (advice.empty()) return "  (no advice: kernel is well balanced)\n";
  std::string s;
  for (const auto& a : advice) {
    s += cat("  [", fixed(a.severity, 2), "] ", a.message, "\n");
  }
  return s;
}

}  // namespace g80
