// Optimization advisor: the paper's four optimization principles (§1) turned
// into an automated diagnosis over a launch's statistics.
//
//   1. leverage zero-overhead thread scheduling to hide memory latency,
//   2. optimize use of on-chip memory to reduce bandwidth usage,
//   3. group threads to avoid SIMD penalties and memory port/bank conflicts,
//   4. structure around the lack of global inter-block synchronization.
//
// Given a LaunchStats, the advisor emits concrete, prioritized advice of the
// kind §4 and §5.2 walk through by hand (tile for reuse, fix coalescing,
// reduce registers to fit another block, unroll the hot loop, move read-only
// tables to constant/texture space...).
#pragma once

#include <string>
#include <vector>

#include "cudalite/launch.h"
#include "prof/counters.h"
#include "scope/scope.h"

namespace g80 {

enum class AdviceKind {
  kImproveCoalescing,
  kUseSharedMemoryTiling,
  kIncreaseOccupancy,
  kReduceRegisterPressure,
  kReduceSharedMemoryUsage,
  kFixBankConflicts,
  kReduceInstructionOverhead,  // unrolling / CSE / strength reduction (§4.3)
  kAvoidDivergence,
  kUseConstantOrTextureCache,
  kIncreaseParallelism,        // grid too small for the machine
  kSplitKernelForGlobalSync,   // time-sliced pattern (§5.1)
  kNone,
};

struct Advice {
  AdviceKind kind = AdviceKind::kNone;
  std::string message;   // human-readable, cites the triggering numbers
  double severity = 0;   // [0,1]; ordering key, 1 = dominant bottleneck
};

std::vector<Advice> advise(const DeviceSpec& spec, const LaunchStats& stats);

// g80prof integration: identical diagnosis rules, but every triggered advice
// message is suffixed with the measured hardware-style counters behind it
// (e.g. "[measured: gld_uncoalesced=124 of 128 loads]"), so recommendations
// cite profiler evidence rather than only modeled quantities.
std::vector<Advice> advise(const DeviceSpec& spec, const LaunchStats& stats,
                           const prof::KernelCounters& measured);

// g80scope integration: same rules again, but each triggered advice also
// names the kernel source line g80scope attributes the most stall cycles of
// the relevant category to (e.g. "[hot line: matmul.cc:42 — 1.1e6
// uncoalesced-replay cycles]"), so the suggestion points at the line to fix.
std::vector<Advice> advise(const DeviceSpec& spec, const LaunchStats& stats,
                           const scope::KernelScope& scope);

// Potential issue-limited throughput from the instruction mix — the paper's
// "1/8 of operations are fused multiply-adds => 43.2 GFLOPS potential" (§4.1).
double potential_gflops(const DeviceSpec& spec, const TraceSummary& trace);

std::string format_advice(const std::vector<Advice>& advice);

}  // namespace g80
