// Host-CPU calibration.
//
// The paper's baseline is a single 2.2 GHz Opteron 248 core.  This machine's
// CPU is much faster, so raw host-vs-simulated-GPU ratios would understate
// every speedup.  We measure the host's sustained single-thread scalar
// floating-point rate with a dependency-free multiply-add loop and scale
// measured CPU times up to "Opteron seconds" by the ratio against the
// Opteron's sustained rate on the same loop.  EXPERIMENTS.md discusses the
// uncertainty this introduces (roughly a constant factor on all speedups —
// shapes and orderings are unaffected).
#pragma once

namespace g80 {

struct CpuCalibration {
  double host_gflops = 0;      // measured sustained scalar MAD rate
  double opteron_gflops = 0;   // assumed Opteron 248 sustained rate
  // Multiply a measured host time by this to estimate Opteron-248 time.
  double host_to_opteron() const { return host_gflops / opteron_gflops; }
};

// Measures the host (cached after the first call; deterministic workload).
const CpuCalibration& cpu_calibration();

// Scale a measured host duration to the paper's baseline CPU.
double to_opteron_seconds(double host_seconds);

}  // namespace g80
