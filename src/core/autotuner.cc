#include "core/autotuner.h"

#include "common/error.h"
#include "common/str.h"
#include "common/table.h"
#include "occupancy/occupancy.h"

namespace g80 {

void Autotuner::add(std::string name, std::function<LaunchStats()> run) {
  candidates_.push_back({std::move(name), std::move(run)});
}

TuneReport Autotuner::sweep() const {
  G80_CHECK_MSG(!candidates_.empty(), "autotuner has no candidates");
  TuneReport report;
  report.entries.reserve(candidates_.size());
  for (const auto& c : candidates_) {
    TuneEntry e;
    e.name = c.name;
    e.stats = c.run();
    e.seconds = e.stats.timing.seconds;
    e.gflops = e.stats.timing.gflops;
    report.entries.push_back(std::move(e));
  }
  for (std::size_t i = 1; i < report.entries.size(); ++i) {
    if (report.entries[i].seconds < report.entries[report.best_index].seconds)
      report.best_index = i;
  }
  return report;
}

std::string TuneReport::to_table(const DeviceSpec& spec) const {
  TextTable t({"configuration", "GFLOPS", "time (ms)", "blocks/SM", "warps/SM",
               "regs", "smem/blk", "limiter", "bottleneck"});
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    t.add_row({
        (i == best_index ? "* " : "  ") + e.name,
        fixed(e.gflops, 2),
        fixed(e.seconds * 1e3, 3),
        cat(e.stats.occupancy.blocks_per_sm),
        cat(e.stats.occupancy.active_warps_per_sm),
        cat(e.stats.regs_per_thread),
        cat(e.stats.smem_per_block),
        std::string(occupancy_limit_name(e.stats.occupancy.limiter)),
        std::string(bottleneck_name(e.stats.timing.bottleneck)),
    });
  }
  return t.to_string();
}

}  // namespace g80
