// Configuration autotuner.
//
// §6 of the paper: "Better tools ... that allow programmers to specify the
// types of reorganizations desired and automatically experiment with their
// performance effects would greatly reduce the optimization effort."  This
// is that tool for the simulated G80: callers register named configurations
// (tile size, unroll factor, prefetch on/off, ...), each a callable that
// performs a launch and returns its stats; the tuner sweeps them, ranks by
// predicted time, and renders a Figure-4-style report.  It also flags local
// maxima: configurations whose occupancy or bandwidth signature suggests a
// different strategy would beat small perturbations (§6's "stuck in local
// maximums" caveat).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cudalite/launch.h"

namespace g80 {

struct TuneCandidate {
  std::string name;
  std::function<LaunchStats()> run;
};

struct TuneEntry {
  std::string name;
  LaunchStats stats;
  double gflops = 0;
  double seconds = 0;
};

struct TuneReport {
  std::vector<TuneEntry> entries;  // in registration order
  std::size_t best_index = 0;

  const TuneEntry& best() const { return entries.at(best_index); }
  std::string to_table(const DeviceSpec& spec) const;
};

class Autotuner {
 public:
  void add(std::string name, std::function<LaunchStats()> run);
  // Runs every candidate; ranks by kernel seconds.
  TuneReport sweep() const;

 private:
  std::vector<TuneCandidate> candidates_;
};

}  // namespace g80
