#include "resil/resilience.h"

#include <chrono>
#include <memory>
#include <sstream>
#include <utility>

#include "sanitizer/sanitizer.h"  // classify_fault

namespace g80 {

Watchdog::Watchdog(CancelToken* token, double timeout_s, std::string what)
    : token_(token) {
  thread_ = std::thread([this, timeout_s, what = std::move(what)] {
    std::unique_lock<std::mutex> lk(mu_);
    const bool disarmed =
        cv_.wait_for(lk, std::chrono::duration<double>(timeout_s),
                     [&] { return disarmed_; });
    if (disarmed) return;
    std::ostringstream os;
    os << what << " exceeded its " << timeout_s << " s wall-clock budget";
    token_->request(Status::kTimeout, os.str());
  });
}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    disarmed_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

namespace {
// The calling thread's attempt observer; run_resilient executes attempts on
// the caller's thread, so thread-local scoping attributes every attempt to
// the request that thread is serving.
thread_local AttemptObserver* t_attempt_observer = nullptr;
}  // namespace

ScopedAttemptObserver::ScopedAttemptObserver(AttemptObserver* obs)
    : prev_(t_attempt_observer) {
  t_attempt_observer = obs;
}

ScopedAttemptObserver::~ScopedAttemptObserver() {
  t_attempt_observer = prev_;
}

void run_resilient(const ResiliencePolicy& policy, ResilienceStats& out,
                   const std::function<void(const AttemptConfig&)>& attempt) {
  AttemptObserver* obs = t_attempt_observer;
  if (!policy.enabled) {
    // The disabled path still reports its single attempt: a trace should
    // show one attempt whether or not the retry machinery is armed.
    if (obs != nullptr) obs->on_attempt_start(0, 0);
    try {
      attempt(AttemptConfig{});
    } catch (const StatusError& e) {
      if (obs != nullptr) obs->on_attempt_failure(0, e.status(), false);
      throw;
    } catch (const Error&) {
      if (obs != nullptr) {
        obs->on_attempt_failure(0, Status::kLaunchFailure, false);
      }
      throw;
    }
    if (obs != nullptr) obs->on_attempt_success(0, false);
    out.attempts = 1;
    return;
  }

  // Accumulate locally: the caller's attempt body may clear `out`'s parent
  // object at the start of every retry (launch() rebuilds LaunchStats), so
  // the history is published only once, on the way out.
  ResilienceStats st;
  int fallback = 0;
  double backoff = policy.backoff_initial_s;
  int inject_left = policy.inject_transient_failures;

  // Records a failed attempt; returns true when it should be retried (after
  // taking the backoff sleep and escalating the fallback level).
  const auto note_failure = [&](int a, Status s) -> bool {
    if (s == Status::kTimeout) st.timed_out = true;
    st.history.push_back({a, fallback, s, 0.0});
    if (classify_fault(s) != FaultClass::kTransient || a >= policy.max_retries) {
      if (obs != nullptr) obs->on_attempt_failure(a, s, false);
      st.attempts = a + 1;
      st.fallback_level = fallback;
      out = std::move(st);
      return false;
    }
    if (obs != nullptr) obs->on_attempt_failure(a, s, true);
    if (policy.allow_fallback && fallback < kMaxFallbackLevel) ++fallback;
    if (backoff > 0) {
      st.history.back().backoff_s = backoff;
      st.total_backoff_s += backoff;
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff *= policy.backoff_multiplier;
    }
    return true;
  };

  for (int a = 0;; ++a) {
    if (obs != nullptr) obs->on_attempt_start(a, fallback);
    CancelToken token;
    // Arm the wall-clock watchdog for this attempt only; the token is fresh
    // per attempt so an earlier timeout cannot poison the retry.
    std::unique_ptr<Watchdog> dog;
    if (policy.wall_timeout_s > 0) {
      dog = std::make_unique<Watchdog>(
          &token, policy.wall_timeout_s,
          "launch attempt " + std::to_string(a));
    }
    try {
      if (inject_left > 0) {
        --inject_left;
        throw StatusError(
            Status::kLaunchFailure,
            "injected transient fault "
            "(ResiliencePolicy::inject_transient_failures test hook)");
      }
      attempt(AttemptConfig{a, fallback, dog ? &token : nullptr});
      if (obs != nullptr) obs->on_attempt_success(a, a > 0);
      st.history.push_back({a, fallback, Status::kSuccess, 0.0});
      st.attempts = a + 1;
      st.fallback_level = fallback;
      st.recovered = a > 0;
      out = std::move(st);
      return;
    } catch (const StatusError& e) {
      if (!note_failure(a, e.status())) throw;
    } catch (const Error&) {
      // Unclassified simulator errors behave like kLaunchFailure: transient,
      // hence retryable; rethrown unchanged once the budget is exhausted.
      if (!note_failure(a, Status::kLaunchFailure)) throw;
    }
  }
}

}  // namespace g80
