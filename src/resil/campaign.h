// g80resil fault-campaign engine.
//
// A fault campaign answers the question the unit tests cannot: does the
// detect -> reset -> relaunch recovery story hold for *every* application in
// the paper's §5 suite, at every fault point we can inject?  For each
// application target the engine sweeps fault kind x thread x dynamic index
// x block over the g80check deterministic fault injectors and asserts the
// full recovery contract per case:
//
//   detect     the faulted launch throws StatusError and leaves a sticky
//              non-success Status on the Device;
//   recover    Device::reset() returns the device to a clean state (status
//              kSuccess, zero bytes allocated);
//   identical  a from-scratch relaunch on the reset device reproduces the
//              pre-fault output digest bit-for-bit.
//
// The global-store corruption fault (FaultInjection::corrupt_global_*) is
// applicable to all 13 applications — every kernel writes global output —
// while barrier-skip and shared-store corruption apply only to targets whose
// kernels use __syncthreads / __shared__.
//
// This header sits *above* the app layer (it needs whole-kernel launches),
// so it lives in its own CMake target (g80_campaign), keeping g80_resil
// itself below cudalite.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/error.h"
#include "cudalite/device.h"
#include "sanitizer/sanitizer.h"

namespace g80::resil {

// FNV-1a, the digest used for the bit-identical-relaunch assertion.
inline std::uint64_t fnv1a(const void* data, std::size_t bytes,
                           std::uint64_t h = 14695981039346656037ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

template <class T>
std::uint64_t fnv1a_vec(const std::vector<T>& v,
                        std::uint64_t h = 14695981039346656037ull) {
  static_assert(std::is_trivially_copyable_v<T>);
  return v.empty() ? h : fnv1a(v.data(), v.size() * sizeof(T), h);
}

// One application target.  `run` allocates fresh device buffers (so it works
// on a freshly reset device), launches the app's kernel once with the given
// sanitize options folded into its LaunchOptions, and returns an FNV digest
// of the kernel's global outputs.
struct CampaignTarget {
  std::string name;
  std::function<std::uint64_t(Device&, const SanitizerOptions&)> run;
  bool has_barrier = false;       // kernel calls __syncthreads
  bool has_shared_store = false;  // kernel writes __shared__
  // Threads guaranteed to perform at least `global_stores_per_thread`
  // global stores in every block (the sweep's thread dimension; e.g. H.264
  // only writes global output from thread 0 of each block).
  std::vector<int> global_tids = {0};
  int global_stores_per_thread = 1;
};

enum class FaultKind {
  kCorruptGlobalStore,  // OOB global store -> kInvalidAddress (all apps)
  kSkipBarrier,         // divergent __syncthreads -> kBarrierDivergence
  kCorruptSharedStore,  // cross-thread shared collision -> kSharedMemoryRace
};

const char* fault_kind_name(FaultKind k);

struct CaseResult {
  std::string target;
  FaultKind kind = FaultKind::kCorruptGlobalStore;
  int tid = 0;
  int index = 0;            // dynamic store / barrier index
  std::int64_t block = 0;   // -1 = every block
  Status status = Status::kSuccess;  // what the faulted launch raised
  bool detected = false;
  bool recovered = false;
  bool identical = false;

  bool passed() const { return detected && recovered && identical; }
};

struct CampaignConfig {
  // Smoke mode restricts the sweep to one point per applicable fault kind
  // per target (tid/index/block all 0) — the tier-1 / script-smoke setting.
  bool smoke = false;
};

struct CampaignReport {
  std::vector<CaseResult> cases;

  int total() const { return static_cast<int>(cases.size()); }
  int detected() const;
  int recovered() const;
  int identical() const;
  bool all_passed() const;
  // One line per failing case plus a totals line.
  std::string summary() const;
};

// The 13-application target table (small problem instances; the sanitize
// pass runs the full grid sequentially, so campaign inputs stay tiny).
std::vector<CampaignTarget> default_targets();

CampaignReport run_campaign(const std::vector<CampaignTarget>& targets,
                            const CampaignConfig& cfg = {});

}  // namespace g80::resil
