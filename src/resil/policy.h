// g80resil — per-launch resilience policy and recovery provenance.
//
// The real 8800 GTX runs under a host watchdog (the Windows/X display
// timeout the paper's long-running kernels had to dodge by splitting work
// across launches, §5.1), and production CUDA services wrap launches in
// retry/fallback logic because transient host conditions — an oversubscribed
// machine starving the block-scheduling pool, a wedged cooperative kernel —
// are recoverable by re-execution while programming-model violations are
// not.  ResiliencePolicy opts a launch into that machinery:
//
//   - a wall-clock watchdog cancels an attempt that exceeds its budget
//     (Status::kTimeout) at the executor's cancellation points;
//   - a modeled watchdog rejects launches whose *modeled* device time
//     exceeds a budget, reproducing the display-timeout constraint on the
//     simulated clock;
//   - transient failures (classify_fault) are retried up to `max_retries`
//     times with exponential backoff, degrading gracefully through fallback
//     levels (parallel pool -> sequential -> functional fast path);
//   - every attempt is recorded in ResilienceStats, which rides on
//     LaunchStats and flows into g80prof / g80scope provenance.
//
// The default-constructed policy is disabled and the launch path is then
// byte-for-byte the pre-resil seed behaviour.
#pragma once

#include <vector>

#include "common/error.h"

namespace g80 {

// Highest graceful-degradation level (see AttemptConfig::fallback_level):
// 0 = as requested, 1 = sequential blocks, 2 = sequential + the functional
// fast path (sanitize pass skipped, no trace sample beyond the one block the
// modeled watchdog needs if armed — LaunchOptions::fast_path semantics).
inline constexpr int kMaxFallbackLevel = 2;

struct ResiliencePolicy {
  // Master switch; false leaves the launch path exactly as before g80resil.
  bool enabled = false;
  // Wall-clock budget per attempt in seconds; a watchdog thread cancels the
  // attempt (Status::kTimeout) once exceeded.  0 disables the watchdog.
  double wall_timeout_s = 0;
  // Budget on the *modeled* device-side kernel time: a launch whose timing
  // model predicts more than this raises kTimeout before the sanitize and
  // functional passes run (the paper's display-watchdog constraint, §5.1).
  // 0 disables.  Deterministic — retries fail identically, so pair this
  // with max_retries = 0 unless the test wants to observe retry exhaustion.
  double modeled_timeout_s = 0;
  // Re-execution budget for transient failures; attempt count is
  // max_retries + 1.  0 = fail on the first error, resil-off style, but
  // still under the watchdog.
  int max_retries = 2;
  // Exponential backoff between attempts: the n-th retry sleeps
  // backoff_initial_s * backoff_multiplier^n.  0 initial = no sleeping
  // (tests use this to keep the suite fast).
  double backoff_initial_s = 1e-3;
  double backoff_multiplier = 2.0;
  // Escalate the fallback level by one on every retry (capped at
  // kMaxFallbackLevel), trading fidelity for survival; false retries the
  // identical configuration.
  bool allow_fallback = true;
  // Test hook: make this many leading attempts fail with a synthetic
  // transient kLaunchFailure before the body runs, so retry/backoff/fallback
  // paths are testable without real nondeterminism.
  int inject_transient_failures = 0;
};

// One row of the attempt history.
struct LaunchAttempt {
  int attempt = 0;         // 0-based
  int fallback_level = 0;  // degradation level this attempt ran at
  Status status = Status::kSuccess;
  double backoff_s = 0;  // sleep taken *after* this attempt failed
};

// Recovery provenance for one launch(), recorded on LaunchStats::resilience
// and surfaced through g80prof (KernelProfile) and g80scope (LaunchRecord).
struct ResilienceStats {
  int attempts = 0;        // total attempts executed (>= 1 once launched)
  int fallback_level = 0;  // level of the final (successful or last) attempt
  bool recovered = false;  // succeeded only after at least one retry
  bool timed_out = false;  // some attempt was cancelled by a watchdog
  double total_backoff_s = 0;
  std::vector<LaunchAttempt> history;  // empty when the policy is disabled

  int retries() const { return attempts > 0 ? attempts - 1 : 0; }
};

}  // namespace g80
