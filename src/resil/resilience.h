// g80resil execution machinery: the per-attempt watchdog and the
// retry/backoff/fallback driver that cudalite's launch() wraps around its
// passes.  This layer sits *below* cudalite (launch.h includes it), so it
// deliberately knows nothing about LaunchStats or Device — the launch body
// is an opaque callable and all communication happens through AttemptConfig
// and thrown StatusErrors.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/error.h"
#include "exec/cancel.h"
#include "resil/policy.h"

namespace g80 {

// What one attempt of a resilient launch needs to know about itself.
struct AttemptConfig {
  int attempt = 0;         // 0-based attempt number
  int fallback_level = 0;  // graceful-degradation level (see policy.h)
  // Cancellation token armed by the wall-clock watchdog; null when no
  // watchdog is running.  The launch threads it into every cancellation
  // point (WorkerPool::parallel_for, BlockRunner barrier scheduler).
  const CancelToken* cancel = nullptr;
};

// RAII wall-clock watchdog: arms a timer thread that fires
// `token->request(Status::kTimeout, ...)` once `timeout_s` elapses, and
// disarms (joining the thread) on destruction.  Firing is asynchronous and
// advisory — the watched work stops at its next cancellation point; a body
// with no such point (a single non-syncing kernel thread) is not
// preemptible, by design (see exec/cancel.h).
class Watchdog {
 public:
  Watchdog(CancelToken* token, double timeout_s, std::string what);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

 private:
  CancelToken* token_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::thread thread_;
};

// Observer of the retry driver's attempt lifecycle.  run_resilient runs on
// the calling thread, so an observer installed for the current thread (see
// ScopedAttemptObserver) sees exactly the attempts of the launch that thread
// is executing — which is how g80obs routes per-attempt events into the
// owning request's trace without this layer knowing anything about serving.
// Callbacks fire on the launching thread, inline with the retry loop; they
// must not throw.
class AttemptObserver {
 public:
  virtual ~AttemptObserver() = default;
  // Before the attempt body runs (attempt is 0-based; a start with
  // attempt > 0 is a retry).
  virtual void on_attempt_start(int attempt, int fallback_level) {}
  // After a failed attempt; `will_retry` says whether the driver is about
  // to run another attempt or rethrow.
  virtual void on_attempt_failure(int attempt, Status status,
                                  bool will_retry) {}
  // After the attempt that succeeded.
  virtual void on_attempt_success(int attempt, bool recovered) {}
};

// Installs `obs` as the calling thread's attempt observer for the scope's
// lifetime, restoring the previous observer (nesting-safe) on destruction.
// Null deactivates observation for the scope.
class ScopedAttemptObserver {
 public:
  explicit ScopedAttemptObserver(AttemptObserver* obs);
  ~ScopedAttemptObserver();
  ScopedAttemptObserver(const ScopedAttemptObserver&) = delete;
  ScopedAttemptObserver& operator=(const ScopedAttemptObserver&) = delete;

 private:
  AttemptObserver* prev_;
};

// Runs `attempt` under the policy: each attempt gets a fresh CancelToken
// (watchdog-armed when wall_timeout_s > 0); a thrown StatusError is
// classified (classify_fault) and transient failures are retried — with
// exponential backoff and, when allowed, an escalated fallback level — up
// to max_retries times.  Permanent failures and exhausted budgets rethrow
// the final attempt's exception.  `out` receives the full attempt history
// whether the launch ultimately succeeded or not.
//
// With `policy.enabled == false` the body runs exactly once, with no token,
// no watchdog, and no try/catch re-dispatch — the seed launch path.
void run_resilient(const ResiliencePolicy& policy, ResilienceStats& out,
                   const std::function<void(const AttemptConfig&)>& attempt);

}  // namespace g80
