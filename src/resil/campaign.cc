#include "resil/campaign.h"

#include <sstream>
#include <utility>

#include "apps/cp/cp.h"
#include "apps/fdtd/fdtd.h"
#include "apps/fem/fem.h"
#include "apps/h264/h264.h"
#include "apps/lbm/lbm.h"
#include "apps/matmul/matmul.h"
#include "apps/mri/mri_fhd.h"
#include "apps/mri/mri_q.h"
#include "apps/pns/pns.h"
#include "apps/rc5/rc5.h"
#include "apps/rpes/rpes.h"
#include "apps/saxpy/saxpy.h"
#include "apps/tpacf/tpacf.h"
#include "cudalite/launch.h"

namespace g80::resil {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kCorruptGlobalStore:
      return "corrupt-global-store";
    case FaultKind::kSkipBarrier:
      return "skip-barrier";
    case FaultKind::kCorruptSharedStore:
      return "corrupt-shared-store";
  }
  return "unknown";
}

namespace {

using namespace apps;

LaunchOptions make_opt(const SanitizerOptions& san, bool uses_sync) {
  LaunchOptions opt;
  opt.sanitize = san;
  opt.uses_sync = uses_sync;
  return opt;
}

CampaignTarget saxpy_target() {
  CampaignTarget t;
  t.name = "saxpy";
  t.global_tids = {0, 1, 63};
  auto w = SaxpyWorkload::generate(256, 11);
  t.run = [w](Device& dev, const SanitizerOptions& san) {
    auto x = dev.alloc<float>(w.x.size());
    auto y = dev.alloc<float>(w.y.size());
    auto out = dev.alloc<float>(w.x.size());
    x.copy_from_host(w.x);
    y.copy_from_host(w.y);
    launch(dev, Dim3(4), Dim3(64), make_opt(san, false),
           SaxpyKernel{w.a, 256}, x, y, out);
    return fnv1a_vec(out.copy_to_host());
  };
  return t;
}

CampaignTarget matmul_target() {
  CampaignTarget t;
  t.name = "matmul-tiled";
  t.has_barrier = true;
  t.has_shared_store = true;
  t.global_tids = {0, 1, 33};
  auto w = MatmulWorkload::generate(32, 12);
  t.run = [w](Device& dev, const SanitizerOptions& san) {
    const std::size_t n2 = static_cast<std::size_t>(w.n) * w.n;
    auto a = dev.alloc<float>(n2);
    auto b = dev.alloc<float>(n2);
    auto c = dev.alloc<float>(n2);
    a.copy_from_host(w.a);
    b.copy_from_host(w.b);
    launch(dev, Dim3(2, 2), Dim3(16, 16), make_opt(san, true),
           MatmulTiledKernel{w.n, 16, true, false}, a, b, c);
    return fnv1a_vec(c.copy_to_host());
  };
  return t;
}

CampaignTarget cp_target() {
  CampaignTarget t;
  t.name = "cp";
  t.global_tids = {0, 1, 33};
  auto w = CpWorkload::generate(32, 32, 13);
  t.run = [w](Device& dev, const SanitizerOptions& san) {
    auto atoms = dev.alloc_constant<Float4>(w.atoms.size());
    atoms.copy_from_host(w.atoms);
    auto out = dev.alloc<float>(static_cast<std::size_t>(w.grid_dim) *
                                w.grid_dim);
    launch(dev, Dim3(2, 2), Dim3(16, 16), make_opt(san, false),
           CpKernel{w.grid_dim, w.spacing, w.slice_z}, atoms, out);
    return fnv1a_vec(out.copy_to_host());
  };
  return t;
}

CampaignTarget fem_target() {
  CampaignTarget t;
  t.name = "fem";
  t.global_tids = {0, 1, 63};
  auto m = FemMesh::generate(128, 8, 7);
  std::vector<int> cols;
  std::vector<float> vals;
  m.to_ell(cols, vals);
  t.run = [m, cols, vals](Device& dev, const SanitizerOptions& san) {
    auto d_cols = dev.alloc<int>(cols.size());
    auto d_vals = dev.alloc<float>(vals.size());
    auto d_diag = dev.alloc<float>(m.diag.size());
    auto d_rhs = dev.alloc<float>(m.rhs.size());
    auto d_xin = dev.alloc<float>(m.rhs.size());
    auto d_xout = dev.alloc<float>(m.rhs.size());
    d_cols.copy_from_host(cols);
    d_vals.copy_from_host(vals);
    d_diag.copy_from_host(m.diag);
    d_rhs.copy_from_host(m.rhs);
    d_xin.copy_from_host(m.rhs);  // initial guess x = b
    launch(dev, Dim3(2), Dim3(64), make_opt(san, false),
           FemKernel{m.nodes, m.ell_width()}, d_cols, d_vals, d_diag, d_rhs,
           d_xin, d_xout);
    return fnv1a_vec(d_xout.copy_to_host());
  };
  return t;
}

CampaignTarget tpacf_target() {
  CampaignTarget t;
  t.name = "tpacf";
  t.has_barrier = true;
  t.has_shared_store = true;
  // Global output is written only by the reduction threads (tid < kTpacfBins).
  t.global_tids = {0, kTpacfBins - 1};
  auto w = TpacfWorkload::generate(128, 17);
  t.run = [w](Device& dev, const SanitizerOptions& san) {
    const int num_points = static_cast<int>(w.x.size());
    const unsigned blocks =
        static_cast<unsigned>((num_points + kTpacfBlockThreads - 1) /
                              kTpacfBlockThreads);
    auto x = dev.alloc<float>(w.x.size());
    auto y = dev.alloc<float>(w.y.size());
    auto z = dev.alloc<float>(w.z.size());
    x.copy_from_host(w.x);
    y.copy_from_host(w.y);
    z.copy_from_host(w.z);
    auto edges = dev.alloc_constant<float>(w.bin_edges.size());
    edges.copy_from_host(w.bin_edges);
    auto hist = dev.alloc<unsigned>(static_cast<std::size_t>(blocks) *
                                    kTpacfBins);
    launch(dev, Dim3(blocks), Dim3(kTpacfBlockThreads), make_opt(san, true),
           TpacfKernel{num_points, TpacfHistLayout::kBinMajor}, x, y, z,
           edges, hist);
    return fnv1a_vec(hist.copy_to_host());
  };
  return t;
}

CampaignTarget fdtd_target() {
  CampaignTarget t;
  t.name = "fdtd";
  t.global_tids = {0, 1, 15};
  t.global_stores_per_thread = 3;  // HxO, HyO, HzO on both branch paths
  FdtdParams p;
  p.nx = 16;
  p.ny = 4;
  p.nz = 4;
  t.run = [p](Device& dev, const SanitizerOptions& san) {
    const std::size_t cells = p.cells();
    std::vector<float> init(cells);
    for (std::size_t i = 0; i < cells; ++i)
      init[i] = 0.25f * static_cast<float>(i % 7) - 0.5f;
    auto mk = [&](float scale) {
      auto b = dev.alloc<float>(cells);
      std::vector<float> v(init);
      for (auto& e : v) e *= scale;
      b.copy_from_host(v);
      return b;
    };
    auto ex = mk(1.0f), ey = mk(0.5f), ez = mk(0.25f);
    auto hx = mk(-1.0f), hy = mk(-0.5f), hz = mk(-0.25f);
    auto hxo = dev.alloc<float>(cells);
    auto hyo = dev.alloc<float>(cells);
    auto hzo = dev.alloc<float>(cells);
    launch(dev, Dim3(1, static_cast<unsigned>(p.ny * p.nz)), Dim3(16),
           make_opt(san, false), FdtdHKernel{p}, ex, ey, ez, hx, hy, hz, hxo,
           hyo, hzo);
    std::uint64_t h = fnv1a_vec(hxo.copy_to_host());
    h = fnv1a_vec(hyo.copy_to_host(), h);
    return fnv1a_vec(hzo.copy_to_host(), h);
  };
  return t;
}

CampaignTarget pns_target() {
  CampaignTarget t;
  t.name = "pns";
  t.global_tids = {0, 1, 63};
  t.global_stores_per_thread = 2;  // marking-slice init stores come first
  auto net = PnsNet::generate(4);
  t.run = [net](Device& dev, const SanitizerOptions& san) {
    const int num_sims = 64, steps = 32;
    auto d_init = dev.alloc<std::int32_t>(net.initial_marking.size());
    d_init.copy_from_host(net.initial_marking);
    auto d_in_g = dev.alloc<std::int32_t>(net.in.size());
    auto d_out_g = dev.alloc<std::int32_t>(net.out.size());
    d_in_g.copy_from_host(net.in);
    d_out_g.copy_from_host(net.out);
    auto d_in_t = dev.alloc_texture<std::int32_t>(net.in.size());
    auto d_out_t = dev.alloc_texture<std::int32_t>(net.out.size());
    d_in_t.copy_from_host(net.in);
    d_out_t.copy_from_host(net.out);
    auto d_marking = dev.alloc<std::int32_t>(
        static_cast<std::size_t>(kPnsPlaces) * num_sims);
    auto d_fired = dev.alloc<std::int32_t>(num_sims);
    PnsKernel k;
    k.num_sims = num_sims;
    k.steps = steps;
    k.rng_seed = net.rng_seed;
    k.table_space = PnsTableSpace::kTexture;
    launch(dev, Dim3(1), Dim3(64), make_opt(san, false), k, d_init, d_in_g,
           d_out_g, d_in_t, d_out_t, d_marking, d_fired);
    std::uint64_t h = fnv1a_vec(d_marking.copy_to_host());
    return fnv1a_vec(d_fired.copy_to_host(), h);
  };
  return t;
}

CampaignTarget rc5_target() {
  CampaignTarget t;
  t.name = "rc5";
  t.global_tids = {0, 1, 63};
  t.global_stores_per_thread = 2;  // per-key partial-match flag stores
  auto w = Rc5Workload::generate(256, 9);
  t.run = [w](Device& dev, const SanitizerOptions& san) {
    auto found = dev.alloc<std::uint32_t>(1);
    const std::vector<std::uint32_t> none{w.num_keys};
    found.copy_from_host(none);
    auto partial = dev.alloc<std::uint8_t>(w.num_keys);
    Rc5Kernel k;
    k.w = w;
    k.keys_per_thread = 4;
    LaunchOptions opt = make_opt(san, false);
    opt.regs_per_thread = 42;
    launch(dev, Dim3(1), Dim3(64), opt, k, found, partial);
    std::uint64_t h = fnv1a_vec(found.copy_to_host());
    return fnv1a_vec(partial.copy_to_host(), h);
  };
  return t;
}

CampaignTarget rpes_target() {
  CampaignTarget t;
  t.name = "rpes";
  t.global_tids = {0, 1, 33};
  auto w = RpesWorkload::generate(32, 21);
  t.run = [w](Device& dev, const SanitizerOptions& san) {
    const int n = w.n();
    auto px = dev.alloc<float>(w.px.size());
    auto py = dev.alloc<float>(w.py.size());
    auto pz = dev.alloc<float>(w.pz.size());
    auto eta = dev.alloc<float>(w.eta.size());
    auto coef = dev.alloc<float>(w.coef.size());
    px.copy_from_host(w.px);
    py.copy_from_host(w.py);
    pz.copy_from_host(w.pz);
    eta.copy_from_host(w.eta);
    coef.copy_from_host(w.coef);
    auto quad = dev.alloc_constant<Float2>(w.quad.size());
    auto contr = dev.alloc_constant<Float2>(w.contraction.size());
    quad.copy_from_host(w.quad);
    contr.copy_from_host(w.contraction);
    auto out = dev.alloc<float>(static_cast<std::size_t>(n) * n);
    launch(dev, Dim3(2, 2), Dim3(16, 16), make_opt(san, false), RpesKernel{n},
           px, py, pz, eta, coef, quad, contr, out);
    return fnv1a_vec(out.copy_to_host());
  };
  return t;
}

CampaignTarget h264_target() {
  CampaignTarget t;
  t.name = "h264";
  t.has_barrier = true;
  t.has_shared_store = true;
  // The motion-estimation kernel's only global stores are thread 0's
  // post-reduction writes of the winning (SAD, candidate) pair.
  t.global_tids = {0};
  t.global_stores_per_thread = 2;
  auto w = H264Workload::generate(32, 32, 23);
  t.run = [w](Device& dev, const SanitizerOptions& san) {
    auto cur = dev.alloc<std::int32_t>(w.cur.size());
    auto ref = dev.alloc<std::int32_t>(w.ref.size());
    cur.copy_from_host(w.cur);
    ref.copy_from_host(w.ref);
    auto sad = dev.alloc<std::int32_t>(w.num_mbs());
    auto cand = dev.alloc<std::int32_t>(w.num_mbs());
    launch(dev, Dim3(static_cast<unsigned>(w.mbs_x()),
                     static_cast<unsigned>(w.mbs_y())),
           Dim3(kCandidates), make_opt(san, true),
           H264MeKernel{w.width, w.height, true}, cur, ref, sad, cand);
    std::uint64_t h = fnv1a_vec(sad.copy_to_host());
    return fnv1a_vec(cand.copy_to_host(), h);
  };
  return t;
}

CampaignTarget mri_q_target() {
  CampaignTarget t;
  t.name = "mri-q";
  t.global_tids = {0, 1, 63};
  t.global_stores_per_thread = 2;  // Qr, Qi
  auto w = MriWorkload::generate(128, 32, 31);
  t.run = [w](Device& dev, const SanitizerOptions& san) {
    const int nv = static_cast<int>(w.x.size());
    auto x = dev.alloc<float>(w.x.size());
    auto y = dev.alloc<float>(w.y.size());
    auto z = dev.alloc<float>(w.z.size());
    x.copy_from_host(w.x);
    y.copy_from_host(w.y);
    z.copy_from_host(w.z);
    auto k = dev.alloc_constant<Float4>(w.samples.size());
    k.copy_from_host(w.samples);
    auto qr = dev.alloc<float>(w.x.size());
    auto qi = dev.alloc<float>(w.x.size());
    launch(dev, Dim3(2), Dim3(64), make_opt(san, false), MriQKernel{nv, true},
           x, y, z, k, qr, qi);
    std::uint64_t h = fnv1a_vec(qr.copy_to_host());
    return fnv1a_vec(qi.copy_to_host(), h);
  };
  return t;
}

CampaignTarget mri_fhd_target() {
  CampaignTarget t;
  t.name = "mri-fhd";
  t.global_tids = {0, 1, 63};
  t.global_stores_per_thread = 2;  // Fr, Fi
  auto w = MriWorkload::generate(128, 32, 33);
  t.run = [w](Device& dev, const SanitizerOptions& san) {
    const int nv = static_cast<int>(w.x.size());
    auto x = dev.alloc<float>(w.x.size());
    auto y = dev.alloc<float>(w.y.size());
    auto z = dev.alloc<float>(w.z.size());
    x.copy_from_host(w.x);
    y.copy_from_host(w.y);
    z.copy_from_host(w.z);
    auto k = dev.alloc_constant<Float4>(w.samples.size());
    k.copy_from_host(w.samples);
    auto rho = dev.alloc_constant<Float2>(w.rho.size());
    rho.copy_from_host(w.rho);
    auto fr = dev.alloc<float>(w.x.size());
    auto fi = dev.alloc<float>(w.x.size());
    launch(dev, Dim3(2), Dim3(64), make_opt(san, false), MriFhdKernel{nv}, x,
           y, z, k, rho, fr, fi);
    std::uint64_t h = fnv1a_vec(fr.copy_to_host());
    return fnv1a_vec(fi.copy_to_host(), h);
  };
  return t;
}

CampaignTarget lbm_target() {
  CampaignTarget t;
  t.name = "lbm";
  t.has_barrier = true;       // kSoAStaged's staging barrier
  t.has_shared_store = true;
  t.global_tids = {0, 1, 15};
  t.global_stores_per_thread = 2;  // 19 distribution stores per thread
  LbmParams p;
  p.nx = 16;
  p.ny = 4;
  p.nz = 4;
  auto w = LbmWorkload::generate(p);
  t.run = [p, w](Device& dev, const SanitizerOptions& san) {
    auto src = dev.alloc<float>(w.f0.size());
    auto dst = dev.alloc<float>(w.f0.size());
    src.copy_from_host(w.f0);
    LaunchOptions opt = make_opt(san, true);
    opt.regs_per_thread = 32;
    launch(dev, Dim3(1, static_cast<unsigned>(p.ny * p.nz)), Dim3(16), opt,
           LbmKernel{p, LbmLayout::kSoAStaged}, src, dst);
    return fnv1a_vec(dst.copy_to_host());
  };
  return t;
}

// Runs one fault case end to end: clean digest, faulted launch (expected to
// throw with a sticky device Status), reset, clean relaunch, digest compare.
CaseResult run_case(const CampaignTarget& t, FaultKind kind, int tid,
                    int index, std::int64_t block) {
  CaseResult r;
  r.target = t.name;
  r.kind = kind;
  r.tid = tid;
  r.index = index;
  r.block = block;

  Device dev;
  const std::uint64_t clean = t.run(dev, SanitizerOptions{});

  SanitizerOptions faulted;
  faulted.enabled = true;
  faulted.abort_on_error = true;
  faulted.fault.block = block;
  switch (kind) {
    case FaultKind::kCorruptGlobalStore:
      faulted.fault.corrupt_global_tid = tid;
      faulted.fault.corrupt_global_index = index;
      break;
    case FaultKind::kSkipBarrier:
      faulted.fault.skip_barrier_tid = tid;
      faulted.fault.skip_barrier_index = index;
      break;
    case FaultKind::kCorruptSharedStore:
      faulted.fault.corrupt_store_tid = tid;
      faulted.fault.corrupt_store_index = index;
      break;
  }

  bool threw = false;
  try {
    t.run(dev, faulted);
  } catch (const StatusError& e) {
    threw = true;
    r.status = e.status();
  } catch (const Error&) {
    threw = true;
    r.status = Status::kLaunchFailure;
  }
  r.detected = threw && dev.peek_last_error() != Status::kSuccess;

  dev.reset();
  r.recovered = dev.peek_last_error() == Status::kSuccess &&
                dev.bytes_allocated() == 0;

  const std::uint64_t again = t.run(dev, SanitizerOptions{});
  r.identical = again == clean;
  return r;
}

}  // namespace

int CampaignReport::detected() const {
  int n = 0;
  for (const auto& c : cases) n += c.detected ? 1 : 0;
  return n;
}

int CampaignReport::recovered() const {
  int n = 0;
  for (const auto& c : cases) n += c.recovered ? 1 : 0;
  return n;
}

int CampaignReport::identical() const {
  int n = 0;
  for (const auto& c : cases) n += c.identical ? 1 : 0;
  return n;
}

bool CampaignReport::all_passed() const {
  for (const auto& c : cases)
    if (!c.passed()) return false;
  return !cases.empty();
}

std::string CampaignReport::summary() const {
  std::ostringstream os;
  for (const auto& c : cases) {
    if (c.passed()) continue;
    os << "FAIL " << c.target << " " << fault_kind_name(c.kind) << " tid="
       << c.tid << " index=" << c.index << " block=" << c.block
       << " detected=" << c.detected << " (raised " << status_name(c.status)
       << ") recovered=" << c.recovered << " identical=" << c.identical
       << "\n";
  }
  os << "campaign: " << total() << " cases, " << detected() << " detected, "
     << recovered() << " recovered, " << identical()
     << " bit-identical relaunches";
  return os.str();
}

std::vector<CampaignTarget> default_targets() {
  std::vector<CampaignTarget> t;
  t.push_back(saxpy_target());
  t.push_back(matmul_target());
  t.push_back(cp_target());
  t.push_back(fem_target());
  t.push_back(tpacf_target());
  t.push_back(fdtd_target());
  t.push_back(pns_target());
  t.push_back(rc5_target());
  t.push_back(rpes_target());
  t.push_back(h264_target());
  t.push_back(mri_q_target());
  t.push_back(mri_fhd_target());
  t.push_back(lbm_target());
  return t;
}

CampaignReport run_campaign(const std::vector<CampaignTarget>& targets,
                            const CampaignConfig& cfg) {
  CampaignReport report;
  const std::vector<std::int64_t> all_blocks = cfg.smoke
                                                   ? std::vector<std::int64_t>{0}
                                                   : std::vector<std::int64_t>{0, -1};
  for (const auto& t : targets) {
    // Global-store corruption: applicable to every application.
    const std::vector<int> tids =
        cfg.smoke ? std::vector<int>{t.global_tids.front()} : t.global_tids;
    const int stores = cfg.smoke ? 1 : t.global_stores_per_thread;
    for (int tid : tids) {
      for (int index = 0; index < stores; ++index) {
        for (std::int64_t block : all_blocks) {
          report.cases.push_back(run_case(
              t, FaultKind::kCorruptGlobalStore, tid, index, block));
        }
      }
    }
    // Barrier skip: any thread of a barrier kernel (the release snapshot
    // catches both run-ahead and exited-while-waiting divergence).
    if (t.has_barrier) {
      const std::vector<int> btids = cfg.smoke ? std::vector<int>{0}
                                               : std::vector<int>{0, 1};
      for (int tid : btids) {
        for (std::int64_t block : all_blocks) {
          report.cases.push_back(
              run_case(t, FaultKind::kSkipBarrier, tid, 0, block));
        }
      }
    }
    // Shared-store corruption: thread 0's first shared store redirected one
    // word up, colliding with thread 1's same-epoch slot in these kernels.
    if (t.has_shared_store) {
      for (std::int64_t block : all_blocks) {
        report.cases.push_back(
            run_case(t, FaultKind::kCorruptSharedStore, 0, 0, block));
        if (cfg.smoke) break;
      }
    }
  }
  return report;
}

}  // namespace g80::resil
