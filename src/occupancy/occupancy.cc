#include "occupancy/occupancy.h"

#include <algorithm>

#include "common/error.h"

namespace g80 {

std::string_view occupancy_limit_name(OccupancyLimit l) {
  switch (l) {
    case OccupancyLimit::kThreads: return "threads/SM";
    case OccupancyLimit::kBlocks: return "blocks/SM";
    case OccupancyLimit::kRegisters: return "registers";
    case OccupancyLimit::kSharedMem: return "shared memory";
    case OccupancyLimit::kBlockTooBig: return "block exceeds hardware limit";
  }
  G80_CHECK(false);
}

double Occupancy::fraction(const DeviceSpec& spec) const {
  return static_cast<double>(active_threads_per_sm) / spec.max_threads_per_sm;
}

int Occupancy::max_simultaneous_threads(const DeviceSpec& spec) const {
  return active_threads_per_sm * spec.num_sms;
}

Occupancy compute_occupancy(const DeviceSpec& spec, const KernelResources& res) {
  G80_CHECK_MSG(res.threads_per_block > 0, "empty thread block");
  G80_CHECK_MSG(res.regs_per_thread >= 0, "negative register count");

  if (res.threads_per_block > spec.max_threads_per_block ||
      res.smem_per_block > spec.shared_mem_per_sm ||
      static_cast<long long>(res.regs_per_thread) * res.threads_per_block >
          spec.registers_per_sm) {
    throw Error("kernel configuration cannot run: a single block exceeds a "
                "per-SM hardware limit");
  }

  // Candidate block counts under each independent constraint.  Thread
  // contexts are allocated in whole warps, so a 144-thread block (12x12
  // tiles) consumes 5 warps of the 24 available (§4.2: "144 threads, which
  // is also not an integral number of warps").
  const int warps_per_block =
      (res.threads_per_block + spec.warp_size - 1) / spec.warp_size;
  const int by_threads = spec.max_warps_per_sm() / warps_per_block;
  const int by_blocks = spec.max_blocks_per_sm;

  // Registers are allocated to a block in units of `register_alloc_unit`.
  const long long regs_per_block_raw =
      static_cast<long long>(res.regs_per_thread) * res.threads_per_block;
  const long long unit = spec.register_alloc_unit;
  const long long regs_per_block =
      regs_per_block_raw == 0 ? 0 : ((regs_per_block_raw + unit - 1) / unit) * unit;
  const int by_regs = regs_per_block == 0
                          ? spec.max_blocks_per_sm
                          : static_cast<int>(spec.registers_per_sm / regs_per_block);

  const int by_smem =
      res.smem_per_block == 0
          ? spec.max_blocks_per_sm
          : static_cast<int>(spec.shared_mem_per_sm / res.smem_per_block);

  Occupancy occ;
  occ.blocks_per_sm = std::min({by_threads, by_blocks, by_regs, by_smem});
  G80_CHECK(occ.blocks_per_sm >= 1);

  // Report the binding constraint; ties resolve in this priority order,
  // matching how the paper narrates limits (threads, then blocks, then
  // registers, then shared memory).
  if (occ.blocks_per_sm == by_threads) occ.limiter = OccupancyLimit::kThreads;
  if (occ.blocks_per_sm == by_blocks && by_blocks < by_threads)
    occ.limiter = OccupancyLimit::kBlocks;
  if (occ.blocks_per_sm == by_regs && by_regs < std::min(by_threads, by_blocks))
    occ.limiter = OccupancyLimit::kRegisters;
  if (occ.blocks_per_sm == by_smem &&
      by_smem < std::min({by_threads, by_blocks, by_regs}))
    occ.limiter = OccupancyLimit::kSharedMem;

  occ.active_threads_per_sm = occ.blocks_per_sm * res.threads_per_block;
  // Warps are allocated whole; a 144-thread block (12x12 tiles, §4.2)
  // occupies ceil(144/32) = 5 warps worth of scheduler slots.
  occ.active_warps_per_sm =
      occ.blocks_per_sm *
      ((res.threads_per_block + spec.warp_size - 1) / spec.warp_size);
  return occ;
}

}  // namespace g80
