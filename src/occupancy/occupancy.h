// Occupancy calculator: the paper's principle 2 ("striking the right balance
// between each thread's resource usage and the number of simultaneously
// active threads") made executable.
//
// Given a kernel's per-thread register count, per-block shared memory and
// block size, computes how many blocks are simultaneously resident per SM and
// which resource is the binding constraint.  Reproduces the interactions the
// paper walks through: 10 regs x 256 thr -> 3 blocks (768 threads, the max);
// 11 regs x 256 thr -> register limit -> 2 blocks (§4.2, §4.4).
#pragma once

#include <cstddef>
#include <string_view>

#include "hw/device_spec.h"

namespace g80 {

struct KernelResources {
  int regs_per_thread = 10;
  std::size_t smem_per_block = 0;  // bytes of software-managed shared memory
  int threads_per_block = 256;
};

enum class OccupancyLimit {
  kThreads,     // hit the 768-thread/SM context limit
  kBlocks,      // hit the 8-block/SM limit
  kRegisters,   // register file exhausted
  kSharedMem,   // 16KB shared memory exhausted
  kBlockTooBig, // single block exceeds a per-block hardware limit
};

std::string_view occupancy_limit_name(OccupancyLimit l);

struct Occupancy {
  int blocks_per_sm = 0;
  int active_threads_per_sm = 0;
  int active_warps_per_sm = 0;
  OccupancyLimit limiter = OccupancyLimit::kThreads;

  // Fraction of the SM's maximum thread contexts in use (the CUDA
  // occupancy-calculator definition).
  double fraction(const DeviceSpec& spec) const;
  // Device-wide simultaneously active threads (Table 3, column 2).
  int max_simultaneous_threads(const DeviceSpec& spec) const;
};

// Throws g80::Error if the configuration can never run (e.g. a single block
// needs more shared memory than an SM has).
Occupancy compute_occupancy(const DeviceSpec& spec, const KernelResources& res);

}  // namespace g80
