#include "serve/protocol.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/str.h"

namespace g80::serve {

std::string_view op_name(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kHello: return "hello";
    case Op::kLaunch: return "launch";
    case Op::kAutotune: return "autotune";
    case Op::kProfile: return "profile";
    case Op::kStats: return "stats";
    case Op::kMetrics: return "metrics";
    case Op::kTraces: return "traces";
    case Op::kShutdown: return "shutdown";
  }
  return "unknown";
}

Op op_from_name(std::string_view name) {
  if (name == "ping") return Op::kPing;
  if (name == "hello") return Op::kHello;
  if (name == "launch") return Op::kLaunch;
  if (name == "autotune") return Op::kAutotune;
  if (name == "profile") return Op::kProfile;
  if (name == "stats") return Op::kStats;
  if (name == "metrics") return Op::kMetrics;
  if (name == "traces") return Op::kTraces;
  if (name == "shutdown") return Op::kShutdown;
  throw StatusError(Status::kInvalidValue, cat("unknown op \"", name, "\""));
}

std::string_view status_token(Status s) {
  switch (s) {
    case Status::kSuccess: return "ok";
    case Status::kInvalidValue: return "invalid_value";
    case Status::kMemoryAllocation: return "out_of_memory";
    case Status::kInvalidConfiguration: return "invalid_configuration";
    case Status::kLaunchOutOfResources: return "launch_out_of_resources";
    case Status::kConstantSpaceExceeded: return "constant_space_exceeded";
    case Status::kInvalidAddress: return "invalid_address";
    case Status::kBarrierDivergence: return "barrier_divergence";
    case Status::kSharedMemoryRace: return "shared_memory_race";
    case Status::kLaunchFailure: return "launch_failure";
    case Status::kInvalidResourceHandle: return "invalid_resource_handle";
    case Status::kInvalidDevice: return "invalid_device";
    case Status::kNotReady: return "not_ready";
    case Status::kNotPermitted: return "not_permitted";
    case Status::kTimeout: return "timeout";
    case Status::kRecovered: return "recovered";
  }
  return "unknown";
}

Status status_from_token(std::string_view token) {
  for (const Status s :
       {Status::kSuccess, Status::kInvalidValue, Status::kMemoryAllocation,
        Status::kInvalidConfiguration, Status::kLaunchOutOfResources,
        Status::kConstantSpaceExceeded, Status::kInvalidAddress,
        Status::kBarrierDivergence, Status::kSharedMemoryRace,
        Status::kLaunchFailure, Status::kInvalidResourceHandle,
        Status::kInvalidDevice, Status::kNotReady, Status::kNotPermitted,
        Status::kTimeout, Status::kRecovered}) {
    if (token == status_token(s)) return s;
  }
  throw StatusError(Status::kInvalidValue,
                    cat("unknown status token \"", token, "\""));
}

void ConfigOverrides::apply(LaunchConfig& c) const {
  if (grid_x) c.grid_x = *grid_x;
  if (grid_y) c.grid_y = *grid_y;
  if (block_x) c.block_x = *block_x;
  if (block_y) c.block_y = *block_y;
  if (block_z) c.block_z = *block_z;
  if (regs_per_thread) c.regs_per_thread = *regs_per_thread;
  if (sample_blocks) c.sample_blocks = *sample_blocks;
  if (functional) c.functional = *functional;
}

namespace {

std::int64_t require_int(const JsonValue& doc, std::string_view key,
                         std::int64_t lo, std::int64_t hi,
                         std::int64_t fallback) {
  const JsonValue* v = doc.get(key);
  if (v == nullptr) return fallback;
  std::int64_t x = 0;
  try {
    x = v->as_int();
  } catch (const Error& e) {
    throw StatusError(Status::kInvalidValue,
                      cat("field \"", key, "\": ", e.what()));
  }
  if (x < lo || x > hi) {
    throw StatusError(Status::kInvalidValue,
                      cat("field \"", key, "\" = ", x, " out of range [", lo,
                          ", ", hi, "]"));
  }
  return x;
}

std::optional<std::uint32_t> opt_u32(const JsonValue& doc,
                                     std::string_view key) {
  if (doc.get(key) == nullptr) return std::nullopt;
  return static_cast<std::uint32_t>(require_int(doc, key, 1, 1u << 20, 1));
}

}  // namespace

JobRequest parse_request(const JsonValue& doc) {
  if (!doc.is_object()) {
    throw StatusError(Status::kInvalidValue, "request must be a JSON object");
  }
  JobRequest req;
  req.op = op_from_name(doc.require("op").as_string());
  req.id = require_int(doc, "id", 0, INT64_MAX, 0);
  req.client_name = doc.get_string("client", "");

  if (req.op != Op::kLaunch && req.op != Op::kAutotune &&
      req.op != Op::kProfile) {
    return req;
  }

  req.kernel = doc.require("kernel").as_string();
  if (req.kernel != "saxpy" && req.kernel != "matmul") {
    throw StatusError(Status::kInvalidValue,
                      cat("unknown kernel \"", req.kernel, "\""));
  }
  req.device_class = doc.get_string("device_class", "gtx");
  if (req.device_class != "gtx" && req.device_class != "ultra" &&
      req.device_class != "gts") {
    throw StatusError(Status::kInvalidValue,
                      cat("unknown device_class \"", req.device_class, "\""));
  }
  req.n = require_int(doc, "n", 1, 1 << 24, 0);
  if (req.n == 0) {
    throw StatusError(Status::kInvalidValue, "job needs a positive \"n\"");
  }
  req.seed = require_int(doc, "seed", 0, INT64_MAX, 1);
  req.tile = require_int(doc, "tile", 2, 64, 16);
  req.variant = doc.get_string("variant", "tiled");
  req.no_cache = doc.get_bool("no_cache", false);

  if (const JsonValue* c = doc.get("config")) {
    if (!c->is_object()) {
      throw StatusError(Status::kInvalidValue, "\"config\" must be an object");
    }
    req.config.grid_x = opt_u32(*c, "grid_x");
    req.config.grid_y = opt_u32(*c, "grid_y");
    req.config.block_x = opt_u32(*c, "block_x");
    req.config.block_y = opt_u32(*c, "block_y");
    req.config.block_z = opt_u32(*c, "block_z");
    if (c->get("regs_per_thread") != nullptr) {
      req.config.regs_per_thread =
          static_cast<int>(require_int(*c, "regs_per_thread", 1, 256, 10));
    }
    if (c->get("sample_blocks") != nullptr) {
      // 0 is a valid request: "no modeled timing" — the scheduler fills
      // such jobs through the functional fast path (kernels.cc).
      req.config.sample_blocks =
          static_cast<int>(require_int(*c, "sample_blocks", 0, 1024, 4));
    }
    if (const JsonValue* f = c->get("functional")) {
      req.config.functional = f->as_bool();
    }
  }

  if (const JsonValue* f = doc.get("fault")) {
    if (!f->is_object()) {
      throw StatusError(Status::kInvalidValue, "\"fault\" must be an object");
    }
    req.fault.kind = f->get_string("kind", "");
    if (req.fault.kind != "" && req.fault.kind != "oob_store" &&
        req.fault.kind != "skip_barrier" &&
        req.fault.kind != "modeled_timeout") {
      throw StatusError(Status::kInvalidValue,
                        cat("unknown fault kind \"", req.fault.kind, "\""));
    }
  }
  return req;
}

std::string encode_request(const JobRequest& req) {
  JsonWriter w;
  w.begin_object();
  w.kv("op", op_name(req.op));
  w.kv("id", static_cast<std::uint64_t>(req.id));
  if (!req.client_name.empty()) w.kv("client", req.client_name);
  if (req.op == Op::kLaunch || req.op == Op::kAutotune ||
      req.op == Op::kProfile) {
    w.kv("kernel", req.kernel);
    w.kv("device_class", req.device_class);
    w.kv("n", static_cast<std::uint64_t>(req.n));
    w.kv("seed", static_cast<std::uint64_t>(req.seed));
    if (req.kernel == "matmul") {
      w.kv("tile", static_cast<std::uint64_t>(req.tile));
      w.kv("variant", req.variant);
    }
    if (req.no_cache) w.kv("no_cache", true);
    const ConfigOverrides& c = req.config;
    if (c.grid_x || c.grid_y || c.block_x || c.block_y || c.block_z ||
        c.regs_per_thread || c.sample_blocks || c.functional) {
      w.key("config");
      w.begin_object();
      if (c.grid_x) w.kv("grid_x", static_cast<std::uint64_t>(*c.grid_x));
      if (c.grid_y) w.kv("grid_y", static_cast<std::uint64_t>(*c.grid_y));
      if (c.block_x) w.kv("block_x", static_cast<std::uint64_t>(*c.block_x));
      if (c.block_y) w.kv("block_y", static_cast<std::uint64_t>(*c.block_y));
      if (c.block_z) w.kv("block_z", static_cast<std::uint64_t>(*c.block_z));
      if (c.regs_per_thread) w.kv("regs_per_thread", *c.regs_per_thread);
      if (c.sample_blocks) w.kv("sample_blocks", *c.sample_blocks);
      if (c.functional) w.kv("functional", *c.functional);
      w.end_object();
    }
    if (req.fault.enabled()) {
      w.key("fault");
      w.begin_object();
      w.kv("kind", req.fault.kind);
      w.end_object();
    }
  }
  w.end_object();
  return w.str();
}

LineSocket::~LineSocket() {
  if (fd_ >= 0) ::close(fd_);
}

bool LineSocket::read_line(std::string& out) {
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      out.assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
    if (got == 0) {
      if (!buf_.empty()) throw Error("g80serve: connection closed mid-line");
      return false;
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      throw Error(cat("g80serve: recv failed: ", std::strerror(errno)));
    }
    buf_.append(chunk, static_cast<std::size_t>(got));
  }
}

void LineSocket::write_line(std::string_view line) {
  std::string framed(line);
  framed += '\n';
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t sent =
        ::send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      throw Error(cat("g80serve: send failed: ", std::strerror(errno)));
    }
    off += static_cast<std::size_t>(sent);
  }
}

namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw Error(cat("g80serve: socket path too long (", path.size(), " >= ",
                    sizeof addr.sun_path, "): ", path));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw Error(cat("g80serve: socket: ", std::strerror(errno)));
  const sockaddr_un addr = make_addr(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const int err = errno;
    ::close(fd);
    throw Error(cat("g80serve: connect ", path, ": ", std::strerror(err)));
  }
  return fd;
}

int listen_unix(const std::string& path, int backlog) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw Error(cat("g80serve: socket: ", std::strerror(errno)));
  const sockaddr_un addr = make_addr(path);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd);
    throw Error(cat("g80serve: bind ", path, ": ", std::strerror(err)));
  }
  if (::listen(fd, backlog) < 0) {
    const int err = errno;
    ::close(fd);
    throw Error(cat("g80serve: listen ", path, ": ", std::strerror(err)));
  }
  return fd;
}

}  // namespace g80::serve
