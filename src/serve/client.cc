#include "serve/client.h"

#include "common/str.h"

namespace g80::serve {

Client::Client(const std::string& socket_path, const std::string& client_name)
    : sock_(connect_unix(socket_path)) {
  if (!client_name.empty()) {
    JobRequest hello;
    hello.op = Op::kHello;
    hello.client_name = client_name;
    const Response r = call(hello);
    if (!r.ok()) {
      throw Error(cat("g80serve: hello rejected: ", r.error));
    }
    session_id_ = static_cast<std::uint64_t>(
        r.doc.require("result").get_int("session", 0));
  }
}

Response Client::read_response() {
  std::string line;
  if (!sock_.read_line(line)) {
    throw Error("g80serve: server closed the connection");
  }
  Response r;
  r.doc = JsonValue::parse(line);
  r.id = r.doc.get_int("id", 0);
  r.status = status_from_token(r.doc.require("status").as_string());
  r.error = r.doc.get_string("error", "");
  r.source = r.doc.get_string("source", "");
  if (const JsonValue* result = r.doc.get("result")) {
    r.result_json = result->dump();
  }
  return r;
}

Response Client::wait_for(std::int64_t id) {
  if (auto it = pending_.find(id); it != pending_.end()) {
    Response r = std::move(it->second);
    pending_.erase(it);
    return r;
  }
  for (;;) {
    Response r = read_response();
    if (r.id == id) return r;
    pending_[r.id] = std::move(r);
  }
}

Response Client::call(JobRequest req) {
  if (req.id == 0) req.id = next_id_++;
  const std::int64_t id = req.id;
  sock_.write_line(encode_request(req));
  return wait_for(id);
}

std::int64_t Client::send(JobRequest req) {
  if (req.id == 0) req.id = next_id_++;
  sock_.write_line(encode_request(req));
  return req.id;
}

Response Client::recv(std::int64_t id) { return wait_for(id); }

Response Client::call_raw(const std::string& line) {
  sock_.write_line(line);
  return read_response();
}

}  // namespace g80::serve
