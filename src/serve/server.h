// g80serve daemon core: accepts unix-socket connections, runs the session
// layer, and glues the protocol to the scheduler and the result cache.
//
// One connection == one session.  Each session carries its own identity
// (numeric id plus the optional hello name), its own TransferLedger — every
// byte its jobs move over the modeled PCIe bus is charged to it — and its
// own admission state: at most `max_inflight_per_session` jobs may be
// queued or running at once; excess requests are rejected immediately with
// kNotReady rather than queued, which together with the scheduler's
// queue-depth bound gives the service two layers of typed backpressure.
//
// Job flow for launch/autotune/profile:
//   1. parse + resolve_config (pure; bad configs rejected without touching
//      a device slot);
//   2. result-cache lookup (skipped for no_cache and fault jobs) — a hit
//      answers from the session thread without consuming a device slot,
//      splicing the stored payload back verbatim;
//   3. on a miss: admission checks, then Scheduler::submit; the completion
//      callback stores successful payloads in the cache (errors are never
//      cached) and writes the response from the worker thread.
// Responses may therefore complete out of order; clients match on `id`.
//
// The server never trusts a session: a failed job resets only the slot
// device (scheduler), the session's sticky last_status is per-session
// state, and a session that disconnects mid-job just has its response
// dropped on the closed socket.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/cache.h"
#include "serve/scheduler.h"

namespace g80::serve {

// g80obs wiring of one daemon.  Defaults arm everything: metrics and
// tracing are designed to be cheap enough to leave on (bench/obs_overhead
// gates the disabled path at ≤2% and the enabled-idle path in the same
// breath), but each piece can be switched off independently — a server with
// metrics=false and trace_ring=0 runs the exact pre-obs code path, one
// null-pointer test per request.
struct ObsConfig {
  // Maintain the metrics registry (counters/gauges/histograms; `metrics`
  // protocol op).  Off = the op answers not_permitted.
  bool metrics = true;
  // Capacity of the finished-request trace ring (`traces` op); 0 disables
  // request tracing entirely.
  std::size_t trace_ring = 256;
  // Requests slower than this (total wall seconds) emit a warn-level
  // "slow_request" log event with per-phase timings; <= 0 disables.
  double slow_request_s = 1.0;
  obs::LogLevel log_level = obs::LogLevel::kInfo;
  bool log_json = false;
  // Test hook: replaces the stderr sink (one formatted line per call).
  obs::Logger::Sink log_sink;
};

struct ServerConfig {
  std::string socket_path;
  // Result-cache sizing; empty cache_dir = memory tier only.
  std::string cache_dir;
  std::size_t cache_entries = 1024;
  // Per-session admission bound on queued + running jobs.
  int max_inflight_per_session = 8;
  PoolConfig pool;
  ObsConfig obs;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the socket and starts the accept loop; throws g80::Error on bind
  // failure.  The server is ready for connect() when this returns.
  void start();

  // Blocks until a client issues `shutdown` (or request_shutdown is
  // called); does not tear anything down itself.
  void wait();

  // Asynchronous shutdown request (safe from any thread, including session
  // threads and signal-handler helpers): wakes wait() and returns.
  void request_shutdown();

  // Full teardown: stops accepting, unblocks and joins every session
  // thread, stops the scheduler.  Idempotent; the destructor calls it.
  void shutdown();

  const ServerConfig& config() const;

  // Introspection for tests and the stats op.
  CacheCounters cache_counters() const;
  SchedulerStats scheduler_stats() const;
  // g80obs views: the live metrics snapshot (empty when metrics are off),
  // the finished-trace ring (empty when trace_ring == 0), and the daemon's
  // structured logger (always present; level kOff silences it).
  obs::MetricsSnapshot metrics_snapshot() const;
  std::vector<obs::TraceRecord> traces() const;
  obs::Logger& logger();
  std::uint64_t sessions_accepted() const;
  // Currently-connected sessions; disconnected ones are reaped, so this
  // does not grow with sessions_accepted on a long-running daemon.
  std::size_t active_sessions() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace g80::serve
