// g80serve kernel registry: the jobs the service knows how to run and how
// each one maps onto the simulator.
//
// Two kernels cover the protocol's job space:
//   - "saxpy": the suite's streaming kernel (apps/saxpy).  block_x is the
//     only free launch dimension; the grid is derived to cover n.
//   - "matmul": the §4 SGEMM case study (apps/matmul) in every variant.
//     Grid and block are dictated by (n, tile, variant) — overrides must
//     match or the job is rejected with kInvalidConfiguration, because the
//     kernels' index arithmetic assumes those shapes.
//
// resolve_config() is pure (no Device needed): the server calls it before
// scheduling, both to reject bad configurations without burning a device
// slot and to compute the cache key from the *resolved* configuration, so
// an explicit override that matches the canonical shape hits the same cache
// entry as the implicit default.
//
// run_job() executes on a scheduler slot's Device and never throws: every
// failure — programming-model violations from the sanitize pass, watchdog
// timeouts, internal errors — is folded into JobOutcome::status/error so
// the scheduler can respond, reset the device, and move on.
#pragma once

#include <cstdint>
#include <string>

#include "hw/device_spec.h"
#include "resil/policy.h"
#include "serve/protocol.h"

namespace g80 {
class Device;
}

namespace g80::serve {

// Device spec for a protocol device class ("gtx" | "ultra" | "gts").
DeviceSpec spec_for_class(const std::string& device_class);

// Canonical configuration for the job's kernel parameters with the request's
// overrides applied and validated.  Throws StatusError(kInvalidValue /
// kInvalidConfiguration) on unknown variants or shape-violating overrides.
LaunchConfig resolve_config(const JobRequest& req);

// Stable cache key of a job: ContentHasher over (model version, op, kernel,
// parameters, resolved launch config hash, device spec hash, fault kind).
// Endianness- and build-independent, so on-disk entries survive rebuilds.
std::uint64_t job_cache_key(const JobRequest& req, const LaunchConfig& resolved,
                            std::uint64_t device_spec_hash);

// Everything the scheduler needs from one executed job.
struct JobOutcome {
  Status status = Status::kSuccess;
  std::string error;    // message for the response when status != kSuccess
  std::string payload;  // result JSON object (the cache unit) when ok
  // Transfer-ledger deltas of this job, charged to the session's ledger.
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  double modeled_seconds = 0;  // modeled device time consumed
};

// Runs a launch/profile/autotune job on `dev` under `policy`.  Never throws.
JobOutcome run_job(Device& dev, const JobRequest& req,
                   const ResiliencePolicy& policy);

}  // namespace g80::serve
