// g80serve exact result cache.
//
// Simulated launches are deterministic: the same (kernel, parameters,
// resolved launch config, device spec, model version) always produces the
// same result payload, byte for byte.  The cache therefore stores the
// payload's exact serialization and a hit is *definitionally* bit-identical
// to re-simulating — bench/serve_loadtest.cc asserts this end to end.
//
// Two tiers share one key space (the ContentHasher digest from
// job_cache_key):
//   - an in-memory LRU map bounded by max_entries;
//   - an optional on-disk store (one "<key>.json" file per entry, written
//     via temp-file + rename so readers never observe a partial payload).
// A disk hit is promoted into memory.  Keys embed kModelVersion and the
// device-spec content hash, so entries written by an older model or for a
// different device simply miss.  Errors are never cached — only payloads
// from successful jobs enter the cache (the scheduler enforces this).
//
// The disk tier is best-effort: a failed write (disk full, permissions)
// never throws out of store() — the entry stays memory-only, the failure
// is counted in disk_errors, and the next store() of the same key retries
// the write.  store() runs on scheduler completion callbacks where an
// escaping exception would take down the whole daemon.
//
// Thread safety: every public method is safe to call from any session or
// scheduler thread; one mutex guards both tiers (disk IO happens under it —
// payloads are small and correctness beats concurrency here).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace g80::serve {

struct CacheCounters {
  std::uint64_t mem_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t evictions = 0;
  std::uint64_t disk_errors = 0;  // failed best-effort disk writes

  std::uint64_t hits() const { return mem_hits + disk_hits; }
  std::uint64_t lookups() const { return hits() + misses; }
};

class ResultCache {
 public:
  // `disk_dir` empty disables the disk tier; otherwise the directory is
  // created on first store.  max_entries bounds only the memory tier.
  explicit ResultCache(std::size_t max_entries = 1024,
                       std::string disk_dir = "");

  enum class Tier { kMiss, kMemory, kDisk };

  // Fills `payload` and returns the serving tier on a hit (memory first,
  // then disk, promoting disk hits); returns kMiss otherwise.
  Tier lookup(std::uint64_t key, std::string& payload);

  // Inserts into both tiers, evicting the LRU memory entry beyond capacity.
  // Idempotent: re-storing an existing key refreshes recency, and retries
  // the disk write if an earlier one failed.  Never throws on disk errors.
  void store(std::uint64_t key, const std::string& payload);

  CacheCounters counters() const;
  std::size_t mem_entries() const;

 private:
  std::string disk_path(std::uint64_t key) const;
  void touch(std::uint64_t key);  // move to MRU position; lock held
  // Best-effort disk write; returns whether `key`'s file durably exists
  // afterwards.  Counts failures instead of throwing; lock held.
  bool write_disk(std::uint64_t key, const std::string& payload);

  mutable std::mutex mu_;
  std::size_t max_entries_;
  std::string disk_dir_;
  bool disk_dir_ready_ = false;
  // LRU order, most recent at the front; map values point into the list.
  std::list<std::uint64_t> lru_;
  struct Entry {
    std::string payload;
    bool on_disk;  // false after a failed disk write; store() retries
    std::list<std::uint64_t>::iterator pos;
  };
  std::unordered_map<std::uint64_t, Entry> mem_;
  CacheCounters counters_;
};

}  // namespace g80::serve
