// g80serve device-pool scheduler.
//
// The daemon owns a fixed pool of simulated devices — so many GTX, Ultra
// and GTS slots — and this scheduler binds queued jobs to them.  One worker
// thread owns each slot's Device for its whole lifetime (no device ever
// migrates between threads), pulling jobs from its device class's FIFO.
//
// Isolation is the point of the design:
//   - every job runs under the pool's ResiliencePolicy (wall watchdog,
//     bounded retries), so a wedged or slow job cannot hold a slot forever;
//   - after any failed job the slot's Device is reset() and its sticky
//     error drained before the next job binds, so one session's
//     programming-model violation can never leak status — or execution
//     state — into another session's job (the `robust` soak test asserts
//     this end to end);
//   - admission control is queue-depth backpressure: submit() rejects with
//     StatusError(kNotReady) once a class's queue is full, instead of
//     letting latency grow without bound.
//
// Completion is callback-based (invoked on the worker thread) so the
// session layer can pipeline: a connection keeps reading requests while its
// earlier jobs are still queued or running.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "resil/policy.h"
#include "resil/resilience.h"
#include "serve/kernels.h"

namespace g80::serve {

struct PoolConfig {
  // Device slots per class; 0 removes the class from the pool (jobs for it
  // are rejected with kInvalidValue at submit).
  int gtx_slots = 2;
  int ultra_slots = 1;
  int gts_slots = 1;
  // Maximum *queued* (not yet running) jobs per device class before
  // submit() pushes back with kNotReady.
  std::size_t max_queue_depth = 64;
  // Applied to every job; the default arms a generous wall watchdog so a
  // pathological job frees its slot rather than wedging it.
  ResiliencePolicy policy = [] {
    ResiliencePolicy p;
    p.enabled = true;
    p.wall_timeout_s = 30.0;
    p.max_retries = 1;
    p.backoff_initial_s = 0;  // deterministic retries need no pacing
    return p;
  }();

  int total_slots() const { return gtx_slots + ultra_slots + gts_slots; }
};

// Queue state of one device class at stats() time.
struct ClassQueueStats {
  std::string device_class;  // "gtx" | "ultra" | "gts"
  std::size_t queue_depth = 0;
  int slots = 0;
};

struct SchedulerStats {
  std::uint64_t jobs_ok = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t device_resets = 0;
  std::uint64_t rejected_not_ready = 0;
  std::size_t queue_depth = 0;  // queued across all classes, excl. running
  int running = 0;
  int slots = 0;
  // Lifetime totals accumulated from every completed job's outcome, so the
  // stats/metrics layers can report pool-wide transfer and modeled-time
  // consumption without tracking sessions.
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  double modeled_seconds = 0;
  // Per-class queue depth; ordered by class name (map iteration order).
  std::vector<ClassQueueStats> classes;
};

// Optional per-job observation hooks.  Everything here runs on the slot's
// worker thread, so the span a hook closes measures real queue wait and the
// attempt observer sees exactly this job's attempts.
struct JobHooks {
  // Invoked after the job is dequeued, immediately before it runs — closes
  // the request's queue-wait span and opens its simulate span.
  std::function<void()> on_start;
  // Named out-of-band occurrences ("device_reset") with a detail note.
  std::function<void(const std::string& name, const std::string& note)>
      on_event;
  // Installed (ScopedAttemptObserver) around run_job so g80resil's retry
  // loop reports each attempt.  Must stay valid until the completion
  // callback returns; null disables.
  AttemptObserver* attempts = nullptr;
};

class Scheduler {
 public:
  explicit Scheduler(PoolConfig cfg);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  using Callback = std::function<void(const JobOutcome&)>;

  // Enqueues `req` for its device class; `done` runs exactly once, on the
  // slot's worker thread.  Throws StatusError(kNotReady) when the class
  // queue is at max_queue_depth and StatusError(kInvalidValue) for a class
  // with no slots — in both cases `done` is NOT invoked.  `hooks` (all
  // optional) observe the job's execution; a job failed at stop() without
  // ever running gets `done` but no hook calls.
  void submit(const JobRequest& req, Callback done, JobHooks hooks = {});

  // Stops accepting work, fails queued jobs with kNotReady, joins workers.
  // Idempotent.
  void stop();

  SchedulerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace g80::serve
