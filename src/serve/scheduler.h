// g80serve device-pool scheduler.
//
// The daemon owns a fixed pool of simulated devices — so many GTX, Ultra
// and GTS slots — and this scheduler binds queued jobs to them.  One worker
// thread owns each slot's Device for its whole lifetime (no device ever
// migrates between threads), pulling jobs from its device class's FIFO.
//
// Isolation is the point of the design:
//   - every job runs under the pool's ResiliencePolicy (wall watchdog,
//     bounded retries), so a wedged or slow job cannot hold a slot forever;
//   - after any failed job the slot's Device is reset() and its sticky
//     error drained before the next job binds, so one session's
//     programming-model violation can never leak status — or execution
//     state — into another session's job (the `robust` soak test asserts
//     this end to end);
//   - admission control is queue-depth backpressure: submit() rejects with
//     StatusError(kNotReady) once a class's queue is full, instead of
//     letting latency grow without bound.
//
// Completion is callback-based (invoked on the worker thread) so the
// session layer can pipeline: a connection keeps reading requests while its
// earlier jobs are still queued or running.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "resil/policy.h"
#include "serve/kernels.h"

namespace g80::serve {

struct PoolConfig {
  // Device slots per class; 0 removes the class from the pool (jobs for it
  // are rejected with kInvalidValue at submit).
  int gtx_slots = 2;
  int ultra_slots = 1;
  int gts_slots = 1;
  // Maximum *queued* (not yet running) jobs per device class before
  // submit() pushes back with kNotReady.
  std::size_t max_queue_depth = 64;
  // Applied to every job; the default arms a generous wall watchdog so a
  // pathological job frees its slot rather than wedging it.
  ResiliencePolicy policy = [] {
    ResiliencePolicy p;
    p.enabled = true;
    p.wall_timeout_s = 30.0;
    p.max_retries = 1;
    p.backoff_initial_s = 0;  // deterministic retries need no pacing
    return p;
  }();

  int total_slots() const { return gtx_slots + ultra_slots + gts_slots; }
};

struct SchedulerStats {
  std::uint64_t jobs_ok = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t device_resets = 0;
  std::uint64_t rejected_not_ready = 0;
  std::size_t queue_depth = 0;  // queued across all classes, excl. running
  int running = 0;
  int slots = 0;
};

class Scheduler {
 public:
  explicit Scheduler(PoolConfig cfg);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  using Callback = std::function<void(const JobOutcome&)>;

  // Enqueues `req` for its device class; `done` runs exactly once, on the
  // slot's worker thread.  Throws StatusError(kNotReady) when the class
  // queue is at max_queue_depth and StatusError(kInvalidValue) for a class
  // with no slots — in both cases `done` is NOT invoked.
  void submit(const JobRequest& req, Callback done);

  // Stops accepting work, fails queued jobs with kNotReady, joins workers.
  // Idempotent.
  void stop();

  SchedulerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace g80::serve
