// g80serve wire protocol: line-delimited JSON over an AF_UNIX stream socket.
//
// Each request and each response is one JSON object on one '\n'-terminated
// line.  Requests carry an `op` plus a client-chosen `id`; responses echo
// the `id` so clients may pipeline.  Job responses look like
//
//   {"id":7,"status":"ok","source":"cache_mem","result":{...}}
//   {"id":8,"status":"invalid_configuration","error":"block exceeds ..."}
//
// where `result` is the cached unit: the server stores that object's exact
// serialization in the result cache and splices it back verbatim on a hit
// (JsonWriter::raw), so `result` on a warm response is byte-identical to the
// cold simulation's.  Everything outside `result` (id, source, timestamps a
// future version might add) is per-response and never cached.
//
// docs/serving.md is the normative protocol description; this header is the
// single in-tree definition of the ops, field names and status tokens.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/content_hash.h"
#include "common/error.h"
#include "common/json.h"

namespace g80::serve {

// Bumped whenever the meaning of a cached result changes (kernel semantics,
// timing model, result payload schema).  Part of every cache key, so stale
// on-disk entries from an older model silently become misses.
inline constexpr int kModelVersion = 1;
inline constexpr int kProtocolVersion = 1;

enum class Op {
  kPing,      // liveness probe; responds immediately from the session layer
  kHello,     // names the session; returns session id + server versions
  kLaunch,    // run one kernel job (or serve it from the result cache)
  kAutotune,  // sweep matmul variants/tiles, return the modeled-time winner
  kProfile,   // launch with g80prof attached, return counters too
  kStats,     // server + session counters (queue depth, cache, ledger)
  kMetrics,   // g80obs metrics snapshot (counters, gauges, histograms)
  kTraces,    // g80obs finished-request trace ring
  kShutdown,  // stop the daemon
};

std::string_view op_name(Op op);
// Throws StatusError(kInvalidValue) for unknown op strings.
Op op_from_name(std::string_view name);

// snake_case protocol tokens for g80::Status ("ok", "not_ready",
// "invalid_configuration", ...).  status_name() strings contain spaces and
// are for humans; these are for the wire and for scripts.
std::string_view status_token(Status s);
Status status_from_token(std::string_view token);

// Deterministic fault requested by a job — the serve-level face of the
// sanitizer's FaultInjection plus the resilience watchdog.  Faulty jobs are
// how the isolation soak test provokes per-session errors on shared devices.
struct FaultSpec {
  // "" (none), "oob_store" (kInvalidAddress from the sanitize pass),
  // "skip_barrier" (kBarrierDivergence; needs a __syncthreads kernel),
  // "modeled_timeout" (kTimeout from the modeled watchdog).
  std::string kind;

  bool enabled() const { return !kind.empty(); }
};

// Optional per-job overrides of the canonical launch configuration the
// server derives from the kernel parameters.  Absent fields keep the
// canonical value; the *resolved* LaunchConfig is what enters the cache key.
struct ConfigOverrides {
  std::optional<std::uint32_t> grid_x, grid_y;
  std::optional<std::uint32_t> block_x, block_y, block_z;
  std::optional<int> regs_per_thread;
  std::optional<int> sample_blocks;
  std::optional<bool> functional;

  void apply(LaunchConfig& c) const;
};

// One parsed request line.  Fields beyond `op`/`id` are meaningful only for
// job ops (launch/autotune/profile).
struct JobRequest {
  Op op = Op::kPing;
  std::int64_t id = 0;

  std::string kernel;                // "saxpy" | "matmul"
  std::string device_class = "gtx";  // "gtx" | "ultra" | "gts"
  std::int64_t n = 0;                // problem size (elements / matrix dim)
  std::int64_t seed = 1;             // workload generator seed
  std::int64_t tile = 16;            // matmul tile width
  std::string variant = "tiled";     // matmul variant (MatmulConfig names)
  ConfigOverrides config;
  FaultSpec fault;
  bool no_cache = false;  // bypass the result cache for this job

  // hello
  std::string client_name;
};

// Parses one request document.  Unknown ops, wrong-typed fields and
// out-of-range values throw StatusError(kInvalidValue) with a message
// suitable for the response's `error` field.
JobRequest parse_request(const JsonValue& doc);

// Serializes a request (the client library's encoder; inverse of
// parse_request for every field the protocol defines).
std::string encode_request(const JobRequest& req);

// Blocking line-framed IO over a connected stream socket.  Writes append
// '\n'; reads strip it.  Both directions throw g80::Error on EOF mid-line
// or socket errors; read_line returns false on clean EOF at a line boundary.
class LineSocket {
 public:
  explicit LineSocket(int fd) : fd_(fd) {}
  ~LineSocket();
  LineSocket(const LineSocket&) = delete;
  LineSocket& operator=(const LineSocket&) = delete;

  bool read_line(std::string& out);
  void write_line(std::string_view line);

  int fd() const { return fd_; }

 private:
  int fd_;
  std::string buf_;
};

// Connects to a g80served unix socket; throws g80::Error on failure.
int connect_unix(const std::string& path);
// Binds + listens on `path` (unlinking any stale socket first); throws on
// failure.  Paths are limited to sizeof(sockaddr_un::sun_path) - 1 bytes.
int listen_unix(const std::string& path, int backlog = 128);

}  // namespace g80::serve
