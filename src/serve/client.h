// g80serve client library: a thin, blocking wrapper over the line protocol.
//
// One Client == one session on the daemon.  call() is the simple
// request/response path; send()/recv() expose pipelining (multiple requests
// in flight on one connection, responses matched by id) for the soak and
// backpressure tests.  Not thread-safe — a Client belongs to one thread,
// which is exactly the loadtest's one-client-per-session-thread shape.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/json.h"
#include "serve/protocol.h"

namespace g80::serve {

struct Response {
  std::int64_t id = 0;
  Status status = Status::kSuccess;
  std::string error;        // filled when status != kSuccess
  std::string source;       // "sim" | "cache_mem" | "cache_disk" | ""
  // Exact serialization of the response's `result` object ("" on errors).
  // For job responses this is the cache unit: byte-identical between a cold
  // simulation and every later cache hit of the same job.
  std::string result_json;
  JsonValue doc;  // the full parsed response line

  bool ok() const { return status == Status::kSuccess; }
};

class Client {
 public:
  // Connects to a g80served socket; sends a hello naming the session when
  // `client_name` is non-empty.  Throws g80::Error if the daemon is absent.
  explicit Client(const std::string& socket_path,
                  const std::string& client_name = "");

  // Sends `req` (assigning the next id if req.id == 0) and blocks for its
  // response.  Other ids arriving first — pipelined traffic — are buffered.
  Response call(JobRequest req);

  // Pipelined path: send returns the assigned id immediately; recv blocks
  // for that id's response.
  std::int64_t send(JobRequest req);
  Response recv(std::int64_t id);

  // Sends a raw request line verbatim and returns the next response
  // (protocol-error testing).
  Response call_raw(const std::string& line);

  std::uint64_t session_id() const { return session_id_; }

 private:
  Response read_response();
  Response wait_for(std::int64_t id);

  LineSocket sock_;
  std::int64_t next_id_ = 1;
  std::uint64_t session_id_ = 0;
  std::map<std::int64_t, Response> pending_;  // out-of-order arrivals
};

}  // namespace g80::serve
