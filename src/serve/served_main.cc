// g80served — the g80serve daemon.
//
//   g80served --socket /tmp/g80served.sock [--cache-dir DIR]
//             [--gtx N] [--ultra N] [--gts N]
//             [--max-queue N] [--max-inflight N] [--cache-entries N]
//             [--log-level debug|info|warn|error|off] [--log-json]
//             [--slow-ms N] [--trace-ring N] [--no-metrics]
//
// Prints one "listening" line to stdout once the socket is ready (scripts
// wait for it), then serves until a client issues `shutdown` or the process
// receives SIGINT/SIGTERM.  Exits 0 on a clean shutdown with a final stats
// summary on stdout.  Diagnostics go to stderr as structured log events
// (g80obs logger; --log-json switches them to one-JSON-object-per-line).
// docs/serving.md is the ops runbook, docs/observability.md the metrics and
// tracing guide.
#include <signal.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/error.h"
#include "obs/log.h"
#include "serve/server.h"

namespace {

int g_shutdown_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  // write() is async-signal-safe; the watcher thread does the real work.
  [[maybe_unused]] const ssize_t n = ::write(g_shutdown_pipe[1], &byte, 1);
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--cache-dir DIR] [--gtx N] "
               "[--ultra N] [--gts N] [--max-queue N] [--max-inflight N] "
               "[--cache-entries N] [--log-level LEVEL] [--log-json] "
               "[--slow-ms N] [--trace-ring N] [--no-metrics]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  g80::serve::ServerConfig cfg;
  cfg.socket_path = "/tmp/g80served.sock";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--socket") {
      cfg.socket_path = next();
    } else if (arg == "--cache-dir") {
      cfg.cache_dir = next();
    } else if (arg == "--gtx") {
      cfg.pool.gtx_slots = std::atoi(next());
    } else if (arg == "--ultra") {
      cfg.pool.ultra_slots = std::atoi(next());
    } else if (arg == "--gts") {
      cfg.pool.gts_slots = std::atoi(next());
    } else if (arg == "--max-queue") {
      cfg.pool.max_queue_depth = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--max-inflight") {
      cfg.max_inflight_per_session = std::atoi(next());
    } else if (arg == "--cache-entries") {
      cfg.cache_entries = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--log-level") {
      try {
        cfg.obs.log_level = g80::obs::log_level_from_name(next());
      } catch (const g80::Error& e) {
        std::fprintf(stderr, "g80served: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--log-json") {
      cfg.obs.log_json = true;
    } else if (arg == "--slow-ms") {
      cfg.obs.slow_request_s = std::atof(next()) * 1e-3;
    } else if (arg == "--trace-ring") {
      cfg.obs.trace_ring = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--no-metrics") {
      cfg.obs.metrics = false;
    } else {
      usage(argv[0]);
    }
  }

  // Daemon-lifecycle events share the request path's format and level
  // settings but not its sink serialization — the Server's logger exists
  // only while the Server does.
  g80::obs::Logger log(cfg.obs.log_level, cfg.obs.log_json);
  try {
    g80::serve::Server server(cfg);
    server.start();
    std::printf("g80served listening on %s (gtx=%d ultra=%d gts=%d)\n",
                cfg.socket_path.c_str(), cfg.pool.gtx_slots,
                cfg.pool.ultra_slots, cfg.pool.gts_slots);
    std::fflush(stdout);

    if (::pipe(g_shutdown_pipe) != 0) {
      log.error("pipe_failed").field("errno", std::strerror(errno));
      return 1;
    }
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::thread signal_watcher([&server] {
      char byte;
      if (::read(g_shutdown_pipe[0], &byte, 1) > 0) {
        server.request_shutdown();
      }
    });

    server.wait();
    server.shutdown();
    // Unblock the watcher if shutdown came from a client instead of a
    // signal, then join it.
    on_signal(0);
    signal_watcher.join();

    const auto ss = server.scheduler_stats();
    const auto cc = server.cache_counters();
    std::printf(
        "g80served: %llu sessions, %llu jobs ok, %llu failed, cache %llu "
        "hits / %llu misses\n",
        static_cast<unsigned long long>(server.sessions_accepted()),
        static_cast<unsigned long long>(ss.jobs_ok),
        static_cast<unsigned long long>(ss.jobs_failed),
        static_cast<unsigned long long>(cc.hits()),
        static_cast<unsigned long long>(cc.misses));
    return 0;
  } catch (const g80::Error& e) {
    log.error("fatal").field("error", e.what());
    return 1;
  }
}
