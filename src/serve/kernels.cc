#include "serve/kernels.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <vector>

#include "apps/matmul/matmul.h"
#include "apps/saxpy/saxpy.h"
#include "common/str.h"
#include "core/report.h"
#include "cudalite/device.h"
#include "cudalite/launch.h"
#include "prof/profiler.h"

namespace g80::serve {

namespace {

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

apps::MatmulVariant variant_from_name(const std::string& name) {
  if (name == "naive") return apps::MatmulVariant::kNaive;
  if (name == "naive_unrolled") return apps::MatmulVariant::kNaiveUnrolled;
  if (name == "tiled") return apps::MatmulVariant::kTiled;
  if (name == "tiled_unrolled") return apps::MatmulVariant::kTiledUnrolled;
  if (name == "prefetch") return apps::MatmulVariant::kPrefetch;
  if (name == "regtiled") return apps::MatmulVariant::kRegisterTiled;
  throw StatusError(Status::kInvalidValue,
                    cat("unknown matmul variant \"", name, "\""));
}

// Canonical launch configuration before overrides.
LaunchConfig canonical_config(const JobRequest& req) {
  LaunchConfig c;
  if (req.kernel == "saxpy") {
    c.block_x = 256;
    c.grid_x = static_cast<std::uint32_t>((req.n + c.block_x - 1) / c.block_x);
    c.regs_per_thread = 5;
    c.uses_sync = false;
    return c;
  }
  // matmul: shapes from run_matmul (apps/matmul/matmul.cc).
  const apps::MatmulVariant v = variant_from_name(req.variant);
  apps::MatmulConfig mc{v, static_cast<int>(req.tile)};
  c.regs_per_thread = mc.regs_per_thread();
  const auto n = static_cast<std::uint32_t>(req.n);
  const auto tile = static_cast<std::uint32_t>(req.tile);
  if (v == apps::MatmulVariant::kNaive ||
      v == apps::MatmulVariant::kNaiveUnrolled) {
    if (req.n % 16 != 0) {
      throw StatusError(Status::kInvalidConfiguration,
                        cat("matmul n=", req.n, " must be a multiple of 16"));
    }
    c.block_x = c.block_y = 16;
    c.grid_x = c.grid_y = n / 16;
    c.uses_sync = false;
    return c;
  }
  if (req.n % req.tile != 0) {
    throw StatusError(Status::kInvalidConfiguration,
                      cat("matmul n=", req.n, " not divisible by tile ",
                          req.tile));
  }
  if (v == apps::MatmulVariant::kRegisterTiled) {
    if (req.tile % 2 != 0) {
      throw StatusError(Status::kInvalidConfiguration,
                        "register tiling needs an even tile");
    }
    c.block_x = tile;
    c.block_y = tile / 2;
  } else {
    c.block_x = c.block_y = tile;
  }
  c.grid_x = c.grid_y = n / tile;
  c.uses_sync = true;
  return c;
}

LaunchOptions options_from_config(const LaunchConfig& c) {
  LaunchOptions opt;
  opt.regs_per_thread = c.regs_per_thread;
  opt.sample_blocks = c.sample_blocks;
  opt.functional = c.functional;
  opt.uses_sync = c.uses_sync;
  // A job that requests zero trace samples wants results, not modeled
  // timing: fill its cache misses through the functional fast path (skips
  // trace/stat bookkeeping entirely — see LaunchOptions::fast_path).  The
  // payload's stats JSON then carries zero timing, which is exactly what
  // sample_blocks == 0 means; profile jobs force sample_blocks >= 1.
  opt.fast_path = (c.sample_blocks == 0);
  return opt;
}

void apply_fault(const FaultSpec& fault, const LaunchConfig& c,
                 LaunchOptions& opt, ResiliencePolicy& policy) {
  if (!fault.enabled()) return;
  if (fault.kind == "oob_store") {
    opt.sanitize.enabled = true;
    opt.sanitize.fault.corrupt_global_tid = 0;
    opt.sanitize.fault.block = 0;
  } else if (fault.kind == "skip_barrier") {
    if (!c.uses_sync) {
      throw StatusError(
          Status::kInvalidValue,
          "fault \"skip_barrier\" needs a __syncthreads kernel (matmul "
          "tiled/regtiled)");
    }
    opt.sanitize.enabled = true;
    opt.sanitize.fault.skip_barrier_tid = 0;
    opt.sanitize.fault.block = 0;
  } else if (fault.kind == "modeled_timeout") {
    // Deterministic: the modeled watchdog rejects the launch before the
    // functional pass; retries would fail identically, so don't retry.
    policy.enabled = true;
    policy.modeled_timeout_s = 1e-12;
    policy.max_retries = 0;
  }
}

void write_config(JsonWriter& w, const LaunchConfig& c) {
  w.key("config");
  w.begin_object();
  w.kv("grid_x", static_cast<std::uint64_t>(c.grid_x));
  w.kv("grid_y", static_cast<std::uint64_t>(c.grid_y));
  w.kv("block_x", static_cast<std::uint64_t>(c.block_x));
  w.kv("block_y", static_cast<std::uint64_t>(c.block_y));
  w.kv("block_z", static_cast<std::uint64_t>(c.block_z));
  w.kv("regs_per_thread", c.regs_per_thread);
  w.kv("sample_blocks", c.sample_blocks);
  w.kv("functional", c.functional);
  w.kv("uses_sync", c.uses_sync);
  w.end_object();
}

void write_payload_header(JsonWriter& w, const JobRequest& req,
                          const DeviceSpec& spec, std::uint64_t cache_key) {
  w.kv("model_version", kModelVersion);
  w.kv("op", op_name(req.op));
  w.kv("kernel", req.kernel);
  w.kv("device", spec.name);
  w.kv("device_spec_hash", hex16(device_spec_hash(spec)));
  w.kv("cache_key", hex16(cache_key));
  w.key("params");
  w.begin_object();
  w.kv("n", static_cast<std::uint64_t>(req.n));
  w.kv("seed", static_cast<std::uint64_t>(req.seed));
  if (req.kernel == "matmul") {
    w.kv("tile", static_cast<std::uint64_t>(req.tile));
    w.kv("variant", req.variant);
  }
  w.end_object();
}

// Launches the job's kernel once on `dev` with the given options.  Returns
// the stats; fills `checksum` with a content hash of the functional output
// (0 when functional=false).
LaunchStats launch_once(Device& dev, const JobRequest& req,
                        const LaunchConfig& c, const LaunchOptions& opt,
                        std::uint64_t& checksum) {
  const Dim3 grid(c.grid_x, c.grid_y);
  const Dim3 block(c.block_x, c.block_y, c.block_z);
  checksum = 0;
  if (req.kernel == "saxpy") {
    const std::size_t n = static_cast<std::size_t>(req.n);
    const auto w = apps::SaxpyWorkload::generate(
        n, static_cast<std::uint64_t>(req.seed));
    auto dx = dev.alloc<float>(n);
    auto dy = dev.alloc<float>(n);
    auto dout = dev.alloc<float>(n);
    dx.copy_from_host(w.x);
    dy.copy_from_host(w.y);
    const auto stats =
        launch(dev, grid, block, opt,
               apps::SaxpyKernel{w.a, static_cast<int>(n)}, dx, dy, dout);
    if (opt.functional) {
      const auto out = dout.copy_to_host();
      ContentHasher h;
      h.raw(out.data(), out.size() * sizeof(float));
      checksum = h.digest();
    }
    return stats;
  }

  const int n = static_cast<int>(req.n);
  const auto w =
      apps::MatmulWorkload::generate(n, static_cast<std::uint64_t>(req.seed));
  auto da = dev.alloc<float>(w.a.size());
  auto db = dev.alloc<float>(w.b.size());
  auto dc = dev.alloc<float>(static_cast<std::size_t>(n) * n);
  da.copy_from_host(w.a);
  db.copy_from_host(w.b);
  const apps::MatmulVariant v = variant_from_name(req.variant);
  LaunchStats stats;
  if (v == apps::MatmulVariant::kNaive ||
      v == apps::MatmulVariant::kNaiveUnrolled) {
    stats = launch(dev, grid, block, opt,
                   apps::MatmulNaiveKernel{
                       n, v == apps::MatmulVariant::kNaiveUnrolled},
                   da, db, dc);
  } else if (v == apps::MatmulVariant::kRegisterTiled) {
    stats = launch(dev, grid, block, opt,
                   apps::MatmulRegTiledKernel{n, static_cast<int>(req.tile)},
                   da, db, dc);
  } else {
    stats = launch(dev, grid, block, opt,
                   apps::MatmulTiledKernel{
                       n, static_cast<int>(req.tile),
                       v != apps::MatmulVariant::kTiled,
                       v == apps::MatmulVariant::kPrefetch},
                   da, db, dc);
  }
  if (opt.functional) {
    const auto out = dc.copy_to_host();
    ContentHasher h;
    h.raw(out.data(), out.size() * sizeof(float));
    checksum = h.digest();
  }
  return stats;
}

std::string run_launch_payload(Device& dev, const JobRequest& req,
                               const LaunchConfig& c,
                               const ResiliencePolicy& policy,
                               std::uint64_t cache_key,
                               double& modeled_seconds) {
  LaunchOptions opt = options_from_config(c);
  ResiliencePolicy job_policy = policy;
  apply_fault(req.fault, c, opt, job_policy);
  opt.resilience = job_policy;

  prof::Profiler profiler;
  if (req.op == Op::kProfile) {
    opt.prof.sink = &profiler;
    opt.prof.kernel_name = req.kernel;
    // Counters are derived from trace samples, so a profile job that asked
    // for zero samples still traces one block (an attached profiler already
    // disables the fast path — see LaunchOptions::fast_path).
    if (opt.sample_blocks < 1) opt.sample_blocks = 1;
  }

  std::uint64_t checksum = 0;
  const LaunchStats stats = launch_once(dev, req, c, opt, checksum);
  modeled_seconds = stats.timing.seconds;

  JsonWriter w;
  w.begin_object();
  write_payload_header(w, req, dev.spec(), cache_key);
  write_config(w, c);
  w.kv("output_checksum", hex16(checksum));
  w.key("stats");
  w.raw(launch_stats_json(dev.spec(), stats));
  if (req.op == Op::kProfile) {
    const auto kernels = profiler.kernels();
    if (!kernels.empty()) {
      const auto& k = kernels.front();
      w.key("profile");
      w.begin_object();
      w.kv("launches", k.launches);
      w.kv("gld_coalesced", k.counters.gld_coalesced);
      w.kv("gld_uncoalesced", k.counters.gld_uncoalesced);
      w.kv("gst_coalesced", k.counters.gst_coalesced);
      w.kv("gst_uncoalesced", k.counters.gst_uncoalesced);
      w.kv("warp_serialize", k.counters.warp_serialize);
      w.kv("branch", k.counters.branch);
      w.kv("divergent_branch", k.counters.divergent_branch);
      w.kv("sync", k.counters.sync);
      w.end_object();
    }
  }
  w.end_object();
  return w.str();
}

std::string run_autotune_payload(Device& dev, const JobRequest& req,
                                 const LaunchConfig& base,
                                 const ResiliencePolicy& policy,
                                 std::uint64_t cache_key,
                                 double& modeled_seconds) {
  // Candidate sweep.  Timing-only launches (functional=false): the modeled
  // time is what's being tuned and skipping the functional pass keeps the
  // sweep cheap.  All candidates share the request's workload parameters.
  struct Candidate {
    JobRequest req;
    LaunchConfig config;
  };
  std::vector<Candidate> cands;
  if (req.kernel == "saxpy") {
    for (const std::uint32_t bx : {64u, 128u, 256u, 512u}) {
      JobRequest r = req;
      r.op = Op::kLaunch;
      LaunchConfig c = base;
      c.block_x = bx;
      c.grid_x = static_cast<std::uint32_t>((req.n + bx - 1) / bx);
      c.functional = false;
      cands.push_back({r, c});
    }
  } else {
    const auto add_candidate = [&](const std::string& variant,
                                   std::int64_t tile) {
      for (const Candidate& existing : cands) {
        if (existing.req.variant == variant && existing.req.tile == tile) {
          return;
        }
      }
      JobRequest r = req;
      r.op = Op::kLaunch;
      r.variant = variant;
      r.tile = tile;
      r.config = ConfigOverrides{};  // canonical shapes per candidate
      LaunchConfig c = canonical_config(r);
      c.sample_blocks = base.sample_blocks;
      c.functional = false;
      cands.push_back({r, c});
    };
    // The request's own (variant, tile) is always a candidate: it already
    // passed resolve_config, and it keeps the sweep non-empty when n is
    // divisible by neither standard tile (e.g. n=12 with tile=2) — an
    // empty candidate list would leave nothing to report as "best".
    add_candidate(req.variant, req.tile);
    for (const char* variant :
         {"tiled", "tiled_unrolled", "prefetch", "regtiled"}) {
      for (const std::int64_t tile : {8, 16}) {
        if (req.n % tile != 0) continue;
        add_candidate(variant, tile);
      }
    }
  }

  JsonWriter w;
  w.begin_object();
  write_payload_header(w, req, dev.spec(), cache_key);
  w.key("candidates");
  w.begin_array();
  std::size_t best = 0;
  double best_seconds = std::numeric_limits<double>::infinity();
  std::vector<double> seconds(cands.size(), 0);
  for (std::size_t i = 0; i < cands.size(); ++i) {
    LaunchOptions opt = options_from_config(cands[i].config);
    opt.resilience = policy;
    std::uint64_t checksum = 0;
    const LaunchStats stats =
        launch_once(dev, cands[i].req, cands[i].config, opt, checksum);
    seconds[i] = stats.timing.seconds;
    modeled_seconds += seconds[i];
    if (seconds[i] < best_seconds) {
      best_seconds = seconds[i];
      best = i;
    }
    w.begin_object();
    if (req.kernel == "saxpy") {
      w.kv("block_x", static_cast<std::uint64_t>(cands[i].config.block_x));
    } else {
      w.kv("variant", cands[i].req.variant);
      w.kv("tile", static_cast<std::uint64_t>(cands[i].req.tile));
    }
    w.kv("modeled_ms", stats.timing.seconds * 1e3);
    w.kv("gflops", stats.timing.gflops);
    w.kv("bottleneck", bottleneck_name(stats.timing.bottleneck));
    w.end_object();
  }
  w.end_array();
  w.key("best");
  w.begin_object();
  if (req.kernel == "saxpy") {
    w.kv("block_x", static_cast<std::uint64_t>(cands[best].config.block_x));
  } else {
    w.kv("variant", cands[best].req.variant);
    w.kv("tile", static_cast<std::uint64_t>(cands[best].req.tile));
  }
  w.kv("modeled_ms", best_seconds * 1e3);
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace

DeviceSpec spec_for_class(const std::string& device_class) {
  if (device_class == "gtx") return DeviceSpec::geforce_8800_gtx();
  if (device_class == "ultra") return DeviceSpec::geforce_8800_ultra();
  if (device_class == "gts") return DeviceSpec::geforce_8800_gts();
  throw StatusError(Status::kInvalidValue,
                    cat("unknown device_class \"", device_class, "\""));
}

LaunchConfig resolve_config(const JobRequest& req) {
  LaunchConfig c = canonical_config(req);
  LaunchConfig resolved = c;
  req.config.apply(resolved);
  if (req.kernel == "saxpy") {
    if (resolved.block_y != 1 || resolved.block_z != 1 ||
        resolved.grid_y != 1) {
      throw StatusError(Status::kInvalidConfiguration,
                        "saxpy launches are 1-D (block_y/z and grid_y = 1)");
    }
    const std::uint64_t covered =
        static_cast<std::uint64_t>(resolved.grid_x) * resolved.block_x;
    if (covered < static_cast<std::uint64_t>(req.n)) {
      throw StatusError(
          Status::kInvalidConfiguration,
          cat("grid of ", covered, " threads cannot cover n=", req.n));
    }
  } else {
    // The matmul kernels' index arithmetic assumes the canonical shapes.
    if (resolved.grid_x != c.grid_x || resolved.grid_y != c.grid_y ||
        resolved.block_x != c.block_x || resolved.block_y != c.block_y ||
        resolved.block_z != 1) {
      throw StatusError(
          Status::kInvalidConfiguration,
          cat("matmul variant \"", req.variant, "\" with n=", req.n,
              " tile=", req.tile, " requires grid ", c.grid_x, "x", c.grid_y,
              ", block ", c.block_x, "x", c.block_y));
    }
  }
  return resolved;
}

std::uint64_t job_cache_key(const JobRequest& req, const LaunchConfig& resolved,
                            std::uint64_t device_spec_hash) {
  ContentHasher h;
  h.i64(kModelVersion);
  h.str(op_name(req.op));
  h.str(req.kernel);
  h.i64(req.n);
  h.i64(req.seed);
  h.i64(req.tile);
  h.str(req.variant);
  h.u64(launch_config_hash(resolved));
  h.u64(device_spec_hash);
  h.str(req.fault.kind);
  return h.digest();
}

JobOutcome run_job(Device& dev, const JobRequest& req,
                   const ResiliencePolicy& policy) {
  JobOutcome out;
  const std::uint64_t h2d0 = dev.ledger().lifetime_h2d_bytes();
  const std::uint64_t d2h0 = dev.ledger().lifetime_d2h_bytes();
  try {
    const LaunchConfig c = resolve_config(req);
    const std::uint64_t key =
        job_cache_key(req, c, device_spec_hash(dev.spec()));
    if (req.op == Op::kAutotune) {
      out.payload =
          run_autotune_payload(dev, req, c, policy, key, out.modeled_seconds);
    } else {
      out.payload =
          run_launch_payload(dev, req, c, policy, key, out.modeled_seconds);
    }
  } catch (const StatusError& e) {
    out.status = e.status();
    out.error = e.what();
  } catch (const Error& e) {
    out.status = Status::kLaunchFailure;
    out.error = e.what();
  }
  out.h2d_bytes = dev.ledger().lifetime_h2d_bytes() - h2d0;
  out.d2h_bytes = dev.ledger().lifetime_d2h_bytes() - d2h0;
  return out;
}

}  // namespace g80::serve
