// g80servectl — command-line client for a running g80served.
//
//   g80servectl SOCKET ping
//   g80servectl SOCKET stats
//   g80servectl SOCKET shutdown
//   g80servectl SOCKET launch|autotune|profile kernel=saxpy n=65536 \
//       [seed=N] [tile=N] [variant=NAME] [device_class=gtx|ultra|gts] \
//       [fault=KIND] [no_cache=1]
//
// Prints the response line (the full JSON document) to stdout; exits 0 when
// the response status is ok, 1 otherwise.  The runbook half of
// docs/serving.md is written in terms of this tool.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/error.h"
#include "serve/client.h"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: g80servectl SOCKET ping|stats|shutdown|launch|autotune|"
               "profile [key=value ...]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage();
  const std::string socket_path = argv[1];
  const std::string op = argv[2];

  try {
    g80::serve::JobRequest req;
    req.op = g80::serve::op_from_name(op);
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) usage();
      const std::string key = arg.substr(0, eq);
      const std::string value = arg.substr(eq + 1);
      if (key == "kernel") {
        req.kernel = value;
      } else if (key == "n") {
        req.n = std::atoll(value.c_str());
      } else if (key == "seed") {
        req.seed = std::atoll(value.c_str());
      } else if (key == "tile") {
        req.tile = std::atoll(value.c_str());
      } else if (key == "variant") {
        req.variant = value;
      } else if (key == "device_class") {
        req.device_class = value;
      } else if (key == "fault") {
        req.fault.kind = value;
      } else if (key == "no_cache") {
        req.no_cache = value != "0";
      } else {
        usage();
      }
    }

    g80::serve::Client client(socket_path, "g80servectl");
    const g80::serve::Response r = client.call(req);
    std::printf("%s\n", r.doc.dump().c_str());
    return r.ok() ? 0 : 1;
  } catch (const g80::Error& e) {
    std::fprintf(stderr, "g80servectl: %s\n", e.what());
    return 1;
  }
}
