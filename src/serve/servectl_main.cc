// g80servectl — command-line client for a running g80served.
//
//   g80servectl SOCKET ping
//   g80servectl SOCKET stats
//   g80servectl SOCKET metrics [format=prom|json]
//   g80servectl SOCKET traces [format=json|chrome]
//   g80servectl SOCKET shutdown
//   g80servectl SOCKET launch|autotune|profile kernel=saxpy n=65536 \
//       [seed=N] [tile=N] [variant=NAME] [device_class=gtx|ultra|gts] \
//       [fault=KIND] [no_cache=1]
//
// Prints the response line (the full JSON document) to stdout; exits 0 when
// the response status is ok, 1 otherwise.  Two render exceptions:
// `metrics` defaults to Prometheus exposition text (format=json for the raw
// payload) and `traces format=chrome` emits chrome://tracing JSON — pipe it
// to a file and load it next to a g80prof kernel timeline.  The runbook
// half of docs/serving.md is written in terms of this tool;
// docs/observability.md covers the metrics and traces output.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/error.h"
#include "common/json.h"
#include "obs/export.h"
#include "serve/client.h"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: g80servectl SOCKET ping|stats|metrics|traces|shutdown|"
               "launch|autotune|profile [key=value ...]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage();
  const std::string socket_path = argv[1];
  const std::string op = argv[2];

  try {
    g80::serve::JobRequest req;
    req.op = g80::serve::op_from_name(op);
    // Render format for the metrics/traces payloads; the wire payload is
    // always the same JSON, formatting happens entirely client-side.
    std::string format = req.op == g80::serve::Op::kMetrics ? "prom" : "json";
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) usage();
      const std::string key = arg.substr(0, eq);
      const std::string value = arg.substr(eq + 1);
      if (key == "kernel") {
        req.kernel = value;
      } else if (key == "n") {
        req.n = std::atoll(value.c_str());
      } else if (key == "seed") {
        req.seed = std::atoll(value.c_str());
      } else if (key == "tile") {
        req.tile = std::atoll(value.c_str());
      } else if (key == "variant") {
        req.variant = value;
      } else if (key == "device_class") {
        req.device_class = value;
      } else if (key == "fault") {
        req.fault.kind = value;
      } else if (key == "no_cache") {
        req.no_cache = value != "0";
      } else if (key == "format" &&
                 (req.op == g80::serve::Op::kMetrics ||
                  req.op == g80::serve::Op::kTraces)) {
        format = value;
      } else {
        usage();
      }
    }

    g80::serve::Client client(socket_path, "g80servectl");
    const g80::serve::Response r = client.call(req);
    if (r.ok() && req.op == g80::serve::Op::kMetrics && format == "prom") {
      const g80::JsonValue payload = g80::JsonValue::parse(r.result_json);
      std::fputs(g80::obs::prometheus_text(payload).c_str(), stdout);
      return 0;
    }
    if (r.ok() && req.op == g80::serve::Op::kTraces && format == "chrome") {
      const g80::JsonValue payload = g80::JsonValue::parse(r.result_json);
      std::printf("%s\n",
                  g80::obs::chrome_trace_from_traces(payload).c_str());
      return 0;
    }
    std::printf("%s\n", r.doc.dump().c_str());
    return r.ok() ? 0 : 1;
  } catch (const g80::Error& e) {
    std::fprintf(stderr, "g80servectl: %s\n", e.what());
    return 1;
  }
}
