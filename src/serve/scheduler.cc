#include "serve/scheduler.h"

#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/str.h"
#include "cudalite/device.h"

namespace g80::serve {

namespace {

struct Job {
  JobRequest req;
  Scheduler::Callback done;
  JobHooks hooks;
};

struct ClassQueue {
  std::deque<Job> jobs;
  int slots = 0;
};

}  // namespace

struct Scheduler::Impl {
  explicit Impl(PoolConfig cfg) : cfg(cfg) {
    queues["gtx"].slots = cfg.gtx_slots;
    queues["ultra"].slots = cfg.ultra_slots;
    queues["gts"].slots = cfg.gts_slots;
    for (const auto& [cls, q] : queues) {
      for (int i = 0; i < q.slots; ++i) {
        workers.emplace_back([this, cls = cls] { worker_loop(cls); });
      }
    }
  }

  void worker_loop(const std::string& cls) {
    Device dev(spec_for_class(cls));
    ClassQueue& q = queues.at(cls);
    for (;;) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return stopping || !q.jobs.empty(); });
        if (q.jobs.empty()) return;  // stopping and drained
        job = std::move(q.jobs.front());
        q.jobs.pop_front();
        ++stats_.running;
      }
      if (job.hooks.on_start) {
        try {
          job.hooks.on_start();
        } catch (...) {
        }
      }
      JobOutcome out;
      {
        // Route g80resil's per-attempt callbacks (fired on this thread,
        // inline with the retry loop) to this job's observer.
        ScopedAttemptObserver scoped(job.hooks.attempts);
        out = run_job(dev, job.req, cfg.policy);
      }
      if (out.status != Status::kSuccess) {
        // Cross-session isolation: tear the device down to a pristine state
        // before the next session's job binds to this slot.  Drain the
        // sticky error too — run_job already reported it.
        dev.get_last_error();
        dev.reset();
        if (job.hooks.on_event) {
          try {
            job.hooks.on_event("device_reset",
                               std::string(status_token(out.status)));
          } catch (...) {
          }
        }
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        --stats_.running;
        if (out.status == Status::kSuccess) {
          ++stats_.jobs_ok;
        } else {
          ++stats_.jobs_failed;
          ++stats_.device_resets;
        }
        stats_.h2d_bytes += out.h2d_bytes;
        stats_.d2h_bytes += out.d2h_bytes;
        stats_.modeled_seconds += out.modeled_seconds;
      }
      try {
        job.done(out);
      } catch (...) {
        // No handler above this frame: an exception escaping a completion
        // callback would std::terminate the daemon for every tenant.  The
        // job's own session is the only party affected; keep the slot
        // serving.
      }
    }
  }

  PoolConfig cfg;
  mutable std::mutex mu;
  std::condition_variable cv;
  bool stopping = false;
  std::map<std::string, ClassQueue> queues;
  std::vector<std::thread> workers;
  SchedulerStats stats_;
};

Scheduler::Scheduler(PoolConfig cfg) : impl_(std::make_unique<Impl>(cfg)) {}

Scheduler::~Scheduler() { stop(); }

void Scheduler::submit(const JobRequest& req, Callback done, JobHooks hooks) {
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    if (im.stopping) {
      throw StatusError(Status::kNotReady, "scheduler is shutting down");
    }
    auto it = im.queues.find(req.device_class);
    if (it == im.queues.end() || it->second.slots == 0) {
      throw StatusError(Status::kInvalidValue,
                        cat("no device slots for class \"", req.device_class,
                            "\""));
    }
    if (it->second.jobs.size() >= im.cfg.max_queue_depth) {
      ++im.stats_.rejected_not_ready;
      throw StatusError(Status::kNotReady,
                        cat("queue for \"", req.device_class, "\" is full (",
                            im.cfg.max_queue_depth, " jobs)"));
    }
    it->second.jobs.push_back(Job{req, std::move(done), std::move(hooks)});
  }
  im.cv.notify_all();
}

void Scheduler::stop() {
  Impl& im = *impl_;
  std::vector<Job> orphans;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    if (im.stopping) return;
    im.stopping = true;
    for (auto& [cls, q] : im.queues) {
      for (auto& job : q.jobs) orphans.push_back(std::move(job));
      q.jobs.clear();
    }
  }
  im.cv.notify_all();
  for (auto& t : im.workers) t.join();
  im.workers.clear();
  JobOutcome rejected;
  rejected.status = Status::kNotReady;
  rejected.error = "scheduler stopped before the job ran";
  for (auto& job : orphans) job.done(rejected);
}

SchedulerStats Scheduler::stats() const {
  const Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  SchedulerStats s = im.stats_;
  s.slots = im.cfg.total_slots();
  s.queue_depth = 0;
  for (const auto& [cls, q] : im.queues) {
    s.queue_depth += q.jobs.size();
    s.classes.push_back(ClassQueueStats{cls, q.jobs.size(), q.slots});
  }
  return s;
}

}  // namespace g80::serve
