#include "serve/cache.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>

#include "common/str.h"

namespace g80::serve {

ResultCache::ResultCache(std::size_t max_entries, std::string disk_dir)
    : max_entries_(max_entries == 0 ? 1 : max_entries),
      disk_dir_(std::move(disk_dir)) {}

std::string ResultCache::disk_path(std::uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof name, "%016" PRIx64 ".json", key);
  return cat(disk_dir_, "/", name);
}

void ResultCache::touch(std::uint64_t key) {
  auto it = mem_.find(key);
  lru_.erase(it->second.pos);
  lru_.push_front(key);
  it->second.pos = lru_.begin();
}

ResultCache::Tier ResultCache::lookup(std::uint64_t key,
                                      std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = mem_.find(key); it != mem_.end()) {
    payload = it->second.payload;
    touch(key);
    ++counters_.mem_hits;
    return Tier::kMemory;
  }
  if (!disk_dir_.empty()) {
    if (std::FILE* f = std::fopen(disk_path(key).c_str(), "rb")) {
      std::string data;
      char chunk[4096];
      std::size_t got;
      while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
        data.append(chunk, got);
      }
      const bool ok = std::ferror(f) == 0;
      std::fclose(f);
      if (ok && !data.empty()) {
        payload = data;
        ++counters_.disk_hits;
        // Promote to memory so repeats hit the fast tier.
        lru_.push_front(key);
        mem_[key] = Entry{std::move(data), /*on_disk=*/true, lru_.begin()};
        while (mem_.size() > max_entries_) {
          mem_.erase(lru_.back());
          lru_.pop_back();
          ++counters_.evictions;
        }
        return Tier::kDisk;
      }
    }
  }
  ++counters_.misses;
  return Tier::kMiss;
}

void ResultCache::store(std::uint64_t key, const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.stores;
  auto it = mem_.find(key);
  if (it != mem_.end()) {
    touch(key);
    // Deterministic results: same key implies same payload, so only the
    // disk tier can still need work (an earlier write may have failed).
    if (disk_dir_.empty() || it->second.on_disk) return;
  } else {
    lru_.push_front(key);
    it = mem_.emplace(key, Entry{payload, /*on_disk=*/false, lru_.begin()})
             .first;
    while (mem_.size() > max_entries_) {
      mem_.erase(lru_.back());
      lru_.pop_back();
      ++counters_.evictions;
    }
    if (disk_dir_.empty()) return;
  }
  if (write_disk(key, payload)) it->second.on_disk = true;
}

bool ResultCache::write_disk(std::uint64_t key, const std::string& payload) {
  if (!disk_dir_ready_) {
    if (::mkdir(disk_dir_.c_str(), 0755) != 0 && errno != EEXIST) {
      ++counters_.disk_errors;
      return false;
    }
    disk_dir_ready_ = true;
  }
  // temp + rename: a crash mid-write leaves a stale .tmp, never a truncated
  // entry a later lookup could serve.
  const std::string final_path = disk_path(key);
  const std::string tmp_path = cat(final_path, ".tmp");
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    ++counters_.disk_errors;
    return false;
  }
  const bool wrote =
      std::fwrite(payload.data(), 1, payload.size(), f) == payload.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed ||
      std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    ++counters_.disk_errors;
    return false;
  }
  return true;
}

CacheCounters ResultCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::size_t ResultCache::mem_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mem_.size();
}

}  // namespace g80::serve
