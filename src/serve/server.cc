#include "serve/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/str.h"
#include "cudalite/device.h"
#include "hw/device_spec.h"
#include "serve/protocol.h"

namespace g80::serve {

namespace {

// One connected client.  Owned by shared_ptr: the session thread holds one
// reference and every in-flight scheduler callback holds another, so the
// socket and counters outlive whichever finishes last.
struct Session {
  Session(std::uint64_t id, int fd) : id(id), sock(fd) {}

  const std::uint64_t id;
  LineSocket sock;

  std::mutex write_mu;  // serializes response lines from all threads

  std::atomic<int> in_flight{0};  // queued + running jobs of this session

  // Remaining state is touched by the session thread and worker callbacks;
  // stats_mu guards it.
  std::mutex stats_mu;
  std::string name;
  std::uint64_t jobs_ok = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t cache_hits = 0;
  Status last_status = Status::kSuccess;
  TransferLedger ledger;  // per-client transfer accounting

  void write_response(const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mu);
    sock.write_line(line);
  }
};

// Pre-registered metric handles for the request path: one pointer chase per
// increment, no name lookup.  The whole bundle is absent (null) when
// metrics are disabled, so the disabled path costs one pointer test.
struct ServeMetrics {
  explicit ServeMetrics(obs::MetricsRegistry& reg)
      : requests(reg.counter("serve.requests_total")),
        responses(reg.counter("serve.responses_total")),
        errors(reg.counter("serve.errors_total")),
        jobs_ok(reg.counter("serve.jobs_ok_total")),
        jobs_failed(reg.counter("serve.jobs_failed_total")),
        retries(reg.counter("serve.job_retries_total")),
        device_resets(reg.counter("serve.device_resets_total")),
        cache_mem_hits(reg.counter("serve.cache.mem_hits_total")),
        cache_disk_hits(reg.counter("serve.cache.disk_hits_total")),
        cache_misses(reg.counter("serve.cache.misses_total")),
        traces_total(reg.counter("serve.traces_total")),
        traces_complete(reg.counter("serve.traces_complete_total")) {}

  obs::Counter* requests;
  obs::Counter* responses;
  obs::Counter* errors;
  obs::Counter* jobs_ok;
  obs::Counter* jobs_failed;
  obs::Counter* retries;
  obs::Counter* device_resets;
  obs::Counter* cache_mem_hits;
  obs::Counter* cache_disk_hits;
  obs::Counter* cache_misses;
  obs::Counter* traces_total;
  obs::Counter* traces_complete;
};

// Routes g80resil's per-attempt callbacks (fired on the scheduler worker
// running the job) into the request's trace and the retry counter.  Kept
// alive by the completion callback's shared_ptr until the job is done.
class TraceAttemptObserver : public AttemptObserver {
 public:
  TraceAttemptObserver(std::shared_ptr<obs::RequestTrace> tr, ServeMetrics* m)
      : tr_(std::move(tr)), m_(m) {}

  void on_attempt_start(int attempt, int fallback_level) override {
    if (m_ != nullptr && attempt > 0) m_->retries->inc();
    if (tr_ != nullptr) {
      tr_->event("attempt_start", cat("attempt ", attempt, " fallback ",
                                      fallback_level));
    }
  }
  void on_attempt_failure(int attempt, Status status,
                          bool will_retry) override {
    if (tr_ != nullptr) {
      tr_->event(will_retry ? "attempt_retry" : "attempt_failed",
                 std::string(status_token(status)));
    }
    (void)attempt;
  }
  void on_attempt_success(int attempt, bool recovered) override {
    if (tr_ != nullptr) {
      tr_->event(recovered ? "attempt_recovered" : "attempt_ok",
                 cat("attempt ", attempt));
    }
  }

 private:
  std::shared_ptr<obs::RequestTrace> tr_;
  ServeMetrics* m_;
};

// Worker-thread span state of one scheduled job: written by on_start and
// read by the completion callback, both on the slot's worker thread (the
// orphaned-at-stop path reads the initial values instead, unraced).
struct JobTraceCtx {
  int queue_span = -1;
  int sim_span = -1;
};

std::string error_response(std::int64_t id, Status s, std::string_view msg) {
  JsonWriter w;
  w.begin_object();
  w.kv("id", static_cast<std::uint64_t>(id));
  w.kv("status", status_token(s));
  w.kv("error", msg);
  w.end_object();
  return w.str();
}

std::string ok_response(std::int64_t id, std::string_view source,
                        std::string_view result_payload) {
  JsonWriter w;
  w.begin_object();
  w.kv("id", static_cast<std::uint64_t>(id));
  w.kv("status", "ok");
  if (!source.empty()) w.kv("source", source);
  w.key("result");
  w.raw(result_payload);
  w.end_object();
  return w.str();
}

}  // namespace

struct Server::Impl {
  explicit Impl(ServerConfig cfg)
      : cfg(std::move(cfg)),
        cache(this->cfg.cache_entries, this->cfg.cache_dir),
        sched(this->cfg.pool),
        trace_ring(this->cfg.obs.trace_ring),
        log(this->cfg.obs.log_level, this->cfg.obs.log_json),
        obs_epoch(obs::steady_seconds()) {
    if (this->cfg.obs.log_sink) log.set_sink(this->cfg.obs.log_sink);
    if (this->cfg.obs.metrics) {
      m = std::make_unique<ServeMetrics>(registry);
      total_hist = registry.histogram("serve.latency.total");
      for (const char* phase : {"parse", "cache_lookup", "admission",
                                "queue_wait", "simulate", "cache_store",
                                "respond"}) {
        phase_hists[phase] = registry.histogram(cat("serve.latency.", phase));
      }
      // Instantaneous state is sampled at scrape time only — callback
      // gauges add zero steady-state work to the request path.
      registry.gauge_callback("serve.sessions.active", [this] {
        std::lock_guard<std::mutex> lock(mu);
        return static_cast<std::int64_t>(sessions.size());
      });
      registry.gauge_callback("serve.queue.depth", [this] {
        return static_cast<std::int64_t>(sched.stats().queue_depth);
      });
      for (const char* cls : {"gtx", "ultra", "gts"}) {
        registry.gauge_callback(
            cat("serve.queue.depth.", cls), [this, cls] {
              for (const ClassQueueStats& c : sched.stats().classes) {
                if (c.device_class == cls) {
                  return static_cast<std::int64_t>(c.queue_depth);
                }
              }
              return std::int64_t{0};
            });
      }
      registry.gauge_callback("serve.running", [this] {
        return static_cast<std::int64_t>(sched.stats().running);
      });
      registry.gauge_callback("serve.queue.rejected_not_ready", [this] {
        return static_cast<std::int64_t>(sched.stats().rejected_not_ready);
      });
      registry.gauge_callback("serve.pool.h2d_bytes", [this] {
        return static_cast<std::int64_t>(sched.stats().h2d_bytes);
      });
      registry.gauge_callback("serve.pool.d2h_bytes", [this] {
        return static_cast<std::int64_t>(sched.stats().d2h_bytes);
      });
      registry.gauge_callback("serve.pool.modeled_micros", [this] {
        return static_cast<std::int64_t>(sched.stats().modeled_seconds * 1e6);
      });
      registry.gauge_callback("serve.cache.mem_entries", [this] {
        return static_cast<std::int64_t>(cache.mem_entries());
      });
      registry.gauge_callback("serve.cache.stores", [this] {
        return static_cast<std::int64_t>(cache.counters().stores);
      });
      registry.gauge_callback("serve.cache.evictions", [this] {
        return static_cast<std::int64_t>(cache.counters().evictions);
      });
      registry.gauge_callback("serve.cache.disk_errors", [this] {
        return static_cast<std::int64_t>(cache.counters().disk_errors);
      });
    }
  }

  // Tracing (and span-fed histograms) are live when either consumer is on.
  bool obs_enabled() const {
    return m != nullptr || trace_ring.capacity() > 0;
  }

  std::shared_ptr<obs::RequestTrace> make_trace(std::uint64_t session_id) {
    if (!obs_enabled()) return nullptr;
    return std::make_shared<obs::RequestTrace>(session_id,
                                               obs::steady_seconds());
  }

  // Folds a finished trace into the metrics histograms, the ring, and the
  // logs.  `status` is the response's protocol status token; `source` is
  // the job response's source tag ("sim", "cache_mem", ...) or empty.
  void finish_trace(const std::shared_ptr<obs::RequestTrace>& tr,
                    std::string_view status, std::string_view source) {
    if (tr == nullptr) return;
    obs::TraceRecord rec = tr->finish(std::string(status));
    rec.start_s -= obs_epoch;  // ring records are daemon-relative
    if (m != nullptr) {
      m->responses->inc();
      if (status != "ok") m->errors->inc();
      m->traces_total->inc();
      if (rec.complete) m->traces_complete->inc();
      total_hist->observe(rec.total_s);
      for (const obs::Span& sp : rec.spans) {
        auto it = phase_hists.find(sp.name);
        if (it != phase_hists.end()) it->second->observe(sp.seconds());
      }
    }
    const bool slow = cfg.obs.slow_request_s > 0 &&
                      rec.total_s >= cfg.obs.slow_request_s;
    if (slow || log.enabled(obs::LogLevel::kDebug)) {
      auto ev = slow ? log.warn("slow_request") : log.debug("request_done");
      ev.field("session", rec.session)
          .field("id", rec.request_id)
          .field("op", rec.op)
          .field("status", status)
          .field("total_s", rec.total_s);
      if (!source.empty()) ev.field("source", source);
      for (const obs::Span& sp : rec.spans) {
        ev.field(cat(sp.name, "_s"), sp.seconds());
      }
    }
    trace_ring.add(std::move(rec));
  }

  void accept_loop() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener shut down
      }
      std::vector<std::thread> done;
      std::uint64_t new_session_id = 0;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (stop_requested) {
          ::close(fd);
          return;
        }
        auto session = std::make_shared<Session>(next_session_id++, fd);
        ++accepted;
        sessions.push_back(session);
        std::thread t([this, session] { session_loop(session); });
        session_threads.emplace(session->id, std::move(t));
        done.swap(finished_threads);
        new_session_id = session->id;
      }
      log.info("session_accepted").field("session", new_session_id);
      // Reap sessions that disconnected since the last accept, so a
      // long-running daemon's thread handles and Session records don't
      // grow with its connection count.
      for (std::thread& t : done) t.join();
    }
  }

  void session_loop(std::shared_ptr<Session> s) {
    std::string line;
    for (;;) {
      try {
        if (!s->sock.read_line(line)) break;
      } catch (const Error&) {
        break;  // mid-line EOF or socket reset
      }
      if (line.empty()) continue;
      handle_line(s, line);
      if (stopping_after_response) break;
    }
    if (log.enabled(obs::LogLevel::kDebug)) {
      std::lock_guard<std::mutex> lock(s->stats_mu);
      log.debug("session_closed")
          .field("session", s->id)
          .field("client", s->name)
          .field("jobs_ok", s->jobs_ok)
          .field("jobs_failed", s->jobs_failed)
          .field("cache_hits", s->cache_hits);
    }
    // Drop this session's record (in-flight callbacks keep the Session
    // alive via their own shared_ptr) and park the thread handle for the
    // accept loop to join — a thread cannot join itself.  During shutdown
    // the map entry may already have been claimed for joining; skip then.
    std::lock_guard<std::mutex> lock(mu);
    sessions.erase(std::remove(sessions.begin(), sessions.end(), s),
                   sessions.end());
    if (auto it = session_threads.find(s->id); it != session_threads.end()) {
      finished_threads.push_back(std::move(it->second));
      session_threads.erase(it);
    }
  }

  // Writes an ok response inside the trace's respond span.
  void respond_ok(const std::shared_ptr<Session>& s,
                  const std::shared_ptr<obs::RequestTrace>& tr,
                  std::int64_t id, std::string_view source,
                  std::string_view payload) {
    const int span = tr != nullptr ? tr->open("respond") : -1;
    s->write_response(ok_response(id, source, payload));
    if (tr != nullptr) tr->close(span);
  }

  // Error-response path shared by every failed request: unwinds the trace
  // (closing whatever phase the failure interrupted), responds, finishes.
  void respond_error(const std::shared_ptr<Session>& s,
                     const std::shared_ptr<obs::RequestTrace>& tr,
                     std::int64_t id, Status st, std::string_view msg) {
    note_session_error(s, st);
    if (tr != nullptr) tr->close_all(std::string(status_token(st)));
    const int span = tr != nullptr ? tr->open("respond") : -1;
    try {
      s->write_response(error_response(id, st, msg));
    } catch (const Error&) {
    }
    if (tr != nullptr) tr->close(span);
    if (log.enabled(obs::LogLevel::kDebug)) {
      log.debug("request_error")
          .field("session", s->id)
          .field("id", id)
          .field("status", status_token(st))
          .field("error", msg);
    }
    finish_trace(tr, status_token(st), "");
  }

  void handle_line(const std::shared_ptr<Session>& s, const std::string& line) {
    if (m != nullptr) m->requests->inc();
    const std::shared_ptr<obs::RequestTrace> tr = make_trace(s->id);
    std::int64_t id = 0;
    try {
      const int parse_span = tr != nullptr ? tr->open("parse") : -1;
      const JsonValue doc = JsonValue::parse(line);
      if (doc.is_object()) id = doc.get_int("id", 0);
      const JobRequest req = parse_request(doc);
      id = req.id;
      if (tr != nullptr) {
        tr->set_identity(std::string(op_name(req.op)), id);
        tr->close(parse_span);
      }
      switch (req.op) {
        case Op::kPing: {
          JsonWriter w;
          w.begin_object();
          w.kv("pong", true);
          w.kv("protocol_version", kProtocolVersion);
          w.end_object();
          respond_ok(s, tr, id, "", w.str());
          finish_trace(tr, "ok", "");
          return;
        }
        case Op::kHello: {
          {
            std::lock_guard<std::mutex> lock(s->stats_mu);
            s->name = req.client_name;
          }
          JsonWriter w;
          w.begin_object();
          w.kv("session", s->id);
          w.kv("protocol_version", kProtocolVersion);
          w.kv("model_version", kModelVersion);
          w.end_object();
          respond_ok(s, tr, id, "", w.str());
          finish_trace(tr, "ok", "");
          return;
        }
        case Op::kStats:
          respond_ok(s, tr, id, "", stats_payload(s));
          finish_trace(tr, "ok", "");
          return;
        case Op::kMetrics: {
          if (m == nullptr) {
            throw StatusError(Status::kNotPermitted,
                              "metrics are disabled on this server");
          }
          // The snapshot is taken before this request's own response is
          // counted, so a scraper's delta between two scrapes covers
          // exactly the earlier scrape's response plus everything between.
          respond_ok(s, tr, id, "", obs::metrics_json(registry.snapshot()));
          finish_trace(tr, "ok", "");
          return;
        }
        case Op::kTraces: {
          if (trace_ring.capacity() == 0) {
            throw StatusError(Status::kNotPermitted,
                              "request tracing is disabled on this server");
          }
          respond_ok(s, tr, id, "",
                     obs::traces_json(trace_ring.snapshot()));
          finish_trace(tr, "ok", "");
          return;
        }
        case Op::kShutdown: {
          JsonWriter w;
          w.begin_object();
          w.kv("stopping", true);
          w.end_object();
          respond_ok(s, tr, id, "", w.str());
          finish_trace(tr, "ok", "");
          log.info("shutdown_requested").field("session", s->id);
          stopping_after_response = true;
          request_shutdown();
          return;
        }
        case Op::kLaunch:
        case Op::kAutotune:
        case Op::kProfile:
          dispatch_job(s, req, tr);
          return;
      }
    } catch (const StatusError& e) {
      respond_error(s, tr, id, e.status(), e.what());
    } catch (const Error& e) {
      respond_error(s, tr, id, Status::kInvalidValue, e.what());
    }
  }

  void dispatch_job(const std::shared_ptr<Session>& s, const JobRequest& req,
                    const std::shared_ptr<obs::RequestTrace>& tr) {
    // Pure validation + key derivation before any device is involved.
    const DeviceSpec spec = spec_for_class(req.device_class);
    const LaunchConfig resolved = resolve_config(req);
    const std::uint64_t key = job_cache_key(req, resolved,
                                            device_spec_hash(spec));

    // Fault jobs exist to fail; no_cache jobs opted out.  Neither consults
    // the cache, and their outcomes never enter it.
    const bool cacheable = !req.no_cache && !req.fault.enabled();
    if (cacheable) {
      std::string payload;
      const int lookup_span = tr != nullptr ? tr->open("cache_lookup") : -1;
      const ResultCache::Tier tier = cache.lookup(key, payload);
      const bool mem = tier == ResultCache::Tier::kMemory;
      if (tr != nullptr) {
        tr->close(lookup_span, tier == ResultCache::Tier::kMiss
                                   ? "miss"
                                   : (mem ? "mem" : "disk"));
      }
      if (m != nullptr) {
        if (tier == ResultCache::Tier::kMiss) {
          m->cache_misses->inc();
        } else {
          (mem ? m->cache_mem_hits : m->cache_disk_hits)->inc();
        }
      }
      if (tier != ResultCache::Tier::kMiss) {
        {
          std::lock_guard<std::mutex> lock(s->stats_mu);
          ++s->cache_hits;
          ++s->jobs_ok;
        }
        const std::string_view source = mem ? "cache_mem" : "cache_disk";
        respond_ok(s, tr, req.id, source, payload);
        finish_trace(tr, "ok", source);
        return;
      }
    }

    // Per-session admission: reject, don't queue, past the in-flight cap.
    // (fetch_add + re-check keeps concurrent pipelined requests honest.)
    const int admission_span = tr != nullptr ? tr->open("admission") : -1;
    if (s->in_flight.fetch_add(1) >= cfg.max_inflight_per_session) {
      s->in_flight.fetch_sub(1);
      if (tr != nullptr) tr->close(admission_span, "rejected");
      throw StatusError(Status::kNotReady,
                        cat("session has ", cfg.max_inflight_per_session,
                            " jobs in flight"));
    }
    if (tr != nullptr) tr->close(admission_span);

    // Observation hooks for the scheduler/worker half of the pipeline:
    // queue_wait closes (and simulate opens) on the worker thread the
    // moment the job binds to a slot; resil attempts and device resets land
    // as trace events.  The completion callback's captures keep the trace
    // and observer alive until the job is fully answered.
    JobHooks hooks;
    auto ctx = std::make_shared<JobTraceCtx>();
    std::shared_ptr<TraceAttemptObserver> attempts;
    if (tr != nullptr) {
      ctx->queue_span = tr->open("queue_wait");
      hooks.on_start = [tr, ctx] {
        tr->close(ctx->queue_span);
        ctx->sim_span = tr->open("simulate");
      };
      hooks.on_event = [this, tr](const std::string& name,
                                  const std::string& note) {
        tr->event(name, note);
        if (m != nullptr && name == "device_reset") m->device_resets->inc();
      };
      attempts = std::make_shared<TraceAttemptObserver>(tr, m.get());
      hooks.attempts = attempts.get();
    }
    const std::int64_t id = req.id;
    try {
      sched.submit(
          req,
          [this, s, id, key, cacheable, tr, ctx,
           attempts](const JobOutcome& out) {
            s->in_flight.fetch_sub(1);
            {
              std::lock_guard<std::mutex> lock(s->stats_mu);
              if (out.status == Status::kSuccess) {
                ++s->jobs_ok;
              } else {
                ++s->jobs_failed;
                s->last_status = out.status;
              }
              if (out.h2d_bytes > 0) s->ledger.record_h2d(out.h2d_bytes);
              if (out.d2h_bytes > 0) s->ledger.record_d2h(out.d2h_bytes);
            }
            if (m != nullptr) {
              (out.status == Status::kSuccess ? m->jobs_ok : m->jobs_failed)
                  ->inc();
            }
            if (tr != nullptr && ctx->sim_span >= 0) {
              tr->close(ctx->sim_span,
                        std::string(status_token(out.status)));
            }
            if (out.status == Status::kSuccess && cacheable) {
              // This callback runs on a scheduler worker with no handler
              // above it — an escaping exception would std::terminate the
              // daemon.  store() swallows disk-tier failures itself; this
              // guard covers anything else (e.g. allocation failure copying
              // the payload).
              const int store_span =
                  tr != nullptr ? tr->open("cache_store") : -1;
              try {
                cache.store(key, out.payload);
              } catch (...) {
              }
              if (tr != nullptr) tr->close(store_span);
            }
            const int respond_span = tr != nullptr ? tr->open("respond") : -1;
            try {
              if (out.status == Status::kSuccess) {
                s->write_response(ok_response(id, "sim", out.payload));
              } else {
                s->write_response(error_response(id, out.status, out.error));
              }
            } catch (const Error&) {
              // Session hung up before its job finished; nothing to tell it.
            }
            if (tr != nullptr) {
              tr->close(respond_span);
              // Jobs orphaned by Scheduler::stop never ran: their
              // queue_wait span is still open.  Close everything so the
              // record is well-formed either way.
              tr->close_all("");
            }
            finish_trace(tr, status_token(out.status),
                         out.status == Status::kSuccess ? "sim" : "");
          },
          std::move(hooks));
    } catch (...) {
      s->in_flight.fetch_sub(1);
      throw;
    }
  }

  std::string stats_payload(const std::shared_ptr<Session>& s) {
    const CacheCounters cc = cache.counters();
    const SchedulerStats ss = sched.stats();
    JsonWriter w;
    w.begin_object();
    w.key("server");
    w.begin_object();
    w.kv("sessions_accepted", accepted.load());
    w.kv("slots", ss.slots);
    w.kv("running", ss.running);
    w.kv("queue_depth", static_cast<std::uint64_t>(ss.queue_depth));
    w.kv("jobs_ok", ss.jobs_ok);
    w.kv("jobs_failed", ss.jobs_failed);
    w.kv("device_resets", ss.device_resets);
    w.kv("rejected_not_ready", ss.rejected_not_ready);
    w.kv("h2d_bytes", ss.h2d_bytes);
    w.kv("d2h_bytes", ss.d2h_bytes);
    w.kv("modeled_seconds", ss.modeled_seconds);
    // Per-class queue state — the aggregate queue_depth above can hide one
    // saturated class behind two idle ones.
    w.key("queues");
    w.begin_object();
    for (const ClassQueueStats& c : ss.classes) {
      w.key(c.device_class);
      w.begin_object();
      w.kv("queued", static_cast<std::uint64_t>(c.queue_depth));
      w.kv("slots", c.slots);
      w.end_object();
    }
    w.end_object();
    w.key("cache");
    w.begin_object();
    w.kv("mem_hits", cc.mem_hits);
    w.kv("disk_hits", cc.disk_hits);
    w.kv("misses", cc.misses);
    w.kv("stores", cc.stores);
    w.kv("evictions", cc.evictions);
    w.kv("disk_errors", cc.disk_errors);
    w.kv("mem_entries", static_cast<std::uint64_t>(cache.mem_entries()));
    w.end_object();
    w.end_object();
    w.key("session");
    w.begin_object();
    std::lock_guard<std::mutex> lock(s->stats_mu);
    w.kv("id", s->id);
    w.kv("client", s->name);
    w.kv("in_flight", s->in_flight.load());
    w.kv("jobs_ok", s->jobs_ok);
    w.kv("jobs_failed", s->jobs_failed);
    w.kv("cache_hits", s->cache_hits);
    w.kv("last_status", status_token(s->last_status));
    w.kv("h2d_bytes", s->ledger.lifetime_h2d_bytes());
    w.kv("d2h_bytes", s->ledger.lifetime_d2h_bytes());
    w.end_object();
    w.end_object();
    return w.str();
  }

  void note_session_error(const std::shared_ptr<Session>& s, Status st) {
    std::lock_guard<std::mutex> lock(s->stats_mu);
    ++s->jobs_failed;
    s->last_status = st;
  }

  void request_shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu);
      stop_requested = true;
    }
    cv.notify_all();
  }

  ServerConfig cfg;
  ResultCache cache;
  Scheduler sched;

  // g80obs state.  The registry always exists (it is one mutex and an empty
  // vector when unused); `m` being null is the metrics-off fast path.
  obs::MetricsRegistry registry;
  std::unique_ptr<ServeMetrics> m;
  obs::LatencyHistogram* total_hist = nullptr;
  std::unordered_map<std::string, obs::LatencyHistogram*> phase_hists;
  obs::TraceRing trace_ring;
  obs::Logger log;
  const double obs_epoch;  // steady-clock origin of ring-record timestamps

  int listen_fd = -1;
  std::thread accept_thread;
  std::mutex mu;
  std::condition_variable cv;
  bool stop_requested = false;
  bool torn_down = false;
  // Live sessions and their reader threads, keyed by session id; threads
  // whose loops have exited move to finished_threads until a join point
  // (the next accept, or shutdown).
  std::vector<std::shared_ptr<Session>> sessions;
  std::unordered_map<std::uint64_t, std::thread> session_threads;
  std::vector<std::thread> finished_threads;
  std::uint64_t next_session_id = 1;
  std::atomic<std::uint64_t> accepted{0};
  // Set by the shutdown op's session so its loop exits after responding.
  thread_local static bool stopping_after_response;
};

thread_local bool Server::Impl::stopping_after_response = false;

Server::Server(ServerConfig cfg) : impl_(std::make_unique<Impl>(std::move(cfg))) {}

Server::~Server() { shutdown(); }

void Server::start() {
  Impl& im = *impl_;
  im.listen_fd = listen_unix(im.cfg.socket_path);
  im.accept_thread = std::thread([&im] { im.accept_loop(); });
}

void Server::wait() {
  Impl& im = *impl_;
  std::unique_lock<std::mutex> lock(im.mu);
  im.cv.wait(lock, [&im] { return im.stop_requested; });
}

void Server::request_shutdown() { impl_->request_shutdown(); }

void Server::shutdown() {
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    if (im.torn_down) return;
    im.torn_down = true;
    im.stop_requested = true;
  }
  im.cv.notify_all();
  if (im.listen_fd >= 0) {
    ::shutdown(im.listen_fd, SHUT_RDWR);
  }
  if (im.accept_thread.joinable()) im.accept_thread.join();
  if (im.listen_fd >= 0) {
    ::close(im.listen_fd);
    im.listen_fd = -1;
    ::unlink(im.cfg.socket_path.c_str());
  }
  // Unblock session readers, then let the scheduler finish running jobs so
  // their callbacks fire (onto now-dead sockets, harmlessly).
  std::vector<std::shared_ptr<Session>> sessions;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    sessions = im.sessions;
    for (auto& [id, t] : im.session_threads) threads.push_back(std::move(t));
    im.session_threads.clear();
    for (auto& t : im.finished_threads) threads.push_back(std::move(t));
    im.finished_threads.clear();
  }
  for (const auto& s : sessions) ::shutdown(s->sock.fd(), SHUT_RDWR);
  for (auto& t : threads) t.join();
  im.sched.stop();
  {
    std::lock_guard<std::mutex> lock(im.mu);
    im.sessions.clear();
  }
}

const ServerConfig& Server::config() const { return impl_->cfg; }

CacheCounters Server::cache_counters() const { return impl_->cache.counters(); }

SchedulerStats Server::scheduler_stats() const { return impl_->sched.stats(); }

obs::MetricsSnapshot Server::metrics_snapshot() const {
  if (impl_->m == nullptr) return {};
  return impl_->registry.snapshot();
}

std::vector<obs::TraceRecord> Server::traces() const {
  return impl_->trace_ring.snapshot();
}

obs::Logger& Server::logger() { return impl_->log; }

std::uint64_t Server::sessions_accepted() const {
  return impl_->accepted.load();
}

std::size_t Server::active_sessions() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->sessions.size();
}

}  // namespace g80::serve
