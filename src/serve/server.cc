#include "serve/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/str.h"
#include "cudalite/device.h"
#include "hw/device_spec.h"
#include "serve/protocol.h"

namespace g80::serve {

namespace {

// One connected client.  Owned by shared_ptr: the session thread holds one
// reference and every in-flight scheduler callback holds another, so the
// socket and counters outlive whichever finishes last.
struct Session {
  Session(std::uint64_t id, int fd) : id(id), sock(fd) {}

  const std::uint64_t id;
  LineSocket sock;

  std::mutex write_mu;  // serializes response lines from all threads

  std::atomic<int> in_flight{0};  // queued + running jobs of this session

  // Remaining state is touched by the session thread and worker callbacks;
  // stats_mu guards it.
  std::mutex stats_mu;
  std::string name;
  std::uint64_t jobs_ok = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t cache_hits = 0;
  Status last_status = Status::kSuccess;
  TransferLedger ledger;  // per-client transfer accounting

  void write_response(const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mu);
    sock.write_line(line);
  }
};

std::string error_response(std::int64_t id, Status s, std::string_view msg) {
  JsonWriter w;
  w.begin_object();
  w.kv("id", static_cast<std::uint64_t>(id));
  w.kv("status", status_token(s));
  w.kv("error", msg);
  w.end_object();
  return w.str();
}

std::string ok_response(std::int64_t id, std::string_view source,
                        std::string_view result_payload) {
  JsonWriter w;
  w.begin_object();
  w.kv("id", static_cast<std::uint64_t>(id));
  w.kv("status", "ok");
  if (!source.empty()) w.kv("source", source);
  w.key("result");
  w.raw(result_payload);
  w.end_object();
  return w.str();
}

}  // namespace

struct Server::Impl {
  explicit Impl(ServerConfig cfg)
      : cfg(std::move(cfg)),
        cache(this->cfg.cache_entries, this->cfg.cache_dir),
        sched(this->cfg.pool) {}

  void accept_loop() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener shut down
      }
      std::vector<std::thread> done;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (stop_requested) {
          ::close(fd);
          return;
        }
        auto session = std::make_shared<Session>(next_session_id++, fd);
        ++accepted;
        sessions.push_back(session);
        std::thread t([this, session] { session_loop(session); });
        session_threads.emplace(session->id, std::move(t));
        done.swap(finished_threads);
      }
      // Reap sessions that disconnected since the last accept, so a
      // long-running daemon's thread handles and Session records don't
      // grow with its connection count.
      for (std::thread& t : done) t.join();
    }
  }

  void session_loop(std::shared_ptr<Session> s) {
    std::string line;
    for (;;) {
      try {
        if (!s->sock.read_line(line)) break;
      } catch (const Error&) {
        break;  // mid-line EOF or socket reset
      }
      if (line.empty()) continue;
      handle_line(s, line);
      if (stopping_after_response) break;
    }
    // Drop this session's record (in-flight callbacks keep the Session
    // alive via their own shared_ptr) and park the thread handle for the
    // accept loop to join — a thread cannot join itself.  During shutdown
    // the map entry may already have been claimed for joining; skip then.
    std::lock_guard<std::mutex> lock(mu);
    sessions.erase(std::remove(sessions.begin(), sessions.end(), s),
                   sessions.end());
    if (auto it = session_threads.find(s->id); it != session_threads.end()) {
      finished_threads.push_back(std::move(it->second));
      session_threads.erase(it);
    }
  }

  void handle_line(const std::shared_ptr<Session>& s, const std::string& line) {
    std::int64_t id = 0;
    try {
      const JsonValue doc = JsonValue::parse(line);
      if (doc.is_object()) id = doc.get_int("id", 0);
      const JobRequest req = parse_request(doc);
      id = req.id;
      switch (req.op) {
        case Op::kPing: {
          JsonWriter w;
          w.begin_object();
          w.kv("pong", true);
          w.kv("protocol_version", kProtocolVersion);
          w.end_object();
          s->write_response(ok_response(id, "", w.str()));
          return;
        }
        case Op::kHello: {
          {
            std::lock_guard<std::mutex> lock(s->stats_mu);
            s->name = req.client_name;
          }
          JsonWriter w;
          w.begin_object();
          w.kv("session", s->id);
          w.kv("protocol_version", kProtocolVersion);
          w.kv("model_version", kModelVersion);
          w.end_object();
          s->write_response(ok_response(id, "", w.str()));
          return;
        }
        case Op::kStats:
          s->write_response(ok_response(id, "", stats_payload(s)));
          return;
        case Op::kShutdown: {
          JsonWriter w;
          w.begin_object();
          w.kv("stopping", true);
          w.end_object();
          s->write_response(ok_response(id, "", w.str()));
          stopping_after_response = true;
          request_shutdown();
          return;
        }
        case Op::kLaunch:
        case Op::kAutotune:
        case Op::kProfile:
          dispatch_job(s, req);
          return;
      }
    } catch (const StatusError& e) {
      note_session_error(s, e.status());
      try {
        s->write_response(error_response(id, e.status(), e.what()));
      } catch (const Error&) {
      }
    } catch (const Error& e) {
      note_session_error(s, Status::kInvalidValue);
      try {
        s->write_response(error_response(id, Status::kInvalidValue, e.what()));
      } catch (const Error&) {
      }
    }
  }

  void dispatch_job(const std::shared_ptr<Session>& s, const JobRequest& req) {
    // Pure validation + key derivation before any device is involved.
    const DeviceSpec spec = spec_for_class(req.device_class);
    const LaunchConfig resolved = resolve_config(req);
    const std::uint64_t key = job_cache_key(req, resolved,
                                            device_spec_hash(spec));

    // Fault jobs exist to fail; no_cache jobs opted out.  Neither consults
    // the cache, and their outcomes never enter it.
    const bool cacheable = !req.no_cache && !req.fault.enabled();
    if (cacheable) {
      std::string payload;
      const ResultCache::Tier tier = cache.lookup(key, payload);
      if (tier != ResultCache::Tier::kMiss) {
        {
          std::lock_guard<std::mutex> lock(s->stats_mu);
          ++s->cache_hits;
          ++s->jobs_ok;
        }
        s->write_response(ok_response(
            req.id,
            tier == ResultCache::Tier::kMemory ? "cache_mem" : "cache_disk",
            payload));
        return;
      }
    }

    // Per-session admission: reject, don't queue, past the in-flight cap.
    // (fetch_add + re-check keeps concurrent pipelined requests honest.)
    if (s->in_flight.fetch_add(1) >= cfg.max_inflight_per_session) {
      s->in_flight.fetch_sub(1);
      throw StatusError(Status::kNotReady,
                        cat("session has ", cfg.max_inflight_per_session,
                            " jobs in flight"));
    }
    const std::int64_t id = req.id;
    try {
      sched.submit(req, [this, s, id, key, cacheable](const JobOutcome& out) {
        s->in_flight.fetch_sub(1);
        {
          std::lock_guard<std::mutex> lock(s->stats_mu);
          if (out.status == Status::kSuccess) {
            ++s->jobs_ok;
          } else {
            ++s->jobs_failed;
            s->last_status = out.status;
          }
          if (out.h2d_bytes > 0) s->ledger.record_h2d(out.h2d_bytes);
          if (out.d2h_bytes > 0) s->ledger.record_d2h(out.d2h_bytes);
        }
        if (out.status == Status::kSuccess && cacheable) {
          // This callback runs on a scheduler worker with no handler above
          // it — an escaping exception would std::terminate the daemon.
          // store() swallows disk-tier failures itself; this guard covers
          // anything else (e.g. allocation failure copying the payload).
          try {
            cache.store(key, out.payload);
          } catch (...) {
          }
        }
        try {
          if (out.status == Status::kSuccess) {
            s->write_response(ok_response(id, "sim", out.payload));
          } else {
            s->write_response(error_response(id, out.status, out.error));
          }
        } catch (const Error&) {
          // Session hung up before its job finished; nothing to tell it.
        }
      });
    } catch (...) {
      s->in_flight.fetch_sub(1);
      throw;
    }
  }

  std::string stats_payload(const std::shared_ptr<Session>& s) {
    const CacheCounters cc = cache.counters();
    const SchedulerStats ss = sched.stats();
    JsonWriter w;
    w.begin_object();
    w.key("server");
    w.begin_object();
    w.kv("sessions_accepted", accepted.load());
    w.kv("slots", ss.slots);
    w.kv("running", ss.running);
    w.kv("queue_depth", static_cast<std::uint64_t>(ss.queue_depth));
    w.kv("jobs_ok", ss.jobs_ok);
    w.kv("jobs_failed", ss.jobs_failed);
    w.kv("device_resets", ss.device_resets);
    w.kv("rejected_not_ready", ss.rejected_not_ready);
    w.key("cache");
    w.begin_object();
    w.kv("mem_hits", cc.mem_hits);
    w.kv("disk_hits", cc.disk_hits);
    w.kv("misses", cc.misses);
    w.kv("stores", cc.stores);
    w.kv("evictions", cc.evictions);
    w.kv("disk_errors", cc.disk_errors);
    w.kv("mem_entries", static_cast<std::uint64_t>(cache.mem_entries()));
    w.end_object();
    w.end_object();
    w.key("session");
    w.begin_object();
    std::lock_guard<std::mutex> lock(s->stats_mu);
    w.kv("id", s->id);
    w.kv("client", s->name);
    w.kv("in_flight", s->in_flight.load());
    w.kv("jobs_ok", s->jobs_ok);
    w.kv("jobs_failed", s->jobs_failed);
    w.kv("cache_hits", s->cache_hits);
    w.kv("last_status", status_token(s->last_status));
    w.kv("h2d_bytes", s->ledger.lifetime_h2d_bytes());
    w.kv("d2h_bytes", s->ledger.lifetime_d2h_bytes());
    w.end_object();
    w.end_object();
    return w.str();
  }

  void note_session_error(const std::shared_ptr<Session>& s, Status st) {
    std::lock_guard<std::mutex> lock(s->stats_mu);
    ++s->jobs_failed;
    s->last_status = st;
  }

  void request_shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu);
      stop_requested = true;
    }
    cv.notify_all();
  }

  ServerConfig cfg;
  ResultCache cache;
  Scheduler sched;

  int listen_fd = -1;
  std::thread accept_thread;
  std::mutex mu;
  std::condition_variable cv;
  bool stop_requested = false;
  bool torn_down = false;
  // Live sessions and their reader threads, keyed by session id; threads
  // whose loops have exited move to finished_threads until a join point
  // (the next accept, or shutdown).
  std::vector<std::shared_ptr<Session>> sessions;
  std::unordered_map<std::uint64_t, std::thread> session_threads;
  std::vector<std::thread> finished_threads;
  std::uint64_t next_session_id = 1;
  std::atomic<std::uint64_t> accepted{0};
  // Set by the shutdown op's session so its loop exits after responding.
  thread_local static bool stopping_after_response;
};

thread_local bool Server::Impl::stopping_after_response = false;

Server::Server(ServerConfig cfg) : impl_(std::make_unique<Impl>(std::move(cfg))) {}

Server::~Server() { shutdown(); }

void Server::start() {
  Impl& im = *impl_;
  im.listen_fd = listen_unix(im.cfg.socket_path);
  im.accept_thread = std::thread([&im] { im.accept_loop(); });
}

void Server::wait() {
  Impl& im = *impl_;
  std::unique_lock<std::mutex> lock(im.mu);
  im.cv.wait(lock, [&im] { return im.stop_requested; });
}

void Server::request_shutdown() { impl_->request_shutdown(); }

void Server::shutdown() {
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    if (im.torn_down) return;
    im.torn_down = true;
    im.stop_requested = true;
  }
  im.cv.notify_all();
  if (im.listen_fd >= 0) {
    ::shutdown(im.listen_fd, SHUT_RDWR);
  }
  if (im.accept_thread.joinable()) im.accept_thread.join();
  if (im.listen_fd >= 0) {
    ::close(im.listen_fd);
    im.listen_fd = -1;
    ::unlink(im.cfg.socket_path.c_str());
  }
  // Unblock session readers, then let the scheduler finish running jobs so
  // their callbacks fire (onto now-dead sockets, harmlessly).
  std::vector<std::shared_ptr<Session>> sessions;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    sessions = im.sessions;
    for (auto& [id, t] : im.session_threads) threads.push_back(std::move(t));
    im.session_threads.clear();
    for (auto& t : im.finished_threads) threads.push_back(std::move(t));
    im.finished_threads.clear();
  }
  for (const auto& s : sessions) ::shutdown(s->sock.fd(), SHUT_RDWR);
  for (auto& t : threads) t.join();
  im.sched.stop();
  {
    std::lock_guard<std::mutex> lock(im.mu);
    im.sessions.clear();
  }
}

const ServerConfig& Server::config() const { return impl_->cfg; }

CacheCounters Server::cache_counters() const { return impl_->cache.counters(); }

SchedulerStats Server::scheduler_stats() const { return impl_->sched.stats(); }

std::uint64_t Server::sessions_accepted() const {
  return impl_->accepted.load();
}

std::size_t Server::active_sessions() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->sessions.size();
}

}  // namespace g80::serve
