// Overlap-aware modeled timeline for the g80rt stream runtime.
//
// The G80 pairs one compute engine with one DMA copy engine: kernels from
// different streams serialize on compute (the hardware runs one grid at a
// time), H2D/D2H copies serialize on the copy engine, but a copy may overlap
// an independent stream's kernel — the overlap CUDA streams expose and the
// paper's Table 3 transfer costs motivate hiding.
//
// Ops are committed in issue order (the order the host enqueued them, which
// the runtime reconstructs deterministically regardless of which worker
// thread finished first): an op starts at max(stream cursor, engine cursor)
// and holds both until start + duration.  Host-side ops (events, callbacks)
// consume no engine and so never serialize across streams.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace g80 {

enum class TimelineEngine {
  kCompute,  // kernel launches
  kCopy,     // H2D and D2H through the single DMA engine
  kHost,     // events, host callbacks: stream-ordered, no engine
};

std::string_view engine_name(TimelineEngine e);

// Optional sub-structure of a kernel span: one wave of thread blocks
// (the `blocks_per_SM x num_SMs` cohort that is resident at once).  The
// g80prof Chrome-trace exporter renders these as nested slices inside the
// kernel's compute-engine slice, making the wave cadence of a launch — and
// the tail wave of a poorly-sized grid — visually inspectable.
struct TimelineBlockSpan {
  std::uint64_t first_block = 0;  // linear block ids [first, last)
  std::uint64_t last_block = 0;
  double start_s = 0;  // relative to the op on entry to schedule(); absolute
  double end_s = 0;    // once stored in the committed TimelineSpan
};

// Sentinel for spans with no associated g80scope record.
inline constexpr std::uint64_t kNoScopeId = ~std::uint64_t{0};

struct TimelineSpan {
  std::uint64_t seq = 0;     // global issue order
  std::uint64_t stream = 0;  // issuing stream id
  TimelineEngine engine = TimelineEngine::kHost;
  double start_s = 0;
  double end_s = 0;
  std::string label;
  std::vector<TimelineBlockSpan> blocks;  // empty for non-kernel ops
  // g80scope record id for kernel spans launched with a scope session
  // attached (kNoScopeId otherwise); lets the Chrome-trace exporter align
  // the launch's counter tracks under this slice.
  std::uint64_t scope_id = kNoScopeId;

  double duration_s() const { return end_s - start_s; }
};

class Timeline {
 public:
  // Schedule the next op in issue order; returns the committed span.
  // `blocks` (optional) carries per-wave block spans with times relative to
  // the op's start; they are shifted to absolute time on commit.
  // `scope_id` tags kernel spans with their g80scope record, if any.
  const TimelineSpan& schedule(std::uint64_t stream, TimelineEngine engine,
                               double duration_s, std::string label,
                               std::vector<TimelineBlockSpan> blocks = {},
                               std::uint64_t scope_id = kNoScopeId);

  const std::vector<TimelineSpan>& spans() const { return spans_; }

  // Makespan: completion time of the last op (0 when empty).
  double total_seconds() const;
  // The no-overlap baseline: every op back to back on one engine.  The gap
  // to total_seconds() is what streams bought.
  double serialized_seconds() const;
  double engine_busy_seconds(TimelineEngine e) const;
  double stream_cursor(std::uint64_t stream) const;

  void clear();

 private:
  std::vector<TimelineSpan> spans_;
  std::vector<std::pair<std::uint64_t, double>> stream_cursors_;
  double engine_cursor_[2] = {0, 0};  // kCompute, kCopy
  std::uint64_t next_seq_ = 0;
};

}  // namespace g80
