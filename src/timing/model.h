// Analytical SM/memory timing model.
//
// Implements the first-order performance analysis the paper itself performs
// when explaining its measurements (potential throughput from instruction
// mix, latency hiding from warp count, bandwidth saturation from coalesced
// traffic), structured after Hong & Kim's MWP/CWP formulation.
//
// Inputs: the device spec, the kernel's occupancy, the grid size, and a
// TraceSummary from sampled thread blocks.  Output: predicted kernel time,
// achieved GFLOPS/bandwidth, and the binding bottleneck — the quantity
// Table 3's "architectural bottleneck" column reports.
#pragma once

#include <string_view>

#include "hw/device_spec.h"
#include "occupancy/occupancy.h"
#include "timing/trace.h"

namespace g80 {

enum class Bottleneck {
  kInstructionIssue,   // SP issue slots saturated (good place to be)
  kGlobalBandwidth,    // DRAM pins saturated
  kGlobalLatency,      // not enough warps to hide latency (MWP < CWP)
  kSynchronization,    // barrier stalls dominate (low block-level overlap)
  kIdle,               // grid too small to fill the machine
};

std::string_view bottleneck_name(Bottleneck b);

struct KernelTiming {
  // Headline results.
  double kernel_cycles = 0;
  double seconds = 0;            // device execution time, excl. launch overhead
  double gflops = 0;             // achieved, from traced lane-level flops
  double dram_gbs = 0;           // achieved DRAM bandwidth
  Bottleneck bottleneck = Bottleneck::kInstructionIssue;

  // Model internals (exposed for the advisor, benches and tests).
  double waves = 0;              // grid size / (blocks_per_SM x num_SMs)
  double wave_cycles = 0;
  double issue_floor_cycles = 0;     // compute/issue-bound wave time
  double latency_bound_cycles = 0;   // memory-latency-bound wave time
  double bandwidth_floor_cycles = 0; // DRAM-bound wave time
  double sync_stall_cycles = 0;      // added barrier exposure per wave
  double mwp = 0;                // memory warp parallelism
  double cwp = 0;                // computation warp parallelism
  double total_flops = 0;
  double total_dram_bytes = 0;
  // Ratio of global-memory cycles to computation cycles after shared memory
  // and caches are used (Table 3, "GPU exec ratio" column analogue).
  double mem_to_compute_ratio = 0;

  Occupancy occupancy;
};

// `total_blocks` is the full grid size; the summary may come from a sampled
// subset of blocks (results extrapolate linearly — grids are homogeneous in
// this suite).
KernelTiming simulate_kernel(const DeviceSpec& spec, const Occupancy& occ,
                             std::uint64_t total_blocks,
                             const TraceSummary& summary);

// Host<->device transfer time over PCIe (paper Table 3's "CPU-GPU transfer
// time" column): fixed per-call latency plus bytes at link bandwidth.
double transfer_seconds(const DeviceSpec& spec, std::uint64_t bytes,
                        std::uint64_t num_transfers);

}  // namespace g80
