#include "timing/model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "mem/dram.h"

namespace g80 {

std::string_view bottleneck_name(Bottleneck b) {
  switch (b) {
    case Bottleneck::kInstructionIssue: return "instruction issue";
    case Bottleneck::kGlobalBandwidth: return "global memory bandwidth";
    case Bottleneck::kGlobalLatency: return "global memory latency";
    case Bottleneck::kSynchronization: return "synchronization stalls";
    case Bottleneck::kIdle: return "machine underfilled";
  }
  G80_CHECK(false);
}

KernelTiming simulate_kernel(const DeviceSpec& spec, const Occupancy& occ,
                             std::uint64_t total_blocks,
                             const TraceSummary& summary) {
  G80_CHECK_MSG(summary.num_warps > 0, "timing requires at least one traced warp");
  G80_CHECK(total_blocks > 0);

  KernelTiming t;
  t.occupancy = occ;

  const DramModel dram(spec);
  const double N = occ.active_warps_per_sm;         // resident warps per SM
  const double warps_per_block = summary.warps_per_block();
  const double L = spec.global_latency_cycles;

  // --- Per-warp means from the trace ---
  const double C = summary.mean_issue_cycles(spec);  // issue cycles per warp
  const double m_insts = summary.mean_global_instructions();
  const double txn_per_inst = summary.transactions_per_mem_inst();
  const double bytes_per_inst = summary.dram_bytes_per_mem_inst();
  const double syncs_per_warp =
      static_cast<double>(summary.total.ops[OpClass::kSync]) /
      static_cast<double>(summary.num_warps);

  // Effective latency of one warp-level memory instruction: base pipeline
  // latency plus serialization of the extra transactions an uncoalesced
  // access issues (its result is complete only when the last per-address
  // transaction returns).
  const double L_eff =
      L + std::max(0.0, txn_per_inst - 2.0) *
              spec.uncoalesced_issue_cycles_per_txn;

  // --- Warp-parallelism quantities (Hong/Kim-style) ---
  // Bytes/cycle one SM may consume as its fair share of the DRAM pins.
  const double bpc_device = dram.effective_bandwidth_gbs() / spec.core_clock_ghz;
  const double bpc_sm = bpc_device / spec.num_sms;
  const double mwp_bw =
      bytes_per_inst > 0 ? L_eff * bpc_sm / bytes_per_inst : N;
  const double mwp_mlp = L_eff / spec.mem_issue_interval_cycles;
  t.mwp = std::clamp(std::min(mwp_bw, mwp_mlp), 1.0, std::max(N, 1.0));

  const double c_per_period = m_insts > 0 ? C / m_insts : C;
  const double cwp_full =
      m_insts > 0 ? (c_per_period + L_eff) / std::max(c_per_period, 1.0) : 1.0;
  t.cwp = std::min(N, cwp_full);

  // --- Candidate wave times (one "wave" = blocks_per_sm blocks on each SM) ---
  // 1. Issue floor: every resident warp's instructions through one issue unit.
  t.issue_floor_cycles = C * N;

  // 2. Memory-latency bound: when CWP > MWP the SM is waiting on memory most
  //    of the time; requests overlap only MWP-deep.
  const double M = m_insts * L_eff;  // memory stall cycles per warp, serial
  t.latency_bound_cycles =
      m_insts > 0 ? M * (N / t.mwp) + c_per_period * (t.mwp - 1.0) : 0.0;

  // 3. Device bandwidth floor: all resident blocks' DRAM bytes at effective
  //    bandwidth.  Uses the full coalesced/scattered split.
  DramTraffic wave_traffic;
  {
    const double scale = N * spec.num_sms / static_cast<double>(summary.num_warps);
    wave_traffic.bytes =
        static_cast<std::uint64_t>(static_cast<double>(summary.total.global.bytes) * scale);
    wave_traffic.scattered_bytes = static_cast<std::uint64_t>(
        static_cast<double>(summary.total.global.scattered_bytes) * scale);
    wave_traffic.transactions = static_cast<std::uint64_t>(
        static_cast<double>(summary.total.global.transactions) * scale);
  }
  t.bandwidth_floor_cycles = dram.bandwidth_cycles(wave_traffic);

  // 4. Barrier exposure: at a __syncthreads the block waits for its slowest
  //    outstanding load.  The SM only idles if no resident warp has issue
  //    work left; warps arrive at the barrier staggered by their
  //    between-barrier issue, so coverage is (N-1) warps' worth of one
  //    barrier interval (the §4.4 "enough threads to avoid being stalled"
  //    principle).
  const double issue_per_barrier_interval = C / (syncs_per_warp + 1.0);
  const double other_issue =
      std::max(0.0, N - 1.0) * issue_per_barrier_interval;
  const double exposed_per_sync = std::max(0.0, L_eff - other_issue);
  t.sync_stall_cycles = syncs_per_warp * exposed_per_sync;

  // --- Combine ---
  // Latency-bound when the warps would need more overlap than the memory
  // system provides (unclamped CWP vs MWP: with a single resident warp the
  // clamped CWP would mask the fully-serial case).
  const bool latency_bound = m_insts > 0 && cwp_full > t.mwp;
  double wave = std::max(t.issue_floor_cycles, t.bandwidth_floor_cycles);
  if (latency_bound) wave = std::max(wave, t.latency_bound_cycles);
  wave += t.sync_stall_cycles;
  if (m_insts > 0) wave += L_eff;  // pipeline fill/drain tail
  t.wave_cycles = wave;

  const double blocks_per_wave =
      static_cast<double>(occ.blocks_per_sm) * spec.num_sms;
  t.waves = std::max(1.0, static_cast<double>(total_blocks) / blocks_per_wave);
  t.kernel_cycles = t.waves * wave;
  t.seconds = t.kernel_cycles / (spec.core_clock_ghz * 1e9);

  // --- Achieved rates, extrapolated from the sampled blocks ---
  const double flops_per_block =
      summary.total.lane_flops / static_cast<double>(summary.num_blocks);
  t.total_flops = flops_per_block * static_cast<double>(total_blocks);
  t.gflops = t.total_flops / t.seconds / 1e9;

  const double bytes_per_block =
      static_cast<double>(summary.total.global.bytes) /
      static_cast<double>(summary.num_blocks);
  t.total_dram_bytes = bytes_per_block * static_cast<double>(total_blocks);
  t.dram_gbs = t.total_dram_bytes / t.seconds / 1e9;

  // Table 3's global-memory-to-computation cycle ratio.
  const double mem_cycles_per_warp = m_insts * L_eff;
  t.mem_to_compute_ratio = C > 0 ? mem_cycles_per_warp / C : 0.0;

  // --- Classify the binding constraint ---
  // Share of the issue floor that is memory-port serialization from
  // uncoalesced transactions (as opposed to arithmetic issue slots).
  const double extra_txn_cycles_per_warp =
      std::max(0.0, static_cast<double>(summary.total.global.transactions) -
                        2.0 * static_cast<double>(
                                  summary.total.global_instructions)) *
      spec.uncoalesced_issue_cycles_per_txn /
      static_cast<double>(summary.num_warps);
  const bool port_dominated =
      C > 0 && extra_txn_cycles_per_warp > 0.4 * C;

  if (total_blocks < blocks_per_wave && t.waves <= 1.0 &&
      static_cast<double>(total_blocks) < 0.5 * blocks_per_wave) {
    t.bottleneck = Bottleneck::kIdle;
  } else if (t.sync_stall_cycles > 0.3 * wave) {
    t.bottleneck = Bottleneck::kSynchronization;
  } else if (wave - t.sync_stall_cycles <=
                 t.issue_floor_cycles + L_eff + 1e-9 &&
             port_dominated) {
    // The "issue" floor is mostly serialized memory commands: that is a
    // memory-system bottleneck (the §4.1 naive-matmul diagnosis), not an
    // arithmetic one.
    t.bottleneck = Bottleneck::kGlobalBandwidth;
  } else if (t.bandwidth_floor_cycles >= t.issue_floor_cycles &&
             (!latency_bound ||
              t.bandwidth_floor_cycles >= 0.8 * t.latency_bound_cycles)) {
    t.bottleneck = t.bandwidth_floor_cycles > t.issue_floor_cycles
                       ? Bottleneck::kGlobalBandwidth
                       : Bottleneck::kInstructionIssue;
  } else if (latency_bound && t.latency_bound_cycles > t.issue_floor_cycles) {
    t.bottleneck = Bottleneck::kGlobalLatency;
  } else {
    t.bottleneck = Bottleneck::kInstructionIssue;
  }
  return t;
}

double transfer_seconds(const DeviceSpec& spec, std::uint64_t bytes,
                        std::uint64_t num_transfers) {
  const double bw = spec.pcie_bandwidth_gbs * 1e9;  // bytes/s
  return static_cast<double>(num_transfers) * spec.pcie_latency_us * 1e-6 +
         static_cast<double>(bytes) / bw;
}

}  // namespace g80
