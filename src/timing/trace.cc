#include "timing/trace.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"

namespace g80 {

SiteStats& SiteStats::operator+=(const SiteStats& o) {
  global_instructions += o.global_instructions;
  global_transactions += o.global_transactions;
  uncoalesced_instructions += o.uncoalesced_instructions;
  extra_transactions += o.extra_transactions;
  dram_bytes += o.dram_bytes;
  shared_extra_passes += o.shared_extra_passes;
  const_extra_passes += o.const_extra_passes;
  texture_misses += o.texture_misses;
  syncs += o.syncs;
  return *this;
}

namespace {

// Deterministic ordering: source position first (stable across runs), the
// site hash only as a same-line tiebreak (distinct columns on one line).
bool site_before(const SiteStats& a, const SiteStats& b) {
  const int c = std::strcmp(a.file, b.file);
  if (c != 0) return c < 0;
  if (a.line != b.line) return a.line < b.line;
  return a.site < b.site;
}

}  // namespace

void merge_site_stats(std::vector<SiteStats>& dst,
                      const std::vector<SiteStats>& src) {
  for (const SiteStats& s : src) {
    auto it = std::find_if(dst.begin(), dst.end(), [&](const SiteStats& d) {
      return d.site == s.site;
    });
    if (it == dst.end()) {
      dst.push_back(s);
    } else {
      *it += s;
    }
  }
  std::sort(dst.begin(), dst.end(), site_before);
}

WarpTrace& WarpTrace::operator+=(const WarpTrace& o) {
  ops += o.ops;
  lane_flops += o.lane_flops;
  global_instructions += o.global_instructions;
  global += o.global;
  useful_global_bytes += o.useful_global_bytes;
  coalesced_instructions += o.coalesced_instructions;
  gld_instructions += o.gld_instructions;
  gld_coalesced += o.gld_coalesced;
  gst_instructions += o.gst_instructions;
  gst_coalesced += o.gst_coalesced;
  shared_extra_passes += o.shared_extra_passes;
  const_extra_passes += o.const_extra_passes;
  texture_hits += o.texture_hits;
  texture_misses += o.texture_misses;
  branches += o.branches;
  divergent_branches += o.divergent_branches;
  return *this;
}

double WarpTrace::issue_cycles(const DeviceSpec& spec) const {
  double cyc = ops.warp_issue_cycles(spec);
  // Each extra shared-memory pass or constant-cache replay re-occupies the
  // issue pipeline for one warp-instruction slot.
  cyc += static_cast<double>(shared_extra_passes + const_extra_passes) *
         spec.warp_issue_cycles();
  // Uncoalesced global accesses serialize their per-lane transactions
  // through the SM's memory port: charge every transaction beyond the two a
  // coalesced warp access needs.
  const double base_txns = 2.0 * static_cast<double>(global_instructions);
  const double extra_txns =
      std::max(0.0, static_cast<double>(global.transactions) - base_txns);
  cyc += extra_txns * spec.uncoalesced_issue_cycles_per_txn;
  return cyc;
}

WarpTrace BlockTrace::aggregate() const {
  WarpTrace t;
  for (const auto& w : warps) t += w;
  return t;
}

TraceSummary TraceSummary::summarize(const std::vector<BlockTrace>& blocks) {
  TraceSummary s;
  s.num_blocks = blocks.size();
  for (const auto& b : blocks) {
    s.num_warps += b.warps.size();
    s.total += b.aggregate();
    merge_site_stats(s.sites, b.sites);
  }
  return s;
}

double TraceSummary::warps_per_block() const {
  return num_blocks == 0 ? 0.0
                         : static_cast<double>(num_warps) /
                               static_cast<double>(num_blocks);
}

double TraceSummary::mean_issue_cycles(const DeviceSpec& spec) const {
  G80_CHECK(num_warps > 0);
  return total.issue_cycles(spec) / static_cast<double>(num_warps);
}

double TraceSummary::mean_global_instructions() const {
  G80_CHECK(num_warps > 0);
  return static_cast<double>(total.global_instructions) /
         static_cast<double>(num_warps);
}

double TraceSummary::mean_transactions() const {
  G80_CHECK(num_warps > 0);
  return static_cast<double>(total.global.transactions) /
         static_cast<double>(num_warps);
}

double TraceSummary::mean_dram_bytes() const {
  G80_CHECK(num_warps > 0);
  return static_cast<double>(total.global.bytes) /
         static_cast<double>(num_warps);
}

double TraceSummary::transactions_per_mem_inst() const {
  return total.global_instructions == 0
             ? 0.0
             : static_cast<double>(total.global.transactions) /
                   static_cast<double>(total.global_instructions);
}

double TraceSummary::dram_bytes_per_mem_inst() const {
  return total.global_instructions == 0
             ? 0.0
             : static_cast<double>(total.global.bytes) /
                   static_cast<double>(total.global_instructions);
}

double TraceSummary::coalesced_fraction() const {
  return total.global_instructions == 0
             ? 1.0
             : static_cast<double>(total.coalesced_instructions) /
                   static_cast<double>(total.global_instructions);
}

double TraceSummary::divergent_branch_fraction() const {
  return total.branches == 0 ? 0.0
                             : static_cast<double>(total.divergent_branches) /
                                   static_cast<double>(total.branches);
}

double TraceSummary::fmad_fraction() const {
  const auto t = total.ops.total();
  return t == 0 ? 0.0
                : static_cast<double>(total.ops[OpClass::kFMad]) /
                      static_cast<double>(t);
}

}  // namespace g80
