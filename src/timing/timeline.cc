#include "timing/timeline.h"

#include <algorithm>

#include "common/error.h"

namespace g80 {

std::string_view engine_name(TimelineEngine e) {
  switch (e) {
    case TimelineEngine::kCompute: return "compute";
    case TimelineEngine::kCopy: return "copy";
    case TimelineEngine::kHost: return "host";
  }
  G80_CHECK(false);
}

const TimelineSpan& Timeline::schedule(std::uint64_t stream,
                                       TimelineEngine engine,
                                       double duration_s, std::string label,
                                       std::vector<TimelineBlockSpan> blocks,
                                       std::uint64_t scope_id) {
  G80_CHECK_MSG(duration_s >= 0, "negative op duration");
  auto it = std::find_if(stream_cursors_.begin(), stream_cursors_.end(),
                         [&](const auto& p) { return p.first == stream; });
  if (it == stream_cursors_.end()) {
    stream_cursors_.emplace_back(stream, 0.0);
    it = stream_cursors_.end() - 1;
  }

  double start = it->second;
  if (engine != TimelineEngine::kHost) {
    double& ec = engine_cursor_[static_cast<int>(engine)];
    start = std::max(start, ec);
    ec = start + duration_s;
  }
  it->second = start + duration_s;

  TimelineSpan span;
  span.seq = next_seq_++;
  span.stream = stream;
  span.engine = engine;
  span.start_s = start;
  span.end_s = start + duration_s;
  span.label = std::move(label);
  span.scope_id = scope_id;
  for (auto& b : blocks) {
    b.start_s += start;
    b.end_s += start;
  }
  span.blocks = std::move(blocks);
  spans_.push_back(std::move(span));
  return spans_.back();
}

double Timeline::total_seconds() const {
  double t = 0;
  for (const auto& s : spans_) t = std::max(t, s.end_s);
  return t;
}

double Timeline::serialized_seconds() const {
  double t = 0;
  for (const auto& s : spans_) t += s.duration_s();
  return t;
}

double Timeline::engine_busy_seconds(TimelineEngine e) const {
  double t = 0;
  for (const auto& s : spans_)
    if (s.engine == e) t += s.duration_s();
  return t;
}

double Timeline::stream_cursor(std::uint64_t stream) const {
  for (const auto& [id, cursor] : stream_cursors_)
    if (id == stream) return cursor;
  return 0;
}

void Timeline::clear() { *this = Timeline{}; }

}  // namespace g80
