// Warp-level execution traces produced by the tracing context and consumed
// by the timing model.
//
// A WarpTrace summarizes one warp's dynamic behaviour over a whole kernel:
// warp-level instruction counts per class (max over lanes — exact for the
// divergence-free kernels the paper's principle 3 produces, an approximation
// otherwise, with the divergent-branch fraction reported alongside), plus
// the memory-system outcomes (coalescing, bank conflicts, constant-cache
// serialization, texture hit rates) already resolved by the analyzers.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/isa.h"
#include "mem/dram.h"

namespace g80 {

// Per-call-site statistics accumulated over a block's warps (g80scope's
// stall-attribution input).  `site` is the recorder's call-site hash — stable
// within a run but derived from string addresses, so cross-run artifacts key
// on (file, line) instead.  `file` points at the static string
// std::source_location hands out; it outlives every trace.
struct SiteStats {
  std::uint32_t site = 0;
  const char* file = "";
  std::uint32_t line = 0;
  // Warp-level counts at this site.
  std::uint64_t global_instructions = 0;
  std::uint64_t global_transactions = 0;
  std::uint64_t uncoalesced_instructions = 0;
  std::uint64_t extra_transactions = 0;  // beyond a coalesced access's two
  std::uint64_t dram_bytes = 0;
  std::uint64_t shared_extra_passes = 0;  // bank-conflict replays
  std::uint64_t const_extra_passes = 0;   // constant-cache replays
  std::uint64_t texture_misses = 0;
  std::uint64_t syncs = 0;  // warp-level bar.sync count

  SiteStats& operator+=(const SiteStats& o);  // counts only, not identity
  // Exact equality, `file` included by pointer: std::source_location hands
  // out one static string per site, so two traces of the same binary agree.
  bool operator==(const SiteStats&) const = default;
};

// Merge `src` entries into `dst` by site id, keeping deterministic
// (file, line, site) ordering regardless of input order.
void merge_site_stats(std::vector<SiteStats>& dst,
                      const std::vector<SiteStats>& src);

struct WarpTrace {
  OpCounts ops;                        // warp-level instruction counts
  double lane_flops = 0;               // per-lane flops summed over lanes
  std::uint64_t global_instructions = 0;  // warp-level ld/st.global count
  DramTraffic global;                  // post-coalescing DRAM traffic
  std::uint64_t useful_global_bytes = 0;
  std::uint64_t coalesced_instructions = 0;  // fully coalesced warp accesses
  // Load/store split of the global warp instructions above (g80prof's
  // gld_*/gst_* counters; texture-miss pseudo-instructions are excluded and
  // surface via texture_misses instead).
  std::uint64_t gld_instructions = 0;
  std::uint64_t gld_coalesced = 0;
  std::uint64_t gst_instructions = 0;
  std::uint64_t gst_coalesced = 0;
  std::uint64_t shared_extra_passes = 0;     // bank-conflict serialization
  std::uint64_t const_extra_passes = 0;      // constant-cache serialization
  std::uint64_t texture_hits = 0;
  std::uint64_t texture_misses = 0;
  std::uint64_t branches = 0;
  std::uint64_t divergent_branches = 0;

  WarpTrace& operator+=(const WarpTrace& o);
  bool operator==(const WarpTrace&) const = default;

  // Cycles this warp occupies its SM's issue logic, including serialization
  // from bank conflicts and constant-cache replays.
  double issue_cycles(const DeviceSpec& spec) const;
};

struct BlockTrace {
  std::vector<WarpTrace> warps;
  // Per-call-site attribution, ordered by (file, line, site).
  std::vector<SiteStats> sites;

  WarpTrace aggregate() const;
};

// Totals across sampled blocks; the timing model works with per-warp means.
struct TraceSummary {
  WarpTrace total;        // summed over all traced warps
  std::size_t num_warps = 0;
  std::size_t num_blocks = 0;
  // Per-call-site totals merged across blocks in sample order, so the result
  // is bit-identical whether blocks were traced sequentially or by a pool.
  std::vector<SiteStats> sites;

  static TraceSummary summarize(const std::vector<BlockTrace>& blocks);

  // Exact equality across every counter and site — the contract the batched
  // recorder path (cudalite/trace_arena.h) is held to by trace_batch_test
  // and the rt_throughput traced gate.
  bool operator==(const TraceSummary&) const = default;

  double warps_per_block() const;
  // Per-warp means.
  double mean_issue_cycles(const DeviceSpec& spec) const;
  double mean_global_instructions() const;
  double mean_transactions() const;
  double mean_dram_bytes() const;
  // Ratio helpers.
  double transactions_per_mem_inst() const;
  double dram_bytes_per_mem_inst() const;
  double coalesced_fraction() const;
  double divergent_branch_fraction() const;
  double fmad_fraction() const;  // the paper's headline instruction-mix metric
};

}  // namespace g80
