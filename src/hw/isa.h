// PTX-granularity instruction classes.
//
// The paper estimates performance by counting PTX instruction classes (the
// fraction of fused multiply-adds bounds issue-limited throughput; the
// fraction of global loads bounds bandwidth-limited throughput).  The tracing
// context classifies every dynamic operation into one of these classes and
// the timing model charges issue cycles per class.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "hw/device_spec.h"

namespace g80 {

enum class OpClass : std::uint8_t {
  kFMad,         // fused multiply-add (2 flops)
  kFAdd,         // FP add/sub (1 flop)
  kFMul,         // FP multiply (1 flop)
  kFCmp,         // FP compare / min / max
  kIAlu,         // integer add/shift/logic (address math, induction vars)
  kIMul,         // integer multiply (slower on G80; strength-reduction target)
  kSfu,          // rcp/rsqrt/sin/cos/exp/log on the special function units
  kLoadGlobal,   // ld.global
  kStoreGlobal,  // st.global
  kLoadShared,   // ld.shared
  kStoreShared,  // st.shared
  kLoadConst,    // ld.const (cached, broadcast)
  kLoadTexture,  // tex fetch
  kSync,         // bar.sync
  kBranch,       // conditional/unconditional branch
  kMisc,         // mov, cvt, setp, ...
  kCount
};

inline constexpr std::size_t kNumOpClasses = static_cast<std::size_t>(OpClass::kCount);

std::string_view op_class_name(OpClass c);

// Floating-point operations contributed by one *lane* executing one
// instruction of this class (MAD = 2, others 1 or 0).
double flops_per_lane(OpClass c);

// Cycles for an SM to issue one warp-wide instruction of this class.
// SP-executed classes take warp_size/sps cycles (4 on the GTX), SFU classes
// warp_size/sfus (16), integer multiply is 4x an IALU op on G80.
double issue_cycles(OpClass c, const DeviceSpec& spec);

// Dense per-class counters.
struct OpCounts {
  std::array<std::uint64_t, kNumOpClasses> counts{};

  std::uint64_t& operator[](OpClass c) { return counts[static_cast<std::size_t>(c)]; }
  std::uint64_t operator[](OpClass c) const { return counts[static_cast<std::size_t>(c)]; }

  OpCounts& operator+=(const OpCounts& o);
  // Exact equality — trace_batch_test and the bench gates assert the batched
  // recorder reproduces legacy instruction counts bit-for-bit.
  bool operator==(const OpCounts&) const = default;
  std::uint64_t total() const;
  // Total dynamic floating-point operations (per lane counts already folded in).
  double flops() const;
  // Issue cycles for one warp executing these counts once per instruction.
  double warp_issue_cycles(const DeviceSpec& spec) const;
};

}  // namespace g80
