#include "hw/isa.h"

#include "common/error.h"

namespace g80 {

std::string_view op_class_name(OpClass c) {
  switch (c) {
    case OpClass::kFMad: return "fmad";
    case OpClass::kFAdd: return "fadd";
    case OpClass::kFMul: return "fmul";
    case OpClass::kFCmp: return "fcmp";
    case OpClass::kIAlu: return "ialu";
    case OpClass::kIMul: return "imul";
    case OpClass::kSfu: return "sfu";
    case OpClass::kLoadGlobal: return "ld.global";
    case OpClass::kStoreGlobal: return "st.global";
    case OpClass::kLoadShared: return "ld.shared";
    case OpClass::kStoreShared: return "st.shared";
    case OpClass::kLoadConst: return "ld.const";
    case OpClass::kLoadTexture: return "tex";
    case OpClass::kSync: return "bar.sync";
    case OpClass::kBranch: return "bra";
    case OpClass::kMisc: return "misc";
    case OpClass::kCount: break;
  }
  G80_CHECK(false);
}

double flops_per_lane(OpClass c) {
  switch (c) {
    case OpClass::kFMad: return 2.0;
    case OpClass::kFAdd:
    case OpClass::kFMul: return 1.0;
    case OpClass::kSfu: return 1.0;  // one transcendental result per lane
    default: return 0.0;
  }
}

double issue_cycles(OpClass c, const DeviceSpec& spec) {
  switch (c) {
    case OpClass::kSfu:
      return spec.sfu_issue_cycles();
    case OpClass::kIMul:
      // 24-bit multiplier: 32-bit integer multiply is microcoded (~4 SP ops).
      return 4.0 * spec.warp_issue_cycles();
    default:
      return spec.warp_issue_cycles();
  }
}

OpCounts& OpCounts::operator+=(const OpCounts& o) {
  for (std::size_t i = 0; i < kNumOpClasses; ++i) counts[i] += o.counts[i];
  return *this;
}

std::uint64_t OpCounts::total() const {
  std::uint64_t t = 0;
  for (auto c : counts) t += c;
  return t;
}

double OpCounts::flops() const {
  double f = 0.0;
  for (std::size_t i = 0; i < kNumOpClasses; ++i)
    f += flops_per_lane(static_cast<OpClass>(i)) * static_cast<double>(counts[i]);
  return f;
}

double OpCounts::warp_issue_cycles(const DeviceSpec& spec) const {
  double cyc = 0.0;
  for (std::size_t i = 0; i < kNumOpClasses; ++i)
    cyc += issue_cycles(static_cast<OpClass>(i), spec) * static_cast<double>(counts[i]);
  return cyc;
}

}  // namespace g80
