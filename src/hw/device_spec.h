// Architectural description of the simulated device.
//
// Every number the paper quotes for the GeForce 8800 GTX appears here as a
// named field; the timing model and occupancy calculator consume only this
// struct, so alternative devices (Ultra, GTS) are one factory function away
// and drive the scalability ablations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace g80 {

struct DeviceSpec {
  std::string name;

  // --- Execution resources (paper §3.2) ---
  int num_sms = 16;          // streaming multiprocessors
  int sps_per_sm = 8;        // streaming processors (cores) per SM
  int sfus_per_sm = 2;       // special function units per SM
  double core_clock_ghz = 1.35;

  // --- Per-SM schedulable resources (paper §3.2) ---
  int registers_per_sm = 8192;             // 32-bit registers, dynamically partitioned
  std::size_t shared_mem_per_sm = 16 * 1024;  // bytes
  int max_threads_per_sm = 768;            // simultaneously active thread contexts
  int max_blocks_per_sm = 8;               // resident thread blocks
  int warp_size = 32;
  int max_threads_per_block = 512;
  int max_grid_dim = 65535;                // 2^16 - 1 blocks per grid dimension
  // Register allocation granularity per block (G80 allocates in chunks).
  int register_alloc_unit = 256;

  // --- Memory system (paper §3.2, Table 1) ---
  double dram_bandwidth_gbs = 86.4;        // GB/s peak off-chip bandwidth
  std::size_t global_mem_bytes = 768ull << 20;
  int shared_mem_banks = 16;
  int coalesce_segment_words = 16;         // contiguous 16-word lines coalesce
  std::size_t dram_transaction_bytes = 32; // minimum DRAM transaction size
  // Latency of a global load in core cycles.  The paper quotes "hundreds of
  // cycles"; 420 reproduces its matmul results (see EXPERIMENTS.md).
  double global_latency_cycles = 420.0;
  // Efficiency factor applied to peak DRAM bandwidth for perfectly coalesced
  // streams (row activation, refresh, read/write turnaround).
  double dram_efficiency = 0.82;
  // Effective fraction of peak bandwidth achieved by scattered 32 B
  // transactions (row misses on nearly every access).  Together with the
  // coalescing rule this reproduces the paper's "fraction of the maximum"
  // penalty for non-contiguous access (§3.2).
  double dram_scattered_efficiency = 0.30;
  // Minimum spacing between memory requests an SM can issue to the memory
  // pipeline (bounds memory-level parallelism; Hong/Kim-style MWP).
  double mem_issue_interval_cycles = 10.0;
  // Issue-pipeline occupancy per DRAM transaction beyond the two a coalesced
  // warp access needs: an uncoalesced access serializes its 16-per-half-warp
  // transactions through the SM's memory port, which is the dominant cost of
  // breaking the §3.2 rule when bandwidth itself is not saturated.
  double uncoalesced_issue_cycles_per_txn = 4.0;
  // Device-wide DRAM command throughput (transactions per core cycle across
  // all memory partitions).  Caps fragmented streams even when their unique
  // bytes are few: 16 same-address lane requests still occupy 16 command
  // slots.
  double dram_transactions_per_cycle = 4.0;
  // Fixed host-side cost per kernel launch (driver + command buffer), in
  // microseconds.  Dominates time-sliced kernels relaunched every step.
  double launch_overhead_us = 15.0;
  double shared_latency_cycles = 2.0;      // register-speed per the paper
  std::size_t constant_cache_bytes = 8 * 1024;   // per SM
  std::size_t texture_cache_bytes = 8 * 1024;    // per SM
  std::size_t texture_cache_line = 32;
  double texture_hit_latency_cycles = 20.0;

  // --- Host link (CPU<->GPU transfers, paper Table 3) ---
  double pcie_bandwidth_gbs = 3.2;         // effective PCIe x16 gen1
  double pcie_latency_us = 15.0;           // per-transfer fixed cost

  // --- Derived quantities ---
  int total_sps() const { return num_sms * sps_per_sm; }
  int max_warps_per_sm() const { return max_threads_per_sm / warp_size; }
  int max_active_threads() const { return num_sms * max_threads_per_sm; }
  // 128 SPs * 2 flops (multiply-add) * 1.35 GHz = 345.6 GFLOPS (paper §1).
  double peak_mad_gflops() const;
  // 16 SMs * 18 FLOPS/SM-cycle * 1.35 GHz = 388.8 GFLOPS incl. SFU (paper §3.2).
  double peak_gflops_with_sfu() const;
  // Cycles for one SM to issue one instruction for a full warp: 32 lanes
  // through `sps_per_sm` cores = 4 cycles on the GTX.
  double warp_issue_cycles() const;
  // Same for SFU instructions: 32 lanes / 2 SFUs = 16 cycles.
  double sfu_issue_cycles() const;
  // Peak DRAM bytes per core cycle across the device.
  double dram_bytes_per_cycle() const;

  static DeviceSpec geforce_8800_gtx();
  static DeviceSpec geforce_8800_ultra();  // higher clocks, same topology
  static DeviceSpec geforce_8800_gts();    // 12 SMs, narrower bus
};

// Stable hash over every architectural field of the spec, stamped into JSON
// artifacts (g80prof reports, bench results) so trajectory files from
// different builds are only ever compared against the same modeled device.
std::uint64_t device_spec_hash(const DeviceSpec& spec);

}  // namespace g80
