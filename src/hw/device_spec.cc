#include "hw/device_spec.h"

namespace g80 {

double DeviceSpec::peak_mad_gflops() const {
  return total_sps() * 2.0 * core_clock_ghz;
}

double DeviceSpec::peak_gflops_with_sfu() const {
  // Each SM: 8 SPs * 2 flops (MAD) + 2 extra from SFU-issued MULs = 18
  // FLOPS/cycle, matching the paper's 388.8 GFLOPS figure.
  const double flops_per_sm_cycle =
      sps_per_sm * 2.0 + sfus_per_sm * 1.0;
  return num_sms * flops_per_sm_cycle * core_clock_ghz;
}

double DeviceSpec::warp_issue_cycles() const {
  return static_cast<double>(warp_size) / sps_per_sm;
}

double DeviceSpec::sfu_issue_cycles() const {
  return static_cast<double>(warp_size) / sfus_per_sm;
}

double DeviceSpec::dram_bytes_per_cycle() const {
  return dram_bandwidth_gbs / core_clock_ghz;
}

DeviceSpec DeviceSpec::geforce_8800_gtx() {
  DeviceSpec s;
  s.name = "GeForce 8800 GTX";
  return s;  // defaults are the GTX
}

DeviceSpec DeviceSpec::geforce_8800_ultra() {
  DeviceSpec s = geforce_8800_gtx();
  s.name = "GeForce 8800 Ultra";
  s.core_clock_ghz = 1.5;
  s.dram_bandwidth_gbs = 103.7;
  return s;
}

DeviceSpec DeviceSpec::geforce_8800_gts() {
  DeviceSpec s = geforce_8800_gtx();
  s.name = "GeForce 8800 GTS";
  s.num_sms = 12;
  s.core_clock_ghz = 1.2;
  s.dram_bandwidth_gbs = 64.0;
  s.global_mem_bytes = 640ull << 20;
  return s;
}

}  // namespace g80
