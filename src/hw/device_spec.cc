#include "hw/device_spec.h"

#include "common/content_hash.h"

namespace g80 {

double DeviceSpec::peak_mad_gflops() const {
  return total_sps() * 2.0 * core_clock_ghz;
}

double DeviceSpec::peak_gflops_with_sfu() const {
  // Each SM: 8 SPs * 2 flops (MAD) + 2 extra from SFU-issued MULs = 18
  // FLOPS/cycle, matching the paper's 388.8 GFLOPS figure.
  const double flops_per_sm_cycle =
      sps_per_sm * 2.0 + sfus_per_sm * 1.0;
  return num_sms * flops_per_sm_cycle * core_clock_ghz;
}

double DeviceSpec::warp_issue_cycles() const {
  return static_cast<double>(warp_size) / sps_per_sm;
}

double DeviceSpec::sfu_issue_cycles() const {
  return static_cast<double>(warp_size) / sfus_per_sm;
}

double DeviceSpec::dram_bytes_per_cycle() const {
  return dram_bandwidth_gbs / core_clock_ghz;
}

DeviceSpec DeviceSpec::geforce_8800_gtx() {
  DeviceSpec s;
  s.name = "GeForce 8800 GTX";
  return s;  // defaults are the GTX
}

DeviceSpec DeviceSpec::geforce_8800_ultra() {
  DeviceSpec s = geforce_8800_gtx();
  s.name = "GeForce 8800 Ultra";
  s.core_clock_ghz = 1.5;
  s.dram_bandwidth_gbs = 103.7;
  return s;
}

DeviceSpec DeviceSpec::geforce_8800_gts() {
  DeviceSpec s = geforce_8800_gtx();
  s.name = "GeForce 8800 GTS";
  s.num_sms = 12;
  s.core_clock_ghz = 1.2;
  s.dram_bandwidth_gbs = 64.0;
  s.global_mem_bytes = 640ull << 20;
  return s;
}

// Canonicalized-field FNV-1a via common/content_hash.h; the field order
// below is the hash's definition.  The golden values pinned in
// tests/content_hash_test.cc (and embedded in every checked-in bench
// baseline's provenance) change whenever a field is added, removed, or
// reordered — which is exactly when cached results stop being comparable.
std::uint64_t device_spec_hash(const DeviceSpec& s) {
  struct Feed {
    ContentHasher h;
    void str(const std::string& v) { h.str(v); }
    void i(std::int64_t v) { h.i64(v); }
    void u(std::uint64_t v) { h.u64(v); }
    void d(double v) { h.f64(v); }
  } f;
  f.str(s.name);
  f.i(s.num_sms);
  f.i(s.sps_per_sm);
  f.i(s.sfus_per_sm);
  f.d(s.core_clock_ghz);
  f.i(s.registers_per_sm);
  f.u(s.shared_mem_per_sm);
  f.i(s.max_threads_per_sm);
  f.i(s.max_blocks_per_sm);
  f.i(s.warp_size);
  f.i(s.max_threads_per_block);
  f.i(s.max_grid_dim);
  f.i(s.register_alloc_unit);
  f.d(s.dram_bandwidth_gbs);
  f.u(s.global_mem_bytes);
  f.i(s.shared_mem_banks);
  f.i(s.coalesce_segment_words);
  f.u(s.dram_transaction_bytes);
  f.d(s.global_latency_cycles);
  f.d(s.dram_efficiency);
  f.d(s.dram_scattered_efficiency);
  f.d(s.mem_issue_interval_cycles);
  f.d(s.uncoalesced_issue_cycles_per_txn);
  f.d(s.dram_transactions_per_cycle);
  f.d(s.launch_overhead_us);
  f.d(s.shared_latency_cycles);
  f.u(s.constant_cache_bytes);
  f.u(s.texture_cache_bytes);
  f.u(s.texture_cache_line);
  f.d(s.texture_hit_latency_cycles);
  f.d(s.pcie_bandwidth_gbs);
  f.d(s.pcie_latency_us);
  return f.h.digest();
}

}  // namespace g80
