// Lightweight statistics accumulators used by the timing model, the
// benchmarks, and the tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace g80 {

// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-range histogram with uniform bins; out-of-range samples clamp to the
// edge bins.  Used e.g. for coalescing-transaction distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Geometric (log-spaced) bucket layout, generalizing Histogram's uniform
// bins for quantities that span orders of magnitude — request latencies in
// g80obs being the motivating customer.  Bucket i covers
// (first_upper * growth^(i-1), first_upper * growth^i]; values at or below
// first_upper land in bucket 0 and values beyond the last bound clamp to the
// final bucket, so index_for() is total.  The layout is pure arithmetic
// (no storage): callers pair it with their own count array, which is what
// lets obs::LatencyHistogram keep the counts in relaxed atomics.
class LogBuckets {
 public:
  // `first_upper` > 0, `growth` > 1, `n` >= 1.
  LogBuckets(double first_upper, double growth, std::size_t n);

  std::size_t buckets() const { return n_; }
  std::size_t index_for(double v) const;
  // Inclusive upper bound of bucket i ("le" in Prometheus terms); the last
  // bucket reports +infinity since it absorbs every larger sample.
  double upper_bound(std::size_t i) const;
  double lower_bound(std::size_t i) const;  // 0 for bucket 0

  // Quantile estimate from per-bucket counts laid out by this object:
  // rank-selects the target bucket, then interpolates linearly inside it.
  // `q` in [0, 1]; returns 0 when the counts sum to zero.  Deterministic —
  // the metrics-registry golden tests pin exact values.
  double quantile(const std::uint64_t* counts, std::size_t n, double q) const;

 private:
  double first_upper_;
  double growth_;
  double inv_log_growth_;
  std::size_t n_;
};

// Relative error |a-b| / max(|b|, eps); used by functional-equivalence tests.
double rel_err(double a, double b, double eps = 1e-30);

}  // namespace g80
