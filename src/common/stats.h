// Lightweight statistics accumulators used by the timing model, the
// benchmarks, and the tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace g80 {

// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-range histogram with uniform bins; out-of-range samples clamp to the
// edge bins.  Used e.g. for coalescing-transaction distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Relative error |a-b| / max(|b|, eps); used by functional-equivalence tests.
double rel_err(double a, double b, double eps = 1e-30);

}  // namespace g80
