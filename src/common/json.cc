#include "common/json.h"

#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace g80 {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    G80_CHECK_MSG(out_.empty(), "JSON document already complete");
    return;
  }
  if (stack_.back() == Scope::kObject) {
    G80_CHECK_MSG(have_key_, "JSON object member needs key() first");
    have_key_ = false;
  } else {
    if (need_comma_) out_ += ',';
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  G80_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kObject && !have_key_,
                "unbalanced end_object");
  out_ += '}';
  stack_.pop_back();
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  G80_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kArray,
                "unbalanced end_array");
  out_ += ']';
  stack_.pop_back();
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  G80_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kObject && !have_key_,
                "key() outside an object or after another key");
  if (need_comma_) out_ += ',';
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  have_key_ = true;
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  before_value();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    out_ += buf;
  }
  need_comma_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  G80_CHECK_MSG(stack_.empty() && !out_.empty(),
                "JSON document incomplete (unclosed object/array or empty)");
  return out_;
}

}  // namespace g80
