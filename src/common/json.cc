#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"

namespace g80 {

// Grants the file-local Parser write access to JsonValue's private fields
// without widening the public API.
struct JsonBuilder {
  static JsonValue::Kind& kind(JsonValue& v) { return v.kind_; }
  static bool& boolean(JsonValue& v) { return v.bool_; }
  static double& number(JsonValue& v) { return v.num_; }
  static std::string& scalar(JsonValue& v) { return v.scalar_; }
  static std::vector<JsonValue>& elems(JsonValue& v) { return v.elems_; }
  static std::vector<std::pair<std::string, JsonValue>>& members(JsonValue& v) {
    return v.members_;
  }
};

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    G80_CHECK_MSG(out_.empty(), "JSON document already complete");
    return;
  }
  if (stack_.back() == Scope::kObject) {
    G80_CHECK_MSG(have_key_, "JSON object member needs key() first");
    have_key_ = false;
  } else {
    if (need_comma_) out_ += ',';
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  G80_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kObject && !have_key_,
                "unbalanced end_object");
  out_ += '}';
  stack_.pop_back();
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  G80_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kArray,
                "unbalanced end_array");
  out_ += ']';
  stack_.pop_back();
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  G80_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kObject && !have_key_,
                "key() outside an object or after another key");
  if (need_comma_) out_ += ',';
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  have_key_ = true;
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view serialized_json) {
  G80_CHECK_MSG(!serialized_json.empty(), "raw() needs a serialized value");
  before_value();
  out_ += serialized_json;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  before_value();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    out_ += buf;
  }
  need_comma_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  G80_CHECK_MSG(stack_.empty() && !out_.empty(),
                "JSON document incomplete (unclosed object/array or empty)");
  return out_;
}

// --- JsonValue parsing ------------------------------------------------------

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                msg);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value(int depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 64 levels");
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"':
        JsonBuilder::kind(v) = JsonValue::Kind::kString;
        JsonBuilder::scalar(v) = string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        JsonBuilder::kind(v) = JsonValue::Kind::kBool;
        JsonBuilder::boolean(v) = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        JsonBuilder::kind(v) = JsonValue::Kind::kBool;
        JsonBuilder::boolean(v) = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        JsonBuilder::kind(v) = JsonValue::Kind::kNull;
        return v;
      default: return number();
    }
  }

  JsonValue object(int depth) {
    JsonValue v;
    JsonBuilder::kind(v) = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = string();
      for (const auto& [k, _] : JsonBuilder::members(v)) {
        if (k == key) fail("duplicate object key \"" + key + "\"");
      }
      skip_ws();
      if (peek() != ':') fail("expected ':' after object key");
      ++pos_;
      JsonBuilder::members(v).emplace_back(std::move(key), value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue array(int depth) {
    JsonValue v;
    JsonBuilder::kind(v) = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonBuilder::elems(v).push_back(value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode (BMP only; surrogate pairs are not used by any of
          // this repo's producers and are rejected rather than mis-decoded).
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate \\u escapes are not supported");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("malformed number");
    }
    // JSON integer grammar: a leading zero stands alone ("0", "0.5" — never
    // "01"), keeping every number's lexeme canonical enough to be unique.
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("number with leading zero");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("malformed number fraction");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("malformed number exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    JsonValue v;
    JsonBuilder::kind(v) = JsonValue::Kind::kNumber;
    JsonBuilder::scalar(v) = std::string(text_.substr(start, pos_ - start));
    JsonBuilder::number(v) = std::strtod(JsonBuilder::scalar(v).c_str(), nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) { return Parser(text).run(); }

void JsonValue::expect(Kind k, const char* what) const {
  if (kind_ != k) {
    throw Error(std::string("JSON value is not ") + what);
  }
}

bool JsonValue::as_bool() const {
  expect(Kind::kBool, "a bool");
  return bool_;
}

double JsonValue::as_number() const {
  expect(Kind::kNumber, "a number");
  return num_;
}

std::int64_t JsonValue::as_int() const {
  expect(Kind::kNumber, "a number");
  const double r = num_;
  // Casting a double outside int64's range (or NaN) is undefined behavior,
  // so range-check before the cast — the round-trip check alone would run
  // after the UB.  2^63 is exactly representable as a double; INT64_MAX is
  // not, hence the half-open window.
  if (!(r >= -9223372036854775808.0 && r < 9223372036854775808.0)) {
    throw Error("JSON number " + scalar_ + " is out of int64 range");
  }
  const auto i = static_cast<std::int64_t>(r);
  if (static_cast<double>(i) != r) {
    throw Error("JSON number " + scalar_ + " is not an integer");
  }
  return i;
}

const std::string& JsonValue::as_string() const {
  expect(Kind::kString, "a string");
  return scalar_;
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return elems_.size();
  if (kind_ == Kind::kObject) return members_.size();
  throw Error("JSON value is not a container");
}

const JsonValue& JsonValue::at(std::size_t i) const {
  expect(Kind::kArray, "an array");
  if (i >= elems_.size()) {
    throw Error("JSON array index " + std::to_string(i) + " out of range");
  }
  return elems_[i];
}

const JsonValue* JsonValue::get(std::string_view key) const {
  expect(Kind::kObject, "an object");
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::require(std::string_view key) const {
  const JsonValue* v = get(key);
  if (v == nullptr) {
    throw Error("JSON object is missing required key \"" + std::string(key) +
                "\"");
  }
  return *v;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  expect(Kind::kObject, "an object");
  return members_;
}

std::string JsonValue::get_string(std::string_view key,
                                  std::string fallback) const {
  const JsonValue* v = get(key);
  return v == nullptr ? std::move(fallback) : v->as_string();
}

std::int64_t JsonValue::get_int(std::string_view key,
                                std::int64_t fallback) const {
  const JsonValue* v = get(key);
  return v == nullptr ? fallback : v->as_int();
}

double JsonValue::get_number(std::string_view key, double fallback) const {
  const JsonValue* v = get(key);
  return v == nullptr ? fallback : v->as_number();
}

bool JsonValue::get_bool(std::string_view key, bool fallback) const {
  const JsonValue* v = get(key);
  return v == nullptr ? fallback : v->as_bool();
}

void JsonValue::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += scalar_; break;
    case Kind::kString:
      out += '"';
      out += json_escape(scalar_);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const auto& e : elems_) {
        if (!first) out += ',';
        first = false;
        e.dump_to(out);
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(k);
        out += "\":";
        v.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

}  // namespace g80
