// Small string-formatting helpers (gcc 12 lacks a complete <format>).
#pragma once

#include <sstream>
#include <string>

namespace g80 {

// Concatenate all arguments via operator<<.
template <class... Ts>
std::string cat(const Ts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

// Fixed-point formatting with `digits` decimals (e.g. fixed(3.14159, 2) == "3.14").
std::string fixed(double v, int digits);

// Human-readable byte count ("64 B", "16.0 KB", "1.5 GB").
std::string human_bytes(double bytes);

// Right-pad / left-pad to a width.
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

}  // namespace g80
