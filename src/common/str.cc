#include "common/str.h"

#include <cstdio>

namespace g80 {

std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string human_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  if (u == 0) return cat(static_cast<long long>(bytes), " B");
  return cat(fixed(bytes, 1), " ", units[u]);
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace g80
