#include "common/content_hash.h"

#include <cinttypes>
#include <cstdio>

namespace g80 {

void ContentHasher::str(std::string_view s) {
  for (const char c : s) byte(static_cast<unsigned char>(c));
  separator();
}

void ContentHasher::i64(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  str(buf);
}

void ContentHasher::u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  str(buf);
}

void ContentHasher::f64(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  str(buf);
}

void ContentHasher::raw(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) byte(p[i]);
  separator();
}

std::uint64_t launch_config_hash(const LaunchConfig& c) {
  ContentHasher h;
  h.u64(c.grid_x);
  h.u64(c.grid_y);
  h.u64(c.block_x);
  h.u64(c.block_y);
  h.u64(c.block_z);
  h.i64(c.regs_per_thread);
  h.i64(c.sample_blocks);
  h.boolean(c.functional);
  h.boolean(c.uses_sync);
  return h.digest();
}

}  // namespace g80
