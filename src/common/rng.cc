#include "common/rng.h"

#include <cmath>

namespace g80 {

std::uint64_t SplitMix64::next_u64() {
  state_ += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double SplitMix64::next_double() {
  // 53 random bits into the mantissa.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double SplitMix64::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

float SplitMix64::uniform_f(float lo, float hi) {
  return static_cast<float>(uniform(lo, hi));
}

std::uint64_t SplitMix64::next_below(std::uint64_t n) {
  // Modulo bias is negligible for n << 2^64 (all our uses).
  return n == 0 ? 0 : next_u64() % n;
}

double SplitMix64::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_ = r * std::sin(theta);
  have_spare_ = true;
  return r * std::cos(theta);
}

namespace {
inline std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 33)) * 0xFF51AFD7ED558CCDull;
  x = (x ^ (x >> 33)) * 0xC4CEB9FE1A85EC53ull;
  return x ^ (x >> 33);
}
}  // namespace

std::uint64_t CounterRng::at(std::uint64_t counter) const {
  return mix(mix(counter + 0x9E3779B97F4A7C15ull) ^ mix(seed_));
}

double CounterRng::double_at(std::uint64_t counter) const {
  return static_cast<double>(at(counter) >> 11) * 0x1.0p-53;
}

float CounterRng::float_at(std::uint64_t counter) const {
  return static_cast<float>(at(counter) >> 40) * 0x1.0p-24f;
}

}  // namespace g80
