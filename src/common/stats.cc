#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace g80 {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  G80_CHECK(bins > 0 && hi > lo);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto i = static_cast<long long>(t * static_cast<double>(counts_.size()));
  i = std::clamp<long long>(i, 0, static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(i)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double rel_err(double a, double b, double eps) {
  return std::abs(a - b) / std::max(std::abs(b), eps);
}

}  // namespace g80
