#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace g80 {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  G80_CHECK(bins > 0 && hi > lo);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto i = static_cast<long long>(t * static_cast<double>(counts_.size()));
  i = std::clamp<long long>(i, 0, static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(i)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

LogBuckets::LogBuckets(double first_upper, double growth, std::size_t n)
    : first_upper_(first_upper),
      growth_(growth),
      inv_log_growth_(1.0 / std::log(growth)),
      n_(n) {
  G80_CHECK(first_upper > 0 && growth > 1 && n >= 1);
}

std::size_t LogBuckets::index_for(double v) const {
  if (!(v > first_upper_)) return 0;  // also catches NaN and negatives
  const double i = std::ceil(std::log(v / first_upper_) * inv_log_growth_);
  if (i >= static_cast<double>(n_ - 1)) return n_ - 1;
  const auto idx = static_cast<std::size_t>(i);
  // Guard the float rounding at exact bucket bounds: index_for(upper_bound(i))
  // must be i, never i+1.
  if (idx > 0 && v <= upper_bound(idx - 1)) return idx - 1;
  return idx;
}

double LogBuckets::upper_bound(std::size_t i) const {
  if (i + 1 >= n_) return std::numeric_limits<double>::infinity();
  return first_upper_ * std::pow(growth_, static_cast<double>(i));
}

double LogBuckets::lower_bound(std::size_t i) const {
  return i == 0 ? 0.0 : upper_bound(i - 1);
}

double LogBuckets::quantile(const std::uint64_t* counts, std::size_t n,
                            double q) const {
  G80_CHECK(n == n_);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += counts[i];
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank in [1, total]: the smallest sample index covering quantile q.
  const auto rank = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] < rank) {
      seen += counts[i];
      continue;
    }
    // Interpolate the rank's position inside bucket i.  The open-ended last
    // bucket has no finite upper bound; report its lower bound instead of
    // inventing one.
    const double lo = lower_bound(i);
    const double hi = upper_bound(i);
    if (!std::isfinite(hi)) return lo;
    const double frac = static_cast<double>(rank - seen) /
                        static_cast<double>(counts[i]);
    return lo + (hi - lo) * frac;
  }
  return lower_bound(n - 1);  // unreachable: rank <= total
}

double rel_err(double a, double b, double eps) {
  return std::abs(a - b) / std::max(std::abs(b), eps);
}

}  // namespace g80
