// Error handling primitives used across g80sim.
//
// The simulator favours fail-fast semantics: a programming-model violation
// (e.g. a divergent __syncthreads, an out-of-bounds device access) throws
// g80::Error with a descriptive message, mirroring how the real CUDA runtime
// surfaces launch failures.
//
// Violations with a CUDA-runtime analogue additionally carry a g80::Status
// code (the cudaError_t of this simulator).  A StatusError thrown inside a
// launch is recorded sticky on the Device, so hosts that prefer error-code
// handling can query device.get_last_error() after catching — or instead of
// inspecting — the exception.  The throw itself stays as the invariant
// backstop: no violation is ever silently swallowed.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace g80 {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Structured error codes, mirroring the cudaError_t values a CUDA 0.8 host
// would see for the same violations.
enum class Status {
  kSuccess = 0,
  kInvalidValue,          // bad host-side argument (zero-size alloc, size overflow)
  kMemoryAllocation,      // device global memory exhausted (cudaErrorMemoryAllocation)
  kInvalidConfiguration,  // block/grid dimensions violate hardware limits
  kLaunchOutOfResources,  // per-SM shared memory or register file exceeded
  kConstantSpaceExceeded, // 64 KB constant space exhausted
  kInvalidAddress,        // device access outside an allocation
  kBarrierDivergence,     // __syncthreads under divergent control flow (g80check)
  kSharedMemoryRace,      // unsynchronized shared-memory communication (g80check)
  kLaunchFailure,         // kernel aborted for any other reason
  // g80rt runtime misuse (see docs/runtime.md):
  kInvalidResourceHandle, // op on a destroyed stream or event
  kInvalidDevice,         // event used with a runtime other than its creator's
  kNotReady,              // event elapsed-time queried before both events completed
  kNotPermitted,          // synchronization from inside a stream callback
  // g80resil recovery semantics (see docs/error-handling.md):
  kTimeout,               // launch exceeded its watchdog / modeled timeout
  kRecovered,             // launch succeeded only after resilience retries
};

inline std::string_view status_name(Status s) {
  switch (s) {
    case Status::kSuccess: return "success";
    case Status::kInvalidValue: return "invalid value";
    case Status::kMemoryAllocation: return "out of memory";
    case Status::kInvalidConfiguration: return "invalid configuration";
    case Status::kLaunchOutOfResources: return "too many resources requested for launch";
    case Status::kConstantSpaceExceeded: return "constant space exceeded";
    case Status::kInvalidAddress: return "invalid device address";
    case Status::kBarrierDivergence: return "barrier divergence";
    case Status::kSharedMemoryRace: return "shared memory race";
    case Status::kLaunchFailure: return "launch failure";
    case Status::kInvalidResourceHandle: return "invalid resource handle";
    case Status::kInvalidDevice: return "invalid device";
    case Status::kNotReady: return "device not ready";
    case Status::kNotPermitted: return "operation not permitted";
    case Status::kTimeout: return "launch timeout";
    case Status::kRecovered: return "recovered after retry";
  }
  return "unknown status";
}

class StatusError : public Error {
 public:
  StatusError(Status s, const std::string& what) : Error(what), status_(s) {}
  Status status() const { return status_; }

 private:
  Status status_;
};

namespace detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace g80

// Raise a StatusError with a streamed message when `cond` is violated:
//   G80_RAISE_IF(i >= n, Status::kInvalidAddress, "load oob: " << i);
// Use for programming-model violations with a CUDA-runtime analogue;
// G80_CHECK remains for internal simulator invariants.
#define G80_RAISE_IF(cond, status, stream_expr)                        \
  do {                                                                 \
    if (cond) {                                                        \
      std::ostringstream g80_os_;                                      \
      g80_os_ << ::g80::status_name(status) << ": " << stream_expr;    \
      throw ::g80::StatusError(status, g80_os_.str());                 \
    }                                                                  \
  } while (0)

// Always-on invariant check (simulator correctness, not input validation).
#define G80_CHECK(cond)                                               \
  do {                                                                \
    if (!(cond)) ::g80::detail::fail(#cond, __FILE__, __LINE__, {});  \
  } while (0)

// Check with a streamed message: G80_CHECK_MSG(x > 0, "x=" << x).
#define G80_CHECK_MSG(cond, stream_expr)                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream g80_os_;                                     \
      g80_os_ << stream_expr;                                         \
      ::g80::detail::fail(#cond, __FILE__, __LINE__, g80_os_.str());  \
    }                                                                 \
  } while (0)
