// Error handling primitives used across g80sim.
//
// The simulator favours fail-fast semantics: a programming-model violation
// (e.g. a divergent __syncthreads, an out-of-bounds device access) throws
// g80::Error with a descriptive message, mirroring how the real CUDA runtime
// surfaces launch failures.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace g80 {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace g80

// Always-on invariant check (simulator correctness, not input validation).
#define G80_CHECK(cond)                                               \
  do {                                                                \
    if (!(cond)) ::g80::detail::fail(#cond, __FILE__, __LINE__, {});  \
  } while (0)

// Check with a streamed message: G80_CHECK_MSG(x > 0, "x=" << x).
#define G80_CHECK_MSG(cond, stream_expr)                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream g80_os_;                                     \
      g80_os_ << stream_expr;                                         \
      ::g80::detail::fail(#cond, __FILE__, __LINE__, g80_os_.str());  \
    }                                                                 \
  } while (0)
