// Plain-text table formatter used by the bench binaries to print the paper's
// tables and figures in a shape directly comparable to the original.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace g80 {

class TextTable {
 public:
  // `headers` fixes the column count; every row must match it.
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Renders with a header underline and column alignment (numbers right,
  // text left — detected per cell).
  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace g80
