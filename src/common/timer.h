// Wall-clock timer for CPU-baseline measurement.
#pragma once

#include <chrono>

namespace g80 {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace g80
