#include "common/provenance.h"

#include <cstdio>
#include <utility>

#include "common/version.h"  // configured from version.h.in

namespace g80 {

Provenance build_provenance(std::string schema, int schema_version) {
  Provenance p;
  p.schema = std::move(schema);
  p.schema_version = schema_version;
  p.git_describe = G80_GIT_DESCRIBE;
  p.build_config = G80_BUILD_CONFIG;
  return p;
}

void write_provenance(JsonWriter& w, const Provenance& p) {
  char hash[2 + 16 + 1] = "";
  if (p.device_spec_hash != 0) {
    std::snprintf(hash, sizeof hash, "0x%016llx",
                  static_cast<unsigned long long>(p.device_spec_hash));
  }
  w.key("provenance")
      .begin_object()
      .kv("schema", p.schema)
      .kv("schema_version", p.schema_version)
      .kv("git_describe", p.git_describe)
      .kv("build_config", p.build_config)
      .kv("device", p.device)
      .kv("device_spec_hash", static_cast<const char*>(hash))
      .end_object();
}

}  // namespace g80
