#include "common/table.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/error.h"
#include "common/str.h"

namespace g80 {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
          c == '+' || c == 'e' || c == 'E' || c == '%' || c == 'x' || c == 'X'))
      return false;
  }
  return std::isdigit(static_cast<unsigned char>(s.front())) || s.front() == '-' ||
         s.front() == '+' || s.front() == '.';
}
}  // namespace

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  G80_CHECK(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  G80_CHECK_MSG(cells.size() == headers_.size(),
                "row has " << cells.size() << " cells, expected " << headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> w(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) w[c] = std::max(w[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row, bool align_numeric) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const bool right = align_numeric && looks_numeric(row[c]);
      os << (c ? "  " : "")
         << (right ? pad_left(row[c], w[c]) : pad_right(row[c], w[c]));
    }
    os << "\n";
  };

  print_row(headers_, false);
  std::size_t total = 0;
  for (std::size_t c = 0; c < w.size(); ++c) total += w[c] + (c ? 2 : 0);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row, true);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace g80
