// Stable content hashing for cache keys and artifact provenance.
//
// The g80serve result cache memoizes simulation results on disk, keyed by
// (kernel id, launch config, device spec, model version).  Those keys must
// be *content* hashes: independent of struct layout, padding, field order in
// memory, and host endianness — a cache written on one build must hit on
// another.  ContentHasher therefore never hashes raw struct bytes; every
// field is rendered to a canonical text form (fixed printf formats, a
// separator byte between fields so adjacent fields cannot alias) and fed
// through FNV-1a.  device_spec_hash (hw/device_spec.cc) and
// launch_config_hash (below) are both built on it, and
// tests/content_hash_test.cc pins golden values so an accidental change to
// the canonicalization — which would silently orphan every on-disk cache
// entry and every checked-in bench baseline — fails loudly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace g80 {

// FNV-1a over canonicalized fields.  Feed fields in a fixed documented
// order; digest() may be read at any point (hashing more fields afterwards
// is fine).
class ContentHasher {
 public:
  // One field in canonical text form.  Each call appends a 0xff separator
  // after the field's bytes, so str("ab"); str("c") never collides with
  // str("a"); str("bc").
  void str(std::string_view s);
  void i64(std::int64_t v);   // rendered "%" PRId64
  void u64(std::uint64_t v);  // rendered "%" PRIu64
  // Doubles render through "%.17g": every distinct double has a distinct
  // rendering, and equal values hash equally on every platform.
  void f64(double v);
  void boolean(bool v) { u64(v ? 1 : 0); }

  // Raw bytes (plus separator).  NOT layout-canonical — use only for data
  // that is already a defined byte sequence (e.g. a float buffer being
  // checksummed within one process), never for structs.
  void raw(const void* data, std::size_t bytes);

  std::uint64_t digest() const { return h_; }

  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

 private:
  void byte(unsigned char b) {
    h_ ^= b;
    h_ *= kPrime;
  }
  void separator() { byte(0xff); }

  std::uint64_t h_ = kOffsetBasis;
};

// The serializable subset of a kernel launch configuration — everything
// that changes what a deterministic simulation returns.  This is the wire
// form g80serve jobs carry and the unit the result cache keys on; it is
// deliberately independent of cudalite's LaunchOptions (which holds
// process-local pointers: pools, profiler sinks, fault hooks).
struct LaunchConfig {
  std::uint32_t grid_x = 1, grid_y = 1;              // G80 grids are 2-D
  std::uint32_t block_x = 1, block_y = 1, block_z = 1;
  int regs_per_thread = 10;
  int sample_blocks = 4;   // trace-pass sample size
  bool functional = true;  // run the full functional pass
  bool uses_sync = true;   // kernel calls __syncthreads

  std::uint64_t threads_per_block() const {
    return static_cast<std::uint64_t>(block_x) * block_y * block_z;
  }
  std::uint64_t total_blocks() const {
    return static_cast<std::uint64_t>(grid_x) * grid_y;
  }
};

// Stable content hash of a LaunchConfig (field order fixed by this function,
// not by the struct's memory layout).
std::uint64_t launch_config_hash(const LaunchConfig& c);

}  // namespace g80
