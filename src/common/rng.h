// Deterministic random number generation for workload synthesis.
//
// Two generators are provided:
//  - SplitMix64: a tiny, fast sequential PRNG used for host-side workload
//    generation.
//  - CounterRng: a counter-based (Philox-lite) generator whose output is a
//    pure function of (seed, counter).  Kernels that need per-thread random
//    streams (PNS, TPACF jackknife resamples, RC5 plaintexts) use it so the
//    simulated-GPU and CPU-reference versions see *identical* streams
//    regardless of execution order.
#pragma once

#include <cstdint>

namespace g80 {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64();
  // Uniform in [0, 1).
  double next_double();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  float uniform_f(float lo, float hi);
  // Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n);
  // Standard normal via Box-Muller.
  double normal();

 private:
  std::uint64_t state_;
  bool have_spare_ = false;
  double spare_ = 0.0;
};

// Stateless counter-based generator: hash of (seed, counter) with strong
// avalanche (two rounds of a 128-bit multiply mix, in the spirit of Philox).
class CounterRng {
 public:
  explicit CounterRng(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t at(std::uint64_t counter) const;
  double double_at(std::uint64_t counter) const;   // [0, 1)
  float float_at(std::uint64_t counter) const;     // [0, 1)

 private:
  std::uint64_t seed_;
};

}  // namespace g80
