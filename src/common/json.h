// Minimal ordered JSON writer for the machine-readable artifacts the repo
// emits (g80prof kernel reports, Chrome trace-event files, bench output).
//
// Deliberately tiny: no DOM, no parsing — callers stream objects/arrays in
// order and the writer handles quoting, escaping, separators and number
// formatting.  Misnesting (closing an array as an object, a key outside an
// object, two keys in a row) throws g80::Error so malformed artifacts can
// never be written silently.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace g80 {

std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Object member key; must be followed by a value or container open.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v);
  // Finite doubles render with up to 12 significant digits; non-finite
  // values render as null (JSON has no inf/nan).
  JsonWriter& value(double v);

  // Convenience: key + value in one call.
  template <class T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  // Finishes and returns the document; the writer must be back at top level.
  std::string str() const;

 private:
  enum class Scope { kObject, kArray };
  void before_value();

  std::string out_;
  std::vector<Scope> stack_;
  bool need_comma_ = false;
  bool have_key_ = false;
};

}  // namespace g80
