// Minimal ordered JSON support for the machine-readable artifacts the repo
// emits (g80prof kernel reports, Chrome trace-event files, bench output) and
// the line-delimited g80serve wire protocol.
//
// Two halves, both deliberately tiny:
//   - JsonWriter streams objects/arrays in order and handles quoting,
//     escaping, separators and number formatting.  Misnesting (closing an
//     array as an object, a key outside an object, two keys in a row)
//     throws g80::Error so malformed artifacts can never be written
//     silently.
//   - JsonValue is a recursive-descent parsed DOM for the serve protocol's
//     request/response lines.  Object member order and the exact number
//     lexemes of the input are preserved, so `dump()` of a document this
//     repo's JsonWriter produced is byte-identical to the original — the
//     property the g80serve result cache's bit-exactness checks rely on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace g80 {

std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Object member key; must be followed by a value or container open.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v);
  // Finite doubles render with up to 12 significant digits; non-finite
  // values render as null (JSON has no inf/nan).
  JsonWriter& value(double v);

  // Splices an already-serialized JSON value verbatim (no re-escaping, no
  // validation).  The g80serve response path uses this to embed a cached
  // result payload without re-parsing it — which is what keeps cache hits
  // byte-identical to the cold serialization.
  JsonWriter& raw(std::string_view serialized_json);

  // Convenience: key + value in one call.
  template <class T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  // Finishes and returns the document; the writer must be back at top level.
  std::string str() const;

 private:
  enum class Scope { kObject, kArray };
  void before_value();

  std::string out_;
  std::vector<Scope> stack_;
  bool need_comma_ = false;
  bool have_key_ = false;
};

// Parsed JSON document node.  Strings are unescaped; numbers keep both their
// double value and the original lexeme (see dump()).  Object members stay in
// input order and duplicate keys are rejected at parse time.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  // Parses exactly one JSON value; trailing non-whitespace input, nesting
  // deeper than 64 levels, and every other malformation throw g80::Error
  // with the byte offset of the problem.
  static JsonValue parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors; the wrong kind throws g80::Error (fail-fast, like the
  // writer's misnesting checks).
  bool as_bool() const;
  double as_number() const;
  // as_number rounded to the nearest integer; non-integral values throw so
  // protocol fields like grid sizes cannot silently truncate.
  std::int64_t as_int() const;
  const std::string& as_string() const;

  // Arrays.
  std::size_t size() const;  // array element or object member count
  const JsonValue& at(std::size_t i) const;

  // Objects: get() returns null when the key is absent — the protocol's
  // optional fields; require() throws naming the missing key.
  const JsonValue* get(std::string_view key) const;
  const JsonValue& require(std::string_view key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  // Convenience for optional scalar protocol fields.
  std::string get_string(std::string_view key, std::string fallback) const;
  std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
  double get_number(std::string_view key, double fallback) const;
  bool get_bool(std::string_view key, bool fallback) const;

  // Re-serializes the tree: member order preserved, strings re-escaped with
  // json_escape, numbers emitted as their original input lexeme.  For input
  // produced by JsonWriter this round-trips byte-identically.
  std::string dump() const;

 private:
  friend struct JsonBuilder;  // parser-side access (json.cc)

  void expect(Kind k, const char* what) const;
  void dump_to(std::string& out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string scalar_;  // string value, or the number's input lexeme
  std::vector<JsonValue> elems_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace g80
