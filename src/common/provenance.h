// Common provenance stamp for every machine-readable artifact the repo
// emits (g80prof profile JSON, Chrome traces, g80scope series, bench
// results).  A consumer diffing two artifacts — most importantly
// scripts/check_bench_regression.py — can refuse to compare numbers that
// came from different schemas, build configurations, or modeled devices.
//
// The build fields come from a header CMake configures at build time
// (common/version.h.in); the device fields are filled by the emitting layer
// from its DeviceSpec (common cannot depend on hw), typically via
// hw/device_spec.h's device_spec_hash().
#pragma once

#include <cstdint>
#include <string>

#include "common/json.h"

namespace g80 {

struct Provenance {
  std::string schema;        // artifact kind, e.g. "g80bench-result"
  int schema_version = 1;
  std::string git_describe;  // `git describe --always --dirty --tags`
  std::string build_config;  // CMAKE_BUILD_TYPE
  std::string device;        // DeviceSpec::name; empty if not device-bound
  std::uint64_t device_spec_hash = 0;  // 0 if not device-bound
};

// Provenance with the build-identity fields filled in and the device fields
// left empty for the caller.
Provenance build_provenance(std::string schema, int schema_version = 1);

// Writes `"provenance": {...}` as the next member of the currently open
// JSON object.  The spec hash renders as a hex string so no consumer ever
// rounds it through a double.
void write_provenance(JsonWriter& w, const Provenance& p);

}  // namespace g80
