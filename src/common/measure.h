// Repetition-based wall-clock measurement for the CPU baselines.
#pragma once

#include <functional>

#include "common/timer.h"

namespace g80 {

// Runs `fn` repeatedly until at least `min_seconds` of wall time and
// `min_reps` repetitions have accumulated; returns mean seconds per call.
inline double measure_seconds(const std::function<void()>& fn,
                              int min_reps = 2, double min_seconds = 0.02) {
  Timer t;
  int reps = 0;
  do {
    fn();
    ++reps;
  } while (reps < min_reps || t.seconds() < min_seconds);
  return t.seconds() / reps;
}

}  // namespace g80
