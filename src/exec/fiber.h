// Cooperative fibers used to give every simulated GPU thread its own stack,
// so kernels can call __syncthreads() from arbitrary points — inside loops,
// between shared-memory phases — exactly like CUDA.
//
// Fibers only yield at explicit suspension points (barriers), so a block's
// threads otherwise run to completion in-order; functional results are
// deterministic.
//
// Two interchangeable switch engines sit behind the same interface:
//
//  - kFast: a hand-rolled x86-64 stack switch (fiber_ctx.S) that swaps only
//    the callee-saved registers and FP control words.  ~30 ns per switch.
//    This is the default on non-sanitized x86-64 builds.
//  - kUcontext: glibc swapcontext, which performs an rt_sigprocmask syscall
//    per switch (~300 ns + syscall).  Required under ASan/TSan — the fast
//    engine has no sanitizer fiber annotations — and on other architectures;
//    also selectable at runtime (G80_FIBER_BACKEND=ucontext, or per launch
//    via LaunchOptions::fiber_backend) as a debugging escape hatch and as
//    the bench reference for the old interpreter's cost.
//
// Both engines are bit-identical in observable behaviour (scheduling order,
// exception propagation, barrier counts); tests/exec_fastpath_test.cc
// asserts this directly.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace g80 {

class Fiber {
 public:
  enum class State { kIdle, kRunnable, kSuspended, kDone };
  enum class Backend { kFast, kUcontext };

  // True when the hand-rolled switch is usable in this build (x86-64,
  // no ASan/TSan instrumentation).
  static bool fast_backend_supported();

  // kFast when supported and not overridden by G80_FIBER_BACKEND=ucontext
  // in the environment (checked once per process), else kUcontext.
  static Backend default_backend();

  // Requests for kFast degrade silently to kUcontext when unsupported, so
  // callers can pass a backend through unconditionally.
  explicit Fiber(std::size_t stack_bytes = 128 * 1024,
                 Backend backend = default_backend());
  ~Fiber();  // releases the TSan fiber context in sanitized builds

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // (Re)arm the fiber with a new body; reuses the stack.
  void start(std::function<void()> body);

  // Allocation-free re-arm for the hot path: no std::function is
  // constructed, the entry function is called with `arg` on first resume.
  using RawEntry = void (*)(void*);
  void start(RawEntry entry, void* arg);

  // Switch into the fiber until it yields or finishes.  Returns the state it
  // ended in (kSuspended or kDone).  If the body threw, the exception is
  // rethrown here on the scheduler's stack.
  State resume();

  // Called from inside the fiber body: suspend back to the scheduler.
  void yield();

  State state() const { return state_; }
  Backend backend() const { return backend_; }

 private:
  static void trampoline(unsigned hi, unsigned lo);
  static void fast_trampoline(void* self);
  void arm_common();
  void arm_ucontext();
  void arm_fast();
  void run_body();

  std::vector<char> stack_;
  Backend backend_;
  ucontext_t context_{};
  ucontext_t return_context_{};
  // Fast-engine saved stack pointers: the fiber's own (valid while parked)
  // and the scheduler frame to return to (valid while the fiber runs).
  void* fast_sp_ = nullptr;
  void* fast_sched_sp_ = nullptr;
  RawEntry raw_entry_ = nullptr;
  void* raw_arg_ = nullptr;
  std::function<void()> body_;
  std::exception_ptr pending_exception_;
  State state_ = State::kIdle;
  // Scheduler-stack bounds, learned on first entry; used by the ASan
  // fiber-switch annotations (no-ops in non-sanitized builds).
  const void* sched_stack_bottom_ = nullptr;
  std::size_t sched_stack_size_ = 0;
  // ThreadSanitizer fiber contexts (nullptr in non-TSan builds).  Without
  // them TSan's shadow stack is left describing the scheduler while fiber
  // frames execute, producing bogus races and stack-corruption reports.
  void* tsan_fiber_ = nullptr;
  void* tsan_sched_fiber_ = nullptr;
};

}  // namespace g80
