// Cooperative fibers (ucontext-based) used to give every simulated GPU
// thread its own stack, so kernels can call __syncthreads() from arbitrary
// points — inside loops, between shared-memory phases — exactly like CUDA.
//
// Fibers only yield at explicit suspension points (barriers), so a block's
// threads otherwise run to completion in-order; functional results are
// deterministic.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace g80 {

class Fiber {
 public:
  enum class State { kIdle, kRunnable, kSuspended, kDone };

  explicit Fiber(std::size_t stack_bytes = 128 * 1024);
  ~Fiber();  // releases the TSan fiber context in sanitized builds

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // (Re)arm the fiber with a new body; reuses the stack.
  void start(std::function<void()> body);

  // Switch into the fiber until it yields or finishes.  Returns the state it
  // ended in (kSuspended or kDone).  If the body threw, the exception is
  // rethrown here on the scheduler's stack.
  State resume();

  // Called from inside the fiber body: suspend back to the scheduler.
  void yield();

  State state() const { return state_; }

 private:
  static void trampoline(unsigned hi, unsigned lo);
  void run_body();

  std::vector<char> stack_;
  ucontext_t context_{};
  ucontext_t return_context_{};
  std::function<void()> body_;
  std::exception_ptr pending_exception_;
  State state_ = State::kIdle;
  // Scheduler-stack bounds, learned on first entry; used by the ASan
  // fiber-switch annotations (no-ops in non-sanitized builds).
  const void* sched_stack_bottom_ = nullptr;
  std::size_t sched_stack_size_ = 0;
  // ThreadSanitizer fiber contexts (nullptr in non-TSan builds).  Without
  // them TSan's shadow stack is left describing the scheduler while fiber
  // frames execute, producing bogus races and stack-corruption reports.
  void* tsan_fiber_ = nullptr;
  void* tsan_sched_fiber_ = nullptr;
};

}  // namespace g80
