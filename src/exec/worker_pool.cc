#include "exec/worker_pool.h"

#include <algorithm>
#include <atomic>

namespace g80 {

// One parallel_for in flight.  Lives on the caller's stack; helpers only
// touch it between registration and the caller's final active==0 wait.
struct WorkerPool::Job {
  std::uint64_t total = 0;
  std::uint64_t chunk = 1;
  const std::function<void(int, std::uint64_t)>* body = nullptr;
  const CancelToken* cancel = nullptr;  // optional watchdog token
  std::atomic<std::uint64_t> next{0};  // next unclaimed index
  std::atomic<int> next_slot{1};       // slot 0 is the caller
  int active = 0;                      // helpers inside work() (guarded by mu_)
  // Lowest-index exception wins, making failures order-independent.
  std::mutex err_mu;
  std::uint64_t err_index = ~0ull;
  std::exception_ptr err;

  bool cancelled() const { return cancel != nullptr && cancel->cancelled(); }

  bool claimable(int width) const {
    return !cancelled() &&
           next.load(std::memory_order_relaxed) < total &&
           next_slot.load(std::memory_order_relaxed) < width;
  }
};

WorkerPool::WorkerPool(int width) : width_(std::max(1, width)) {
  threads_.reserve(static_cast<std::size_t>(width_ - 1));
  for (int i = 1; i < width_; ++i)
    threads_.emplace_back([this] { helper_loop(); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

int WorkerPool::default_width(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(static_cast<int>(hw == 0 ? 1 : hw), 1, 16);
}

void WorkerPool::work(Job& job, int slot) {
  for (;;) {
    // Cancellation point: a fired watchdog stops new chunks being claimed;
    // parallel_for converts the skipped remainder into the token's error.
    if (job.cancelled()) return;
    const std::uint64_t begin =
        job.next.fetch_add(job.chunk, std::memory_order_relaxed);
    if (begin >= job.total) return;
    const std::uint64_t end = std::min(begin + job.chunk, job.total);
    for (std::uint64_t i = begin; i < end; ++i) {
      try {
        (*job.body)(slot, i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(job.err_mu);
        if (i < job.err_index) {
          job.err_index = i;
          job.err = std::current_exception();
        }
        break;  // abandon the rest of this chunk; other chunks still run
      }
    }
  }
}

void WorkerPool::parallel_for(
    std::uint64_t total, const std::function<void(int, std::uint64_t)>& body,
    const CancelToken* cancel) {
  if (total == 0) return;
  Job job;
  job.total = total;
  job.body = &body;
  job.cancel = cancel;
  // Small chunks balance heterogeneous block costs; ~8 chunks per slot.
  job.chunk = std::max<std::uint64_t>(
      1, total / (static_cast<std::uint64_t>(width_) * 8));

  if (width_ <= 1 || total == 1) {
    work(job, 0);
  } else {
    {
      std::lock_guard<std::mutex> lk(mu_);
      jobs_.push_back(&job);
    }
    work_cv_.notify_all();
    work(job, 0);
    {
      std::unique_lock<std::mutex> lk(mu_);
      jobs_.erase(std::find(jobs_.begin(), jobs_.end(), &job));
      done_cv_.wait(lk, [&] { return job.active == 0; });
    }
  }
  if (job.err) std::rethrow_exception(job.err);
  // Indices skipped because the token fired must not read as success.  A
  // body exception (above) takes precedence — it usually IS the timeout,
  // thrown from a cancellation check inside the body.
  if (cancel != nullptr && cancel->cancelled() &&
      job.next.load(std::memory_order_relaxed) < job.total) {
    cancel->check("parallel_for");
  }
}

void WorkerPool::helper_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] {
      if (stopping_) return true;
      return std::any_of(jobs_.begin(), jobs_.end(),
                         [&](Job* j) { return j->claimable(width_); });
    });
    if (stopping_) return;
    for (Job* job : jobs_) {
      if (!job->claimable(width_)) continue;
      const int slot = job->next_slot.fetch_add(1, std::memory_order_relaxed);
      if (slot >= width_) continue;  // lost the race for the last slot
      ++job->active;
      lk.unlock();
      work(*job, slot);
      lk.lock();
      if (--job->active == 0) done_cv_.notify_all();
      break;  // re-evaluate the job list from scratch
    }
  }
}

}  // namespace g80
