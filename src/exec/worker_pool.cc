#include "exec/worker_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace g80 {
namespace {

// One contiguous range of unclaimed indices, owned by one slot.  begin/end
// are atomics only so victim-selection peeks outside the mutex are
// race-free; all mutation happens under mu.  Cache-line aligned so
// neighbouring shards don't false-share under contention.
struct alignas(64) PoolShard {
  std::mutex mu;
  std::atomic<std::uint64_t> begin{0};
  std::atomic<std::uint64_t> end{0};
};

// Pop a chunk off the front of a shard: ~1/8 of the remainder (at least 1),
// so chunks start near total/(8*width) and shrink geometrically toward the
// tail — the same balance/overhead trade the old fixed chunking aimed at,
// but adaptive to how much of the shard is left after steals.
bool pop_front(PoolShard& s, std::uint64_t* b, std::uint64_t* e) {
  std::lock_guard<std::mutex> lk(s.mu);
  const std::uint64_t begin = s.begin.load(std::memory_order_relaxed);
  const std::uint64_t end = s.end.load(std::memory_order_relaxed);
  if (begin >= end) return false;
  const std::uint64_t take = std::max<std::uint64_t>(1, (end - begin) / 8);
  *b = begin;
  *e = begin + take;
  s.begin.store(*e, std::memory_order_relaxed);
  return true;
}

// Take the back half (rounded up) of a victim shard.
bool steal_back(PoolShard& v, std::uint64_t* b, std::uint64_t* e) {
  std::lock_guard<std::mutex> lk(v.mu);
  const std::uint64_t begin = v.begin.load(std::memory_order_relaxed);
  const std::uint64_t end = v.end.load(std::memory_order_relaxed);
  if (begin >= end) return false;
  const std::uint64_t take = (end - begin + 1) / 2;
  *b = end - take;
  *e = end;
  v.end.store(*b, std::memory_order_relaxed);
  return true;
}

// Refill `slot`'s (drained) shard from the richest victim.  Extraction and
// installation never hold two shard locks at once — two slots stealing from
// each other's shards would otherwise deadlock.  Returns false when every
// peek came up empty (possibly transiently: a range mid-steal is invisible).
bool steal_into(PoolShard* shards, int nshards, int slot) {
  int best = -1;
  std::uint64_t best_rem = 0;
  for (int s = 0; s < nshards; ++s) {
    if (s == slot) continue;
    // Relaxed peeks: mis-ranking a racing shard is harmless, steal_back
    // re-checks under the lock.
    const std::uint64_t b = shards[s].begin.load(std::memory_order_relaxed);
    const std::uint64_t e = shards[s].end.load(std::memory_order_relaxed);
    const std::uint64_t rem = e > b ? e - b : 0;
    if (rem > best_rem) {
      best_rem = rem;
      best = s;
    }
  }
  if (best < 0) return false;
  std::uint64_t b = 0, e = 0;
  if (!steal_back(shards[best], &b, &e)) return false;
  // Only the owner ever installs into its shard, and only while it is
  // empty, so this cannot clobber unclaimed work.
  std::lock_guard<std::mutex> lk(shards[slot].mu);
  shards[slot].begin.store(b, std::memory_order_relaxed);
  shards[slot].end.store(e, std::memory_order_relaxed);
  return true;
}

}  // namespace

// One parallel_for in flight.  Lives on the caller's stack; helpers only
// touch it between registration and the caller's final active==0 wait.
struct WorkerPool::Job {
  std::uint64_t total = 0;
  const std::function<void(int, std::uint64_t)>* body = nullptr;
  const CancelToken* cancel = nullptr;  // optional watchdog token
  std::unique_ptr<PoolShard[]> shards;  // one per slot, set by parallel_for
  int nshards = 0;
  std::atomic<std::uint64_t> claimed{0};  // indices popped by some slot
  std::atomic<int> next_slot{1};       // slot 0 is the caller
  int active = 0;                      // helpers inside work() (guarded by mu_)
  // Lowest-index exception wins, making failures order-independent.
  std::mutex err_mu;
  std::uint64_t err_index = ~0ull;
  std::exception_ptr err;

  bool cancelled() const { return cancel != nullptr && cancel->cancelled(); }

  bool claimable(int width) const {
    return !cancelled() &&
           claimed.load(std::memory_order_relaxed) < total &&
           next_slot.load(std::memory_order_relaxed) < width;
  }
};

WorkerPool::WorkerPool(int width) : width_(std::max(1, width)) {
  threads_.reserve(static_cast<std::size_t>(width_ - 1));
  for (int i = 1; i < width_; ++i)
    threads_.emplace_back([this] { helper_loop(); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

int WorkerPool::default_width(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(static_cast<int>(hw == 0 ? 1 : hw), 1, 16);
}

void WorkerPool::work(Job& job, int slot) {
  PoolShard& mine = job.shards[slot];
  for (;;) {
    // Cancellation point: a fired watchdog stops new chunks being claimed;
    // parallel_for converts the skipped remainder into the token's error.
    if (job.cancelled()) return;
    std::uint64_t begin = 0, end = 0;
    if (!pop_front(mine, &begin, &end)) {
      // Own shard drained: steal, then pop from the refilled shard.
      if (!steal_into(job.shards.get(), job.nshards, slot)) {
        if (job.claimed.load(std::memory_order_relaxed) >= job.total)
          return;  // every index was popped by someone
        // Transient emptiness: a thief holds an extracted range it has not
        // installed yet.  Let it land rather than exit with work pending.
        std::this_thread::yield();
      }
      continue;
    }
    job.claimed.fetch_add(end - begin, std::memory_order_relaxed);
    for (std::uint64_t i = begin; i < end; ++i) {
      try {
        (*job.body)(slot, i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(job.err_mu);
        if (i < job.err_index) {
          job.err_index = i;
          job.err = std::current_exception();
        }
        break;  // abandon the rest of this chunk; other chunks still run
      }
    }
  }
}

void WorkerPool::parallel_for(
    std::uint64_t total, const std::function<void(int, std::uint64_t)>& body,
    const CancelToken* cancel) {
  if (total == 0) return;
  Job job;
  job.total = total;
  job.body = &body;
  job.cancel = cancel;
  // Ceil-partition the index space into one contiguous shard per slot;
  // slots whose shard drains first rebalance by stealing (see work()).
  job.nshards = width_;
  job.shards = std::make_unique<PoolShard[]>(width_);
  const std::uint64_t base = total / width_;
  const std::uint64_t extra = total % width_;
  std::uint64_t pos = 0;
  for (int s = 0; s < width_; ++s) {
    const std::uint64_t len = base + (static_cast<std::uint64_t>(s) < extra);
    job.shards[s].begin.store(pos, std::memory_order_relaxed);
    job.shards[s].end.store(pos + len, std::memory_order_relaxed);
    pos += len;
  }

  if (width_ <= 1 || total == 1) {
    work(job, 0);
  } else {
    {
      std::lock_guard<std::mutex> lk(mu_);
      jobs_.push_back(&job);
    }
    work_cv_.notify_all();
    work(job, 0);
    {
      std::unique_lock<std::mutex> lk(mu_);
      jobs_.erase(std::find(jobs_.begin(), jobs_.end(), &job));
      done_cv_.wait(lk, [&] { return job.active == 0; });
    }
  }
  if (job.err) std::rethrow_exception(job.err);
  // Indices skipped because the token fired must not read as success.  A
  // body exception (above) takes precedence — it usually IS the timeout,
  // thrown from a cancellation check inside the body.
  if (cancel != nullptr && cancel->cancelled() &&
      job.claimed.load(std::memory_order_relaxed) < job.total) {
    cancel->check("parallel_for");
  }
}

void WorkerPool::helper_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] {
      if (stopping_) return true;
      return std::any_of(jobs_.begin(), jobs_.end(),
                         [&](Job* j) { return j->claimable(width_); });
    });
    if (stopping_) return;
    for (Job* job : jobs_) {
      if (!job->claimable(width_)) continue;
      const int slot = job->next_slot.fetch_add(1, std::memory_order_relaxed);
      if (slot >= width_) continue;  // lost the race for the last slot
      ++job->active;
      lk.unlock();
      work(*job, slot);
      lk.lock();
      if (--job->active == 0) done_cv_.notify_all();
      break;  // re-evaluate the job list from scratch
    }
  }
}

}  // namespace g80
