// Cooperative cancellation for in-flight launches (g80resil).
//
// A CancelToken is armed by a watchdog (resil/resilience.h) and observed at
// the execution layer's natural preemption points: between blocks in
// WorkerPool::parallel_for and at every barrier release in BlockRunner::run.
// Cancellation is therefore prompt for any kernel that either spans multiple
// blocks or keeps synchronizing — the two ways a simulated launch can be
// long-running.  A single thread body spinning without ever reaching a
// barrier is not preemptible (the simulator cannot interrupt arbitrary C++);
// the watchdog contract documents this in docs/error-handling.md.
//
// Observers either poll `cancelled()` (pool level: stop claiming work) or
// call `check()` (launch level: convert the cancellation into the
// StatusError the watchdog requested, typically Status::kTimeout).
#pragma once

#include <atomic>
#include <mutex>
#include <string>

#include "common/error.h"

namespace g80 {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Requests cancellation.  First caller wins; later requests are ignored so
  // the recorded status/reason always names the original cause.
  void request(Status status, const std::string& reason) {
    std::lock_guard<std::mutex> lk(mu_);
    if (cancelled_.load(std::memory_order_relaxed)) return;
    status_ = status;
    reason_ = reason;
    cancelled_.store(true, std::memory_order_release);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  // Throws the requested StatusError if cancellation was requested;
  // otherwise returns immediately.  `where` names the execution phase for
  // the diagnostic ("trace pass", "functional pass", "block barrier").
  void check(const char* where) const {
    if (!cancelled()) return;
    std::lock_guard<std::mutex> lk(mu_);
    throw StatusError(status_, std::string(status_name(status_)) + ": " +
                                   reason_ + " (observed in " + where + ")");
  }

  Status status() const {
    std::lock_guard<std::mutex> lk(mu_);
    return status_;
  }
  std::string reason() const {
    std::lock_guard<std::mutex> lk(mu_);
    return reason_;
  }

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;
  Status status_ = Status::kSuccess;  // meaningful only once cancelled
  std::string reason_;
};

}  // namespace g80
