// Persistent host worker pool: the block-scheduling layer of the g80rt
// runtime.  Grid blocks are independent by the CUDA programming model (the
// paper's §2 execution model), so the functional and trace passes of a
// launch can fan their blocks out across host threads.
//
// parallel_for is caller-participating: the invoking thread always claims
// chunks itself, with idle pool threads joining in, so forward progress
// never depends on pool availability — a stream thread already running on
// the pool's behalf can nest a parallel_for without deadlock.  Each
// participant owns one slot for the duration of the call, so per-slot
// scratch (e.g. a BlockRunner with its fibers and shared-memory arena)
// needs no locking.  Exceptions are recorded with the index that raised
// them and the lowest-index one is rethrown after the loop drains, so
// error behaviour is deterministic regardless of thread interleaving.
//
// Scheduling is block-chunked work stealing: the index space is
// pre-partitioned into one contiguous shard per slot, owners pop
// geometrically shrinking chunks off their shard's front, and a slot whose
// shard drains steals the back half of the richest remaining shard — so
// tail blocks of a skewed grid never leave workers idle.  Which slot runs
// which index is timing-dependent, but every index runs exactly once, so
// anything keyed by index (block traces, outputs) stays deterministic.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/cancel.h"

namespace g80 {

class WorkerPool {
 public:
  // Total parallel width including the calling thread: a pool of width N
  // spawns N-1 helper threads.  Width <= 1 runs everything on the caller.
  explicit WorkerPool(int width);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int width() const { return width_; }

  // Calls body(slot, index) for every index in [0, total).  The caller works
  // as slot 0; helpers that pick the job up take slots 1..width-1.  Returns
  // only after every index has been processed (or attempted); if any calls
  // threw, the exception from the lowest index is rethrown.
  //
  // `cancel` (optional) is a cancellation point between blocks: once the
  // token fires, no further indices are claimed, in-flight bodies finish,
  // and — unless a body exception takes precedence — the token's
  // StatusError is thrown so skipped work is never reported as success.
  void parallel_for(std::uint64_t total,
                    const std::function<void(int, std::uint64_t)>& body,
                    const CancelToken* cancel = nullptr);

  // Pool width to use when the caller gave no explicit request (0):
  // hardware_concurrency clamped to [1, 16].
  static int default_width(int requested = 0);

 private:
  struct Job;

  void helper_loop();
  static void work(Job& job, int slot);

  int width_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // helpers wait for claimable jobs
  std::condition_variable done_cv_;  // callers wait for their helpers
  std::vector<Job*> jobs_;           // active jobs (owned by caller stacks)
  bool stopping_ = false;
};

}  // namespace g80
