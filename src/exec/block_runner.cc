#include "exec/block_runner.h"

#include <algorithm>

namespace g80 {

SharedArena::SharedArena(std::size_t capacity_bytes) : storage_(capacity_bytes) {}

void SharedArena::begin_block() {
  layout_.clear();
  layout_end_ = 0;
  std::fill(cursor_.begin(), cursor_.end(), 0);
}

void SharedArena::begin_thread(int tid) {
  if (static_cast<std::size_t>(tid) >= cursor_.size())
    cursor_.resize(tid + 1, 0);
  cursor_[tid] = 0;
}

std::byte* SharedArena::allocate(int tid, std::size_t bytes) {
  constexpr std::size_t kAlign = 16;
  const std::size_t idx = cursor_.at(tid)++;
  if (idx < layout_.size()) {
    // A previous thread already defined this slot; sizes must agree.
    G80_CHECK_MSG(layout_[idx].second == bytes,
                  "thread " << tid << " shared allocation #" << idx << " of "
                            << bytes << " B mismatches block layout of "
                            << layout_[idx].second << " B");
    return storage_.data() + layout_[idx].first;
  }
  G80_CHECK_MSG(idx == layout_.size(), "non-sequential shared allocation");
  const std::size_t offset = (layout_end_ + kAlign - 1) / kAlign * kAlign;
  G80_RAISE_IF(offset + bytes > storage_.size(), Status::kLaunchOutOfResources,
               "shared memory overflow: block needs " << offset + bytes
                   << " B of the SM's " << storage_.size() << " B");
  layout_.emplace_back(offset, bytes);
  layout_end_ = offset + bytes;
  return storage_.data() + offset;
}

BlockRunner::BlockRunner(int max_threads, std::size_t smem_capacity,
                         std::size_t stack_bytes, Fiber::Backend backend)
    : stack_bytes_(stack_bytes), backend_(backend), shared_(smem_capacity) {
  fibers_.reserve(max_threads);
  status_.reserve(max_threads);
}

void BlockRunner::lane_entry(void* arg) {
  const auto* lane = static_cast<const LaneArg*>(arg);
  (*lane->runner->body_)(lane->tid);
}

void BlockRunner::sync(int tid, SyncPoint at) {
  G80_RAISE_IF(direct_mode_, Status::kInvalidConfiguration,
               "__syncthreads called in a launch declared barrier-free "
               "(LaunchOptions::uses_sync == false)");
  status_.at(tid) = ThreadStatus::kAtBarrier;
  // Park-site bookkeeping feeds BarrierSnapshot only; unobserved runs skip
  // the store (sync_points_ is not even sized then).
  if (observer_ != nullptr) sync_points_[tid] = at;
  fibers_[tid]->yield();
  // Resumed: the barrier released.
  status_[tid] = ThreadStatus::kRunning;
}

void BlockRunner::run_direct(int num_threads,
                             const std::function<void(int)>& body) {
  G80_CHECK(num_threads > 0);
  direct_mode_ = true;
  shared_.begin_block();
  barriers_executed_ = 0;
  for (int t = 0; t < num_threads; ++t) {
    // Cancellation point between threads (no barriers exist in this mode).
    if (cancel_ != nullptr) cancel_->check("direct-mode thread loop");
    shared_.begin_thread(t);
    body(t);
  }
  direct_mode_ = false;
}

void BlockRunner::run(int num_threads, const std::function<void(int)>& body) {
  G80_CHECK(num_threads > 0);
  direct_mode_ = false;
  while (static_cast<int>(fibers_.size()) < num_threads)
    fibers_.push_back(std::make_unique<Fiber>(stack_bytes_, backend_));
  status_.assign(num_threads, ThreadStatus::kRunning);
  if (observer_ != nullptr) sync_points_.assign(num_threads, SyncPoint{});
  exited_this_interval_.clear();
  shared_.begin_block();
  barriers_executed_ = 0;

  // Arm one fiber per lane through the raw entry point: the body lives once
  // on the runner and each lane carries a stable (runner, tid) pair, so
  // arming a 256-thread block allocates nothing.  Resize before arming —
  // the fibers hold pointers into lane_args_, so it must not move later.
  body_ = &body;
  if (static_cast<int>(lane_args_.size()) < num_threads) {
    lane_args_.resize(num_threads);
    for (int t = 0; t < num_threads; ++t) lane_args_[t] = LaneArg{this, t};
  }
  for (int t = 0; t < num_threads; ++t) {
    shared_.begin_thread(t);
    fibers_[t]->start(&BlockRunner::lane_entry, &lane_args_[t]);
  }

  const int num_warps = (num_threads + kWarpSize - 1) / kWarpSize;
  warp_live_.assign(num_warps, 0);
  for (int w = 0; w < num_warps; ++w)
    warp_live_[w] = std::min(kWarpSize, num_threads - w * kWarpSize);

  int live = num_threads;
  while (live > 0) {
    // Cancellation point (g80resil): the scheduler regains control between
    // barrier generations, so a fired watchdog preempts even a block whose
    // threads synchronize forever.  Suspended fibers are abandoned here and
    // re-armed from scratch on the next run().
    if (cancel_ != nullptr) cancel_->check("block barrier scheduler");
    // One scheduling pass: advance every live thread to its next barrier or
    // exit, one warp at a time.  Invariant at pass start: every live lane
    // is kRunning (fresh arm, or the release below flipped it back).
    for (int w = 0; w < num_warps; ++w) {
      int& warp_live = warp_live_[w];
      if (warp_live == 0) continue;
      const int lane_begin = w * kWarpSize;
      const int lane_end = std::min(num_threads, lane_begin + kWarpSize);
      if (warp_live == lane_end - lane_begin) {
        // Converged warp: all lanes live, all runnable by the invariant —
        // one batched dispatch, no per-lane status reads.  Exit accounting
        // for an attached observer happens inline, so observed runs (the
        // sanitize pass, scope sessions) keep the batched sweep too; only
        // divergent termination falls back below.
        for (int t = lane_begin; t < lane_end; ++t) {
          if (fibers_[t]->resume() == Fiber::State::kDone) {
            status_[t] = ThreadStatus::kDone;
            --warp_live;
            --live;
            if (observer_) exited_this_interval_.push_back(t);
          }
        }
      } else {
        // Divergent termination within the warp: step the surviving lanes
        // individually, same thread-index order.
        for (int t = lane_begin; t < lane_end; ++t) {
          if (status_[t] != ThreadStatus::kRunning) continue;
          const Fiber::State st = fibers_[t]->resume();
          if (st == Fiber::State::kDone) {
            status_[t] = ThreadStatus::kDone;
            --warp_live;
            --live;
            if (observer_) exited_this_interval_.push_back(t);
          }
          // kSuspended means sync() parked it; status_ already kAtBarrier.
        }
      }
    }
    if (live == 0) break;

    // After a pass every live thread is parked at the barrier (a pass only
    // ends a thread Done or AtBarrier), so the barrier releases.  Threads
    // that already exited no longer participate — the behaviour observed on
    // the real hardware (CUDA leaves a barrier reached by a strict subset
    // undefined; G80 barriers count only active threads).
    if (observer_) {
      BarrierSnapshot snap;
      snap.epoch = barriers_executed_;
      for (int t = 0; t < num_threads; ++t)
        if (status_[t] == ThreadStatus::kAtBarrier)
          snap.waiting.push_back({t, sync_points_[t]});
      snap.exited = exited_this_interval_;
      exited_this_interval_.clear();
      observer_->on_barrier_release(snap);
    }
    ++barriers_executed_;
    for (int t = 0; t < num_threads; ++t)
      if (status_[t] == ThreadStatus::kAtBarrier)
        status_[t] = ThreadStatus::kRunning;
  }
}

}  // namespace g80
