#include "exec/fiber.h"

#include <cstdint>

#include "common/error.h"

namespace g80 {

Fiber::Fiber(std::size_t stack_bytes) : stack_(stack_bytes) {
  G80_CHECK(stack_bytes >= 16 * 1024);
}

void Fiber::start(std::function<void()> body) {
  // Re-arming is allowed from ANY state: after a sibling thread throws, a
  // launch is abandoned with fibers left kRunnable (armed, never entered) or
  // kSuspended (parked mid-kernel).  Both are re-armed from scratch; old
  // stack frames are discarded without unwinding (locals leak), which is
  // acceptable in this fail-fast simulator.  The scheduler never calls
  // start() from inside a fiber, so the stack being rebuilt is never live.
  body_ = std::move(body);
  pending_exception_ = nullptr;

  G80_CHECK(getcontext(&context_) == 0);
  context_.uc_stack.ss_sp = stack_.data();
  context_.uc_stack.ss_size = stack_.size();
  context_.uc_link = &return_context_;

  // makecontext only passes ints; split the pointer across two.
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  const auto hi = static_cast<unsigned>(self >> 32);
  const auto lo = static_cast<unsigned>(self & 0xFFFFFFFFu);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2, hi, lo);
  state_ = State::kRunnable;
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  const auto self = (static_cast<std::uintptr_t>(hi) << 32) |
                    static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(self)->run_body();
}

void Fiber::run_body() {
  try {
    body_();
  } catch (...) {
    pending_exception_ = std::current_exception();
  }
  state_ = State::kDone;
  // Falling off the trampoline returns via uc_link to return_context_.
}

Fiber::State Fiber::resume() {
  G80_CHECK_MSG(state_ == State::kRunnable || state_ == State::kSuspended,
                "resume of a fiber that is not paused");
  state_ = State::kRunnable;
  G80_CHECK(swapcontext(&return_context_, &context_) == 0);
  if (pending_exception_) {
    auto ex = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(ex);
  }
  return state_;
}

void Fiber::yield() {
  state_ = State::kSuspended;
  G80_CHECK(swapcontext(&context_, &return_context_) == 0);
}

}  // namespace g80
