#include "exec/fiber.h"

#include <cstdint>

#include "common/error.h"

// AddressSanitizer must be told about every stack switch, or its shadow
// memory still describes the old stack and fake-stack frames are freed under
// a live fiber.  The annotations follow the protocol in
// <sanitizer/common_interface_defs.h>: start_switch before leaving a
// context, finish_switch immediately after arriving in one.
#if defined(__SANITIZE_ADDRESS__)
#define G80_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define G80_ASAN_FIBERS 1
#endif
#endif

#ifdef G80_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

// ThreadSanitizer needs the same courtesy via its own fiber API: each fiber
// gets a __tsan_create_fiber context, and every swapcontext is preceded by
// __tsan_switch_to_fiber naming the destination.  Otherwise TSan attributes
// fiber frames to the scheduler's stack and reports phantom races.
#if defined(__SANITIZE_THREAD__)
#define G80_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define G80_TSAN_FIBERS 1
#endif
#endif

#ifdef G80_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace g80 {
namespace {

inline void asan_start_switch(void** fake_stack_save, const void* bottom,
                              std::size_t size) {
#ifdef G80_ASAN_FIBERS
  __sanitizer_start_switch_fiber(fake_stack_save, bottom, size);
#else
  (void)fake_stack_save; (void)bottom; (void)size;
#endif
}

inline void asan_finish_switch(void* fake_stack_save, const void** bottom_old,
                               std::size_t* size_old) {
#ifdef G80_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(fake_stack_save, bottom_old, size_old);
#else
  (void)fake_stack_save; (void)bottom_old; (void)size_old;
#endif
}

inline void* tsan_create_fiber() {
#ifdef G80_TSAN_FIBERS
  return __tsan_create_fiber(0);
#else
  return nullptr;
#endif
}

inline void tsan_destroy_fiber(void* fiber) {
#ifdef G80_TSAN_FIBERS
  if (fiber != nullptr) __tsan_destroy_fiber(fiber);
#else
  (void)fiber;
#endif
}

inline void* tsan_current_fiber() {
#ifdef G80_TSAN_FIBERS
  return __tsan_get_current_fiber();
#else
  return nullptr;
#endif
}

inline void tsan_switch_to(void* fiber) {
#ifdef G80_TSAN_FIBERS
  if (fiber != nullptr) __tsan_switch_to_fiber(fiber, 0);
#else
  (void)fiber;
#endif
}

}  // namespace

Fiber::Fiber(std::size_t stack_bytes) : stack_(stack_bytes) {
  G80_CHECK(stack_bytes >= 16 * 1024);
}

Fiber::~Fiber() { tsan_destroy_fiber(tsan_fiber_); }

void Fiber::start(std::function<void()> body) {
  // Re-arming is allowed from ANY state: after a sibling thread throws, a
  // launch is abandoned with fibers left kRunnable (armed, never entered) or
  // kSuspended (parked mid-kernel).  Both are re-armed from scratch; old
  // stack frames are discarded without unwinding (locals leak), which is
  // acceptable in this fail-fast simulator.  The scheduler never calls
  // start() from inside a fiber, so the stack being rebuilt is never live.
  body_ = std::move(body);
  pending_exception_ = nullptr;

  // A fresh TSan context per arming: an abandoned run's happens-before
  // state must not leak into the next kernel on this reused stack.
  tsan_destroy_fiber(tsan_fiber_);
  tsan_fiber_ = tsan_create_fiber();

  G80_CHECK(getcontext(&context_) == 0);
  context_.uc_stack.ss_sp = stack_.data();
  context_.uc_stack.ss_size = stack_.size();
  context_.uc_link = &return_context_;

  // makecontext only passes ints; split the pointer across two.
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  const auto hi = static_cast<unsigned>(self >> 32);
  const auto lo = static_cast<unsigned>(self & 0xFFFFFFFFu);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2, hi, lo);
  state_ = State::kRunnable;
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  const auto self = (static_cast<std::uintptr_t>(hi) << 32) |
                    static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(self)->run_body();
}

void Fiber::run_body() {
  // First entry onto this stack: no fake stack to restore (nullptr), and
  // learn the scheduler's stack bounds for the yields/exit that follow.
  asan_finish_switch(nullptr, &sched_stack_bottom_, &sched_stack_size_);
  try {
    body_();
  } catch (...) {
    pending_exception_ = std::current_exception();
  }
  state_ = State::kDone;
  // Falling off the trampoline returns via uc_link to return_context_.
  // nullptr fake-stack save: this fiber's frames are dead after the switch.
  asan_start_switch(nullptr, sched_stack_bottom_, sched_stack_size_);
  tsan_switch_to(tsan_sched_fiber_);
}

Fiber::State Fiber::resume() {
  G80_CHECK_MSG(state_ == State::kRunnable || state_ == State::kSuspended,
                "resume of a fiber that is not paused");
  state_ = State::kRunnable;
  tsan_sched_fiber_ = tsan_current_fiber();
  void* fake_stack_save = nullptr;
  asan_start_switch(&fake_stack_save, stack_.data(), stack_.size());
  tsan_switch_to(tsan_fiber_);
  G80_CHECK(swapcontext(&return_context_, &context_) == 0);
  asan_finish_switch(fake_stack_save, nullptr, nullptr);
  if (pending_exception_) {
    auto ex = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(ex);
  }
  return state_;
}

void Fiber::yield() {
  state_ = State::kSuspended;
  void* fake_stack_save = nullptr;
  asan_start_switch(&fake_stack_save, sched_stack_bottom_, sched_stack_size_);
  tsan_switch_to(tsan_sched_fiber_);
  G80_CHECK(swapcontext(&context_, &return_context_) == 0);
  asan_finish_switch(fake_stack_save, nullptr, nullptr);
}

}  // namespace g80
