#include "exec/fiber.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "common/error.h"

// AddressSanitizer must be told about every stack switch, or its shadow
// memory still describes the old stack and fake-stack frames are freed under
// a live fiber.  The annotations follow the protocol in
// <sanitizer/common_interface_defs.h>: start_switch before leaving a
// context, finish_switch immediately after arriving in one.
#if defined(__SANITIZE_ADDRESS__)
#define G80_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define G80_ASAN_FIBERS 1
#endif
#endif

#ifdef G80_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

// ThreadSanitizer needs the same courtesy via its own fiber API: each fiber
// gets a __tsan_create_fiber context, and every swapcontext is preceded by
// __tsan_switch_to_fiber naming the destination.  Otherwise TSan attributes
// fiber frames to the scheduler's stack and reports phantom races.
#if defined(__SANITIZE_THREAD__)
#define G80_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define G80_TSAN_FIBERS 1
#endif
#endif

#ifdef G80_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

// The hand-rolled switch has no sanitizer annotations by design — it is only
// eligible when neither sanitizer is instrumenting stacks.
#if defined(__x86_64__) && !defined(G80_ASAN_FIBERS) && !defined(G80_TSAN_FIBERS)
#define G80_FIBER_FAST 1
#else
#define G80_FIBER_FAST 0
#endif

#if G80_FIBER_FAST
extern "C" {
// fiber_ctx.S: save callee-saved state on the current stack, store the
// resulting rsp through save_sp, then pivot to load_sp and restore.
void g80_ctx_swap(void** save_sp, void* load_sp) noexcept;
// First-entry thunk; only its address is used (planted as the return
// address of a freshly armed stack).
void g80_ctx_entry() noexcept;
}
#endif

namespace g80 {
namespace {

inline void asan_start_switch(void** fake_stack_save, const void* bottom,
                              std::size_t size) {
#ifdef G80_ASAN_FIBERS
  __sanitizer_start_switch_fiber(fake_stack_save, bottom, size);
#else
  (void)fake_stack_save; (void)bottom; (void)size;
#endif
}

inline void asan_finish_switch(void* fake_stack_save, const void** bottom_old,
                               std::size_t* size_old) {
#ifdef G80_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(fake_stack_save, bottom_old, size_old);
#else
  (void)fake_stack_save; (void)bottom_old; (void)size_old;
#endif
}

inline void* tsan_create_fiber() {
#ifdef G80_TSAN_FIBERS
  return __tsan_create_fiber(0);
#else
  return nullptr;
#endif
}

inline void tsan_destroy_fiber(void* fiber) {
#ifdef G80_TSAN_FIBERS
  if (fiber != nullptr) __tsan_destroy_fiber(fiber);
#else
  (void)fiber;
#endif
}

inline void* tsan_current_fiber() {
#ifdef G80_TSAN_FIBERS
  return __tsan_get_current_fiber();
#else
  return nullptr;
#endif
}

inline void tsan_switch_to(void* fiber) {
#ifdef G80_TSAN_FIBERS
  if (fiber != nullptr) __tsan_switch_to_fiber(fiber, 0);
#else
  (void)fiber;
#endif
}

}  // namespace

bool Fiber::fast_backend_supported() { return G80_FIBER_FAST != 0; }

Fiber::Backend Fiber::default_backend() {
#if G80_FIBER_FAST
  // Escape hatch: G80_FIBER_BACKEND=ucontext forces the legacy engine
  // process-wide (checked once; fibers are created on many threads).
  static const bool force_ucontext = [] {
    const char* env = std::getenv("G80_FIBER_BACKEND");
    return env != nullptr && std::string_view(env) == "ucontext";
  }();
  return force_ucontext ? Backend::kUcontext : Backend::kFast;
#else
  return Backend::kUcontext;
#endif
}

Fiber::Fiber(std::size_t stack_bytes, Backend backend)
    : stack_(stack_bytes),
      backend_(backend == Backend::kFast && fast_backend_supported()
                   ? Backend::kFast
                   : Backend::kUcontext) {
  G80_CHECK(stack_bytes >= 16 * 1024);
}

Fiber::~Fiber() { tsan_destroy_fiber(tsan_fiber_); }

void Fiber::start(std::function<void()> body) {
  body_ = std::move(body);
  raw_entry_ = nullptr;
  raw_arg_ = nullptr;
  arm_common();
}

void Fiber::start(RawEntry entry, void* arg) {
  raw_entry_ = entry;
  raw_arg_ = arg;
  if (body_) body_ = nullptr;  // drop captures from a previous arming
  arm_common();
}

void Fiber::arm_common() {
  // Re-arming is allowed from ANY state: after a sibling thread throws, a
  // launch is abandoned with fibers left kRunnable (armed, never entered) or
  // kSuspended (parked mid-kernel).  Both are re-armed from scratch; old
  // stack frames are discarded without unwinding (locals leak), which is
  // acceptable in this fail-fast simulator.  The scheduler never calls
  // start() from inside a fiber, so the stack being rebuilt is never live.
  pending_exception_ = nullptr;

  // A fresh TSan context per arming: an abandoned run's happens-before
  // state must not leak into the next kernel on this reused stack.
  tsan_destroy_fiber(tsan_fiber_);
  tsan_fiber_ = tsan_create_fiber();

  if (backend_ == Backend::kFast) {
    arm_fast();
  } else {
    arm_ucontext();
  }
  state_ = State::kRunnable;
}

void Fiber::arm_ucontext() {
  G80_CHECK(getcontext(&context_) == 0);
  context_.uc_stack.ss_sp = stack_.data();
  context_.uc_stack.ss_size = stack_.size();
  context_.uc_link = &return_context_;

  // makecontext only passes ints; split the pointer across two.
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  const auto hi = static_cast<unsigned>(self >> 32);
  const auto lo = static_cast<unsigned>(self & 0xFFFFFFFFu);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2, hi, lo);
}

void Fiber::arm_fast() {
#if G80_FIBER_FAST
  // Build the initial frame g80_ctx_swap will restore; the layout contract
  // lives at the top of fiber_ctx.S.  Arming is just ~64 bytes of stores —
  // no syscall, no allocation — so it is cheap enough to do per block.
  char* top = stack_.data() + stack_.size();
  top -= reinterpret_cast<std::uintptr_t>(top) & 15;  // 16-byte align
  auto put = [&](int off, std::uint64_t v) {
    std::memcpy(top - off, &v, sizeof v);
  };
  put(8, reinterpret_cast<std::uint64_t>(&g80_ctx_entry));
  put(16, 0);  // rbp
  put(24, 0);  // rbx
  put(32, reinterpret_cast<std::uint64_t>(this));  // r12 -> first argument
  put(40, reinterpret_cast<std::uint64_t>(&Fiber::fast_trampoline));  // r13
  put(48, 0);  // r14
  put(56, 0);  // r15
  // Seed the fiber's FP control state from the arming thread's.
  std::uint32_t mxcsr = 0;
  std::uint16_t fcw = 0;
  asm volatile("stmxcsr %0\n\tfnstcw %1" : "=m"(mxcsr), "=m"(fcw));
  std::memcpy(top - 64, &mxcsr, sizeof mxcsr);
  std::memcpy(top - 60, &fcw, sizeof fcw);
  fast_sp_ = top - 64;
#else
  G80_CHECK_MSG(false, "fast fiber backend is not available in this build");
#endif
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  const auto self = (static_cast<std::uintptr_t>(hi) << 32) |
                    static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(self)->run_body();
}

void Fiber::fast_trampoline(void* self_ptr) {
#if G80_FIBER_FAST
  auto* self = static_cast<Fiber*>(self_ptr);
  try {
    if (self->raw_entry_ != nullptr) {
      self->raw_entry_(self->raw_arg_);
    } else {
      self->body_();
    }
  } catch (...) {
    self->pending_exception_ = std::current_exception();
  }
  self->state_ = State::kDone;
  // Final switch out; this stack is dead, the saved sp is never resumed.
  void* dead_sp = nullptr;
  g80_ctx_swap(&dead_sp, self->fast_sched_sp_);
  __builtin_unreachable();
#else
  (void)self_ptr;
#endif
}

void Fiber::run_body() {
  // First entry onto this stack: no fake stack to restore (nullptr), and
  // learn the scheduler's stack bounds for the yields/exit that follow.
  asan_finish_switch(nullptr, &sched_stack_bottom_, &sched_stack_size_);
  try {
    if (raw_entry_ != nullptr) {
      raw_entry_(raw_arg_);
    } else {
      body_();
    }
  } catch (...) {
    pending_exception_ = std::current_exception();
  }
  state_ = State::kDone;
  // Falling off the trampoline returns via uc_link to return_context_.
  // nullptr fake-stack save: this fiber's frames are dead after the switch.
  asan_start_switch(nullptr, sched_stack_bottom_, sched_stack_size_);
  tsan_switch_to(tsan_sched_fiber_);
}

Fiber::State Fiber::resume() {
  G80_CHECK_MSG(state_ == State::kRunnable || state_ == State::kSuspended,
                "resume of a fiber that is not paused");
  state_ = State::kRunnable;
#if G80_FIBER_FAST
  if (backend_ == Backend::kFast) {
    g80_ctx_swap(&fast_sched_sp_, fast_sp_);
  } else
#endif
  {
    tsan_sched_fiber_ = tsan_current_fiber();
    void* fake_stack_save = nullptr;
    asan_start_switch(&fake_stack_save, stack_.data(), stack_.size());
    tsan_switch_to(tsan_fiber_);
    G80_CHECK(swapcontext(&return_context_, &context_) == 0);
    asan_finish_switch(fake_stack_save, nullptr, nullptr);
  }
  if (pending_exception_) {
    auto ex = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(ex);
  }
  return state_;
}

void Fiber::yield() {
  state_ = State::kSuspended;
#if G80_FIBER_FAST
  if (backend_ == Backend::kFast) {
    g80_ctx_swap(&fast_sp_, fast_sched_sp_);
    return;
  }
#endif
  void* fake_stack_save = nullptr;
  asan_start_switch(&fake_stack_save, sched_stack_bottom_, sched_stack_size_);
  tsan_switch_to(tsan_sched_fiber_);
  G80_CHECK(swapcontext(&context_, &return_context_) == 0);
  asan_finish_switch(fake_stack_save, nullptr, nullptr);
}

}  // namespace g80
