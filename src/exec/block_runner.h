// Executes one thread block: N cooperative threads with CUDA barrier
// semantics and a per-block shared-memory arena.
//
// Threads run in thread-index order between barriers; at a __syncthreads()
// every still-live thread must arrive before any proceeds.  Threads that
// exited no longer participate in barriers — matching the G80's observed
// behaviour (barriers count only active threads; CUDA formally leaves a
// barrier reached by a strict subset of threads undefined).  Deadlock is
// impossible under this scheduler.
//
// The scheduling pass mirrors the paper's warp model (§3): lanes advance in
// warp-sized groups, and a converged warp — all 32 lanes still live — is
// stepped in one batched dispatch with no per-lane status checks (exit
// accounting for an attached BarrierObserver happens inline, so observed
// runs keep the batched sweep).  A warp falls back to per-lane stepping
// once lanes exit at different trip counts (divergent termination).  Both
// paths run lanes in the same thread-index order, so results are
// bit-identical by construction.
//
// That fixed order is also what makes batched trace recording possible: the
// lanes of a converged warp replay the same instruction stream one after
// another, so the trace arena (cudalite/trace_arena.h) can reconstruct each
// warp-level memory instruction positionally — lane k's j-th access in a
// space IS the warp's j-th instruction there — turning 32 independent
// recorder calls into one SoA batch row per instruction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/error.h"
#include "exec/cancel.h"
#include "exec/fiber.h"

namespace g80 {

// Static identity of one __syncthreads() call site, carried from the kernel
// source into barrier bookkeeping so diagnostics can name the barrier.
struct SyncPoint {
  std::uint32_t site = 0;        // site_id hash (0 = unknown, e.g. raw tests)
  const char* file = nullptr;    // kernel source file of the sync() call
  int line = 0;
};

// Snapshot handed to a BarrierObserver at every barrier release: who is
// parked where, and who exited the kernel since the previous release.
struct BarrierSnapshot {
  struct Waiter {
    int tid = 0;
    SyncPoint at;
  };
  int epoch = 0;                 // barrier generation being released (0-based)
  std::vector<Waiter> waiting;
  std::vector<int> exited;       // tids that ran to completion this interval
};

// Callback interface for barrier-semantics validation (g80check).  The
// runner invokes it only when attached; detached runs pay one branch.
class BarrierObserver {
 public:
  virtual ~BarrierObserver() = default;
  virtual void on_barrier_release(const BarrierSnapshot& snap) = 0;
};

// Per-block shared memory arena.  All threads of a block must perform the
// same sequence of allocations (mirroring CUDA's static __shared__ layout);
// the first thread defines the layout, later threads are checked against it.
class SharedArena {
 public:
  explicit SharedArena(std::size_t capacity_bytes);

  // Allocation `index`-th request of `bytes` for thread `tid`; returns the
  // arena offset.  alignment is 16 bytes (float4).
  std::byte* allocate(int tid, std::size_t bytes);

  void begin_block();                 // reset layout + cursors for a new block
  void begin_thread(int tid);         // reset tid's allocation cursor
  std::size_t bytes_used() const { return layout_end_; }
  std::size_t capacity() const { return storage_.size(); }
  std::byte* data() { return storage_.data(); }

 private:
  std::vector<std::byte> storage_;
  std::vector<std::pair<std::size_t, std::size_t>> layout_;  // (offset, size)
  std::size_t layout_end_ = 0;
  std::vector<std::size_t> cursor_;  // per-thread next allocation index
};

class BlockRunner {
 public:
  // `max_threads` bounds the fiber pool; `smem_capacity` is the SM's shared
  // memory size (a block exceeding it fails at launch, not here).  `backend`
  // picks the fiber switch engine (requests for the fast engine degrade to
  // ucontext in sanitized builds — see Fiber).
  BlockRunner(int max_threads, std::size_t smem_capacity,
              std::size_t stack_bytes = 128 * 1024,
              Fiber::Backend backend = Fiber::default_backend());

  // Run `num_threads` threads, each executing body(tid).  Bodies may call
  // sync(tid) any number of times.
  void run(int num_threads, const std::function<void(int)>& body);

  // Fast path for kernels that never call __syncthreads: runs thread bodies
  // to completion on the caller's stack (no fibers).  sync() throws if the
  // kernel lied about being barrier-free.
  void run_direct(int num_threads, const std::function<void(int)>& body);

  // Barrier entry point, called from inside a thread body.  The SyncPoint
  // overload lets diagnostics name the kernel-source barrier.
  void sync(int tid) { sync(tid, SyncPoint{}); }
  void sync(int tid, SyncPoint at);

  SharedArena& shared() { return shared_; }

  // Number of barrier generations completed in the last run (for tracing).
  int barriers_executed() const { return barriers_executed_; }

  // Attach/detach a barrier-semantics observer (g80check).  Null detaches.
  void set_barrier_observer(BarrierObserver* obs) { observer_ = obs; }

  // Attach/detach a cooperative cancellation token (g80resil watchdog).
  // Checked at every barrier release, so a kernel wedged in a
  // __syncthreads() loop is cancellable; the abandoned fibers are re-armed
  // by the next run() (see Fiber::start).  Null detaches.
  void set_cancel_token(const CancelToken* token) { cancel_ = token; }

 private:
  enum class ThreadStatus { kRunning, kAtBarrier, kDone };

  // Simulated warp width: the scheduling pass advances lanes in warp-sized
  // groups, and a warp whose lanes are all live is stepped in one batched
  // sweep with no per-lane status bookkeeping (see run()).
  static constexpr int kWarpSize = 32;

  // Raw fiber entry: `arg` is a LaneArg; calls (*runner->body_)(tid).  Using
  // a plain function pointer instead of a per-lane capturing lambda keeps
  // fiber arming allocation-free (the old path heap-allocated one
  // std::function per thread per block).
  struct LaneArg {
    BlockRunner* runner = nullptr;
    int tid = 0;
  };
  static void lane_entry(void* arg);

  std::size_t stack_bytes_;
  Fiber::Backend backend_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::vector<ThreadStatus> status_;
  std::vector<SyncPoint> sync_points_;  // where each parked thread waits
  std::vector<int> exited_this_interval_;
  std::vector<LaneArg> lane_args_;      // stable per-lane entry arguments
  std::vector<int> warp_live_;          // live (not yet exited) lanes per warp
  const std::function<void(int)>* body_ = nullptr;  // valid during run()
  SharedArena shared_;
  int barriers_executed_ = 0;
  bool direct_mode_ = false;
  BarrierObserver* observer_ = nullptr;
  const CancelToken* cancel_ = nullptr;
};

}  // namespace g80
