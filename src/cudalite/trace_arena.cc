#include "cudalite/trace_arena.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace g80 {

namespace {

int& ambient_trace_batch_slot() {
  thread_local int mode = -1;  // -1: follow the environment
  return mode;
}

bool env_trace_batch() {
  // Queried per launch (not cached) so tests can flip the variable between
  // launches in one process.
  const char* e = std::getenv("G80_TRACE_BATCH");
  if (e == nullptr) return true;
  return std::strcmp(e, "off") != 0 && std::strcmp(e, "0") != 0;
}

}  // namespace

bool trace_batch_enabled() {
  const int mode = ambient_trace_batch_slot();
  if (mode >= 0) return mode != 0;
  return env_trace_batch();
}

void set_ambient_trace_batch(int mode) { ambient_trace_batch_slot() = mode; }

int ambient_trace_batch() { return ambient_trace_batch_slot(); }

// ---------------------------------------------------------------------------
// SiteInterner
// ---------------------------------------------------------------------------

void SiteInterner::clear() {
  std::fill(slots_.begin(), slots_.end(), kEmpty);
  count_ = 0;
}

void SiteInterner::grow() {
  const std::size_t cap = slots_.empty() ? 64 : slots_.size() * 2;
  std::vector<std::uint64_t> old = std::move(slots_);
  slots_.assign(cap, kEmpty);
  for (const std::uint64_t v : old) {
    if (v == kEmpty) continue;
    std::size_t i = (v * 0x9e3779b97f4a7c15ull) & (cap - 1);
    while (slots_[i] != kEmpty) i = (i + 1) & (cap - 1);
    slots_[i] = v;
  }
}

bool SiteInterner::insert(std::uint32_t site) {
  if (slots_.empty() || count_ * 10 >= slots_.size() * 7) grow();
  const std::uint64_t v = site;
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = (v * 0x9e3779b97f4a7c15ull) & mask;
  while (slots_[i] != kEmpty) {
    if (slots_[i] == v) return false;
    i = (i + 1) & mask;
  }
  slots_[i] = v;
  ++count_;
  return true;
}

// ---------------------------------------------------------------------------
// WarpSpaceBatch
// ---------------------------------------------------------------------------

void WarpSpaceBatch::reconstruct_lane(int sub,
                                      std::vector<MemAccess>* out) const {
  out->clear();
  const std::uint32_t prefix = cursor[static_cast<std::size_t>(sub)];
  out->reserve(prefix + overflow[static_cast<std::size_t>(sub)].size());
  for (std::uint32_t j = 0; j < prefix; ++j) {
    const std::uint64_t key = keys[j];
    out->push_back({addrs[j * static_cast<std::size_t>(stride) + sub],
                    trace_key_size(key), trace_key_site(key), true,
                    trace_key_store(key)});
  }
  const auto& tail = overflow[static_cast<std::size_t>(sub)];
  out->insert(out->end(), tail.begin(), tail.end());
}

// ---------------------------------------------------------------------------
// TraceArena
// ---------------------------------------------------------------------------

void TraceArena::begin_block(const DeviceSpec& spec, int num_lanes) {
  warp_size_ = spec.warp_size;
  active_ = num_lanes > 0 && warp_size_ >= 2 &&
            warp_size_ <= WarpSpaceBatch::kMaxLanes && warp_size_ % 2 == 0;
  if (!active_) return;
  num_warps_ = (num_lanes + warp_size_ - 1) / warp_size_;
  const std::size_t need =
      static_cast<std::size_t>(num_warps_) * kNumTraceSpaces;
  if (streams_.size() < need) streams_.resize(need);
  for (std::size_t i = 0; i < need; ++i) streams_[i].reset(warp_size_);
  sites_.clear();
}

}  // namespace g80
