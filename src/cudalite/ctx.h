// The per-thread execution context — cudalite's equivalent of CUDA's
// implicit device-side environment (threadIdx/blockIdx, __syncthreads,
// __shared__ allocation, memory spaces, and intrinsic math).
//
// Kernels are written once as templates over the context type:
//
//   struct SaxpyKernel {
//     float a; int n;
//     template <class Ctx>
//     void operator()(Ctx& ctx, DeviceBuffer<float>& x, DeviceBuffer<float>& y) const {
//       auto X = ctx.global(x);
//       auto Y = ctx.global(y);
//       const int i = ctx.global_thread_x();
//       if (ctx.branch(i < n)) Y.st(i, ctx.mad(a, X.ld(i), Y.ld(i)));
//     }
//   };
//
// Arithmetic goes through the ctx wrappers so the tracing instantiation can
// count PTX-granularity instruction classes — the same counting the paper
// performs on PTX dumps to estimate potential throughput (§4.1).  Loop/index
// overhead that real code would spend in integer instructions is annotated
// with ctx.ialu()/ctx.misc() at the points where nvcc would emit it.
#pragma once

#include <cmath>
#include <cstdint>
#include <source_location>
#include <span>

#include "common/error.h"
#include "cudalite/device.h"
#include "cudalite/dim3.h"
#include "cudalite/recorder.h"
#include "exec/block_runner.h"

namespace g80 {

// Geometry and machinery shared by every thread of one block.
struct BlockEnv {
  BlockRunner* runner = nullptr;
  Dim3 grid_dim, block_dim, block_idx;
};

template <class Recorder>
class Ctx;

// Static-instruction identity: a stable hash of the call site of a memory
// access or branch, used to reconstruct warp-level instructions from
// per-lane traces (see lane_trace.h).
inline std::uint32_t site_id(const std::source_location& loc) {
  const auto file = reinterpret_cast<std::uintptr_t>(loc.file_name());
  return static_cast<std::uint32_t>(
      (file >> 4) * 2654435761u ^ (loc.line() << 10) ^ loc.column());
}

// ---- Typed views over the memory spaces -----------------------------------

template <class Recorder, class T>
class GlobalView {
 public:
  GlobalView(Ctx<Recorder>* ctx, T* data, std::uint64_t base, std::size_t n)
      : ctx_(ctx), data_(data), base_(base), n_(n) {}

  T ld(std::size_t i,
       const std::source_location& loc = std::source_location::current()) const {
    G80_RAISE_IF(i >= n_, Status::kInvalidAddress,
                 "global load out of bounds: " << i << " >= " << n_);
    ctx_->rec().mem(OpClass::kLoadGlobal, base_ + i * sizeof(T), sizeof(T),
                    site_id(loc), loc);
    return data_[i];
  }
  void st(std::size_t i, const T& v,
          const std::source_location& loc = std::source_location::current()) {
    // g80check fault injection may deterministically redirect this store out
    // of bounds (FaultInjection::corrupt_global_*), modeling a wild device
    // pointer; compiled out of normal passes.
    if constexpr (Recorder::kSanitizing) {
      i = ctx_->rec().fault_global_index(i, n_);
    }
    G80_RAISE_IF(i >= n_, Status::kInvalidAddress,
                 "global store out of bounds: " << i << " >= " << n_);
    ctx_->rec().mem(OpClass::kStoreGlobal, base_ + i * sizeof(T), sizeof(T),
                    site_id(loc), loc);
    data_[i] = v;
  }
  std::size_t size() const { return n_; }

 private:
  Ctx<Recorder>* ctx_;
  T* data_;
  std::uint64_t base_;
  std::size_t n_;
};

template <class Recorder, class T>
class SharedView {
 public:
  SharedView(Ctx<Recorder>* ctx, T* data, std::uint64_t base_offset, std::size_t n)
      : ctx_(ctx), data_(data), base_(base_offset), n_(n) {}

  T ld(std::size_t i,
       const std::source_location& loc = std::source_location::current()) const {
    G80_RAISE_IF(i >= n_, Status::kInvalidAddress,
                 "shared load out of bounds: " << i << " >= " << n_);
    ctx_->rec().mem(OpClass::kLoadShared, base_ + i * sizeof(T), sizeof(T),
                    site_id(loc), loc);
    return data_[i];
  }
  void st(std::size_t i, const T& v,
          const std::source_location& loc = std::source_location::current()) {
    // g80check fault injection may deterministically redirect this store
    // (FaultInjection::corrupt_store_*); compiled out of normal passes.
    if constexpr (Recorder::kSanitizing) {
      i = ctx_->rec().fault_shared_index(i, n_);
    }
    G80_RAISE_IF(i >= n_, Status::kInvalidAddress,
                 "shared store out of bounds: " << i << " >= " << n_);
    ctx_->rec().mem(OpClass::kStoreShared, base_ + i * sizeof(T), sizeof(T),
                    site_id(loc), loc);
    data_[i] = v;
  }
  std::size_t size() const { return n_; }

 private:
  Ctx<Recorder>* ctx_;
  T* data_;
  std::uint64_t base_;  // byte offset within the SM's shared memory
  std::size_t n_;
};

template <class Recorder, class T>
class ConstView {
 public:
  ConstView(Ctx<Recorder>* ctx, const T* data, std::uint64_t base, std::size_t n)
      : ctx_(ctx), data_(data), base_(base), n_(n) {}

  T ld(std::size_t i,
       const std::source_location& loc = std::source_location::current()) const {
    G80_RAISE_IF(i >= n_, Status::kInvalidAddress,
                 "constant load out of bounds: " << i << " >= " << n_);
    ctx_->rec().mem(OpClass::kLoadConst, base_ + i * sizeof(T), sizeof(T),
                    site_id(loc), loc);
    return data_[i];
  }
  std::size_t size() const { return n_; }

 private:
  Ctx<Recorder>* ctx_;
  const T* data_;
  std::uint64_t base_;
  std::size_t n_;
};

template <class Recorder, class T>
class TexView {
 public:
  TexView(Ctx<Recorder>* ctx, const T* data, std::uint64_t base, std::size_t n)
      : ctx_(ctx), data_(data), base_(base), n_(n) {}

  T fetch(std::size_t i,
          const std::source_location& loc = std::source_location::current()) const {
    G80_RAISE_IF(i >= n_, Status::kInvalidAddress,
                 "texture fetch out of bounds: " << i << " >= " << n_);
    ctx_->rec().mem(OpClass::kLoadTexture, base_ + i * sizeof(T), sizeof(T),
                    site_id(loc), loc);
    return data_[i];
  }
  std::size_t size() const { return n_; }

 private:
  Ctx<Recorder>* ctx_;
  const T* data_;
  std::uint64_t base_;
  std::size_t n_;
};

// ---- The context -----------------------------------------------------------

template <class Recorder>
class Ctx {
 public:
  static constexpr bool kTracing = Recorder::kTracing;

  Ctx(BlockEnv* env, int linear_tid, Recorder rec)
      : env_(env), tid_(linear_tid), rec_(rec) {}

  // --- Geometry ---
  Dim3 thread_idx() const { return delinearize(tid_, env_->block_dim); }
  const Dim3& block_idx() const { return env_->block_idx; }
  const Dim3& block_dim() const { return env_->block_dim; }
  const Dim3& grid_dim() const { return env_->grid_dim; }
  int linear_tid() const { return tid_; }
  // blockIdx.x * blockDim.x + threadIdx.x, the ubiquitous global index.
  int global_thread_x() const {
    return static_cast<int>(env_->block_idx.x * env_->block_dim.x) +
           static_cast<int>(thread_idx().x);
  }

  // --- Barrier (bar.sync) ---
  void sync(const std::source_location& loc = std::source_location::current()) {
    rec_.count(OpClass::kSync);
    rec_.sync_site(site_id(loc), loc);
    // g80check fault injection may skip this thread's barrier
    // (FaultInjection::skip_barrier_*); compiled out of normal passes.
    if constexpr (Recorder::kSanitizing) {
      if (rec_.skip_barrier()) return;
    }
    env_->runner->sync(
        tid_, SyncPoint{site_id(loc), loc.file_name(),
                        static_cast<int>(loc.line())});
  }

  // --- Shared memory (__shared__) ---
  template <class T>
  SharedView<Recorder, T> shared(std::size_t n) {
    std::byte* p = env_->runner->shared().allocate(tid_, n * sizeof(T));
    const auto offset =
        static_cast<std::uint64_t>(p - env_->runner->shared().data());
    return SharedView<Recorder, T>(this, reinterpret_cast<T*>(p), offset, n);
  }

  // --- Memory-space view factories ---
  template <class T>
  GlobalView<Recorder, T> global(DeviceBuffer<T>& b) {
    return GlobalView<Recorder, T>(this, b.raw(), b.device_addr(), b.size());
  }
  template <class T>
  ConstView<Recorder, T> constant(const ConstantBuffer<T>& b) {
    return ConstView<Recorder, T>(this, b.raw(), b.device_addr(), b.size());
  }
  template <class T>
  TexView<Recorder, T> texture(const Texture1D<T>& b) {
    return TexView<Recorder, T>(this, b.raw(), b.device_addr(), b.size());
  }

  // --- Floating point (SP-executed) ---
  float mad(float a, float b, float c) {
    rec_.count(OpClass::kFMad);
    rec_.flops(2);
    return a * b + c;
  }
  float mul(float a, float b) {
    rec_.count(OpClass::kFMul);
    rec_.flops(1);
    return a * b;
  }
  float add(float a, float b) {
    rec_.count(OpClass::kFAdd);
    rec_.flops(1);
    return a + b;
  }
  float sub(float a, float b) {
    rec_.count(OpClass::kFAdd);
    rec_.flops(1);
    return a - b;
  }
  float fmin(float a, float b) {
    rec_.count(OpClass::kFCmp);
    return a < b ? a : b;
  }
  float fmax(float a, float b) {
    rec_.count(OpClass::kFCmp);
    return a > b ? a : b;
  }
  bool fcmp(bool outcome) {  // explicit FP compare producing a predicate
    rec_.count(OpClass::kFCmp);
    return outcome;
  }

  // --- Special function unit (rcp/rsqrt/sin/cos/exp/log, §3.2) ---
  float sinf(float x) { return sfu(std::sin(x)); }
  float cosf(float x) { return sfu(std::cos(x)); }
  float expf(float x) { return sfu(std::exp(x)); }
  float logf(float x) { return sfu(std::log(x)); }
  float sqrtf(float x) { return sfu(std::sqrt(x)); }  // rsqrt + rcp on G80
  float rsqrtf(float x) { return sfu(1.0f / std::sqrt(x)); }
  float rcpf(float x) { return sfu(1.0f / x); }
  // fdiv compiles to rcp + mul.
  float fdiv(float a, float b) { return mul(a, rcpf(b)); }

  // --- Integer / control-flow annotations ---
  // Count integer ALU work (address arithmetic, induction variables) at the
  // points nvcc would emit it.
  void ialu(int n = 1) { rec_.count(OpClass::kIAlu, n); }
  int imul(int a, int b) {
    rec_.count(OpClass::kIMul);
    return a * b;
  }
  void misc(int n = 1) { rec_.count(OpClass::kMisc, n); }
  // Conditional branch: counts the instruction and records the outcome so
  // the collector can measure warp divergence.
  bool branch(bool cond,
              const std::source_location& loc = std::source_location::current()) {
    rec_.count(OpClass::kBranch);
    rec_.branch_outcome(cond, site_id(loc));
    return cond;
  }
  // Unconditional loop back-edge.
  void loop_branch() { rec_.count(OpClass::kBranch); }

  Recorder& rec() { return rec_; }

 private:
  float sfu(double result) {
    rec_.count(OpClass::kSfu);
    rec_.flops(1);
    return static_cast<float>(result);
  }

  BlockEnv* env_;
  int tid_;
  Recorder rec_;
};

using FuncCtx = Ctx<NullRecorder>;
using TraceCtx = Ctx<LaneRecorder>;

}  // namespace g80
