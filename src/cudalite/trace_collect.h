// Aggregates per-lane traces of one block into warp-level traces:
// reconstructs each warp-level memory instruction from the lanes' k-th
// accesses, runs the coalescing / bank-conflict / constant-broadcast
// analyzers, simulates the texture cache, and detects branch divergence.
//
// Two entry points produce bit-identical BlockTraces:
//  - the legacy form groups each lane's AoS access vectors by
//    (site, occurrence) with per-access hash lookups;
//  - the arena form (cudalite/trace_arena.h) reads warp-level instructions
//    straight off the arena's SoA batch rows — clean streams skip grouping
//    and feed the streaming *_soa analyzers; dirty (positionally-diverged)
//    streams are reconstructed per lane and regrouped through the legacy
//    path.
#pragma once

#include <vector>

#include "cudalite/lane_trace.h"
#include "hw/device_spec.h"
#include "timing/trace.h"

namespace g80 {

class TraceArena;

BlockTrace collect_block_trace(const DeviceSpec& spec,
                               const std::vector<LaneTrace>& lanes);

// Arena-aware overload: `arena` holds the block's batched access streams
// (nullptr or an inactive arena falls back to the lanes' AoS vectors).
BlockTrace collect_block_trace(const DeviceSpec& spec,
                               const std::vector<LaneTrace>& lanes,
                               const TraceArena* arena);

}  // namespace g80
