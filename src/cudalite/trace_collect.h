// Aggregates per-lane traces of one block into warp-level traces:
// reconstructs each warp-level memory instruction from the lanes' k-th
// accesses, runs the coalescing / bank-conflict / constant-broadcast
// analyzers, simulates the texture cache, and detects branch divergence.
#pragma once

#include <vector>

#include "cudalite/lane_trace.h"
#include "hw/device_spec.h"
#include "timing/trace.h"

namespace g80 {

BlockTrace collect_block_trace(const DeviceSpec& spec,
                               const std::vector<LaneTrace>& lanes);

}  // namespace g80
