#include "cudalite/trace_collect.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/error.h"
#include "cudalite/trace_arena.h"
#include "mem/bank_conflict.h"
#include "mem/coalescing.h"
#include "mem/const_cache.h"
#include "mem/texture_cache.h"

namespace g80 {

namespace {

// Key of one warp-level dynamic instruction: the static call site plus the
// per-lane occurrence index at that site.
struct InstKey {
  std::uint32_t site = 0;
  std::uint32_t occurrence = 0;
  bool operator==(const InstKey&) const = default;
};

struct InstKeyHash {
  std::size_t operator()(const InstKey& k) const {
    return (static_cast<std::size_t>(k.site) << 20) ^ k.occurrence;
  }
};

// Reconstructs the warp-level instructions of one address space from
// arbitrary per-lane access sequences (lane k's sequence is `get(k)`):
// groups by (site, occurrence) and returns them in first-appearance order.
// This is the exact semantics the arena's positional rows reproduce for
// clean streams; dirty streams and the legacy pipeline come through here.
template <class GetSeq>
std::vector<WarpAccess> group_warp_instructions_impl(int lane_count,
                                                     GetSeq&& get,
                                                     int warp_size) {
  std::unordered_map<InstKey, std::size_t, InstKeyHash> index;
  std::vector<WarpAccess> groups;
  std::unordered_map<std::uint32_t, std::uint32_t> occurrence;

  for (int k = 0; k < lane_count; ++k) {
    occurrence.clear();
    const std::vector<MemAccess>& seq = get(k);
    for (const MemAccess& a : seq) {
      const InstKey key{a.site, occurrence[a.site]++};
      auto [it, inserted] = index.emplace(key, groups.size());
      if (inserted) groups.emplace_back(warp_size);
      groups[it->second][static_cast<std::size_t>(k)] = a;
    }
  }
  return groups;
}

std::vector<WarpAccess> group_warp_instructions(
    const std::vector<LaneTrace>& lanes, int lo, int hi,
    std::vector<MemAccess> LaneTrace::*space, int warp_size) {
  return group_warp_instructions_impl(
      hi - lo,
      [&](int k) -> const std::vector<MemAccess>& {
        return lanes[static_cast<std::size_t>(lo + k)].*space;
      },
      warp_size);
}

// The call site of one reconstructed warp instruction: every grouped lane
// access shares it, so the first active lane decides.
std::uint32_t group_site(const WarpAccess& acc) {
  for (const MemAccess& a : acc) {
    if (a.active) return a.site;
  }
  return 0;
}

// Direction of one warp instruction (static property; any active lane).
bool group_store(const WarpAccess& acc) {
  for (const MemAccess& a : acc) {
    if (a.active) return a.store;
  }
  return false;
}

// Per-site accumulator for the g80scope attribution (few distinct sites per
// kernel; linear probing is cheaper than hashing here).
class SiteAccumulator {
 public:
  explicit SiteAccumulator(const std::vector<LaneTrace>& lanes)
      : lanes_(lanes) {}

  SiteStats& at(std::uint32_t site) {
    for (SiteStats& s : sites_) {
      if (s.site == site) return s;
    }
    SiteStats s;
    s.site = site;
    for (const LaneTrace& lane : lanes_) {
      for (const SiteNote& n : lane.site_notes) {
        if (n.site == site) {
          s.file = n.file;
          s.line = n.line;
          break;
        }
      }
      if (s.line != 0) break;
    }
    sites_.push_back(s);
    return sites_.back();
  }

  std::vector<SiteStats> take() { return std::move(sites_); }

 private:
  const std::vector<LaneTrace>& lanes_;
  std::vector<SiteStats> sites_;
};

// ---------------------------------------------------------------------------
// Per-instruction accumulation, shared verbatim by the batched (SoA row) and
// legacy (WarpAccess group) paths so the two cannot drift apart.
// ---------------------------------------------------------------------------

void accumulate_global(WarpTrace& wt, SiteAccumulator& sites,
                       std::uint32_t site, bool is_store,
                       const CoalesceResult& res) {
  {
    SiteStats& ss = sites.at(site);
    ++ss.global_instructions;
    ss.global_transactions += static_cast<std::uint64_t>(res.transactions);
    ss.dram_bytes += res.dram_bytes;
    if (!res.coalesced) ++ss.uncoalesced_instructions;
    if (res.transactions > 2) {
      ss.extra_transactions +=
          static_cast<std::uint64_t>(res.transactions - 2);
    }
  }
  ++wt.global_instructions;
  wt.global.transactions += static_cast<std::uint64_t>(res.transactions);
  wt.global.bytes += res.dram_bytes;
  wt.global.scattered_bytes += res.scattered_bytes;
  wt.useful_global_bytes += res.useful_bytes;
  if (res.coalesced) ++wt.coalesced_instructions;
  // Load/store split for the g80prof gld_*/gst_* counters.
  if (is_store) {
    ++wt.gst_instructions;
    if (res.coalesced) ++wt.gst_coalesced;
  } else {
    ++wt.gld_instructions;
    if (res.coalesced) ++wt.gld_coalesced;
  }
}

void accumulate_shared(WarpTrace& wt, SiteAccumulator& sites,
                       std::uint32_t site, const WarpBankCost& cost) {
  wt.shared_extra_passes += static_cast<std::uint64_t>(cost.extra_passes);
  sites.at(site).shared_extra_passes +=
      static_cast<std::uint64_t>(cost.extra_passes);
}

void accumulate_const(WarpTrace& wt, SiteAccumulator& sites,
                      std::uint32_t site, const WarpConstCost& cost) {
  wt.const_extra_passes += static_cast<std::uint64_t>(cost.extra_passes);
  sites.at(site).const_extra_passes +=
      static_cast<std::uint64_t>(cost.extra_passes);
}

// Texture misses behave like latency-bound scattered DRAM transactions of
// one cache line, charged to the warp's global traffic.
void accumulate_texture(const DeviceSpec& spec, WarpTrace& wt,
                        SiteAccumulator& sites, std::uint32_t site,
                        std::uint64_t hits, std::uint64_t misses) {
  wt.texture_hits += hits;
  wt.texture_misses += misses;
  if (misses > 0) {
    wt.global_instructions += 1;
    wt.global.transactions += misses;
    const std::uint64_t b = misses * spec.texture_cache_line;
    wt.global.bytes += b;
    wt.global.scattered_bytes += b;
    SiteStats& ss = sites.at(site);
    ss.texture_misses += misses;
    ss.global_transactions += misses;
    ss.dram_bytes += b;
  }
}

// Exact per-lane sequences of a dirty (positionally-diverged) batch stream:
// each lane's matched prefix rows plus its overflow tail, regrouped through
// the legacy (site, occurrence) path.  `scratch` is reused across streams.
std::vector<WarpAccess> regroup_dirty_stream(
    const WarpSpaceBatch& s, int lane_count,
    std::vector<std::vector<MemAccess>>& scratch) {
  if (static_cast<int>(scratch.size()) < lane_count)
    scratch.resize(static_cast<std::size_t>(lane_count));
  for (int k = 0; k < lane_count; ++k)
    s.reconstruct_lane(k, &scratch[static_cast<std::size_t>(k)]);
  return group_warp_instructions_impl(
      lane_count,
      [&](int k) -> const std::vector<MemAccess>& {
        return scratch[static_cast<std::size_t>(k)];
      },
      s.stride);
}

}  // namespace

BlockTrace collect_block_trace(const DeviceSpec& spec,
                               const std::vector<LaneTrace>& lanes) {
  return collect_block_trace(spec, lanes, nullptr);
}

BlockTrace collect_block_trace(const DeviceSpec& spec,
                               const std::vector<LaneTrace>& lanes,
                               const TraceArena* arena) {
  G80_CHECK(!lanes.empty());
  const int ws = spec.warp_size;
  const int num_warps = (static_cast<int>(lanes.size()) + ws - 1) / ws;
  const bool batched = arena != nullptr && arena->active();

  BlockTrace block;
  block.warps.resize(num_warps);
  SiteAccumulator sites(lanes);
  std::vector<std::vector<MemAccess>> scratch;  // dirty-stream reconstruction

  // One texture cache per block approximates the per-SM cache shared by the
  // blocks resident on an SM (they run the same kernel, so per-block
  // hit rates are representative).
  TextureCache tex_cache(spec);

  for (int w = 0; w < num_warps; ++w) {
    WarpTrace& wt = block.warps[w];
    const int lo = w * ws;
    const int hi = std::min<int>(lo + ws, static_cast<int>(lanes.size()));

    // --- Instruction counts: per-class max over lanes (exact when the warp
    // is divergence-free; see lane_trace.h). ---
    for (std::size_t c = 0; c < kNumOpClasses; ++c) {
      std::uint64_t mx = 0;
      for (int k = lo; k < hi; ++k)
        mx = std::max(mx, lanes[k].ops.counts[c]);
      wt.ops.counts[c] = mx;
    }
    for (int k = lo; k < hi; ++k) wt.lane_flops += lanes[k].flops;

    // --- Branch divergence: group outcomes by (site, occurrence) ---
    {
      std::unordered_map<InstKey, std::pair<bool, bool>, InstKeyHash> seen;
      std::vector<InstKey> order;
      std::unordered_map<std::uint32_t, std::uint32_t> occurrence;
      for (int k = lo; k < hi; ++k) {
        occurrence.clear();
        for (const BranchEvent& b : lanes[k].branches) {
          const InstKey key{b.site, occurrence[b.site]++};
          auto [it, inserted] = seen.emplace(key, std::pair{false, false});
          if (inserted) order.push_back(key);
          (b.taken ? it->second.first : it->second.second) = true;
        }
      }
      wt.branches += order.size();
      for (const auto& key : order) {
        const auto& [taken, not_taken] = seen.at(key);
        if (taken && not_taken) ++wt.divergent_branches;
      }
    }

    // The warp's instruction stream per space: a clean batch stream IS the
    // grouped instruction sequence (one SoA row per warp-level instruction,
    // in first-appearance order) and feeds the *_soa analyzers directly; a
    // dirty stream or the legacy pipeline goes through (site, occurrence)
    // regrouping and the AoS analyzers.
    const WarpSpaceBatch* bg =
        batched ? &arena->stream(w, kSpaceGlobal) : nullptr;
    const WarpSpaceBatch* bs =
        batched ? &arena->stream(w, kSpaceShared) : nullptr;
    const WarpSpaceBatch* bc =
        batched ? &arena->stream(w, kSpaceConst) : nullptr;
    const WarpSpaceBatch* bt =
        batched ? &arena->stream(w, kSpaceTexture) : nullptr;

    // --- Global memory: coalescing per warp-level instruction ---
    if (bg != nullptr && !bg->dirty()) {
      for (std::size_t j = 0; j < bg->rows(); ++j) {
        const std::uint64_t key = bg->keys[j];
        const SoaWarpAccess row{bg->masks[j], trace_key_size(key),
                                bg->row_addrs(j), bg->stride};
        accumulate_global(wt, sites, trace_key_site(key),
                          trace_key_store(key), analyze_warp_soa(spec, row));
      }
    } else {
      const auto groups =
          bg != nullptr
              ? regroup_dirty_stream(*bg, hi - lo, scratch)
              : group_warp_instructions(lanes, lo, hi, &LaneTrace::global, ws);
      for (const WarpAccess& acc : groups) {
        accumulate_global(wt, sites, group_site(acc), group_store(acc),
                          analyze_warp(spec, acc));
      }
    }

    // --- Shared memory: bank conflicts ---
    if (bs != nullptr && !bs->dirty()) {
      for (std::size_t j = 0; j < bs->rows(); ++j) {
        const std::uint64_t key = bs->keys[j];
        const SoaWarpAccess row{bs->masks[j], trace_key_size(key),
                                bs->row_addrs(j), bs->stride};
        accumulate_shared(wt, sites, trace_key_site(key),
                          analyze_shared_warp_soa(spec, row));
      }
    } else {
      const auto groups =
          bs != nullptr
              ? regroup_dirty_stream(*bs, hi - lo, scratch)
              : group_warp_instructions(lanes, lo, hi, &LaneTrace::shared, ws);
      for (const WarpAccess& acc : groups) {
        accumulate_shared(wt, sites, group_site(acc),
                          analyze_shared_warp(spec, acc));
      }
    }

    // --- Constant memory: broadcast vs serialization ---
    if (bc != nullptr && !bc->dirty()) {
      for (std::size_t j = 0; j < bc->rows(); ++j) {
        const std::uint64_t key = bc->keys[j];
        const SoaWarpAccess row{bc->masks[j], trace_key_size(key),
                                bc->row_addrs(j), bc->stride};
        accumulate_const(wt, sites, trace_key_site(key),
                         analyze_const_warp_soa(spec, row));
      }
    } else {
      const auto groups =
          bc != nullptr ? regroup_dirty_stream(*bc, hi - lo, scratch)
                        : group_warp_instructions(lanes, lo, hi,
                                                  &LaneTrace::constant, ws);
      for (const WarpAccess& acc : groups) {
        accumulate_const(wt, sites, group_site(acc),
                         analyze_const_warp(spec, acc));
      }
    }

    // --- Texture: run the cache in warp-instruction order ---
    if (bt != nullptr && !bt->dirty()) {
      for (std::size_t j = 0; j < bt->rows(); ++j) {
        const std::uint64_t key = bt->keys[j];
        const SoaWarpAccess row{bt->masks[j], trace_key_size(key),
                                bt->row_addrs(j), bt->stride};
        const auto res = tex_cache.access_warp_soa(row);
        accumulate_texture(spec, wt, sites, trace_key_site(key), res.hits,
                           res.misses);
      }
    } else {
      const auto groups =
          bt != nullptr ? regroup_dirty_stream(*bt, hi - lo, scratch)
                        : group_warp_instructions(lanes, lo, hi,
                                                  &LaneTrace::texture, ws);
      for (const WarpAccess& acc : groups) {
        std::uint64_t hits = 0, misses = 0;
        for (const MemAccess& a : acc) {
          if (!a.active) continue;
          if (tex_cache.access(a.addr)) ++hits;
          else ++misses;
        }
        accumulate_texture(spec, wt, sites, group_site(acc), hits, misses);
      }
    }

    // --- Barriers: warp-level count per call site (max over lanes, the same
    // convention as the per-class instruction counts above). ---
    {
      std::unordered_map<std::uint32_t, std::uint64_t> warp_syncs;
      std::unordered_map<std::uint32_t, std::uint64_t> lane_syncs;
      for (int k = lo; k < hi; ++k) {
        lane_syncs.clear();
        for (const std::uint32_t site : lanes[k].sync_sites) {
          ++lane_syncs[site];
        }
        for (const auto& [site, n] : lane_syncs) {
          warp_syncs[site] = std::max(warp_syncs[site], n);
        }
      }
      for (const auto& [site, n] : warp_syncs) {
        sites.at(site).syncs += n;
      }
    }
  }
  block.sites = sites.take();
  merge_site_stats(block.sites, {});  // impose the deterministic ordering
  return block;
}

}  // namespace g80
