#include "cudalite/trace_collect.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/error.h"
#include "mem/bank_conflict.h"
#include "mem/coalescing.h"
#include "mem/const_cache.h"
#include "mem/texture_cache.h"

namespace g80 {

namespace {

// Key of one warp-level dynamic instruction: the static call site plus the
// per-lane occurrence index at that site.
struct InstKey {
  std::uint32_t site = 0;
  std::uint32_t occurrence = 0;
  bool operator==(const InstKey&) const = default;
};

struct InstKeyHash {
  std::size_t operator()(const InstKey& k) const {
    return (static_cast<std::size_t>(k.site) << 20) ^ k.occurrence;
  }
};

// Reconstructs the warp-level instructions of one address space for the
// lanes [lo, hi): groups per-lane accesses by (site, occurrence) and returns
// them in first-appearance order.
std::vector<WarpAccess> group_warp_instructions(
    const std::vector<LaneTrace>& lanes, int lo, int hi,
    std::vector<MemAccess> LaneTrace::*space, int warp_size) {
  std::unordered_map<InstKey, std::size_t, InstKeyHash> index;
  std::vector<WarpAccess> groups;
  std::unordered_map<std::uint32_t, std::uint32_t> occurrence;

  for (int k = lo; k < hi; ++k) {
    occurrence.clear();
    const auto& seq = lanes[static_cast<std::size_t>(k)].*space;
    for (const MemAccess& a : seq) {
      const InstKey key{a.site, occurrence[a.site]++};
      auto [it, inserted] = index.emplace(key, groups.size());
      if (inserted) groups.emplace_back(warp_size);
      groups[it->second][static_cast<std::size_t>(k - lo)] = a;
    }
  }
  return groups;
}

// The call site of one reconstructed warp instruction: every grouped lane
// access shares it, so the first active lane decides.
std::uint32_t group_site(const WarpAccess& acc) {
  for (const MemAccess& a : acc) {
    if (a.active) return a.site;
  }
  return 0;
}

// Per-site accumulator for the g80scope attribution (few distinct sites per
// kernel; linear probing is cheaper than hashing here).
class SiteAccumulator {
 public:
  explicit SiteAccumulator(const std::vector<LaneTrace>& lanes)
      : lanes_(lanes) {}

  SiteStats& at(std::uint32_t site) {
    for (SiteStats& s : sites_) {
      if (s.site == site) return s;
    }
    SiteStats s;
    s.site = site;
    for (const LaneTrace& lane : lanes_) {
      for (const SiteNote& n : lane.site_notes) {
        if (n.site == site) {
          s.file = n.file;
          s.line = n.line;
          break;
        }
      }
      if (s.line != 0) break;
    }
    sites_.push_back(s);
    return sites_.back();
  }

  std::vector<SiteStats> take() { return std::move(sites_); }

 private:
  const std::vector<LaneTrace>& lanes_;
  std::vector<SiteStats> sites_;
};

}  // namespace

BlockTrace collect_block_trace(const DeviceSpec& spec,
                               const std::vector<LaneTrace>& lanes) {
  G80_CHECK(!lanes.empty());
  const int ws = spec.warp_size;
  const int num_warps = (static_cast<int>(lanes.size()) + ws - 1) / ws;

  BlockTrace block;
  block.warps.resize(num_warps);
  SiteAccumulator sites(lanes);

  // One texture cache per block approximates the per-SM cache shared by the
  // blocks resident on an SM (they run the same kernel, so per-block
  // hit rates are representative).
  TextureCache tex_cache(spec);

  for (int w = 0; w < num_warps; ++w) {
    WarpTrace& wt = block.warps[w];
    const int lo = w * ws;
    const int hi = std::min<int>(lo + ws, static_cast<int>(lanes.size()));

    // --- Instruction counts: per-class max over lanes (exact when the warp
    // is divergence-free; see lane_trace.h). ---
    for (std::size_t c = 0; c < kNumOpClasses; ++c) {
      std::uint64_t mx = 0;
      for (int k = lo; k < hi; ++k)
        mx = std::max(mx, lanes[k].ops.counts[c]);
      wt.ops.counts[c] = mx;
    }
    for (int k = lo; k < hi; ++k) wt.lane_flops += lanes[k].flops;

    // --- Branch divergence: group outcomes by (site, occurrence) ---
    {
      std::unordered_map<InstKey, std::pair<bool, bool>, InstKeyHash> seen;
      std::vector<InstKey> order;
      std::unordered_map<std::uint32_t, std::uint32_t> occurrence;
      for (int k = lo; k < hi; ++k) {
        occurrence.clear();
        for (const BranchEvent& b : lanes[k].branches) {
          const InstKey key{b.site, occurrence[b.site]++};
          auto [it, inserted] = seen.emplace(key, std::pair{false, false});
          if (inserted) order.push_back(key);
          (b.taken ? it->second.first : it->second.second) = true;
        }
      }
      wt.branches += order.size();
      for (const auto& key : order) {
        const auto& [taken, not_taken] = seen.at(key);
        if (taken && not_taken) ++wt.divergent_branches;
      }
    }

    // --- Global memory: coalescing per warp-level instruction ---
    for (const WarpAccess& acc : group_warp_instructions(
             lanes, lo, hi, &LaneTrace::global, ws)) {
      const auto res = analyze_warp(spec, acc);
      {
        SiteStats& ss = sites.at(group_site(acc));
        ++ss.global_instructions;
        ss.global_transactions += static_cast<std::uint64_t>(res.transactions);
        ss.dram_bytes += res.dram_bytes;
        if (!res.coalesced) ++ss.uncoalesced_instructions;
        if (res.transactions > 2) {
          ss.extra_transactions +=
              static_cast<std::uint64_t>(res.transactions - 2);
        }
      }
      ++wt.global_instructions;
      wt.global.transactions += static_cast<std::uint64_t>(res.transactions);
      wt.global.bytes += res.dram_bytes;
      wt.global.scattered_bytes += res.scattered_bytes;
      wt.useful_global_bytes += res.useful_bytes;
      if (res.coalesced) ++wt.coalesced_instructions;
      // Load/store split for the g80prof gld_*/gst_* counters.  Direction is
      // a static property of the instruction, so any active lane decides.
      bool is_store = false;
      for (const MemAccess& a : acc) {
        if (a.active) {
          is_store = a.store;
          break;
        }
      }
      if (is_store) {
        ++wt.gst_instructions;
        if (res.coalesced) ++wt.gst_coalesced;
      } else {
        ++wt.gld_instructions;
        if (res.coalesced) ++wt.gld_coalesced;
      }
    }

    // --- Shared memory: bank conflicts ---
    for (const WarpAccess& acc : group_warp_instructions(
             lanes, lo, hi, &LaneTrace::shared, ws)) {
      const auto cost = analyze_shared_warp(spec, acc);
      wt.shared_extra_passes += static_cast<std::uint64_t>(cost.extra_passes);
      sites.at(group_site(acc)).shared_extra_passes +=
          static_cast<std::uint64_t>(cost.extra_passes);
    }

    // --- Constant memory: broadcast vs serialization ---
    for (const WarpAccess& acc : group_warp_instructions(
             lanes, lo, hi, &LaneTrace::constant, ws)) {
      const auto cost = analyze_const_warp(spec, acc);
      wt.const_extra_passes += static_cast<std::uint64_t>(cost.extra_passes);
      sites.at(group_site(acc)).const_extra_passes +=
          static_cast<std::uint64_t>(cost.extra_passes);
    }

    // --- Texture: run the cache in warp-instruction order; misses behave
    // like latency-bound scattered DRAM transactions of one cache line. ---
    for (const WarpAccess& acc : group_warp_instructions(
             lanes, lo, hi, &LaneTrace::texture, ws)) {
      std::uint64_t misses_this_inst = 0;
      for (const MemAccess& a : acc) {
        if (!a.active) continue;
        if (tex_cache.access(a.addr)) {
          ++wt.texture_hits;
        } else {
          ++wt.texture_misses;
          ++misses_this_inst;
        }
      }
      if (misses_this_inst > 0) {
        wt.global_instructions += 1;
        wt.global.transactions += misses_this_inst;
        const std::uint64_t b = misses_this_inst * spec.texture_cache_line;
        wt.global.bytes += b;
        wt.global.scattered_bytes += b;
        SiteStats& ss = sites.at(group_site(acc));
        ss.texture_misses += misses_this_inst;
        ss.global_transactions += misses_this_inst;
        ss.dram_bytes += b;
      }
    }

    // --- Barriers: warp-level count per call site (max over lanes, the same
    // convention as the per-class instruction counts above). ---
    {
      std::unordered_map<std::uint32_t, std::uint64_t> warp_syncs;
      std::unordered_map<std::uint32_t, std::uint64_t> lane_syncs;
      for (int k = lo; k < hi; ++k) {
        lane_syncs.clear();
        for (const std::uint32_t site : lanes[k].sync_sites) {
          ++lane_syncs[site];
        }
        for (const auto& [site, n] : lane_syncs) {
          warp_syncs[site] = std::max(warp_syncs[site], n);
        }
      }
      for (const auto& [site, n] : warp_syncs) {
        sites.at(site).syncs += n;
      }
    }
  }
  block.sites = sites.take();
  merge_site_stats(block.sites, {});  // impose the deterministic ordering
  return block;
}

}  // namespace g80
