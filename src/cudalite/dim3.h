// CUDA-style launch geometry types.
#pragma once

#include <cstdint>

namespace g80 {

struct Dim3 {
  unsigned x = 1, y = 1, z = 1;

  constexpr Dim3() = default;
  constexpr Dim3(unsigned x_, unsigned y_ = 1, unsigned z_ = 1)
      : x(x_), y(y_), z(z_) {}

  constexpr std::uint64_t count() const {
    return static_cast<std::uint64_t>(x) * y * z;
  }
  constexpr bool operator==(const Dim3&) const = default;
};

// CUDA linearization: x fastest, then y, then z (warps follow this order).
constexpr unsigned linear_index(const Dim3& idx, const Dim3& dim) {
  return (idx.z * dim.y + idx.y) * dim.x + idx.x;
}

constexpr Dim3 delinearize(unsigned linear, const Dim3& dim) {
  Dim3 r;
  r.x = linear % dim.x;
  r.y = (linear / dim.x) % dim.y;
  r.z = linear / (dim.x * dim.y);
  return r;
}

// Small vector types matching CUDA's builtins (alignment included, so a
// float4 load is one 16-byte access for the coalescing analyzer).
struct alignas(8) Float2 {
  float x = 0, y = 0;
};
struct alignas(16) Float4 {
  float x = 0, y = 0, z = 0, w = 0;
};

}  // namespace g80
