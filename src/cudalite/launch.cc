#include "cudalite/launch.h"

#include <algorithm>

namespace g80 {

namespace {
// Thread-local so each g80rt stream thread (and the host thread) carries its
// own default; a pool installed on one thread never leaks into another.
thread_local WorkerPool* t_ambient_pool = nullptr;
thread_local bool t_ambient_fast_path = false;
}  // namespace

WorkerPool* ambient_launch_pool() { return t_ambient_pool; }
void set_ambient_launch_pool(WorkerPool* pool) { t_ambient_pool = pool; }

bool ambient_fast_path() { return t_ambient_fast_path; }
void set_ambient_fast_path(bool on) { t_ambient_fast_path = on; }

}  // namespace g80

namespace g80::detail {

std::vector<std::uint64_t> pick_sample_blocks(std::uint64_t total, int n) {
  std::vector<std::uint64_t> out;
  if (total == 0 || n <= 0) return out;
  const auto want = std::min<std::uint64_t>(static_cast<std::uint64_t>(n), total);
  if (want == total) {
    out.resize(total);
    for (std::uint64_t i = 0; i < total; ++i) out[i] = i;
    return out;
  }
  for (std::uint64_t i = 0; i < want; ++i) {
    // Spread including both endpoints.
    const std::uint64_t b =
        want == 1 ? 0 : (i * (total - 1)) / (want - 1);
    if (out.empty() || out.back() != b) out.push_back(b);
  }
  return out;
}

}  // namespace g80::detail
