#include "cudalite/launch.h"

#include <algorithm>

namespace g80::detail {

std::vector<std::uint64_t> pick_sample_blocks(std::uint64_t total, int n) {
  std::vector<std::uint64_t> out;
  if (total == 0 || n <= 0) return out;
  const auto want = std::min<std::uint64_t>(static_cast<std::uint64_t>(n), total);
  if (want == total) {
    out.resize(total);
    for (std::uint64_t i = 0; i < total; ++i) out[i] = i;
    return out;
  }
  for (std::uint64_t i = 0; i < want; ++i) {
    // Spread including both endpoints.
    const std::uint64_t b =
        want == 1 ? 0 : (i * (total - 1)) / (want - 1);
    if (out.empty() || out.back() != b) out.push_back(b);
  }
  return out;
}

}  // namespace g80::detail
