// Recorder policies for the execution context.
//
// The same kernel source runs under two instantiations of Ctx<Recorder>:
//  - NullRecorder: every hook is an empty inline function; the functional
//    pass over the full grid runs at native C++ speed.
//  - LaneRecorder: hooks append to the thread's LaneTrace for the timing
//    model (used on sampled blocks only).
#pragma once

#include <cstdint>
#include <source_location>

#include "cudalite/lane_trace.h"
#include "hw/isa.h"

namespace g80 {

// A third instantiation, Ctx<SanitizerRecorder> (sanitizer/recorder.h),
// drives the g80check pass.  Recorders advertise `kSanitizing` so Ctx can
// compile the fault-injection hooks out of the other two entirely.

struct NullRecorder {
  static constexpr bool kTracing = false;
  static constexpr bool kSanitizing = false;

  void count(OpClass, int = 1) {}
  void flops(double) {}
  void mem(OpClass, std::uint64_t /*addr*/, std::uint32_t /*size*/,
           std::uint32_t /*site*/, const std::source_location& /*loc*/) {}
  void branch_outcome(bool, std::uint32_t /*site*/) {}
  void sync_site(std::uint32_t /*site*/, const std::source_location& /*loc*/) {}
};

class LaneRecorder {
 public:
  static constexpr bool kTracing = true;
  static constexpr bool kSanitizing = false;

  explicit LaneRecorder(LaneTrace* lane) : lane_(lane) {}

  void count(OpClass c, int n = 1) {
    lane_->ops[c] += static_cast<std::uint64_t>(n);
  }
  void flops(double f) { lane_->flops += f; }

  void mem(OpClass c, std::uint64_t addr, std::uint32_t size,
           std::uint32_t site, const std::source_location& loc) {
    count(c);
    note_site(site, loc);
    const bool store =
        c == OpClass::kStoreGlobal || c == OpClass::kStoreShared;
    const MemAccess a{addr, size, site, true, store};
    switch (c) {
      case OpClass::kLoadGlobal:
      case OpClass::kStoreGlobal: lane_->global.push_back(a); break;
      case OpClass::kLoadShared:
      case OpClass::kStoreShared: lane_->shared.push_back(a); break;
      case OpClass::kLoadConst: lane_->constant.push_back(a); break;
      case OpClass::kLoadTexture: lane_->texture.push_back(a); break;
      default: break;
    }
  }

  void branch_outcome(bool taken, std::uint32_t site) {
    lane_->branches.push_back({site, taken});
  }

  void sync_site(std::uint32_t site, const std::source_location& loc) {
    note_site(site, loc);
    lane_->sync_sites.push_back(site);
  }

 private:
  void note_site(std::uint32_t site, const std::source_location& loc) {
    auto& notes = lane_->site_notes;
    if (!notes.empty() && notes.back().site == site) return;
    for (const SiteNote& n : notes) {
      if (n.site == site) return;
    }
    notes.push_back({site, loc.file_name(), loc.line()});
  }

  LaneTrace* lane_;
};

}  // namespace g80
