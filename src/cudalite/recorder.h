// Recorder policies for the execution context.
//
// The same kernel source runs under two instantiations of Ctx<Recorder>:
//  - NullRecorder: every hook is an empty inline function; the functional
//    pass over the full grid runs at native C++ speed.
//  - LaneRecorder: hooks append to the thread's LaneTrace for the timing
//    model (used on sampled blocks only).  When a TraceArena is attached
//    (the default traced path), memory accesses bypass the lane's AoS
//    vectors and stream into the arena's per-(warp, space) SoA batches, and
//    note_site replaces its linear scan with a last-site memo plus the
//    arena's O(1) block-level intern table (trace_arena.h).  Without an
//    arena (the G80_TRACE_BATCH=off escape hatch, or direct LaneRecorder
//    construction) the original per-lane pipeline runs unchanged, byte for
//    byte — it is the bit-identity reference tests/trace_batch_test.cc
//    compares against.
#pragma once

#include <cstdint>
#include <source_location>

#include "cudalite/lane_trace.h"
#include "cudalite/trace_arena.h"
#include "hw/isa.h"

namespace g80 {

// A third instantiation, Ctx<SanitizerRecorder> (sanitizer/recorder.h),
// drives the g80check pass.  Recorders advertise `kSanitizing` so Ctx can
// compile the fault-injection hooks out of the other two entirely.

struct NullRecorder {
  static constexpr bool kTracing = false;
  static constexpr bool kSanitizing = false;

  void count(OpClass, int = 1) {}
  void flops(double) {}
  void mem(OpClass, std::uint64_t /*addr*/, std::uint32_t /*size*/,
           std::uint32_t /*site*/, const std::source_location& /*loc*/) {}
  void branch_outcome(bool, std::uint32_t /*site*/) {}
  void sync_site(std::uint32_t /*site*/, const std::source_location& /*loc*/) {}
};

class LaneRecorder {
 public:
  static constexpr bool kTracing = true;
  static constexpr bool kSanitizing = false;

  // `arena` routes memory accesses into SoA batch streams (and, with it,
  // `lane_id` locates this lane's warp slot); nullptr keeps the legacy
  // per-lane AoS pipeline.
  explicit LaneRecorder(LaneTrace* lane, TraceArena* arena = nullptr,
                        int lane_id = 0)
      : lane_(lane) {
    if (arena != nullptr && arena->active()) {
      arena_ = arena;
      const int ws = arena->warp_size();
      sub_ = lane_id % ws;
      for (int s = 0; s < kNumTraceSpaces; ++s)
        streams_[s] = arena->stream(lane_id / ws, s);
    }
  }

  void count(OpClass c, int n = 1) {
    lane_->ops[c] += static_cast<std::uint64_t>(n);
  }
  void flops(double f) { lane_->flops += f; }

  void mem(OpClass c, std::uint64_t addr, std::uint32_t size,
           std::uint32_t site, const std::source_location& loc) {
    count(c);
    note_site(site, loc);
    const bool store =
        c == OpClass::kStoreGlobal || c == OpClass::kStoreShared;
    if (arena_ != nullptr) {
      const int space = trace_space_of(c);
      if (space >= 0) streams_[space]->record(sub_, site, size, store, addr);
      return;
    }
    const MemAccess a{addr, size, site, true, store};
    switch (c) {
      case OpClass::kLoadGlobal:
      case OpClass::kStoreGlobal: lane_->global.push_back(a); break;
      case OpClass::kLoadShared:
      case OpClass::kStoreShared: lane_->shared.push_back(a); break;
      case OpClass::kLoadConst: lane_->constant.push_back(a); break;
      case OpClass::kLoadTexture: lane_->texture.push_back(a); break;
      default: break;
    }
  }

  void branch_outcome(bool taken, std::uint32_t site) {
    lane_->branches.push_back({site, taken});
  }

  void sync_site(std::uint32_t site, const std::source_location& loc) {
    note_site(site, loc);
    lane_->sync_sites.push_back(site);
  }

 private:
  void note_site(std::uint32_t site, const std::source_location& loc) {
    if (arena_ != nullptr) {
      // Last-site memo (kernels hammer one site in a loop) + O(1) intern.
      // Block-level dedup: the first lane in the block to use a site holds
      // its note; the collector scans all lanes, so attribution is
      // content-identical to the per-lane legacy notes.
      if (last_site_ == site) return;
      last_site_ = site;
      if (arena_->intern_site(site))
        lane_->site_notes.push_back({site, loc.file_name(), loc.line()});
      return;
    }
    // Legacy reference path: most-recent memo, then an O(sites) scan.
    auto& notes = lane_->site_notes;
    if (!notes.empty() && notes.back().site == site) return;
    for (const SiteNote& n : notes) {
      if (n.site == site) return;
    }
    notes.push_back({site, loc.file_name(), loc.line()});
  }

  LaneTrace* lane_;
  TraceArena* arena_ = nullptr;
  WarpSpaceBatch* streams_[kNumTraceSpaces] = {};
  int sub_ = 0;                          // lane index within its warp
  std::uint64_t last_site_ = ~0ull;      // no site seen yet
};

}  // namespace g80
