// Kernel launching: the cudalite equivalent of kernel<<<grid, block>>>(...).
//
// A launch performs (up to) three passes over the same kernel template:
//   1. a TRACE pass over a small sample of blocks, instrumented, feeding the
//      occupancy calculator and timing model;
//   2. an optional g80check SANITIZE pass over the whole grid
//      (LaunchOptions::sanitize.enabled) validating barrier and
//      shared-memory semantics — see sanitizer/sanitizer.h;
//   3. a FUNCTIONAL pass over the whole grid, uninstrumented, producing the
//      kernel's actual results.
// Sampled blocks execute twice (or more), so kernels must be idempotent at
// block granularity — true of this entire suite (each block writes a
// disjoint output region from inputs that the launch does not mutate).
//
// For very large grids (the 4096x4096 matmul of §4) callers disable the
// functional pass and rely on the trace sample for timing; functional
// correctness is established separately at smaller sizes by the test suite.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "cudalite/ctx.h"
#include "cudalite/device.h"
#include "cudalite/trace_collect.h"
#include "exec/block_runner.h"
#include "occupancy/occupancy.h"
#include "sanitizer/recorder.h"
#include "sanitizer/sanitizer.h"
#include "timing/model.h"

namespace g80 {

// Ctx instantiation for the g80check sanitize pass.
using SanitizeCtx = Ctx<SanitizerRecorder>;

struct LaunchOptions {
  // Registers per thread, as the CUDA 0.8 compiler would report (cubin
  // metadata).  The paper's kernels state these; our kernels carry the
  // paper's numbers where given and plausible estimates otherwise.
  int regs_per_thread = 10;
  // Number of blocks to trace for the timing model.
  int sample_blocks = 4;
  // Run the functional pass over the full grid.
  bool functional = true;
  // Kernel calls __syncthreads.  Setting this false enables a much faster
  // fiber-less execution path; a kernel that then syncs anyway throws.
  bool uses_sync = true;
  // Fiber stack size for kernel threads.
  std::size_t stack_bytes = 128 * 1024;
  // g80check: opt-in barrier-divergence and shared-memory-race validation
  // (plus deterministic fault injection).  Adds one extra pass over the
  // grid; launches with `enabled == false` execute exactly the seed paths.
  SanitizerOptions sanitize;
};

struct LaunchStats {
  Dim3 grid, block;
  std::size_t smem_per_block = 0;
  int regs_per_thread = 0;
  Occupancy occupancy;
  TraceSummary trace;
  KernelTiming timing;
  // Findings from the g80check pass (empty unless sanitize.enabled).
  SanitizerReport sanitizer;

  // Device-side execution time of this launch.
  double kernel_seconds() const { return timing.seconds; }
  // Including the fixed driver launch overhead (dominant for the paper's
  // time-sliced simulators that relaunch every step, §5.1).
  double total_seconds(const DeviceSpec& spec) const {
    return timing.seconds + spec.launch_overhead_us * 1e-6;
  }
};

namespace detail {

// Evenly spread `n` sample indices over [0, total), always including the
// first and last block so grid-edge partial warps are represented.
std::vector<std::uint64_t> pick_sample_blocks(std::uint64_t total, int n);

}  // namespace detail

template <class Kernel, class... Args>
LaunchStats launch(Device& dev, Dim3 grid, Dim3 block, const LaunchOptions& opt,
                   const Kernel& kernel, Args&&... args) {
  const DeviceSpec& spec = dev.spec();
  const auto threads = static_cast<int>(block.count());

  // ---- Launch-configuration validation ----
  // Every violation records a sticky Status on the device (queryable via
  // get_last_error) and throws StatusError with full context.
  if (threads < 1 || threads > spec.max_threads_per_block) {
    dev.raise(Status::kInvalidConfiguration,
              "block of " + std::to_string(threads) + " threads exceeds the " +
                  std::to_string(spec.max_threads_per_block) +
                  " threads/block hardware limit");
  }
  if (grid.z != 1) {
    dev.raise(Status::kInvalidConfiguration,
              "grid.z = " + std::to_string(grid.z) +
                  ": G80 grids are 2-D (grid.z must be 1)");
  }
  if (grid.x > static_cast<unsigned>(spec.max_grid_dim) ||
      grid.y > static_cast<unsigned>(spec.max_grid_dim)) {
    dev.raise(Status::kInvalidConfiguration,
              "grid " + std::to_string(grid.x) + "x" + std::to_string(grid.y) +
                  " exceeds the " + std::to_string(spec.max_grid_dim) +
                  " blocks/dimension limit");
  }
  const std::uint64_t total_blocks = grid.count();
  if (total_blocks < 1) {
    dev.raise(Status::kInvalidConfiguration, "empty grid");
  }
  // One block's registers must fit the SM's file (allocated in
  // register_alloc_unit chunks) or the launch can never be scheduled.
  const long long unit = spec.register_alloc_unit;
  const long long block_regs =
      (static_cast<long long>(opt.regs_per_thread) * threads + unit - 1) / unit *
      unit;
  if (block_regs > spec.registers_per_sm) {
    dev.raise(Status::kLaunchOutOfResources,
              "block needs " + std::to_string(block_regs) + " registers (" +
                  std::to_string(opt.regs_per_thread) + "/thread x " +
                  std::to_string(threads) + " threads, allocated in chunks of " +
                  std::to_string(unit) + ") but the SM register file holds " +
                  std::to_string(spec.registers_per_sm));
  }

  BlockRunner runner(opt.uses_sync ? threads : 1, spec.shared_mem_per_sm,
                     opt.stack_bytes);
  const auto run_block = [&](const std::function<void(int)>& body) {
    if (opt.uses_sync) {
      runner.run(threads, body);
    } else {
      runner.run_direct(threads, body);
    }
  };

  LaunchStats stats;
  stats.grid = grid;
  stats.block = block;
  stats.regs_per_thread = opt.regs_per_thread;

  try {
    // ---- Trace pass ----
    const auto samples =
        detail::pick_sample_blocks(total_blocks, opt.sample_blocks);
    std::vector<BlockTrace> traces;
    traces.reserve(samples.size());
    std::vector<LaneTrace> lanes(threads);
    for (const std::uint64_t b : samples) {
      BlockEnv env{&runner, grid, block,
                   delinearize(static_cast<unsigned>(b), grid)};
      for (auto& l : lanes) l.clear();
      run_block([&](int tid) {
        TraceCtx ctx(&env, tid, LaneRecorder(&lanes[tid]));
        kernel(ctx, args...);
      });
      traces.push_back(collect_block_trace(spec, lanes));
    }
    stats.smem_per_block = runner.shared().bytes_used();
    stats.trace = TraceSummary::summarize(traces);

    // ---- Occupancy + timing ----
    const KernelResources res{opt.regs_per_thread, stats.smem_per_block,
                              threads};
    stats.occupancy = compute_occupancy(spec, res);
    stats.timing =
        simulate_kernel(spec, stats.occupancy, total_blocks, stats.trace);

    // ---- g80check sanitize pass ----
    // Full-grid pass under Ctx<SanitizerRecorder>: shadow memory watches
    // every shared access, the runner reports every barrier release, and
    // any configured fault injection perturbs this pass only.  Runs before
    // the functional pass so an injected corruption cannot leak into
    // results the host reads (blocks are idempotent; the functional pass
    // rewrites every output).
    if (opt.sanitize.enabled) {
      Sanitizer san(opt.sanitize, spec.shared_mem_per_sm);
      runner.set_barrier_observer(&san);
      for (std::uint64_t b = 0; b < total_blocks; ++b) {
        BlockEnv env{&runner, grid, block,
                     delinearize(static_cast<unsigned>(b), grid)};
        san.begin_block(b);
        run_block([&](int tid) {
          SanitizeCtx ctx(&env, tid, SanitizerRecorder(&san, tid));
          kernel(ctx, args...);
        });
      }
      runner.set_barrier_observer(nullptr);
      stats.sanitizer = san.report();
      if (!stats.sanitizer.clean()) {
        dev.record_status(stats.sanitizer.findings.front().status);
        if (opt.sanitize.abort_on_error) {
          throw StatusError(stats.sanitizer.findings.front().status,
                            stats.sanitizer.summary());
        }
      }
    }

    // ---- Functional pass ----
    if (opt.functional) {
      for (std::uint64_t b = 0; b < total_blocks; ++b) {
        BlockEnv env{&runner, grid, block,
                     delinearize(static_cast<unsigned>(b), grid)};
        run_block([&](int tid) {
          FuncCtx ctx(&env, tid, NullRecorder{});
          kernel(ctx, args...);
        });
      }
    }
  } catch (const StatusError& e) {
    dev.record_status(e.status());
    throw;
  } catch (const Error&) {
    dev.record_status(Status::kLaunchFailure);
    throw;
  }
  return stats;
}

}  // namespace g80
