// Kernel launching: the cudalite equivalent of kernel<<<grid, block>>>(...).
//
// A launch performs (up to) three passes over the same kernel template:
//   1. a TRACE pass over a small sample of blocks, instrumented, feeding the
//      occupancy calculator and timing model;
//   2. an optional g80check SANITIZE pass over the whole grid
//      (LaunchOptions::sanitize.enabled) validating barrier and
//      shared-memory semantics — see sanitizer/sanitizer.h;
//   3. a FUNCTIONAL pass over the whole grid, uninstrumented, producing the
//      kernel's actual results.
// Sampled blocks execute twice (or more), so kernels must be idempotent at
// block granularity — true of this entire suite (each block writes a
// disjoint output region from inputs that the launch does not mutate).
//
// For very large grids (the 4096x4096 matmul of §4) callers disable the
// functional pass and rely on the trace sample for timing; functional
// correctness is established separately at smaller sizes by the test suite.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "cudalite/ctx.h"
#include "cudalite/device.h"
#include "cudalite/trace_arena.h"
#include "cudalite/trace_collect.h"
#include "exec/block_runner.h"
#include "exec/cancel.h"
#include "exec/worker_pool.h"
#include "occupancy/occupancy.h"
#include "resil/policy.h"
#include "resil/resilience.h"
#include "sanitizer/recorder.h"
#include "sanitizer/sanitizer.h"
#include "timing/model.h"

namespace g80 {

// Ctx instantiation for the g80check sanitize pass.
using SanitizeCtx = Ctx<SanitizerRecorder>;

struct LaunchStats;

// g80prof hook.  The Profiler type and the out-of-line recording bridge live
// in src/prof (prof/profiler.h); only declarations appear here so cudalite
// keeps no header dependency on the profiler layer.
namespace prof {
class Profiler;
namespace detail {
void record_launch(Profiler& sink, const std::string& kernel_name,
                   std::uint64_t stream, const DeviceSpec& spec,
                   const LaunchStats& stats);
}  // namespace detail
}  // namespace prof

// g80scope hook, same pattern: the Session type and its bridge live in
// src/scope (scope/session.h).  Returns the session-assigned record id.
namespace scope {
class Session;
namespace detail {
std::uint64_t record_launch(Session& sink, const std::string& kernel_name,
                            std::uint64_t stream, const DeviceSpec& spec,
                            const LaunchStats& stats);
}  // namespace detail
}  // namespace scope

// Opt-in per-launch profiling (g80prof).  Zero-cost when `sink` is null:
// the launch executes exactly the same passes either way — counters are
// derived after the fact from the trace pass's statistics, never measured
// in the functional pass — so kernel outputs and LaunchStats stay
// bit-identical with profiling on or off (bench/prof_overhead.cc asserts
// this).
struct ProfileOptions {
  prof::Profiler* sink = nullptr;  // enabled iff non-null
  // Aggregation key in the profiler's per-kernel tables ("" -> "kernel").
  std::string kernel_name;
  // Issuing g80rt stream id; filled by Runtime::launch_async.
  std::uint64_t stream = 0;
};

// Opt-in per-launch time-series derivation (g80scope).  Like ProfileOptions
// this is zero-cost when `sink` is null and cannot perturb results when it
// is not: the series is derived after all passes complete, from the same
// trace statistics the timing model already consumed
// (bench/scope_overhead.cc asserts bit-identical outputs either way).
// The kernel name and stream id are taken from ProfileOptions so a launch
// profiled and scoped at once aggregates under one name.
struct ScopeOptions {
  scope::Session* sink = nullptr;  // enabled iff non-null
  // When set, receives the session-assigned record id; g80rt uses it to
  // stamp the launch's timeline span for the Chrome-trace counter tracks.
  std::uint64_t* id_out = nullptr;
};

struct LaunchOptions {
  // Registers per thread, as the CUDA 0.8 compiler would report (cubin
  // metadata).  The paper's kernels state these; our kernels carry the
  // paper's numbers where given and plausible estimates otherwise.
  int regs_per_thread = 10;
  // Number of blocks to trace for the timing model.
  int sample_blocks = 4;
  // Run the functional pass over the full grid.
  bool functional = true;
  // Kernel calls __syncthreads.  Setting this false enables a much faster
  // fiber-less execution path; a kernel that then syncs anyway throws.
  bool uses_sync = true;
  // Functional fast path: skip the trace pass, timing model, and all
  // trace/stat bookkeeping, running only configuration validation, the
  // functional pass, and occupancy (from the functional pass's shared-memory
  // footprint).  Kernel outputs are bit-identical to the traced path —
  // tracing never touches results by construction — but stats.trace and
  // stats.timing stay empty, so the fast path is IGNORED while a profiler,
  // scope session, or sanitizer is attached (those need the instrumented
  // passes; tests/exec_fastpath_test.cc asserts the rejection).  When the
  // g80resil modeled watchdog is armed (resilience.modeled_timeout_s > 0) a
  // minimal 1-block trace sample is retained so the watchdog still sees a
  // modeled time.  Auto-selected by g80resil at fallback level >= 2 and by
  // g80serve for jobs requesting sample_blocks == 0.
  bool fast_path = false;
  // Fiber stack size for kernel threads.
  std::size_t stack_bytes = 128 * 1024;
  // Fiber switch engine for this launch's BlockRunners: the hand-rolled
  // stack switch (default on non-sanitized x86-64) or the legacy glibc
  // ucontext engine.  Semantics are identical; only switch cost differs.
  // Requests for the fast engine degrade to ucontext where unsupported.
  Fiber::Backend fiber_backend = Fiber::default_backend();
  // g80check: opt-in barrier-divergence and shared-memory-race validation
  // (plus deterministic fault injection).  Adds one extra pass over the
  // grid; launches with `enabled == false` execute exactly the seed paths.
  SanitizerOptions sanitize;
  // g80prof: opt-in per-launch counter collection into a session profiler.
  ProfileOptions prof;
  // g80scope: opt-in per-launch time-series derivation into a scope session.
  ScopeOptions scope;
  // g80rt block scheduling: run the trace and functional passes' independent
  // blocks across this pool's workers.  nullptr falls back to the ambient
  // pool (set_ambient_launch_pool / ScopedLaunchPool), and with neither the
  // sequential path runs.  Kernel outputs and LaunchStats are bit-identical
  // either way: each worker slot owns a private BlockRunner (fibers +
  // shared-memory arena) and per-block traces merge in sample order.  The
  // g80check pass stays sequential — its shadow state is grid-global.
  WorkerPool* pool = nullptr;
  // g80resil: opt-in watchdog timeouts, retry-with-backoff recovery, and
  // graceful degradation (see resil/policy.h and docs/error-handling.md).
  // Disabled launches execute exactly the pre-resil path.
  ResiliencePolicy resilience;
};

// Ambient default worker pool, consulted when LaunchOptions::pool is null.
// Lets whole-application layers (the §5 suite, benches) go block-parallel
// without threading a pool through every launch call.  Thread-local, so
// concurrent g80rt streams can opt in independently.
WorkerPool* ambient_launch_pool();
void set_ambient_launch_pool(WorkerPool* pool);

class ScopedLaunchPool {
 public:
  explicit ScopedLaunchPool(WorkerPool* pool) : prev_(ambient_launch_pool()) {
    set_ambient_launch_pool(pool);
  }
  ~ScopedLaunchPool() { set_ambient_launch_pool(prev_); }
  ScopedLaunchPool(const ScopedLaunchPool&) = delete;
  ScopedLaunchPool& operator=(const ScopedLaunchPool&) = delete;

 private:
  WorkerPool* prev_;
};

// Ambient fast-path default, consulted in addition to
// LaunchOptions::fast_path (either one opts the launch in; observers still
// override — see the field's comment).  Lets a whole workload (the §5
// suite, a bench sweep) run result-only without threading options through
// every launch call.  Thread-local, like the ambient pool.
bool ambient_fast_path();
void set_ambient_fast_path(bool on);

class ScopedFastPath {
 public:
  explicit ScopedFastPath(bool on = true) : prev_(ambient_fast_path()) {
    set_ambient_fast_path(on);
  }
  ~ScopedFastPath() { set_ambient_fast_path(prev_); }
  ScopedFastPath(const ScopedFastPath&) = delete;
  ScopedFastPath& operator=(const ScopedFastPath&) = delete;

 private:
  bool prev_;
};

struct LaunchStats {
  Dim3 grid, block;
  std::size_t smem_per_block = 0;
  int regs_per_thread = 0;
  Occupancy occupancy;
  TraceSummary trace;
  KernelTiming timing;
  // Findings from the g80check pass (empty unless sanitize.enabled).
  SanitizerReport sanitizer;
  // g80resil recovery provenance: how many attempts ran, at what fallback
  // level, and whether the launch recovered after transient failures.
  ResilienceStats resilience;

  // Device-side execution time of this launch.
  double kernel_seconds() const { return timing.seconds; }
  // Including the fixed driver launch overhead (dominant for the paper's
  // time-sliced simulators that relaunch every step, §5.1).
  double total_seconds(const DeviceSpec& spec) const {
    return timing.seconds + spec.launch_overhead_us * 1e-6;
  }
};

namespace detail {

// Evenly spread `n` sample indices over [0, total), always including the
// first and last block so grid-edge partial warps are represented.
std::vector<std::uint64_t> pick_sample_blocks(std::uint64_t total, int n);

// Per-slot BlockRunner scratch for the block-parallel passes.  Slot 0 is the
// launch's primary runner; other slots get lazily-constructed clones touched
// only by the worker thread owning that slot, so no locking is needed.
class RunnerSet {
 public:
  RunnerSet(BlockRunner* primary, int slots, int max_threads,
            std::size_t smem_capacity, std::size_t stack_bytes,
            Fiber::Backend backend = Fiber::default_backend())
      : primary_(primary),
        extras_(static_cast<std::size_t>(std::max(0, slots - 1))),
        max_threads_(max_threads),
        smem_capacity_(smem_capacity),
        stack_bytes_(stack_bytes),
        backend_(backend) {}

  BlockRunner& at(int slot) {
    if (slot == 0) return *primary_;
    auto& r = extras_[static_cast<std::size_t>(slot - 1)];
    if (!r)
      r = std::make_unique<BlockRunner>(max_threads_, smem_capacity_,
                                        stack_bytes_, backend_);
    return *r;
  }

  // Shared-memory footprint of the kernel: static __shared__ layout is
  // identical for every block (the CUDA model), so the max over runners that
  // executed at least one block equals the sequential path's value.
  std::size_t smem_bytes_used() const {
    std::size_t used = primary_->shared().bytes_used();
    for (const auto& r : extras_)
      if (r) used = std::max(used, r->shared().bytes_used());
    return used;
  }

 private:
  BlockRunner* primary_;
  std::vector<std::unique_ptr<BlockRunner>> extras_;
  int max_threads_;
  std::size_t smem_capacity_;
  std::size_t stack_bytes_;
  Fiber::Backend backend_;
};

// Dispatch body(slot, index) over [0, total): sequential on the caller when
// no pool is available, block-parallel otherwise.  Either way every index
// runs exactly once and failures surface as the lowest-index exception.
// `cancel` (optional) makes the gap between blocks a cancellation point on
// both paths, so a fired g80resil watchdog preempts the launch without its
// skipped work being reported as success.
template <class Body>
void for_each_block(WorkerPool* pool, std::uint64_t total, const Body& body,
                    const CancelToken* cancel = nullptr) {
  if (pool != nullptr && pool->width() > 1 && total > 1) {
    pool->parallel_for(total, body, cancel);
  } else {
    for (std::uint64_t i = 0; i < total; ++i) {
      if (cancel != nullptr) cancel->check("sequential block loop");
      body(0, i);
    }
  }
}

}  // namespace detail

namespace detail {

// One attempt of a launch: everything from configuration validation through
// the functional pass.  `att` carries the g80resil attempt context — the
// watchdog's cancellation token (threaded into every between-block and
// barrier-release cancellation point) and the graceful-degradation level:
//   level 0  exactly the configuration the caller asked for;
//   level 1  block parallelism abandoned (sequential blocks on the caller,
//            sidestepping a starved or wedged worker pool);
//   level 2  additionally the functional fast path (LaunchOptions::fast_path
//            semantics): no sanitize pass and no trace pass beyond the
//            1-block sample the modeled watchdog needs, if armed — the
//            minimum machinery that still yields correct kernel outputs.
// Kernel outputs are bit-identical across levels (block scheduling never
// changes results — the seed invariant); only trace/timing fidelity and
// validation coverage degrade.
template <class Kernel, class... Args>
void launch_impl(Device& dev, Dim3 grid, Dim3 block, const LaunchOptions& opt,
                 const AttemptConfig& att, LaunchStats& stats,
                 const Kernel& kernel, Args&... args) {
  const DeviceSpec& spec = dev.spec();
  const auto threads = static_cast<int>(block.count());

  // ---- Launch-configuration validation ----
  // Every violation records a sticky Status on the device (queryable via
  // get_last_error) and throws StatusError with full context.
  if (threads < 1 || threads > spec.max_threads_per_block) {
    dev.raise(Status::kInvalidConfiguration,
              "block of " + std::to_string(threads) + " threads exceeds the " +
                  std::to_string(spec.max_threads_per_block) +
                  " threads/block hardware limit");
  }
  if (grid.z != 1) {
    dev.raise(Status::kInvalidConfiguration,
              "grid.z = " + std::to_string(grid.z) +
                  ": G80 grids are 2-D (grid.z must be 1)");
  }
  if (grid.x > static_cast<unsigned>(spec.max_grid_dim) ||
      grid.y > static_cast<unsigned>(spec.max_grid_dim)) {
    dev.raise(Status::kInvalidConfiguration,
              "grid " + std::to_string(grid.x) + "x" + std::to_string(grid.y) +
                  " exceeds the " + std::to_string(spec.max_grid_dim) +
                  " blocks/dimension limit");
  }
  const std::uint64_t total_blocks = grid.count();
  if (total_blocks < 1) {
    dev.raise(Status::kInvalidConfiguration, "empty grid");
  }
  // One block's registers must fit the SM's file (allocated in
  // register_alloc_unit chunks) or the launch can never be scheduled.
  const long long unit = spec.register_alloc_unit;
  const long long block_regs =
      (static_cast<long long>(opt.regs_per_thread) * threads + unit - 1) / unit *
      unit;
  if (block_regs > spec.registers_per_sm) {
    dev.raise(Status::kLaunchOutOfResources,
              "block needs " + std::to_string(block_regs) + " registers (" +
                  std::to_string(opt.regs_per_thread) + "/thread x " +
                  std::to_string(threads) + " threads, allocated in chunks of " +
                  std::to_string(unit) + ") but the SM register file holds " +
                  std::to_string(spec.registers_per_sm));
  }

  // Block scheduling: explicit pool, else the ambient one (g80rt), else the
  // sequential seed path.  Slot 0 always runs on this thread.  Fallback
  // level >= 1 forces the sequential path outright (including past the
  // ambient pool — falling back *means* not trusting the pool).
  WorkerPool* pool =
      att.fallback_level >= 1
          ? nullptr
          : (opt.pool != nullptr ? opt.pool : ambient_launch_pool());
  const bool sanitize_enabled =
      att.fallback_level < 2 && opt.sanitize.enabled;
  // Functional fast path: requested by the caller or escalated to by the
  // degradation ladder, but only when no observer needs the instrumented
  // passes — a profiler/scope/sanitizer silently falls back to the traced
  // path rather than recording empty counters.
  const bool observed = opt.sanitize.enabled || opt.prof.sink != nullptr ||
                        opt.scope.sink != nullptr;
  const bool fast = (opt.fast_path || ambient_fast_path() ||
                     att.fallback_level >= 2) &&
                    !observed;
  // Under the fast path, trace only what the modeled watchdog requires: one
  // sample block when it is armed, none otherwise.
  const bool modeled_watchdog =
      opt.resilience.enabled && opt.resilience.modeled_timeout_s > 0;
  const int sample_blocks =
      fast ? (modeled_watchdog ? 1 : 0)
           : (att.fallback_level >= 2 ? 1 : opt.sample_blocks);
  const CancelToken* cancel = att.cancel;
  const int slots =
      pool != nullptr && pool->width() > 1 ? pool->width() : 1;

  BlockRunner runner(opt.uses_sync ? threads : 1, spec.shared_mem_per_sm,
                     opt.stack_bytes, opt.fiber_backend);
  runner.set_cancel_token(cancel);
  detail::RunnerSet runners(&runner, slots, opt.uses_sync ? threads : 1,
                            spec.shared_mem_per_sm, opt.stack_bytes,
                            opt.fiber_backend);
  const auto run_block = [&](BlockRunner& r,
                             const std::function<void(int)>& body) {
    if (opt.uses_sync) {
      r.run(threads, body);
    } else {
      r.run_direct(threads, body);
    }
  };

  stats.grid = grid;
  stats.block = block;
  stats.regs_per_thread = opt.regs_per_thread;

  try {
    // ---- Trace pass ----
    // Each sampled block is traced into its own slot-private lane buffers
    // and analyzed (coalescing / bank conflicts / constant broadcast /
    // texture cache) into a self-contained BlockTrace, stored by sample
    // index.  The merge therefore happens in sample order no matter which
    // worker finished first, keeping TraceSummary bit-identical to the
    // sequential path.
    const auto samples =
        detail::pick_sample_blocks(total_blocks, sample_blocks);
    if (!samples.empty()) {
      std::vector<BlockTrace> traces(samples.size());
      std::vector<std::vector<LaneTrace>> slot_lanes(
          static_cast<std::size_t>(slots));
      // Batched recording (default; G80_TRACE_BATCH=off / ScopedTraceBatch
      // forces the legacy per-lane pipeline): each slot owns a TraceArena
      // whose SoA row capacity carries across the blocks it traces, so
      // steady-state recording allocates nothing.  Both pipelines produce
      // bit-identical BlockTraces (tests/trace_batch_test.cc).
      const bool batch = trace_batch_enabled();
      std::vector<TraceArena> slot_arenas(
          batch ? static_cast<std::size_t>(slots) : 0);
      detail::for_each_block(
          pool, samples.size(),
          [&](int slot, std::uint64_t i) {
            BlockRunner& r = runners.at(slot);
            r.set_cancel_token(cancel);
            auto& lanes = slot_lanes[static_cast<std::size_t>(slot)];
            lanes.resize(static_cast<std::size_t>(threads));
            for (auto& l : lanes) l.clear();
            TraceArena* arena = nullptr;
            if (batch) {
              auto& a = slot_arenas[static_cast<std::size_t>(slot)];
              a.begin_block(spec, threads);
              if (a.active()) arena = &a;
            }
            BlockEnv env{&r, grid, block,
                         delinearize(static_cast<unsigned>(samples[i]), grid)};
            run_block(r, [&](int tid) {
              TraceCtx ctx(&env, tid, LaneRecorder(&lanes[tid], arena, tid));
              kernel(ctx, args...);
            });
            traces[i] = collect_block_trace(spec, lanes, arena);
          },
          cancel);
      stats.smem_per_block = runners.smem_bytes_used();
      stats.trace = TraceSummary::summarize(traces);

      // ---- Occupancy + timing ----
      const KernelResources res{opt.regs_per_thread, stats.smem_per_block,
                                threads};
      stats.occupancy = compute_occupancy(spec, res);
      stats.timing =
          simulate_kernel(spec, stats.occupancy, total_blocks, stats.trace);

      // ---- g80resil modeled watchdog ----
      // The paper's display-timeout constraint (§5.1) on the simulated
      // clock: a launch whose modeled device time exceeds the budget is
      // rejected before the (expensive) sanitize and functional passes run.
      // This is deterministic — identical retries fail identically.
      if (opt.resilience.enabled && opt.resilience.modeled_timeout_s > 0 &&
          stats.timing.seconds > opt.resilience.modeled_timeout_s) {
        std::ostringstream os;
        os << "modeled kernel time " << stats.timing.seconds
           << " s exceeds the " << opt.resilience.modeled_timeout_s
           << " s modeled watchdog budget (split the work across launches, "
              "as the paper's time-sliced simulators do)";
        dev.raise(Status::kTimeout, os.str());
      }
    }

    // ---- g80check sanitize pass ----
    // Full-grid pass under Ctx<SanitizerRecorder>: shadow memory watches
    // every shared access, the runner reports every barrier release, and
    // any configured fault injection perturbs this pass only.  Runs before
    // the functional pass so an injected corruption cannot leak into
    // results the host reads (blocks are idempotent; the functional pass
    // rewrites every output).
    if (sanitize_enabled) {
      Sanitizer san(opt.sanitize, spec.shared_mem_per_sm);
      runner.set_barrier_observer(&san);
      for (std::uint64_t b = 0; b < total_blocks; ++b) {
        BlockEnv env{&runner, grid, block,
                     delinearize(static_cast<unsigned>(b), grid)};
        san.begin_block(b);
        run_block(runner, [&](int tid) {
          SanitizeCtx ctx(&env, tid, SanitizerRecorder(&san, tid));
          kernel(ctx, args...);
        });
      }
      runner.set_barrier_observer(nullptr);
      stats.sanitizer = san.report();
      if (!stats.sanitizer.clean()) {
        dev.record_status(stats.sanitizer.findings.front().status);
        if (opt.sanitize.abort_on_error) {
          throw StatusError(stats.sanitizer.findings.front().status,
                            stats.sanitizer.summary());
        }
      }
    }

    // ---- Functional pass ----
    // Grid blocks are independent (each writes a disjoint output region, see
    // the header comment), so they distribute freely across worker slots;
    // within a block, fiber scheduling is unchanged, so results stay
    // bit-identical to sequential execution.
    if (opt.functional) {
      detail::for_each_block(
          pool, total_blocks,
          [&](int slot, std::uint64_t b) {
            BlockRunner& r = runners.at(slot);
            r.set_cancel_token(cancel);
            BlockEnv env{&r, grid, block,
                         delinearize(static_cast<unsigned>(b), grid)};
            run_block(r, [&](int tid) {
              FuncCtx ctx(&env, tid, NullRecorder{});
              kernel(ctx, args...);
            });
          },
          cancel);
    }

    // Sample-free fast path: no trace pass ran, so take the shared-memory
    // footprint from the functional pass (the static __shared__ layout is
    // identical in every pass) and fill in occupancy — the one model output
    // that needs no trace.  stats.trace/stats.timing stay empty by design.
    if (samples.empty()) {
      stats.smem_per_block = runners.smem_bytes_used();
      const KernelResources res{opt.regs_per_thread, stats.smem_per_block,
                                threads};
      stats.occupancy = compute_occupancy(spec, res);
    }
  } catch (const StatusError& e) {
    dev.record_status(e.status());
    throw;
  } catch (const Error&) {
    dev.record_status(Status::kLaunchFailure);
    throw;
  } catch (const std::exception& e) {
    // A kernel functor (or anything it called) threw a plain host exception.
    // Record the sticky status and wrap it as a StatusError so the failure
    // propagates as a g80::Status on the launching stream instead of
    // escaping untyped (and, before this clause existed, std::terminate-ing
    // a g80rt stream thread via an unhandled-exception path).
    dev.record_status(Status::kLaunchFailure);
    throw StatusError(Status::kLaunchFailure,
                      std::string("kernel threw: ") + e.what());
  } catch (...) {
    dev.record_status(Status::kLaunchFailure);
    throw StatusError(Status::kLaunchFailure,
                      "kernel threw a non-standard exception");
  }
}

}  // namespace detail

template <class Kernel, class... Args>
LaunchStats launch(Device& dev, Dim3 grid, Dim3 block, const LaunchOptions& opt,
                   const Kernel& kernel, Args&&... args) {
  LaunchStats stats;
  // Every attempt starts from fresh stats (blocks are idempotent, so a
  // partial failed attempt leaves nothing that needs undoing); the final
  // attempt's stats — plus the accumulated resilience history — survive.
  run_resilient(opt.resilience, stats.resilience,
                [&](const AttemptConfig& att) {
                  stats = LaunchStats{};
                  detail::launch_impl(dev, grid, block, opt, att, stats,
                                      kernel, args...);
                });
  // A launch that survived only through retries records the informational
  // kRecovered sticky status (last-writer-wins, like the CUDA runtime's
  // error slot), overwriting the transient failures of earlier attempts so
  // hosts polling get_last_error() see recovery rather than a stale error.
  if (stats.resilience.recovered) {
    dev.record_status(Status::kRecovered);
  }
  // ---- g80prof ----
  // Counter derivation happens here, after every pass (and every resilience
  // attempt) completed, from the trace statistics computed above — the
  // functional path never sees the profiler, and a retried launch records
  // once, with its recovery provenance attached.
  if (opt.prof.sink != nullptr) {
    prof::detail::record_launch(*opt.prof.sink, opt.prof.kernel_name,
                                opt.prof.stream, dev.spec(), stats);
  }
  // ---- g80scope ----
  // Same contract: the time series is derived from the already-computed
  // trace statistics, never measured during a pass.
  if (opt.scope.sink != nullptr) {
    const std::uint64_t id =
        scope::detail::record_launch(*opt.scope.sink, opt.prof.kernel_name,
                                     opt.prof.stream, dev.spec(), stats);
    if (opt.scope.id_out != nullptr) *opt.scope.id_out = id;
  }
  return stats;
}

}  // namespace g80
