// Arena-backed SoA trace storage for the trace pass (ROADMAP item 1:
// "batch the trace pass's recorder dispatch the same way").
//
// The legacy recording pipeline is AoS and per-lane: every `LaneRecorder::mem`
// pushes a 24-byte MemAccess into the lane's own vector, and after the block
// completes trace_collect.cc re-groups those per-lane streams into warp-level
// instructions with per-access hash-map lookups.  That re-grouping — not the
// kernel body — dominates traced wall time.
//
// The arena removes both costs by exploiting the same structural fact PR 8's
// warp-batched stepping exploits: the BlockRunner resumes the lanes of a warp
// in thread-index order, and within a converged warp every lane executes the
// same instruction sequence between barriers.  So instead of grouping after
// the fact, the arena reconstructs each warp-level memory instruction
// *positionally while recording*:
//
//   - Each (warp, address space) pair owns a WarpSpaceBatch: SoA columns with
//     one row per warp-level instruction — a packed static key
//     (site | size | store), an active-lane mask, and a lane-striped address
//     column.
//   - The first lane to reach position j appends row j; every later lane
//     whose j-th access carries the same static key claims its mask bit and
//     address slot with a single compare — no hashing, no per-access
//     allocation (row capacity is reused across the blocks a slot traces).
//   - A lane whose j-th access does NOT match row j has diverged from the
//     warp's common instruction stream.  It permanently falls back to a
//     per-lane overflow vector and the stream is marked dirty; the collector
//     then reconstructs the exact per-lane sequences (prefix rows + overflow)
//     and runs the legacy (site, occurrence) grouping on them, so divergent
//     warps produce bit-identical statistics through the slow path.
//
// Why positional matching is exact for clean streams: every lane's matched
// rows form a prefix [0, cursor), so row j groups exactly the lanes whose
// j-th access it is, the shared key prefix makes the legacy key
// (site, occurrence-at-site) of position j identical across lanes, and
// first-appearance order equals row order.  tests/trace_batch_test.cc and
// invariant-fuzz property 6 pin the resulting bit-identity; the
// G80_TRACE_BATCH=off escape hatch (or ScopedTraceBatch) forces the legacy
// pipeline for A/B comparison.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "hw/device_spec.h"
#include "hw/isa.h"
#include "mem/access.h"

namespace g80 {

// ---------------------------------------------------------------------------
// Batch gating: env default (G80_TRACE_BATCH=off|0 disables) overridable per
// thread, the same ambient pattern as ScopedFastPath / ScopedLaunchPool.
// ---------------------------------------------------------------------------

// Whether the next launch's trace pass should record through the arena.
// Consults the thread-local override first, then the environment.
bool trace_batch_enabled();
// Thread-local override: 1 force-on, 0 force-off, -1 follow the environment.
void set_ambient_trace_batch(int mode);
int ambient_trace_batch();

class ScopedTraceBatch {
 public:
  explicit ScopedTraceBatch(bool on) : prev_(ambient_trace_batch()) {
    set_ambient_trace_batch(on ? 1 : 0);
  }
  ~ScopedTraceBatch() { set_ambient_trace_batch(prev_); }
  ScopedTraceBatch(const ScopedTraceBatch&) = delete;
  ScopedTraceBatch& operator=(const ScopedTraceBatch&) = delete;

 private:
  int prev_;
};

// ---------------------------------------------------------------------------
// Address spaces the recorder batches (dense index into TraceArena streams).
// ---------------------------------------------------------------------------

inline constexpr int kNumTraceSpaces = 4;
inline constexpr int kSpaceGlobal = 0;
inline constexpr int kSpaceShared = 1;
inline constexpr int kSpaceConst = 2;
inline constexpr int kSpaceTexture = 3;

// OpClass -> batch space (-1: not a recorded memory access).
constexpr int trace_space_of(OpClass c) {
  switch (c) {
    case OpClass::kLoadGlobal:
    case OpClass::kStoreGlobal: return kSpaceGlobal;
    case OpClass::kLoadShared:
    case OpClass::kStoreShared: return kSpaceShared;
    case OpClass::kLoadConst: return kSpaceConst;
    case OpClass::kLoadTexture: return kSpaceTexture;
    default: return -1;
  }
}

// ---------------------------------------------------------------------------
// Packed static identity of one warp-level memory instruction.  `size` is a
// sizeof(), so bits 32..62 always hold it; bit 63 carries the direction.
// ---------------------------------------------------------------------------

constexpr std::uint64_t pack_trace_key(std::uint32_t site, std::uint32_t size,
                                       bool store) {
  return static_cast<std::uint64_t>(site) |
         (static_cast<std::uint64_t>(size) << 32) |
         (static_cast<std::uint64_t>(store) << 63);
}
constexpr std::uint32_t trace_key_site(std::uint64_t key) {
  return static_cast<std::uint32_t>(key);
}
constexpr std::uint32_t trace_key_size(std::uint64_t key) {
  return static_cast<std::uint32_t>((key >> 32) & 0x7fffffffu);
}
constexpr bool trace_key_store(std::uint64_t key) { return (key >> 63) != 0; }

// ---------------------------------------------------------------------------
// Block-level open-addressing site intern table: O(1) "first use this
// block?" queries replacing note_site's per-lane linear scan.  Keys are the
// recorder's 32-bit site hashes; capacity persists across blocks.
// ---------------------------------------------------------------------------

class SiteInterner {
 public:
  // Resets to empty, keeping table capacity.
  void clear();
  // Returns true iff `site` was not in the table (and inserts it).
  bool insert(std::uint32_t site);
  std::size_t size() const { return count_; }

 private:
  static constexpr std::uint64_t kEmpty = ~0ull;
  void grow();

  std::vector<std::uint64_t> slots_;
  std::size_t count_ = 0;
};

// ---------------------------------------------------------------------------
// One (warp, space) instruction stream.
// ---------------------------------------------------------------------------

struct WarpSpaceBatch {
  static constexpr int kMaxLanes = 32;

  // SoA columns, one row per reconstructed warp-level instruction.
  std::vector<std::uint64_t> keys;   // pack_trace_key(site, size, store)
  std::vector<std::uint32_t> masks;  // bit s: lane s recorded this row
  std::vector<std::uint64_t> addrs;  // row-major, `stride` slots per row

  int stride = kMaxLanes;  // lanes per row (= warp size)
  // Next row index per lane; matched rows always form the prefix [0, cursor).
  std::array<std::uint32_t, kMaxLanes> cursor{};
  // Lanes that mismatched their positional row and record to overflow now.
  std::uint32_t diverged = 0;
  std::array<std::vector<MemAccess>, kMaxLanes> overflow;

  bool dirty() const { return diverged != 0; }
  std::size_t rows() const { return keys.size(); }
  const std::uint64_t* row_addrs(std::size_t row) const {
    return addrs.data() + row * static_cast<std::size_t>(stride);
  }

  void reset(int warp_size) {
    keys.clear();
    masks.clear();
    addrs.clear();
    stride = warp_size;
    cursor.fill(0);
    if (diverged != 0) {
      for (auto& o : overflow) o.clear();
      diverged = 0;
    }
  }

  // The recorder hot path: positional prefix matching.
  void record(int sub, std::uint32_t site, std::uint32_t size, bool store,
              std::uint64_t addr) {
    const std::uint32_t bit = 1u << sub;
    if (diverged & bit) {
      overflow[sub].push_back({addr, size, site, true, store});
      return;
    }
    const std::uint64_t key = pack_trace_key(site, size, store);
    std::uint32_t& cur = cursor[sub];
    if (cur < keys.size()) {
      if (keys[cur] == key) {
        masks[cur] |= bit;
        addrs[cur * static_cast<std::size_t>(stride) + sub] = addr;
        ++cur;
        return;
      }
      // This lane left the warp's common stream: record it (and everything
      // it does from now on in this space) per-lane; the collector regroups.
      diverged |= bit;
      overflow[sub].push_back({addr, size, site, true, store});
      return;
    }
    // cur == rows(): this lane extends the stream with a new row.
    keys.push_back(key);
    masks.push_back(bit);
    addrs.resize(addrs.size() + static_cast<std::size_t>(stride));
    addrs[cur * static_cast<std::size_t>(stride) + sub] = addr;
    ++cur;
  }

  // Exact per-lane access sequence (for dirty-stream regrouping): the matched
  // prefix rows, then the overflow tail.
  void reconstruct_lane(int sub, std::vector<MemAccess>* out) const;
};

// ---------------------------------------------------------------------------
// Per-block arena: one WarpSpaceBatch per (warp, space) plus the site intern
// table.  One arena per worker slot; all capacity is reused block-to-block.
// ---------------------------------------------------------------------------

class TraceArena {
 public:
  // Prepares for one block of `num_lanes` threads.  Batching requires the
  // 32-bit lane masks to cover a warp; other warp sizes leave the arena
  // inactive and the launch falls back to the legacy pipeline.
  void begin_block(const DeviceSpec& spec, int num_lanes);

  bool active() const { return active_; }
  int warp_size() const { return warp_size_; }
  int num_warps() const { return num_warps_; }

  WarpSpaceBatch* stream(int warp, int space) {
    return &streams_[static_cast<std::size_t>(warp) * kNumTraceSpaces + space];
  }
  const WarpSpaceBatch& stream(int warp, int space) const {
    return streams_[static_cast<std::size_t>(warp) * kNumTraceSpaces + space];
  }

  // O(1) note_site support: true iff this block has not seen `site` yet.
  bool intern_site(std::uint32_t site) { return sites_.insert(site); }

 private:
  std::vector<WarpSpaceBatch> streams_;
  SiteInterner sites_;
  bool active_ = false;
  int warp_size_ = 0;
  int num_warps_ = 0;
};

}  // namespace g80
