// Per-thread (lane) dynamic trace recorded by the tracing context.
//
// Each lane independently logs its instruction-class counts and the ordered
// sequence of memory accesses per address space.  After the block completes,
// trace_collect.cc lines the lanes of a warp up by static instruction
// identity ("lane k's j-th access AT THIS CALL SITE belongs to the warp's
// j-th dynamic instance of that instruction") and runs the coalescing /
// bank-conflict / constant-broadcast analyzers on each reconstructed warp
// access.  Site-keyed grouping stays correct even when divergent lanes
// execute different numbers of accesses.
//
// On the default traced path the four per-space access vectors below stay
// EMPTY: the recorder streams accesses into the launch slot's TraceArena
// (trace_arena.h), which reconstructs the warp-level instructions
// positionally while recording, and the collector reads them off the
// arena's SoA rows.  The AoS vectors remain the storage for the legacy
// pipeline (G80_TRACE_BATCH=off, direct collect_block_trace callers) —
// both produce bit-identical BlockTraces.  Everything else in LaneTrace
// (op counts, flops, branches, syncs, site notes) is recorded per lane on
// both paths.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/isa.h"
#include "mem/access.h"

namespace g80 {

struct BranchEvent {
  std::uint32_t site = 0;
  bool taken = false;
};

// Source position of one recorder call site, registered on first use so the
// collector can translate site hashes back to file:line for attribution.
// `file` is std::source_location's static string; no ownership.
struct SiteNote {
  std::uint32_t site = 0;
  const char* file = "";
  std::uint32_t line = 0;
};

struct LaneTrace {
  OpCounts ops;
  double flops = 0;
  std::vector<MemAccess> global;
  std::vector<MemAccess> shared;
  std::vector<MemAccess> constant;
  std::vector<MemAccess> texture;
  std::vector<BranchEvent> branches;
  // bar.sync call sites in execution order (one entry per sync executed).
  std::vector<std::uint32_t> sync_sites;
  // site -> source position table (few distinct sites per kernel; the
  // recorder probes linearly with a most-recent fast path).
  std::vector<SiteNote> site_notes;

  void clear() {
    ops = OpCounts{};
    flops = 0;
    global.clear();
    shared.clear();
    constant.clear();
    texture.clear();
    branches.clear();
    sync_sites.clear();
    site_notes.clear();
  }
};

}  // namespace g80
