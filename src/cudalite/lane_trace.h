// Per-thread (lane) dynamic trace recorded by the tracing context.
//
// Each lane independently logs its instruction-class counts and the ordered
// sequence of memory accesses per address space.  After the block completes,
// trace_collect.cc lines the lanes of a warp up by static instruction
// identity ("lane k's j-th access AT THIS CALL SITE belongs to the warp's
// j-th dynamic instance of that instruction") and runs the coalescing /
// bank-conflict / constant-broadcast analyzers on each reconstructed warp
// access.  Site-keyed grouping stays correct even when divergent lanes
// execute different numbers of accesses.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/isa.h"
#include "mem/access.h"

namespace g80 {

struct BranchEvent {
  std::uint32_t site = 0;
  bool taken = false;
};

struct LaneTrace {
  OpCounts ops;
  double flops = 0;
  std::vector<MemAccess> global;
  std::vector<MemAccess> shared;
  std::vector<MemAccess> constant;
  std::vector<MemAccess> texture;
  std::vector<BranchEvent> branches;

  void clear() {
    ops = OpCounts{};
    flops = 0;
    global.clear();
    shared.clear();
    constant.clear();
    texture.clear();
    branches.clear();
  }
};

}  // namespace g80
